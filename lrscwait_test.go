package lrscwait_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	lrscwait "repro"
)

// The facade tests exercise the public API end to end, the way the
// examples and a downstream user would.

func TestFacadeAtomicCounter(t *testing.T) {
	cfg := lrscwait.Config{
		Topo:   lrscwait.SmallTopology(),
		Policy: lrscwait.PolicyColibri,
	}
	const iters = 50
	b := lrscwait.NewProgram()
	b.Li(lrscwait.A0, 0)
	b.Li(lrscwait.S0, iters)
	b.Label("loop")
	b.LrWait(lrscwait.T0, lrscwait.A0)
	b.Addi(lrscwait.T0, lrscwait.T0, 1)
	b.ScWait(lrscwait.T1, lrscwait.T0, lrscwait.A0)
	b.Bnez(lrscwait.T1, "loop")
	b.Mark()
	b.Addi(lrscwait.S0, lrscwait.S0, -1)
	b.Bnez(lrscwait.S0, "loop")
	b.Halt()

	sys := lrscwait.NewSystem(cfg, lrscwait.SameProgram(b.MustBuild()))
	if !sys.RunUntilHalted(5_000_000) {
		t.Fatal("did not halt")
	}
	n := cfg.Topo.NumCores()
	if got := sys.ReadWord(0); got != uint32(n*iters) {
		t.Errorf("counter = %d, want %d", got, n*iters)
	}
	act := sys.Snapshot()
	if act.SleepCycles == 0 {
		t.Error("no polling-free waiting recorded")
	}
}

func TestFacadeHistogramHelpers(t *testing.T) {
	cfg := lrscwait.Config{
		Topo:   lrscwait.SmallTopology(),
		Policy: lrscwait.PolicyColibri,
	}
	l := lrscwait.NewLayout(0)
	lay := lrscwait.NewHistLayout(l, 8, cfg.Topo.NumCores())
	prog := lrscwait.HistogramProgram(lrscwait.HistLRSCWait, lay, 128, 5)
	sys := lrscwait.NewSystem(cfg, lrscwait.SameProgram(prog))
	if !sys.RunUntilHalted(2_000_000) {
		t.Fatal("did not halt")
	}
	want := uint64(cfg.Topo.NumCores() * 5)
	if got := lrscwait.HistogramSum(sys, lay); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestFacadeDisassemble(t *testing.T) {
	b := lrscwait.NewProgram()
	b.Label("x")
	b.MWait(lrscwait.T0, lrscwait.Zero, lrscwait.A0)
	b.Halt()
	text := lrscwait.Disassemble(b.MustBuild())
	if !strings.Contains(text, "mwait") || !strings.Contains(text, "x:") {
		t.Errorf("disassembly missing content:\n%s", text)
	}
}

func TestFacadeTableI(t *testing.T) {
	rows := lrscwait.TableI(256)
	if len(rows) == 0 {
		t.Fatal("empty Table I")
	}
	base := rows[0].AreaKGE
	for _, r := range rows[1:] {
		if r.AreaKGE <= base {
			t.Errorf("%s %s: no overhead over the base tile", r.Design, r.Params)
		}
	}
}

func TestFacadeStandardBins(t *testing.T) {
	bins := lrscwait.StandardBins(lrscwait.MemPool256())
	if bins[0] != 1 || bins[len(bins)-1] != 1024 {
		t.Errorf("bins = %v", bins)
	}
}

func TestFacadeTopologies(t *testing.T) {
	if lrscwait.MemPool256().NumCores() != 256 ||
		lrscwait.MediumTopology().NumCores() != 64 ||
		lrscwait.SmallTopology().NumCores() != 16 {
		t.Error("topology core counts wrong")
	}
}

func TestFacadeGridSweep(t *testing.T) {
	grid, err := lrscwait.ParseSweepGrid("queuecap=0,1")
	if err != nil {
		t.Fatal(err)
	}
	job := lrscwait.SweepJob{Kind: lrscwait.KindFig3, Topo: "small",
		Bins: []int{1}, Warmup: 300, Measure: 1500}
	grid.Apply(&job)
	results, st, err := lrscwait.RunSweeps(job)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if len(res.Series)%2 != 0 || len(res.Series) == 0 {
		t.Fatalf("series count %d not a multiple of the 2 grid points", len(res.Series))
	}
	if st.Units != len(res.Series) {
		t.Errorf("units = %d, want one per series (1 bin)", st.Units)
	}
	for i, s := range res.Series {
		if s.Grid == nil || s.Grid.QueueCap == nil {
			t.Fatalf("series %d carries no grid coordinate", i)
		}
		want := "[queuecap=" + []string{"0", "1"}[i%2] + "]"
		if !strings.HasSuffix(s.Name, want) {
			t.Errorf("series %d name %q missing %q", i, s.Name, want)
		}
	}
}

// facadeScenario is a custom workload defined purely against the public
// facade, the way an out-of-tree user would: every core runs the
// LRwait/SCwait histogram kernel and the scenario sweeps the bin count,
// reporting throughput plus a custom sleep-cycles metric.
type facadeScenario struct{}

func (facadeScenario) Name() string   { return "facade-counter" }
func (facadeScenario) GridAxes() bool { return false }

func (facadeScenario) Normalize(j lrscwait.SweepJob, topo lrscwait.Topology) (lrscwait.SweepJob, error) {
	if j.Warmup == 0 {
		j.Warmup = 200
	}
	if j.Measure == 0 {
		j.Measure = 800
	}
	if len(j.Bins) == 0 {
		j.Bins = []int{1, 4}
	}
	return j, nil
}

func (facadeScenario) Curves(topo lrscwait.Topology, j lrscwait.SweepJob) ([]lrscwait.ScenarioCurve, error) {
	return []lrscwait.ScenarioCurve{{
		Name: "facade-counter", NumPoints: len(j.Bins), Sim: true,
		Key: func(g lrscwait.SweepGridCoord, pt int) string {
			return fmt.Sprintf("bins%d", j.Bins[pt])
		},
		Run: func(g lrscwait.SweepGridCoord, pt int) lrscwait.SweepPoint {
			cfg := lrscwait.Config{Topo: topo, Policy: lrscwait.PolicyColibri}
			l := lrscwait.NewLayout(0)
			lay := lrscwait.NewHistLayout(l, j.Bins[pt], topo.NumCores())
			prog := lrscwait.HistogramProgram(lrscwait.HistLRSCWait, lay, 128, 0)
			sys := lrscwait.NewSystem(cfg, lrscwait.SameProgram(prog))
			act := sys.Measure(j.Warmup, j.Measure)
			p := lrscwait.SweepPoint{X: j.Bins[pt]}
			p.SetMetric(lrscwait.MetricThroughput, act.Throughput())
			p.SetMetric("sleep_cycles", float64(act.SleepCycles))
			return p
		},
	}}, nil
}

// TestFacadeCustomScenario is the open-API acceptance path: a scenario
// registered only through the public facade runs through the engine with
// caching (warm re-run executes zero simulations), appears in the
// registry listing, and round-trips through all three emitters.
func TestFacadeCustomScenario(t *testing.T) {
	// The registry is process-global: tolerate the duplicate error a
	// repeated in-process run (go test -count=2) produces.
	if err := lrscwait.RegisterScenario(facadeScenario{}); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	found := false
	for _, name := range lrscwait.Scenarios() {
		if name == "facade-counter" {
			found = true
		}
	}
	if !found {
		t.Fatalf("facade-counter missing from Scenarios() = %v", lrscwait.Scenarios())
	}
	if _, ok := lrscwait.LookupScenario("facade-counter"); !ok {
		t.Fatal("LookupScenario cannot find the registered scenario")
	}

	cache, err := lrscwait.OpenSweepCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := lrscwait.SweepJob{Kind: "facade-counter", Topo: "small"}
	r := lrscwait.SweepRunner{Workers: 2, Cache: cache}
	cold, st, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Units != 2 || st.Executed != 2 {
		t.Fatalf("cold run stats = %+v", st)
	}
	warm, st, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != 0 || st.CacheHits != 2 {
		t.Fatalf("warm run stats = %+v (custom scenario not served from cache)", st)
	}

	coldJSON, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := warm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Error("warm-cache JSON differs from cold run")
	}
	if !strings.Contains(string(coldJSON), `"sleep_cycles"`) {
		t.Errorf("custom metric missing from JSON:\n%s", coldJSON)
	}
	if tbl := cold.Table().String(); !strings.Contains(tbl, "sleep_cycles") {
		t.Errorf("generic table missing the custom metric:\n%s", tbl)
	}
	if csv := cold.CSV(); csv == "" || !strings.Contains(csv, "throughput") {
		t.Errorf("CSV emitter broken for custom scenario:\n%s", csv)
	}
	if tp, ok := cold.Series[0].Points[0].Metric(lrscwait.MetricThroughput); !ok || tp <= 0 {
		t.Errorf("no throughput measured: %v, %v", tp, ok)
	}
}

func TestFacadeEnergyModel(t *testing.T) {
	p := lrscwait.DefaultEnergy()
	var a lrscwait.Activity
	a.BusyCycles = 100
	a.TotalOps = 10
	if p.PerOpPJ(a) <= 0 {
		t.Error("energy model returned nothing for busy work")
	}
}

// facadePolicy is a custom reservation policy defined purely against
// the public facade (a miniature of examples/custompolicy): per-word
// mutual exclusion through a full/empty bit, no internal imports.
type facadePolicy struct{}

func (facadePolicy) Name() string { return "facade-feb" }

func (p facadePolicy) Normalize(params lrscwait.PolicyParams, _ lrscwait.Topology) (lrscwait.Policy, error) {
	if err := params.Check(); err != nil {
		return nil, err
	}
	return p, nil
}

func (facadePolicy) NewAdapter(lrscwait.BankContext) lrscwait.Adapter {
	return &facadeAdapter{empty: map[uint32]int{}}
}

type facadeAdapter struct {
	empty map[uint32]int
	stats lrscwait.AdapterStats
}

func (a *facadeAdapter) Name() string                        { return "facade-feb" }
func (a *facadeAdapter) AdapterStats() lrscwait.AdapterStats { return a.stats }

func (a *facadeAdapter) Handle(req lrscwait.Request, s lrscwait.Storage) []lrscwait.Response {
	if resp, wrote, ok := lrscwait.HandleBasic(req, s); ok {
		if wrote {
			delete(a.empty, req.Addr)
		}
		return []lrscwait.Response{resp}
	}
	switch req.Op {
	case lrscwait.OpLR, lrscwait.OpLRWait:
		holder, held := a.empty[req.Addr]
		granted := !held || holder == req.Src
		if granted {
			a.empty[req.Addr] = req.Src
			a.stats.Grants++
		} else {
			a.stats.Refused++
		}
		return []lrscwait.Response{{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: granted}}
	case lrscwait.OpSC, lrscwait.OpSCWait:
		if holder, held := a.empty[req.Addr]; held && holder == req.Src {
			s.Write(req.Addr, req.Data)
			delete(a.empty, req.Addr)
			a.stats.SCSuccess++
			return []lrscwait.Response{{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: true}}
		}
		a.stats.SCFail++
		return []lrscwait.Response{{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false}}
	case lrscwait.OpWakeUpReq:
		return nil
	}
	a.stats.Refused++
	return []lrscwait.Response{{Dst: req.Src, Op: req.Op, Addr: req.Addr,
		Data: s.Read(req.Addr), OK: false}}
}

// TestFacadeCustomPolicy is the open Policy API acceptance path: a
// policy known only to the registry builds a system through the facade,
// keeps a fully contended LR/SC counter exact, reports its stats
// through PolicyStats, and is rejected on re-registration.
func TestFacadeCustomPolicy(t *testing.T) {
	// Tolerate repeated in-process runs (-count=2): the registry is
	// process-global with no unregister.
	if err := lrscwait.RegisterPolicy(facadePolicy{}); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	if err := lrscwait.RegisterPolicy(facadePolicy{}); err == nil {
		t.Error("duplicate policy registration accepted")
	}
	found := false
	for _, name := range lrscwait.PolicyNames() {
		if name == "facade-feb" {
			found = true
		}
	}
	if !found {
		t.Fatalf("facade-feb missing from PolicyNames() = %v", lrscwait.PolicyNames())
	}
	if _, ok := lrscwait.LookupPolicy("facade-feb"); !ok {
		t.Fatal("LookupPolicy cannot find the registered policy")
	}
	// A mistyped policy-specific parameter must fail at resolution.
	if _, err := lrscwait.ResolvePolicy("facade-feb",
		lrscwait.PolicyParams{"bogus": "1"}, lrscwait.SmallTopology()); err == nil {
		t.Error("unknown parameter accepted by the custom policy")
	}

	const iters = 10
	b := lrscwait.NewProgram()
	b.Li(lrscwait.A0, 0)
	b.Li(lrscwait.T0, iters)
	b.Li(lrscwait.T4, 16)
	b.Label("retry")
	b.Lr(lrscwait.T2, lrscwait.A0)
	b.Addi(lrscwait.T2, lrscwait.T2, 1)
	b.Sc(lrscwait.T3, lrscwait.T2, lrscwait.A0)
	b.Beqz(lrscwait.T3, "ok")
	b.Pause(lrscwait.T4)
	b.J("retry")
	b.Label("ok")
	b.Mark()
	b.Addi(lrscwait.T0, lrscwait.T0, -1)
	b.Bnez(lrscwait.T0, "retry")
	b.Halt()
	prog := b.MustBuild()

	cfg := lrscwait.Config{Topo: lrscwait.SmallTopology(), Policy: "facade-feb"}
	sys := lrscwait.NewSystem(cfg, lrscwait.SameProgram(prog))
	if !sys.RunUntilHalted(3_000_000) {
		t.Fatal("custom-policy counter did not halt")
	}
	n := cfg.Topo.NumCores()
	if got := sys.ReadWord(0); got != uint32(n*iters) {
		t.Errorf("counter = %d, want %d (custom policy lost updates)", got, n*iters)
	}
	grants, _, scOK, _, _ := sys.PolicyStats()
	if scOK != uint64(n*iters) {
		t.Errorf("PolicyStats SC successes = %d, want %d (StatsReporter not threaded)",
			scOK, n*iters)
	}
	if grants == 0 {
		t.Error("PolicyStats reports no grants")
	}
}
