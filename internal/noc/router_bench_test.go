package noc

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/engine"
)

// BenchmarkRouterTick measures one router crossbar pass under two
// occupancy regimes: "dense" (every input holds a routable flit — a
// contended tile router under a hot kernel) and "sparse" (one occupied
// input among many — the common case for link arbiters most cycles).
// Both must run at 0 allocs/op: the heads/route caches inside Tick are
// pre-sized at construction.
func BenchmarkRouterTick(b *testing.B) {
	const ports = 4
	build := func() (*engine.Clock, []*engine.FIFO[bus.Request], []*engine.FIFO[bus.Request], *Router[bus.Request]) {
		var clock engine.Clock
		in := make([]*engine.FIFO[bus.Request], ports)
		out := make([]*engine.FIFO[bus.Request], ports)
		for i := range in {
			in[i] = engine.NewFIFO[bus.Request](2, &clock)
			out[i] = engine.NewFIFO[bus.Request](2, &clock)
		}
		route := func(r bus.Request) int { return int(r.Addr) % ports }
		return &clock, in, out, NewRouter("bench", in, out, route)
	}

	b.Run("occ=dense", func(b *testing.B) {
		clock, in, out, r := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range in {
				in[j].Push(bus.Request{Op: bus.AmoAdd, Addr: uint32(j), Src: j})
			}
			clock.Advance()
			if moved := r.Tick(); moved != ports {
				b.Fatalf("moved %d flits, want %d", moved, ports)
			}
			clock.Advance()
			for j := range out {
				out[j].Pop()
			}
		}
	})

	b.Run("occ=sparse", func(b *testing.B) {
		clock, in, out, r := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			in[0].Push(bus.Request{Op: bus.AmoAdd, Addr: uint32(i % ports), Src: 0})
			clock.Advance()
			if moved := r.Tick(); moved != 1 {
				b.Fatalf("moved %d flits, want 1", moved)
			}
			clock.Advance()
			out[i%ports].Pop()
		}
	})
}
