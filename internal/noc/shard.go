package noc

import (
	"math/bits"
	"sort"

	"repro/internal/engine"
)

// Partition-parallel fabric support. The partitioned kernel ticks the
// routers of one class across all partitions concurrently, with a phase
// barrier between classes. The classes are the three stages of the
// MemPool hierarchy, in sequential tick order:
//
//	ClassTile  — tile routers (cores/ingress → banks/egress)
//	ClassLink  — link arbiters (tile egress → inter-group link)
//	ClassGroup — group distribution routers (links → tile ingress)
//
// Within one class no two routers share a FIFO on either side: every
// producer/consumer relationship in the fabric crosses class boundaries
// (tile egress feeds arbiters, arbiter links feed group routers, group
// ingress feeds tile routers), and the request and response networks
// share no FIFOs at all. Ticking one class concurrently therefore
// preserves the exact per-FIFO push/pop interleaving of the sequential
// ascending-index TickActive, which is what makes the partitioned
// kernel bit-identical for any partition assignment.
const (
	ClassTile = iota
	ClassLink
	ClassGroup
	numClasses
)

// wordMask selects the routers a partition owns inside one 64-bit chunk
// of the dirty bitsets.
type wordMask struct {
	w    int
	mask uint64
}

// fabricShard is the partition-parallel state of a fabric: atomic dirty
// bitsets replacing the sequential ActiveSets (router wakes may cross
// partitions), plus each partition's per-class ownership masks.
type fabricShard struct {
	nParts    int
	reqDirty  engine.AtomicSet
	respDirty engine.AtomicSet
	// masks[p][class] selects partition p's routers of that class; the
	// router layout is identical in both networks, so one mask set
	// serves both dirty bitsets.
	masks [][numClasses][]wordMask
	// crossMasks selects every cross-tile router (ClassLink + ClassGroup,
	// all partitions) — the QuietCrossTile test the fused-cycle fast path
	// is gated on.
	crossMasks []wordMask
}

// PartScratch is one partition's per-cycle snapshot of its dirty
// routers, per class and network. Reused across cycles so steady state
// allocates nothing.
type PartScratch struct {
	req  [numClasses][]int
	resp [numClasses][]int
}

// routerClass maps a router index (layout: tiles, then G² link
// arbiters, then G group routers — same in both networks) to its class
// and its index within the class.
func (f *Fabric) routerClass(i int) (class, within int) {
	nTiles := f.Topo.NumTiles()
	g := f.Topo.NumGroups
	switch {
	case i < nTiles:
		return ClassTile, i
	case i < nTiles+g*g:
		return ClassLink, i - nTiles
	default:
		return ClassGroup, i - nTiles - g*g
	}
}

// Shard prepares the fabric for partition-parallel ticking: router wake
// hooks switch to atomic dirty bitsets and every router gets an owning
// partition — tile routers follow their tile's partition (tilePart),
// link arbiters and group routers are distributed round-robin. Any
// deterministic assignment yields identical results (see the class
// comment); round-robin balances the load. Call once, at construction
// time; the sequential TickActive must not drive a sharded fabric.
func (f *Fabric) Shard(nParts int, tilePart func(tile int) int) {
	n := len(f.reqRouters)
	sh := &fabricShard{
		nParts:    nParts,
		reqDirty:  engine.MakeAtomicSet(n),
		respDirty: engine.MakeAtomicSet(n),
		masks:     make([][numClasses][]wordMask, nParts),
	}
	acc := make([][numClasses]map[int]uint64, nParts)
	crossAcc := map[int]uint64{}
	for i := 0; i < n; i++ {
		class, within := f.routerClass(i)
		part := within % nParts
		if class == ClassTile {
			part = tilePart(within)
		} else {
			crossAcc[i>>6] |= 1 << uint(i&63)
		}
		if acc[part][class] == nil {
			acc[part][class] = map[int]uint64{}
		}
		acc[part][class][i>>6] |= 1 << uint(i&63)
	}
	crossWords := make([]int, 0, len(crossAcc))
	for w := range crossAcc {
		crossWords = append(crossWords, w)
	}
	sort.Ints(crossWords)
	for _, w := range crossWords {
		sh.crossMasks = append(sh.crossMasks, wordMask{w: w, mask: crossAcc[w]})
	}
	for p := range acc {
		for c := 0; c < numClasses; c++ {
			words := make([]int, 0, len(acc[p][c]))
			for w := range acc[p][c] {
				words = append(words, w)
			}
			sort.Ints(words)
			for _, w := range words {
				sh.masks[p][c] = append(sh.masks[p][c], wordMask{w: w, mask: acc[p][c][w]})
			}
		}
	}
	// Carry any routers already dirty (none at construction time, but
	// keep the switch-over lossless regardless).
	for _, i := range f.reqActive.AppendTo(nil) {
		sh.reqDirty.Add(i)
	}
	for _, i := range f.respActive.AppendTo(nil) {
		sh.respDirty.Add(i)
	}
	f.shard = sh
}

// wakeReq marks request router i dirty — the FIFO push hook target,
// dispatching to the atomic bitset once the fabric is sharded.
func (f *Fabric) wakeReq(i int) {
	if sh := f.shard; sh != nil {
		sh.reqDirty.Add(i)
	} else {
		f.reqActive.Add(i)
	}
}

// wakeResp marks response router i dirty.
func (f *Fabric) wakeResp(i int) {
	if sh := f.shard; sh != nil {
		sh.respDirty.Add(i)
	} else {
		f.respActive.Add(i)
	}
}

// SnapshotShard appends partition part's dirty routers, per class and
// network in ascending index order, into sc. Taken once per cycle
// before the first phase barrier; routers dirtied later in the cycle
// are picked up next cycle, exactly like the sequential TickActive's
// scratch copy where a router woken mid-pass waits a cycle.
func (f *Fabric) SnapshotShard(part int, sc *PartScratch) {
	sh := f.shard
	for c := 0; c < numClasses; c++ {
		sc.req[c] = sc.req[c][:0]
		sc.resp[c] = sc.resp[c][:0]
		for _, wm := range sh.masks[part][c] {
			base := wm.w << 6
			for b := sh.reqDirty.LoadWord(wm.w) & wm.mask; b != 0; b &= b - 1 {
				sc.req[c] = append(sc.req[c], base+bits.TrailingZeros64(b))
			}
			for b := sh.respDirty.LoadWord(wm.w) & wm.mask; b != 0; b &= b - 1 {
				sc.resp[c] = append(sc.resp[c], base+bits.TrailingZeros64(b))
			}
		}
	}
}

// TickShardClass ticks the snapshotted routers of one class, request
// network then response network (they share no FIFOs, so the relative
// order across networks is free; within a network ascending index
// matches the sequential pass). A router that drained leaves the dirty
// set — no concurrent adds for its class can occur in this phase, since
// every producer that could re-dirty it ticks in a different phase.
// Returns the number of routers ticked, for the kernel's accounting.
func (f *Fabric) TickShardClass(sc *PartScratch, class int) int {
	sh := f.shard
	for _, i := range sc.req[class] {
		r := f.reqRouters[i]
		r.Tick()
		if !r.Busy() {
			sh.reqDirty.Remove(i)
		}
	}
	for _, i := range sc.resp[class] {
		r := f.respRouters[i]
		r.Tick()
		if !r.Busy() {
			sh.respDirty.Remove(i)
		}
	}
	return len(sc.req[class]) + len(sc.resp[class])
}

// ShardBusy reports whether any router in either network is dirty — the
// sharded counterpart of Busy. Only meaningful between cycles (at a
// barrier or with no workers running).
func (f *Fabric) ShardBusy() bool {
	return f.shard.reqDirty.Any() || f.shard.respDirty.Any()
}

// QuietCrossTile reports whether every cross-tile router — the link
// arbiters and group distribution routers of both networks — is clean.
// When it holds at a cycle boundary, the next cycle moves no message
// through either class (their input FIFOs are drained and only tile
// ticks can refill them, one barrier-equivalent later), so the
// partitioned kernel may run that cycle with a single end barrier
// instead of four. Only meaningful between cycles, like ShardBusy.
func (f *Fabric) QuietCrossTile() bool {
	sh := f.shard
	for _, wm := range sh.crossMasks {
		if sh.reqDirty.LoadWord(wm.w)&wm.mask != 0 ||
			sh.respDirty.LoadWord(wm.w)&wm.mask != 0 {
			return false
		}
	}
	return true
}
