package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/engine"
)

func TestTopologyCounts(t *testing.T) {
	mp := MemPool256()
	if got := mp.NumCores(); got != 256 {
		t.Errorf("NumCores = %d, want 256", got)
	}
	if got := mp.NumBanks(); got != 1024 {
		t.Errorf("NumBanks = %d, want 1024", got)
	}
	if got := mp.NumTiles(); got != 64 {
		t.Errorf("NumTiles = %d, want 64", got)
	}
	if err := mp.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	bad := Topology{}
	if err := bad.Validate(); err == nil {
		t.Error("zero topology validated")
	}
}

func TestTeraPool1024Topology(t *testing.T) {
	tp := TeraPool1024()
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := tp.NumCores(); got != 1024 {
		t.Errorf("NumCores = %d, want 1024", got)
	}
	if got := tp.NumBanks(); got != 4096 {
		t.Errorf("NumBanks = %d, want 4096", got)
	}
	if got := tp.NumTiles(); got != 128 {
		t.Errorf("NumTiles = %d, want 128", got)
	}
	// The distance classes must span the full hierarchy: same tile, same
	// group, remote group.
	if d := tp.Distance(0, 0); d != 0 {
		t.Errorf("intra-tile distance = %d", d)
	}
	if d := tp.Distance(0, tp.BanksPerTile); d != 1 {
		t.Errorf("intra-group distance = %d", d)
	}
	if d := tp.Distance(0, tp.NumBanks()-1); d != 2 {
		t.Errorf("cross-group distance = %d", d)
	}
	// Every bank must be addressable through the word-interleaved map.
	for _, b := range []int{0, 1, tp.NumBanks() - 1} {
		addr := uint32(4 * b)
		if got := tp.BankOfAddr(addr); got != b {
			t.Errorf("BankOfAddr(%#x) = %d, want %d", addr, got, b)
		}
	}
}

func TestTopologyMapping(t *testing.T) {
	mp := MemPool256()
	// Word interleaving: consecutive words hit consecutive banks.
	for w := 0; w < 4; w++ {
		if got := mp.BankOfAddr(uint32(4 * w)); got != w {
			t.Errorf("BankOfAddr(%d) = %d, want %d", 4*w, got, w)
		}
	}
	// Wrap-around goes back to bank 0, next word index.
	if got := mp.BankOfAddr(4 * 1024); got != 0 {
		t.Errorf("BankOfAddr(4096 words in) = %d, want 0", got)
	}
	if got := mp.WordOfAddr(4 * 1024); got != 1 {
		t.Errorf("WordOfAddr = %d, want 1", got)
	}
	// Distance classes.
	if d := mp.Distance(0, 0); d != 0 {
		t.Errorf("core0/bank0 distance = %d, want 0 (same tile)", d)
	}
	if d := mp.Distance(0, 16); d != 1 {
		t.Errorf("core0/bank16 distance = %d, want 1 (same group)", d)
	}
	if d := mp.Distance(0, 1023); d != 2 {
		t.Errorf("core0/bank1023 distance = %d, want 2 (remote)", d)
	}
}

// run ticks the fabric and clock once.
func step(f *Fabric, clk *engine.Clock) {
	f.Tick()
	clk.Advance()
}

func TestFabricLocalDelivery(t *testing.T) {
	var clk engine.Clock
	topo := Small()
	f := NewFabric(topo, &clk, 2)
	req := bus.Request{Op: bus.Load, Addr: 0, Src: 0} // bank 0 is in core 0's tile
	if !f.CoreReq[0].Push(req) {
		t.Fatal("injection failed")
	}
	for cycle := 0; cycle < 10; cycle++ {
		step(f, &clk)
		if got, ok := f.BankReq[0].Pop(); ok {
			if got.Src != 0 || got.Op != bus.Load {
				t.Fatalf("wrong message delivered: %v", got)
			}
			if cycle > 3 {
				t.Errorf("local delivery took %d cycles, want <= 3", cycle+1)
			}
			return
		}
	}
	t.Fatal("request never delivered to local bank")
}

func TestFabricRemoteDeliveryLatency(t *testing.T) {
	var clk engine.Clock
	topo := Small()
	f := NewFabric(topo, &clk, 2)
	// Bank in the other group: core 0 is group 0; last bank is group 1.
	remoteBank := topo.NumBanks() - 1
	addr := uint32(remoteBank * 4)
	if got := topo.BankOfAddr(addr); got != remoteBank {
		t.Fatalf("test setup: addr maps to bank %d", got)
	}
	f.CoreReq[0].Push(bus.Request{Op: bus.Load, Addr: addr, Src: 0})
	localCycles, remoteCycles := -1, -1
	f2 := NewFabric(topo, &clk, 2) // fresh fabric on same clock for local
	f2.CoreReq[0].Push(bus.Request{Op: bus.Load, Addr: 0, Src: 0})
	for cycle := 1; cycle <= 20; cycle++ {
		step(f, &clk)
		f2.Tick()
		if _, ok := f.BankReq[remoteBank].Pop(); ok && remoteCycles < 0 {
			remoteCycles = cycle
		}
		if _, ok := f2.BankReq[0].Pop(); ok && localCycles < 0 {
			localCycles = cycle
		}
	}
	if localCycles < 0 || remoteCycles < 0 {
		t.Fatalf("delivery incomplete: local=%d remote=%d", localCycles, remoteCycles)
	}
	if remoteCycles <= localCycles {
		t.Errorf("remote (%d cycles) should be slower than local (%d)", remoteCycles, localCycles)
	}
}

func TestFabricResponsePath(t *testing.T) {
	var clk engine.Clock
	topo := Small()
	f := NewFabric(topo, &clk, 2)
	lastBank := topo.NumBanks() - 1
	f.BankResp[lastBank].Push(bus.Response{Op: bus.Load, Dst: 0, Data: 42})
	for cycle := 0; cycle < 20; cycle++ {
		step(f, &clk)
		if got, ok := f.CoreResp[0].Pop(); ok {
			if got.Data != 42 {
				t.Fatalf("wrong response: %v", got)
			}
			return
		}
	}
	t.Fatal("response never delivered")
}

// TestFabricExactlyOnceInOrder drives random traffic from every core and
// checks that each (core, bank) stream arrives exactly once and in order —
// the ordering property Colibri's correctness argument relies on.
func TestFabricExactlyOnceInOrder(t *testing.T) {
	prop := func(seed uint64) bool {
		var clk engine.Clock
		topo := Small()
		f := NewFabric(topo, &clk, 2)
		rng := engine.NewRNG(seed)
		nCores, nBanks := topo.NumCores(), topo.NumBanks()
		const perCore = 20
		sent := make([][]uint32, nCores) // per core: sequence of tagged payloads
		idx := make([]int, nCores)
		type key struct{ src, bank int }
		lastSeen := map[key]uint32{}
		received := 0
		for cycle := 0; cycle < 5000 && received < nCores*perCore; cycle++ {
			// Inject: each core tries one request per cycle until done.
			for c := 0; c < nCores; c++ {
				if idx[c] >= perCore {
					continue
				}
				bank := rng.Intn(nBanks)
				tag := uint32(c)<<16 | uint32(idx[c])
				req := bus.Request{Op: bus.Store, Addr: uint32(bank * 4), Src: c, Data: tag}
				if f.CoreReq[c].Push(req) {
					sent[c] = append(sent[c], tag)
					idx[c]++
				}
			}
			step(f, &clk)
			for b := 0; b < nBanks; b++ {
				for {
					got, ok := f.BankReq[b].Pop()
					if !ok {
						break
					}
					k := key{got.Src, b}
					seq := got.Data & 0xffff
					if last, seen := lastSeen[k]; seen && seq <= last {
						return false // reordered or duplicated
					}
					lastSeen[k] = seq
					received++
				}
			}
		}
		return received == nCores*perCore && f.InFlight() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestFabricBackpressureNoLoss stops draining one bank and checks that no
// message is lost, then drains and verifies complete delivery.
func TestFabricBackpressureNoLoss(t *testing.T) {
	var clk engine.Clock
	topo := Small()
	f := NewFabric(topo, &clk, 2)
	const total = 40
	injected := 0
	// All cores hammer bank 0 (hot spot) while nobody drains it.
	for cycle := 0; cycle < 200; cycle++ {
		if injected < total {
			if f.CoreReq[injected%topo.NumCores()].Push(bus.Request{
				Op: bus.Store, Addr: 0, Src: injected % topo.NumCores(),
				Data: uint32(injected),
			}) {
				injected++
			}
		}
		step(f, &clk)
	}
	if f.InFlight() != injected {
		t.Fatalf("in flight = %d, injected = %d (messages lost or duplicated)", f.InFlight(), injected)
	}
	// Now drain.
	got := 0
	for cycle := 0; cycle < 2000 && got < injected; cycle++ {
		step(f, &clk)
		for {
			if _, ok := f.BankReq[0].Pop(); !ok {
				break
			}
			got++
		}
	}
	if got != injected {
		t.Fatalf("drained %d of %d", got, injected)
	}
}

// TestFabricHOLBlocking demonstrates head-of-line blocking: a congested hot
// bank delays traffic to an unrelated bank that shares the path.
func TestFabricHOLBlocking(t *testing.T) {
	topo := Small()
	hot := uint32(0) // bank 0, tile 0
	// Victim address in a different bank of the same tile as the hot bank.
	victim := uint32(4) // bank 1, tile 0

	// Measure victim latency with and without hot-spot traffic from a
	// remote core. The victim request comes from a remote group core so it
	// shares the group->tile path with the hot traffic.
	remoteCore := topo.NumCores() - 1

	measure := func(withHot bool) int {
		var clk engine.Clock
		f := NewFabric(topo, &clk, 2)
		// Saturate: every core in group 0 (except none) fires at the hot
		// bank each cycle; bank 0 is never drained.
		for cycle := 1; cycle <= 400; cycle++ {
			if withHot {
				for c := 0; c < topo.NumCores()/2; c++ {
					f.CoreReq[c].Push(bus.Request{Op: bus.Store, Addr: hot, Src: c})
				}
			}
			if cycle == 50 {
				if !f.CoreReq[remoteCore].Push(bus.Request{Op: bus.Load, Addr: victim, Src: remoteCore}) {
					t.Fatal("victim injection failed")
				}
			}
			step(f, &clk)
			// Victim bank is drained; hot bank is not (worst case).
			if _, ok := f.BankReq[1].Pop(); ok {
				return cycle - 50
			}
		}
		return -1
	}

	base := measure(false)
	congested := measure(true)
	if base < 0 {
		t.Fatal("victim never arrived without congestion")
	}
	if congested != -1 && congested <= base {
		t.Errorf("HOL blocking absent: base=%d congested=%d", base, congested)
	}
}
