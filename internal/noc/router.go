package noc

import (
	"fmt"

	"repro/internal/engine"
)

// Router is a generic input-queued router stage. Each input port is a
// bounded timestamped FIFO; each output port forwards at most one message
// per cycle into a downstream FIFO (the next router's input, or a terminal
// port). Arbitration is round-robin across inputs with head-of-line
// blocking: only the head of each input queue is considered, so a blocked
// head stalls everything behind it — the mechanism behind hot-spot tree
// saturation.
type Router[T any] struct {
	Name string
	in   []*engine.FIFO[T]
	out  []*engine.FIFO[T]
	// route maps a message to an output port index.
	route func(T) int
	// rr is the per-output round-robin pointer, advanced past the last
	// winning input. (A pointer that merely rotates once per cycle can
	// phase-lock with periodic downstream grants and starve inputs
	// indefinitely — observed as a livelocked reservation holder.)
	rr []int
	// Forwards counts messages moved, for the energy model.
	Forwards uint64
	// taken marks inputs that already forwarded this cycle.
	taken []bool
}

// NewRouter creates a router with the given input and output ports.
// The ports are owned by the caller (the fabric builder), which lets two
// routers share a FIFO as "my output, your input".
func NewRouter[T any](name string, in, out []*engine.FIFO[T], route func(T) int) *Router[T] {
	if len(in) == 0 || len(out) == 0 {
		panic(fmt.Sprintf("noc: router %s needs ports", name))
	}
	return &Router[T]{Name: name, in: in, out: out, route: route,
		rr: make([]int, len(out)), taken: make([]bool, len(in))}
}

// Tick forwards up to one message per output port (and at most one per
// input port), with independent round-robin arbitration per output. It
// returns the number of messages moved.
func (r *Router[T]) Tick() int {
	n := len(r.in)
	// Fast path: nothing queued anywhere.
	busy := false
	for _, f := range r.in {
		if f.Len() > 0 {
			busy = true
			break
		}
	}
	if !busy {
		return 0
	}
	for i := range r.taken {
		r.taken[i] = false
	}
	moved := 0
	for o := range r.out {
		if r.out[o].Full() {
			continue
		}
		for k := 0; k < n; k++ {
			i := (r.rr[o] + k) % n
			if r.taken[i] {
				continue
			}
			head, ok := r.in[i].Peek()
			if !ok || r.route(head) != o {
				continue // HOL blocking: only the head is considered
			}
			if !r.out[o].Push(head) {
				break
			}
			r.in[i].Pop()
			r.taken[i] = true
			r.rr[o] = (i + 1) % n
			moved++
			break
		}
	}
	r.Forwards += uint64(moved)
	return moved
}

// Busy reports whether any input stage is occupied — the router's
// quiescence predicate. An idle router's Tick is a no-op, so the fabric's
// dirty-list scheduling skips it entirely; a router stays busy while a
// queued message is not yet visible (pushed this cycle) or is blocked by
// downstream backpressure.
func (r *Router[T]) Busy() bool {
	for _, f := range r.in {
		if f.Len() > 0 {
			return true
		}
	}
	return false
}

// Occupancy returns the total number of messages queued at the inputs.
func (r *Router[T]) Occupancy() int {
	total := 0
	for _, f := range r.in {
		total += f.Len()
	}
	return total
}
