package noc

import (
	"fmt"

	"repro/internal/engine"
)

// Router is a generic input-queued router stage. Each input port is a
// bounded timestamped FIFO; each output port forwards at most one message
// per cycle into a downstream FIFO (the next router's input, or a terminal
// port). Arbitration is round-robin across inputs with head-of-line
// blocking: only the head of each input queue is considered, so a blocked
// head stalls everything behind it — the mechanism behind hot-spot tree
// saturation.
type Router[T any] struct {
	Name string
	in   []*engine.FIFO[T]
	out  []*engine.FIFO[T]
	// route maps a message to an output port index.
	route func(T) int
	// rr is the per-output round-robin pointer, advanced past the last
	// winning input. (A pointer that merely rotates once per cycle can
	// phase-lock with periodic downstream grants and starve inputs
	// indefinitely — observed as a livelocked reservation holder.)
	rr []int
	// Forwards counts messages moved, for the energy model.
	Forwards uint64
	// heads and ro cache, for the duration of one Tick, each input's
	// visible head and the output port it routes to (ro[i] < 0: input
	// empty, head not yet visible, or already forwarded this cycle).
	// route() therefore runs once per occupied input instead of once per
	// (output, input) probe, and the consumed marker doubles as the old
	// per-tick taken[] array without the O(inputs) clear.
	heads []T
	ro    []int32
}

// NewRouter creates a router with the given input and output ports.
// The ports are owned by the caller (the fabric builder), which lets two
// routers share a FIFO as "my output, your input".
func NewRouter[T any](name string, in, out []*engine.FIFO[T], route func(T) int) *Router[T] {
	if len(in) == 0 || len(out) == 0 {
		panic(fmt.Sprintf("noc: router %s needs ports", name))
	}
	return &Router[T]{Name: name, in: in, out: out, route: route,
		rr: make([]int, len(out)), heads: make([]T, len(in)), ro: make([]int32, len(in))}
}

// Tick forwards up to one message per output port (and at most one per
// input port), with independent round-robin arbitration per output. It
// returns the number of messages moved.
//
// The pass is input-major: each visible head is peeked and routed exactly
// once, then every output picks the first cached candidate in its
// round-robin order. Because each head routes to exactly one output and a
// forwarded input is marked consumed (ro[i] = -1), the winner per output —
// and therefore every push, pop and rr update — is identical to the
// output-major scan with a per-tick taken[] array.
func (r *Router[T]) Tick() int {
	any := false
	for i, f := range r.in {
		if head, ok := f.Peek(); ok {
			r.heads[i] = head
			r.ro[i] = int32(r.route(head))
			any = true
		} else {
			r.ro[i] = -1
		}
	}
	if !any {
		return 0
	}
	n := len(r.in)
	moved := 0
	for o := range r.out {
		if r.out[o].Full() {
			continue
		}
		oo := int32(o)
		for k, i := 0, r.rr[o]; k < n; k++ {
			if i >= n {
				i -= n
			}
			// HOL blocking: only the (cached) head is considered.
			if r.ro[i] == oo {
				if !r.out[o].Push(r.heads[i]) {
					break // aliased output filled by an earlier port
				}
				r.in[i].Pop()
				r.ro[i] = -1
				if r.rr[o] = i + 1; r.rr[o] == n {
					r.rr[o] = 0
				}
				moved++
				break
			}
			i++
		}
	}
	r.Forwards += uint64(moved)
	return moved
}

// Busy reports whether any input stage is occupied — the router's
// quiescence predicate. An idle router's Tick is a no-op, so the fabric's
// dirty-list scheduling skips it entirely; a router stays busy while a
// queued message is not yet visible (pushed this cycle) or is blocked by
// downstream backpressure.
func (r *Router[T]) Busy() bool {
	for _, f := range r.in {
		if f.Len() > 0 {
			return true
		}
	}
	return false
}

// Occupancy returns the total number of messages queued at the inputs.
func (r *Router[T]) Occupancy() int {
	total := 0
	for _, f := range r.in {
		total += f.Len()
	}
	return total
}
