package noc

import (
	"repro/internal/bus"
	"repro/internal/engine"
)

// Fabric instantiates the two networks (request and response) for a
// topology and owns every FIFO in them.
//
// The structure follows MemPool's hierarchy: every tile has one egress
// port per destination group (so traffic to different groups never blocks
// each other at the source — each tile of MemPool likewise owns a master
// port per group), a link arbiter per ordered group pair that merges the
// member tiles' traffic onto the inter-group link, and a per-group
// distribution router that fans traffic out to the destination tiles.
//
// Request path:
//
//	core egress → tile router → local bank FIFO                 (same tile)
//	            → tile egress[g] → link arbiter(g→h) → link
//	            → group-h router → tile ingress → tile router → bank
//
// The response network mirrors it from bank egress FIFOs to core response
// FIFOs. Each hop costs one cycle (timestamped FIFOs); every port moves at
// most one message per cycle; all FIFOs are bounded, so a hot spot
// backpressures into the tree (head-of-line blocking) — the congestion
// mechanism behind the paper's interference experiment — while traffic to
// other groups keeps flowing on its own ports.
type Fabric struct {
	Topo  Topology
	Clock *engine.Clock

	// CoreReq is the per-core request injection port (cores push).
	CoreReq []*engine.FIFO[bus.Request]
	// CoreResp is the per-core response delivery port (platform pops).
	CoreResp []*engine.FIFO[bus.Response]
	// BankReq is the per-bank request delivery port (banks pop).
	BankReq []*engine.FIFO[bus.Request]
	// BankResp is the per-bank response injection port (banks push).
	BankResp []*engine.FIFO[bus.Response]

	reqRouters  []*Router[bus.Request]
	respRouters []*Router[bus.Response]

	allReqFIFOs  []*engine.FIFO[bus.Request]
	allRespFIFOs []*engine.FIFO[bus.Response]

	// Dirty lists for activity-driven ticking: a router joins its set
	// when a message is pushed into one of its input stages (FIFO push
	// hooks wired at construction) and leaves once it ticks with every
	// input empty. TickActive walks only these routers; an idle fabric
	// costs nothing per cycle.
	reqActive   engine.ActiveSet
	respActive  engine.ActiveSet
	reqScratch  []int
	respScratch []int

	// shard, when non-nil, switches the dirty tracking to the
	// partition-parallel atomic bitsets (see Shard in shard.go).
	shard *fabricShard

	// rt holds the precomputed routing tables the per-router route
	// closures index instead of recomputing divisions per message.
	rt routeTables
}

// routeTables flattens every routing decision the fabric makes into
// table lookups indexed by bank or core ID. The route closures run once
// per occupied router input per cycle — the hottest call site in a
// traffic-heavy simulation — and the topology arithmetic behind them
// (BankOfAddr, TileOfBank, GroupOfBank and the response-side mirrors) is
// all integer division. The tables cost a few bytes per bank/core and
// turn each decision into one or two indexed loads.
type routeTables struct {
	// Address → bank: word-interleaved. Power-of-two bank counts (every
	// built-in topology) use the mask; others keep the modulo.
	bankMask uint32
	bankMod  uint32
	usesMask bool

	tileOfBank     []int32  // owning tile, for the local/remote branch
	bankPortLocal  []uint16 // tile-router port when the bank is tile-local
	bankPortRemote []uint16 // tile-router egress port toward the bank's group
	bankPortGroup  []uint16 // group-router port toward the bank's tile

	tileOfCore     []int32
	corePortLocal  []uint16
	corePortRemote []uint16
	corePortGroup  []uint16
}

func buildRouteTables(topo Topology) routeTables {
	nBanks, nCores := topo.NumBanks(), topo.NumCores()
	rt := routeTables{
		bankMod:        uint32(nBanks),
		bankMask:       uint32(nBanks - 1),
		usesMask:       nBanks&(nBanks-1) == 0,
		tileOfBank:     make([]int32, nBanks),
		bankPortLocal:  make([]uint16, nBanks),
		bankPortRemote: make([]uint16, nBanks),
		bankPortGroup:  make([]uint16, nBanks),
		tileOfCore:     make([]int32, nCores),
		corePortLocal:  make([]uint16, nCores),
		corePortRemote: make([]uint16, nCores),
		corePortGroup:  make([]uint16, nCores),
	}
	for b := 0; b < nBanks; b++ {
		rt.tileOfBank[b] = int32(topo.TileOfBank(b))
		rt.bankPortLocal[b] = uint16(b % topo.BanksPerTile)
		rt.bankPortRemote[b] = uint16(topo.BanksPerTile + topo.GroupOfBank(b))
		rt.bankPortGroup[b] = uint16(topo.TileOfBank(b) % topo.TilesPerGroup)
	}
	for c := 0; c < nCores; c++ {
		rt.tileOfCore[c] = int32(topo.TileOfCore(c))
		rt.corePortLocal[c] = uint16(c % topo.CoresPerTile)
		rt.corePortRemote[c] = uint16(topo.CoresPerTile + topo.GroupOfCore(c))
		rt.corePortGroup[c] = uint16(topo.TileOfCore(c) % topo.TilesPerGroup)
	}
	return rt
}

// bankOf maps a byte address to its bank — Topology.BankOfAddr with the
// division strength-reduced to a mask for power-of-two bank counts.
func (rt *routeTables) bankOf(addr uint32) int {
	w := addr >> 2
	if rt.usesMask {
		return int(w & rt.bankMask)
	}
	return int(w % rt.bankMod)
}

// NewFabric builds the fabric. depth is the capacity of every FIFO stage;
// small depths (2–4) are realistic for SPM-class interconnects and are
// what produce hot-spot tree saturation.
func NewFabric(topo Topology, clock *engine.Clock, depth int) *Fabric {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	if depth <= 0 {
		depth = 2
	}
	f := &Fabric{Topo: topo, Clock: clock, rt: buildRouteTables(topo)}
	rt := &f.rt

	nCores, nBanks := topo.NumCores(), topo.NumBanks()
	nTiles, nGroups := topo.NumTiles(), topo.NumGroups

	newReq := func(d int) *engine.FIFO[bus.Request] {
		q := engine.NewFIFO[bus.Request](d, clock)
		f.allReqFIFOs = append(f.allReqFIFOs, q)
		return q
	}
	newResp := func(d int) *engine.FIFO[bus.Response] {
		q := engine.NewFIFO[bus.Response](d, clock)
		f.allRespFIFOs = append(f.allRespFIFOs, q)
		return q
	}

	f.CoreReq = make([]*engine.FIFO[bus.Request], nCores)
	f.CoreResp = make([]*engine.FIFO[bus.Response], nCores)
	for c := 0; c < nCores; c++ {
		f.CoreReq[c] = newReq(depth)
		f.CoreResp[c] = newResp(depth)
	}
	f.BankReq = make([]*engine.FIFO[bus.Request], nBanks)
	f.BankResp = make([]*engine.FIFO[bus.Response], nBanks)
	for b := 0; b < nBanks; b++ {
		f.BankReq[b] = newReq(depth)
		f.BankResp[b] = newResp(depth)
	}

	// Per-tile egress FIFOs, one per destination group; per-tile ingress
	// FIFO from its group router.
	tileEgressReq := make([][]*engine.FIFO[bus.Request], nTiles)
	tileEgressResp := make([][]*engine.FIFO[bus.Response], nTiles)
	tileIngressReq := make([]*engine.FIFO[bus.Request], nTiles)
	tileIngressResp := make([]*engine.FIFO[bus.Response], nTiles)
	for t := 0; t < nTiles; t++ {
		tileEgressReq[t] = make([]*engine.FIFO[bus.Request], nGroups)
		tileEgressResp[t] = make([]*engine.FIFO[bus.Response], nGroups)
		for g := 0; g < nGroups; g++ {
			tileEgressReq[t][g] = newReq(depth)
			tileEgressResp[t][g] = newResp(depth)
		}
		tileIngressReq[t] = newReq(depth)
		tileIngressResp[t] = newResp(depth)
	}

	// Inter-group links (ordered pairs, g != h) and intra-group merge
	// links (g == g).
	linkReq := make([][]*engine.FIFO[bus.Request], nGroups)
	linkResp := make([][]*engine.FIFO[bus.Response], nGroups)
	for g := 0; g < nGroups; g++ {
		linkReq[g] = make([]*engine.FIFO[bus.Request], nGroups)
		linkResp[g] = make([]*engine.FIFO[bus.Response], nGroups)
		for h := 0; h < nGroups; h++ {
			linkReq[g][h] = newReq(depth)
			linkResp[g][h] = newResp(depth)
		}
	}

	// --- Request network ---

	// Tile routers: local cores + group ingress → local banks + per-group
	// egress.
	for t := 0; t < nTiles; t++ {
		t := t
		in := make([]*engine.FIFO[bus.Request], 0, topo.CoresPerTile+1)
		for c := 0; c < topo.CoresPerTile; c++ {
			in = append(in, f.CoreReq[t*topo.CoresPerTile+c])
		}
		in = append(in, tileIngressReq[t])
		out := make([]*engine.FIFO[bus.Request], 0, topo.BanksPerTile+nGroups)
		for b := 0; b < topo.BanksPerTile; b++ {
			out = append(out, f.BankReq[t*topo.BanksPerTile+b])
		}
		out = append(out, tileEgressReq[t]...)
		tt := int32(t)
		route := func(r bus.Request) int {
			bank := rt.bankOf(r.Addr)
			if rt.tileOfBank[bank] == tt {
				return int(rt.bankPortLocal[bank])
			}
			return int(rt.bankPortRemote[bank])
		}
		f.reqRouters = append(f.reqRouters, NewRouter("tile-req", in, out, route))
	}

	// Link arbiters: merge the member tiles' per-destination egress FIFOs
	// onto the (g→h) link.
	for g := 0; g < nGroups; g++ {
		for h := 0; h < nGroups; h++ {
			in := make([]*engine.FIFO[bus.Request], 0, topo.TilesPerGroup)
			for ti := 0; ti < topo.TilesPerGroup; ti++ {
				in = append(in, tileEgressReq[g*topo.TilesPerGroup+ti][h])
			}
			out := []*engine.FIFO[bus.Request]{linkReq[g][h]}
			f.reqRouters = append(f.reqRouters,
				NewRouter("link-req", in, out, func(bus.Request) int { return 0 }))
		}
	}

	// Group distribution routers: incoming links → member tile ingress.
	for g := 0; g < nGroups; g++ {
		g := g
		in := make([]*engine.FIFO[bus.Request], 0, nGroups)
		for h := 0; h < nGroups; h++ {
			in = append(in, linkReq[h][g])
		}
		out := make([]*engine.FIFO[bus.Request], 0, topo.TilesPerGroup)
		for ti := 0; ti < topo.TilesPerGroup; ti++ {
			out = append(out, tileIngressReq[g*topo.TilesPerGroup+ti])
		}
		route := func(r bus.Request) int {
			return int(rt.bankPortGroup[rt.bankOf(r.Addr)])
		}
		f.reqRouters = append(f.reqRouters, NewRouter("group-req", in, out, route))
	}

	// --- Response network (mirror, routed by destination core) ---

	for t := 0; t < nTiles; t++ {
		t := t
		var in []*engine.FIFO[bus.Response]
		for b := 0; b < topo.BanksPerTile; b++ {
			in = append(in, f.BankResp[t*topo.BanksPerTile+b])
		}
		in = append(in, tileIngressResp[t])
		var out []*engine.FIFO[bus.Response]
		for c := 0; c < topo.CoresPerTile; c++ {
			out = append(out, f.CoreResp[t*topo.CoresPerTile+c])
		}
		out = append(out, tileEgressResp[t]...)
		tt := int32(t)
		route := func(r bus.Response) int {
			if rt.tileOfCore[r.Dst] == tt {
				return int(rt.corePortLocal[r.Dst])
			}
			return int(rt.corePortRemote[r.Dst])
		}
		f.respRouters = append(f.respRouters, NewRouter("tile-resp", in, out, route))
	}

	for g := 0; g < nGroups; g++ {
		for h := 0; h < nGroups; h++ {
			in := make([]*engine.FIFO[bus.Response], 0, topo.TilesPerGroup)
			for ti := 0; ti < topo.TilesPerGroup; ti++ {
				in = append(in, tileEgressResp[g*topo.TilesPerGroup+ti][h])
			}
			out := []*engine.FIFO[bus.Response]{linkResp[g][h]}
			f.respRouters = append(f.respRouters,
				NewRouter("link-resp", in, out, func(bus.Response) int { return 0 }))
		}
	}

	for g := 0; g < nGroups; g++ {
		g := g
		var in []*engine.FIFO[bus.Response]
		for h := 0; h < nGroups; h++ {
			in = append(in, linkResp[h][g])
		}
		var out []*engine.FIFO[bus.Response]
		for ti := 0; ti < topo.TilesPerGroup; ti++ {
			out = append(out, tileIngressResp[g*topo.TilesPerGroup+ti])
		}
		route := func(r bus.Response) int {
			return int(rt.corePortGroup[r.Dst])
		}
		f.respRouters = append(f.respRouters, NewRouter("group-resp", in, out, route))
	}

	// Wire the wake conditions: pushing into any input stage of a router
	// marks that router dirty. Terminal FIFOs (BankReq, CoreResp) are no
	// router's input; their consumers (banks, the platform's delivery
	// loop) hang their own hooks off them.
	f.reqActive = engine.MakeActiveSet(len(f.reqRouters))
	for i, r := range f.reqRouters {
		i := i
		wake := func() { f.wakeReq(i) }
		for _, q := range r.in {
			q.OnPush(wake)
		}
	}
	f.respActive = engine.MakeActiveSet(len(f.respRouters))
	for i, r := range f.respRouters {
		i := i
		wake := func() { f.wakeResp(i) }
		for _, q := range r.in {
			q.OnPush(wake)
		}
	}

	return f
}

// Tick advances every router by one cycle — the dense reference loop,
// retained for differential testing against TickActive.
func (f *Fabric) Tick() {
	for _, r := range f.reqRouters {
		r.Tick()
	}
	for _, r := range f.respRouters {
		r.Tick()
	}
}

// TickActive advances only the routers with occupied input stages, in
// the same order the dense Tick would have reached them (request routers
// before response routers, ascending index). Idle routers' Ticks are
// no-ops, so the two loops are behaviorally identical; this one's cost
// is proportional to live traffic instead of fabric size. A router woken
// mid-pass by an upstream push stays dirty for the next cycle, exactly
// like the dense loop where its new entry is not yet visible.
//
// It returns the number of routers ticked, feeding the kernel's
// ticked-vs-skipped accounting (skipped = NumRouters() - ticked).
func (f *Fabric) TickActive() int {
	f.reqScratch = f.reqActive.AppendTo(f.reqScratch[:0])
	for _, i := range f.reqScratch {
		r := f.reqRouters[i]
		r.Tick()
		if !r.Busy() {
			f.reqActive.Remove(i)
		}
	}
	f.respScratch = f.respActive.AppendTo(f.respScratch[:0])
	for _, i := range f.respScratch {
		r := f.respRouters[i]
		r.Tick()
		if !r.Busy() {
			f.respActive.Remove(i)
		}
	}
	return len(f.reqScratch) + len(f.respScratch)
}

// NumRouters returns the total router count in both networks.
func (f *Fabric) NumRouters() int {
	return len(f.reqRouters) + len(f.respRouters)
}

// Busy reports whether any router is on a dirty list — conservatively,
// whether any message may still be moving inside the fabric. Terminal
// delivery ports (BankReq, CoreResp) are owned by their consumers and
// not counted here.
func (f *Fabric) Busy() bool {
	return !f.reqActive.Empty() || !f.respActive.Empty()
}

// Flits returns the cumulative number of hop traversals in both networks,
// the unit the energy model charges for interconnect activity.
func (f *Fabric) Flits() uint64 {
	var total uint64
	for _, r := range f.reqRouters {
		total += r.Forwards
	}
	for _, r := range f.respRouters {
		total += r.Forwards
	}
	return total
}

// InFlight returns the number of messages currently queued anywhere in the
// fabric, including injection and delivery ports.
func (f *Fabric) InFlight() int {
	total := 0
	for _, q := range f.allReqFIFOs {
		total += q.Len()
	}
	for _, q := range f.allRespFIFOs {
		total += q.Len()
	}
	return total
}
