// Package noc models the hierarchical interconnect of a MemPool-class
// manycore: cores grouped into tiles, tiles into groups, groups connected
// all-to-all. Requests and responses travel on two disjoint networks
// (protocol deadlock freedom). Every port is a bounded, timestamped FIFO:
// one cycle per hop, credit-style backpressure, round-robin arbitration,
// and head-of-line blocking — the ingredients that turn a hot-spot into
// tree saturation, which the paper's interference experiment (Fig. 5)
// depends on.
package noc

import "fmt"

// Topology describes the core/bank/tile/group arrangement. Memory is
// word-interleaved across all banks system-wide, as in MemPool's shared L1.
type Topology struct {
	CoresPerTile  int
	BanksPerTile  int
	TilesPerGroup int
	NumGroups     int
}

// MemPool256 is the paper's evaluation platform: 256 cores and 1024 SPM
// banks in 64 tiles of 4 cores and 16 banks, 16 tiles per group, 4 groups.
func MemPool256() Topology {
	return Topology{CoresPerTile: 4, BanksPerTile: 16, TilesPerGroup: 16, NumGroups: 4}
}

// Small returns a reduced platform for unit tests: 16 cores, 64 banks,
// 2 groups of 2 tiles with 4 cores and 16 banks each.
func Small() Topology {
	return Topology{CoresPerTile: 4, BanksPerTile: 16, TilesPerGroup: 2, NumGroups: 2}
}

// Medium returns a quarter-scale MemPool for benchmarks: 64 cores and 256
// banks in 16 tiles, 4 groups.
func Medium() Topology {
	return Topology{CoresPerTile: 4, BanksPerTile: 16, TilesPerGroup: 4, NumGroups: 4}
}

// TeraPool1024 is the TeraPool scale-up evaluated by Bertuletti et al.:
// 1024 cores and 4096 SPM banks in 128 tiles of 8 cores and 32 banks
// each, 32 tiles per group, 4 groups. It stretches the same hierarchical
// fabric one level denser than MemPool, for sweeps beyond the paper's
// 256 cores.
func TeraPool1024() Topology {
	return Topology{CoresPerTile: 8, BanksPerTile: 32, TilesPerGroup: 32, NumGroups: 4}
}

// Validate checks structural sanity.
func (t Topology) Validate() error {
	switch {
	case t.CoresPerTile <= 0:
		return fmt.Errorf("noc: CoresPerTile = %d", t.CoresPerTile)
	case t.BanksPerTile <= 0:
		return fmt.Errorf("noc: BanksPerTile = %d", t.BanksPerTile)
	case t.TilesPerGroup <= 0:
		return fmt.Errorf("noc: TilesPerGroup = %d", t.TilesPerGroup)
	case t.NumGroups <= 0:
		return fmt.Errorf("noc: NumGroups = %d", t.NumGroups)
	}
	return nil
}

// NumTiles returns the total tile count.
func (t Topology) NumTiles() int { return t.TilesPerGroup * t.NumGroups }

// NumCores returns the total core count.
func (t Topology) NumCores() int { return t.NumTiles() * t.CoresPerTile }

// NumBanks returns the total bank count.
func (t Topology) NumBanks() int { return t.NumTiles() * t.BanksPerTile }

// TileOfCore returns the tile housing core c.
func (t Topology) TileOfCore(c int) int { return c / t.CoresPerTile }

// TileOfBank returns the tile housing bank b.
func (t Topology) TileOfBank(b int) int { return b / t.BanksPerTile }

// GroupOfTile returns the group containing tile ti.
func (t Topology) GroupOfTile(ti int) int { return ti / t.TilesPerGroup }

// GroupOfCore returns the group containing core c.
func (t Topology) GroupOfCore(c int) int { return t.GroupOfTile(t.TileOfCore(c)) }

// GroupOfBank returns the group containing bank b.
func (t Topology) GroupOfBank(b int) int { return t.GroupOfTile(t.TileOfBank(b)) }

// BankOfAddr maps a byte address to its bank: word-interleaved across all
// banks, exactly like MemPool's sequentially-interleaved L1 region.
func (t Topology) BankOfAddr(addr uint32) int {
	return int((addr >> 2) % uint32(t.NumBanks()))
}

// WordOfAddr maps a byte address to the bank-local word index.
func (t Topology) WordOfAddr(addr uint32) int {
	return int((addr >> 2) / uint32(t.NumBanks()))
}

// Distance classifies the hop count class between a core and a bank:
// 0 = same tile, 1 = same group, 2 = remote group. Used by tracing and the
// energy model.
func (t Topology) Distance(core, bank int) int {
	ct, bt := t.TileOfCore(core), t.TileOfBank(bank)
	switch {
	case ct == bt:
		return 0
	case t.GroupOfTile(ct) == t.GroupOfTile(bt):
		return 1
	default:
		return 2
	}
}
