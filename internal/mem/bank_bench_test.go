package mem

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/engine"
)

// BenchmarkBankTick measures one full bank service cycle: pop a request,
// run the adapter, push the response. AMO is the paper's hot operation
// (single-round-trip atomics), so it is the regime that matters. The
// HandleAppend path reuses the bank's scratch buffer, so steady state
// must run at 0 allocs/op.
func BenchmarkBankTick(b *testing.B) {
	for _, tc := range []struct {
		name string
		op   bus.Op
	}{
		{"op=amoadd", bus.AmoAdd},
		{"op=load", bus.Load},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var clock engine.Clock
			in := engine.NewFIFO[bus.Request](2, &clock)
			out := engine.NewFIFO[bus.Response](2, &clock)
			bank := NewBank(0, 1, 64, PlainAdapter{}, in, out)

			step := func() {
				in.Push(bus.Request{Op: tc.op, Addr: 0, Data: 1, Src: 0})
				clock.Advance()
				bank.Tick()
				clock.Advance()
				if _, ok := out.Pop(); !ok {
					b.Fatal("no response after bank tick")
				}
			}
			step() // warm the scratch buffer before measuring
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
}
