package mem

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/engine"
)

func TestAmoALU(t *testing.T) {
	cases := []struct {
		op       bus.Op
		old, arg uint32
		want     uint32
	}{
		{bus.AmoAdd, 5, 3, 8},
		{bus.AmoAdd, 0xffffffff, 1, 0},
		{bus.AmoSwap, 5, 3, 3},
		{bus.AmoAnd, 0b1100, 0b1010, 0b1000},
		{bus.AmoOr, 0b1100, 0b1010, 0b1110},
		{bus.AmoXor, 0b1100, 0b1010, 0b0110},
		{bus.AmoMin, 5, 0xffffffff, 0xffffffff}, // -1 < 5 signed
		{bus.AmoMax, 5, 0xffffffff, 5},
		{bus.AmoMinU, 5, 0xffffffff, 5},
		{bus.AmoMaxU, 5, 0xffffffff, 0xffffffff},
	}
	for _, c := range cases {
		if got := AmoALU(c.op, c.old, c.arg); got != c.want {
			t.Errorf("AmoALU(%v, %d, %d) = %d, want %d", c.op, c.old, c.arg, got, c.want)
		}
	}
}

func TestAmoALUPanicsOnNonAMO(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AmoALU(Load) did not panic")
		}
	}()
	AmoALU(bus.Load, 0, 0)
}

// newTestBank wires a bank with its own FIFOs for isolated testing.
func newTestBank(t *testing.T, adapter Adapter) (*Bank, *engine.Clock) {
	t.Helper()
	clk := &engine.Clock{}
	in := engine.NewFIFO[bus.Request](4, clk)
	out := engine.NewFIFO[bus.Response](4, clk)
	// Bank 0 of 1 bank: every word-aligned address belongs to it.
	return NewBank(0, 1, 1024, adapter, in, out), clk
}

func runBank(b *Bank, clk *engine.Clock, cycles int) []bus.Response {
	var got []bus.Response
	for i := 0; i < cycles; i++ {
		b.Tick()
		clk.Advance()
		if r, ok := b.Out.Pop(); ok {
			got = append(got, r)
		}
	}
	return got
}

func TestBankLoadStore(t *testing.T) {
	b, clk := newTestBank(t, PlainAdapter{})
	b.In.Push(bus.Request{Op: bus.Store, Addr: 8, Data: 99, Src: 1})
	clk.Advance()
	b.In.Push(bus.Request{Op: bus.Load, Addr: 8, Src: 1})
	got := runBank(b, clk, 10)
	if len(got) != 2 {
		t.Fatalf("got %d responses, want 2", len(got))
	}
	if got[0].Op != bus.Store || !got[0].OK {
		t.Errorf("store ack = %v", got[0])
	}
	if got[1].Op != bus.Load || got[1].Data != 99 {
		t.Errorf("load = %v, want data 99", got[1])
	}
	if b.Peek(8) != 99 {
		t.Errorf("memory word = %d, want 99", b.Peek(8))
	}
}

func TestBankOneRequestPerCycle(t *testing.T) {
	b, clk := newTestBank(t, PlainAdapter{})
	b.In.Push(bus.Request{Op: bus.Load, Addr: 0, Src: 0})
	b.In.Push(bus.Request{Op: bus.Load, Addr: 4, Src: 0})
	clk.Advance()
	b.Tick() // cycle 1: first request processed
	if b.Stats.Accesses != 1 {
		t.Fatalf("accesses after one tick = %d, want 1", b.Stats.Accesses)
	}
	clk.Advance()
	b.Tick()
	if b.Stats.Accesses != 2 {
		t.Fatalf("accesses after two ticks = %d, want 2", b.Stats.Accesses)
	}
}

func TestBankAMO(t *testing.T) {
	b, clk := newTestBank(t, PlainAdapter{})
	b.Poke(0, 10)
	b.In.Push(bus.Request{Op: bus.AmoAdd, Addr: 0, Data: 5, Src: 2})
	got := runBank(b, clk, 5)
	if len(got) != 1 || got[0].Data != 10 {
		t.Fatalf("AMO response = %v, want old value 10", got)
	}
	if b.Peek(0) != 15 {
		t.Errorf("memory after amoadd = %d, want 15", b.Peek(0))
	}
}

func TestBankBackpressureOnResponsePort(t *testing.T) {
	clk := &engine.Clock{}
	in := engine.NewFIFO[bus.Request](8, clk)
	out := engine.NewFIFO[bus.Response](1, clk) // tiny response port
	b := NewBank(0, 1, 64, PlainAdapter{}, in, out)
	for i := 0; i < 4; i++ {
		in.Push(bus.Request{Op: bus.Load, Addr: uint32(4 * i), Src: 0})
	}
	clk.Advance()
	// Never drain the output: the bank must stop accepting once blocked.
	for i := 0; i < 10; i++ {
		b.Tick()
		clk.Advance()
	}
	if b.Stats.Accesses > 2 {
		t.Errorf("bank processed %d requests with a blocked response port", b.Stats.Accesses)
	}
	// Drain and confirm no loss.
	seen := 0
	for i := 0; i < 30 && seen < 4; i++ {
		if _, ok := out.Pop(); ok {
			seen++
		}
		b.Tick()
		clk.Advance()
	}
	if seen != 4 {
		t.Errorf("responses seen = %d, want 4", seen)
	}
}

func TestBankUnalignedPanics(t *testing.T) {
	b, _ := newTestBank(t, PlainAdapter{})
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access did not panic")
		}
	}()
	b.Peek(2)
}

func TestBankWrongBankPanics(t *testing.T) {
	clk := &engine.Clock{}
	in := engine.NewFIFO[bus.Request](2, clk)
	out := engine.NewFIFO[bus.Response](2, clk)
	b := NewBank(1, 4, 64, PlainAdapter{}, in, out) // bank 1 of 4
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-bank access did not panic")
		}
	}()
	b.Peek(0) // word 0 belongs to bank 0
}

func TestBankInterleavedIndexing(t *testing.T) {
	clk := &engine.Clock{}
	in := engine.NewFIFO[bus.Request](2, clk)
	out := engine.NewFIFO[bus.Response](2, clk)
	b := NewBank(1, 4, 64, PlainAdapter{}, in, out)
	// Word addresses 1, 5, 9 map to bank 1 local words 0, 1, 2.
	b.Poke(4, 11)
	b.Poke(4+16, 22)
	if b.Peek(4) != 11 || b.Peek(20) != 22 {
		t.Error("interleaved indexing broken")
	}
}

func TestPlainAdapterRefusesReservations(t *testing.T) {
	b, clk := newTestBank(t, PlainAdapter{})
	b.Poke(0, 7)
	b.In.Push(bus.Request{Op: bus.LR, Addr: 0, Src: 0})
	clk.Advance()
	b.In.Push(bus.Request{Op: bus.SC, Addr: 0, Data: 1, Src: 0})
	got := runBank(b, clk, 8)
	if len(got) != 2 {
		t.Fatalf("responses = %d, want 2", len(got))
	}
	if got[0].Data != 7 || got[0].OK {
		t.Errorf("plain LR = %v, want data with OK=false", got[0])
	}
	if got[1].OK {
		t.Errorf("plain SC succeeded: %v", got[1])
	}
	if b.Peek(0) != 7 {
		t.Error("failed SC wrote memory")
	}
}
