package mem

import "repro/internal/bus"

// HandleBasic implements the semantics shared by every adapter: Load,
// Store and the AMOs. It reports whether it handled the request and
// whether memory was written (so policy adapters can run their reservation
// invalidation / monitor hooks).
func HandleBasic(req bus.Request, s Storage) (resp bus.Response, wrote, handled bool) {
	switch {
	case req.Op == bus.Load:
		return bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: true}, false, true
	case req.Op == bus.Store:
		s.Write(req.Addr, req.Data)
		return bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: true},
			true, true
	case req.Op.IsAMO():
		old := s.Read(req.Addr)
		s.Write(req.Addr, AmoALU(req.Op, old, req.Data))
		return bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: old, OK: true}, true, true
	}
	return bus.Response{}, false, false
}

// PlainAdapter supports only the basic operations. LR reads without placing
// a reservation so a following SC always fails; LRwait/Mwait respond
// immediately with the value but OK=false (refused), matching the software
// contract that a refused reservation is discovered by the failing
// SC/SCwait. It exists as the no-synchronization baseline and for tests.
type PlainAdapter struct{}

// Name implements Adapter.
func (PlainAdapter) Name() string { return "plain" }

// Handle implements Adapter.
func (a PlainAdapter) Handle(req bus.Request, s Storage) []bus.Response {
	return a.HandleAppend(req, s, nil)
}

// HandleAppend implements AppendAdapter.
func (PlainAdapter) HandleAppend(req bus.Request, s Storage, out []bus.Response) []bus.Response {
	if resp, _, ok := HandleBasic(req, s); ok {
		return append(out, resp)
	}
	switch req.Op {
	case bus.LR, bus.LRWait, bus.MWait:
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: false})
	case bus.SC, bus.SCWait:
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
	case bus.WakeUpReq:
		// No queues to wake; drop.
		return out
	}
	return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
}
