// Package mem models an SPM memory bank with a pluggable atomics adapter.
//
// A bank processes at most one request per cycle from its input FIFO and
// emits responses through a one-per-cycle output port. All semantics beyond
// plain word storage — AMOs, LR/SC reservations, the LRSCwait queues and
// Colibri — live in the Adapter, mirroring the paper's "LRSCwait adapter
// placed in front of each memory bank".
package mem

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/engine"
)

// Storage is the adapter's view of the bank's word array plus its identity.
// Addresses are global byte addresses; the bank resolves interleaving.
type Storage interface {
	// Read returns the word at the (word-aligned) global byte address.
	Read(addr uint32) uint32
	// Write commits a word to the global byte address. Adapters must
	// perform all reservation invalidation / monitor checks themselves
	// before or after calling Write; the bank does not call back.
	Write(addr uint32, v uint32)
	// BankID identifies the bank (for tracing and assertions).
	BankID() int
}

// Adapter implements the memory-side semantics of every operation. Handle
// is invoked once per accepted request and returns the responses to emit
// (possibly none — e.g. an LRwait that must wait, or several — e.g. a store
// that fires an Mwait monitor).
type Adapter interface {
	Handle(req bus.Request, s Storage) []bus.Response
	// Name identifies the policy in reports.
	Name() string
}

// AppendAdapter is an optional Adapter extension for the hot path: the
// responses are appended to a caller-provided buffer instead of a fresh
// slice per request. Banks detect it once at construction and reuse a
// per-bank scratch buffer, making a steady-state Tick allocation-free.
// Every built-in adapter implements it (with Handle delegating), and
// custom adapters that don't still work through plain Handle.
type AppendAdapter interface {
	Adapter
	HandleAppend(req bus.Request, s Storage, out []bus.Response) []bus.Response
}

// AdapterStats is the policy-level event vocabulary shared by every
// reservation adapter: how many reservations were granted or refused,
// how store-conditionals fared, and how many armed reservations were
// killed by intervening writes.
type AdapterStats struct {
	// Grants counts LR/LRwait/Mwait reservations handed out.
	Grants uint64
	// Refused counts LRwait/Mwait requests rejected because no queue
	// slot was free (the core falls back to retrying).
	Refused uint64
	// SCSuccess and SCFail count store-conditional outcomes.
	SCSuccess uint64
	SCFail    uint64
	// Invalidations counts reservations killed by intervening writes.
	Invalidations uint64
}

// StatsReporter is an optional Adapter extension: adapters implementing
// it surface their policy-level counters to the platform's aggregate
// statistics (platform.System.PolicyStats) without the platform knowing
// the concrete adapter type — custom out-of-tree policies report through
// the same interface as the built-ins.
type StatsReporter interface {
	AdapterStats() AdapterStats
}

// AmoALU applies an atomic read-modify-write operation and returns the new
// value to store. It is shared by every adapter.
func AmoALU(op bus.Op, old, operand uint32) uint32 {
	switch op {
	case bus.AmoAdd:
		return old + operand
	case bus.AmoSwap:
		return operand
	case bus.AmoAnd:
		return old & operand
	case bus.AmoOr:
		return old | operand
	case bus.AmoXor:
		return old ^ operand
	case bus.AmoMin:
		if int32(operand) < int32(old) {
			return operand
		}
		return old
	case bus.AmoMax:
		if int32(operand) > int32(old) {
			return operand
		}
		return old
	case bus.AmoMinU:
		if operand < old {
			return operand
		}
		return old
	case bus.AmoMaxU:
		if operand > old {
			return operand
		}
		return old
	default:
		panic(fmt.Sprintf("mem: AmoALU called with %v", op))
	}
}

// Stats aggregates a bank's activity for the energy model.
type Stats struct {
	// Accesses counts processed requests (bank activations).
	Accesses uint64
	// Writes counts committed word writes.
	Writes uint64
	// StallCycles counts cycles the bank could not accept a request
	// because its response port was backed up.
	StallCycles uint64
	// Responses counts responses produced by the adapter (a single
	// request may produce several: a store that fires a monitor, a
	// release that grants the next waiter).
	Responses uint64
}

// Bank is one SPM bank.
type Bank struct {
	id       int
	numBanks int
	words    []uint32
	adapter  Adapter
	// appender is the adapter's AppendAdapter view, resolved once at
	// construction so the per-request dispatch needs no type assertion
	// and no fresh response slice (nil when the adapter is Handle-only).
	appender AppendAdapter

	// In is the request delivery FIFO (owned by the fabric).
	In *engine.FIFO[bus.Request]
	// Out is the response injection FIFO (owned by the fabric).
	Out *engine.FIFO[bus.Response]

	// pending holds responses produced but not yet pushed (the response
	// port moves one per cycle).
	pending []bus.Response
	// scratch is the reusable HandleAppend buffer.
	scratch []bus.Response

	Stats Stats
}

// NewBank creates bank id of numBanks with wordsPerBank words of local
// storage, attached to the given fabric FIFOs.
func NewBank(id, numBanks, wordsPerBank int, adapter Adapter,
	in *engine.FIFO[bus.Request], out *engine.FIFO[bus.Response]) *Bank {
	if adapter == nil {
		panic("mem: nil adapter")
	}
	b := &Bank{
		id:       id,
		numBanks: numBanks,
		words:    make([]uint32, wordsPerBank),
		adapter:  adapter,
		In:       in,
		Out:      out,
	}
	if aa, ok := adapter.(AppendAdapter); ok {
		b.appender = aa
	}
	return b
}

// BankID implements Storage.
func (b *Bank) BankID() int { return b.id }

// index maps a global byte address to the local word index, asserting
// alignment and residency.
func (b *Bank) index(addr uint32) int {
	if addr&3 != 0 {
		panic(fmt.Sprintf("mem: unaligned access %#x at bank %d", addr, b.id))
	}
	word := addr >> 2
	if int(word%uint32(b.numBanks)) != b.id {
		panic(fmt.Sprintf("mem: address %#x routed to wrong bank %d", addr, b.id))
	}
	idx := int(word / uint32(b.numBanks))
	if idx >= len(b.words) {
		panic(fmt.Sprintf("mem: address %#x beyond bank %d capacity", addr, b.id))
	}
	return idx
}

// Read implements Storage.
func (b *Bank) Read(addr uint32) uint32 { return b.words[b.index(addr)] }

// Write implements Storage.
func (b *Bank) Write(addr uint32, v uint32) {
	b.words[b.index(addr)] = v
	b.Stats.Writes++
}

// Adapter returns the bank's atomics adapter.
func (b *Bank) Adapter() Adapter { return b.adapter }

// Poke writes a word directly, bypassing timing — used to initialize data
// sections before a run.
func (b *Bank) Poke(addr uint32, v uint32) { b.words[b.index(addr)] = v }

// Peek reads a word directly, bypassing timing.
func (b *Bank) Peek(addr uint32) uint32 { return b.words[b.index(addr)] }

// Tick processes one cycle: first drain one pending response, then (if no
// backlog remains) accept and handle one request. Refusing to accept while
// responses are backed up gives the response port priority and bounds the
// pending queue.
func (b *Bank) Tick() {
	if len(b.pending) > 0 {
		if b.Out.Push(b.pending[0]) {
			copy(b.pending, b.pending[1:])
			b.pending = b.pending[:len(b.pending)-1]
		}
		if len(b.pending) > 0 {
			b.Stats.StallCycles++
			return
		}
	}
	req, ok := b.In.Pop()
	if !ok {
		return
	}
	b.Stats.Accesses++
	var resps []bus.Response
	if b.appender != nil {
		b.scratch = b.appender.HandleAppend(req, b, b.scratch[:0])
		resps = b.scratch
	} else {
		resps = b.adapter.Handle(req, b)
	}
	b.Stats.Responses += uint64(len(resps))
	for _, r := range resps {
		if len(b.pending) == 0 && b.Out.Push(r) {
			continue
		}
		b.pending = append(b.pending, r)
	}
}

// Idle reports whether the bank has no queued input or pending output —
// its quiescence predicate: an idle bank's Tick is a no-op, so the
// activity-driven kernel parks it until a request is pushed into In (the
// wake condition it registers via the FIFO's push hook). Waiters parked
// in an adapter's reservation queue do not keep the bank awake: they
// consume no bank cycles until a new request arrives, which is the
// paper's polling-free property applied to the simulator itself.
func (b *Bank) Idle() bool { return b.In.Len() == 0 && len(b.pending) == 0 }
