package colibri

import (
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/engine"
)

// fakeStore is a map-backed mem.Storage.
type fakeStore struct{ words map[uint32]uint32 }

func newFakeStore() *fakeStore            { return &fakeStore{words: map[uint32]uint32{}} }
func (f *fakeStore) Read(a uint32) uint32 { return f.words[a] }
func (f *fakeStore) Write(a, v uint32)    { f.words[a] = v }
func (f *fakeStore) BankID() int          { return 0 }

// chanSink is an unbounded ReqSink recording injection order.
type chanSink struct{ q []bus.Request }

func (s *chanSink) TryPush(r bus.Request) bool { s.q = append(s.q, r); return true }
func (s *chanSink) pop() (bus.Request, bool) {
	if len(s.q) == 0 {
		return bus.Request{}, false
	}
	r := s.q[0]
	s.q = s.q[1:]
	return r, true
}

func lrw(core int, addr uint32) bus.Request {
	return bus.Request{Op: bus.LRWait, Addr: addr, Src: core}
}
func scw(core int, addr, data uint32) bus.Request {
	return bus.Request{Op: bus.SCWait, Addr: addr, Data: data, Src: core}
}
func mw(core int, addr, expected uint32) bus.Request {
	return bus.Request{Op: bus.MWait, Addr: addr, Data: expected, Src: core}
}
func st(core int, addr, data uint32) bus.Request {
	return bus.Request{Op: bus.Store, Addr: addr, Data: data, Src: core}
}

// --- Controller-only unit tests (messages handled synchronously) ---

func TestControllerSingleEpisode(t *testing.T) {
	s := newFakeStore()
	s.Write(0, 7)
	c := NewController(4)
	r := c.Handle(lrw(0, 0), s)
	if len(r) != 1 || !r[0].OK || r[0].Data != 7 {
		t.Fatalf("LRwait = %v", r)
	}
	if c.ActiveQueues() != 1 {
		t.Fatalf("active queues = %d", c.ActiveQueues())
	}
	r = c.Handle(scw(0, 0, 8), s)
	if len(r) != 1 || !r[0].OK {
		t.Fatalf("SCwait = %v", r)
	}
	if s.Read(0) != 8 {
		t.Errorf("memory = %d, want 8", s.Read(0))
	}
	if c.ActiveQueues() != 0 {
		t.Error("alone head did not free its queue")
	}
}

func TestControllerEnqueueSendsSuccessorUpdate(t *testing.T) {
	s := newFakeStore()
	c := NewController(4)
	c.Handle(lrw(0, 0), s)
	r := c.Handle(lrw(1, 0), s)
	if len(r) != 1 {
		t.Fatalf("second LRwait responses = %v", r)
	}
	su := r[0]
	if su.Kind != bus.RespSuccUpdate || su.Dst != 0 || su.Succ != 1 || su.SuccOp != bus.LRWait {
		t.Fatalf("SuccessorUpdate = %+v", su)
	}
	// Core 1 must NOT have received a response.
	for _, resp := range r {
		if resp.Kind == bus.RespNormal && resp.Dst == 1 {
			t.Error("waiting core received a premature response")
		}
	}
}

func TestControllerWakeUpPromotes(t *testing.T) {
	s := newFakeStore()
	c := NewController(4)
	c.Handle(lrw(0, 0), s)
	c.Handle(lrw(1, 0), s) // SuccessorUpdate to 0 (delivered out of band)
	r := c.Handle(scw(0, 0, 42), s)
	if len(r) != 1 || !r[0].OK {
		t.Fatalf("SCwait = %v", r)
	}
	if c.ActiveQueues() != 1 {
		t.Fatal("queue freed while a waiter existed")
	}
	// Qnode 0 bounces the WakeUpRequest naming core 1.
	wr := bus.Request{Op: bus.WakeUpReq, Addr: 0, Src: 0, Succ: 1, SuccOp: bus.LRWait}
	r = c.Handle(wr, s)
	if len(r) != 1 || r[0].Dst != 1 || !r[0].OK || r[0].Data != 42 {
		t.Fatalf("promotion grant = %v", r)
	}
	// Core 1 alone now; its SCwait frees the queue.
	r = c.Handle(scw(1, 0, 43), s)
	if !r[0].OK || c.ActiveQueues() != 0 {
		t.Fatalf("final SCwait = %v, queues = %d", r, c.ActiveQueues())
	}
}

func TestControllerStrayWakeUpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("stray WakeUpRequest did not panic")
		}
	}()
	s := newFakeStore()
	c := NewController(2)
	c.Handle(bus.Request{Op: bus.WakeUpReq, Addr: 0, Succ: 1, SuccOp: bus.LRWait}, s)
}

func TestControllerRefusesWhenNoFreeQueue(t *testing.T) {
	s := newFakeStore()
	c := NewController(1)
	c.Handle(lrw(0, 0), s)
	r := c.Handle(lrw(1, 4), s) // different address, no free pair
	if len(r) != 1 || r[0].OK {
		t.Fatalf("refusal = %v", r)
	}
	if c.Stats.Refused != 1 {
		t.Errorf("refused = %d", c.Stats.Refused)
	}
	// Same address is fine (joins the existing queue).
	r = c.Handle(lrw(2, 0), s)
	if len(r) != 1 || r[0].Kind != bus.RespSuccUpdate {
		t.Fatalf("same-address enqueue = %v", r)
	}
}

func TestControllerStoreInvalidatesReservation(t *testing.T) {
	s := newFakeStore()
	c := NewController(2)
	c.Handle(lrw(0, 0), s)
	c.Handle(st(9, 0, 5), s)
	r := c.Handle(scw(0, 0, 1), s)
	if r[0].OK {
		t.Error("SCwait succeeded after intervening store")
	}
	if s.Read(0) != 5 {
		t.Error("failed SCwait wrote memory")
	}
	if c.ActiveQueues() != 0 {
		t.Error("failed SCwait did not yield the queue")
	}
}

func TestControllerMwaitMonitorAndFire(t *testing.T) {
	s := newFakeStore()
	s.Write(0, 1)
	c := NewController(2)
	if r := c.Handle(mw(0, 0, 1), s); len(r) != 0 {
		t.Fatalf("Mwait fired early: %v", r)
	}
	// Same-value store: no fire.
	if r := c.Handle(st(9, 0, 1), s); len(r) != 1 {
		t.Fatalf("same-value store fired monitor: %v", r)
	}
	r := c.Handle(st(9, 0, 2), s)
	if len(r) != 2 || r[1].Dst != 0 || r[1].Data != 2 {
		t.Fatalf("monitor fire = %v", r)
	}
	if c.ActiveQueues() != 0 {
		t.Error("alone Mwait head did not free its queue")
	}
}

func TestControllerMwaitImmediateWhenAlreadyChanged(t *testing.T) {
	s := newFakeStore()
	s.Write(0, 10)
	c := NewController(2)
	r := c.Handle(mw(0, 0, 3), s)
	if len(r) != 1 || !r[0].OK || r[0].Data != 10 {
		t.Fatalf("already-changed Mwait = %v", r)
	}
	if c.ActiveQueues() != 0 {
		t.Error("immediate Mwait allocated a queue")
	}
}

// --- Qnode unit tests ---

func TestQnodeForwardsAndTracks(t *testing.T) {
	sink := &chanSink{}
	n := NewQnode(3, sink)
	if !n.TryIssue(lrw(3, 0)) {
		t.Fatal("LRwait injection failed")
	}
	if _, ok := n.Deliver(bus.Response{Op: bus.LRWait, Dst: 3, Data: 5, OK: true}); !ok {
		t.Fatal("grant swallowed")
	}
	if !n.TryIssue(scw(3, 0, 6)) {
		t.Fatal("SCwait injection failed")
	}
	// No successor: nothing beyond the SCwait on the wire.
	if len(sink.q) != 2 {
		t.Fatalf("wire has %d messages, want 2", len(sink.q))
	}
	if _, ok := n.Deliver(bus.Response{Op: bus.SCWait, Dst: 3, OK: true}); !ok {
		t.Fatal("SC response swallowed")
	}
	if !n.Idle() {
		t.Errorf("qnode not idle after episode: %s", n.State())
	}
}

func TestQnodeWakeUpFollowsSCWait(t *testing.T) {
	sink := &chanSink{}
	n := NewQnode(0, sink)
	n.TryIssue(lrw(0, 0))
	n.Deliver(bus.Response{Op: bus.LRWait, Dst: 0, OK: true})
	// Successor arrives while the core computes.
	n.Deliver(bus.Response{Kind: bus.RespSuccUpdate, Dst: 0, Addr: 0,
		Succ: 7, SuccOp: bus.LRWait})
	n.TryIssue(scw(0, 0, 1))
	if len(sink.q) != 3 {
		t.Fatalf("wire has %d messages, want LRwait+SCwait+WakeUp", len(sink.q))
	}
	if sink.q[1].Op != bus.SCWait || sink.q[2].Op != bus.WakeUpReq {
		t.Fatalf("order broken: %v then %v", sink.q[1].Op, sink.q[2].Op)
	}
	if sink.q[2].Succ != 7 {
		t.Errorf("wake-up successor = %d, want 7", sink.q[2].Succ)
	}
}

func TestQnodeLateSuccessorUpdateBounces(t *testing.T) {
	sink := &chanSink{}
	n := NewQnode(0, sink)
	n.TryIssue(lrw(0, 0))
	n.Deliver(bus.Response{Op: bus.LRWait, Dst: 0, OK: true})
	n.TryIssue(scw(0, 0, 1)) // successor unknown: scPassed
	// SuccessorUpdate arrives after the SCwait went by: bounce.
	n.Deliver(bus.Response{Kind: bus.RespSuccUpdate, Dst: 0, Addr: 0,
		Succ: 9, SuccOp: bus.LRWait})
	last := sink.q[len(sink.q)-1]
	if last.Op != bus.WakeUpReq || last.Succ != 9 {
		t.Fatalf("bounce = %v", last)
	}
	if n.Stats.Bounces != 1 {
		t.Errorf("bounces = %d", n.Stats.Bounces)
	}
	n.Deliver(bus.Response{Op: bus.SCWait, Dst: 0, OK: true})
	if !n.Idle() {
		t.Errorf("not idle: %s", n.State())
	}
}

func TestQnodeMwaitAutoCascade(t *testing.T) {
	sink := &chanSink{}
	n := NewQnode(0, sink)
	n.TryIssue(mw(0, 0, 0))
	n.Deliver(bus.Response{Kind: bus.RespSuccUpdate, Dst: 0, Addr: 0,
		Succ: 4, SuccOp: bus.MWait, SuccData: 0})
	// The Mwait grant itself triggers the wake-up — no core action.
	_, delivered := n.Deliver(bus.Response{Op: bus.MWait, Dst: 0, Addr: 0, Data: 1, OK: true})
	if !delivered {
		t.Fatal("Mwait grant swallowed")
	}
	last := sink.q[len(sink.q)-1]
	if last.Op != bus.WakeUpReq || last.Succ != 4 || last.SuccOp != bus.MWait {
		t.Fatalf("cascade wake-up = %v", last)
	}
	if !n.Idle() {
		t.Errorf("not idle: %s", n.State())
	}
}

func TestQnodeDoubleOutstandingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second outstanding LRwait did not panic")
		}
	}()
	n := NewQnode(0, &chanSink{})
	n.TryIssue(lrw(0, 0))
	n.TryIssue(lrw(0, 4))
}

func TestQnodeSCWithoutGrantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SCwait without grant did not panic")
		}
	}()
	n := NewQnode(0, &chanSink{})
	n.TryIssue(scw(0, 0, 1))
}

// --- Full protocol property test ---
//
// A mini network delivers messages between N qnode-driven cores and one
// controller with random interleavings (per-channel FIFO order preserved,
// as the real fabric guarantees). Every core performs K atomic increments
// with LRwait/SCwait; a rogue writer occasionally stores to the contended
// word. Invariants: all cores finish (starvation freedom), the final
// memory value equals the number of successful SCwaits, every slot is
// reclaimed, and every qnode drains to idle.

type propCore struct {
	node    *Qnode
	sink    *chanSink
	state   int // 0 idle, 1 wait grant, 2 granted, 3 wait sc
	val     uint32
	done    int
	retries int
}

func runProtocolSwarm(t *testing.T, seed uint64, nCores, increments, numQueues int, rogue bool) {
	t.Helper()
	rng := engine.NewRNG(seed)
	s := newFakeStore()
	ctrl := NewController(numQueues)
	const addr = 0

	cores := make([]*propCore, nCores)
	toCore := make([][]bus.Response, nCores)
	for i := range cores {
		sink := &chanSink{}
		cores[i] = &propCore{node: NewQnode(i, sink), sink: sink}
	}

	successes := uint32(0)
	rogueWrites := 0
	deliveredToBank := func(r bus.Request) {
		for _, resp := range ctrl.Handle(r, s) {
			if resp.Dst >= nCores {
				continue // rogue writer's store ack: nobody waits for it
			}
			toCore[resp.Dst] = append(toCore[resp.Dst], resp)
		}
	}

	for step := 0; step < 4_000_000; step++ {
		allDone := true
		for _, c := range cores {
			if c.done < increments {
				allDone = false
				break
			}
		}
		if allDone {
			// Drain remaining protocol traffic.
			quiet := true
			for _, c := range cores {
				c.node.Tick()
				if len(c.sink.q) > 0 || !c.node.Idle() {
					quiet = false
				}
			}
			for i := range toCore {
				if len(toCore[i]) > 0 {
					quiet = false
				}
			}
			if quiet {
				break
			}
		}

		switch rng.Intn(4) {
		case 0: // a core acts
			i := rng.Intn(nCores)
			c := cores[i]
			c.node.Tick()
			switch c.state {
			case 0:
				if c.done < increments && !c.node.Busy() {
					if c.node.TryIssue(lrw(i, addr)) {
						c.state = 1
					}
				}
			case 2:
				if !c.node.Busy() && c.node.TryIssue(scw(i, addr, c.val+1)) {
					c.state = 3
				}
			}
		case 1: // deliver one request from a random core channel to the bank
			i := rng.Intn(nCores)
			if r, ok := cores[i].sink.pop(); ok {
				deliveredToBank(r)
			}
		case 2: // deliver one response to a random core
			i := rng.Intn(nCores)
			if len(toCore[i]) > 0 {
				resp := toCore[i][0]
				toCore[i] = toCore[i][1:]
				if out, ok := cores[i].node.Deliver(resp); ok {
					c := cores[i]
					switch out.Op {
					case bus.LRWait:
						c.val = out.Data
						c.state = 2
					case bus.SCWait:
						if out.OK {
							c.done++
							successes++
						} else {
							c.retries++
						}
						c.state = 0
					}
				}
			}
		case 3: // rogue writer
			if rogue && rng.Intn(50) == 0 && rogueWrites < 100 {
				deliveredToBank(st(999, addr, s.Read(addr)+1000))
				rogueWrites++
			}
		}
	}

	for i, c := range cores {
		if c.done != increments {
			t.Fatalf("seed %d: core %d finished %d/%d increments (starvation?)",
				seed, i, c.done, increments)
		}
		if !c.node.Idle() {
			t.Fatalf("seed %d: qnode %d not idle: %s", seed, i, c.node.State())
		}
	}
	if ctrl.ActiveQueues() != 0 {
		t.Fatalf("seed %d: %d queues leaked", seed, ctrl.ActiveQueues())
	}
	want := successes + 1000*uint32(rogueWrites)
	if got := s.Read(addr); got != want {
		t.Fatalf("seed %d: memory = %d, want %d (successes %d, rogue %d)",
			seed, got, want, successes, rogueWrites)
	}
	if successes != uint32(nCores*increments) {
		t.Fatalf("seed %d: successes = %d, want %d", seed, successes, nCores*increments)
	}
}

func TestProtocolSwarmDeterministic(t *testing.T) {
	runProtocolSwarm(t, 1, 4, 8, 2, false)
	runProtocolSwarm(t, 2, 8, 5, 1, false)
	runProtocolSwarm(t, 3, 3, 10, 4, true)
}

func TestProtocolSwarmProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		runProtocolSwarm(t, seed, 5, 4, 2, true)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMwaitBroadcastSwarm: one writer flips a flag; all waiting cores wake
// exactly once, in queue order, via the distributed cascade.
func TestMwaitBroadcastSwarm(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		rng := engine.NewRNG(seed)
		s := newFakeStore()
		ctrl := NewController(1)
		const addr, nWaiters = 0, 6

		nodes := make([]*Qnode, nWaiters)
		sinks := make([]*chanSink, nWaiters)
		toCore := make([][]bus.Response, nWaiters)
		woken := make([]bool, nWaiters)
		var wakeOrder []int
		for i := range nodes {
			sinks[i] = &chanSink{}
			nodes[i] = NewQnode(i, sinks[i])
		}

		// All waiters issue Mwait(expected=0) in index order; the harness
		// delivers the requests to the bank in a random order, which is
		// the order that defines the queue (FIFO at the controller).
		var enqueueOrder []int
		issued, delivered := 0, 0
		storeDone := false
		for step := 0; step < 100000; step++ {
			action := rng.Intn(3)
			if action == 0 && issued < nWaiters {
				if nodes[issued].TryIssue(mw(issued, addr, 0)) {
					issued++
				}
				continue
			}
			if action == 1 {
				i := rng.Intn(nWaiters)
				nodes[i].Tick()
				if r, ok := sinks[i].pop(); ok {
					if r.Op == bus.MWait {
						enqueueOrder = append(enqueueOrder, r.Src)
					}
					for _, resp := range ctrl.Handle(r, s) {
						toCore[resp.Dst] = append(toCore[resp.Dst], resp)
					}
					delivered++
				}
				continue
			}
			// Deliver responses; once all waiters are enqueued, fire the store.
			if issued == nWaiters && delivered >= nWaiters && !storeDone {
				for _, resp := range ctrl.Handle(st(99, addr, 1), s) {
					if resp.Dst >= nWaiters {
						continue // writer's store ack
					}
					toCore[resp.Dst] = append(toCore[resp.Dst], resp)
				}
				storeDone = true
				continue
			}
			i := rng.Intn(nWaiters)
			if len(toCore[i]) > 0 {
				resp := toCore[i][0]
				toCore[i] = toCore[i][1:]
				if out, ok := nodes[i].Deliver(resp); ok && out.Op == bus.MWait {
					if woken[i] {
						t.Fatalf("seed %d: core %d woken twice", seed, i)
					}
					woken[i] = true
					wakeOrder = append(wakeOrder, i)
					if out.Data != 1 {
						t.Fatalf("seed %d: woke with stale value %d", seed, out.Data)
					}
				}
			}
			if len(wakeOrder) == nWaiters {
				break
			}
		}
		if len(wakeOrder) != nWaiters {
			t.Fatalf("seed %d: only %d of %d waiters woke (%v)", seed, len(wakeOrder), nWaiters, wakeOrder)
		}
		for i := range wakeOrder {
			if wakeOrder[i] != enqueueOrder[i] {
				t.Fatalf("seed %d: wake order %v != controller arrival order %v",
					seed, wakeOrder, enqueueOrder)
			}
		}
		if ctrl.ActiveQueues() != 0 {
			t.Fatalf("seed %d: queues leaked", seed)
		}
	}
}
