package colibri

import (
	"fmt"

	"repro/internal/bus"
)

// ReqSink is where a Qnode injects requests (the core's egress port into
// the request network). TryPush reports false on backpressure.
type ReqSink interface {
	TryPush(r bus.Request) bool
}

// nodeState is the Qnode's episode lifecycle for the wait operations.
type nodeState uint8

const (
	nodeIdle nodeState = iota
	// nodeWaitGrant: LRwait/Mwait issued, response not yet received.
	nodeWaitGrant
	// nodeGranted: LRwait answered; the core computes and will SCwait.
	nodeGranted
	// nodeWaitSC: SCwait issued, response not yet received.
	nodeWaitSC
)

// QnodeStats counts core-side protocol events.
type QnodeStats struct {
	SuccUpdates uint64 // SuccessorUpdates absorbed
	WakeUpsSent uint64 // WakeUpRequests injected
	Bounces     uint64 // SuccessorUpdates that bounced straight back
}

// Qnode is a core's hardware queue node: the core-side half of Colibri.
// All of the core's memory traffic passes through it. It records the
// in-flight wait operation, absorbs SuccessorUpdates (even while the core
// sleeps), and emits WakeUpRequests when the core's SCwait passes by (or,
// for Mwait, when the grant passes by — waking the whole queue without
// core involvement, Section IV-B).
//
// The Qnode also acts as the protocol monitor: sequences that violate the
// single-outstanding-LRwait rule or the pairing constraints panic rather
// than corrupting the distributed queue.
type Qnode struct {
	coreID int
	out    ReqSink

	state       nodeState
	pendingOp   bus.Op
	pendingAddr uint32
	// scPassed: the SCwait went by before the successor was known; an
	// arriving SuccessorUpdate must bounce back as a WakeUpRequest.
	scPassed bool
	scAddr   uint32

	// Successor link (valid when succ >= 0).
	succ     int
	succOp   bus.Op
	succData uint32
	succAddr uint32

	// wakePending holds a WakeUpRequest that could not be injected due to
	// backpressure (wakeValid set); it drains with priority over new core
	// requests. Stored by value so the hot path never heap-allocates.
	wakePending bus.Request
	wakeValid   bool

	Stats QnodeStats
}

// NewQnode returns the Qnode for core coreID injecting into out.
func NewQnode(coreID int, out ReqSink) *Qnode {
	return &Qnode{coreID: coreID, out: out, succ: -1}
}

// Busy reports whether the Qnode must drain protocol traffic before the
// core may inject a new request.
func (n *Qnode) Busy() bool { return n.wakeValid }

// Tick drains a pending WakeUpRequest if the network accepts it.
func (n *Qnode) Tick() {
	if n.wakeValid && n.out.TryPush(n.wakePending) {
		n.wakeValid = false
		n.Stats.WakeUpsSent++
	}
}

func (n *Qnode) sendWakeUp(addr uint32) {
	if n.succ < 0 {
		panic(fmt.Sprintf("colibri: qnode %d wake-up without successor", n.coreID))
	}
	req := bus.Request{Op: bus.WakeUpReq, Addr: addr, Src: n.coreID,
		Succ: n.succ, SuccOp: n.succOp, SuccData: n.succData}
	n.succ = -1
	if n.wakeValid {
		panic(fmt.Sprintf("colibri: qnode %d double wake-up", n.coreID))
	}
	if n.out.TryPush(req) {
		n.Stats.WakeUpsSent++
		return
	}
	n.wakePending = req
	n.wakeValid = true
}

// TryIssue injects a core request into the network, updating episode
// bookkeeping. It reports false when the port is backpressured (the core
// retries next cycle). For SCwait, a known successor's WakeUpRequest is
// queued immediately behind it on the same ordered channel.
func (n *Qnode) TryIssue(req bus.Request) bool {
	if n.wakeValid {
		return false // drain protocol traffic first; preserves ordering
	}
	switch req.Op {
	case bus.LRWait, bus.MWait:
		if n.state != nodeIdle {
			panic(fmt.Sprintf("colibri: qnode %d: second outstanding %v (state %d)",
				n.coreID, req.Op, n.state))
		}
		if !n.out.TryPush(req) {
			return false
		}
		n.state = nodeWaitGrant
		n.pendingOp = req.Op
		n.pendingAddr = req.Addr
		return true
	case bus.SCWait:
		if n.state != nodeGranted {
			panic(fmt.Sprintf("colibri: qnode %d: SCwait without granted LRwait (state %d)",
				n.coreID, n.state))
		}
		if req.Addr != n.pendingAddr {
			panic(fmt.Sprintf("colibri: qnode %d: SCwait addr %#x != LRwait addr %#x",
				n.coreID, req.Addr, n.pendingAddr))
		}
		if !n.out.TryPush(req) {
			return false
		}
		n.state = nodeWaitSC
		if n.succ >= 0 {
			// Successor already linked: the WakeUpRequest follows the
			// SCwait on the same channel, so the controller sees them
			// in order (Fig. 2 steps 5–6).
			n.sendWakeUp(req.Addr)
		} else {
			n.scPassed = true
			n.scAddr = req.Addr
		}
		return true
	default:
		return n.out.TryPush(req)
	}
}

// Deliver processes a message arriving from the response network. It
// returns the response to hand to the core; the boolean is false when the
// message was protocol-internal (a SuccessorUpdate) and nothing reaches
// the core. Returning by value keeps the response on the stack — the old
// *bus.Response signature forced a heap escape per delivered message.
func (n *Qnode) Deliver(resp bus.Response) (bus.Response, bool) {
	if resp.Kind == bus.RespSuccUpdate {
		n.Stats.SuccUpdates++
		if n.succ >= 0 {
			panic(fmt.Sprintf("colibri: qnode %d: second SuccessorUpdate", n.coreID))
		}
		if n.state == nodeIdle {
			panic(fmt.Sprintf("colibri: qnode %d: SuccessorUpdate while idle", n.coreID))
		}
		n.succ = resp.Succ
		n.succOp = resp.SuccOp
		n.succData = resp.SuccData
		n.succAddr = resp.Addr
		if n.scPassed {
			// The SCwait already went by: bounce immediately.
			n.scPassed = false
			n.Stats.Bounces++
			n.sendWakeUp(resp.Addr)
		}
		return bus.Response{}, false
	}
	switch resp.Op {
	case bus.LRWait:
		if n.state != nodeWaitGrant {
			panic(fmt.Sprintf("colibri: qnode %d: LRwait response in state %d",
				n.coreID, n.state))
		}
		// A refused LRwait (OK=false) follows the same path: the core
		// proceeds to its SCwait, which will fail, and retries.
		n.state = nodeGranted
	case bus.MWait:
		if n.state != nodeWaitGrant {
			panic(fmt.Sprintf("colibri: qnode %d: Mwait response in state %d",
				n.coreID, n.state))
		}
		// Wake cascade: pass the wake-up along without core involvement.
		if n.succ >= 0 {
			n.sendWakeUp(resp.Addr)
		}
		n.state = nodeIdle
		n.pendingOp = bus.Nop
	case bus.SCWait:
		if n.state != nodeWaitSC {
			panic(fmt.Sprintf("colibri: qnode %d: SCwait response in state %d",
				n.coreID, n.state))
		}
		// Ordering guarantees any SuccessorUpdate for this episode
		// arrived before this response; a still-set scPassed just means
		// the head was alone (the controller freed the queue).
		n.scPassed = false
		n.state = nodeIdle
		n.pendingOp = bus.Nop
	}
	return resp, true
}

// State returns a debug description (tests and tracing).
func (n *Qnode) State() string {
	states := [...]string{"idle", "wait-grant", "granted", "wait-sc"}
	return fmt.Sprintf("qnode%d{%s succ=%d scPassed=%v wakePending=%v}",
		n.coreID, states[n.state], n.succ, n.scPassed, n.wakeValid)
}

// Idle reports whether the Qnode holds no episode state (quiescence checks).
func (n *Qnode) Idle() bool {
	return n.state == nodeIdle && n.succ < 0 && !n.scPassed && !n.wakeValid
}
