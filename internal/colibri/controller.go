// Package colibri implements the paper's primary contribution: a scalable,
// distributed realization of the LRSCwait reservation queue (Section IV).
//
// Instead of a per-bank hardware queue with one entry per core, each bank
// controller holds only a parameterizable number of head/tail register
// pairs (one pair per concurrently tracked address), and every core owns a
// single hardware queue node (Qnode). An LRwait to a non-empty queue
// appends the core at the tail and links it to its predecessor by sending
// a SuccessorUpdate message to the predecessor's Qnode. When the head core
// finishes (its SCwait passes its Qnode), the Qnode sends a WakeUpRequest
// carrying the successor back to the controller, which promotes the
// successor and releases its withheld LRwait response. Storage is
// O(cores + 2·queues·banks) — linear in system size.
//
// The controller in this file is the memory-side half (a mem.Adapter); the
// core-side half is Qnode.
package colibri

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/mem"
)

// headState tracks the lifecycle of a queue's head entry.
type headState uint8

const (
	// headServedLR: the head's LRwait was answered; its reservation is
	// armed until a write to the address or its SCwait.
	headServedLR headState = iota
	// headServedMwait: the head is an Mwait monitoring the address.
	headServedMwait
	// headAwaitWakeUp: the head was dequeued (SCwait or Mwait fire) but
	// the queue is not empty; the controller is waiting for the
	// WakeUpRequest that names the successor.
	headAwaitWakeUp
)

// queue is one head/tail register pair: the controller-side anchor of a
// distributed linked list of Qnodes.
type queue struct {
	valid        bool
	addr         uint32
	head, tail   int
	state        headState
	resValid     bool
	headExpected uint32 // headServedMwait only
}

// Stats counts controller events.
type Stats struct {
	Grants        uint64 // LRwait/Mwait responses released
	Refused       uint64 // LRwait/Mwait rejected: no free head/tail pair
	SCSuccess     uint64
	SCFail        uint64
	Invalidations uint64 // reservations killed by intervening writes
	SuccUpdates   uint64 // SuccessorUpdate messages sent
	WakeUps       uint64 // WakeUpRequest messages consumed
	Enqueues      uint64 // cores appended behind an existing tail
}

// Controller is the Colibri bank-side adapter.
type Controller struct {
	queues []queue
	Stats  Stats
}

// NewController returns a controller with numQueues head/tail register
// pairs (the paper evaluates 1, 2, 4 and 8).
func NewController(numQueues int) *Controller {
	if numQueues <= 0 {
		panic(fmt.Sprintf("colibri: NewController(%d)", numQueues))
	}
	return &Controller{queues: make([]queue, numQueues)}
}

// Name implements mem.Adapter.
func (c *Controller) Name() string {
	return fmt.Sprintf("colibri-%d", len(c.queues))
}

// AdapterStats implements mem.StatsReporter with the counters Colibri
// shares with the direct reservation adapters; the protocol-specific
// counters (SuccUpdates, WakeUps, Enqueues) stay on Stats.
func (c *Controller) AdapterStats() mem.AdapterStats {
	return mem.AdapterStats{
		Grants:        c.Stats.Grants,
		Refused:       c.Stats.Refused,
		SCSuccess:     c.Stats.SCSuccess,
		SCFail:        c.Stats.SCFail,
		Invalidations: c.Stats.Invalidations,
	}
}

// NumQueues returns the number of head/tail pairs.
func (c *Controller) NumQueues() int { return len(c.queues) }

// ActiveQueues returns the number of currently allocated queues (tests).
func (c *Controller) ActiveQueues() int {
	n := 0
	for i := range c.queues {
		if c.queues[i].valid {
			n++
		}
	}
	return n
}

func (c *Controller) findQueue(addr uint32) *queue {
	for i := range c.queues {
		if c.queues[i].valid && c.queues[i].addr == addr {
			return &c.queues[i]
		}
	}
	return nil
}

func (c *Controller) freeQueue() *queue {
	for i := range c.queues {
		if !c.queues[i].valid {
			return &c.queues[i]
		}
	}
	return nil
}

// Handle implements mem.Adapter.
func (c *Controller) Handle(req bus.Request, s mem.Storage) []bus.Response {
	return c.HandleAppend(req, s, nil)
}

// HandleAppend implements mem.AppendAdapter.
func (c *Controller) HandleAppend(req bus.Request, s mem.Storage, out []bus.Response) []bus.Response {
	if resp, wrote, ok := mem.HandleBasic(req, s); ok {
		out = append(out, resp)
		if wrote {
			out = c.onWrite(req.Addr, s, out)
		}
		return out
	}
	switch req.Op {
	case bus.LRWait, bus.MWait:
		return c.handleWait(req, s, out)
	case bus.SCWait:
		return c.handleSCWait(req, s, out)
	case bus.WakeUpReq:
		return c.handleWakeUp(req, s, out)
	case bus.LR:
		// Plain LRSC is superseded on a Colibri bank; read without a
		// reservation so the SC fails and software retries with the
		// wait pair.
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: false})
	case bus.SC:
		c.Stats.SCFail++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
	}
	return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
}

// handleWait processes LRwait and Mwait: allocate or append to a queue.
func (c *Controller) handleWait(req bus.Request, s mem.Storage, out []bus.Response) []bus.Response {
	if q := c.findQueue(req.Addr); q != nil {
		// Append behind the current tail and link via SuccessorUpdate.
		// The update piggybacks the successor's operation and expected
		// value so the eventual WakeUpRequest can serve it directly.
		oldTail := q.tail
		q.tail = req.Src
		c.Stats.Enqueues++
		c.Stats.SuccUpdates++
		return append(out, bus.Response{
			Kind: bus.RespSuccUpdate, Dst: oldTail, Op: req.Op,
			Addr: req.Addr, Succ: req.Src, SuccOp: req.Op, SuccData: req.Data,
		})
	}
	q := c.freeQueue()
	if q == nil {
		// All head/tail pairs busy: refuse immediately. The core's
		// following SCwait will fail, putting software on its retry
		// path (Section III-B's LRSCwait_q fallback behaviour).
		c.Stats.Refused++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: false})
	}
	val := s.Read(req.Addr)
	if req.Op == bus.MWait && val != req.Data {
		// Value already changed: notify immediately, no queue needed.
		c.Stats.Grants++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: val, OK: true})
	}
	*q = queue{valid: true, addr: req.Addr, head: req.Src, tail: req.Src}
	if req.Op == bus.MWait {
		q.state = headServedMwait
		q.headExpected = req.Data
		return out // response withheld until the value changes
	}
	q.state = headServedLR
	q.resValid = true
	c.Stats.Grants++
	return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
		Data: val, OK: true})
}

func (c *Controller) handleSCWait(req bus.Request, s mem.Storage, out []bus.Response) []bus.Response {
	q := c.findQueue(req.Addr)
	if q == nil || q.head != req.Src || q.state != headServedLR {
		// No valid reservation (refused LRwait, stale SCwait): fail.
		c.Stats.SCFail++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
	}
	ok := q.resValid
	if ok {
		s.Write(req.Addr, req.Data)
		c.Stats.SCSuccess++
	} else {
		c.Stats.SCFail++
	}
	// The SCwait yields the queue whether or not it succeeded.
	c.dequeueHead(q)
	return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: ok})
}

// dequeueHead retires the current head. If the head was alone the queue is
// freed; otherwise the controller waits for the WakeUpRequest that will
// name the successor (sent by the retiring head's Qnode).
func (c *Controller) dequeueHead(q *queue) {
	if q.head == q.tail {
		q.valid = false
		return
	}
	q.state = headAwaitWakeUp
	q.resValid = false
}

func (c *Controller) handleWakeUp(req bus.Request, s mem.Storage, out []bus.Response) []bus.Response {
	q := c.findQueue(req.Addr)
	if q == nil || q.state != headAwaitWakeUp {
		// Protocol violation: a WakeUpRequest is only ever generated for
		// a dequeued-but-nonempty queue (Section IV-A.2's consistency
		// argument). Fail loudly — this is the protocol monitor.
		panic(fmt.Sprintf("colibri: stray WakeUpRequest for addr %#x at bank %d",
			req.Addr, s.BankID()))
	}
	c.Stats.WakeUps++
	q.head = req.Succ
	val := s.Read(req.Addr)
	if req.SuccOp == bus.MWait {
		if val != req.SuccData {
			// Fire immediately; the grant auto-bounces the next
			// WakeUpRequest from the successor's Qnode (wake cascade).
			c.Stats.Grants++
			c.dequeueHead(q)
			return append(out, bus.Response{Dst: req.Succ, Op: bus.MWait,
				Addr: req.Addr, Data: val, OK: true})
		}
		q.state = headServedMwait
		q.headExpected = req.SuccData
		return out
	}
	q.state = headServedLR
	q.resValid = true
	c.Stats.Grants++
	return append(out, bus.Response{Dst: req.Succ, Op: bus.LRWait, Addr: req.Addr,
		Data: val, OK: true})
}

// onWrite runs after every committed plain write: invalidate an armed
// reservation or fire a monitoring Mwait head.
func (c *Controller) onWrite(addr uint32, s mem.Storage, out []bus.Response) []bus.Response {
	q := c.findQueue(addr)
	if q == nil {
		return out
	}
	switch q.state {
	case headServedLR:
		if q.resValid {
			q.resValid = false
			c.Stats.Invalidations++
		}
	case headServedMwait:
		if v := s.Read(addr); v != q.headExpected {
			c.Stats.Grants++
			head := q.head
			c.dequeueHead(q)
			out = append(out, bus.Response{Dst: head, Op: bus.MWait,
				Addr: addr, Data: v, OK: true})
		}
	case headAwaitWakeUp:
		// Nothing reserved between dequeue and wake-up.
	}
	return out
}
