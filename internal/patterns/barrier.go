package patterns

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/locks"
	"repro/internal/platform"
)

// Shared-memory barriers in the three classic topologies (Bertuletti et
// al.): a central sense-reversing barrier (one counter, one sense word),
// a binary combining tree (one 2-ary counter node per core pair and
// level, winner ascends, root flips the shared sense), and a butterfly /
// dissemination barrier (log2(n) pairwise rounds on monotonic per-core
// flag counters, no releaser at all). The waiter in each is a
// locks.EmitWaitChange, so one kernel serves spin, backoff-spin and
// Mwait-sleep waiters.

// BarrierVariant selects the barrier topology.
type BarrierVariant int

const (
	// BarrierCentral: one AMOADD counter + sense-reversing release.
	BarrierCentral BarrierVariant = iota
	// BarrierTree: binary combining tree; the last arrival at each node
	// ascends, the root flips the shared sense.
	BarrierTree
	// BarrierButterfly: dissemination rounds on monotonic flag counters;
	// every core both signals and waits each round.
	BarrierButterfly
)

// String returns the canonical parameter spelling of the variant.
func (v BarrierVariant) String() string {
	switch v {
	case BarrierCentral:
		return "central"
	case BarrierTree:
		return "tree"
	case BarrierButterfly:
		return "butterfly"
	}
	return fmt.Sprintf("BarrierVariant(%d)", int(v))
}

// ParseBarrierVariant parses the canonical spelling back into a variant.
func ParseBarrierVariant(s string) (BarrierVariant, error) {
	switch s {
	case "central":
		return BarrierCentral, nil
	case "tree":
		return BarrierTree, nil
	case "butterfly":
		return BarrierButterfly, nil
	}
	return 0, fmt.Errorf("patterns: unknown barrier variant %q (want central, tree or butterfly)", s)
}

// BarrierVariants lists every variant in canonical sweep order.
func BarrierVariants() []BarrierVariant {
	return []BarrierVariant{BarrierCentral, BarrierTree, BarrierButterfly}
}

// BarrierLayout places the barrier data sections for nActive cores.
// All words start zeroed, which is every section's initial state — no
// host-side init is needed.
type BarrierLayout struct {
	NActive int
	Levels  int // log2(NActive), the tree/butterfly round count

	Count uint32 // central: arrival counter (1 word)
	Sense uint32 // central/tree: shared sense word
	Tree  uint32 // tree: per-node arrival counters (NActive words)
	Flags uint32 // butterfly: per-(level, core) flag counters (Levels*NActive words)
	Slots uint32 // per-core progress slots for the early-pass check (NActive words)
	Err   uint32 // litmus error word (sticky, 0 = no violation)
}

// NewBarrierLayout allocates the barrier sections from l.
func NewBarrierLayout(l *platform.Layout, nActive int) BarrierLayout {
	if nActive <= 0 {
		panic(fmt.Sprintf("patterns: nActive %d must be positive", nActive))
	}
	lay := BarrierLayout{NActive: nActive, Levels: log2(nActive)}
	lay.Count = l.Words(1)
	lay.Sense = l.Words(1)
	lay.Tree = l.Words(nActive)
	lay.Flags = l.Words(lay.Levels * nActive)
	lay.Slots = l.Words(nActive)
	lay.Err = l.Words(1)
	return lay
}

// Barrier register plan (callee-owned, no calls):
//
//	a0 variant base (count / tree nodes / flags)
//	a1 sense addr    a2 slots base     a3 error addr
//	s0 local sense   s1 nActive        s2 my slot addr   s3 episode
//	s4 backoff cap   s5 backoff cur    s6 level          s7 core id
//	t0..t4 scratch
//
// BarrierProgram builds the barrier kernel for one active core: publish
// the episode into the own progress slot, cross the barrier, optionally
// verify that every active core published this episode (the litmus
// early-pass check — any slot behind the own episode sets the sticky
// error word), MARK, repeat. rounds <= 0 builds an endless loop (for
// throughput windows); otherwise the core halts after rounds episodes.
// Tree and butterfly require a power-of-two nActive.
func BarrierProgram(v BarrierVariant, w locks.WaitKind, lay BarrierLayout, backoff int32, rounds int, verify bool) *isa.Program {
	if v != BarrierCentral && !isPow2(lay.NActive) {
		panic(fmt.Sprintf("patterns: %s barrier needs a power-of-two core count, got %d", v, lay.NActive))
	}
	b := isa.NewBuilder()
	switch v {
	case BarrierCentral:
		b.Li(isa.A0, int32(lay.Count))
	case BarrierTree:
		b.Li(isa.A0, int32(lay.Tree))
	case BarrierButterfly:
		b.Li(isa.A0, int32(lay.Flags))
	default:
		panic(fmt.Sprintf("patterns: BarrierProgram(%v)", v))
	}
	b.Li(isa.A1, int32(lay.Sense))
	b.Li(isa.A2, int32(lay.Slots))
	b.Li(isa.A3, int32(lay.Err))
	b.Li(isa.S0, 0)
	b.Li(isa.S1, int32(lay.NActive))
	b.CoreID(isa.S7)
	b.Slli(isa.T0, isa.S7, 2)
	b.Add(isa.S2, isa.T0, isa.A2)
	b.Li(isa.S3, 0)
	b.Li(isa.S4, backoff)
	locks.EmitBackoffReset(b, isa.S5, isa.S4)

	b.Label("episode")
	b.Sw(isa.S3, isa.S2, 0) // publish arrival at this episode
	switch v {
	case BarrierCentral:
		emitCentralBarrier(b, w)
	case BarrierTree:
		emitTreeBarrier(b, w)
	case BarrierButterfly:
		emitButterflyBarrier(b, w, lay.Levels)
	}
	b.Label("passed")
	if v != BarrierButterfly {
		b.Xori(isa.S0, isa.S0, 1) // local sense for the next episode
	}
	if verify {
		// Early-pass check: every active core must have published this
		// episode before anyone leaves it.
		b.Mv(isa.T0, isa.A2)
		b.Li(isa.T2, 0)
		b.Label("vfy")
		b.Lw(isa.T1, isa.T0, 0)
		b.Bge(isa.T1, isa.S3, "vfy_ok")
		b.Li(isa.T3, 1)
		b.Sw(isa.T3, isa.A3, 0)
		b.Label("vfy_ok")
		b.Addi(isa.T0, isa.T0, 4)
		b.Addi(isa.T2, isa.T2, 1)
		b.Blt(isa.T2, isa.S1, "vfy")
	}
	b.Mark()
	b.Addi(isa.S3, isa.S3, 1)
	if rounds > 0 {
		b.Li(isa.T0, int32(rounds))
		b.Bne(isa.S3, isa.T0, "episode")
		b.Halt()
	} else {
		b.J("episode")
	}
	return b.MustBuild()
}

// emitCentralBarrier: count = amoadd(counter, 1) + 1; the last arrival
// resets the counter and flips the sense, everyone else waits for the
// sense to leave the local value.
func emitCentralBarrier(b *isa.Builder, w locks.WaitKind) {
	b.Li(isa.T0, 1)
	b.AmoAdd(isa.T1, isa.T0, isa.A0)
	b.Addi(isa.T1, isa.T1, 1)
	b.Bne(isa.T1, isa.S1, "c_wait")
	// Last arrival: reset before release, so next-episode arrivals only
	// start counting after the flip.
	b.Sw(isa.Zero, isa.A0, 0)
	b.Xori(isa.T3, isa.S0, 1)
	b.Sw(isa.T3, isa.A1, 0)
	b.J("passed")
	b.Label("c_wait")
	locks.EmitWaitChange(b, "c", w, isa.T3, isa.S0, isa.A1, isa.S5, isa.S4)
}

// emitTreeBarrier: ascend the binary combining tree. The level-l node of
// core i is word (nActive - width) + (i >> (l+1)) where width = nActive
// >> l; the second arrival at a node resets it and ascends, the first
// waits on the shared sense. The sole arrival at width 1 is the root: it
// flips the sense.
func emitTreeBarrier(b *isa.Builder, w locks.WaitKind) {
	b.Mv(isa.T4, isa.S1) // width of the current level
	b.Li(isa.S6, 0)      // level
	b.Label("t_arrive")
	b.Li(isa.T0, 1)
	b.Beq(isa.T4, isa.T0, "t_root")
	b.Sub(isa.T0, isa.S1, isa.T4)
	b.Addi(isa.T2, isa.S6, 1)
	b.Srl(isa.T1, isa.S7, isa.T2)
	b.Add(isa.T0, isa.T0, isa.T1)
	b.Slli(isa.T0, isa.T0, 2)
	b.Add(isa.T0, isa.T0, isa.A0)
	b.Li(isa.T1, 1)
	b.AmoAdd(isa.T3, isa.T1, isa.T0)
	b.Beqz(isa.T3, "t_wait") // first arrival at the node
	// Second arrival: reset the node for the next episode and ascend.
	b.Sw(isa.Zero, isa.T0, 0)
	b.Addi(isa.S6, isa.S6, 1)
	b.Srli(isa.T4, isa.T4, 1)
	b.J("t_arrive")
	b.Label("t_root")
	b.Xori(isa.T3, isa.S0, 1)
	b.Sw(isa.T3, isa.A1, 0)
	b.J("passed")
	b.Label("t_wait")
	locks.EmitWaitChange(b, "t", w, isa.T3, isa.S0, isa.A1, isa.S5, isa.S4)
}

// emitButterflyBarrier: levels pairwise rounds. In round l the core
// AMOADDs the flag of partner id^(1<<l) at that level, then waits for
// its own level-l flag to leave the episode count. Flags are monotonic
// counters, so "!= episode" is exactly "the round-l signal of this
// episode arrived" and no reinitialization (or sense) is ever needed.
func emitButterflyBarrier(b *isa.Builder, w locks.WaitKind, levels int) {
	if levels == 0 {
		return // a single core crosses alone
	}
	b.Li(isa.S6, 0) // level
	b.Label("b_level")
	b.Li(isa.T0, 1)
	b.Sll(isa.T0, isa.T0, isa.S6)
	b.Xor(isa.T1, isa.S7, isa.T0) // partner id
	b.Mul(isa.T2, isa.S6, isa.S1)
	b.Add(isa.T2, isa.T2, isa.T1)
	b.Slli(isa.T2, isa.T2, 2)
	b.Add(isa.T2, isa.T2, isa.A0)
	b.Li(isa.T0, 1)
	b.AmoAdd(isa.Zero, isa.T0, isa.T2) // signal the partner
	b.Mul(isa.T2, isa.S6, isa.S1)
	b.Add(isa.T2, isa.T2, isa.S7)
	b.Slli(isa.T2, isa.T2, 2)
	b.Add(isa.T2, isa.T2, isa.A0)
	locks.EmitWaitChange(b, "bf", w, isa.T0, isa.S3, isa.T2, isa.S5, isa.S4)
	b.Addi(isa.S6, isa.S6, 1)
	b.Li(isa.T0, int32(levels))
	b.Bne(isa.S6, isa.T0, "b_level")
}
