package patterns

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/locks"
	"repro/internal/platform"
)

// An HSynch/CC-Synch-style combining lock (TCLocks): threads deposit
// requests into a global queue with one AMOSWAP on the tail, and the
// current lock holder (combiner) serves queued requests on their behalf
// — here, increments of a deliberately non-atomic shared counter — until
// the queue drains or the serve bound is hit, then hands the combiner
// role to the first unserved node. Requesters wait on their own node
// with locks.EmitWaitChange, so one kernel covers spin, backoff-spin and
// Mwait-sleep waiters; a single hot tail word plus per-node handover
// writes make it a natural stress for the Colibri queue policies.
//
// The served value (the counter after the increment) is written back
// into the node as a receipt. Receipts are globally unique and assigned
// in queue order, so each core's receipts must be strictly increasing
// (FIFO service), the set of receipts over a bounded run must be exactly
// 1..total (mutual exclusion: a racing combiner would duplicate values
// on the non-atomic counter), and a busy word asserts directly that two
// combiners never overlap.

// CombNodeWords is the per-node footprint in words:
// [0] next ptr, [1] wait flag, [2] completed flag, [3] receipt.
const CombNodeWords = 4

// CombLayout places the combining-lock sections for nActive cores.
// InitCombLock must run before the system starts.
type CombLayout struct {
	NActive int

	Tail    uint32 // queue tail: byte address of the current tail node
	Nodes   uint32 // (NActive+1) nodes; node i at Nodes + 16*i, sentinel last
	Counter uint32 // the protected, non-atomic counter
	Busy    uint32 // combiner-active word (mutual-exclusion litmus)
	Err     uint32 // litmus error word (sticky, 0 = no violation)
	Sums    uint32 // bounded runs: per-core receipt sums (NActive words)
}

// NewCombLayout allocates the combining-lock sections from l.
func NewCombLayout(l *platform.Layout, nActive int) CombLayout {
	if nActive <= 0 {
		panic(fmt.Sprintf("patterns: nActive %d must be positive", nActive))
	}
	lay := CombLayout{NActive: nActive}
	lay.Tail = l.Words(1)
	lay.Nodes = l.Words(CombNodeWords * (nActive + 1))
	lay.Counter = l.Words(1)
	lay.Busy = l.Words(1)
	lay.Err = l.Words(1)
	lay.Sums = l.Words(nActive)
	return lay
}

// InitCombLock points the tail at the sentinel node, whose zeroed state
// (wait == 0, completed == 0) makes the first enqueuer the combiner.
func InitCombLock(sys *platform.System, lay CombLayout) {
	sys.WriteWord(lay.Tail, lay.Nodes+uint32(4*CombNodeWords*lay.NActive))
}

// Combining-lock register plan:
//
//	a0 tail addr     a1 counter addr   a2 busy addr    a3 error addr
//	s0 spare node    s1 serve bound    s2 last receipt s3 ops left
//	s4 backoff cap   s5 backoff cur    s6 receipt sum
//	t0 own node      t1 walk node      t2..t4 scratch
//
// CombLockProgram builds one requester/combiner core: reset the spare
// node, swap it into the tail, deposit into the node received back, wait
// for it, and either read the receipt (request was combined for us) or
// become the combiner and serve up to maxCombine queued requests —
// always starting with our own — before handing over. iters <= 0 builds
// an endless loop; otherwise the core stores its receipt sum into
// Sums[core] after iters operations and halts.
func CombLockProgram(w locks.WaitKind, lay CombLayout, maxCombine int, backoff int32, iters int) *isa.Program {
	if maxCombine < 1 {
		panic(fmt.Sprintf("patterns: maxCombine %d must be >= 1", maxCombine))
	}
	b := isa.NewBuilder()
	b.Li(isa.A0, int32(lay.Tail))
	b.Li(isa.A1, int32(lay.Counter))
	b.Li(isa.A2, int32(lay.Busy))
	b.Li(isa.A3, int32(lay.Err))
	b.CoreID(isa.T0)
	b.Slli(isa.T0, isa.T0, 4)
	b.Li(isa.T1, int32(lay.Nodes))
	b.Add(isa.S0, isa.T0, isa.T1)
	b.Li(isa.S1, int32(maxCombine))
	b.Li(isa.S2, 0)
	b.Li(isa.S6, 0)
	b.Li(isa.S4, backoff)
	locks.EmitBackoffReset(b, isa.S5, isa.S4)
	if iters > 0 {
		b.Li(isa.S3, int32(iters))
	}

	b.Label("op")
	// Reset the spare and swap it in; the node we get back carries our
	// request (CC-Synch: the request lives in the swapped-out node, so
	// the tail-most node is always requestless and next != 0 holds for
	// every deposited node).
	b.Sw(isa.Zero, isa.S0, 0)
	b.Li(isa.T0, 1)
	b.Sw(isa.T0, isa.S0, 4)
	b.Sw(isa.Zero, isa.S0, 8)
	b.AmoSwap(isa.T0, isa.S0, isa.A0)
	b.Sw(isa.S0, isa.T0, 0) // deposit: own.next = spare
	// Wait for our node's wait flag to drop.
	b.Addi(isa.T2, isa.T0, 4)
	b.Li(isa.T3, 1)
	locks.EmitWaitChange(b, "cb", w, isa.T1, isa.T3, isa.T2, isa.S5, isa.S4)
	b.Lw(isa.T1, isa.T0, 8)
	b.Bnez(isa.T1, "cb_receipt") // completed: combined on our behalf
	// === combiner ===
	// Mutual exclusion: no other combiner may be active.
	b.Lw(isa.T1, isa.A2, 0)
	b.Beqz(isa.T1, "cb_mx_ok")
	b.Li(isa.T1, 1)
	b.Sw(isa.T1, isa.A3, 0)
	b.Label("cb_mx_ok")
	b.Li(isa.T1, 1)
	b.Sw(isa.T1, isa.A2, 0)
	// Serve from our own node while a successor exists and the bound
	// allows. The successor pointer is cached before wait is dropped:
	// wait == 0 returns the node to its owner for recycling.
	b.Li(isa.T4, 0)
	b.Mv(isa.T1, isa.T0)
	b.Label("cb_walk")
	b.Lw(isa.T2, isa.T1, 0)
	b.Beqz(isa.T2, "cb_stop")
	b.Bge(isa.T4, isa.S1, "cb_stop")
	b.Lw(isa.T3, isa.A1, 0) // the request: counter++, non-atomically
	b.Addi(isa.T3, isa.T3, 1)
	b.Sw(isa.T3, isa.A1, 0)
	b.Sw(isa.T3, isa.T1, 12) // receipt = counter after increment
	b.Li(isa.T3, 1)
	b.Sw(isa.T3, isa.T1, 8) // completed
	b.Sw(isa.Zero, isa.T1, 4)
	b.Addi(isa.T4, isa.T4, 1)
	b.Mv(isa.T1, isa.T2)
	b.J("cb_walk")
	b.Label("cb_stop")
	// Hand over: drop busy first (the next combiner re-checks it), then
	// wake the first unserved node with completed == 0.
	b.Sw(isa.Zero, isa.A2, 0)
	b.Sw(isa.Zero, isa.T1, 4)
	b.Label("cb_receipt")
	// FIFO: receipts are assigned in queue order, so ours must exceed
	// every receipt we saw before.
	b.Lw(isa.T3, isa.T0, 12)
	b.Blt(isa.S2, isa.T3, "cb_fifo_ok")
	b.Li(isa.T2, 1)
	b.Sw(isa.T2, isa.A3, 0)
	b.Label("cb_fifo_ok")
	b.Mv(isa.S2, isa.T3)
	b.Add(isa.S6, isa.S6, isa.T3)
	b.Mv(isa.S0, isa.T0) // recycle: the served node is our next spare
	b.Mark()
	if iters > 0 {
		b.Addi(isa.S3, isa.S3, -1)
		b.Bnez(isa.S3, "op")
		b.CoreID(isa.T0)
		b.Slli(isa.T0, isa.T0, 2)
		b.Li(isa.T1, int32(lay.Sums))
		b.Add(isa.T0, isa.T0, isa.T1)
		b.Sw(isa.S6, isa.T0, 0)
		b.Halt()
	} else {
		b.J("op")
	}
	return b.MustBuild()
}
