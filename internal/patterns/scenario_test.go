package patterns

import (
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/sweep"
)

func TestKindsRegistered(t *testing.T) {
	for _, kind := range []sweep.Kind{KindBarrier, KindRCU, KindCombLock} {
		s, ok := sweep.Lookup(string(kind))
		if !ok {
			t.Fatalf("kind %q not registered", kind)
		}
		if !s.GridAxes() {
			t.Errorf("kind %q must support the policy grid", kind)
		}
		if d := sweep.Describe(string(kind)); d == "" {
			t.Errorf("kind %q has no description", kind)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	topo := noc.Small()
	s, _ := sweep.Lookup(string(KindBarrier))
	j, err := s.Normalize(sweep.Job{Kind: KindBarrier, Topo: "small"}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if j.Warmup != DefaultPatternWarmup || j.Measure != DefaultPatternMeasure {
		t.Errorf("windows = %d/%d, want %d/%d", j.Warmup, j.Measure,
			DefaultPatternWarmup, DefaultPatternMeasure)
	}
	if want := []int{2, 4, 8, 16}; len(j.Bins) != len(want) {
		t.Errorf("default counts = %v, want %v", j.Bins, want)
	}
	// Normalize canonicalizes the param strings, so a job spelling out
	// the defaults shares cache entries with a job leaving them blank.
	if j.Params[ParamWait] != "spin,backoff,mwait" {
		t.Errorf("canonical wait = %q", j.Params[ParamWait])
	}
	if j.Params[ParamVariant] != "central,tree,butterfly" {
		t.Errorf("canonical variant = %q", j.Params[ParamVariant])
	}
	j2, err := s.Normalize(sweep.Job{Kind: KindBarrier, Topo: "small",
		Params: map[string]string{ParamWait: " spin , backoff , mwait "}}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Params[ParamWait] != j.Params[ParamWait] {
		t.Errorf("spaced wait list canonicalized to %q, want %q",
			j2.Params[ParamWait], j.Params[ParamWait])
	}
}

func TestNormalizeRejects(t *testing.T) {
	topo := noc.Small()
	cases := []struct {
		name string
		job  sweep.Job
		want string
	}{
		{"unknown param", sweep.Job{Kind: KindBarrier,
			Params: map[string]string{"waitt": "spin"}}, "unknown param"},
		{"bad wait kind", sweep.Job{Kind: KindBarrier,
			Params: map[string]string{ParamWait: "sleep"}}, "unknown wait kind"},
		{"duplicate wait kind", sweep.Job{Kind: KindBarrier,
			Params: map[string]string{ParamWait: "spin,spin"}}, "duplicate wait kind"},
		{"bad variant", sweep.Job{Kind: KindBarrier,
			Params: map[string]string{ParamVariant: "star"}}, "unknown barrier variant"},
		{"tree needs pow2", sweep.Job{Kind: KindBarrier, Bins: []int{3}}, "power of two"},
		{"count above cores", sweep.Job{Kind: KindBarrier, Bins: []int{32}}, "out of range"},
		{"rcu needs a reader", sweep.Job{Kind: KindRCU, Bins: []int{1}}, "out of range"},
		{"rcu unknown param", sweep.Job{Kind: KindRCU,
			Params: map[string]string{ParamVariant: "central"}}, "unknown param"},
		{"bad maxcombine", sweep.Job{Kind: KindCombLock,
			Params: map[string]string{ParamMaxCombine: "0"}}, "positive integer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, ok := sweep.Lookup(string(c.job.Kind))
			if !ok {
				t.Fatalf("kind %q not registered", c.job.Kind)
			}
			_, err := s.Normalize(c.job, topo)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestCentralAllowsNonPow2 pins that the power-of-two restriction only
// applies when a tree or butterfly variant is selected.
func TestCentralAllowsNonPow2(t *testing.T) {
	s, _ := sweep.Lookup(string(KindBarrier))
	_, err := s.Normalize(sweep.Job{Kind: KindBarrier, Bins: []int{3},
		Params: map[string]string{ParamVariant: "central"}}, noc.Small())
	if err != nil {
		t.Errorf("central-only barrier with 3 cores rejected: %v", err)
	}
}

// TestCurveSetShape pins the (variant × wait) curve expansion and the
// curve cache keys' policy resolution.
func TestCurveSetShape(t *testing.T) {
	topo := noc.Small()
	s, _ := sweep.Lookup(string(KindBarrier))
	j, err := s.Normalize(sweep.Job{Kind: KindBarrier, Topo: "small",
		Params: map[string]string{ParamWait: "mwait", ParamVariant: "tree,butterfly"}}, topo)
	if err != nil {
		t.Fatal(err)
	}
	curves, err := s.Curves(topo, j)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range curves {
		names = append(names, c.Name)
	}
	if got, want := strings.Join(names, " "), "tree-mwait butterfly-mwait"; got != want {
		t.Errorf("curves = %q, want %q", got, want)
	}
	// A grid coordinate restating the baseline policy must key
	// identically to the grid-free coordinate: same simulation.
	colibri := "colibri"
	plain := "plain"
	free := curves[0].Key(sweep.GridCoord{}, 0)
	if got := curves[0].Key(sweep.GridCoord{Policy: &colibri}, 0); got != free {
		t.Errorf("restated baseline forks the cache key: %q vs %q", got, free)
	}
	if got := curves[0].Key(sweep.GridCoord{Policy: &plain}, 0); got == free {
		t.Errorf("policy axis does not enter the cache key: %q", got)
	}
}
