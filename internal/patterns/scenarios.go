package patterns

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// The pattern scenario kinds (sweep registry names).
const (
	KindBarrier  sweep.Kind = "barrier"
	KindRCU      sweep.Kind = "rcu"
	KindCombLock sweep.Kind = "comblock"
)

// Scenario-defined metric names (sweep.Point.Metric keys).
const (
	// MetricCyclesPerBarrier is the mean cost of one barrier episode:
	// cycles * nActive / total barrier crossings in the window.
	MetricCyclesPerBarrier = "cycles_per_barrier"
	// MetricWriterSyncCycles is the mean writer round latency: cycles
	// per completed publish + double flip-and-wait + reclaim.
	MetricWriterSyncCycles = "writer_sync_cycles"
)

// Default simulation windows for the pattern scenarios. Barrier episodes
// and writer grace periods span many more cycles than a histogram
// update, so the windows are wider than the figure defaults.
const (
	DefaultPatternWarmup  = 2000
	DefaultPatternMeasure = 10000
)

func init() {
	sweep.MustRegister(barrierScenario{})
	sweep.MustRegister(rcuScenario{})
	sweep.MustRegister(combLockScenario{})
}

// basePolicy is the pattern scenarios' policy baseline; the grid's
// policy axis replaces it per coordinate (GridCoord.Merge).
func basePolicy() experiments.Policy {
	return experiments.Policy{Kind: platform.PolicyColibri}
}

// defaultCounts returns the default active-core axis: powers of two
// from min up to the topology's core count.
func defaultCounts(topo noc.Topology, min int) []int {
	var counts []int
	for n := min; n <= topo.NumCores(); n *= 2 {
		counts = append(counts, n)
	}
	return counts
}

// normalizeCounts validates the active-core axis shared by the pattern
// scenarios: each count within [min, cores], powers of two when pow2.
func normalizeCounts(j sweep.Job, topo noc.Topology, min int, pow2 bool) error {
	for _, n := range j.Bins {
		if n < min || n > topo.NumCores() {
			return fmt.Errorf("patterns: active-core count %d out of range [%d, %d]",
				n, min, topo.NumCores())
		}
		if pow2 && !isPow2(n) {
			return fmt.Errorf("patterns: active-core count %d must be a power of two "+
				"for tree/butterfly barriers", n)
		}
	}
	return nil
}

// parseVariantList parses a comma-separated barrier-variant list (""
// selects all variants) and returns the canonical spelling.
func parseVariantList(s string) ([]BarrierVariant, string, error) {
	if strings.TrimSpace(s) == "" {
		vs := BarrierVariants()
		return vs, joinVariants(vs), nil
	}
	var vs []BarrierVariant
	seen := map[BarrierVariant]bool{}
	for _, part := range strings.Split(s, ",") {
		v, err := ParseBarrierVariant(strings.TrimSpace(part))
		if err != nil {
			return nil, "", err
		}
		if seen[v] {
			return nil, "", fmt.Errorf("patterns: duplicate barrier variant %q", v)
		}
		seen[v] = true
		vs = append(vs, v)
	}
	return vs, joinVariants(vs), nil
}

func joinVariants(vs []BarrierVariant) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ",")
}

// newSystem builds a system where the first nActive cores run prog and
// the rest halt immediately (the active-subset idiom of fig6).
func newSystem(cfg platform.Config, prog *isa.Program, nActive int) *platform.System {
	idle := haltProgram()
	return platform.New(cfg, func(core int) *isa.Program {
		if core < nActive {
			return prog
		}
		return idle
	})
}

// barrierScenario: cycles per barrier episode vs active-core count, one
// curve per (variant × wait kind).
type barrierScenario struct{}

func (barrierScenario) Name() string   { return string(KindBarrier) }
func (barrierScenario) GridAxes() bool { return true }
func (barrierScenario) Description() string {
	return "barrier cost vs #cores — central/tree/butterfly × spin/backoff/mwait waiters"
}

func (barrierScenario) Normalize(j sweep.Job, topo noc.Topology) (sweep.Job, error) {
	if j.Warmup == 0 {
		j.Warmup = DefaultPatternWarmup
	}
	if j.Measure == 0 {
		j.Measure = DefaultPatternMeasure
	}
	if err := checkParams(j.Params, ParamWait, ParamVariant); err != nil {
		return j, err
	}
	_, canonW, err := parseWaitList(j.Params[ParamWait])
	if err != nil {
		return j, err
	}
	variants, canonV, err := parseVariantList(j.Params[ParamVariant])
	if err != nil {
		return j, err
	}
	j.Params = setParam(j.Params, ParamWait, canonW)
	j.Params = setParam(j.Params, ParamVariant, canonV)
	pow2 := false
	for _, v := range variants {
		if v != BarrierCentral {
			pow2 = true
		}
	}
	if len(j.Bins) == 0 {
		j.Bins = defaultCounts(topo, 2)
	}
	return j, normalizeCounts(j, topo, 1, pow2)
}

func (barrierScenario) Curves(topo noc.Topology, j sweep.Job) ([]sweep.Curve, error) {
	warmup, measure := win(j.Warmup), win(j.Measure)
	waits, _, err := parseWaitList(j.Params[ParamWait])
	if err != nil {
		return nil, err
	}
	variants, _, err := parseVariantList(j.Params[ParamVariant])
	if err != nil {
		return nil, err
	}
	var curves []sweep.Curve
	for _, v := range variants {
		for _, w := range waits {
			v, w := v, w
			curves = append(curves, sweep.Curve{
				Name: v.String() + "-" + w.String(), NumPoints: len(j.Bins), Sim: true,
				Key: func(g sweep.GridCoord, pt int) string {
					pol := g.Merge(basePolicy())
					return fmt.Sprintf("%s|w=%s|active%d|%s", v, w, j.Bins[pt], pol.KeyFragment())
				},
				Run: func(g sweep.GridCoord, pt int) sweep.Point {
					pol := g.Merge(basePolicy())
					nActive := j.Bins[pt]
					l := platform.NewLayout(0)
					lay := NewBarrierLayout(l, nActive)
					prog := BarrierProgram(v, w, lay, pol.ResolveBackoff(), 0, false)
					sys := newSystem(pol.Config(topo), prog, nActive)
					act := sys.Measure(warmup, measure)
					sys.PublishObs(obs.Default())
					p := sweep.Point{X: nActive}
					if act.TotalOps > 0 {
						p.SetMetric(MetricCyclesPerBarrier,
							float64(act.Cycle)*float64(nActive)/float64(act.TotalOps))
					}
					return p
				},
			})
		}
	}
	return curves, nil
}

func (barrierScenario) Table(r *sweep.Result) *stats.Table {
	header := []string{"#cores"}
	for _, sr := range r.Series {
		header = append(header, sr.Name)
	}
	t := stats.NewTable(fmt.Sprintf(
		"Synchronization barriers — cycles/barrier vs #cores (%d-core system)",
		r.Cores), header...)
	for i, n := range r.Job.Bins {
		row := []string{strconv.Itoa(n)}
		for _, sr := range r.Series {
			v, _ := sr.Points[i].Metric(MetricCyclesPerBarrier)
			row = append(row, stats.F(v, 1))
		}
		t.Add(row...)
	}
	return t
}

// rcuScenario: reader throughput and writer grace-period latency vs
// active-core count (core 0 writes, the rest read), one curve per
// writer wait kind.
type rcuScenario struct{}

func (rcuScenario) Name() string   { return string(KindRCU) }
func (rcuScenario) GridAxes() bool { return true }
func (rcuScenario) Description() string {
	return "RCU flip-and-wait — reader ops/cycle and writer grace-period cycles vs #cores"
}

func (rcuScenario) Normalize(j sweep.Job, topo noc.Topology) (sweep.Job, error) {
	if j.Warmup == 0 {
		j.Warmup = DefaultPatternWarmup
	}
	if j.Measure == 0 {
		j.Measure = DefaultPatternMeasure
	}
	if err := checkParams(j.Params, ParamWait); err != nil {
		return j, err
	}
	_, canonW, err := parseWaitList(j.Params[ParamWait])
	if err != nil {
		return j, err
	}
	j.Params = setParam(j.Params, ParamWait, canonW)
	if len(j.Bins) == 0 {
		j.Bins = defaultCounts(topo, 2)
	}
	return j, normalizeCounts(j, topo, 2, false)
}

func (rcuScenario) Curves(topo noc.Topology, j sweep.Job) ([]sweep.Curve, error) {
	warmup, measure := win(j.Warmup), win(j.Measure)
	waits, _, err := parseWaitList(j.Params[ParamWait])
	if err != nil {
		return nil, err
	}
	var curves []sweep.Curve
	for _, w := range waits {
		w := w
		curves = append(curves, sweep.Curve{
			Name: "writer-" + w.String(), NumPoints: len(j.Bins), Sim: true,
			Key: func(g sweep.GridCoord, pt int) string {
				pol := g.Merge(basePolicy())
				return fmt.Sprintf("w=%s|active%d|%s", w, j.Bins[pt], pol.KeyFragment())
			},
			Run: func(g sweep.GridCoord, pt int) sweep.Point {
				pol := g.Merge(basePolicy())
				nActive := j.Bins[pt]
				l := platform.NewLayout(0)
				lay := NewRCULayout(l)
				writer := RCUWriterProgram(w, lay, pol.ResolveBackoff(), 0)
				reader := RCUReaderProgram(lay, false)
				idle := haltProgram()
				sys := platform.New(pol.Config(topo), func(core int) *isa.Program {
					switch {
					case core == 0:
						return writer
					case core < nActive:
						return reader
					}
					return idle
				})
				InitRCU(sys, lay)
				act := sys.Measure(warmup, measure)
				sys.PublishObs(obs.Default())
				p := sweep.Point{X: nActive}
				writerOps := act.OpsPerCore[0]
				if act.Cycle > 0 {
					p.Throughput = float64(act.TotalOps-writerOps) / float64(act.Cycle)
				}
				if writerOps > 0 {
					p.SetMetric(MetricWriterSyncCycles, float64(act.Cycle)/float64(writerOps))
				}
				return p
			},
		})
	}
	return curves, nil
}

func (rcuScenario) Table(r *sweep.Result) *stats.Table {
	header := []string{"#cores"}
	for _, sr := range r.Series {
		header = append(header, sr.Name+"-rd", sr.Name+"-sync")
	}
	t := stats.NewTable(fmt.Sprintf(
		"RCU writer-sync — reader ops/cycle and writer grace-period cycles (%d-core system)",
		r.Cores), header...)
	for i, n := range r.Job.Bins {
		row := []string{strconv.Itoa(n)}
		for _, sr := range r.Series {
			p := sr.Points[i]
			sync, _ := p.Metric(MetricWriterSyncCycles)
			row = append(row, stats.F(p.Throughput, 4), stats.F(sync, 1))
		}
		t.Add(row...)
	}
	return t
}

// combLockScenario: combining-lock operations/cycle and per-core
// fairness band vs active-core count, one curve per wait kind.
type combLockScenario struct{}

func (combLockScenario) Name() string   { return string(KindCombLock) }
func (combLockScenario) GridAxes() bool { return true }
func (combLockScenario) Description() string {
	return "combining lock (CC-Synch/HSynch) — ops/cycle and fairness band vs #cores"
}

func (combLockScenario) Normalize(j sweep.Job, topo noc.Topology) (sweep.Job, error) {
	if j.Warmup == 0 {
		j.Warmup = DefaultPatternWarmup
	}
	if j.Measure == 0 {
		j.Measure = DefaultPatternMeasure
	}
	if err := checkParams(j.Params, ParamWait, ParamMaxCombine); err != nil {
		return j, err
	}
	_, canonW, err := parseWaitList(j.Params[ParamWait])
	if err != nil {
		return j, err
	}
	j.Params = setParam(j.Params, ParamWait, canonW)
	mc, err := maxCombineOf(j)
	if err != nil {
		return j, err
	}
	j.Params = setParam(j.Params, ParamMaxCombine, strconv.Itoa(mc))
	if len(j.Bins) == 0 {
		j.Bins = defaultCounts(topo, 2)
	}
	return j, normalizeCounts(j, topo, 1, false)
}

// maxCombineOf parses ParamMaxCombine ("" selects DefaultMaxCombine).
func maxCombineOf(j sweep.Job) (int, error) {
	s := strings.TrimSpace(j.Params[ParamMaxCombine])
	if s == "" {
		return DefaultMaxCombine, nil
	}
	mc, err := strconv.Atoi(s)
	if err != nil || mc < 1 {
		return 0, fmt.Errorf("patterns: %s=%q must be a positive integer", ParamMaxCombine, s)
	}
	return mc, nil
}

func (combLockScenario) Curves(topo noc.Topology, j sweep.Job) ([]sweep.Curve, error) {
	warmup, measure := win(j.Warmup), win(j.Measure)
	waits, _, err := parseWaitList(j.Params[ParamWait])
	if err != nil {
		return nil, err
	}
	maxCombine, err := maxCombineOf(j)
	if err != nil {
		return nil, err
	}
	var curves []sweep.Curve
	for _, w := range waits {
		w := w
		curves = append(curves, sweep.Curve{
			Name: w.String(), NumPoints: len(j.Bins), Sim: true,
			Key: func(g sweep.GridCoord, pt int) string {
				pol := g.Merge(basePolicy())
				return fmt.Sprintf("w=%s|mc%d|active%d|%s", w, maxCombine, j.Bins[pt], pol.KeyFragment())
			},
			Run: func(g sweep.GridCoord, pt int) sweep.Point {
				pol := g.Merge(basePolicy())
				nActive := j.Bins[pt]
				l := platform.NewLayout(0)
				lay := NewCombLayout(l, nActive)
				prog := CombLockProgram(w, lay, maxCombine, pol.ResolveBackoff(), 0)
				sys := newSystem(pol.Config(topo), prog, nActive)
				InitCombLock(sys, lay)
				act := sys.Measure(warmup, measure)
				sys.PublishObs(obs.Default())
				p := sweep.Point{X: nActive, Throughput: act.Throughput()}
				min, max := act.OpsPerCore[0], act.OpsPerCore[0]
				for _, v := range act.OpsPerCore[:nActive] {
					if v < min {
						min = v
					}
					if v > max {
						max = v
					}
				}
				if act.Cycle > 0 {
					p.MinPerCore = float64(min) / float64(act.Cycle)
					p.MaxPerCore = float64(max) / float64(act.Cycle)
				}
				return p
			},
		})
	}
	return curves, nil
}

func (combLockScenario) Table(r *sweep.Result) *stats.Table {
	header := []string{"#cores"}
	for _, sr := range r.Series {
		header = append(header, sr.Name, sr.Name+"-min", sr.Name+"-max")
	}
	t := stats.NewTable(fmt.Sprintf(
		"Combining lock — ops/cycle vs #cores (%d-core system; min/max = per-core band)",
		r.Cores), header...)
	for i, n := range r.Job.Bins {
		row := []string{strconv.Itoa(n)}
		for _, sr := range r.Series {
			p := sr.Points[i]
			row = append(row, stats.F(p.Throughput, 4),
				stats.F(p.MinPerCore, 5), stats.F(p.MaxPerCore, 5))
		}
		t.Add(row...)
	}
	return t
}
