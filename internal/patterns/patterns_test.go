package patterns

import (
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/locks"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/platform"
	"repro/internal/reserve"
)

// Pattern litmus tests: each kernel runs bounded on a real 16-core
// system across the full policy registry (the five built-ins plus a
// test-only custom policy, so the open registry path is covered too)
// and across every wait kind, then the final memory state is checked
// against the pattern's safety property — no core passes a barrier
// round early, no reader observes a torn RCU version, the combining
// lock preserves mutual exclusion and FIFO service.

// testPolicy is a custom policy registered only in this test binary (a
// reservation-table wrapper), covering hardware that joined through
// RegisterPolicy rather than the built-in table.
type testPolicy struct{}

func (testPolicy) Name() string { return "patterns-custom" }

func (p testPolicy) Normalize(params platform.PolicyParams, _ noc.Topology) (platform.Policy, error) {
	if err := params.Check(); err != nil {
		return nil, err
	}
	return p, nil
}

func (testPolicy) NewAdapter(b platform.BankContext) mem.Adapter {
	return reserve.NewTable(b.NumCores)
}

var registerTestPolicy = sync.OnceFunc(func() {
	platform.MustRegisterPolicy(testPolicy{})
})

// forEachPolicyWait runs the body as one subtest per (registered policy
// × wait kind) pair.
func forEachPolicyWait(t *testing.T, body func(t *testing.T, pol experiments.Policy, w locks.WaitKind)) {
	t.Helper()
	registerTestPolicy()
	for _, name := range platform.PolicyNames() {
		for _, w := range locks.WaitKinds() {
			t.Run(name+"/"+w.String(), func(t *testing.T) {
				body(t, experiments.Policy{Kind: platform.PolicyKind(name)}, w)
			})
		}
	}
}

func TestBarrierLitmus(t *testing.T) {
	topo := noc.Small()
	const nActive, rounds = 8, 4
	forEachPolicyWait(t, func(t *testing.T, pol experiments.Policy, w locks.WaitKind) {
		for _, v := range BarrierVariants() {
			t.Run(v.String(), func(t *testing.T) {
				l := platform.NewLayout(0)
				lay := NewBarrierLayout(l, nActive)
				prog := BarrierProgram(v, w, lay, pol.ResolveBackoff(), rounds, true)
				sys := newSystem(pol.Config(topo), prog, nActive)
				if !sys.RunUntilHalted(2_000_000) {
					t.Fatal("barrier kernel did not halt")
				}
				if e := sys.ReadWord(lay.Err); e != 0 {
					t.Errorf("early barrier pass detected (err word = %d)", e)
				}
				for i := 0; i < nActive; i++ {
					if got := sys.Cores[i].Stats.Ops; got != rounds {
						t.Errorf("core %d crossed %d rounds, want %d", i, got, rounds)
					}
					if got := sys.ReadWord(lay.Slots + uint32(4*i)); got != rounds-1 {
						t.Errorf("core %d final progress slot = %d, want %d", i, got, rounds-1)
					}
				}
			})
		}
	})
}

func TestRCULitmus(t *testing.T) {
	topo := noc.Small()
	const nActive, syncs = 5, 6
	forEachPolicyWait(t, func(t *testing.T, pol experiments.Policy, w locks.WaitKind) {
		l := platform.NewLayout(0)
		lay := NewRCULayout(l)
		writer := RCUWriterProgram(w, lay, pol.ResolveBackoff(), syncs)
		reader := RCUReaderProgram(lay, true)
		idle := haltProgram()
		sys := platform.New(pol.Config(topo), func(core int) *isa.Program {
			switch {
			case core == 0:
				return writer
			case core < nActive:
				return reader
			}
			return idle
		})
		InitRCU(sys, lay)
		if !sys.RunUntilHalted(2_000_000) {
			t.Fatal("RCU kernel did not halt")
		}
		if e := sys.ReadWord(lay.Err); e != 0 {
			t.Error("a reader observed a torn (reclaimed) RCU version")
		}
		if got := sys.Cores[0].Stats.Ops; got != syncs {
			t.Errorf("writer completed %d syncs, want %d", got, syncs)
		}
		for i := 1; i < nActive; i++ {
			if sys.Cores[i].Stats.Ops == 0 {
				t.Errorf("reader %d made no progress", i)
			}
		}
		// Every reader deregistered before halting.
		if c0, c1 := sys.ReadWord(lay.Cnt), sys.ReadWord(lay.Cnt+4); c0 != 0 || c1 != 0 {
			t.Errorf("reader counters not drained at halt: [%d %d]", c0, c1)
		}
	})
}

func TestCombLockLitmus(t *testing.T) {
	topo := noc.Small()
	// A serve bound below the core count forces combiner handover.
	const nActive, iters, maxCombine = 6, 8, 3
	forEachPolicyWait(t, func(t *testing.T, pol experiments.Policy, w locks.WaitKind) {
		l := platform.NewLayout(0)
		lay := NewCombLayout(l, nActive)
		prog := CombLockProgram(w, lay, maxCombine, pol.ResolveBackoff(), iters)
		sys := newSystem(pol.Config(topo), prog, nActive)
		InitCombLock(sys, lay)
		if !sys.RunUntilHalted(2_000_000) {
			t.Fatal("combining-lock kernel did not halt")
		}
		if e := sys.ReadWord(lay.Err); e != 0 {
			t.Error("combiner overlap or FIFO violation (err word set)")
		}
		const total = nActive * iters
		// Mutual exclusion: the counter is incremented non-atomically, so
		// overlapping combiners would lose updates.
		if got := sys.ReadWord(lay.Counter); got != total {
			t.Errorf("counter = %d, want %d (lost updates => combiners overlapped)", got, total)
		}
		// FIFO + uniqueness: the receipts handed out must be exactly
		// 1..total, so the per-core sums add up to total*(total+1)/2.
		var sum uint32
		for i := 0; i < nActive; i++ {
			sum += sys.ReadWord(lay.Sums + uint32(4*i))
		}
		if want := uint32(total * (total + 1) / 2); sum != want {
			t.Errorf("receipt sum = %d, want %d (duplicate or skipped service)", sum, want)
		}
		for i := 0; i < nActive; i++ {
			if got := sys.Cores[i].Stats.Ops; got != iters {
				t.Errorf("core %d completed %d ops, want %d", i, got, iters)
			}
		}
	})
}
