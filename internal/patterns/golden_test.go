package patterns

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite the emitter golden files from current output")

// Reduced deterministic windows for the golden sweeps (the sweep
// package's test convention).
const (
	testWarmup  = 300
	testMeasure = 1500
)

// TestGoldenEmitters pins the three pattern kinds' JSON, CSV and
// aligned-table output byte-for-byte against testdata/. After an
// intentional simulator or emitter change, regenerate with
//
//	go test ./internal/patterns -run TestGoldenEmitters -update
//
// and review the diff like any other code change.
func TestGoldenEmitters(t *testing.T) {
	cases := []struct {
		name string
		job  sweep.Job
	}{
		// The default barrier job pins all variant × wait curves and the
		// param canonicalization (Normalize fills wait/variant).
		{"barrier-default", sweep.Job{Kind: KindBarrier, Topo: "small",
			Bins: []int{2, 4}, Warmup: testWarmup, Measure: testMeasure}},
		// The RCU job pins the reader-throughput + writer-latency table.
		{"rcu-default", sweep.Job{Kind: KindRCU, Topo: "small",
			Bins: []int{2, 4}, Warmup: testWarmup, Measure: testMeasure}},
		// A policy-grid combining-lock job pins grid series labelling for
		// the pattern kinds (plain vs colibri under one wait kind).
		{"comblock-grid", sweep.Job{Kind: KindCombLock, Topo: "small",
			Bins: []int{2, 4}, Warmup: testWarmup, Measure: testMeasure,
			Params:   map[string]string{ParamWait: "spin,mwait", ParamMaxCombine: "4"},
			Policies: []string{"plain", "colibri"}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, _, err := (&sweep.Runner{Workers: 1}).Run(c.job)
			if err != nil {
				t.Fatal(err)
			}
			jsonB, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			outputs := []struct {
				ext string
				got []byte
			}{
				{"json", jsonB},
				{"csv", []byte(res.CSV())},
				{"txt", []byte(res.Table().String())},
			}
			for _, o := range outputs {
				path := filepath.Join("testdata", c.name+"."+o.ext)
				if *update {
					if err := os.WriteFile(path, o.got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
				}
				if !bytes.Equal(o.got, want) {
					t.Errorf("%s: output drifted from golden file\n--- got ---\n%s--- want ---\n%s",
						path, o.got, want)
				}
			}
		})
	}
}
