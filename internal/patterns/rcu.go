package patterns

import (
	"repro/internal/isa"
	"repro/internal/locks"
	"repro/internal/platform"
)

// RCU writer synchronization modeled on Quicksand's RCULock: readers
// enter a critical section by incrementing the reader counter of the
// current phase and leave by decrementing it; the writer publishes a new
// version, then runs flip-and-wait twice — flip the phase flag, wait for
// the retired phase's counter to drain — before reclaiming (poisoning)
// the retired buffer. The writer's wait on the draining counter is a
// locks.EmitWaitChange, so the poll/backoff/Mwait choice maps directly
// onto polling vs. LRSCwait.
//
// The published object is a two-word (value, check) pair written with
// value == check; reclamation poisons the pair with two different
// values. A reader that ever observes value != check has dereferenced a
// retired-and-reclaimed version — exactly the use-after-reclaim a broken
// grace period permits — and sets the sticky error word.

// RCULayout places the RCU data sections. InitRCU must run before the
// system starts.
type RCULayout struct {
	Flag uint32 // phase flag (0/1)
	Cnt  uint32 // two phase reader counters (2 words)
	Ptr  uint32 // published version pointer (byte address of a buffer)
	Bufs uint32 // two 2-word (value, check) buffers (4 words)
	Stop uint32 // bounded runs: writer sets it after the last sync; readers halt on it
	Err  uint32 // litmus error word (sticky, 0 = no violation)
}

// NewRCULayout allocates the RCU sections from l.
func NewRCULayout(l *platform.Layout) RCULayout {
	var lay RCULayout
	lay.Flag = l.Words(1)
	lay.Cnt = l.Words(2)
	lay.Ptr = l.Words(1)
	lay.Bufs = l.Words(4)
	lay.Stop = l.Words(1)
	lay.Err = l.Words(1)
	return lay
}

// InitRCU points the published pointer at buffer 0, whose zeroed state
// (value == check == 0) is a consistent version for early readers.
func InitRCU(sys *platform.System, lay RCULayout) {
	sys.WriteWord(lay.Ptr, lay.Bufs)
}

// RCU writer register plan:
//
//	a0 flag addr     a1 counter base   a2 ptr addr
//	s3 sequence      s4 backoff cap    s5 backoff cur
//	s6 buffer base   s7 current buffer index
//	t0..t4 scratch
//
// RCUWriterProgram builds the writer (core 0): alternate buffers, write
// the next version (value = check = seq), publish it, synchronize with
// a double flip-and-wait, poison the retired buffer, MARK. syncs <= 0
// builds an endless loop; otherwise the writer raises the stop word
// after syncs rounds and halts.
func RCUWriterProgram(w locks.WaitKind, lay RCULayout, backoff int32, syncs int) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.A0, int32(lay.Flag))
	b.Li(isa.A1, int32(lay.Cnt))
	b.Li(isa.A2, int32(lay.Ptr))
	b.Li(isa.S3, 0)
	b.Li(isa.S4, backoff)
	locks.EmitBackoffReset(b, isa.S5, isa.S4)
	b.Li(isa.S6, int32(lay.Bufs))
	b.Li(isa.S7, 0) // buffer 0 is live (InitRCU)

	b.Label("w_loop")
	// Write the next version into the spare buffer and publish it.
	b.Xori(isa.S7, isa.S7, 1)
	b.Slli(isa.T0, isa.S7, 3)
	b.Add(isa.T0, isa.T0, isa.S6)
	b.Addi(isa.S3, isa.S3, 1)
	b.Sw(isa.S3, isa.T0, 0)
	b.Sw(isa.S3, isa.T0, 4)
	b.Sw(isa.T0, isa.A2, 0)
	// writer_sync: flip-and-wait twice (RCULock), so readers registered
	// on either phase have drained before reclaim.
	emitFlipAndWait(b, "f1", w)
	emitFlipAndWait(b, "f2", w)
	// Reclaim: poison the retired buffer with a torn pair.
	b.Xori(isa.T0, isa.S7, 1)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, isa.S6)
	b.Li(isa.T1, 0xDEAD)
	b.Sw(isa.T1, isa.T0, 0)
	b.Li(isa.T1, 0xBEEF)
	b.Sw(isa.T1, isa.T0, 4)
	b.Mark()
	if syncs > 0 {
		b.Li(isa.T1, int32(syncs))
		b.Bne(isa.S3, isa.T1, "w_loop")
		b.Li(isa.T0, 1)
		b.Li(isa.T1, int32(lay.Stop))
		b.Sw(isa.T0, isa.T1, 0)
		b.Halt()
	} else {
		b.J("w_loop")
	}
	return b.MustBuild()
}

// emitFlipAndWait: old = flag; flag = !old; wait until cnt[old] == 0.
// The drain wait re-checks for zero after every observed change, since
// the counter may pass through intermediate values.
func emitFlipAndWait(b *isa.Builder, prefix string, w locks.WaitKind) {
	b.Lw(isa.T1, isa.A0, 0)
	b.Xori(isa.T2, isa.T1, 1)
	b.Sw(isa.T2, isa.A0, 0)
	b.Slli(isa.T3, isa.T1, 2)
	b.Add(isa.T3, isa.T3, isa.A1) // &cnt[old]
	b.Label(prefix + "_chk")
	b.Lw(isa.T4, isa.T3, 0)
	b.Beqz(isa.T4, prefix+"_done")
	locks.EmitWaitChange(b, prefix, w, isa.T0, isa.T4, isa.T3, isa.S5, isa.S4)
	b.J(prefix + "_chk")
	b.Label(prefix + "_done")
}

// RCU reader register plan:
//
//	a0 flag addr   a1 counter base   a2 ptr addr   a3 error addr
//	s1 stop addr (bounded runs)
//	t0..t4 scratch
//
// RCUReaderProgram builds a reader: register on the current phase's
// counter, dereference the published version, check value == check,
// deregister, MARK. bounded selects the stop-word check (litmus runs);
// otherwise the loop is endless (throughput windows).
func RCUReaderProgram(lay RCULayout, bounded bool) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.A0, int32(lay.Flag))
	b.Li(isa.A1, int32(lay.Cnt))
	b.Li(isa.A2, int32(lay.Ptr))
	b.Li(isa.A3, int32(lay.Err))
	if bounded {
		b.Li(isa.S1, int32(lay.Stop))
	}
	b.Label("r_loop")
	if bounded {
		b.Lw(isa.T0, isa.S1, 0)
		b.Bnez(isa.T0, "r_halt")
	}
	// rcu_read_lock: register on the current phase.
	b.Lw(isa.T0, isa.A0, 0)
	b.Slli(isa.T1, isa.T0, 2)
	b.Add(isa.T1, isa.T1, isa.A1)
	b.Li(isa.T2, 1)
	b.AmoAdd(isa.Zero, isa.T2, isa.T1)
	// Critical section: dereference and check the published version.
	b.Lw(isa.T2, isa.A2, 0)
	b.Lw(isa.T3, isa.T2, 0)
	b.Lw(isa.T4, isa.T2, 4)
	b.Beq(isa.T3, isa.T4, "r_ok")
	b.Li(isa.T3, 1)
	b.Sw(isa.T3, isa.A3, 0)
	b.Label("r_ok")
	// rcu_read_unlock: deregister from the same counter.
	b.Li(isa.T2, -1)
	b.AmoAdd(isa.Zero, isa.T2, isa.T1)
	b.Mark()
	b.J("r_loop")
	if bounded {
		b.Label("r_halt")
		b.Halt()
	}
	return b.MustBuild()
}
