// Package patterns is the synchronization-pattern workload suite: the
// classic shared-memory synchronization idioms — barriers (central
// sense-reversing, binary tree, butterfly), RCU writer synchronization
// (epoch flip-and-wait), and an HSynch/CC-Synch-style combining lock —
// each built as an assembly kernel on internal/isa + internal/locks and
// registered as a sweep.Scenario.
//
// The paper's claim is about synchronization *patterns*, not just its
// three evaluation kernels: polling-free, retry-free waiting scales
// where spinning collapses. Every kernel here therefore parameterizes
// its waiters across locks.WaitKinds — busy spin, backoff spin, and
// Mwait sleep — the software axis that maps onto the hardware policy
// axis (plain/lrsc/lrsc-table/lrscwait/colibri) the sweep grid already
// sweeps. The kernels use only AMOs, plain loads/stores and Mwait, and
// every Mwait sits in a retry loop, so they run (if slowly) under every
// registered policy, including ones that refuse Mwait.
//
// Registration happens in this package's init (scenarios.go); importing
// the package — directly, via the facade, or blank from cmd/sweep — is
// what adds the kinds to the registry. The sweep engine's grid, cache,
// emitters and service fabric apply unchanged.
package patterns

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/locks"
)

// Scenario parameter keys (Job.Params / cmd/sweep -params).
const (
	// ParamWait selects the swept wait strategies: a comma-separated
	// subset of spin, backoff, mwait. Default: all three.
	ParamWait = "wait"
	// ParamVariant selects the swept barrier variants: a comma-separated
	// subset of central, tree, butterfly. Default: all three.
	ParamVariant = "variant"
	// ParamMaxCombine bounds how many queued requests one combining-lock
	// holder serves before handing over. Default: 16.
	ParamMaxCombine = "maxcombine"
)

// DefaultMaxCombine is the combining-lock holder's serve bound when
// ParamMaxCombine is unset (CC-Synch's h; bounds holder latency).
const DefaultMaxCombine = 16

// parseWaitList parses a comma-separated wait-kind list ("" selects all
// kinds) and returns the kinds with their canonical spelling.
func parseWaitList(s string) ([]locks.WaitKind, string, error) {
	if strings.TrimSpace(s) == "" {
		kinds := locks.WaitKinds()
		return kinds, joinWaits(kinds), nil
	}
	var kinds []locks.WaitKind
	seen := map[locks.WaitKind]bool{}
	for _, part := range strings.Split(s, ",") {
		w, err := locks.ParseWaitKind(strings.TrimSpace(part))
		if err != nil {
			return nil, "", err
		}
		if seen[w] {
			return nil, "", fmt.Errorf("patterns: duplicate wait kind %q", w)
		}
		seen[w] = true
		kinds = append(kinds, w)
	}
	return kinds, joinWaits(kinds), nil
}

func joinWaits(kinds []locks.WaitKind) string {
	parts := make([]string, len(kinds))
	for i, w := range kinds {
		parts[i] = w.String()
	}
	return strings.Join(parts, ",")
}

// checkParams rejects Params keys outside allowed. Every key feeds the
// cache identity, so an unrecognized (e.g. misspelled) key must fail
// loudly rather than silently fork the cache namespace.
func checkParams(params map[string]string, allowed ...string) error {
	for k := range params {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("patterns: unknown param %q (allowed: %s)",
				k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// setParam writes a canonicalized param value, allocating the map if the
// job arrived without one.
func setParam(params map[string]string, key, val string) map[string]string {
	if params == nil {
		params = map[string]string{}
	}
	params[key] = val
	return params
}

// haltProgram is the program for cores outside the active set.
func haltProgram() *isa.Program {
	b := isa.NewBuilder()
	b.Halt()
	return b.MustBuild()
}

// win resolves a normalized window value: negative means a literal
// zero-cycle window (the Job convention).
func win(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
