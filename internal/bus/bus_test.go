package bus

import (
	"strings"
	"testing"
)

func TestOpPredicates(t *testing.T) {
	amos := []Op{AmoAdd, AmoSwap, AmoAnd, AmoOr, AmoXor, AmoMin, AmoMax, AmoMinU, AmoMaxU}
	for _, op := range amos {
		if !op.IsAMO() {
			t.Errorf("%v.IsAMO() = false", op)
		}
		if !op.Writes() {
			t.Errorf("%v.Writes() = false", op)
		}
	}
	for _, op := range []Op{Load, LR, LRWait, MWait, WakeUpReq} {
		if op.IsAMO() {
			t.Errorf("%v.IsAMO() = true", op)
		}
		if op.Writes() {
			t.Errorf("%v.Writes() = true", op)
		}
	}
	for _, op := range []Op{Store, SC, SCWait} {
		if !op.Writes() {
			t.Errorf("%v.Writes() = false", op)
		}
	}
}

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		Load: "lw", Store: "sw", AmoAdd: "amoadd", LR: "lr", SC: "sc",
		LRWait: "lrwait", SCWait: "scwait", MWait: "mwait", WakeUpReq: "wakeupreq",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestMessageStrings(t *testing.T) {
	r := Request{Op: LRWait, Addr: 0x40, Src: 3}
	if s := r.String(); !strings.Contains(s, "lrwait") || !strings.Contains(s, "core3") {
		t.Errorf("request string = %q", s)
	}
	resp := Response{Op: LRWait, Dst: 3, Data: 7, OK: true, Kind: RespSuccUpdate}
	if s := resp.String(); !strings.Contains(s, "succ-update") {
		t.Errorf("response string = %q", s)
	}
}
