// Package bus defines the memory-transaction messages exchanged between
// cores, the interconnect, and the memory banks, including the custom
// LRwait/SCwait/Mwait operations and Colibri's internal protocol messages
// (SuccessorUpdate, WakeUpRequest).
//
// A Request travels on the request network from a core (through its Qnode)
// to a memory bank. A Response travels on the response network from a bank
// back to a core. Colibri's SuccessorUpdate is a Response-network message
// addressed to a Qnode; its WakeUpRequest is a Request-network message
// addressed to a bank controller.
package bus

import "fmt"

// Op enumerates memory operations. The numeric values are stable and are
// used by the ISA encoder.
type Op uint8

const (
	// Nop is the zero Op; it is never sent on the network.
	Nop Op = iota
	// Load is a word load.
	Load
	// Store is a word store.
	Store
	// AmoAdd through AmoMaxU are single-round-trip atomic
	// read-modify-write operations executed by the bank's AMO ALU.
	AmoAdd
	AmoSwap
	AmoAnd
	AmoOr
	AmoXor
	AmoMin
	AmoMax
	AmoMinU
	AmoMaxU
	// LR and SC are the standard RISC-V load-reserved and
	// store-conditional operations.
	LR
	SC
	// LRWait and SCWait are the paper's polling-free pair: the LRWait
	// response is withheld by the memory controller until the issuing
	// core is at the head of the reservation queue for the address.
	LRWait
	SCWait
	// MWait monitors an address: the response is withheld until the
	// memory value differs from the expected value carried in Data.
	MWait
	// WakeUpReq is Colibri-internal: sent by a Qnode to the bank
	// controller to promote the successor to the head of the queue.
	WakeUpReq
)

var opNames = [...]string{
	Nop: "nop", Load: "lw", Store: "sw",
	AmoAdd: "amoadd", AmoSwap: "amoswap", AmoAnd: "amoand", AmoOr: "amoor",
	AmoXor: "amoxor", AmoMin: "amomin", AmoMax: "amomax", AmoMinU: "amominu",
	AmoMaxU: "amomaxu",
	LR:      "lr", SC: "sc", LRWait: "lrwait", SCWait: "scwait", MWait: "mwait",
	WakeUpReq: "wakeupreq",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsAMO reports whether o is a single-round-trip atomic RMW operation.
func (o Op) IsAMO() bool { return o >= AmoAdd && o <= AmoMaxU }

// Writes reports whether o can modify memory when it succeeds.
func (o Op) Writes() bool {
	return o == Store || o.IsAMO() || o == SC || o == SCWait
}

// Request is a core-to-memory message.
type Request struct {
	Op   Op
	Addr uint32
	// Data is the store/AMO operand, or the expected value for MWait.
	Data uint32
	// Src is the issuing core ID; responses are routed back to it.
	Src int

	// Colibri WakeUpRequest payload: the successor core to promote and
	// the operation it is waiting with (LRWait or MWait, with SuccData
	// holding MWait's expected value). Piggybacked so the controller can
	// serve the successor without an extra round-trip; the controller
	// learned these values when it enqueued the successor and forwarded
	// them to the predecessor's Qnode in the SuccessorUpdate.
	Succ     int
	SuccOp   Op
	SuccData uint32
}

// RespKind distinguishes ordinary memory responses from Colibri's
// Qnode-directed protocol messages.
type RespKind uint8

const (
	// RespNormal is a reply to a core's memory request.
	RespNormal RespKind = iota
	// RespSuccUpdate is Colibri's SuccessorUpdate: it writes the
	// successor link into the destination core's Qnode and is consumed
	// there; the core itself never observes it.
	RespSuccUpdate
)

// Response is a memory-to-core message.
type Response struct {
	Kind RespKind
	// Dst is the core (or its Qnode) the message is addressed to.
	Dst int
	Op  Op
	// Addr echoes the request address (used by Qnodes and tracing).
	Addr uint32
	Data uint32
	// OK is the success flag: true for a granted LR/LRwait/Mwait or a
	// successful SC/SCwait; false for a failed SC/SCwait or an LRwait/
	// Mwait that was refused because the controller had no free queue.
	OK bool

	// SuccessorUpdate payload (Kind == RespSuccUpdate).
	Succ     int
	SuccOp   Op
	SuccData uint32
}

func (r Request) String() string {
	return fmt.Sprintf("%s core%d addr=%#x data=%#x", r.Op, r.Src, r.Addr, r.Data)
}

func (r Response) String() string {
	k := ""
	if r.Kind == RespSuccUpdate {
		k = " succ-update"
	}
	return fmt.Sprintf("%s->core%d%s data=%#x ok=%v", r.Op, r.Dst, k, r.Data, r.OK)
}
