// Package energy converts simulator activity counters into energy,
// reproducing the paper's Table II (energy per atomic operation at the
// highest contention level).
//
// The paper measures post-layout switching activity in GF22FDX at
// TT/0.80 V/25 °C and 600 MHz. This model charges each activity class a
// fixed energy: executing cycles and busy-wait backoff at active core
// power, response-wait stalls at pipeline-stall power, LRwait/Mwait waits
// at clock-gated sleep power, plus per-event costs for NoC hop traversals
// and bank accesses. The constants are calibrated so the modelled MemPool
// system lands in the published power envelope (≈170–190 mW) and are the
// structural reason the relative Table II results reproduce: LRSC and
// lock spinning burn active cycles and traffic, Colibri sleeps.
package energy

import "repro/internal/platform"

// PolicyWeights is an optional extension of platform policies
// (platform.Policy): a policy implementing it supplies its own
// calibrated per-event energy constants, which energy-reporting front
// ends (cmd/lrscwait-sim) use in place of Default() when that policy is
// configured. The built-in policies share the one calibrated model and
// do not implement it.
type PolicyWeights interface {
	EnergyWeights() Params
}

// Params are the per-event energies in picojoules.
type Params struct {
	PJPerBusy  float64 // core executing one instruction
	PJPerPause float64 // timer backoff (modelled spin loop: active)
	PJPerStall float64 // waiting for a memory response
	PJPerSleep float64 // clock-gated LRwait/Mwait wait
	PJPerIdle  float64 // halted core leakage
	PJPerFlit  float64 // one hop traversal in the fabric
	PJPerBank  float64 // one bank activation
	// BackgroundMW is the workload-independent system power (clock tree,
	// leakage, idle SRAM). It enters the average-power figure only; the
	// paper's Table II power column varies just 169–188 mW across rows,
	// i.e. it is dominated by exactly this baseline.
	BackgroundMW float64
}

// Default returns the calibrated parameters.
//
// Calibration: the constants are a least-squares fit (in log space) of the
// four Table II rows against this simulator's measured per-operation
// activity at 256 cores and one histogram bin. The fit reproduces the
// amoadd/colibri/lrsc rows within ~15% and the paper's headline 7.1×
// Colibri-vs-LRSC energy advantage; the lock row overshoots (see
// EXPERIMENTS.md) because the simulated fabric penalizes polling
// hot-spots harder than MemPool's physical interconnect. The low stall
// cost reflects Snitch-style fine-grained clock gating while a load is
// outstanding; the sleep cost additionally carries the armed wake-up path
// of a parked LRwait/Mwait — and, being fitted, absorbs part of the
// residual throughput difference between this model and the RTL.
func Default() Params {
	return Params{
		PJPerBusy:  0.80,
		PJPerPause: 0.0005, // timer-gated backoff
		PJPerStall: 0.002,  // clock-gated response wait
		PJPerSleep: 0.03,   // parked in the reservation queue
		PJPerIdle:  0.002,
		PJPerFlit:  0.05,
		PJPerBank:  0.50,

		BackgroundMW: 165,
	}
}

// EnergyPJ returns the total energy of an activity window in picojoules.
func (p Params) EnergyPJ(a platform.Activity) float64 {
	return float64(a.BusyCycles)*p.PJPerBusy +
		float64(a.PauseCycles)*p.PJPerPause +
		float64(a.MemWaitCycles+a.IssueStallCycles)*p.PJPerStall +
		float64(a.SleepCycles)*p.PJPerSleep +
		float64(a.HaltedCycles)*p.PJPerIdle +
		float64(a.Flits)*p.PJPerFlit +
		float64(a.BankAccesses)*p.PJPerBank
}

// PerOpPJ returns the energy per completed benchmark operation.
func (p Params) PerOpPJ(a platform.Activity) float64 {
	if a.TotalOps == 0 {
		return 0
	}
	return p.EnergyPJ(a) / float64(a.TotalOps)
}

// PowerMW returns the average power over the window at the given clock
// frequency in MHz (the paper evaluates at 600 MHz).
func (p Params) PowerMW(a platform.Activity, freqMHz float64) float64 {
	if a.Cycle == 0 {
		return 0
	}
	// pJ per cycle × cycles per second = pJ/s; 1 pJ × 1 MHz = 1 µW.
	pjPerCycle := p.EnergyPJ(a) / float64(a.Cycle)
	return p.BackgroundMW + pjPerCycle*freqMHz/1000.0
}
