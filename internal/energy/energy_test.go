package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestEnergyComposition(t *testing.T) {
	p := Params{PJPerBusy: 1, PJPerPause: 2, PJPerStall: 3, PJPerSleep: 4,
		PJPerIdle: 5, PJPerFlit: 6, PJPerBank: 7}
	a := platform.Activity{
		BusyCycles: 10, PauseCycles: 10, MemWaitCycles: 5,
		IssueStallCycles: 5, SleepCycles: 10, HaltedCycles: 10,
		Flits: 10, BankAccesses: 10,
	}
	want := 10.0*1 + 10*2 + 10*3 + 10*4 + 10*5 + 10*6 + 10*7
	if got := p.EnergyPJ(a); math.Abs(got-want) > 1e-9 {
		t.Errorf("EnergyPJ = %f, want %f", got, want)
	}
}

func TestPerOpDivision(t *testing.T) {
	p := Default()
	a := platform.Activity{BusyCycles: 100, TotalOps: 10}
	if got := p.PerOpPJ(a); math.Abs(got-10*p.PJPerBusy) > 1e-9 {
		t.Errorf("PerOpPJ = %f", got)
	}
	if got := p.PerOpPJ(platform.Activity{}); got != 0 {
		t.Errorf("PerOpPJ with zero ops = %f, want 0", got)
	}
}

func TestPowerIncludesBackground(t *testing.T) {
	p := Default()
	// Zero dynamic activity: power is the background.
	a := platform.Activity{Cycle: 100}
	if got := p.PowerMW(a, 600); math.Abs(got-p.BackgroundMW) > 1e-9 {
		t.Errorf("idle power = %f, want %f", got, p.BackgroundMW)
	}
	if got := p.PowerMW(platform.Activity{}, 600); got != 0 {
		t.Errorf("zero-cycle power = %f, want 0", got)
	}
	// Dynamic activity adds on top.
	a.BusyCycles = 100
	if got := p.PowerMW(a, 600); got <= p.BackgroundMW {
		t.Error("busy cycles did not raise power")
	}
}

func TestEnergyMonotoneInActivity(t *testing.T) {
	p := Default()
	prop := func(busy, flits uint16) bool {
		a := platform.Activity{BusyCycles: uint64(busy), Flits: uint64(flits)}
		b := a
		b.BusyCycles++
		b.Flits++
		return p.EnergyPJ(b) > p.EnergyPJ(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSleepCheaperThanBusy(t *testing.T) {
	p := Default()
	if p.PJPerSleep >= p.PJPerBusy {
		t.Errorf("sleep (%f) not cheaper than busy (%f)", p.PJPerSleep, p.PJPerBusy)
	}
}
