package trace

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/platform"
)

func sampledSystem(t *testing.T) *platform.System {
	t.Helper()
	cfg := platform.SmallConfig(platform.PolicyColibri)
	l := platform.NewLayout(0)
	lay := kernels.NewHistLayout(l, 1, cfg.Topo.NumCores())
	prog := kernels.HistogramProgram(kernels.HistLRSCWait, lay, 128, 0)
	return platform.New(cfg, platform.SameProgram(prog))
}

func TestRunSamples(t *testing.T) {
	sys := sampledSystem(t)
	tr := Run(sys, 1000, 100)
	if len(tr.Samples) != 11 { // 10 periodic + final
		t.Fatalf("samples = %d, want 11", len(tr.Samples))
	}
	last := tr.Samples[len(tr.Samples)-1]
	if last.Cycle != 1000 {
		t.Errorf("final sample at cycle %d, want 1000", last.Cycle)
	}
	// Single-bin Colibri histogram: most cores asleep once warmed up.
	if last.Sleeping == 0 {
		t.Error("no sleeping cores sampled under full contention")
	}
	n := sys.Cfg.Topo.NumCores()
	total := last.Busy + last.Sleeping + last.WaitingMem + last.Backoff + last.Halted
	if total != n {
		t.Errorf("core census = %d, want %d", total, n)
	}
	if last.Ops == 0 {
		t.Error("no operations sampled")
	}
}

func TestSparklines(t *testing.T) {
	sys := sampledSystem(t)
	tr := Run(sys, 500, 50)
	out := tr.Sparklines(sys.Cfg.Topo.NumCores())
	for _, want := range []string{"busy", "sleeping", "in-flight", "ops/cycle"} {
		if !strings.Contains(out, want) {
			t.Errorf("sparklines missing %q:\n%s", want, out)
		}
	}
	// Each row renders one rune per sample.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("rows = %d, want 6", len(lines))
	}
}

func TestCSV(t *testing.T) {
	sys := sampledSystem(t)
	tr := Run(sys, 200, 100)
	csv := tr.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(tr.Samples) {
		t.Errorf("csv lines = %d, want %d", len(lines), 1+len(tr.Samples))
	}
	if !strings.HasPrefix(lines[0], "cycle,") {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestSparklineScaling(t *testing.T) {
	if got := sparkline([]float64{0, 1}, 1); got != "▁█" {
		t.Errorf("sparkline = %q, want low+high", got)
	}
	if got := sparkline([]float64{5}, 0); len([]rune(got)) != 1 {
		t.Errorf("zero-max sparkline = %q", got)
	}
}
