// Package trace samples system activity over time and renders the series
// as text sparklines or CSV — the quick-look waveform viewer of this
// simulator. It reads only public platform state, so it adds zero cost
// when unused.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/platform"
)

// Sample is one observation of system-wide state.
type Sample struct {
	Cycle engine.Cycle
	// Core-state census.
	Busy, Sleeping, WaitingMem, Backoff, Halted int
	// Messages queued anywhere in the fabric.
	InFlight int
	// Cumulative completed operations.
	Ops uint64
}

// Capture takes one sample of sys. Parked cores are stat-synced first so
// the census and counters are cycle-exact under the activity-driven
// kernel.
func Capture(sys *platform.System) Sample {
	sys.SyncStats()
	s := Sample{Cycle: sys.Clock.Now(), InFlight: sys.Fabric.InFlight()}
	for _, c := range sys.Cores {
		switch {
		case c.Halted():
			s.Halted++
		case c.Sleeping():
			s.Sleeping++
		case c.State() == cpu.Stalled:
			s.Backoff++
		case c.State() == cpu.WaitResp || c.State() == cpu.WaitIssue:
			s.WaitingMem++
		default:
			s.Busy++
		}
		s.Ops += c.Stats.Ops
	}
	return s
}

// Series is a sampled run.
type Series struct {
	Every   int
	Samples []Sample
}

// Run advances sys by cycles, sampling every `every` cycles.
func Run(sys *platform.System, cycles, every int) *Series {
	if every <= 0 {
		every = 1
	}
	tr := &Series{Every: every}
	for i := 0; i < cycles; i++ {
		if i%every == 0 {
			tr.Samples = append(tr.Samples, Capture(sys))
		}
		sys.Tick()
	}
	tr.Samples = append(tr.Samples, Capture(sys))
	return tr
}

var sparks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values scaled to the given maximum.
func sparkline(vals []float64, max float64) string {
	if max <= 0 {
		max = 1
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := int(v / max * float64(len(sparks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparks) {
			idx = len(sparks) - 1
		}
		sb.WriteRune(sparks[idx])
	}
	return sb.String()
}

// Sparklines renders the core-census series plus throughput as aligned
// sparkline rows.
func (t *Series) Sparklines(nCores int) string {
	if len(t.Samples) == 0 {
		return ""
	}
	n := len(t.Samples)
	busy := make([]float64, n)
	sleep := make([]float64, n)
	waitm := make([]float64, n)
	backoff := make([]float64, n)
	inflight := make([]float64, n)
	tput := make([]float64, n)
	maxFlight, maxTput := 1.0, 0.0001
	for i, s := range t.Samples {
		busy[i] = float64(s.Busy)
		sleep[i] = float64(s.Sleeping)
		waitm[i] = float64(s.WaitingMem)
		backoff[i] = float64(s.Backoff)
		inflight[i] = float64(s.InFlight)
		if inflight[i] > maxFlight {
			maxFlight = inflight[i]
		}
		if i > 0 {
			tput[i] = float64(s.Ops-t.Samples[i-1].Ops) / float64(t.Every)
			if tput[i] > maxTput {
				maxTput = tput[i]
			}
		}
	}
	var sb strings.Builder
	row := func(name string, vals []float64, max float64, unit string) {
		fmt.Fprintf(&sb, "%-10s %s  (max %.3g %s)\n", name, sparkline(vals, max), max, unit)
	}
	row("busy", busy, float64(nCores), "cores")
	row("sleeping", sleep, float64(nCores), "cores")
	row("mem-wait", waitm, float64(nCores), "cores")
	row("backoff", backoff, float64(nCores), "cores")
	row("in-flight", inflight, maxFlight, "msgs")
	row("ops/cycle", tput, maxTput, "")
	return sb.String()
}

// CSV renders the samples as comma-separated values.
func (t *Series) CSV() string {
	var sb strings.Builder
	sb.WriteString("cycle,busy,sleeping,memwait,backoff,halted,inflight,ops\n")
	for _, s := range t.Samples {
		fmt.Fprintf(&sb, "%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Cycle, s.Busy, s.Sleeping, s.WaitingMem, s.Backoff, s.Halted,
			s.InFlight, s.Ops)
	}
	return sb.String()
}
