package platform_test

// Differential tests of the activity-driven simulation kernel: the
// scheduled Tick/Run/RunUntilHalted must be cycle-exact against the
// retained dense reference loop (TickDense/RunDense) — identical
// Activity snapshots every cycle, identical memory, identical clock —
// across every registered policy (built-in plus a test-registered custom
// one) and across the small and paper-scale mempool topologies.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/platform"
	"repro/internal/reserve"
)

// kernelTestPolicy is a custom policy registered only in this test
// binary (an LRSCwait queue wrapper), so the parity suite also covers
// hardware that entered through the open RegisterPolicy path.
type kernelTestPolicy struct{}

func (kernelTestPolicy) Name() string { return "custom-kernel" }

func (p kernelTestPolicy) Normalize(params platform.PolicyParams, _ noc.Topology) (platform.Policy, error) {
	if err := params.Check(); err != nil {
		return nil, err
	}
	return p, nil
}

func (kernelTestPolicy) NewAdapter(b platform.BankContext) mem.Adapter {
	return reserve.NewWaitQueue(b.NumCores)
}

var registerKernelTestPolicy = sync.OnceFunc(func() {
	platform.MustRegisterPolicy(kernelTestPolicy{})
})

// parityPrograms picks a deterministic contended workload appropriate to
// the policy: wait-capable policies run the LRwait/SCwait histogram
// (sleeping cores, wake-ups), Colibri additionally mixes in the Mwait
// MCS lock (wake cascades through the Qnodes), plain runs the AMO
// roofline, and anything else — including custom-registered policies
// whose capabilities we cannot know — runs the plain LR/SC histogram
// with retry backoff (PAUSE timers). Cores run finite iteration counts
// staggered by core ID so they halt at different times, exercising the
// halted-span accounting; one core halts immediately.
func parityPrograms(policy platform.PolicyKind, topo noc.Topology, itersBase int) func(core int) *isa.Program {
	lay := platform.NewLayout(0)
	hist := kernels.NewHistLayout(lay, 4, topo.NumCores())
	const backoff = 32
	variant := kernels.HistLRSC
	switch policy {
	case platform.PolicyPlain:
		variant = kernels.HistAmoAdd
	case platform.PolicyWaitQueue, "custom-kernel":
		variant = kernels.HistLRSCWait
	case platform.PolicyColibri:
		variant = kernels.HistLRSCWait
	}
	progs := make(map[int]*isa.Program)
	prog := func(v kernels.HistVariant, iters int) *isa.Program {
		key := int(v)*1000 + iters
		if p, ok := progs[key]; ok {
			return p
		}
		p := kernels.HistogramProgram(v, hist, backoff, iters)
		progs[key] = p
		return p
	}
	idle := func() *isa.Program {
		b := isa.NewBuilder()
		b.Halt()
		return b.MustBuild()
	}()
	return func(core int) *isa.Program {
		if core == 1 {
			return idle
		}
		iters := itersBase + core%5
		if policy == platform.PolicyColibri && core%3 == 0 {
			return prog(kernels.HistLockMCSMwait, iters)
		}
		return prog(variant, iters)
	}
}

// parityPair builds two identical systems for one policy/topology.
func parityPair(policy platform.PolicyKind, topo noc.Topology, itersBase int) (dense, sched *platform.System) {
	progFor := parityPrograms(policy, topo, itersBase)
	cfg := platform.Config{Topo: topo, Policy: policy}
	return platform.New(cfg, progFor), platform.New(cfg, progFor)
}

func requireSameActivity(t *testing.T, cycle int, dense, sched platform.Activity) {
	t.Helper()
	if !reflect.DeepEqual(dense, sched) {
		t.Fatalf("cycle %d: scheduled kernel diverged from dense reference\ndense: %+v\nsched: %+v",
			cycle, dense, sched)
	}
}

// forEachParityCase runs body for every registered policy on the small
// topology, and (unless -short) on the paper-scale mempool topology.
func forEachParityCase(t *testing.T, cycles map[string]int, body func(t *testing.T, policy platform.PolicyKind, topo noc.Topology, n int)) {
	t.Helper()
	registerKernelTestPolicy()
	topos := []struct {
		name string
		topo noc.Topology
	}{
		{"small", noc.Small()},
		{"mempool", noc.MemPool256()},
	}
	for _, tc := range topos {
		for _, name := range platform.PolicyNames() {
			tc := tc
			t.Run(fmt.Sprintf("%s/%s", tc.name, name), func(t *testing.T) {
				if tc.name == "mempool" && testing.Short() {
					t.Skip("mempool parity skipped in -short")
				}
				body(t, platform.PolicyKind(name), tc.topo, cycles[tc.name])
			})
		}
	}
}

// TestKernelParityCycleByCycle drives a dense and a scheduled system in
// lockstep and requires identical Activity snapshots every single cycle.
func TestKernelParityCycleByCycle(t *testing.T) {
	forEachParityCase(t, map[string]int{"small": 3000, "mempool": 400},
		func(t *testing.T, policy platform.PolicyKind, topo noc.Topology, n int) {
			dense, sched := parityPair(policy, topo, 8)
			for cycle := 0; cycle <= n; cycle++ {
				requireSameActivity(t, cycle, dense.Snapshot(), sched.Snapshot())
				if dq, sq := dense.Quiescent(), sched.Quiescent(); dq != sq {
					t.Fatalf("cycle %d: Quiescent dense=%v sched=%v", cycle, dq, sq)
				}
				if dh, sh := dense.AllHalted(), sched.AllHalted(); dh != sh {
					t.Fatalf("cycle %d: AllHalted dense=%v sched=%v", cycle, dh, sh)
				}
				dense.TickDense()
				sched.Tick()
			}
			for w := uint32(0); w < 16; w++ {
				if dv, sv := dense.ReadWord(4*w), sched.ReadWord(4*w); dv != sv {
					t.Fatalf("word %d: dense=%d sched=%d", w, dv, sv)
				}
			}
		})
}

// TestKernelParityRunUntilHalted compares the fast-forwarding
// RunUntilHalted against a dense reference loop run to completion:
// same halt outcome, same final clock, same final snapshot and memory.
func TestKernelParityRunUntilHalted(t *testing.T) {
	forEachParityCase(t, map[string]int{"small": 300000, "mempool": 300000},
		func(t *testing.T, policy platform.PolicyKind, topo noc.Topology, max int) {
			// The dense reference side dominates runtime at mempool
			// scale; a shorter finite workload keeps the suite quick
			// while still crossing every halt/fast-forward path.
			itersBase := 8
			if topo.NumCores() > 64 {
				itersBase = 1
			}
			dense, sched := parityPair(policy, topo, itersBase)
			denseHalted := false
			for i := 0; i < max && !denseHalted; i++ {
				denseHalted = dense.AllHalted()
				if !denseHalted {
					dense.TickDense()
				}
			}
			if !denseHalted {
				denseHalted = dense.AllHalted()
			}
			schedHalted := sched.RunUntilHalted(max)
			if denseHalted != schedHalted {
				t.Fatalf("halted: dense=%v sched=%v", denseHalted, schedHalted)
			}
			if !denseHalted {
				t.Fatalf("parity workload did not halt within %d cycles", max)
			}
			requireSameActivity(t, int(dense.Clock.Now()), dense.Snapshot(), sched.Snapshot())
			if dense.Clock.Now() != sched.Clock.Now() {
				t.Fatalf("clock: dense=%d sched=%d", dense.Clock.Now(), sched.Clock.Now())
			}
			for w := uint32(0); w < 16; w++ {
				if dv, sv := dense.ReadWord(4*w), sched.ReadWord(4*w); dv != sv {
					t.Fatalf("word %d: dense=%d sched=%d", w, dv, sv)
				}
			}
		})
}

// TestKernelFastForwardExact pins the idle-span fast-forward: a workload
// dominated by long PAUSE backoffs (every core asleep on a timer most of
// the time, nothing in flight) must produce snapshots identical to dense
// simulation of every empty cycle — including the PauseCycles and
// HaltedCycles the skipped spans would have accumulated — at several
// observation points that deliberately land inside idle spans.
func TestKernelFastForwardExact(t *testing.T) {
	prog := func() *isa.Program {
		b := isa.NewBuilder()
		b.CoreID(isa.T0)
		b.Slli(isa.T0, isa.T0, 4)
		b.Addi(isa.T0, isa.T0, 200) // per-core pause length: 200 + 16*id
		b.Li(isa.S0, 6)             // six pause/mark rounds, then halt
		b.Label("loop")
		b.Pause(isa.T0)
		b.Mark()
		b.Addi(isa.S0, isa.S0, -1)
		b.Bnez(isa.S0, "loop")
		b.Halt()
		return b.MustBuild()
	}()
	cfg := platform.SmallConfig(platform.PolicyPlain)
	dense := platform.New(cfg, platform.SameProgram(prog))
	sched := platform.New(cfg, platform.SameProgram(prog))
	// Windows chosen to cut idle spans mid-way.
	for _, window := range []int{97, 513, 1000, 3001, 170} {
		dense.RunDense(window)
		sched.Run(window)
		if dense.Clock.Now() != sched.Clock.Now() {
			t.Fatalf("clock after window %d: dense=%d sched=%d",
				window, dense.Clock.Now(), sched.Clock.Now())
		}
		requireSameActivity(t, int(dense.Clock.Now()), dense.Snapshot(), sched.Snapshot())
	}
	if !sched.AllHalted() || !dense.AllHalted() {
		t.Fatal("fast-forward workload should have halted inside the windows")
	}
}

// TestQuiescentQnodeState is the regression test for Quiescent ignoring
// Qnode-buffered episode state: a core holding an LRwait grant it never
// released leaves every FIFO and bank idle, yet the system is not
// quiescent — the Qnode still tracks the open episode.
func TestQuiescentQnodeState(t *testing.T) {
	prog := func() *isa.Program {
		b := isa.NewBuilder()
		b.Li(isa.A0, 0)
		b.LrWait(isa.T0, isa.A0) // grant arrives, episode stays open
		b.Label("spin")
		b.Li(isa.T1, 4000)
		b.Pause(isa.T1) // no SCwait: park forever without traffic
		b.J("spin")
		return b.MustBuild()
	}()
	idle := func() *isa.Program {
		b := isa.NewBuilder()
		b.Halt()
		return b.MustBuild()
	}()
	sys := platform.New(platform.SmallConfig(platform.PolicyWaitQueue),
		func(core int) *isa.Program {
			if core == 0 {
				return prog
			}
			return idle
		})
	sys.Run(300) // grant long delivered, fabric drained, core 0 paused
	if sys.Fabric.InFlight() != 0 {
		t.Fatal("setup: fabric should have drained")
	}
	if sys.Quiescent() {
		t.Fatal("Quiescent ignored the Qnode's open LRwait episode")
	}
	if sys.Qnodes[0].Idle() {
		t.Fatal("setup: qnode 0 should hold episode state")
	}
}
