package platform

import (
	"repro/internal/engine"
	"repro/internal/mem"
)

// Activity is a cumulative activity snapshot across the whole system; the
// energy model and the benchmark harness work on deltas of two snapshots.
type Activity struct {
	Cycle engine.Cycle

	// Per-core completed benchmark operations (MARK instructions).
	OpsPerCore []uint64
	TotalOps   uint64

	Instrs           uint64
	BusyCycles       uint64
	MemWaitCycles    uint64
	SleepCycles      uint64
	PauseCycles      uint64
	IssueStallCycles uint64
	HaltedCycles     uint64

	SCSuccess    uint64
	SCFail       uint64
	WaitRefusals uint64

	// Deliveries counts memory responses delivered to cores. Safe for
	// kernel parity: both cycle loops reach cpu.Core.Deliver identically
	// (scheduler-only effects like parks live in KernelStats instead).
	Deliveries uint64

	// Fabric hop traversals and bank activations.
	Flits         uint64
	BankAccesses  uint64
	BankWrites    uint64
	BankResponses uint64

	// Protocol traffic (Colibri).
	SuccUpdates uint64
	WakeUps     uint64
}

// Snapshot captures the current cumulative activity. Parked cores'
// lazily-accounted wait counters are reconciled first, so the snapshot
// is cycle-exact no matter how much of the run was fast-forwarded.
func (s *System) Snapshot() Activity {
	s.SyncStats()
	a := Activity{
		Cycle:      s.Clock.Now(),
		OpsPerCore: make([]uint64, len(s.Cores)),
	}
	for i, c := range s.Cores {
		st := c.Stats
		a.OpsPerCore[i] = st.Ops
		a.TotalOps += st.Ops
		a.Instrs += st.Instrs
		a.BusyCycles += st.BusyCycles
		a.MemWaitCycles += st.MemWaitCycles
		a.SleepCycles += st.SleepCycles
		a.PauseCycles += st.PauseCycles
		a.IssueStallCycles += st.IssueStallCycles
		a.HaltedCycles += st.HaltedCycles
		a.SCSuccess += st.SCSuccess
		a.SCFail += st.SCFail
		a.WaitRefusals += st.WaitRefusals
		a.Deliveries += st.Deliveries
	}
	for _, n := range s.Qnodes {
		a.SuccUpdates += n.Stats.SuccUpdates
		a.WakeUps += n.Stats.WakeUpsSent
	}
	a.Flits = s.Fabric.Flits()
	for _, b := range s.Banks {
		a.BankAccesses += b.Stats.Accesses
		a.BankWrites += b.Stats.Writes
		a.BankResponses += b.Stats.Responses
	}
	return a
}

// Delta returns the activity between two snapshots (b - a).
func Delta(a, b Activity) Activity {
	d := Activity{
		Cycle:      b.Cycle - a.Cycle,
		OpsPerCore: make([]uint64, len(b.OpsPerCore)),
	}
	for i := range b.OpsPerCore {
		d.OpsPerCore[i] = b.OpsPerCore[i] - a.OpsPerCore[i]
		d.TotalOps += d.OpsPerCore[i]
	}
	d.Instrs = b.Instrs - a.Instrs
	d.BusyCycles = b.BusyCycles - a.BusyCycles
	d.MemWaitCycles = b.MemWaitCycles - a.MemWaitCycles
	d.SleepCycles = b.SleepCycles - a.SleepCycles
	d.PauseCycles = b.PauseCycles - a.PauseCycles
	d.IssueStallCycles = b.IssueStallCycles - a.IssueStallCycles
	d.HaltedCycles = b.HaltedCycles - a.HaltedCycles
	d.SCSuccess = b.SCSuccess - a.SCSuccess
	d.SCFail = b.SCFail - a.SCFail
	d.WaitRefusals = b.WaitRefusals - a.WaitRefusals
	d.Deliveries = b.Deliveries - a.Deliveries
	d.Flits = b.Flits - a.Flits
	d.BankAccesses = b.BankAccesses - a.BankAccesses
	d.BankWrites = b.BankWrites - a.BankWrites
	d.BankResponses = b.BankResponses - a.BankResponses
	d.SuccUpdates = b.SuccUpdates - a.SuccUpdates
	d.WakeUps = b.WakeUps - a.WakeUps
	return d
}

// Throughput returns completed operations per cycle in this activity window.
func (a Activity) Throughput() float64 {
	if a.Cycle == 0 {
		return 0
	}
	return float64(a.TotalOps) / float64(a.Cycle)
}

// MinMaxOps returns the slowest and fastest per-core operation counts
// (Fig. 6's fairness band).
func (a Activity) MinMaxOps() (min, max uint64) {
	if len(a.OpsPerCore) == 0 {
		return 0, 0
	}
	min, max = a.OpsPerCore[0], a.OpsPerCore[0]
	for _, v := range a.OpsPerCore[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Measure runs warmup cycles, then measures for measure cycles, returning
// the activity delta of the measurement window.
func (s *System) Measure(warmup, measure int) Activity {
	s.Run(warmup)
	before := s.Snapshot()
	s.Run(measure)
	return Delta(before, s.Snapshot())
}

// PolicyStats aggregates the adapter statistics across all banks, for
// every adapter — built-in or custom — that reports through
// mem.StatsReporter (zero values for adapters that don't).
func (s *System) PolicyStats() (grants, refused, scSuccess, scFail, invalidations uint64) {
	for _, b := range s.Banks {
		sr, ok := b.Adapter().(mem.StatsReporter)
		if !ok {
			continue
		}
		st := sr.AdapterStats()
		grants += st.Grants
		refused += st.Refused
		scSuccess += st.SCSuccess
		scFail += st.SCFail
		invalidations += st.Invalidations
	}
	return
}

// Layout is a bump allocator for the shared word-interleaved address
// space, used by kernels to place their data sections.
type Layout struct{ nextWord uint32 }

// NewLayout starts allocating at startWord.
func NewLayout(startWord uint32) *Layout { return &Layout{nextWord: startWord} }

// Words reserves n consecutive words and returns their base byte address.
// Consecutive words land in consecutive banks (word interleaving).
func (l *Layout) Words(n int) uint32 {
	addr := l.nextWord * 4
	l.nextWord += uint32(n)
	return addr
}

// AlignWords rounds the next allocation up to a multiple of n words.
func (l *Layout) AlignWords(n uint32) {
	if n == 0 {
		return
	}
	l.nextWord = (l.nextWord + n - 1) / n * n
}

// UsedWords returns the number of words allocated so far.
func (l *Layout) UsedWords() int { return int(l.nextWord) }
