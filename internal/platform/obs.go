package platform

import (
	"strconv"

	"repro/internal/mem"
	"repro/internal/obs"
)

// obsTotals is a flattened snapshot of every counter PublishObs reports,
// summed across the system's components. PublishObs keeps the previous
// totals per System so repeated publishes add only the activity since the
// last one — required because many Systems (the points of a sweep) feed
// the same cumulative process-wide registry.
type obsTotals struct {
	kernel      KernelStats
	heapPushes  uint64
	heapPops    uint64
	fusedCycles uint64

	deliveries uint64

	flits       uint64
	accesses    uint64
	writes      uint64
	responses   uint64
	stallCycles uint64

	policy mem.AdapterStats
}

// collectTotals gathers the current cumulative totals (SyncStats has
// already reconciled parked cores when needed; only plain counters are
// read here).
func (s *System) collectTotals() obsTotals {
	t := obsTotals{kernel: s.Kernel}
	if s.par != nil {
		// heapCarry* preserve a pre-migration sequential scheduler's
		// totals on adaptively partitioned systems (zero otherwise).
		t.heapPushes = s.heapCarryPushes
		t.heapPops = s.heapCarryPops
		for _, p := range s.par.parts {
			t.heapPushes += p.slots.HeapPushes
			t.heapPops += p.slots.HeapPops
		}
		t.fusedCycles = s.par.fusedCycles
	} else {
		t.heapPushes = s.slots.HeapPushes
		t.heapPops = s.slots.HeapPops
	}
	for _, c := range s.Cores {
		t.deliveries += c.Stats.Deliveries
	}
	t.flits = s.Fabric.Flits()
	for _, b := range s.Banks {
		t.accesses += b.Stats.Accesses
		t.writes += b.Stats.Writes
		t.responses += b.Stats.Responses
		t.stallCycles += b.Stats.StallCycles
		if sr, ok := b.Adapter().(mem.StatsReporter); ok {
			st := sr.AdapterStats()
			t.policy.Grants += st.Grants
			t.policy.Refused += st.Refused
			t.policy.SCSuccess += st.SCSuccess
			t.policy.SCFail += st.SCFail
			t.policy.Invalidations += st.Invalidations
		}
	}
	return t
}

// addNZ adds a counter delta to the registry, eliding zero deltas so a
// run's metric diff stays limited to what actually happened.
func addNZ(reg *obs.Registry, name string, delta uint64) {
	if delta != 0 {
		reg.Counter(name).Add(delta)
	}
}

// PublishObs pushes this system's activity since the previous publish
// into reg, under "kernel.*" names (and "kernel.policy.<name>.*" for the
// resolved policy's adapter counters). It is the cold-path half of the
// kernel's instrumentation: the hot loop increments plain per-System
// fields (KernelStats, core/bank Stats), and a run publishes the totals
// once, after Measure. Call it any number of times; deltas are exact.
//
// The per-phase skipped counts are derived here as Ticks×population −
// ticked: every executed Tick either visits a component or skips it
// (cycles removed entirely by fast-forwarding are reported separately as
// kernel.ff.*).
//
// PublishObs is safe to call concurrently on the same System (e.g. a
// periodic metrics flusher racing a run's final publish): the
// collect-and-diff is serialized under a mutex so each delta is counted
// exactly once.
func (s *System) PublishObs(reg *obs.Registry) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	cur := s.collectTotals()
	prev := s.lastPub
	s.lastPub = cur

	k, pk := cur.kernel, prev.kernel
	addNZ(reg, "kernel.ticks", k.Ticks-pk.Ticks)
	ticks := k.Ticks - pk.Ticks
	slots := k.SlotsTicked - pk.SlotsTicked
	addNZ(reg, "kernel.slots.ticked", slots)
	addNZ(reg, "kernel.slots.skipped", ticks*uint64(len(s.Cores))-slots)
	routers := k.RoutersTicked - pk.RoutersTicked
	addNZ(reg, "kernel.routers.ticked", routers)
	addNZ(reg, "kernel.routers.skipped", ticks*uint64(s.nRouters)-routers)
	banks := k.BanksTicked - pk.BanksTicked
	addNZ(reg, "kernel.banks.ticked", banks)
	addNZ(reg, "kernel.banks.skipped", ticks*uint64(len(s.Banks))-banks)
	addNZ(reg, "kernel.deliv.ticked", k.DelivTicked-pk.DelivTicked)
	addNZ(reg, "kernel.cores.parked", k.Parks-pk.Parks)
	addNZ(reg, "kernel.ff.spans", k.FFSpans-pk.FFSpans)
	addNZ(reg, "kernel.ff.cycles_saved", k.FFCyclesSaved-pk.FFCyclesSaved)
	addNZ(reg, "kernel.wakeheap.push", cur.heapPushes-prev.heapPushes)
	addNZ(reg, "kernel.wakeheap.pop", cur.heapPops-prev.heapPops)

	addNZ(reg, "kernel.core.deliveries", cur.deliveries-prev.deliveries)
	addNZ(reg, "kernel.fabric.flits", cur.flits-prev.flits)
	addNZ(reg, "kernel.bank.accesses", cur.accesses-prev.accesses)
	addNZ(reg, "kernel.bank.writes", cur.writes-prev.writes)
	addNZ(reg, "kernel.bank.responses", cur.responses-prev.responses)
	addNZ(reg, "kernel.bank.stall_cycles", cur.stallCycles-prev.stallCycles)

	pre := "kernel.policy." + s.Policy.Name() + "."
	addNZ(reg, pre+"requests", cur.accesses-prev.accesses)
	addNZ(reg, pre+"grants", cur.policy.Grants-prev.policy.Grants)
	addNZ(reg, pre+"nacks", cur.policy.Refused-prev.policy.Refused)
	addNZ(reg, pre+"sc_success", cur.policy.SCSuccess-prev.policy.SCSuccess)
	addNZ(reg, pre+"sc_fail", cur.policy.SCFail-prev.policy.SCFail)
	addNZ(reg, pre+"invalidations", cur.policy.Invalidations-prev.policy.Invalidations)

	// Partitioned kernel: per-partition load-balance view. Only emitted
	// when the kernel is actually partitioned, so sequential runs keep
	// their exact metric set.
	if s.par != nil {
		reg.Gauge("kernel.partitions").Set(int64(s.par.nParts))
		addNZ(reg, "kernel.fused_cycles", cur.fusedCycles-prev.fusedCycles)
		for i, p := range s.par.parts {
			pk, prevPK := p.stats, s.lastPubParts[i]
			s.lastPubParts[i] = pk
			pre := "kernel.part." + strconv.Itoa(i) + "."
			addNZ(reg, pre+"slots.ticked", pk.SlotsTicked-prevPK.SlotsTicked)
			addNZ(reg, pre+"routers.ticked", pk.RoutersTicked-prevPK.RoutersTicked)
			addNZ(reg, pre+"banks.ticked", pk.BanksTicked-prevPK.BanksTicked)
			addNZ(reg, pre+"deliv.ticked", pk.DelivTicked-prevPK.DelivTicked)
			addNZ(reg, pre+"cores.parked", pk.Parks-prevPK.Parks)
		}
	}
}
