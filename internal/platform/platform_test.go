package platform

import (
	"testing"

	"repro/internal/isa"
)

// amoAddLoop increments mem[addr] iters times with AMOADD.
func amoAddLoop(addr uint32, iters int) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.A0, int32(addr))
	b.Li(isa.T0, int32(iters))
	b.Li(isa.T1, 1)
	b.Label("loop")
	b.AmoAdd(isa.Zero, isa.T1, isa.A0)
	b.Mark()
	b.Addi(isa.T0, isa.T0, -1)
	b.Bnez(isa.T0, "loop")
	b.Halt()
	return b.MustBuild()
}

// lrscLoop increments mem[addr] iters times with an LR/SC retry loop and a
// fixed backoff on failure.
func lrscLoop(addr uint32, iters int, backoff int32) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.A0, int32(addr))
	b.Li(isa.T0, int32(iters))
	b.Li(isa.T4, backoff)
	b.Label("retry")
	b.Lr(isa.T2, isa.A0)
	b.Addi(isa.T2, isa.T2, 1)
	b.Sc(isa.T3, isa.T2, isa.A0)
	b.Beqz(isa.T3, "ok")
	b.Pause(isa.T4)
	b.J("retry")
	b.Label("ok")
	b.Mark()
	b.Addi(isa.T0, isa.T0, -1)
	b.Bnez(isa.T0, "retry")
	b.Halt()
	return b.MustBuild()
}

// lrscWaitLoop increments mem[addr] iters times with LRwait/SCwait.
func lrscWaitLoop(addr uint32, iters int, backoff int32) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.A0, int32(addr))
	b.Li(isa.T0, int32(iters))
	b.Li(isa.T4, backoff)
	b.Label("retry")
	b.LrWait(isa.T2, isa.A0)
	b.Addi(isa.T2, isa.T2, 1)
	b.ScWait(isa.T3, isa.T2, isa.A0)
	b.Beqz(isa.T3, "ok")
	b.Pause(isa.T4)
	b.J("retry")
	b.Label("ok")
	b.Mark()
	b.Addi(isa.T0, isa.T0, -1)
	b.Bnez(isa.T0, "retry")
	b.Halt()
	return b.MustBuild()
}

func TestAmoAddAtomicity(t *testing.T) {
	const iters = 20
	sys := New(SmallConfig(PolicyPlain), SameProgram(amoAddLoop(0, iters)))
	n := sys.Cfg.Topo.NumCores()
	if !sys.RunUntilHalted(200000) {
		t.Fatal("cores did not halt")
	}
	want := uint32(n * iters)
	if got := sys.ReadWord(0); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	a := sys.Snapshot()
	if a.TotalOps != uint64(n*iters) {
		t.Errorf("ops = %d, want %d", a.TotalOps, n*iters)
	}
}

func TestLRSCAtomicityUnderContention(t *testing.T) {
	const iters = 10
	sys := New(SmallConfig(PolicyLRSCSingle), SameProgram(lrscLoop(0, iters, 16)))
	n := sys.Cfg.Topo.NumCores()
	if !sys.RunUntilHalted(2000000) {
		t.Fatal("cores did not halt (livelock?)")
	}
	want := uint32(n * iters)
	if got := sys.ReadWord(0); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	_, _, scOK, scFail, _ := sys.PolicyStats()
	if scOK != uint64(n*iters) {
		t.Errorf("SC successes = %d, want %d", scOK, n*iters)
	}
	if scFail == 0 {
		t.Error("contended LRSC saw zero failures — displacement not modeled?")
	}
}

func TestLRSCWaitIdealAtomicity(t *testing.T) {
	const iters = 10
	sys := New(SmallConfig(PolicyWaitQueue), SameProgram(lrscWaitLoop(0, iters, 16)))
	n := sys.Cfg.Topo.NumCores()
	if !sys.RunUntilHalted(2000000) {
		t.Fatal("cores did not halt")
	}
	if got := sys.ReadWord(0); got != uint32(n*iters) {
		t.Errorf("counter = %d, want %d", got, n*iters)
	}
	// Ideal queue: every SCwait succeeds (no interfering plain stores).
	a := sys.Snapshot()
	if a.SCFail != 0 {
		t.Errorf("ideal LRSCwait had %d SC failures", a.SCFail)
	}
	if a.WaitRefusals != 0 {
		t.Errorf("ideal LRSCwait refused %d reservations", a.WaitRefusals)
	}
}

func TestColibriAtomicityUnderContention(t *testing.T) {
	const iters = 10
	sys := New(SmallConfig(PolicyColibri), SameProgram(lrscWaitLoop(0, iters, 16)))
	n := sys.Cfg.Topo.NumCores()
	if !sys.RunUntilHalted(2000000) {
		t.Fatal("cores did not halt")
	}
	if got := sys.ReadWord(0); got != uint32(n*iters) {
		t.Errorf("counter = %d, want %d", got, n*iters)
	}
	a := sys.Snapshot()
	if a.SCFail != 0 {
		t.Errorf("colibri had %d SC failures without interference", a.SCFail)
	}
	// Contention on one address: waiters must actually sleep.
	if a.SleepCycles == 0 {
		t.Error("no sleep cycles recorded under contention")
	}
	// Every enqueue behind a tail produces exactly one SuccessorUpdate,
	// which eventually produces exactly one WakeUpRequest.
	if a.SuccUpdates != a.WakeUps {
		t.Errorf("protocol imbalance: %d SuccessorUpdates vs %d WakeUps",
			a.SuccUpdates, a.WakeUps)
	}
	if !sys.Quiescent() {
		t.Error("system not quiescent after halt")
	}
}

func TestColibriStarvationFreedom(t *testing.T) {
	// Under full contention every core must finish — and with in-order
	// service, per-core completion counts in any window stay balanced.
	const iters = 30
	sys := New(SmallConfig(PolicyColibri), SameProgram(lrscWaitLoop(0, iters, 16)))
	if !sys.RunUntilHalted(3000000) {
		t.Fatal("cores did not halt")
	}
	a := sys.Snapshot()
	min, max := a.MinMaxOps()
	if min != uint64(iters) || max != uint64(iters) {
		t.Errorf("per-core ops range [%d, %d], want exactly %d", min, max, iters)
	}
}

func TestMwaitProducerConsumer(t *testing.T) {
	// Core 0 produces: writes 7 to the flag after some delay. All other
	// cores consume: Mwait on the flag (expected 0), then store the
	// observed value to a private result slot.
	const flagAddr = 0
	resultBase := uint32(4)

	producer := func() *isa.Program {
		b := isa.NewBuilder()
		b.Li(isa.T0, 300)
		b.Pause(isa.T0) // let consumers enqueue
		b.Li(isa.A0, flagAddr)
		b.Li(isa.T1, 7)
		b.Sw(isa.T1, isa.A0, 0)
		b.Halt()
		return b.MustBuild()
	}()
	consumer := func() *isa.Program {
		b := isa.NewBuilder()
		b.Li(isa.A0, flagAddr)
		b.Label("wait")
		b.MWait(isa.T0, isa.Zero, isa.A0) // expected 0
		b.Beqz(isa.T0, "wait")            // refused (still 0): retry
		// Store the woken value at result[coreID].
		b.CoreID(isa.T1)
		b.Slli(isa.T1, isa.T1, 2)
		b.Li(isa.T2, int32(resultBase))
		b.Add(isa.T1, isa.T1, isa.T2)
		b.Sw(isa.T0, isa.T1, 0)
		b.Halt()
		return b.MustBuild()
	}()

	sys := New(SmallConfig(PolicyColibri), func(core int) *isa.Program {
		if core == 0 {
			return producer
		}
		return consumer
	})
	if !sys.RunUntilHalted(100000) {
		for i, c := range sys.Cores {
			if !c.Halted() {
				t.Logf("core %d stuck at pc %d (%s)", i, c.PC(), sys.Qnodes[i].State())
			}
		}
		t.Fatal("cores did not halt")
	}
	for core := 1; core < sys.Cfg.Topo.NumCores(); core++ {
		addr := resultBase + uint32(core)*4
		if got := sys.ReadWord(addr); got != 7 {
			t.Errorf("core %d woke with %d, want 7", core, got)
		}
	}
	// Consumers slept rather than polled.
	a := sys.Snapshot()
	if a.SleepCycles == 0 {
		t.Error("Mwait consumers recorded no sleep cycles")
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *System {
		return New(SmallConfig(PolicyColibri), SameProgram(lrscWaitLoop(0, 15, 16)))
	}
	s1, s2 := build(), build()
	s1.RunUntilHalted(2000000)
	s2.RunUntilHalted(2000000)
	a1, a2 := s1.Snapshot(), s2.Snapshot()
	if a1.Cycle != a2.Cycle || a1.TotalOps != a2.TotalOps ||
		a1.Flits != a2.Flits || a1.BankAccesses != a2.BankAccesses {
		t.Errorf("identical runs diverged: %+v vs %+v", a1, a2)
	}
	for i := range a1.OpsPerCore {
		if a1.OpsPerCore[i] != a2.OpsPerCore[i] {
			t.Errorf("core %d ops differ: %d vs %d", i, a1.OpsPerCore[i], a2.OpsPerCore[i])
		}
	}
}

func TestMeasureWindow(t *testing.T) {
	// An endless AMO loop measured over a window reports nonzero
	// throughput and plausible fairness.
	endless := func() *isa.Program {
		b := isa.NewBuilder()
		b.Li(isa.A0, 0)
		b.Li(isa.T1, 1)
		b.Label("loop")
		b.AmoAdd(isa.Zero, isa.T1, isa.A0)
		b.Mark()
		b.J("loop")
		return b.MustBuild()
	}()
	sys := New(SmallConfig(PolicyPlain), SameProgram(endless))
	act := sys.Measure(500, 2000)
	if act.Throughput() <= 0 {
		t.Fatal("zero throughput in measurement window")
	}
	min, max := act.MinMaxOps()
	if min == 0 {
		t.Error("a core made no progress in the window")
	}
	// Cores in the hot bank's own tile legitimately win more arbitration
	// rounds (NUMA bias, as in MemPool); starvation is the failure mode.
	if max > 12*min+12 {
		t.Errorf("starvation-level unfairness: min %d max %d", min, max)
	}
	if act.TotalOps != uint64(sys.ReadWord(0)) {
		// ops marked before warmup end are excluded; memory has them all.
		if uint64(sys.ReadWord(0)) < act.TotalOps {
			t.Errorf("memory (%d) < measured ops (%d)", sys.ReadWord(0), act.TotalOps)
		}
	}
}

func TestLayoutAllocator(t *testing.T) {
	l := NewLayout(16)
	a := l.Words(4)
	b := l.Words(2)
	if a != 64 || b != 80 {
		t.Errorf("allocations at %d, %d; want 64, 80", a, b)
	}
	l.AlignWords(8)
	c := l.Words(1)
	if c != 96 {
		t.Errorf("aligned allocation at %d, want 96", c)
	}
	if l.UsedWords() != 25 {
		t.Errorf("used words = %d, want 25", l.UsedWords())
	}
}
