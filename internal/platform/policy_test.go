package platform

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
)

func TestPolicyNamesContainsBuiltins(t *testing.T) {
	names := map[string]bool{}
	all := PolicyNames()
	for _, n := range all {
		names[n] = true
	}
	for _, k := range []PolicyKind{PolicyPlain, PolicyLRSCSingle, PolicyLRSCTable,
		PolicyWaitQueue, PolicyColibri} {
		if !names[string(k)] {
			t.Errorf("built-in policy %s missing from PolicyNames()", k)
		}
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("PolicyNames() not sorted: %v", all)
		}
	}
}

func TestRegisterPolicyRejectsBadNames(t *testing.T) {
	for _, name := range []string{"", "has space", "has|pipe", string(PolicyColibri)} {
		if err := RegisterPolicy(litmusPolicyNamed(name)); err == nil {
			t.Errorf("RegisterPolicy(%q) accepted", name)
		}
	}
}

// litmusPolicyNamed wraps the test policy with an arbitrary name for
// registration-validation cases (never instantiated).
type namedPolicy struct{ name string }

func litmusPolicyNamed(name string) Policy { return namedPolicy{name} }

func (p namedPolicy) Name() string { return p.name }
func (p namedPolicy) Normalize(params PolicyParams, _ noc.Topology) (Policy, error) {
	return p, nil
}
func (p namedPolicy) NewAdapter(BankContext) mem.Adapter { return nil }

func TestResolvePolicyErrors(t *testing.T) {
	topo := noc.Small()
	if _, err := ResolvePolicy("nonesuch", nil, topo); err == nil {
		t.Error("unknown policy accepted")
	} else if !strings.Contains(err.Error(), `"nonesuch"`) ||
		!strings.Contains(err.Error(), "registered:") ||
		!strings.Contains(err.Error(), string(PolicyColibri)) {
		t.Errorf("unknown-policy error does not list the registry: %v", err)
	}
	// Empty name selects plain (the zero Config).
	pol, err := ResolvePolicy("", nil, topo)
	if err != nil || pol.Name() != string(PolicyPlain) {
		t.Errorf("empty name resolved to %v, %v", pol, err)
	}
	// A mistyped policy-specific key fails loudly...
	if _, err := ResolvePolicy(PolicyWaitQueue, PolicyParams{"bogus": "1"}, topo); err == nil {
		t.Error("unknown parameter key accepted")
	}
	// ...while the shared grid axes are tolerated everywhere, including
	// by policies they don't apply to.
	for _, kind := range []PolicyKind{PolicyPlain, PolicyLRSCSingle, PolicyLRSCTable,
		PolicyWaitQueue, PolicyColibri} {
		params := PolicyParams{ParamQueueCap: "2", ParamColibriQ: "2"}
		if _, err := ResolvePolicy(kind, params, topo); err != nil {
			t.Errorf("%s rejected the shared axes: %v", kind, err)
		}
	}
	// Malformed and out-of-range values are rejected.
	if _, err := ResolvePolicy(PolicyWaitQueue, PolicyParams{ParamQueueCap: "x"}, topo); err == nil {
		t.Error("non-integer queuecap accepted")
	}
	if _, err := ResolvePolicy(PolicyWaitQueue, PolicyParams{ParamQueueCap: "-1"}, topo); err == nil {
		t.Error("negative queuecap accepted")
	}
	if _, err := ResolvePolicy(PolicyColibri, PolicyParams{ParamColibriQ: "-2"}, topo); err == nil {
		t.Error("negative colibriq accepted")
	}
}

// haltProgram is the trivial kernel for construction smoke tests.
func haltProgram() *isa.Program {
	b := isa.NewBuilder()
	b.Halt()
	return b.MustBuild()
}

// TestPolicyParamsReachAdapters pins the parameter plumbing end to end:
// the adapter each bank actually receives reflects the configured
// parameters (and their defaults).
func TestPolicyParamsReachAdapters(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		adapter string
	}{
		{"waitqueue-ideal", SmallConfig(PolicyWaitQueue), "lrscwait-16"},
		{"waitqueue-capped", Config{Topo: noc.Small(), Policy: PolicyWaitQueue,
			PolicyParams: PolicyParams{ParamQueueCap: "1"}}, "lrscwait-1"},
		{"colibri-default", SmallConfig(PolicyColibri), "colibri-4"},
		{"colibri-2", Config{Topo: noc.Small(), Policy: PolicyColibri,
			PolicyParams: PolicyParams{ParamColibriQ: "2"}}, "colibri-2"},
		{"plain", SmallConfig(PolicyPlain), "plain"},
		{"zero-config-policy", Config{Topo: noc.Small()}, "plain"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys := New(c.cfg, SameProgram(haltProgram()))
			if got := sys.Banks[0].Adapter().Name(); got != c.adapter {
				t.Errorf("bank adapter = %q, want %q", got, c.adapter)
			}
			if sys.Policy == nil {
				t.Error("System.Policy not recorded")
			}
		})
	}
}

// TestNewPanicsOnUnknownPolicy pins the construction contract: an
// unregistered policy name is a programming error, like an invalid
// topology.
func TestNewPanicsOnUnknownPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with an unknown policy did not panic")
		}
	}()
	New(Config{Topo: noc.Small(), Policy: "nonesuch"}, SameProgram(haltProgram()))
}

// TestTeraPool1024Construction is the scale smoke test: the 1024-core,
// 4096-bank TeraPool topology must wire up and simulate. Guarded by
// -short because constructing the full machine allocates tens of
// megabytes of bank storage.
func TestTeraPool1024Construction(t *testing.T) {
	if testing.Short() {
		t.Skip("TeraPool construction is memory-heavy; skipped with -short")
	}
	topo := noc.TeraPool1024()
	sys := New(Config{Topo: topo, Policy: PolicyColibri}, SameProgram(haltProgram()))
	if got := len(sys.Cores); got != 1024 {
		t.Fatalf("cores = %d, want 1024", got)
	}
	if got := len(sys.Banks); got != 4096 {
		t.Fatalf("banks = %d, want 4096", got)
	}
	// The far corner of the address space must be reachable.
	last := uint32(4 * (topo.NumBanks()*1024 - 1))
	sys.WriteWord(last, 7)
	if got := sys.ReadWord(last); got != 7 {
		t.Fatalf("far-corner word = %d, want 7", got)
	}
	if !sys.RunUntilHalted(1000) {
		t.Fatal("halt-only kernel did not halt")
	}
	if !sys.Quiescent() {
		t.Error("system not quiescent after halt")
	}
}
