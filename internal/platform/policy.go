package platform

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/colibri"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/reserve"
)

// PolicyKind names a registered synchronization policy — the key under
// which a Policy is registered (RegisterPolicy) and selected
// (Config.Policy, the cmd -policy flags, the sweep policy grid axis).
type PolicyKind string

// The built-in policy kinds. Any name returned by PolicyNames — built-in
// or registered by a library user — is equally valid.
const (
	// PolicyPlain: no reservation support (baseline / AMO-only runs).
	PolicyPlain PolicyKind = "plain"
	// PolicyLRSCSingle: MemPool's single reservation slot per bank.
	PolicyLRSCSingle PolicyKind = "lrsc"
	// PolicyLRSCTable: ATUN-style per-core reservation table.
	PolicyLRSCTable PolicyKind = "lrsc-table"
	// PolicyWaitQueue: LRSCwait_q hardware queue (ParamQueueCap slots;
	// 0 means ideal = one per core).
	PolicyWaitQueue PolicyKind = "lrscwait"
	// PolicyColibri: the distributed queue (ParamColibriQ head/tail
	// pairs per bank controller).
	PolicyColibri PolicyKind = "colibri"
)

// The shared policy-grid parameter keys. They are broadcast by the sweep
// engine's policy grids to every policy of a mixed-curve sweep, so every
// Policy.Normalize must accept them, ignoring the ones that do not apply
// (PolicyParams.Check implements exactly that contract). Policy-specific
// keys beyond these are rejected when unknown.
const (
	// ParamQueueCap is the WaitQueue slot count (0 = ideal, one per
	// core).
	ParamQueueCap = "queuecap"
	// ParamColibriQ is the Colibri head/tail pair count per bank
	// controller (0 = DefaultColibriQueues).
	ParamColibriQ = "colibriq"
)

// DefaultColibriQueues is the head/tail pair count a zero or absent
// ParamColibriQ selects (the paper's Colibri configuration).
const DefaultColibriQueues = 4

// PolicyParams is the free-form configuration of one policy instance,
// as carried by Config.PolicyParams and the cmd front ends. Keys are
// policy-defined; see each policy's documentation.
type PolicyParams map[string]string

// Int returns the integer value of key, or def when the key is absent.
func (p PolicyParams) Int(key string, def int) (int, error) {
	s, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("platform: policy parameter %s=%q is not an integer", key, s)
	}
	return v, nil
}

// Check validates the parameter key set: every key must be one of the
// shared grid axis keys (ParamQueueCap, ParamColibriQ — broadcast to all
// policies and legitimately ignored when inapplicable) or listed in
// known. Policy Normalize implementations call it so a mistyped
// policy-specific parameter fails loudly instead of silently selecting a
// default.
func (p PolicyParams) Check(known ...string) error {
	for key := range p {
		if key == ParamQueueCap || key == ParamColibriQ {
			continue
		}
		ok := false
		for _, k := range known {
			if key == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("platform: unknown policy parameter %q", key)
		}
	}
	return nil
}

// BankContext is what a Policy sees of the machine when instantiating
// one bank's adapter.
type BankContext struct {
	// BankID and NumBanks identify the bank within the machine.
	BankID, NumBanks int
	// NumCores is the machine's core count; per-core reservation
	// structures (tables, ideal queues) size from it.
	NumCores int
	// Topo is the full topology, for adapters that care about placement.
	Topo noc.Topology
}

// Policy describes one synchronization-primitive family: how its name
// and parameters resolve into a configured instance, and how that
// instance equips every memory bank with an adapter. Implementations
// registered with RegisterPolicy (or the lrscwait.RegisterPolicy facade)
// are addressable from Config.Policy, the cmd -policy flags, and the
// sweep engine's policy grid axis exactly like the built-in kinds.
//
// A policy may additionally implement the energy.PolicyWeights and
// area.PolicyRows extension interfaces to supply its own calibrated
// energy constants and Table I area rows.
type Policy interface {
	// Name is the registry key.
	Name() string

	// Normalize returns a fully configured instance of the policy for
	// the given parameters on topo, validating values. Unknown
	// policy-specific keys must be rejected (see PolicyParams.Check);
	// the shared grid axis keys are ignored when inapplicable. The
	// receiver is the registered prototype and must not be mutated.
	Normalize(params PolicyParams, topo noc.Topology) (Policy, error)

	// NewAdapter instantiates this instance's adapter for one bank.
	// Every bank gets its own adapter (banks never share reservation
	// state).
	NewAdapter(bank BankContext) mem.Adapter
}

// The package policy registry. Built-in policies register at init;
// custom policies register through RegisterPolicy /
// lrscwait.RegisterPolicy.
var (
	polMu     sync.RWMutex
	policyReg = map[string]Policy{}
)

// RegisterPolicy adds a policy to the registry, making it addressable
// from Config.Policy, the -policy flags, and the sweep policy grid. A
// duplicate name is rejected so two packages cannot silently shadow each
// other's hardware; names must be cache-key clean (non-empty, no
// whitespace, no '|').
func RegisterPolicy(p Policy) error {
	name := p.Name()
	if name == "" {
		return fmt.Errorf("platform: cannot register a policy with an empty name")
	}
	if strings.ContainsAny(name, "| \t\n") {
		return fmt.Errorf("platform: policy name %q contains '|' or whitespace", name)
	}
	polMu.Lock()
	defer polMu.Unlock()
	if _, dup := policyReg[name]; dup {
		return fmt.Errorf("platform: policy %q already registered", name)
	}
	policyReg[name] = p
	return nil
}

// MustRegisterPolicy is RegisterPolicy, panicking on error. Intended for
// package init of policy libraries.
func MustRegisterPolicy(p Policy) {
	if err := RegisterPolicy(p); err != nil {
		panic(err)
	}
}

// LookupPolicy returns the policy prototype registered under name.
func LookupPolicy(name string) (Policy, bool) {
	polMu.RLock()
	defer polMu.RUnlock()
	p, ok := policyReg[name]
	return p, ok
}

// PolicyNames returns every registered policy name, sorted.
func PolicyNames() []string {
	polMu.RLock()
	defer polMu.RUnlock()
	names := make([]string, 0, len(policyReg))
	for name := range policyReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// policyNamesList renders the registry for error messages.
func policyNamesList() string {
	names := PolicyNames()
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ", ")
}

// ResolvePolicy resolves a policy name and parameter set into a
// configured instance on topo. An empty name selects PolicyPlain
// (matching the zero Config); an unregistered name errors with the
// registered names listed.
func ResolvePolicy(name PolicyKind, params PolicyParams, topo noc.Topology) (Policy, error) {
	if name == "" {
		name = PolicyPlain
	}
	proto, ok := LookupPolicy(string(name))
	if !ok {
		return nil, fmt.Errorf("platform: unknown policy %q (registered: %s)",
			name, policyNamesList())
	}
	p, err := proto.Normalize(params, topo)
	if err != nil {
		return nil, fmt.Errorf("platform: policy %s: %w", name, err)
	}
	return p, nil
}

func init() {
	MustRegisterPolicy(plainPolicy{})
	MustRegisterPolicy(singleSlotPolicy{})
	MustRegisterPolicy(tablePolicy{})
	MustRegisterPolicy(waitQueuePolicy{})
	MustRegisterPolicy(colibriPolicy{})
}

// plainPolicy is the no-reservation baseline: banks support only loads,
// stores and AMOs; every LR/SC-family operation is refused.
type plainPolicy struct{}

func (plainPolicy) Name() string { return string(PolicyPlain) }

func (p plainPolicy) Normalize(params PolicyParams, _ noc.Topology) (Policy, error) {
	if err := params.Check(); err != nil {
		return nil, err
	}
	return p, nil
}

func (plainPolicy) NewAdapter(BankContext) mem.Adapter { return mem.PlainAdapter{} }

// singleSlotPolicy is MemPool's baseline LRSC: one reservation slot per
// bank. It takes no parameters.
type singleSlotPolicy struct{}

func (singleSlotPolicy) Name() string { return string(PolicyLRSCSingle) }

func (p singleSlotPolicy) Normalize(params PolicyParams, _ noc.Topology) (Policy, error) {
	if err := params.Check(); err != nil {
		return nil, err
	}
	return p, nil
}

func (singleSlotPolicy) NewAdapter(BankContext) mem.Adapter { return reserve.NewSingleSlot() }

// tablePolicy is the ATUN-style reservation table: one entry per core
// per bank. It takes no parameters (the table sizes from the topology).
type tablePolicy struct{}

func (tablePolicy) Name() string { return string(PolicyLRSCTable) }

func (p tablePolicy) Normalize(params PolicyParams, _ noc.Topology) (Policy, error) {
	if err := params.Check(); err != nil {
		return nil, err
	}
	return p, nil
}

func (tablePolicy) NewAdapter(b BankContext) mem.Adapter { return reserve.NewTable(b.NumCores) }

// waitQueuePolicy is the paper's LRSCwait_q hardware queue. Its
// ParamQueueCap parameter is the slot count per bank; 0 (the default)
// selects the ideal queue with one slot per core.
type waitQueuePolicy struct {
	queueCap int // 0 = ideal (one slot per core)
}

func (waitQueuePolicy) Name() string { return string(PolicyWaitQueue) }

func (waitQueuePolicy) Normalize(params PolicyParams, _ noc.Topology) (Policy, error) {
	if err := params.Check(); err != nil {
		return nil, err
	}
	cap, err := params.Int(ParamQueueCap, 0)
	if err != nil {
		return nil, err
	}
	if cap < 0 {
		return nil, fmt.Errorf("platform: %s=%d (want 0 = ideal, or slots)", ParamQueueCap, cap)
	}
	return waitQueuePolicy{queueCap: cap}, nil
}

func (p waitQueuePolicy) NewAdapter(b BankContext) mem.Adapter {
	cap := p.queueCap
	if cap <= 0 {
		cap = b.NumCores
	}
	return reserve.NewWaitQueue(cap)
}

// colibriPolicy is the paper's distributed reservation queue. Its
// ParamColibriQ parameter is the head/tail pair count per bank
// controller; 0 (the default) selects DefaultColibriQueues.
type colibriPolicy struct {
	queues int // 0 = DefaultColibriQueues
}

func (colibriPolicy) Name() string { return string(PolicyColibri) }

func (colibriPolicy) Normalize(params PolicyParams, _ noc.Topology) (Policy, error) {
	if err := params.Check(); err != nil {
		return nil, err
	}
	q, err := params.Int(ParamColibriQ, 0)
	if err != nil {
		return nil, err
	}
	if q < 0 {
		return nil, fmt.Errorf("platform: %s=%d (want >= 1 head/tail pair, 0 = default)",
			ParamColibriQ, q)
	}
	return colibriPolicy{queues: q}, nil
}

func (p colibriPolicy) NewAdapter(BankContext) mem.Adapter {
	q := p.queues
	if q <= 0 {
		q = DefaultColibriQueues
	}
	return colibri.NewController(q)
}
