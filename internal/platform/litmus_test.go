package platform

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/reserve"
)

// Memory-ordering litmus tests. The cores are in-order with blocking,
// acknowledged memory operations, so the system is sequentially
// consistent; these tests pin that property down because the kernels
// (MCS lock handoff, producer/consumer, queue slot publication) rely on
// it. Each test runs the classic two-core pattern many times with
// different relative timing offsets — table-driven over the policy
// registry, because sequential consistency is a platform property no
// reservation policy (built-in or custom) may break.

// litmusPolicy is a custom policy registered only in this test binary:
// a thin wrapper around the reservation table, so the litmus suite also
// covers hardware that entered the platform through the open
// RegisterPolicy path rather than the built-in table.
type litmusPolicy struct{}

func (litmusPolicy) Name() string { return "custom-litmus" }

func (p litmusPolicy) Normalize(params PolicyParams, _ noc.Topology) (Policy, error) {
	if err := params.Check(); err != nil {
		return nil, err
	}
	return p, nil
}

func (litmusPolicy) NewAdapter(b BankContext) mem.Adapter {
	return reserve.NewTable(b.NumCores)
}

// registerLitmusPolicy tolerates repeated in-process test runs
// (go test -count=2): the registry is process-global with no
// unregister.
var registerLitmusPolicy = sync.OnceFunc(func() {
	MustRegisterPolicy(litmusPolicy{})
})

// forEachPolicy runs the litmus body as one subtest per registered
// policy — every built-in plus the test-only custom one.
func forEachPolicy(t *testing.T, body func(t *testing.T, policy PolicyKind)) {
	t.Helper()
	registerLitmusPolicy()
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			body(t, PolicyKind(name))
		})
	}
}

// mpProducer: data = 42; flag = 1. Offset delays the start.
func mpProducer(dataAddr, flagAddr uint32, offset int32) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.T0, offset)
	b.Pause(isa.T0)
	b.Li(isa.A0, int32(dataAddr))
	b.Li(isa.A1, int32(flagAddr))
	b.Li(isa.T1, 42)
	b.Sw(isa.T1, isa.A0, 0)
	b.Li(isa.T2, 1)
	b.Sw(isa.T2, isa.A1, 0)
	b.Halt()
	return b.MustBuild()
}

// mpConsumer: spin on flag, then read data into result.
func mpConsumer(dataAddr, flagAddr, resultAddr uint32) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.A0, int32(dataAddr))
	b.Li(isa.A1, int32(flagAddr))
	b.Label("spin")
	b.Lw(isa.T0, isa.A1, 0)
	b.Beqz(isa.T0, "spin")
	b.Lw(isa.T1, isa.A0, 0)
	b.Li(isa.T2, int32(resultAddr))
	b.Sw(isa.T1, isa.T2, 0)
	b.Halt()
	return b.MustBuild()
}

// TestLitmusMessagePassing: the consumer must never observe flag=1 with
// stale data, even when data and flag live in different banks (and thus
// travel independent network paths). Acked stores give this; posted
// stores would not.
func TestLitmusMessagePassing(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, policy PolicyKind) {
		topo := noc.Small()
		nBanks := uint32(topo.NumBanks())
		for offset := int32(0); offset < 24; offset++ {
			// data and flag in maximally distant banks.
			dataAddr := uint32(0)
			flagAddr := 4 * (nBanks - 1)
			resultAddr := uint32(8)
			prod := mpProducer(dataAddr, flagAddr, offset)
			cons := mpConsumer(dataAddr, flagAddr, resultAddr)
			idle := func() *isa.Program { b := isa.NewBuilder(); b.Halt(); return b.MustBuild() }()
			sys := New(SmallConfig(policy), func(core int) *isa.Program {
				switch core {
				case 0:
					return prod
				case topo.NumCores() - 1:
					return cons
				default:
					return idle
				}
			})
			if !sys.RunUntilHalted(100000) {
				t.Fatalf("offset %d: did not halt", offset)
			}
			if got := sys.ReadWord(resultAddr); got != 42 {
				t.Fatalf("offset %d: consumer saw data=%d after flag (store reordering!)", offset, got)
			}
		}
	})
}

// TestLitmusStoreBuffering: the classic SB pattern (x=1; r1=y || y=1;
// r2=x) must never end with r1==r2==0 on a sequentially consistent
// system.
func TestLitmusStoreBuffering(t *testing.T) {
	writerReader := func(wAddr, rAddr, resAddr uint32, offset int32) *isa.Program {
		b := isa.NewBuilder()
		b.Li(isa.T0, offset)
		b.Pause(isa.T0)
		b.Li(isa.A0, int32(wAddr))
		b.Li(isa.A1, int32(rAddr))
		b.Li(isa.T1, 1)
		b.Sw(isa.T1, isa.A0, 0)
		b.Lw(isa.T2, isa.A1, 0)
		b.Li(isa.T3, int32(resAddr))
		b.Sw(isa.T2, isa.T3, 0)
		b.Halt()
		return b.MustBuild()
	}

	forEachPolicy(t, func(t *testing.T, policy PolicyKind) {
		topo := noc.Small()
		xAddr, yAddr := uint32(0), uint32(4*(uint32(topo.NumBanks())-1))
		r1Addr, r2Addr := uint32(8), uint32(12)
		for off0 := int32(0); off0 < 8; off0++ {
			for off1 := int32(0); off1 < 8; off1++ {
				name := fmt.Sprintf("off0=%d off1=%d", off0, off1)
				p0 := writerReader(xAddr, yAddr, r1Addr, off0)
				p1 := writerReader(yAddr, xAddr, r2Addr, off1)
				idle := func() *isa.Program { b := isa.NewBuilder(); b.Halt(); return b.MustBuild() }()
				sys := New(SmallConfig(policy), func(core int) *isa.Program {
					switch core {
					case 0:
						return p0
					case topo.NumCores() - 1:
						return p1
					default:
						return idle
					}
				})
				// Reset the observed words.
				sys.WriteWord(xAddr, 0)
				sys.WriteWord(yAddr, 0)
				if !sys.RunUntilHalted(100000) {
					t.Fatalf("%s: did not halt", name)
				}
				r1, r2 := sys.ReadWord(r1Addr), sys.ReadWord(r2Addr)
				if r1 == 0 && r2 == 0 {
					t.Fatalf("%s: r1=r2=0 — store buffering visible on an SC system", name)
				}
			}
		}
	})
}

// TestLitmusAmoVisibility: an AMO's effect is immediately visible to a
// subsequent load from any core (atomics act as their own fences here,
// whatever reservation adapter fronts the bank).
func TestLitmusAmoVisibility(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, policy PolicyKind) {
		topo := noc.Small()
		addr := uint32(0)
		adder := func() *isa.Program {
			b := isa.NewBuilder()
			b.Li(isa.A0, int32(addr))
			b.Li(isa.T0, 1)
			b.AmoAdd(isa.T1, isa.T0, isa.A0) // t1 = old
			b.Lw(isa.T2, isa.A0, 0)          // must be > old
			b.Bltu(isa.T1, isa.T2, "ok")
			// Record a violation at a per-core slot.
			b.CoreID(isa.T3)
			b.Slli(isa.T3, isa.T3, 2)
			b.Addi(isa.T3, isa.T3, 64)
			b.Li(isa.T4, 1)
			b.Sw(isa.T4, isa.T3, 0)
			b.Label("ok")
			b.Halt()
			return b.MustBuild()
		}()
		sys := New(SmallConfig(policy), SameProgram(adder))
		if !sys.RunUntilHalted(100000) {
			t.Fatal("did not halt")
		}
		for c := 0; c < topo.NumCores(); c++ {
			if sys.ReadWord(uint32(64+4*c)) != 0 {
				t.Errorf("core %d observed a value at or below its own AMO result", c)
			}
		}
		if got := sys.ReadWord(addr); got != uint32(topo.NumCores()) {
			t.Errorf("final counter = %d, want %d", got, topo.NumCores())
		}
	})
}
