package platform_test

// Tests of the kernel's observability wiring: the KernelStats the
// scheduler accumulates, the derived-skipped accounting invariants, and
// PublishObs's delta-exact publishing into an obs.Registry. The one
// property everything here defends: instrumentation is observation-only
// — publishing (or not publishing) never changes simulation results.

import (
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/platform"
)

// TestKernelStatsInvariants runs a contended wait-capable workload and
// checks the accounting identities the derived-skipped convention rests
// on: every simulated cycle is either ticked or fast-forwarded, and no
// phase ever ticks more components than exist.
func TestKernelStatsInvariants(t *testing.T) {
	const n = 5000
	progFor := parityPrograms(platform.PolicyColibri, noc.Small(), 8)
	sys := platform.New(platform.SmallConfig(platform.PolicyColibri), progFor)
	sys.Run(n)

	k := sys.Kernel
	if k.Ticks == 0 {
		t.Fatal("no ticks recorded")
	}
	if got := k.Ticks + k.FFCyclesSaved; got != n {
		t.Errorf("Ticks+FFCyclesSaved = %d+%d = %d, want window %d",
			k.Ticks, k.FFCyclesSaved, got, n)
	}
	cores := uint64(len(sys.Cores))
	if k.SlotsTicked > k.Ticks*cores {
		t.Errorf("SlotsTicked %d exceeds Ticks*cores %d", k.SlotsTicked, k.Ticks*cores)
	}
	banks := uint64(len(sys.Banks))
	if k.BanksTicked > k.Ticks*banks {
		t.Errorf("BanksTicked %d exceeds Ticks*banks %d", k.BanksTicked, k.Ticks*banks)
	}
	routers := uint64(sys.Fabric.NumRouters())
	if k.RoutersTicked > k.Ticks*routers {
		t.Errorf("RoutersTicked %d exceeds Ticks*routers %d", k.RoutersTicked, k.Ticks*routers)
	}
	if k.FFSpans == 0 || k.FFCyclesSaved == 0 {
		t.Errorf("finite workload on a %d-cycle window should fast-forward (spans=%d saved=%d)",
			n, k.FFSpans, k.FFCyclesSaved)
	}
	if k.Parks == 0 {
		t.Error("contended wait-capable workload recorded no core parks")
	}

	// The published registry form satisfies the same identities, with
	// skipped counts derived at publish time.
	reg := obs.NewRegistry()
	sys.PublishObs(reg)
	s := sys.Snapshot()
	m := reg.Snapshot()
	checks := []struct {
		ticked, skipped string
		population      uint64
	}{
		{"kernel.slots.ticked", "kernel.slots.skipped", cores},
		{"kernel.banks.ticked", "kernel.banks.skipped", banks},
		{"kernel.routers.ticked", "kernel.routers.skipped", routers},
	}
	for _, c := range checks {
		sum := m.Counter(c.ticked) + m.Counter(c.skipped)
		if want := k.Ticks * c.population; sum != want {
			t.Errorf("%s+%s = %d, want Ticks*%d = %d", c.ticked, c.skipped, sum, c.population, want)
		}
	}
	if got := m.Counter("kernel.ticks"); got != k.Ticks {
		t.Errorf("kernel.ticks = %d, want %d", got, k.Ticks)
	}
	if got := m.Counter("kernel.ff.cycles_saved"); got != k.FFCyclesSaved {
		t.Errorf("kernel.ff.cycles_saved = %d, want %d", got, k.FFCyclesSaved)
	}
	// Published component totals agree with the Activity snapshot.
	if got := m.Counter("kernel.core.deliveries"); got != s.Deliveries {
		t.Errorf("kernel.core.deliveries = %d, want Activity.Deliveries %d", got, s.Deliveries)
	}
	if got := m.Counter("kernel.bank.responses"); got != s.BankResponses {
		t.Errorf("kernel.bank.responses = %d, want Activity.BankResponses %d", got, s.BankResponses)
	}
	if got := m.Counter("kernel.fabric.flits"); got != s.Flits {
		t.Errorf("kernel.fabric.flits = %d, want Activity.Flits %d", got, s.Flits)
	}
	if got := m.Counter("kernel.bank.accesses"); got != s.BankAccesses {
		t.Errorf("kernel.bank.accesses = %d, want Activity.BankAccesses %d", got, s.BankAccesses)
	}
	// Per-policy counters live under the policy's registered name and
	// mirror the shared bank counters.
	pre := "kernel.policy." + sys.Policy.Name() + "."
	if got := m.Counter(pre + "requests"); got != s.BankAccesses {
		t.Errorf("%srequests = %d, want %d", pre, got, s.BankAccesses)
	}
	if got := m.Counter(pre + "sc_success"); got != s.SCSuccess {
		t.Errorf("%ssc_success = %d, want %d", pre, got, s.SCSuccess)
	}
}

// TestPublishObsDeltaExact checks the publish-delta contract: repeated
// publishes add only the activity since the previous publish, so chunked
// publishing lands on exactly the same cumulative registry state as one
// final publish — and a publish with no intervening activity adds
// nothing.
func TestPublishObsDeltaExact(t *testing.T) {
	build := func() *platform.System {
		progFor := parityPrograms(platform.PolicyWaitQueue, noc.Small(), 8)
		return platform.New(platform.SmallConfig(platform.PolicyWaitQueue), progFor)
	}

	chunked, whole := build(), build()
	regChunked, regWhole := obs.NewRegistry(), obs.NewRegistry()
	for i := 0; i < 5; i++ {
		chunked.Run(700)
		chunked.PublishObs(regChunked)
		whole.Run(700)
	}
	whole.PublishObs(regWhole)
	if a, b := regChunked.Snapshot(), regWhole.Snapshot(); !reflect.DeepEqual(a, b) {
		t.Errorf("chunked publishes diverge from one-shot publish:\nchunked: %+v\nwhole:   %+v", a, b)
	}

	// Idempotence: no activity between publishes, no change.
	before := regChunked.Snapshot()
	chunked.PublishObs(regChunked)
	if after := regChunked.Snapshot(); !reflect.DeepEqual(before, after) {
		t.Errorf("publish without activity changed the registry:\nbefore: %+v\nafter:  %+v", before, after)
	}
}

// TestPublishObsObservationOnly is the parity guarantee for the
// instrumentation itself: interleaving PublishObs calls with execution
// must not perturb simulation state — same clock, same Activity, same
// memory as an unpublished twin.
func TestPublishObsObservationOnly(t *testing.T) {
	progFor := parityPrograms(platform.PolicyColibri, noc.Small(), 8)
	cfg := platform.SmallConfig(platform.PolicyColibri)
	published, plain := platform.New(cfg, progFor), platform.New(cfg, progFor)

	reg := obs.NewRegistry()
	for i := 0; i < 6; i++ {
		published.Run(500)
		published.PublishObs(reg)
		plain.Run(500)
	}
	if published.Clock.Now() != plain.Clock.Now() {
		t.Fatalf("clock diverged: published=%d plain=%d", published.Clock.Now(), plain.Clock.Now())
	}
	requireSameActivity(t, int(plain.Clock.Now()), plain.Snapshot(), published.Snapshot())
	for w := uint32(0); w < 16; w++ {
		if pv, qv := published.ReadWord(4*w), plain.ReadWord(4*w); pv != qv {
			t.Fatalf("word %d: published=%d plain=%d", w, pv, qv)
		}
	}
}
