package platform_test

// Differential tests of the partitioned parallel kernel: TickParallel /
// Run / RunUntilHalted on a partitioned system must be bit-identical to
// the sequential scheduled kernel — same Activity snapshot every cycle,
// same memory, same clock, same aggregate KernelStats — for every
// partition count, every registered policy, and both driving styles
// (worker goroutines and the inline single-threaded barrier cycle that
// backs Tick on a partitioned system).

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/platform"
)

// parParityPair builds two identical systems: a sequential reference and
// a partitioned one with the requested partition count.
func parParityPair(policy platform.PolicyKind, topo noc.Topology, itersBase, parts int) (seq, par *platform.System) {
	progFor := parityPrograms(policy, topo, itersBase)
	seq = platform.New(platform.Config{Topo: topo, Policy: policy}, progFor)
	par = platform.New(platform.Config{Topo: topo, Policy: policy, Partitions: parts}, progFor)
	return seq, par
}

// parityPartCounts is the partition set the suite sweeps: an even split,
// a deliberately ragged odd split (clamped to the tile count on the
// small topology), and whatever this host would pick by default.
func parityPartCounts() []int {
	counts := []int{2, 7}
	if p := runtime.GOMAXPROCS(0); p != 2 && p != 7 {
		counts = append(counts, p)
	}
	return counts
}

func requireSameKernelStats(t *testing.T, seq, par *platform.System) {
	t.Helper()
	if !reflect.DeepEqual(seq.Kernel, par.Kernel) {
		t.Fatalf("KernelStats diverged\nseq: %+v\npar: %+v", seq.Kernel, par.Kernel)
	}
}

func requireSameMemory(t *testing.T, seq, par *platform.System) {
	t.Helper()
	for w := uint32(0); w < 16; w++ {
		if sv, pv := seq.ReadWord(4*w), par.ReadWord(4*w); sv != pv {
			t.Fatalf("word %d: seq=%d par=%d", w, sv, pv)
		}
	}
}

// TestParallelParityCycleByCycle drives a sequential and a partitioned
// system in lockstep — Tick vs TickParallel — and requires identical
// Activity snapshots every single cycle, for every partition count in
// the sweep. The aggregate KernelStats must match too: the partitioned
// kernel visits exactly the components the sequential one does.
func TestParallelParityCycleByCycle(t *testing.T) {
	forEachParityCase(t, map[string]int{"small": 1200, "mempool": 250},
		func(t *testing.T, policy platform.PolicyKind, topo noc.Topology, n int) {
			for _, parts := range parityPartCounts() {
				parts := parts
				t.Run(fmt.Sprintf("p%d", parts), func(t *testing.T) {
					seq, par := parParityPair(policy, topo, 8, parts)
					for cycle := 0; cycle <= n; cycle++ {
						requireSameActivity(t, cycle, seq.Snapshot(), par.Snapshot())
						if sq, pq := seq.Quiescent(), par.Quiescent(); sq != pq {
							t.Fatalf("cycle %d: Quiescent seq=%v par=%v", cycle, sq, pq)
						}
						if sh, ph := seq.AllHalted(), par.AllHalted(); sh != ph {
							t.Fatalf("cycle %d: AllHalted seq=%v par=%v", cycle, sh, ph)
						}
						seq.Tick()
						par.TickParallel()
					}
					requireSameKernelStats(t, seq, par)
					requireSameMemory(t, seq, par)
				})
			}
		})
}

// TestParallelInlineTickParity covers the other driving style: Tick on a
// partitioned system runs the barrier-cycle structure inline on one
// thread (that is what keeps per-cycle drivers like the trace sampler
// working), and must equal the sequential kernel exactly like the
// worker-driven variant.
func TestParallelInlineTickParity(t *testing.T) {
	forEachParityCase(t, map[string]int{"small": 800, "mempool": 150},
		func(t *testing.T, policy platform.PolicyKind, topo noc.Topology, n int) {
			seq, par := parParityPair(policy, topo, 8, 2)
			for cycle := 0; cycle <= n; cycle++ {
				requireSameActivity(t, cycle, seq.Snapshot(), par.Snapshot())
				seq.Tick()
				par.Tick() // inline partitioned cycle
			}
			requireSameKernelStats(t, seq, par)
			requireSameMemory(t, seq, par)
		})
}

// TestParallelRunParity exercises the worker-driven run loop with its
// leader-side fast-forward decisions: a PAUSE-heavy workload whose idle
// spans the windows deliberately cut mid-way, advanced in identical
// windows on both systems. Clock, snapshots and the fast-forward
// counters themselves must match.
func TestParallelRunParity(t *testing.T) {
	prog := func() *isa.Program {
		b := isa.NewBuilder()
		b.CoreID(isa.T0)
		b.Slli(isa.T0, isa.T0, 4)
		b.Addi(isa.T0, isa.T0, 200) // per-core pause length: 200 + 16*id
		b.Li(isa.S0, 6)             // six pause/mark rounds, then halt
		b.Label("loop")
		b.Pause(isa.T0)
		b.Mark()
		b.Addi(isa.S0, isa.S0, -1)
		b.Bnez(isa.S0, "loop")
		b.Halt()
		return b.MustBuild()
	}()
	for _, parts := range parityPartCounts() {
		parts := parts
		t.Run(fmt.Sprintf("p%d", parts), func(t *testing.T) {
			cfg := platform.SmallConfig(platform.PolicyPlain)
			seq := platform.New(cfg, platform.SameProgram(prog))
			cfg.Partitions = parts
			par := platform.New(cfg, platform.SameProgram(prog))
			for _, window := range []int{97, 513, 1000, 3001, 170} {
				seq.Run(window)
				par.Run(window)
				if seq.Clock.Now() != par.Clock.Now() {
					t.Fatalf("clock after window %d: seq=%d par=%d",
						window, seq.Clock.Now(), par.Clock.Now())
				}
				requireSameActivity(t, int(seq.Clock.Now()), seq.Snapshot(), par.Snapshot())
			}
			requireSameKernelStats(t, seq, par)
			if !seq.AllHalted() || !par.AllHalted() {
				t.Fatal("fast-forward workload should have halted inside the windows")
			}
		})
	}
}

// TestParallelRunUntilHaltedParity compares the halt-driven entry point:
// same halt outcome, same final clock (including the no-fast-forward
// semantics of halting mid-budget), same snapshot, memory and stats.
func TestParallelRunUntilHaltedParity(t *testing.T) {
	forEachParityCase(t, map[string]int{"small": 300000, "mempool": 300000},
		func(t *testing.T, policy platform.PolicyKind, topo noc.Topology, max int) {
			itersBase := 8
			if topo.NumCores() > 64 {
				itersBase = 1
			}
			seq, par := parParityPair(policy, topo, itersBase, 3)
			seqHalted := seq.RunUntilHalted(max)
			parHalted := par.RunUntilHalted(max)
			if seqHalted != parHalted {
				t.Fatalf("halted: seq=%v par=%v", seqHalted, parHalted)
			}
			if !seqHalted {
				t.Fatalf("parity workload did not halt within %d cycles", max)
			}
			if seq.Clock.Now() != par.Clock.Now() {
				t.Fatalf("clock: seq=%d par=%d", seq.Clock.Now(), par.Clock.Now())
			}
			requireSameActivity(t, int(seq.Clock.Now()), seq.Snapshot(), par.Snapshot())
			requireSameKernelStats(t, seq, par)
			requireSameMemory(t, seq, par)
		})
}

// TestPartitionResolution pins the partition-count plumbing: clamping to
// the tile count, the process-default escape hatch, the auto setting,
// and the sequential fallbacks of the parallel entry points.
func TestPartitionResolution(t *testing.T) {
	registerKernelTestPolicy()
	topo := noc.Small() // 4 tiles
	mk := func(parts int) *platform.System {
		return platform.New(platform.Config{Topo: topo, Policy: platform.PolicyPlain, Partitions: parts},
			parityPrograms(platform.PolicyPlain, topo, 4))
	}
	if got := mk(0).Partitions(); got != 1 {
		t.Fatalf("default partitions = %d, want 1 (sequential)", got)
	}
	if got := mk(7).Partitions(); got != topo.NumTiles() {
		t.Fatalf("partitions=7 resolved to %d, want clamp to %d tiles", got, topo.NumTiles())
	}
	// PartitionsAuto starts on the sequential kernel and only adopts
	// partitions after measuring per-cycle work (see the adaptive tests).
	if got := mk(platform.PartitionsAuto).Partitions(); got != 1 {
		t.Fatalf("PartitionsAuto resolved to %d at construction, want 1 (calibrating)", got)
	}
	platform.SetDefaultPartitions(2)
	defer platform.SetDefaultPartitions(0)
	if got := mk(0).Partitions(); got != 2 {
		t.Fatalf("process default 2 resolved to %d", got)
	}
	if got := mk(1).Partitions(); got != 1 {
		t.Fatalf("explicit Partitions=1 resolved to %d, want sequential override of the default", got)
	}

	// On a sequential system the parallel entry points are the scheduled
	// ones — drive one of each and require lockstep equality.
	platform.SetDefaultPartitions(0)
	a, b := mk(1), mk(1)
	for cycle := 0; cycle < 200; cycle++ {
		requireSameActivity(t, cycle, a.Snapshot(), b.Snapshot())
		a.Tick()
		b.TickParallel()
	}
	a.RunParallel(100)
	b.Run(100)
	requireSameActivity(t, int(a.Clock.Now()), a.Snapshot(), b.Snapshot())
}

// autoKnobs tightens the adaptive-partitioning thresholds and raises
// GOMAXPROCS so the small test topology can justify partitions, and
// restores everything on cleanup.
func autoKnobs(t *testing.T, workPerPart, calTicks int) {
	t.Helper()
	prevProcs := runtime.GOMAXPROCS(4)
	prevWork, prevTicks := platform.AutoWorkPerPartition, platform.AutoCalibrationTicks
	platform.AutoWorkPerPartition, platform.AutoCalibrationTicks = workPerPart, calTicks
	t.Cleanup(func() {
		runtime.GOMAXPROCS(prevProcs)
		platform.AutoWorkPerPartition, platform.AutoCalibrationTicks = prevWork, prevTicks
	})
}

// TestPartitionsAutoAdaptive pins the adaptive PartitionsAuto path: the
// system starts sequential, migrates to the partitioned kernel once the
// measured per-cycle work justifies it, and stays cycle-for-cycle
// identical to a sequential reference through the migration — including
// the aggregate kernel stats and the published wake-heap totals.
func TestPartitionsAutoAdaptive(t *testing.T) {
	autoKnobs(t, 4, 64)
	topo := noc.Small()
	progFor := parityPrograms(platform.PolicyPlain, topo, 8)
	seq := platform.New(platform.Config{Topo: topo, Policy: platform.PolicyPlain}, progFor)
	aut := platform.New(platform.Config{Topo: topo, Policy: platform.PolicyPlain,
		Partitions: platform.PartitionsAuto}, progFor)
	if got := aut.Partitions(); got != 1 {
		t.Fatalf("auto system born with %d partitions, want 1 (calibrating)", got)
	}
	for cycle := 0; cycle <= 1200; cycle++ {
		requireSameActivity(t, cycle, seq.Snapshot(), aut.Snapshot())
		seq.Tick()
		aut.Tick()
	}
	if got := aut.Partitions(); got <= 1 {
		t.Fatalf("auto system never adopted partitions on a hot workload (still %d)", got)
	}
	requireSameKernelStats(t, seq, aut)
	requireSameMemory(t, seq, aut)

	// The wake-heap obs totals must survive the migration exactly: the
	// pre-migration pushes are carried, the migrated entries are moves.
	seqReg, autReg := obs.NewRegistry(), obs.NewRegistry()
	seq.PublishObs(seqReg)
	aut.PublishObs(autReg)
	seqSnap, autSnap := seqReg.Snapshot(), autReg.Snapshot()
	for _, name := range []string{"kernel.heap.pushes", "kernel.heap.pops"} {
		if sv, av := seqSnap.Counter(name), autSnap.Counter(name); sv != av {
			t.Fatalf("%s: seq=%d auto=%d", name, sv, av)
		}
	}
}

// TestPartitionsAutoRunParity drives the adaptive system through the
// run loops, so the migration happens inside a Run window and the
// remaining budget is handed to the partitioned driver.
func TestPartitionsAutoRunParity(t *testing.T) {
	autoKnobs(t, 4, 64)
	topo := noc.Small()
	progFor := parityPrograms(platform.PolicyPlain, topo, 8)
	cfg := platform.Config{Topo: topo, Policy: platform.PolicyPlain}
	seq := platform.New(cfg, progFor)
	cfg.Partitions = platform.PartitionsAuto
	aut := platform.New(cfg, progFor)
	seqHalted := seq.RunUntilHalted(300000)
	autHalted := aut.RunUntilHalted(300000)
	if seqHalted != autHalted || !seqHalted {
		t.Fatalf("halted: seq=%v auto=%v", seqHalted, autHalted)
	}
	if aut.Partitions() <= 1 {
		t.Fatal("auto system never adopted partitions inside RunUntilHalted")
	}
	if seq.Clock.Now() != aut.Clock.Now() {
		t.Fatalf("clock: seq=%d auto=%d", seq.Clock.Now(), aut.Clock.Now())
	}
	requireSameActivity(t, int(seq.Clock.Now()), seq.Snapshot(), aut.Snapshot())
	requireSameKernelStats(t, seq, aut)
	requireSameMemory(t, seq, aut)
}

// TestPartitionsAutoStaysSequentialWhenCold pins the other half of the
// contract: under the default thresholds a small system's trickle of
// per-cycle work cannot justify a partition, so the auto system never
// pays for sharding it cannot amortize.
func TestPartitionsAutoStaysSequentialWhenCold(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	topo := noc.Small()
	progFor := parityPrograms(platform.PolicyPlain, topo, 8)
	aut := platform.New(platform.Config{Topo: topo, Policy: platform.PolicyPlain,
		Partitions: platform.PartitionsAuto}, progFor)
	aut.Run(2 * platform.AutoCalibrationTicks)
	if got := aut.Partitions(); got != 1 {
		t.Fatalf("16-core system adopted %d partitions under default thresholds, want 1", got)
	}
}

// epochCrossingProgram alternates same-tile AMO spans (every cross-tile
// router stays clean, so the partitioned kernel may fuse its barriers)
// with cross-tile AMO bursts (link arbiters wake, forcing the full
// four-barrier schedule), staggered by core ID so partitions enter and
// leave fused mode at ragged, different times. Both test topologies
// share CoresPerTile=4 and BanksPerTile=16, which the address
// arithmetic hardcodes.
func epochCrossingProgram(core int) *isa.Program {
	b := isa.NewBuilder()
	b.CoreID(isa.T0)
	b.Srli(isa.T1, isa.T0, 2) // tile = core/4
	b.Slli(isa.T1, isa.T1, 4) // first bank word of the tile
	b.Andi(isa.T2, isa.T0, 3)
	b.Add(isa.T1, isa.T1, isa.T2)
	b.Slli(isa.T1, isa.T1, 2)  // byte address of a same-tile bank word
	b.Addi(isa.T2, isa.T1, 64) // +16 words: the same slot one tile over
	b.Addi(isa.A0, isa.T0, 3)  // per-core pause length
	b.Li(isa.S0, int32(3+core%3))
	b.Label("round")
	b.Li(isa.S1, int32(12+core%7)) // quiet span: same-tile AMOs only
	b.Label("quiet")
	b.AmoAdd(isa.Zero, isa.S1, isa.T1)
	b.Addi(isa.S1, isa.S1, -1)
	b.Bnez(isa.S1, "quiet")
	b.Pause(isa.A0)               // park; the span stays cross-tile quiet
	b.Li(isa.S1, int32(2+core%3)) // burst: cross-tile AMOs wake arbiters
	b.Label("burst")
	b.AmoAdd(isa.Zero, isa.S1, isa.T2)
	b.Addi(isa.S1, isa.S1, -1)
	b.Bnez(isa.S1, "burst")
	b.Addi(isa.S0, isa.S0, -1)
	b.Bnez(isa.S0, "round")
	b.Halt()
	return b.MustBuild()
}

// TestParallelParityEpochCrossing pins the fused-cycle fast path across
// epoch transitions: a workload that repeatedly enters and leaves
// cross-tile-quiet spans must stay cycle-for-cycle identical to the
// sequential kernel with barrier fusing on and off, for every partition
// count — and the fused counter must prove both modes actually ran.
func TestParallelParityEpochCrossing(t *testing.T) {
	orig := platform.FusedCyclesEnabled
	defer func() { platform.FusedCyclesEnabled = orig }()
	for _, enabled := range []bool{true, false} {
		for _, parts := range parityPartCounts() {
			enabled, parts := enabled, parts
			t.Run(fmt.Sprintf("fused=%v/p%d", enabled, parts), func(t *testing.T) {
				platform.FusedCyclesEnabled = enabled
				cfg := platform.SmallConfig(platform.PolicyPlain)
				seq := platform.New(cfg, epochCrossingProgram)
				cfg.Partitions = parts
				par := platform.New(cfg, epochCrossingProgram)
				const maxCycles = 6000
				cycle := 0
				for ; cycle < maxCycles; cycle++ {
					requireSameActivity(t, cycle, seq.Snapshot(), par.Snapshot())
					if seq.AllHalted() {
						break
					}
					seq.Tick()
					par.TickParallel()
				}
				if !seq.AllHalted() || !par.AllHalted() {
					t.Fatalf("workload did not halt within %d cycles", maxCycles)
				}
				requireSameKernelStats(t, seq, par)
				requireSameMemory(t, seq, par)
				fused := par.FusedCycles()
				if !enabled && fused != 0 {
					t.Fatalf("fusing disabled but %d cycles fused", fused)
				}
				if enabled && fused == 0 && par.Partitions() > 1 {
					t.Fatal("fusing enabled but no cycle fused")
				}
				if enabled && fused >= uint64(cycle) {
					t.Fatalf("all %d cycles fused; the cross-tile bursts should have forced full barriers", cycle)
				}
			})
		}
	}
}

// TestParallelRunEpochCrossing drives the same epoch-crossing workload
// through the worker-driven run loop in windows that deliberately cut
// through fused spans, checking the leader's per-window fuse decisions
// against the sequential kernel's clock, snapshot and stats.
func TestParallelRunEpochCrossing(t *testing.T) {
	orig := platform.FusedCyclesEnabled
	defer func() { platform.FusedCyclesEnabled = orig }()
	platform.FusedCyclesEnabled = true
	for _, parts := range parityPartCounts() {
		parts := parts
		t.Run(fmt.Sprintf("p%d", parts), func(t *testing.T) {
			cfg := platform.SmallConfig(platform.PolicyPlain)
			seq := platform.New(cfg, epochCrossingProgram)
			cfg.Partitions = parts
			par := platform.New(cfg, epochCrossingProgram)
			for _, window := range []int{113, 517, 61, 2000, 3001} {
				seq.Run(window)
				par.Run(window)
				if seq.Clock.Now() != par.Clock.Now() {
					t.Fatalf("clock after window %d: seq=%d par=%d",
						window, seq.Clock.Now(), par.Clock.Now())
				}
				requireSameActivity(t, int(seq.Clock.Now()), seq.Snapshot(), par.Snapshot())
			}
			if !seq.AllHalted() || !par.AllHalted() {
				t.Fatal("epoch-crossing workload should halt inside the windows")
			}
			requireSameKernelStats(t, seq, par)
			requireSameMemory(t, seq, par)
			if par.FusedCycles() == 0 && par.Partitions() > 1 {
				t.Fatal("run loop never fused a cycle on a quiet-span workload")
			}
		})
	}
}

// TestParallelPublishObs checks the partitioned kernel's observability:
// the aggregate kernel.* counters stay exactly the sequential set, the
// partition count is exported as a gauge, and the per-partition ticked
// counters sum to the aggregate (nothing is double- or under-counted).
func TestParallelPublishObs(t *testing.T) {
	registerKernelTestPolicy()
	topo := noc.Small()
	seq, par := parParityPair(platform.PolicyWaitQueue, topo, 8, 2)
	seq.Run(600)
	par.Run(600)

	seqReg, parReg := obs.NewRegistry(), obs.NewRegistry()
	seq.PublishObs(seqReg)
	par.PublishObs(parReg)
	seqSnap, parSnap := seqReg.Snapshot(), parReg.Snapshot()

	for name, v := range seqSnap.Counters {
		if pv := parSnap.Counter(name); pv != v {
			t.Fatalf("counter %s: seq=%d par=%d", name, v, pv)
		}
	}
	if got := parSnap.Gauges["kernel.partitions"]; got != 2 {
		t.Fatalf("kernel.partitions gauge = %d, want 2", got)
	}
	for _, phase := range []string{"slots", "routers", "banks", "deliv"} {
		var sum uint64
		for p := 0; p < 2; p++ {
			sum += parSnap.Counter(fmt.Sprintf("kernel.part.%d.%s.ticked", p, phase))
		}
		if agg := parSnap.Counter("kernel." + phase + ".ticked"); sum != agg {
			t.Fatalf("%s: per-partition sum %d != aggregate %d", phase, sum, agg)
		}
	}
}
