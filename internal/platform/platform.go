// Package platform assembles the full MemPool-class system: cores behind
// Colibri Qnodes, the two-network fabric, and adapter-equipped SPM banks.
// It drives the cycle loop and takes activity snapshots for the
// throughput, fairness and energy evaluations.
package platform

import (
	"repro/internal/bus"
	"repro/internal/colibri"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
)

// Config describes a system instance.
type Config struct {
	Topo noc.Topology
	// FIFODepth is the capacity of every fabric FIFO stage (default 2).
	FIFODepth int
	// WordsPerBank sizes each bank's storage (default 1024 words).
	WordsPerBank int
	// Policy names the registered bank synchronization policy (see
	// RegisterPolicy / PolicyNames). Empty selects PolicyPlain.
	Policy PolicyKind
	// PolicyParams configures the policy instance, with policy-defined
	// keys (e.g. ParamQueueCap for lrscwait, ParamColibriQ for colibri).
	// Unknown policy-specific keys are rejected by the policy's
	// Normalize.
	PolicyParams PolicyParams
}

// MemPoolConfig returns the paper's 256-core evaluation configuration with
// the given policy.
func MemPoolConfig(policy PolicyKind) Config {
	return Config{Topo: noc.MemPool256(), Policy: policy}
}

// SmallConfig returns a 16-core configuration for tests.
func SmallConfig(policy PolicyKind) Config {
	return Config{Topo: noc.Small(), Policy: policy}
}

// ProgramFor supplies each core's program (and may return the same program
// for every core).
type ProgramFor func(core int) *isa.Program

// SameProgram runs one program on every core.
func SameProgram(p *isa.Program) ProgramFor {
	return func(int) *isa.Program { return p }
}

// fifoSink adapts an engine FIFO to colibri.ReqSink.
type fifoSink struct{ f *engine.FIFO[bus.Request] }

func (s fifoSink) TryPush(r bus.Request) bool { return s.f.Push(r) }

// System is a fully wired simulation instance.
type System struct {
	Cfg   Config
	Clock engine.Clock
	// Policy is the resolved, fully configured policy instance the
	// banks' adapters were built from.
	Policy Policy
	Fabric *noc.Fabric
	Banks  []*mem.Bank
	Cores  []*cpu.Core
	Qnodes []*colibri.Qnode
}

// New builds a system with every core running progFor(core). The
// configured policy is resolved through the registry; an unregistered
// name or invalid parameter set panics, like an invalid topology.
func New(cfg Config, progFor ProgramFor) *System {
	if err := cfg.Topo.Validate(); err != nil {
		panic(err)
	}
	if cfg.FIFODepth <= 0 {
		cfg.FIFODepth = 2
	}
	if cfg.WordsPerBank <= 0 {
		cfg.WordsPerBank = 1024
	}
	pol, err := ResolvePolicy(cfg.Policy, cfg.PolicyParams, cfg.Topo)
	if err != nil {
		panic(err)
	}
	s := &System{Cfg: cfg, Policy: pol}
	topo := cfg.Topo
	s.Fabric = noc.NewFabric(topo, &s.Clock, cfg.FIFODepth)

	nBanks := topo.NumBanks()
	nCores := topo.NumCores()
	s.Banks = make([]*mem.Bank, nBanks)
	for b := 0; b < nBanks; b++ {
		adapter := pol.NewAdapter(BankContext{
			BankID: b, NumBanks: nBanks, NumCores: nCores, Topo: topo,
		})
		s.Banks[b] = mem.NewBank(b, nBanks, cfg.WordsPerBank, adapter,
			s.Fabric.BankReq[b], s.Fabric.BankResp[b])
	}

	s.Cores = make([]*cpu.Core, nCores)
	s.Qnodes = make([]*colibri.Qnode, nCores)
	for c := 0; c < nCores; c++ {
		s.Qnodes[c] = colibri.NewQnode(c, fifoSink{s.Fabric.CoreReq[c]})
		prog := progFor(c)
		s.Cores[c] = cpu.New(c, nCores, &s.Clock, s.Qnodes[c], prog)
	}
	return s
}

// Tick advances the whole system by one cycle.
func (s *System) Tick() {
	for i, c := range s.Cores {
		s.Qnodes[i].Tick()
		c.Tick()
	}
	s.Fabric.Tick()
	for _, b := range s.Banks {
		b.Tick()
	}
	for i := range s.Cores {
		if resp, ok := s.Fabric.CoreResp[i].Pop(); ok {
			if out := s.Qnodes[i].Deliver(resp); out != nil {
				s.Cores[i].Deliver(*out)
			}
		}
	}
	s.Clock.Advance()
}

// Run advances n cycles.
func (s *System) Run(n int) {
	for i := 0; i < n; i++ {
		s.Tick()
	}
}

// RunUntilHalted runs until every core halted or maxCycles elapse; it
// reports whether all cores halted.
func (s *System) RunUntilHalted(maxCycles int) bool {
	for i := 0; i < maxCycles; i++ {
		if s.AllHalted() {
			return true
		}
		s.Tick()
	}
	return s.AllHalted()
}

// AllHalted reports whether every core has executed HALT.
func (s *System) AllHalted() bool {
	for _, c := range s.Cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// Quiescent reports whether no message is in flight anywhere.
func (s *System) Quiescent() bool {
	if s.Fabric.InFlight() != 0 {
		return false
	}
	for _, b := range s.Banks {
		if !b.Idle() {
			return false
		}
	}
	return true
}

// bankFor returns the bank holding addr.
func (s *System) bankFor(addr uint32) *mem.Bank {
	return s.Banks[s.Cfg.Topo.BankOfAddr(addr)]
}

// WriteWord initializes a memory word directly (zero simulated time).
func (s *System) WriteWord(addr, v uint32) { s.bankFor(addr).Poke(addr, v) }

// ReadWord reads a memory word directly (zero simulated time).
func (s *System) ReadWord(addr uint32) uint32 { return s.bankFor(addr).Peek(addr) }

// MemWords returns the total addressable words.
func (s *System) MemWords() int {
	return s.Cfg.WordsPerBank * s.Cfg.Topo.NumBanks()
}
