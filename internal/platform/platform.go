// Package platform assembles the full MemPool-class system: cores behind
// Colibri Qnodes, the two-network fabric, and adapter-equipped SPM banks.
// It drives the cycle loop and takes activity snapshots for the
// throughput, fairness and energy evaluations.
package platform

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bus"
	"repro/internal/colibri"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
)

// Config describes a system instance.
type Config struct {
	Topo noc.Topology
	// FIFODepth is the capacity of every fabric FIFO stage (default 2).
	FIFODepth int
	// WordsPerBank sizes each bank's storage (default 1024 words).
	WordsPerBank int
	// Policy names the registered bank synchronization policy (see
	// RegisterPolicy / PolicyNames). Empty selects PolicyPlain.
	Policy PolicyKind
	// PolicyParams configures the policy instance, with policy-defined
	// keys (e.g. ParamQueueCap for lrscwait, ParamColibriQ for colibri).
	// Unknown policy-specific keys are rejected by the policy's
	// Normalize.
	PolicyParams PolicyParams
	// Partitions selects the kernel's parallelism inside this one
	// simulated system: the tiles (with their cores, Qnodes and banks)
	// are split into that many contiguous shards, ticked by one OS
	// thread each and synchronized at deterministic phase barriers.
	// Results are bit-identical for every value — this is purely a
	// wall-clock knob. 0 uses the process-wide default (see
	// SetDefaultPartitions; initially 1, the sequential kernel),
	// PartitionsAuto adapts to the measured per-cycle work (see its
	// doc), and any other value is clamped to [1, number of tiles].
	Partitions int
}

// PartitionsAuto picks the partition count adaptively from measured
// work: the system starts on the sequential kernel, and after
// AutoCalibrationTicks executed cycles the kernel computes the average
// per-cycle component activity from its own KernelStats and migrates —
// mid-run, bit-identically — to ceil(work/AutoWorkPerPartition)
// partitions, capped at min(GOMAXPROCS, tiles). Small or cold systems
// therefore never pay sharding overhead they cannot amortize, while
// busy ones shard in proportion to what each cycle actually ticks.
const PartitionsAuto = -1

// AutoCalibrationTicks is how many executed cycles PartitionsAuto
// observes before deciding a partition count (fast-forwarded cycles do
// not count — they carry no per-cycle work to measure).
var AutoCalibrationTicks = 256

// AutoWorkPerPartition is the average number of per-cycle component
// visits (core slots + routers + banks + deliveries, from KernelStats)
// PartitionsAuto requires to justify each additional partition. Below
// it, a partition's share of a cycle is cheaper than the barriers that
// would coordinate it.
var AutoWorkPerPartition = 128

// autoCal tracks a PartitionsAuto system's calibration phase: run
// sequentially for remaining more executed ticks, then decide.
type autoCal struct {
	remaining int
}

// chooseAutoPartitions maps measured average per-cycle work to a
// partition count: one partition per AutoWorkPerPartition units of
// work, at least 1, at most min(procs, tiles).
func chooseAutoPartitions(avgWork, procs, tiles int) int {
	p := avgWork / AutoWorkPerPartition
	if p > procs {
		p = procs
	}
	if p > tiles {
		p = tiles
	}
	if p < 1 {
		p = 1
	}
	return p
}

// defaultPartitions is the Partitions value used when Config.Partitions
// is zero. CLIs set it once at startup from their -partitions flag, so
// every System a run builds — including those constructed deep inside
// scenario code — picks up the requested parallelism.
var defaultPartitions atomic.Int32

// SetDefaultPartitions sets the process-wide default partition count
// applied when Config.Partitions is zero: 1 (or 0) selects the
// sequential kernel, PartitionsAuto selects adaptively from measured
// work (see PartitionsAuto), larger values are clamped per topology.
func SetDefaultPartitions(p int) { defaultPartitions.Store(int32(p)) }

// resolvePartitions maps a Config.Partitions value to the effective
// partition count for a topology with the given tile count, plus
// whether the adaptive calibration phase should run (PartitionsAuto on
// a host and topology where sharding could ever pay: auto systems
// start sequential and migrate after calibration).
func resolvePartitions(p, tiles int) (parts int, auto bool) {
	if p == 0 {
		p = int(defaultPartitions.Load())
	}
	if p == PartitionsAuto {
		return 1, runtime.GOMAXPROCS(0) > 1 && tiles > 1
	}
	if p < 1 {
		p = 1
	}
	if p > tiles {
		p = tiles
	}
	return p, false
}

// MemPoolConfig returns the paper's 256-core evaluation configuration with
// the given policy.
func MemPoolConfig(policy PolicyKind) Config {
	return Config{Topo: noc.MemPool256(), Policy: policy}
}

// SmallConfig returns a 16-core configuration for tests.
func SmallConfig(policy PolicyKind) Config {
	return Config{Topo: noc.Small(), Policy: policy}
}

// ProgramFor supplies each core's program (and may return the same program
// for every core).
type ProgramFor func(core int) *isa.Program

// SameProgram runs one program on every core.
func SameProgram(p *isa.Program) ProgramFor {
	return func(int) *isa.Program { return p }
}

// fifoSink adapts an engine FIFO to colibri.ReqSink.
type fifoSink struct{ f *engine.FIFO[bus.Request] }

func (s fifoSink) TryPush(r bus.Request) bool { return s.f.Push(r) }

// System is a fully wired simulation instance.
//
// The cycle loop is activity-driven: Tick walks only the components that
// can make progress this cycle (see the scheduler fields below), and Run
// / RunUntilHalted fast-forward the clock across globally idle spans.
// Sleeping cores therefore cost nothing per cycle — the simulator-side
// mirror of the paper's polling-free LRwait/Mwait design. TickDense is
// the retained dense reference loop for differential testing.
type System struct {
	Cfg   Config
	Clock engine.Clock
	// Policy is the resolved, fully configured policy instance the
	// banks' adapters were built from.
	Policy Policy
	Fabric *noc.Fabric
	Banks  []*mem.Bank
	Cores  []*cpu.Core
	Qnodes []*colibri.Qnode

	// slots schedules the per-core front end (Qnode i + Core i as one
	// slot, ticked in that order like the dense loop); its wake heap
	// carries PAUSE countdown expiries. banks and deliv track banks with
	// queued work and cores with undelivered responses; the fabric keeps
	// its own router dirty lists. Scratch slices make steady-state
	// iteration allocation-free.
	slots       *engine.Scheduler
	banks       engine.ActiveSet
	deliv       engine.ActiveSet
	slotScratch []int
	bankScratch []int
	delScratch  []int
	// nHalted counts cores that have executed HALT, so RunUntilHalted's
	// completion check is O(1) instead of an every-cycle core walk.
	nHalted int
	// nRouters caches Fabric.NumRouters() for Kernel accounting.
	nRouters int

	// Kernel counts what the activity-driven scheduler did — components
	// ticked per phase, parks, fast-forward spans — with plain per-System
	// increments (a few integer adds per Tick, using lengths the loop
	// already computed). PublishObs pushes deltas into an obs.Registry on
	// the cold path; per-Tick atomics would dwarf an idle cycle's cost.
	// Under the partitioned kernel the cycle leader folds per-partition
	// counts here at every end-of-cycle barrier, so the aggregate is
	// identical to what the sequential kernel would have counted.
	Kernel KernelStats
	// par is the partitioned-kernel state when the resolved
	// Config.Partitions exceeds one; nil for the sequential kernel. See
	// parallel.go.
	par *parKernel
	// auto, when non-nil, marks a PartitionsAuto system still in its
	// sequential calibration phase; Tick decrements it and migrates to
	// the partitioned kernel once enough work has been observed.
	auto *autoCal
	// heapCarryPushes/Pops preserve the sequential scheduler's wake-heap
	// totals across an adaptive migration, so the obs counters stay
	// monotonic (per-partition schedulers restart at zero).
	heapCarryPushes uint64
	heapCarryPops   uint64
	// pubMu serializes PublishObs (its delta bookkeeping in lastPub must
	// not interleave when concurrent runs publish the same System, or
	// different Systems publish into one registry from racing sweeps).
	pubMu sync.Mutex
	// lastPub is the totals already published by PublishObs.
	lastPub obsTotals
	// lastPubParts mirrors lastPub per partition.
	lastPubParts []KernelStats
}

// KernelStats is the scheduler's own activity accounting, per executed
// Tick (fast-forwarded cycles never reach Tick and are counted in
// FFSpans/FFCyclesSaved instead). Skipped counts are derived at publish
// time as Ticks×population − ticked, keeping the hot path to one add
// per phase.
type KernelStats struct {
	// Ticks counts executed scheduled Tick calls.
	Ticks uint64
	// SlotsTicked counts core-slot (Qnode+Core) visits.
	SlotsTicked uint64
	// RoutersTicked counts dirty-router visits across both networks.
	RoutersTicked uint64
	// BanksTicked counts visits to banks with queued work.
	BanksTicked uint64
	// DelivTicked counts response-delivery visits.
	DelivTicked uint64
	// Parks counts cores taken off the schedule (quiescent or in PAUSE).
	Parks uint64
	// FFSpans and FFCyclesSaved count globally idle spans the clock
	// jumped across instead of simulating, and the cycles so skipped.
	FFSpans       uint64
	FFCyclesSaved uint64
}

// New builds a system with every core running progFor(core). The
// configured policy is resolved through the registry; an unregistered
// name or invalid parameter set panics, like an invalid topology.
func New(cfg Config, progFor ProgramFor) *System {
	if err := cfg.Topo.Validate(); err != nil {
		panic(err)
	}
	if cfg.FIFODepth <= 0 {
		cfg.FIFODepth = 2
	}
	if cfg.WordsPerBank <= 0 {
		cfg.WordsPerBank = 1024
	}
	pol, err := ResolvePolicy(cfg.Policy, cfg.PolicyParams, cfg.Topo)
	if err != nil {
		panic(err)
	}
	s := &System{Cfg: cfg, Policy: pol}
	topo := cfg.Topo
	s.Fabric = noc.NewFabric(topo, &s.Clock, cfg.FIFODepth)
	s.nRouters = s.Fabric.NumRouters()

	nBanks := topo.NumBanks()
	nCores := topo.NumCores()
	s.Banks = make([]*mem.Bank, nBanks)
	for b := 0; b < nBanks; b++ {
		adapter := pol.NewAdapter(BankContext{
			BankID: b, NumBanks: nBanks, NumCores: nCores, Topo: topo,
		})
		s.Banks[b] = mem.NewBank(b, nBanks, cfg.WordsPerBank, adapter,
			s.Fabric.BankReq[b], s.Fabric.BankResp[b])
	}

	s.Cores = make([]*cpu.Core, nCores)
	s.Qnodes = make([]*colibri.Qnode, nCores)
	for c := 0; c < nCores; c++ {
		s.Qnodes[c] = colibri.NewQnode(c, fifoSink{s.Fabric.CoreReq[c]})
		prog := progFor(c)
		s.Cores[c] = cpu.New(c, nCores, &s.Clock, s.Qnodes[c], prog)
	}

	// Wire the activity-driven scheduler: every core starts runnable;
	// banks wake when a request reaches their delivery FIFO; the
	// response-delivery loop wakes when a response reaches a core's
	// delivery FIFO. (The fabric wired its own router dirty lists in
	// NewFabric.) With more than one partition the same hooks target the
	// owning partition's sets instead — every BankReq/CoreResp producer
	// is partition-local, so those sets need no atomics.
	p, auto := resolvePartitions(cfg.Partitions, topo.NumTiles())
	if p > 1 {
		s.initPartitions(p)
		return s
	}
	if auto {
		s.auto = &autoCal{remaining: AutoCalibrationTicks}
	}
	s.slots = engine.NewScheduler(nCores)
	for c := 0; c < nCores; c++ {
		s.slots.Wake(c)
	}
	s.banks = engine.MakeActiveSet(nBanks)
	for b := 0; b < nBanks; b++ {
		b := b
		s.Fabric.BankReq[b].OnPush(func() { s.banks.Add(b) })
	}
	s.deliv = engine.MakeActiveSet(nCores)
	for c := 0; c < nCores; c++ {
		c := c
		s.Fabric.CoreResp[c].OnPush(func() { s.deliv.Add(c) })
	}
	return s
}

// Tick advances the whole system by one cycle, visiting only components
// that can make progress: runnable core slots, dirty routers, banks with
// queued work, cores with undelivered responses. Quiescent components
// are parked with registered wake conditions (FIFO push hooks, response
// delivery, the PAUSE timer heap), and their per-cycle wait counters are
// reconciled lazily, so the observable state evolution — including every
// Snapshot counter — is cycle-exact against TickDense.
func (s *System) Tick() {
	if s.par != nil {
		// Partitioned system: run the same barrier-cycle structure
		// inline on one thread — bit-identical, so per-cycle drivers
		// (trace sampling, parity tests) work regardless of mode.
		s.parTickInline()
		return
	}
	now := s.Clock.Now()
	// Expired PAUSE countdowns rejoin the schedule first, so the core
	// executes this cycle exactly as under dense ticking.
	s.slots.WakeDue(now, func(id int) { s.Cores[id].Unpark() })

	// Phase 1: core slots (Qnode i then Core i, ascending i).
	s.slotScratch = s.slots.AppendRunnable(s.slotScratch[:0])
	for _, i := range s.slotScratch {
		q, c := s.Qnodes[i], s.Cores[i]
		q.Tick()
		if !c.Parked() {
			c.Tick()
			if c.Quiescent() {
				s.parkCore(i)
			}
		}
		if c.Parked() && !q.Busy() {
			s.slots.Sleep(i)
		}
	}

	// Phase 2: fabric routers with occupied inputs.
	routersTicked := s.Fabric.TickActive()

	// Phase 3: banks with queued requests or pending responses.
	s.bankScratch = s.banks.AppendTo(s.bankScratch[:0])
	for _, b := range s.bankScratch {
		bank := s.Banks[b]
		bank.Tick()
		if bank.Idle() {
			s.banks.Remove(b)
		}
	}

	// Phase 4: response delivery for cores with queued responses.
	s.delScratch = s.deliv.AppendTo(s.delScratch[:0])
	for _, i := range s.delScratch {
		if resp, ok := s.Fabric.CoreResp[i].Pop(); ok {
			if out, ok := s.Qnodes[i].Deliver(resp); ok {
				s.Cores[i].Deliver(out) // unparks; executes next cycle
				s.slots.Wake(i)
			}
			if s.Qnodes[i].Busy() {
				s.slots.Wake(i) // protocol traffic to drain (wake-up bounce)
			}
		}
		if s.Fabric.CoreResp[i].Len() == 0 {
			s.deliv.Remove(i)
		}
	}
	// Per-phase accounting: one add per phase, from lengths the loop
	// already had in hand (see KernelStats).
	s.Kernel.Ticks++
	s.Kernel.SlotsTicked += uint64(len(s.slotScratch))
	s.Kernel.RoutersTicked += uint64(routersTicked)
	s.Kernel.BanksTicked += uint64(len(s.bankScratch))
	s.Kernel.DelivTicked += uint64(len(s.delScratch))
	s.Clock.Advance()
	if s.auto != nil {
		s.autoTick()
	}
}

// autoTick advances a PartitionsAuto system's calibration: once enough
// cycles have executed, compute the average per-cycle work the kernel
// actually did and migrate to the partition count it justifies. The
// migration happens at a cycle boundary (the clock has just advanced),
// where the partitioned kernel's state copy is exact, so results stay
// bit-identical — only the host-side execution strategy changes.
func (s *System) autoTick() {
	s.auto.remaining--
	if s.auto.remaining > 0 {
		return
	}
	s.auto = nil
	k := &s.Kernel
	avgWork := int((k.SlotsTicked + k.RoutersTicked + k.BanksTicked + k.DelivTicked) / k.Ticks)
	if p := chooseAutoPartitions(avgWork, runtime.GOMAXPROCS(0), s.Cfg.Topo.NumTiles()); p > 1 {
		s.initPartitions(p)
	}
}

// parkCore takes a quiescent core off the schedule, registering its
// timer wake-up when it is counting down a PAUSE.
func (s *System) parkCore(i int) {
	c := s.Cores[i]
	s.Kernel.Parks++
	if c.State() == cpu.Halted {
		s.nHalted++
	}
	if wakeAt := c.Park(); wakeAt >= 0 {
		s.slots.WakeAt(i, wakeAt)
	}
}

// TickDense advances the whole system by one cycle the original way:
// every Qnode, core, router and bank is ticked unconditionally. It is
// the dense reference loop retained for differential testing of the
// activity-driven Tick (and for measuring its speedup); drive any one
// System exclusively through either Tick or TickDense, not a mix, since
// the dense loop does not maintain the scheduler's parking state.
func (s *System) TickDense() {
	for i, c := range s.Cores {
		s.Qnodes[i].Tick()
		c.Tick()
	}
	s.Fabric.Tick()
	for _, b := range s.Banks {
		b.Tick()
	}
	for i := range s.Cores {
		if resp, ok := s.Fabric.CoreResp[i].Pop(); ok {
			if out, ok := s.Qnodes[i].Deliver(resp); ok {
				s.Cores[i].Deliver(out)
			}
		}
	}
	s.Clock.Advance()
}

// busy reports whether any component can make progress this cycle
// without a timer firing first. When false, every message has drained
// and every core is parked: the only future events are PAUSE expiries.
func (s *System) busy() bool {
	return s.slots.AnyRunnable() || !s.banks.Empty() || !s.deliv.Empty() ||
		s.Fabric.Busy()
}

// Run advances n cycles, fast-forwarding the clock across globally idle
// spans (all cores asleep in backoff, nothing in flight) — skipped wait
// cycles are reconciled into the cores' counters, so snapshots are
// identical to having simulated every cycle.
func (s *System) Run(n int) {
	if s.par != nil {
		s.runPar(n)
		return
	}
	target := s.Clock.Now() + engine.Cycle(n)
	for s.Clock.Now() < target {
		if !s.busy() {
			w, ok := s.slots.NextWake()
			if !ok || w >= target {
				// Fully idle to the horizon: skip straight to it.
				s.fastForward(target)
				return
			}
			s.fastForward(w)
		}
		s.Tick()
		if s.par != nil {
			// Adaptive calibration migrated to the partitioned kernel
			// mid-window: hand it the rest.
			s.runPar(int(target - s.Clock.Now()))
			return
		}
	}
}

// fastForward jumps the clock to cycle at, accounting the skipped span.
func (s *System) fastForward(at engine.Cycle) {
	if saved := at - s.Clock.Now(); saved > 0 {
		s.Kernel.FFSpans++
		s.Kernel.FFCyclesSaved += uint64(saved)
	}
	s.Clock.AdvanceTo(at)
}

// RunDense advances n cycles through the dense reference loop.
func (s *System) RunDense(n int) {
	for i := 0; i < n; i++ {
		s.TickDense()
	}
}

// RunUntilHalted runs until every core halted or maxCycles elapse; it
// reports whether all cores halted. Like Run it fast-forwards idle
// spans; a deadlocked system (nothing runnable, no timers, cores still
// waiting) skips straight to the cycle budget rather than simulating
// empty cycles.
func (s *System) RunUntilHalted(maxCycles int) bool {
	if s.par != nil {
		return s.runParUntilHalted(maxCycles)
	}
	target := s.Clock.Now() + engine.Cycle(maxCycles)
	for s.Clock.Now() < target {
		if s.nHalted == len(s.Cores) {
			return true
		}
		if !s.busy() {
			w, ok := s.slots.NextWake()
			if !ok || w >= target {
				break
			}
			s.fastForward(w)
		}
		s.Tick()
		if s.par != nil {
			// Adaptive calibration migrated to the partitioned kernel
			// mid-run: hand it the remaining budget.
			return s.runParUntilHalted(int(target - s.Clock.Now()))
		}
	}
	s.fastForward(target)
	return s.nHalted == len(s.Cores)
}

// AllHalted reports whether every core has executed HALT.
func (s *System) AllHalted() bool {
	for _, c := range s.Cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// Quiescent reports whether no message is in flight anywhere — fabric,
// banks, and the Qnodes' protocol state: a Qnode holding an open episode
// (an undrained wake-up, a pending grant, a linked successor) represents
// buffered traffic even when every FIFO is empty.
func (s *System) Quiescent() bool {
	if s.Fabric.InFlight() != 0 {
		return false
	}
	for _, b := range s.Banks {
		if !b.Idle() {
			return false
		}
	}
	for _, n := range s.Qnodes {
		if !n.Idle() {
			return false
		}
	}
	return true
}

// SyncStats reconciles the lazily-accounted wait counters of every
// parked core up to the last completed cycle. Snapshot calls it; callers
// reading core Stats fields directly (e.g. the trace sampler) must call
// it first to observe cycle-exact counters.
func (s *System) SyncStats() {
	for _, c := range s.Cores {
		c.SyncStats()
	}
}

// bankFor returns the bank holding addr.
func (s *System) bankFor(addr uint32) *mem.Bank {
	return s.Banks[s.Cfg.Topo.BankOfAddr(addr)]
}

// WriteWord initializes a memory word directly (zero simulated time).
func (s *System) WriteWord(addr, v uint32) { s.bankFor(addr).Poke(addr, v) }

// ReadWord reads a memory word directly (zero simulated time).
func (s *System) ReadWord(addr uint32) uint32 { return s.bankFor(addr).Peek(addr) }

// MemWords returns the total addressable words.
func (s *System) MemWords() int {
	return s.Cfg.WordsPerBank * s.Cfg.Topo.NumBanks()
}
