package platform

import (
	"sync"

	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/noc"
)

// Partitioned parallel kernel: one simulated System sharded across OS
// threads. The tiles — with their cores, Qnodes and banks — are split
// into contiguous partitions; each partition runs the four phases of
// the scheduled Tick on its own shard, and the partitions synchronize
// at phase barriers so every FIFO keeps a single producer and a single
// consumer per step:
//
//	step A  timer wakes + core-slot ticks (phase 1), then snapshot of
//	        this partition's dirty routers — all writes partition-local
//	        except tile-router wakes, which are atomic bit-sets
//	barrier
//	step B  tile routers (fabric class 0) — may push cross-partition
//	        into link-arbiter FIFOs (each has exactly one producer tile)
//	barrier
//	step C  link arbiters (class 1) — push onto group-router links
//	barrier
//	step D  group routers (class 2), banks (phase 3), response delivery
//	        (phase 4) — mutually disjoint FIFO sets, all partition-local
//	barrier + leader: fold per-partition counts into Kernel, advance the
//	        clock, decide (continue / fast-forward / stop)
//
// Because every pair of components that share a FIFO is separated by a
// barrier (or partition-local), the state evolution is exactly the
// sequential Tick's for any partition count — the parity suite checks
// this per cycle across the policy registry. The sequential scheduled
// kernel remains the differential reference, exactly as TickDense was
// kept when the scheduler landed.

// partition is one shard of the simulated system: a contiguous tile
// range with its cores/Qnodes/banks, its own scheduler and active sets
// (all their producers are partition-local), scratch, and its share of
// the kernel counters.
type partition struct {
	id           int
	core0, core1 int // global core IDs [core0, core1)
	bank0, bank1 int // global bank IDs [bank0, bank1)

	slots *engine.Scheduler
	banks engine.ActiveSet
	deliv engine.ActiveSet

	slotScratch []int
	bankScratch []int
	delScratch  []int
	fsc         noc.PartScratch

	// stats is this partition's cumulative share of the kernel counters
	// (Ticks and the FF fields stay zero: whole-system events are
	// counted once, on System.Kernel, by the cycle leader). Published
	// per partition by PublishObs.
	stats   KernelStats
	nHalted int

	// Per-cycle ticked counts, folded into System.Kernel by the leader.
	cSlots, cRouters, cBanks, cDeliv, cParks int
}

// FusedCyclesEnabled gates the partitioned kernel's single-barrier fast
// path: when every cross-tile router (link arbiters and group routers,
// both networks) is clean at a cycle boundary, the next cycle provably
// moves nothing through those classes, so the three intermediate phase
// barriers are skipped and the whole cycle synchronizes once. Results
// are bit-identical either way (the parity suite runs both settings);
// the knob exists so benchmarks can measure the batching effect. Toggle
// only while no partitioned system is mid-run.
var FusedCyclesEnabled = true

// parKernel is the partitioned-kernel state hanging off a System.
type parKernel struct {
	nParts  int
	parts   []*partition
	barrier *engine.Barrier
	// cycleEnd is the end-of-cycle barrier action: fold, clock advance,
	// then the run driver's decide hook.
	cycleEnd func()
	decide   func()
	// fused marks the next cycle as a single-barrier fused cycle. Written
	// only by the cycle leader inside a barrier action (or with no
	// workers running), read by workers after the barrier releases them.
	fused bool
	// fusedCycles counts executed fused cycles. It lives here and not in
	// KernelStats because it describes the host-side execution strategy,
	// not the simulated machine: KernelStats must stay bit-identical
	// across kernels and partition counts.
	fusedCycles uint64
	ctl         struct {
		stop   bool
		halted bool
	}
}

// Partitions returns the effective partition count of this system's
// kernel (1 = sequential).
func (s *System) Partitions() int {
	if s.par == nil {
		return 1
	}
	return s.par.nParts
}

// FusedCycles returns how many cycles the partitioned kernel executed in
// single-barrier fused mode (0 on a sequential system). Purely a
// host-side execution statistic; simulated results are unaffected.
func (s *System) FusedCycles() uint64 {
	if s.par == nil {
		return 0
	}
	return s.par.fusedCycles
}

// initPartitions builds the partition shards and rewires the
// BankReq/CoreResp wake hooks to the owning partition's sets. Tiles are
// split into contiguous blocks; cores and banks follow their tile, so
// every same-tile data path (core→tile router→bank and back) stays
// inside one partition.
//
// Called either at construction (s.slots == nil: every core starts
// runnable, nothing is in flight) or mid-run by the adaptive
// PartitionsAuto calibration, in which case the sequential scheduler's
// live state — runnable set, pending timed wakes, halted counts, bank
// and delivery membership, fabric dirty bits (carried by Shard) — is
// migrated into the per-partition structures at a cycle boundary, so
// the simulated state evolution is unchanged.
func (s *System) initPartitions(nParts int) {
	topo := s.Cfg.Topo
	nTiles := topo.NumTiles()
	cpt, bpt := topo.CoresPerTile, topo.BanksPerTile
	par := &parKernel{nParts: nParts, barrier: engine.NewBarrier(nParts)}
	tilePart := make([]int, nTiles)
	migrate := s.slots != nil
	for pi := 0; pi < nParts; pi++ {
		t0, t1 := pi*nTiles/nParts, (pi+1)*nTiles/nParts
		p := &partition{
			id:    pi,
			core0: t0 * cpt, core1: t1 * cpt,
			bank0: t0 * bpt, bank1: t1 * bpt,
			slots: engine.NewScheduler(len(s.Cores)),
			banks: engine.MakeActiveSet(len(s.Banks)),
			deliv: engine.MakeActiveSet(len(s.Cores)),
		}
		for t := t0; t < t1; t++ {
			tilePart[t] = pi
		}
		for c := p.core0; c < p.core1; c++ {
			switch {
			case !migrate:
				p.slots.Wake(c)
			case s.slots.Runnable(c):
				p.slots.Wake(c)
			case s.Cores[c].Halted():
				// Parked halted core: already counted by the sequential
				// kernel's parkCore, so it joins as halted rather than
				// being re-parked.
				p.nHalted++
			}
		}
		for b := p.bank0; b < p.bank1; b++ {
			b := b
			s.Fabric.BankReq[b].OnPush(func() { p.banks.Add(b) })
		}
		for c := p.core0; c < p.core1; c++ {
			c := c
			s.Fabric.CoreResp[c].OnPush(func() { p.deliv.Add(c) })
		}
		par.parts = append(par.parts, p)
	}
	if migrate {
		// Move the live scheduler state into the owning partitions.
		s.slots.PendingWakes(func(id int, at engine.Cycle) {
			par.parts[tilePart[id/cpt]].slots.WakeAt(id, at)
		})
		for _, b := range s.banks.AppendTo(nil) {
			par.parts[tilePart[b/bpt]].banks.Add(b)
		}
		for _, c := range s.deliv.AppendTo(nil) {
			par.parts[tilePart[c/cpt]].deliv.Add(c)
		}
		// Carry the wake-heap totals so obs counters stay monotonic;
		// migrated entries are moves, not new pushes.
		s.heapCarryPushes = s.slots.HeapPushes
		s.heapCarryPops = s.slots.HeapPops
		for _, p := range par.parts {
			p.slots.HeapPushes = 0
		}
		s.slots = nil
		s.banks = engine.ActiveSet{}
		s.deliv = engine.ActiveSet{}
		s.nHalted = 0
	}
	s.Fabric.Shard(nParts, func(t int) int { return tilePart[t] })
	// Trivially true at construction; after a migration the carried
	// dirty bits decide.
	par.fused = FusedCyclesEnabled && s.Fabric.QuietCrossTile()
	par.cycleEnd = func() {
		s.parFold()
		if par.decide != nil {
			par.decide()
		}
	}
	s.lastPubParts = make([]KernelStats, nParts)
	s.par = par
}

// parStepA runs a partition's phase 1 — timer wakes and core-slot ticks
// (Qnode then Core, ascending global ID) — then snapshots the
// partition's dirty routers for the fabric steps. Everything it writes
// is partition-local except tile-router wakes from CoreReq pushes,
// which land in the atomic dirty set of the core's own tile.
func (s *System) parStepA(p *partition) {
	now := s.Clock.Now()
	p.cParks = 0
	p.slots.WakeDue(now, func(id int) { s.Cores[id].Unpark() })
	p.slotScratch = p.slots.AppendRunnable(p.slotScratch[:0])
	for _, i := range p.slotScratch {
		q, c := s.Qnodes[i], s.Cores[i]
		q.Tick()
		if !c.Parked() {
			c.Tick()
			if c.Quiescent() {
				s.parParkCore(p, i)
			}
		}
		if c.Parked() && !q.Busy() {
			p.slots.Sleep(i)
		}
	}
	p.cSlots = len(p.slotScratch)
	s.Fabric.SnapshotShard(p.id, &p.fsc)
}

// parParkCore is parkCore against the owning partition's scheduler and
// counters.
func (s *System) parParkCore(p *partition, i int) {
	c := s.Cores[i]
	p.stats.Parks++
	p.cParks++
	if c.State() == cpu.Halted {
		p.nHalted++
	}
	if wakeAt := c.Park(); wakeAt >= 0 {
		p.slots.WakeAt(i, wakeAt)
	}
}

// parStepD runs a partition's tail of the cycle: group routers, banks
// with queued work (phase 3), and response delivery (phase 4). The
// three touch disjoint FIFO sets — group routers push tile-ingress
// (consumed next cycle), banks pop BankReq and push BankResp, delivery
// pops CoreResp — and every one of those FIFOs is partition-local, so
// no barrier is needed between them.
func (s *System) parStepD(p *partition) {
	p.cRouters += s.Fabric.TickShardClass(&p.fsc, noc.ClassGroup)

	p.bankScratch = p.banks.AppendTo(p.bankScratch[:0])
	for _, b := range p.bankScratch {
		bank := s.Banks[b]
		bank.Tick()
		if bank.Idle() {
			p.banks.Remove(b)
		}
	}

	p.delScratch = p.deliv.AppendTo(p.delScratch[:0])
	for _, i := range p.delScratch {
		if resp, ok := s.Fabric.CoreResp[i].Pop(); ok {
			if out, ok := s.Qnodes[i].Deliver(resp); ok {
				s.Cores[i].Deliver(out) // unparks; executes next cycle
				p.slots.Wake(i)
			}
			if s.Qnodes[i].Busy() {
				p.slots.Wake(i) // protocol traffic to drain (wake-up bounce)
			}
		}
		if s.Fabric.CoreResp[i].Len() == 0 {
			p.deliv.Remove(i)
		}
	}
	p.cBanks = len(p.bankScratch)
	p.cDeliv = len(p.delScratch)
	p.stats.SlotsTicked += uint64(p.cSlots)
	p.stats.RoutersTicked += uint64(p.cRouters)
	p.stats.BanksTicked += uint64(p.cBanks)
	p.stats.DelivTicked += uint64(p.cDeliv)
}

// parFold is the leader's end-of-cycle bookkeeping: fold every
// partition's per-cycle counts into the aggregate Kernel stats (so
// System.Kernel reads exactly as under the sequential kernel) and
// advance the clock. Runs inside the final barrier with every partition
// quiesced.
func (s *System) parFold() {
	k := &s.Kernel
	k.Ticks++
	for _, p := range s.par.parts {
		k.SlotsTicked += uint64(p.cSlots)
		k.RoutersTicked += uint64(p.cRouters)
		k.BanksTicked += uint64(p.cBanks)
		k.DelivTicked += uint64(p.cDeliv)
		k.Parks += uint64(p.cParks)
	}
	s.Clock.Advance()
	par := s.par
	if par.fused {
		par.fusedCycles++
	}
	// Decide here — with every partition quiesced — whether the next
	// cycle can fuse its four barriers into this one.
	par.fused = FusedCyclesEnabled && s.Fabric.QuietCrossTile()
}

// parCycleWorker runs one partition's side of successive cycles until
// the leader's decide hook stops the run.
//
// A fused cycle runs the same steps with the three intermediate barriers
// elided. That is sound because the fuse decision (taken by the leader
// inside the previous end-of-cycle barrier) certifies every link arbiter
// and group router clean, and within the cycle nothing makes them tick:
//
//   - step A and the tile ticks write cross-partition only into
//     link-arbiter input FIFOs (single producer per FIFO: the owning
//     tile router) and the atomic dirty bitsets; the arbiters
//     themselves never tick, so no FIFO gains a second toucher.
//   - the ClassLink pass is skipped outright: under partition skew its
//     snapshot may contain an arbiter dirtied by another partition's
//     tile ticks *this* cycle, which the barriered schedule — like the
//     sequential kernel — would only tick next cycle.
//   - the ClassGroup pass in step D runs on a provably empty snapshot
//     (group routers are fed only by link arbiters, which did not tick).
//
// Every other FIFO pair is partition-local, and tile-ingress pushes from
// the previous cycle's group ticks were sealed by that cycle's end
// barrier — so the state evolution is bit-identical to the four-barrier
// schedule, which the parity suite checks with the knob in both
// positions.
func (s *System) parCycleWorker(p *partition) {
	par := s.par
	bar := par.barrier
	for {
		if par.fused {
			s.parStepA(p)
			p.cRouters = s.Fabric.TickShardClass(&p.fsc, noc.ClassTile)
			s.parStepD(p)
		} else {
			s.parStepA(p)
			bar.Wait(nil)
			p.cRouters = s.Fabric.TickShardClass(&p.fsc, noc.ClassTile)
			bar.Wait(nil)
			p.cRouters += s.Fabric.TickShardClass(&p.fsc, noc.ClassLink)
			bar.Wait(nil)
			s.parStepD(p)
		}
		bar.Wait(par.cycleEnd)
		if par.ctl.stop {
			return
		}
	}
}

// parTickInline executes exactly one partitioned cycle on the calling
// goroutine: the same step structure with the barriers degenerated to
// loop boundaries. Bit-identical to the worker version (the steps, not
// the threads, define the semantics), it backs Tick on a partitioned
// system so per-cycle drivers keep working.
func (s *System) parTickInline() {
	parts := s.par.parts
	for _, p := range parts {
		s.parStepA(p)
	}
	for _, p := range parts {
		p.cRouters = s.Fabric.TickShardClass(&p.fsc, noc.ClassTile)
	}
	for _, p := range parts {
		p.cRouters += s.Fabric.TickShardClass(&p.fsc, noc.ClassLink)
	}
	for _, p := range parts {
		s.parStepD(p)
	}
	s.parFold()
}

// parDrive executes cycles — partition 0 on the calling goroutine, one
// goroutine per further partition — until decide (run at every
// end-of-cycle barrier, with all partitions quiesced and the clock
// already advanced) sets ctl.stop. Workers live for one drive call, so
// a Run spawns its partitions once, not per cycle.
func (s *System) parDrive(decide func()) {
	par := s.par
	par.ctl.stop = false
	par.decide = decide
	// Refresh the fuse decision single-threaded (the knob may have been
	// toggled since the last fold computed it).
	par.fused = FusedCyclesEnabled && s.Fabric.QuietCrossTile()
	var wg sync.WaitGroup
	for i := 1; i < par.nParts; i++ {
		p := par.parts[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.parCycleWorker(p)
		}()
	}
	s.parCycleWorker(par.parts[0])
	wg.Wait()
	par.decide = nil
}

// parBusy is busy() over the partitioned state: any runnable slot,
// queued bank work, pending delivery, or dirty router anywhere. Only
// called with the partitions quiesced (between cycles or drives).
func (s *System) parBusy() bool {
	for _, p := range s.par.parts {
		if p.slots.AnyRunnable() || !p.banks.Empty() || !p.deliv.Empty() {
			return true
		}
	}
	return s.Fabric.ShardBusy()
}

// parNextWake returns the earliest pending timed wake-up across all
// partition heaps.
func (s *System) parNextWake() (engine.Cycle, bool) {
	var best engine.Cycle
	ok := false
	for _, p := range s.par.parts {
		if w, o := p.slots.NextWake(); o && (!ok || w < best) {
			best, ok = w, true
		}
	}
	return best, ok
}

// parNHalted sums the partitions' halted-core counts.
func (s *System) parNHalted() int {
	n := 0
	for _, p := range s.par.parts {
		n += p.nHalted
	}
	return n
}

// runPar is Run on a partitioned system: the same
// tick/fast-forward/stop decisions as the sequential loop, taken by the
// cycle leader inside the end-of-cycle barrier.
func (s *System) runPar(n int) {
	target := s.Clock.Now() + engine.Cycle(n)
	if s.Clock.Now() >= target {
		return
	}
	// Pre-first-cycle decision, mirroring the head of the sequential
	// loop (taken single-threaded, before any worker exists).
	if !s.parBusy() {
		w, ok := s.parNextWake()
		if !ok || w >= target {
			s.fastForward(target)
			return
		}
		s.fastForward(w)
	}
	s.parDrive(func() {
		if s.Clock.Now() >= target {
			s.par.ctl.stop = true
			return
		}
		if s.parBusy() {
			return
		}
		w, ok := s.parNextWake()
		if !ok || w >= target {
			s.fastForward(target)
			s.par.ctl.stop = true
			return
		}
		s.fastForward(w)
	})
}

// runParUntilHalted is RunUntilHalted on a partitioned system,
// replicating the sequential loop's decision order exactly (halt check
// before the busy/fast-forward check, no final fast-forward when every
// core halted mid-budget).
func (s *System) runParUntilHalted(maxCycles int) bool {
	nCores := len(s.Cores)
	target := s.Clock.Now() + engine.Cycle(maxCycles)
	done := func() bool { return s.parNHalted() == nCores }
	if s.Clock.Now() >= target {
		s.fastForward(target)
		return done()
	}
	if done() {
		return true
	}
	if !s.parBusy() {
		w, ok := s.parNextWake()
		if !ok || w >= target {
			s.fastForward(target)
			return done()
		}
		s.fastForward(w)
	}
	s.parDrive(func() {
		ctl := &s.par.ctl
		if s.Clock.Now() >= target {
			s.fastForward(target)
			ctl.stop = true
			return
		}
		if done() {
			ctl.stop, ctl.halted = true, true
			return
		}
		if !s.parBusy() {
			w, ok := s.parNextWake()
			if !ok || w >= target {
				s.fastForward(target)
				ctl.stop = true
				return
			}
			s.fastForward(w)
		}
	})
	return s.par.ctl.halted || done()
}

// TickParallel advances the system by one cycle through the partitioned
// kernel's worker goroutines — the parallel counterpart of Tick, and
// the unit the parity suite compares against the sequential kernel
// cycle by cycle. On a sequential system (one partition) it is exactly
// Tick. Drive any one System exclusively through the scheduled entry
// points (Tick/TickParallel/Run/RunUntilHalted, which share state) or
// through TickDense, never a mix.
func (s *System) TickParallel() {
	if s.par == nil {
		s.Tick()
		return
	}
	s.parDrive(func() { s.par.ctl.stop = true })
}

// RunParallel advances n cycles through the partitioned kernel,
// fast-forwarding idle spans like Run (on a partitioned system Run
// already dispatches here; on a sequential one this is Run). Results
// are bit-identical to the sequential kernel for any partition count.
func (s *System) RunParallel(n int) { s.Run(n) }
