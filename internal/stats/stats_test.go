package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.Add("alpha", "1")
	tb.Add("beta-long-name", "22")
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	// Columns align: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		if len(l) <= idx {
			t.Errorf("row shorter than header: %q", l)
		}
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[4], "beta-long-name") {
		t.Errorf("rows out of order:\n%s", out)
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Addf(42, 3.5)
	if tb.Rows[0][0] != "42" || tb.Rows[0][1] != "3.5" {
		t.Errorf("Addf rows = %v", tb.Rows)
	}
}

func TestTableTruncatesExtraCells(t *testing.T) {
	tb := NewTable("", "only")
	tb.Add("a", "dropped")
	if len(tb.Rows[0]) != 1 {
		t.Errorf("row width = %d, want 1", len(tb.Rows[0]))
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "x", "y")
	tb.Add("1", "2")
	want := "x,y\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.Add("a,b", `says "hi"`)
	tb.Add("plain", "line\nbreak")
	want := "name,note\n" +
		`"a,b","says ""hi"""` + "\n" +
		"plain,\"line\nbreak\"\n"
	if got := tb.CSV(); got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVQuotedHeader(t *testing.T) {
	tb := NewTable("", "a,b", "c")
	tb.Add("1", "2")
	if got := tb.CSV(); got != "\"a,b\",c\n1,2\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestF(t *testing.T) {
	if F(3.14159, 2) != "3.14" || F(1, 0) != "1" {
		t.Error("F formatting wrong")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.50x" {
		t.Errorf("Ratio = %q", Ratio(3, 2))
	}
	if Ratio(1, 0) != "-" {
		t.Errorf("Ratio by zero = %q", Ratio(1, 0))
	}
}

// A headerless table (a sweep scenario may expand to zero series) must
// render its title without panicking on the zero-width separator.
func TestHeaderlessTable(t *testing.T) {
	tbl := NewTable("only title")
	if got := tbl.String(); got != "only title\n" {
		t.Errorf("headerless String() = %q", got)
	}
	if got := NewTable("").String(); got != "" {
		t.Errorf("empty table String() = %q", got)
	}
}

func TestHeaderlessCSV(t *testing.T) {
	if got := NewTable("only title").CSV(); got != "" {
		t.Errorf("headerless CSV() = %q, want empty", got)
	}
}
