// Package stats renders experiment results as aligned text tables and CSV,
// the output format of the cmd tools and EXPERIMENTS.md.
package stats

import (
	"fmt"
	"strings"
)

// Table is a simple text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells beyond the header width are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted values (fmt.Sprint on each).
func (t *Table) Addf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprint(c))
	}
	t.Add(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	// A headerless table (e.g. a scenario that expanded to no series)
	// renders as just its title: no header line, separator, or rows.
	if len(widths) == 0 {
		return sb.String()
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as RFC 4180 comma-separated values: cells
// containing commas, quotes or line breaks are quoted, with embedded
// quotes doubled, so the output loads in standard CSV parsers.
func (t *Table) CSV() string {
	// A headerless table renders as empty CSV, not a lone newline
	// (mirroring String()'s zero-column handling).
	if len(t.Header) == 0 && len(t.Rows) == 0 {
		return ""
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvCell(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// csvCell quotes a cell when RFC 4180 requires it.
func csvCell(c string) string {
	if !strings.ContainsAny(c, ",\"\n\r") {
		return c
	}
	return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Ratio formats a/b as "x.xx×", or "-" when b is zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
