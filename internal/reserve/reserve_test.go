package reserve

import (
	"testing"

	"repro/internal/bus"
)

// fakeStore is a map-backed Storage for adapter unit tests.
type fakeStore struct {
	words map[uint32]uint32
}

func newFakeStore() *fakeStore { return &fakeStore{words: map[uint32]uint32{}} }

func (f *fakeStore) Read(addr uint32) uint32     { return f.words[addr] }
func (f *fakeStore) Write(addr uint32, v uint32) { f.words[addr] = v }
func (f *fakeStore) BankID() int                 { return 0 }

func lr(core int, addr uint32) bus.Request {
	return bus.Request{Op: bus.LR, Addr: addr, Src: core}
}
func sc(core int, addr, data uint32) bus.Request {
	return bus.Request{Op: bus.SC, Addr: addr, Data: data, Src: core}
}
func lrw(core int, addr uint32) bus.Request {
	return bus.Request{Op: bus.LRWait, Addr: addr, Src: core}
}
func scw(core int, addr, data uint32) bus.Request {
	return bus.Request{Op: bus.SCWait, Addr: addr, Data: data, Src: core}
}
func mw(core int, addr, expected uint32) bus.Request {
	return bus.Request{Op: bus.MWait, Addr: addr, Data: expected, Src: core}
}
func st(core int, addr, data uint32) bus.Request {
	return bus.Request{Op: bus.Store, Addr: addr, Data: data, Src: core}
}

func TestSingleSlotBasicLRSC(t *testing.T) {
	s := newFakeStore()
	s.Write(0, 41)
	a := NewSingleSlot()
	r := a.Handle(lr(0, 0), s)
	if len(r) != 1 || !r[0].OK || r[0].Data != 41 {
		t.Fatalf("LR = %v", r)
	}
	r = a.Handle(sc(0, 0, 42), s)
	if len(r) != 1 || !r[0].OK {
		t.Fatalf("SC = %v", r)
	}
	if s.Read(0) != 42 {
		t.Errorf("memory = %d, want 42", s.Read(0))
	}
	// Second SC without a new LR fails.
	r = a.Handle(sc(0, 0, 43), s)
	if r[0].OK {
		t.Error("SC without reservation succeeded")
	}
}

func TestSingleSlotOccupancy(t *testing.T) {
	s := newFakeStore()
	a := NewSingleSlot()
	a.Handle(lr(0, 0), s)
	// The slot is held: core 1's LR reads the value but gets no
	// reservation (MemPool's blocking single slot).
	if r := a.Handle(lr(1, 0), s); len(r) != 1 || !r[0].OK {
		t.Fatalf("second LR = %v, want a plain read", r)
	}
	if r := a.Handle(sc(1, 0, 9), s); r[0].OK {
		t.Error("reservation-less SC succeeded")
	}
	// The holder is not displaced.
	if r := a.Handle(sc(0, 0, 1), s); !r[0].OK {
		t.Error("holder's SC failed")
	}
	if s.Read(0) != 1 {
		t.Errorf("memory = %d, want 1", s.Read(0))
	}
	// The holder's SC freed the slot: core 1 can now reserve.
	a.Handle(lr(1, 0), s)
	if r := a.Handle(sc(1, 0, 2), s); !r[0].OK {
		t.Error("SC after slot freed failed")
	}
	if s.Read(0) != 2 {
		t.Errorf("memory = %d, want 2", s.Read(0))
	}
}

func TestSingleSlotFailedSCFreesSlot(t *testing.T) {
	s := newFakeStore()
	a := NewSingleSlot()
	a.Handle(lr(0, 0), s)
	a.Handle(st(2, 0, 7), s) // invalidates, slot still held by core 0
	if r := a.Handle(sc(0, 0, 1), s); r[0].OK {
		t.Error("SC succeeded after invalidation")
	}
	// The failed SC released the slot.
	a.Handle(lr(1, 0), s)
	if r := a.Handle(sc(1, 0, 8), s); !r[0].OK {
		t.Error("slot not freed by the holder's failed SC")
	}
}

func TestSingleSlotHolderCanRetarget(t *testing.T) {
	s := newFakeStore()
	a := NewSingleSlot()
	a.Handle(lr(0, 0), s)
	a.Handle(lr(0, 4), s) // holder moves its reservation
	if r := a.Handle(sc(0, 4, 5), s); !r[0].OK {
		t.Error("retargeted SC failed")
	}
	if s.Read(4) != 5 {
		t.Error("retargeted SC did not write")
	}
}

func TestSingleSlotInvalidationByStore(t *testing.T) {
	s := newFakeStore()
	a := NewSingleSlot()
	a.Handle(lr(0, 0), s)
	a.Handle(st(1, 0, 9), s)
	if r := a.Handle(sc(0, 0, 1), s); r[0].OK {
		t.Error("SC after intervening store succeeded")
	}
	if s.Read(0) != 9 {
		t.Error("intervening store lost")
	}
	// Store to a different address must not invalidate.
	a.Handle(lr(0, 0), s)
	a.Handle(st(1, 4, 9), s)
	if r := a.Handle(sc(0, 0, 1), s); !r[0].OK {
		t.Error("SC invalidated by unrelated store")
	}
}

func TestSingleSlotRefusesLRWait(t *testing.T) {
	s := newFakeStore()
	a := NewSingleSlot()
	if r := a.Handle(lrw(0, 0), s); len(r) != 1 || r[0].OK {
		t.Errorf("LRwait on single-slot = %v, want immediate refusal", r)
	}
	if r := a.Handle(scw(0, 0, 1), s); r[0].OK {
		t.Error("SCwait on single-slot succeeded")
	}
}

func TestTableIndependentReservations(t *testing.T) {
	s := newFakeStore()
	a := NewTable(4)
	a.Handle(lr(0, 0), s)
	a.Handle(lr(1, 0), s) // does NOT displace core 0
	if r := a.Handle(sc(0, 0, 10), s); !r[0].OK {
		t.Error("core 0 SC failed despite table entry")
	}
	// Core 0's successful SC invalidated core 1's reservation.
	if r := a.Handle(sc(1, 0, 20), s); r[0].OK {
		t.Error("core 1 SC succeeded after core 0's write")
	}
	if s.Read(0) != 10 {
		t.Errorf("memory = %d, want 10", s.Read(0))
	}
}

func TestTableDifferentAddresses(t *testing.T) {
	s := newFakeStore()
	a := NewTable(4)
	a.Handle(lr(0, 0), s)
	a.Handle(lr(1, 4), s)
	if r := a.Handle(sc(1, 4, 1), s); !r[0].OK {
		t.Error("unrelated reservation was disturbed")
	}
	if r := a.Handle(sc(0, 0, 1), s); !r[0].OK {
		t.Error("reservation lost without any write to its address")
	}
}

func TestWaitQueueImmediateGrant(t *testing.T) {
	s := newFakeStore()
	s.Write(0, 5)
	a := NewWaitQueue(8)
	r := a.Handle(lrw(0, 0), s)
	if len(r) != 1 || !r[0].OK || r[0].Data != 5 {
		t.Fatalf("first LRwait = %v, want immediate grant of 5", r)
	}
	r = a.Handle(scw(0, 0, 6), s)
	if len(r) != 1 || !r[0].OK {
		t.Fatalf("SCwait = %v", r)
	}
	if s.Read(0) != 6 {
		t.Errorf("memory = %d, want 6", s.Read(0))
	}
	if a.Pending() != 0 {
		t.Errorf("slots leaked: %d", a.Pending())
	}
}

func TestWaitQueueOrderedGrants(t *testing.T) {
	s := newFakeStore()
	a := NewWaitQueue(8)
	if r := a.Handle(lrw(0, 0), s); len(r) != 1 {
		t.Fatal("core 0 not granted")
	}
	if r := a.Handle(lrw(1, 0), s); len(r) != 0 {
		t.Fatalf("core 1 got premature response %v", r)
	}
	if r := a.Handle(lrw(2, 0), s); len(r) != 0 {
		t.Fatal("core 2 got premature response")
	}
	// Core 0 finishes: core 1 must be granted in the same handling.
	r := a.Handle(scw(0, 0, 100), s)
	if len(r) != 2 {
		t.Fatalf("SCwait produced %d responses, want ack+grant", len(r))
	}
	if r[0].Dst != 0 || !r[0].OK {
		t.Errorf("ack = %v", r[0])
	}
	if r[1].Dst != 1 || !r[1].OK || r[1].Data != 100 {
		t.Errorf("grant = %v, want core 1 with value 100", r[1])
	}
	// Core 2 is served after core 1, not before.
	r = a.Handle(scw(1, 0, 200), s)
	if len(r) != 2 || r[1].Dst != 2 || r[1].Data != 200 {
		t.Fatalf("second handoff = %v", r)
	}
}

func TestWaitQueueInterveningStoreFailsSCWait(t *testing.T) {
	s := newFakeStore()
	a := NewWaitQueue(8)
	a.Handle(lrw(0, 0), s)
	a.Handle(lrw(1, 0), s)
	a.Handle(st(5, 0, 77), s) // invalidates core 0's reservation
	r := a.Handle(scw(0, 0, 1), s)
	if r[0].OK {
		t.Error("SCwait succeeded despite intervening store")
	}
	// The queue still advances: core 1 granted with the stored value.
	if len(r) != 2 || r[1].Dst != 1 || r[1].Data != 77 {
		t.Fatalf("promotion after failed SCwait = %v", r)
	}
	if s.Read(0) != 77 {
		t.Error("failed SCwait overwrote memory")
	}
	// Core 1's fresh reservation is valid.
	if r := a.Handle(scw(1, 0, 88), s); !r[0].OK {
		t.Error("promoted core's SCwait failed")
	}
}

func TestWaitQueueFullRefusal(t *testing.T) {
	s := newFakeStore()
	a := NewWaitQueue(2)
	a.Handle(lrw(0, 0), s)
	a.Handle(lrw(1, 0), s)
	r := a.Handle(lrw(2, 0), s)
	if len(r) != 1 || r[0].OK {
		t.Fatalf("LRwait into full queue = %v, want immediate refusal", r)
	}
	if a.Stats.Refused != 1 {
		t.Errorf("refusals = %d, want 1", a.Stats.Refused)
	}
	// A refused core's SCwait fails and does not disturb the queue.
	if r := a.Handle(scw(2, 0, 9), s); r[0].OK {
		t.Error("refused core's SCwait succeeded")
	}
	if a.Pending() != 2 {
		t.Errorf("queue corrupted: %d slots", a.Pending())
	}
}

func TestWaitQueuePerAddressIndependence(t *testing.T) {
	s := newFakeStore()
	a := NewWaitQueue(8)
	r0 := a.Handle(lrw(0, 0), s)
	r1 := a.Handle(lrw(1, 4), s)
	if len(r0) != 1 || len(r1) != 1 {
		t.Fatal("independent addresses were serialized")
	}
	if r := a.Handle(scw(1, 4, 1), s); !r[0].OK {
		t.Error("addr-4 SCwait failed")
	}
	if r := a.Handle(scw(0, 0, 1), s); !r[0].OK {
		t.Error("addr-0 SCwait failed")
	}
}

func TestWaitQueueMwaitMonitors(t *testing.T) {
	s := newFakeStore()
	s.Write(0, 3)
	a := NewWaitQueue(8)
	// Expected matches current value: monitor until it changes.
	if r := a.Handle(mw(0, 0, 3), s); len(r) != 0 {
		t.Fatalf("Mwait fired early: %v", r)
	}
	// A store of the same value does not wake.
	if r := a.Handle(st(1, 0, 3), s); len(r) != 1 {
		t.Fatalf("same-value store woke the monitor: %v", r)
	}
	// A real change wakes with the new value.
	r := a.Handle(st(1, 0, 9), s)
	if len(r) != 2 || r[1].Dst != 0 || r[1].Data != 9 || !r[1].OK {
		t.Fatalf("store did not wake monitor: %v", r)
	}
	if a.Pending() != 0 {
		t.Error("monitor slot leaked")
	}
}

func TestWaitQueueMwaitImmediateWhenChanged(t *testing.T) {
	s := newFakeStore()
	s.Write(0, 10)
	a := NewWaitQueue(8)
	r := a.Handle(mw(0, 0, 3), s) // expected 3, actual 10
	if len(r) != 1 || !r[0].OK || r[0].Data != 10 {
		t.Fatalf("Mwait on already-changed value = %v", r)
	}
}

func TestWaitQueueMwaitCascade(t *testing.T) {
	s := newFakeStore()
	s.Write(0, 0)
	a := NewWaitQueue(8)
	// Three cores monitor for a change away from 0.
	a.Handle(mw(0, 0, 0), s)
	a.Handle(mw(1, 0, 0), s)
	a.Handle(mw(2, 0, 0), s)
	r := a.Handle(st(9, 0, 1), s)
	// Store ack + all three wakes (the whole queue wakes, Section IV-B).
	if len(r) != 4 {
		t.Fatalf("wake cascade produced %d responses, want 4", len(r))
	}
	order := []int{r[1].Dst, r[2].Dst, r[3].Dst}
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("wake order = %v, want FIFO [0 1 2]", order)
	}
}

func TestWaitQueueMixedLRwaitMwait(t *testing.T) {
	s := newFakeStore()
	s.Write(0, 0)
	a := NewWaitQueue(8)
	a.Handle(lrw(0, 0), s)   // granted
	a.Handle(mw(1, 0, 0), s) // waits behind core 0
	r := a.Handle(scw(0, 0, 5), s)
	// Ack + Mwait fires (value 5 != expected 0).
	if len(r) != 2 || r[1].Dst != 1 || r[1].Data != 5 {
		t.Fatalf("mixed queue handoff = %v", r)
	}
}

func TestWaitQueueSCWithoutLRFails(t *testing.T) {
	s := newFakeStore()
	a := NewWaitQueue(4)
	if r := a.Handle(scw(0, 0, 1), s); r[0].OK {
		t.Error("SCwait without reservation succeeded")
	}
	if r := a.Handle(sc(0, 0, 1), s); r[0].OK {
		t.Error("plain SC on waitqueue unit succeeded")
	}
}
