// Package reserve implements the reservation policies attached to memory
// banks:
//
//   - SingleSlot: MemPool's lightweight LRSC with one reservation per bank
//     (a new LR displaces the previous reservation — spurious SC failures
//     under contention).
//   - Table: an ATUN-style reservation table with one entry per core
//     (non-blocking LRSC).
//   - WaitQueue: the paper's LRSCwait_q — a per-bank queue of capacity q
//     holding outstanding LRwait/Mwait reservations, served in order per
//     address. q = number of cores gives LRSCwait_ideal.
//
// Colibri, the scalable distributed implementation, lives in its own
// package (internal/colibri).
package reserve

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/mem"
)

// Stats counts policy-level events, shared by all adapters in this
// package. It is the shared mem.AdapterStats vocabulary, so every
// adapter here reports through mem.StatsReporter.
type Stats = mem.AdapterStats

// SingleSlot is MemPool's baseline LRSC unit: a single reservation slot
// per bank. The slot is granted to the first LR and held until the
// holder's SC arrives (success or failure) or a write invalidates it;
// an LR from another core meanwhile reads the value but receives no
// reservation — this is the "sacrifices the non-blocking property"
// behaviour the paper describes, and it is what keeps some SCs succeeding
// under extreme contention (a displacing slot would collapse entirely).
// An LR from the holder itself re-targets the reservation.
type SingleSlot struct {
	valid bool // a reservation is armed (SC from holder will succeed)
	held  bool // the slot is occupied until the holder's SC arrives
	core  int
	addr  uint32
	Stats Stats
}

// NewSingleSlot returns an empty single-reservation adapter.
func NewSingleSlot() *SingleSlot { return &SingleSlot{} }

// Name implements mem.Adapter.
func (a *SingleSlot) Name() string { return "lrsc-single" }

// AdapterStats implements mem.StatsReporter.
func (a *SingleSlot) AdapterStats() mem.AdapterStats { return a.Stats }

// Handle implements mem.Adapter.
func (a *SingleSlot) Handle(req bus.Request, s mem.Storage) []bus.Response {
	return a.HandleAppend(req, s, nil)
}

// HandleAppend implements mem.AppendAdapter.
func (a *SingleSlot) HandleAppend(req bus.Request, s mem.Storage, out []bus.Response) []bus.Response {
	if resp, wrote, ok := mem.HandleBasic(req, s); ok {
		if wrote && a.valid && a.addr == req.Addr {
			a.valid = false
			a.Stats.Invalidations++
		}
		return append(out, resp)
	}
	switch req.Op {
	case bus.LR:
		if !a.held || a.core == req.Src {
			a.held, a.valid = true, true
			a.core, a.addr = req.Src, req.Addr
			a.Stats.Grants++
			return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
				Data: s.Read(req.Addr), OK: true})
		}
		// Slot occupied by another core: read without a reservation.
		a.Stats.Refused++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: true})
	case bus.SC:
		if a.held && a.core == req.Src {
			// The holder's SC frees the slot whether or not the
			// reservation survived.
			ok := a.valid && a.addr == req.Addr
			a.held, a.valid = false, false
			if ok {
				s.Write(req.Addr, req.Data)
				a.Stats.SCSuccess++
				return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: true})
			}
			a.Stats.SCFail++
			return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
		}
		a.Stats.SCFail++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
	case bus.LRWait, bus.MWait:
		// Not supported by this unit: refuse (software retries via the
		// failing SCwait, same contract as a full LRSCwait queue).
		a.Stats.Refused++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: false})
	case bus.SCWait:
		a.Stats.SCFail++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
	case bus.WakeUpReq:
		return out
	}
	return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
}

// Table is an ATUN-style reservation table: one reservation entry per core,
// making LRSC non-blocking (no displacement). The hardware cost — an entry
// per core per bank — is what the paper's Table I shows scaling
// quadratically.
type Table struct {
	addr  []uint32
	valid []bool
	Stats Stats
}

// NewTable returns a reservation table for numCores cores.
func NewTable(numCores int) *Table {
	if numCores <= 0 {
		panic(fmt.Sprintf("reserve: NewTable(%d)", numCores))
	}
	return &Table{addr: make([]uint32, numCores), valid: make([]bool, numCores)}
}

// Name implements mem.Adapter.
func (a *Table) Name() string { return "lrsc-table" }

// AdapterStats implements mem.StatsReporter.
func (a *Table) AdapterStats() mem.AdapterStats { return a.Stats }

func (a *Table) invalidate(addr uint32) {
	for i := range a.valid {
		if a.valid[i] && a.addr[i] == addr {
			a.valid[i] = false
			a.Stats.Invalidations++
		}
	}
}

// Handle implements mem.Adapter.
func (a *Table) Handle(req bus.Request, s mem.Storage) []bus.Response {
	return a.HandleAppend(req, s, nil)
}

// HandleAppend implements mem.AppendAdapter.
func (a *Table) HandleAppend(req bus.Request, s mem.Storage, out []bus.Response) []bus.Response {
	if resp, wrote, ok := mem.HandleBasic(req, s); ok {
		if wrote {
			a.invalidate(req.Addr)
		}
		return append(out, resp)
	}
	switch req.Op {
	case bus.LR:
		a.addr[req.Src], a.valid[req.Src] = req.Addr, true
		a.Stats.Grants++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: true})
	case bus.SC:
		if a.valid[req.Src] && a.addr[req.Src] == req.Addr {
			s.Write(req.Addr, req.Data)
			a.invalidate(req.Addr) // clears own and competitors' reservations
			a.Stats.SCSuccess++
			return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: true})
		}
		a.Stats.SCFail++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
	case bus.LRWait, bus.MWait:
		a.Stats.Refused++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: false})
	case bus.SCWait:
		a.Stats.SCFail++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
	case bus.WakeUpReq:
		return out
	}
	return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
}
