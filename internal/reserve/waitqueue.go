package reserve

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/mem"
)

// slotState tracks a WaitQueue reservation slot's lifecycle.
type slotState uint8

const (
	// slotWaiting: the LRwait/Mwait is buffered; no response sent yet.
	slotWaiting slotState = iota
	// slotServedLR: the LRwait response was sent; the reservation is
	// armed until a write to the address or the matching SCwait.
	slotServedLR
	// slotServedMwait: the Mwait is at the head and monitoring the
	// address for a change away from its expected value.
	slotServedMwait
)

type slot struct {
	core     int
	addr     uint32
	op       bus.Op // bus.LRWait or bus.MWait
	expected uint32 // MWait only
	state    slotState
	resValid bool // slotServedLR only
}

// WaitQueue is the direct ("ideal" when capacity == number of cores)
// hardware implementation of LRSCwait from Section III: a per-bank queue
// of outstanding reservations, served strictly in arrival order per
// address. An LRwait arriving at a full queue is refused immediately
// (response with OK=false); software then retries, so LRSCwait_q
// degenerates gracefully into LRSC-style polling once contention exceeds
// q — exactly the behaviour Fig. 3 shows.
type WaitQueue struct {
	capacity int
	slots    []slot
	Stats    Stats
}

// NewWaitQueue returns a queue with the given total slot capacity.
func NewWaitQueue(capacity int) *WaitQueue {
	if capacity <= 0 {
		panic(fmt.Sprintf("reserve: NewWaitQueue(%d)", capacity))
	}
	return &WaitQueue{capacity: capacity}
}

// Name implements mem.Adapter.
func (a *WaitQueue) Name() string { return fmt.Sprintf("lrscwait-%d", a.capacity) }

// AdapterStats implements mem.StatsReporter.
func (a *WaitQueue) AdapterStats() mem.AdapterStats { return a.Stats }

// Capacity returns the total number of reservation slots.
func (a *WaitQueue) Capacity() int { return a.capacity }

// Pending returns the number of occupied slots (tests and tracing).
func (a *WaitQueue) Pending() int { return len(a.slots) }

func (a *WaitQueue) hasAddr(addr uint32) bool {
	for i := range a.slots {
		if a.slots[i].addr == addr {
			return true
		}
	}
	return false
}

func (a *WaitQueue) remove(idx int) {
	a.slots = append(a.slots[:idx], a.slots[idx+1:]...)
}

// promote serves the first waiting slot for addr, if any. Mwait slots whose
// value already changed fire immediately and promotion cascades.
func (a *WaitQueue) promote(addr uint32, s mem.Storage, out []bus.Response) []bus.Response {
	for {
		idx := -1
		for i := range a.slots {
			if a.slots[i].addr == addr && a.slots[i].state == slotWaiting {
				idx = i
				break
			}
		}
		if idx < 0 {
			return out
		}
		sl := &a.slots[idx]
		val := s.Read(addr)
		if sl.op == bus.LRWait {
			sl.state = slotServedLR
			sl.resValid = true
			a.Stats.Grants++
			return append(out, bus.Response{Dst: sl.core, Op: bus.LRWait,
				Addr: addr, Data: val, OK: true})
		}
		// Mwait: served. Fire immediately if the value already differs.
		if val != sl.expected {
			core := sl.core
			a.remove(idx)
			a.Stats.Grants++
			out = append(out, bus.Response{Dst: core, Op: bus.MWait,
				Addr: addr, Data: val, OK: true})
			continue // cascade to the next waiter
		}
		sl.state = slotServedMwait
		return out
	}
}

// onWrite runs the monitor logic after a committed write: invalidate a
// served LR reservation, fire a served Mwait whose value moved away from
// its expected value.
func (a *WaitQueue) onWrite(addr uint32, s mem.Storage, out []bus.Response) []bus.Response {
	for i := range a.slots {
		sl := &a.slots[i]
		if sl.addr != addr {
			continue
		}
		switch sl.state {
		case slotServedLR:
			if sl.resValid {
				sl.resValid = false
				a.Stats.Invalidations++
			}
		case slotServedMwait:
			if v := s.Read(addr); v != sl.expected {
				core := sl.core
				a.remove(i)
				a.Stats.Grants++
				out = append(out, bus.Response{Dst: core, Op: bus.MWait,
					Addr: addr, Data: v, OK: true})
				return a.promote(addr, s, out)
			}
		}
		// At most one served slot per address; waiting slots unaffected.
	}
	return out
}

// Handle implements mem.Adapter.
func (a *WaitQueue) Handle(req bus.Request, s mem.Storage) []bus.Response {
	return a.HandleAppend(req, s, nil)
}

// HandleAppend implements mem.AppendAdapter.
func (a *WaitQueue) HandleAppend(req bus.Request, s mem.Storage, out []bus.Response) []bus.Response {
	if resp, wrote, ok := mem.HandleBasic(req, s); ok {
		out = append(out, resp)
		if wrote {
			out = a.onWrite(req.Addr, s, out)
		}
		return out
	}
	switch req.Op {
	case bus.LRWait, bus.MWait:
		return a.handleWait(req, s, out)
	case bus.SCWait:
		return a.handleSCWait(req, s, out)
	case bus.LR, bus.SC:
		// Plain LRSC is replaced by LRSCwait on this unit; fail SCs so
		// mixed software falls back to its retry path.
		if req.Op == bus.LR {
			return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
				Data: s.Read(req.Addr), OK: false})
		}
		a.Stats.SCFail++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
	case bus.WakeUpReq:
		return out
	}
	return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
}

func (a *WaitQueue) handleWait(req bus.Request, s mem.Storage, out []bus.Response) []bus.Response {
	if len(a.slots) >= a.capacity {
		a.Stats.Refused++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: false})
	}
	if a.hasAddr(req.Addr) {
		// Someone is ahead of us: buffer, respond later.
		a.slots = append(a.slots, slot{core: req.Src, addr: req.Addr,
			op: req.Op, expected: req.Data, state: slotWaiting})
		return out
	}
	// Queue empty for this address: serve immediately.
	val := s.Read(req.Addr)
	if req.Op == bus.MWait {
		if val != req.Data {
			a.Stats.Grants++
			return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
				Data: val, OK: true})
		}
		a.slots = append(a.slots, slot{core: req.Src, addr: req.Addr,
			op: req.Op, expected: req.Data, state: slotServedMwait})
		return out
	}
	a.slots = append(a.slots, slot{core: req.Src, addr: req.Addr,
		op: req.Op, state: slotServedLR, resValid: true})
	a.Stats.Grants++
	return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr,
		Data: val, OK: true})
}

func (a *WaitQueue) handleSCWait(req bus.Request, s mem.Storage, out []bus.Response) []bus.Response {
	idx := -1
	for i := range a.slots {
		if a.slots[i].addr == req.Addr && a.slots[i].core == req.Src &&
			a.slots[i].state == slotServedLR {
			idx = i
			break
		}
	}
	if idx < 0 {
		// No served reservation for this core (refused LRwait, double
		// SCwait, or software bug): fail without disturbing the queue.
		a.Stats.SCFail++
		return append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false})
	}
	ok := a.slots[idx].resValid
	a.remove(idx)
	if ok {
		s.Write(req.Addr, req.Data)
		a.Stats.SCSuccess++
	} else {
		a.Stats.SCFail++
	}
	out = append(out, bus.Response{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: ok})
	// The SCwait yields the queue regardless of success: serve the next
	// reservation for this address.
	return a.promote(req.Addr, s, out)
}
