package engine

import (
	"sync"
	"testing"
)

// TestBarrierLeaderAction drives N goroutines through many rounds of a
// shared barrier and checks the two properties the partitioned kernel
// relies on: the leader action runs exactly once per round, and no
// participant enters round r+1 before the round-r action ran (the
// action's observations are of a fully quiesced round).
func TestBarrierLeaderAction(t *testing.T) {
	const workers, rounds = 7, 200
	b := NewBarrier(workers)
	var leaderRuns int // written only inside the leader action
	perRound := make([]int, rounds)
	counts := make([][]int, workers) // counts[w][r]: w's increments seen at round r's action
	for w := range counts {
		counts[w] = make([]int, rounds)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				counts[w][r]++
				b.Wait(func() {
					leaderRuns++
					for v := 0; v < workers; v++ {
						perRound[r] += counts[v][r]
					}
				})
			}
		}(w)
	}
	wg.Wait()
	if leaderRuns != rounds {
		t.Fatalf("leader action ran %d times, want %d", leaderRuns, rounds)
	}
	for r, got := range perRound {
		if got != workers {
			t.Fatalf("round %d: leader saw %d arrivals, want %d", r, got, workers)
		}
	}
}

// TestBarrierSingleParticipant: with one participant the barrier must be
// a plain function call (the P=1 partitioned kernel).
func TestBarrierSingleParticipant(t *testing.T) {
	b := NewBarrier(1)
	ran := 0
	for i := 0; i < 10; i++ {
		b.Wait(func() { ran++ })
		b.Wait(nil)
	}
	if ran != 10 {
		t.Fatalf("action ran %d times, want 10", ran)
	}
}

// TestAtomicSetConcurrent hammers one set from several goroutines adding
// disjoint strided IDs (the cross-partition wake pattern) and checks the
// final membership is the union, then that removes leave the rest alone.
func TestAtomicSetConcurrent(t *testing.T) {
	const n, workers = 1000, 8
	s := MakeAtomicSet(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := w; id < n; id += workers {
				s.Add(id)
				s.Add(id) // idempotent
			}
		}(w)
	}
	wg.Wait()
	if !s.Any() {
		t.Fatal("set empty after adds")
	}
	for id := 0; id < n; id++ {
		if !s.Contains(id) {
			t.Fatalf("id %d missing after concurrent adds", id)
		}
	}
	for id := 0; id < n; id += 2 {
		s.Remove(id)
	}
	for id := 0; id < n; id++ {
		if want := id%2 == 1; s.Contains(id) != want {
			t.Fatalf("id %d: Contains=%v want %v", id, s.Contains(id), want)
		}
	}
	// Word-level view agrees with Contains.
	for w := 0; w < s.NumWords(); w++ {
		word := s.LoadWord(w)
		for b := 0; b < 64 && w*64+b < n; b++ {
			if got, want := word&(1<<uint(b)) != 0, s.Contains(w*64+b); got != want {
				t.Fatalf("word view of id %d = %v, Contains = %v", w*64+b, got, want)
			}
		}
	}
}
