package engine

import "math/bits"

// ActiveSet is a fixed-capacity set of small integer component IDs — the
// scheduler's "runnable" bookkeeping. It is a bitset, so membership
// updates are O(1), Len/Empty are O(1), and iteration (AppendTo) visits
// members in ascending ID order, which is what makes an activity-driven
// cycle loop deterministic: skipping quiescent components must not
// perturb the order in which the live ones are ticked.
type ActiveSet struct {
	words []uint64
	count int
}

// MakeActiveSet returns a set able to hold IDs in [0, n).
func MakeActiveSet(n int) ActiveSet {
	return ActiveSet{words: make([]uint64, (n+63)/64)}
}

// Add inserts id (idempotent).
func (s *ActiveSet) Add(id int) {
	w, b := id>>6, uint64(1)<<uint(id&63)
	if s.words[w]&b == 0 {
		s.words[w] |= b
		s.count++
	}
}

// Remove deletes id (idempotent).
func (s *ActiveSet) Remove(id int) {
	w, b := id>>6, uint64(1)<<uint(id&63)
	if s.words[w]&b != 0 {
		s.words[w] &^= b
		s.count--
	}
}

// Contains reports membership.
func (s *ActiveSet) Contains(id int) bool {
	return s.words[id>>6]&(1<<uint(id&63)) != 0
}

// Len returns the member count.
func (s *ActiveSet) Len() int { return s.count }

// Empty reports whether the set has no members.
func (s *ActiveSet) Empty() bool { return s.count == 0 }

// AppendTo appends the members in ascending order to dst and returns the
// extended slice. Callers reuse a scratch slice across cycles so steady
// state allocates nothing.
func (s *ActiveSet) AppendTo(dst []int) []int {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// wakeEntry is one pending timed wake-up: component id becomes runnable
// when the clock reaches cycle at.
type wakeEntry struct {
	at Cycle
	id int
}

// Scheduler is the activity-driven kernel's core data structure: the
// active set of runnable component IDs plus a timestamped wake heap for
// components sleeping on a timer (a core counting down a PAUSE backoff).
// Components that sleep on an event instead (a response arriving, a FIFO
// becoming non-empty) are woken by Wake calls from FIFO push hooks and
// delivery paths; the heap exists so globally idle spans can be
// fast-forwarded to the next timed event without simulating the empty
// cycles in between.
type Scheduler struct {
	set  ActiveSet
	heap []wakeEntry

	// HeapPushes and HeapPops count wake-heap operations — the price of
	// timed sleep, as opposed to the event wakes that are plain bitset
	// updates. Plain (non-atomic) fields: the kernel publishes them to
	// the obs registry on the cold path.
	HeapPushes uint64
	HeapPops   uint64
}

// NewScheduler returns a scheduler for component IDs in [0, n).
func NewScheduler(n int) *Scheduler {
	return &Scheduler{set: MakeActiveSet(n)}
}

// Wake marks id runnable now.
func (s *Scheduler) Wake(id int) { s.set.Add(id) }

// Sleep removes id from the runnable set. The component stops being
// ticked until a Wake (event) or a due WakeAt (timer) readmits it.
func (s *Scheduler) Sleep(id int) { s.set.Remove(id) }

// Runnable reports whether id is in the active set.
func (s *Scheduler) Runnable(id int) bool { return s.set.Contains(id) }

// AnyRunnable reports whether any component is runnable now (timed
// sleepers excluded).
func (s *Scheduler) AnyRunnable() bool { return !s.set.Empty() }

// AppendRunnable appends the runnable IDs in ascending order to dst.
// Mutations during the subsequent iteration (a later component waking an
// earlier one) take effect next cycle, exactly like the dense loop where
// the earlier component had already been ticked.
func (s *Scheduler) AppendRunnable(dst []int) []int { return s.set.AppendTo(dst) }

// WakeAt schedules id to become runnable when the clock reaches cycle at.
func (s *Scheduler) WakeAt(id int, at Cycle) {
	s.heap = append(s.heap, wakeEntry{at: at, id: id})
	s.siftUp(len(s.heap) - 1)
	s.HeapPushes++
}

// NextWake returns the earliest pending timed wake-up.
func (s *Scheduler) NextWake() (Cycle, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// PendingWakes calls yield for every pending timed wake-up, in heap
// (not chronological) order. It exists so a scheduler's pending timers
// can be migrated into per-partition schedulers when a running system
// adopts the partitioned kernel; pop order is insertion-independent
// (the heap orders strictly by cycle then ID), so any visit order is
// equivalent.
func (s *Scheduler) PendingWakes(yield func(id int, at Cycle)) {
	for _, e := range s.heap {
		yield(e.id, e.at)
	}
}

// WakeDue pops every wake-up due at or before now, adds the component to
// the active set, and calls woke(id) for each (ties pop in ascending ID
// order, keeping the pop sequence deterministic).
func (s *Scheduler) WakeDue(now Cycle, woke func(id int)) {
	for len(s.heap) > 0 && s.heap[0].at <= now {
		id := s.heap[0].id
		s.pop()
		s.set.Add(id)
		if woke != nil {
			woke(id)
		}
	}
}

// less orders the wake heap by cycle, ties by component ID.
func (s *Scheduler) less(i, j int) bool {
	a, b := s.heap[i], s.heap[j]
	return a.at < b.at || (a.at == b.at && a.id < b.id)
}

func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Scheduler) pop() {
	s.HeapPops++
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s.heap) && s.less(l, min) {
			min = l
		}
		if r < len(s.heap) && s.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
}
