package engine

import (
	"runtime"
	"sync/atomic"
)

// Parallel-kernel primitives: a reusable phase barrier and an atomic
// bitset. The partitioned cycle loop (platform.TickParallel) shards the
// simulated system across OS threads and synchronizes them at
// deterministic phase boundaries; everything the partitions share is
// either read-only during a phase or one of these two structures.

// Barrier is a reusable sense-reversing spin barrier for n participants.
// Wait blocks until every participant has arrived; the last arriver may
// run an action while the others are still blocked — the partitioned
// kernel's "cycle leader" hook for work that must observe every
// partition quiesced (clock advance, stats folding, run-control
// decisions). The atomic arrival counter and sense flip give the action
// a happens-before edge over every pre-barrier write and give every
// post-barrier read one over the action's writes.
type Barrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32
}

// NewBarrier returns a barrier for n participants. With n == 1 every
// Wait returns immediately after running the action, so a single
// partition pays no synchronization.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("engine: barrier needs at least one participant")
	}
	return &Barrier{n: int32(n)}
}

// Wait blocks until all participants have arrived, then releases them
// together. The last arriver runs action (if non-nil) before the
// release. Waiters spin briefly, then yield the processor, so the
// barrier stays correct (if slower) with more partitions than OS
// threads.
func (b *Barrier) Wait(action func()) {
	s := b.sense.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		if action != nil {
			action()
		}
		b.sense.Store(s + 1)
		return
	}
	for spin := 0; b.sense.Load() == s; spin++ {
		if spin > 64 {
			runtime.Gosched()
		}
	}
}

// AtomicSet is the concurrent counterpart of ActiveSet: a fixed-capacity
// bitset over small integer IDs whose Add/Remove are atomic word
// operations. The partitioned fabric uses one per network as the router
// dirty set — wakes cross partition boundaries (a tile router pushing
// into another partition's link arbiter), and atomic, idempotent,
// commutative bit-sets are what keeps those cross-partition wakes
// race-free without changing the set the sequential kernel would have
// built. Unlike ActiveSet it keeps no member count; readers scan words.
type AtomicSet struct {
	words []atomic.Uint64
}

// MakeAtomicSet returns a set able to hold IDs in [0, n).
func MakeAtomicSet(n int) AtomicSet {
	return AtomicSet{words: make([]atomic.Uint64, (n+63)/64)}
}

// Add inserts id (idempotent, safe for concurrent use).
func (s *AtomicSet) Add(id int) {
	s.words[id>>6].Or(1 << uint(id&63))
}

// Remove deletes id (idempotent, safe for concurrent use).
func (s *AtomicSet) Remove(id int) {
	s.words[id>>6].And(^(uint64(1) << uint(id&63)))
}

// Contains reports membership.
func (s *AtomicSet) Contains(id int) bool {
	return s.words[id>>6].Load()&(1<<uint(id&63)) != 0
}

// Any reports whether the set has at least one member.
func (s *AtomicSet) Any() bool {
	for i := range s.words {
		if s.words[i].Load() != 0 {
			return true
		}
	}
	return false
}

// LoadWord returns the 64-member chunk starting at ID w*64. Partition
// owners combine it with an ownership mask to snapshot their members
// without walking individual IDs.
func (s *AtomicSet) LoadWord(w int) uint64 { return s.words[w].Load() }

// NumWords returns the number of 64-member chunks.
func (s *AtomicSet) NumWords() int { return len(s.words) }
