package engine

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	for i := 1; i <= 5; i++ {
		c.Advance()
		if c.Now() != Cycle(i) {
			t.Fatalf("after %d advances clock at %d", i, c.Now())
		}
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after reset clock at %d, want 0", c.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	b.Seed(42)
	for i := 0; i < 1000; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs collided %d/1000 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 100; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFIFOOneCycleVisibility(t *testing.T) {
	var c Clock
	f := NewFIFO[int](4, &c)
	if !f.Push(1) {
		t.Fatal("push into empty FIFO failed")
	}
	if f.CanPop() {
		t.Fatal("entry visible in the cycle it was pushed")
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop succeeded in push cycle")
	}
	c.Advance()
	if !f.CanPop() {
		t.Fatal("entry not visible one cycle later")
	}
	v, ok := f.Pop()
	if !ok || v != 1 {
		t.Fatalf("pop = %d,%v want 1,true", v, ok)
	}
}

func TestFIFOBackpressure(t *testing.T) {
	var c Clock
	f := NewFIFO[int](2, &c)
	if !f.Push(1) || !f.Push(2) {
		t.Fatal("pushes into non-full FIFO failed")
	}
	if f.Push(3) {
		t.Fatal("push into full FIFO succeeded")
	}
	if !f.Full() {
		t.Fatal("Full() false on full FIFO")
	}
	c.Advance()
	if v, _ := f.Pop(); v != 1 {
		t.Fatalf("FIFO order broken: got %d want 1", v)
	}
	if !f.Push(3) {
		t.Fatal("push after pop failed")
	}
}

func TestFIFOOrderProperty(t *testing.T) {
	prop := func(vals []uint16, seed uint64) bool {
		var c Clock
		f := NewFIFO[uint16](8, &c)
		r := NewRNG(seed)
		var pushed, popped []uint16
		i := 0
		for len(popped) < len(vals) {
			c.Advance()
			// Randomly interleave pushes and pops.
			if i < len(vals) && r.Intn(2) == 0 {
				if f.Push(vals[i]) {
					pushed = append(pushed, vals[i])
					i++
				}
			}
			if r.Intn(2) == 0 {
				if v, ok := f.Pop(); ok {
					popped = append(popped, v)
				}
			}
			if i == len(vals) && f.Len() == 0 {
				break
			}
		}
		// Drain.
		for f.Len() > 0 {
			c.Advance()
			if v, ok := f.Pop(); ok {
				popped = append(popped, v)
			}
		}
		if len(popped) != len(pushed) {
			return false
		}
		for j := range popped {
			if popped[j] != pushed[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOReset(t *testing.T) {
	var c Clock
	f := NewFIFO[int](4, &c)
	f.Push(1)
	f.Push(2)
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("len after reset = %d", f.Len())
	}
	c.Advance()
	if _, ok := f.Pop(); ok {
		t.Fatal("pop succeeded after reset")
	}
}

func TestFIFOCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFIFO(0) did not panic")
		}
	}()
	var c Clock
	NewFIFO[int](0, &c)
}

func TestFIFOWrapAround(t *testing.T) {
	var c Clock
	f := NewFIFO[int](3, &c)
	next := 0
	want := 0
	for cycle := 0; cycle < 100; cycle++ {
		c.Advance()
		if v, ok := f.Pop(); ok {
			if v != want {
				t.Fatalf("cycle %d: pop = %d want %d", cycle, v, want)
			}
			want++
		}
		if f.Push(next) {
			next++
		}
	}
	if want == 0 {
		t.Fatal("no values ever popped")
	}
}
