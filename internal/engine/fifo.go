package engine

// FIFO is a bounded queue whose entries become visible one cycle after they
// are pushed. This models a register-stage FIFO: no matter in which order
// components are ticked within a cycle, a message pushed in cycle t can be
// popped at cycle t+1 at the earliest, which yields clean one-cycle-per-hop
// pipelining across the whole system.
//
// The zero value is unusable; construct with NewFIFO.
type FIFO[T any] struct {
	buf   []entry[T]
	head  int
	count int
	clock *Clock

	// Scheduling hooks (see OnPush / OnPop). Nil when the FIFO is not
	// wired into an activity-driven scheduler.
	onPush func()
	onPop  func()
}

type entry[T any] struct {
	val T
	at  Cycle // cycle the entry was pushed
}

// NewFIFO returns a FIFO with the given capacity attached to clock.
func NewFIFO[T any](capacity int, clock *Clock) *FIFO[T] {
	if capacity <= 0 {
		panic("engine: FIFO capacity must be positive")
	}
	return &FIFO[T]{buf: make([]entry[T], capacity), clock: clock}
}

// OnPush registers fn to run after every successful Push. The
// activity-driven scheduler wires it to mark the FIFO's consumer
// runnable, so a component sleeps with no polling until traffic actually
// reaches it — the simulator-side mirror of the paper's wake-up messages.
func (f *FIFO[T]) OnPush(fn func()) { f.onPush = fn }

// OnPop registers fn to run after every successful Pop — the symmetric
// hook, for producers that would rather be woken when space frees in a
// full downstream stage than poll it. The current kernel does not wire
// it: every backpressured producer (a core in WaitIssue, a Qnode with an
// undrained wake-up, a blocked router or bank) holds other queued work
// and therefore stays runnable anyway, retrying like the hardware does.
func (f *FIFO[T]) OnPop(fn func()) { f.onPop = fn }

// Cap returns the FIFO capacity.
func (f *FIFO[T]) Cap() int { return len(f.buf) }

// Len returns the number of queued entries (visible or not).
func (f *FIFO[T]) Len() int { return f.count }

// Full reports whether a Push would fail.
func (f *FIFO[T]) Full() bool { return f.count == len(f.buf) }

// Push appends v, stamping it with the current cycle. It reports whether
// the push succeeded; it fails when the FIFO is full (backpressure).
func (f *FIFO[T]) Push(v T) bool {
	if f.count == len(f.buf) {
		return false
	}
	// head+count < 2*len always holds, so a compare-and-subtract wrap
	// replaces the integer division of a modulo on this hot path.
	idx := f.head + f.count
	if idx >= len(f.buf) {
		idx -= len(f.buf)
	}
	f.buf[idx] = entry[T]{val: v, at: f.clock.Now()}
	f.count++
	if f.onPush != nil {
		f.onPush()
	}
	return true
}

// CanPop reports whether the head entry exists and is at least one cycle
// old, i.e. visible this cycle.
func (f *FIFO[T]) CanPop() bool {
	return f.count > 0 && f.buf[f.head].at < f.clock.Now()
}

// Peek returns the head entry without removing it. The boolean mirrors
// CanPop.
func (f *FIFO[T]) Peek() (T, bool) {
	var zero T
	if !f.CanPop() {
		return zero, false
	}
	return f.buf[f.head].val, true
}

// Pop removes and returns the head entry. The boolean mirrors CanPop.
func (f *FIFO[T]) Pop() (T, bool) {
	var zero T
	if !f.CanPop() {
		return zero, false
	}
	v := f.buf[f.head].val
	f.buf[f.head] = entry[T]{} // release references
	f.head++
	if f.head == len(f.buf) {
		f.head = 0
	}
	f.count--
	if f.onPop != nil {
		f.onPop()
	}
	return v, true
}

// Reset empties the FIFO.
func (f *FIFO[T]) Reset() {
	clear(f.buf)
	f.head = 0
	f.count = 0
}
