package engine

import "testing"

// BenchmarkFIFOPushPop measures the steady-state cost of the FIFO hot
// pair: one Push at cycle t, one Pop at t+1. This is the innermost
// primitive of every router port and bank queue, so a regression here
// multiplies across the whole fabric. Must run at 0 allocs/op.
func BenchmarkFIFOPushPop(b *testing.B) {
	type flit struct {
		addr uint32
		data int32
		src  int
	}
	var clock Clock
	f := NewFIFO[flit](2, &clock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Push(flit{addr: uint32(i), data: int32(i), src: i & 3})
		clock.Advance()
		if _, ok := f.Pop(); !ok {
			b.Fatal("pop failed: one-cycle visibility broken")
		}
	}
}
