package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestActiveSetBasics(t *testing.T) {
	s := MakeActiveSet(200)
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	for _, id := range []int{0, 63, 64, 65, 199, 7} {
		s.Add(id)
	}
	s.Add(63) // idempotent
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	if !s.Contains(64) || s.Contains(66) {
		t.Fatal("Contains wrong")
	}
	got := s.AppendTo(nil)
	want := []int{0, 7, 63, 64, 65, 199}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendTo = %v, want %v (ascending)", got, want)
	}
	s.Remove(64)
	s.Remove(64) // idempotent
	if s.Len() != 5 || s.Contains(64) {
		t.Fatal("Remove wrong")
	}
}

// TestActiveSetIterationOrder: iteration must be ascending regardless of
// insertion order — the determinism contract of the scheduled kernel.
func TestActiveSetIterationOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := MakeActiveSet(1024)
	var want []int
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		id := rng.Intn(1024)
		if !seen[id] {
			seen[id] = true
			want = append(want, id)
		}
		s.Add(id)
	}
	sort.Ints(want)
	if got := s.AppendTo(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("iteration not ascending: %v", got)
	}
}

func TestSchedulerWakeHeap(t *testing.T) {
	s := NewScheduler(16)
	s.WakeAt(3, 50)
	s.WakeAt(1, 10)
	s.WakeAt(2, 10)
	s.WakeAt(4, 30)

	if at, ok := s.NextWake(); !ok || at != 10 {
		t.Fatalf("NextWake = %d,%v want 10,true", at, ok)
	}
	var woke []int
	s.WakeDue(10, func(id int) { woke = append(woke, id) })
	// Ties pop in ascending ID order.
	if !reflect.DeepEqual(woke, []int{1, 2}) {
		t.Fatalf("WakeDue(10) woke %v, want [1 2]", woke)
	}
	if !s.Runnable(1) || !s.Runnable(2) || s.Runnable(3) {
		t.Fatal("active set not updated by WakeDue")
	}
	if at, _ := s.NextWake(); at != 30 {
		t.Fatalf("NextWake after pop = %d, want 30", at)
	}
	woke = woke[:0]
	s.WakeDue(29, func(id int) { woke = append(woke, id) })
	if len(woke) != 0 {
		t.Fatalf("WakeDue(29) woke %v, want none", woke)
	}
	s.WakeDue(100, func(id int) { woke = append(woke, id) })
	if !reflect.DeepEqual(woke, []int{4, 3}) {
		t.Fatalf("WakeDue(100) woke %v, want [4 3] (cycle order)", woke)
	}
	if _, ok := s.NextWake(); ok {
		t.Fatal("heap should be empty")
	}
}

func TestSchedulerSleepWake(t *testing.T) {
	s := NewScheduler(8)
	if s.AnyRunnable() {
		t.Fatal("new scheduler has runnables")
	}
	s.Wake(5)
	s.Wake(2)
	if got := s.AppendRunnable(nil); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Fatalf("AppendRunnable = %v", got)
	}
	s.Sleep(5)
	if s.Runnable(5) || !s.AnyRunnable() {
		t.Fatal("Sleep wrong")
	}
}

// TestFIFOHooks: OnPush fires on every successful push (and not on a
// refused one), OnPop on every successful pop — the wake conditions the
// scheduler hangs off each port.
func TestFIFOHooks(t *testing.T) {
	var clock Clock
	f := NewFIFO[int](2, &clock)
	pushes, pops := 0, 0
	f.OnPush(func() { pushes++ })
	f.OnPop(func() { pops++ })

	f.Push(1)
	f.Push(2)
	if f.Push(3) {
		t.Fatal("push into full FIFO succeeded")
	}
	if pushes != 2 {
		t.Fatalf("pushes = %d, want 2 (refused push must not fire)", pushes)
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop of same-cycle entry succeeded")
	}
	if pops != 0 {
		t.Fatalf("pops = %d, want 0 (failed pop must not fire)", pops)
	}
	clock.Advance()
	f.Pop()
	f.Pop()
	if pops != 2 {
		t.Fatalf("pops = %d, want 2", pops)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance()
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Fatalf("Now = %d, want 10", c.Now())
	}
	c.AdvanceTo(5) // never rewinds
	if c.Now() != 10 {
		t.Fatalf("Now = %d after backwards AdvanceTo, want 10", c.Now())
	}
}
