// Package engine provides the simulation kernel shared by all hardware
// models: the cycle clock, a deterministic PRNG, and timestamped FIFOs that
// enforce one-cycle-per-hop pipelining independent of component tick order.
package engine

// Cycle is a simulation timestamp in clock cycles.
type Cycle int64

// Clock is the global cycle counter of a simulation. Components share a
// pointer to it and read Now each tick.
type Clock struct {
	now Cycle
}

// Now returns the current cycle.
func (c *Clock) Now() Cycle { return c.now }

// Advance moves the clock forward by one cycle.
func (c *Clock) Advance() { c.now++ }

// Reset rewinds the clock to cycle 0.
func (c *Clock) Reset() { c.now = 0 }
