// Package engine provides the simulation kernel shared by all hardware
// models: the cycle clock, a deterministic PRNG, and timestamped FIFOs that
// enforce one-cycle-per-hop pipelining independent of component tick order.
package engine

// Cycle is a simulation timestamp in clock cycles.
type Cycle int64

// Clock is the global cycle counter of a simulation. Components share a
// pointer to it and read Now each tick.
type Clock struct {
	now Cycle
}

// Now returns the current cycle.
func (c *Clock) Now() Cycle { return c.now }

// Advance moves the clock forward by one cycle.
func (c *Clock) Advance() { c.now++ }

// AdvanceTo jumps the clock forward to cycle t (a no-op when t is not in
// the future). The activity-driven scheduler uses it to fast-forward
// across globally idle spans — cycles in which every component is parked
// and only wait counters would advance.
func (c *Clock) AdvanceTo(t Cycle) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to cycle 0.
func (c *Clock) Reset() { c.now = 0 }
