package engine

// RNG is a small deterministic xorshift64* pseudo-random number generator.
// All stochastic choices in the simulator (workload bin selection, traffic
// generators, property tests) draw from explicitly seeded RNG instances so
// every run is bit-reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r.state = seed
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("engine: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
