package sweep

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// Point is one sweep measurement. It is a union across experiment kinds:
// figure sweeps fill X plus the throughput/interference fields, table
// rows fill Label plus the model fields. Zero-valued fields are omitted
// from JSON, so every kind serializes only what it measures.
type Point struct {
	// X is the swept coordinate: bin count (fig3/4/5), active core
	// count (fig6), or row index (tables).
	X     int    `json:"x"`
	Label string `json:"label,omitempty"` // table row name

	// Histogram / queue throughput (fig3, fig4, fig6).
	Throughput float64 `json:"throughput,omitempty"`
	MinPerCore float64 `json:"minPerCore,omitempty"`
	MaxPerCore float64 `json:"maxPerCore,omitempty"`

	// Interference (fig5).
	Rel         float64 `json:"rel,omitempty"`
	BaselineOps float64 `json:"baselineOps,omitempty"`
	LoadedOps   float64 `json:"loadedOps,omitempty"`

	// Energy (table2).
	Backoff  int     `json:"backoff,omitempty"`
	PowerMW  float64 `json:"powerMW,omitempty"`
	PJPerOp  float64 `json:"pjPerOp,omitempty"`
	DeltaPct float64 `json:"deltaPct,omitempty"`
	PaperPJ  float64 `json:"paperPJ,omitempty"`

	// Area (table1).
	Params      string  `json:"params,omitempty"`
	AreaKGE     float64 `json:"areaKGE,omitempty"`
	OverheadPct float64 `json:"overheadPct,omitempty"`
	PaperKGE    float64 `json:"paperKGE,omitempty"`
}

// GridCoord identifies one point of a policy grid: which axes the job
// swept and the value each takes for a series. Unset axes stay nil and
// are omitted from JSON, so results of grid-free jobs serialize exactly
// as before the grid axes existed.
type GridCoord struct {
	QueueCap      *int `json:"queueCap,omitempty"`
	ColibriQueues *int `json:"colibriQueues,omitempty"`
	Backoff       *int `json:"backoff,omitempty"`
}

// IsZero reports whether no axis is set (a grid-free sweep).
func (g GridCoord) IsZero() bool {
	return g.QueueCap == nil && g.ColibriQueues == nil && g.Backoff == nil
}

// Label renders the coordinate in the -grid flag syntax, e.g.
// "queuecap=2 colibriq=4 backoff=64". Empty when no axis is set.
func (g GridCoord) Label() string {
	var parts []string
	if g.QueueCap != nil {
		parts = append(parts, "queuecap="+strconv.Itoa(*g.QueueCap))
	}
	if g.ColibriQueues != nil {
		parts = append(parts, "colibriq="+strconv.Itoa(*g.ColibriQueues))
	}
	if g.Backoff != nil {
		parts = append(parts, "backoff="+strconv.Itoa(*g.Backoff))
	}
	return strings.Join(parts, " ")
}

// ref returns the coordinate as a Series field: nil for the zero
// coordinate, so grid-free series keep their pre-grid JSON encoding.
func (g GridCoord) ref() *GridCoord {
	if g.IsZero() {
		return nil
	}
	c := g
	return &c
}

// Series is one curve (or one whole table, for the table kinds). Grid
// labels the policy-grid coordinate the curve was measured at; it is nil
// for grid-free sweeps.
type Series struct {
	Name   string     `json:"name"`
	Grid   *GridCoord `json:"grid,omitempty"`
	Points []Point    `json:"points"`
}

// Result is the assembled output of one Job. Its JSON encoding is
// deterministic: the job is normalized, series and point order are fixed
// by the job spec, and no run-dependent data (timing, cache statistics)
// is included.
type Result struct {
	Job    Job      `json:"job"`
	Cores  int      `json:"cores"`
	Series []Series `json:"series"`
}

// JSON renders the result as indented, deterministic JSON.
func (r *Result) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Table renders the result in the layout of the original per-figure cmd
// tool, so `cmd/sweep -fig 3` prints what `cmd/histogram` always printed.
func (r *Result) Table() *stats.Table {
	switch r.Job.Kind {
	case Fig3, Fig4:
		title := "Fig. 3 — histogram updates/cycle vs #bins"
		if r.Job.Kind == Fig4 {
			title = "Fig. 4 — lock implementations, histogram updates/cycle vs #bins"
		}
		header := []string{"#bins"}
		for _, s := range r.Series {
			header = append(header, s.Name)
		}
		t := stats.NewTable(fmt.Sprintf("%s (%d cores, warmup %d, measure %d)",
			title, r.Cores, window(r.Job.Warmup), window(r.Job.Measure)), header...)
		for i, bins := range r.Job.Bins {
			row := []string{strconv.Itoa(bins)}
			for _, s := range r.Series {
				row = append(row, stats.F(s.Points[i].Throughput, 4))
			}
			t.Add(row...)
		}
		return t
	case Fig5:
		header := []string{"#bins"}
		for _, s := range r.Series {
			header = append(header, s.Name)
		}
		t := stats.NewTable(fmt.Sprintf(
			"Fig. 5 — relative matmul throughput under atomics interference (%d cores)",
			r.Cores), header...)
		for i, bins := range r.Job.Bins {
			row := []string{strconv.Itoa(bins)}
			for _, s := range r.Series {
				row = append(row, stats.F(s.Points[i].Rel, 3))
			}
			t.Add(row...)
		}
		return t
	case Fig6, Fig6MS:
		header := []string{"#cores"}
		for _, s := range r.Series {
			header = append(header, s.Name, s.Name+"-min", s.Name+"-max")
		}
		t := stats.NewTable(fmt.Sprintf(
			"Fig. 6 — queue accesses/cycle vs #cores (%d-core system; min/max = per-core band)",
			r.Cores), header...)
		if len(r.Series) == 0 {
			return t
		}
		for i := range r.Series[0].Points {
			row := []string{strconv.Itoa(r.Series[0].Points[i].X)}
			for _, s := range r.Series {
				p := s.Points[i]
				row = append(row, stats.F(p.Throughput, 4),
					stats.F(p.MinPerCore, 5), stats.F(p.MaxPerCore, 5))
			}
			t.Add(row...)
		}
		return t
	case TableI:
		t := stats.NewTable("Table I — area of a mempool_tile with different LRSCwait designs",
			"architecture", "parameters", "model kGE", "model %", "paper kGE")
		for _, p := range r.points() {
			paper := "-"
			if p.PaperKGE > 0 {
				paper = stats.F(p.PaperKGE, 0)
			}
			t.Add(p.Label, p.Params, stats.F(p.AreaKGE, 1),
				stats.F(100+p.OverheadPct, 1), paper)
		}
		return t
	case TableII:
		t := stats.NewTable(fmt.Sprintf(
			"Table II — energy per atomic access at highest contention (%d cores, %d MHz)",
			r.Cores, experiments.TableIIFreqMHz),
			"atomic access", "backoff", "power (mW)", "energy (pJ/op)", "delta", "paper pJ/op")
		for _, p := range r.points() {
			delta := "±0%"
			if p.DeltaPct != 0 {
				delta = fmt.Sprintf("%+.0f%%", p.DeltaPct)
			}
			t.Add(p.Label, strconv.Itoa(p.Backoff), stats.F(p.PowerMW, 1),
				stats.F(p.PJPerOp, 0), delta, stats.F(p.PaperPJ, 0))
		}
		return t
	}
	return stats.NewTable(string(r.Job.Kind))
}

// points returns the single series of a table-kind result (empty when
// the result holds none).
func (r *Result) points() []Point {
	if len(r.Series) == 0 {
		return nil
	}
	return r.Series[0].Points
}

// CSV renders the result's table as RFC 4180 CSV.
func (r *Result) CSV() string { return r.Table().CSV() }
