package sweep

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Well-known metric names: the measurements the built-in scenarios fill.
// Point.Metric and Point.SetMetric map them onto the corresponding
// struct fields; any other name lands in the free-form Extra map, so
// custom scenarios can define their own metrics and still flow through
// the same cache, emitters and generic table.
const (
	MetricThroughput  = "throughput"
	MetricMinPerCore  = "min_per_core"
	MetricMaxPerCore  = "max_per_core"
	MetricRel         = "rel"
	MetricBaselineOps = "baseline_ops"
	MetricLoadedOps   = "loaded_ops"
	MetricBackoff     = "backoff"
	MetricPowerMW     = "power_mw"
	MetricEnergyPJ    = "energy_pj"
	MetricDeltaPct    = "delta_pct"
	MetricPaperPJ     = "paper_pj"
	MetricAreaKGE     = "area_kge"
	MetricOverheadPct = "overhead_pct"
	MetricPaperKGE    = "paper_kge"
)

// Point is one sweep measurement: a coordinate (X, optionally Label and
// Params) plus named metrics. The well-known metrics are struct fields
// — a union across the built-in scenarios, each serializing only what it
// measures thanks to omitempty — and scenario-defined metrics live in
// Extra. Access uniformly through Metric/SetMetric/Metrics.
type Point struct {
	// X is the swept coordinate: bin count (fig3/4/5), active core
	// count (fig6), row index (tables), or whatever a custom scenario
	// sweeps.
	X     int    `json:"x"`
	Label string `json:"label,omitempty"` // table row name

	// Histogram / queue throughput (fig3, fig4, fig6).
	Throughput float64 `json:"throughput,omitempty"`
	MinPerCore float64 `json:"minPerCore,omitempty"`
	MaxPerCore float64 `json:"maxPerCore,omitempty"`

	// Interference (fig5).
	Rel         float64 `json:"rel,omitempty"`
	BaselineOps float64 `json:"baselineOps,omitempty"`
	LoadedOps   float64 `json:"loadedOps,omitempty"`

	// Energy (table2).
	Backoff  int     `json:"backoff,omitempty"`
	PowerMW  float64 `json:"powerMW,omitempty"`
	PJPerOp  float64 `json:"pjPerOp,omitempty"`
	DeltaPct float64 `json:"deltaPct,omitempty"`
	PaperPJ  float64 `json:"paperPJ,omitempty"`

	// Area (table1).
	Params      string  `json:"params,omitempty"`
	AreaKGE     float64 `json:"areaKGE,omitempty"`
	OverheadPct float64 `json:"overheadPct,omitempty"`
	PaperKGE    float64 `json:"paperKGE,omitempty"`

	// Extra holds scenario-defined metrics beyond the well-known set.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// metricFields maps the well-known metric names to their Point fields.
var metricFields = map[string]func(*Point) *float64{
	MetricThroughput:  func(p *Point) *float64 { return &p.Throughput },
	MetricMinPerCore:  func(p *Point) *float64 { return &p.MinPerCore },
	MetricMaxPerCore:  func(p *Point) *float64 { return &p.MaxPerCore },
	MetricRel:         func(p *Point) *float64 { return &p.Rel },
	MetricBaselineOps: func(p *Point) *float64 { return &p.BaselineOps },
	MetricLoadedOps:   func(p *Point) *float64 { return &p.LoadedOps },
	MetricPowerMW:     func(p *Point) *float64 { return &p.PowerMW },
	MetricEnergyPJ:    func(p *Point) *float64 { return &p.PJPerOp },
	MetricDeltaPct:    func(p *Point) *float64 { return &p.DeltaPct },
	MetricPaperPJ:     func(p *Point) *float64 { return &p.PaperPJ },
	MetricAreaKGE:     func(p *Point) *float64 { return &p.AreaKGE },
	MetricOverheadPct: func(p *Point) *float64 { return &p.OverheadPct },
	MetricPaperKGE:    func(p *Point) *float64 { return &p.PaperKGE },
}

// Metric returns the named measurement. Matching the JSON encoding's
// omitempty convention, a zero-valued well-known metric reads as absent;
// Extra entries are present whatever their value.
func (p Point) Metric(name string) (float64, bool) {
	if name == MetricBackoff {
		return float64(p.Backoff), p.Backoff != 0
	}
	if f, ok := metricFields[name]; ok {
		v := *f(&p)
		return v, v != 0
	}
	v, ok := p.Extra[name]
	return v, ok
}

// SetMetric stores the named measurement, into the matching struct field
// for a well-known name and into Extra otherwise.
func (p *Point) SetMetric(name string, v float64) {
	if name == MetricBackoff {
		p.Backoff = int(v)
		return
	}
	if f, ok := metricFields[name]; ok {
		*f(p) = v
		return
	}
	if p.Extra == nil {
		p.Extra = map[string]float64{}
	}
	p.Extra[name] = v
}

// Metrics returns the sorted names of the point's present metrics
// (nonzero well-known fields plus every Extra entry).
func (p Point) Metrics() []string {
	var names []string
	for name := range metricFields {
		if _, ok := p.Metric(name); ok {
			names = append(names, name)
		}
	}
	if p.Backoff != 0 {
		names = append(names, MetricBackoff)
	}
	for name := range p.Extra {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GridCoord identifies one point of a policy grid: which axes the job
// swept and the value each takes for a series. Unset axes stay nil and
// are omitted from JSON, so results of grid-free jobs serialize exactly
// as before the grid axes existed. Policy overrides the hardware policy
// itself (a registered platform policy name); the remaining axes
// override its parameters.
type GridCoord struct {
	Policy        *string `json:"policy,omitempty"`
	QueueCap      *int    `json:"queueCap,omitempty"`
	ColibriQueues *int    `json:"colibriQueues,omitempty"`
	Backoff       *int    `json:"backoff,omitempty"`
}

// IsZero reports whether no axis is set (a grid-free sweep).
func (g GridCoord) IsZero() bool {
	return g.Policy == nil && g.QueueCap == nil && g.ColibriQueues == nil && g.Backoff == nil
}

// Label renders the coordinate in the -grid flag syntax, e.g.
// "policy=lrsc queuecap=2 colibriq=4 backoff=64". Empty when no axis is
// set.
func (g GridCoord) Label() string {
	var parts []string
	if g.Policy != nil {
		parts = append(parts, "policy="+*g.Policy)
	}
	if g.QueueCap != nil {
		parts = append(parts, "queuecap="+strconv.Itoa(*g.QueueCap))
	}
	if g.ColibriQueues != nil {
		parts = append(parts, "colibriq="+strconv.Itoa(*g.ColibriQueues))
	}
	if g.Backoff != nil {
		parts = append(parts, "backoff="+strconv.Itoa(*g.Backoff))
	}
	return strings.Join(parts, " ")
}

// ref returns the coordinate as a Series field: nil for the zero
// coordinate, so grid-free series keep their pre-grid JSON encoding.
func (g GridCoord) ref() *GridCoord {
	if g.IsZero() {
		return nil
	}
	c := g
	return &c
}

// Series is one curve (or one whole table, for the table kinds). Grid
// labels the policy-grid coordinate the curve was measured at; it is nil
// for grid-free sweeps.
type Series struct {
	Name   string     `json:"name"`
	Grid   *GridCoord `json:"grid,omitempty"`
	Points []Point    `json:"points"`
}

// Result is the assembled output of one Job. Its JSON encoding is
// deterministic: the job is normalized, series and point order are fixed
// by the job spec, and no run-dependent data (timing, cache statistics)
// is included.
type Result struct {
	Job    Job      `json:"job"`
	Cores  int      `json:"cores"`
	Series []Series `json:"series"`
}

// JSON renders the result as indented, deterministic JSON.
func (r *Result) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Table renders the result through its scenario's TableRenderer — the
// built-in kinds keep the layouts of the original per-figure cmd tools,
// so `cmd/sweep -fig 3` prints what `cmd/histogram` always printed —
// falling back to the generic metric table for scenarios without one.
func (r *Result) Table() *stats.Table {
	if sc, ok := Lookup(string(r.Job.Kind)); ok {
		if tr, ok := sc.(TableRenderer); ok {
			return tr.Table(r)
		}
	}
	return genericTable(r)
}

// points returns the single series of a table-kind result (empty when
// the result holds none).
func (r *Result) points() []Point {
	if len(r.Series) == 0 {
		return nil
	}
	return r.Series[0].Points
}

// CSV renders the result's table as RFC 4180 CSV.
func (r *Result) CSV() string { return r.Table().CSV() }
