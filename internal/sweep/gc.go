package sweep

// Size-bounded LRU eviction for the disk cache. The cache itself is
// append-only (immutable content-addressed entries), so lifecycle is a
// separate, explicitly invoked pass: `sweep -cache-gc -cache-max-bytes N`
// calls Cache.GC, which evicts least-recently-used entries until the
// directory fits the budget.
//
// Recency comes from an append-only index file (access.idx) of
// "<hash> <unix-nanos>" lines that Get hits and Puts record — rate
// limited per process so a hot serve loop re-reading the same points
// does not grow the index by one line per request. Entries never touched
// in the index fall back to their file modification time, so caches that
// predate the index (or were filled by other processes) still evict
// oldest-first rather than arbitrarily. GC compacts the index down to
// one line per surviving entry as a side effect.

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// indexFile is the access-index filename inside the cache root.
const indexFile = "access.idx"

// touchInterval rate-limits per-key index appends: a key touched within
// the interval is not re-recorded. Eviction order only needs coarse
// recency, and the warm serve path touches every point of a figure on
// every request.
const touchInterval = 5 * time.Minute

// touchLog appends access records to the cache's index file. All
// WithRegistry views of one cache share a single instance, so the
// rate-limit map and the file writes are process-wide per directory.
type touchLog struct {
	path string

	mu   sync.Mutex
	last map[string]time.Time // hash -> last recorded touch
}

// touch records an access to key (best-effort, rate-limited).
func (c *Cache) touch(key string) {
	if c.touches == nil {
		return
	}
	sum := keyHash(key)
	c.touches.record(sum, time.Now())
}

func (l *touchLog) record(hash string, now time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t, ok := l.last[hash]; ok && now.Sub(t) < touchInterval {
		return
	}
	if l.last == nil {
		l.last = map[string]time.Time{}
	}
	l.last[hash] = now
	// O_APPEND keeps concurrent writers (other processes on the same
	// cache) from interleaving within a line on POSIX for short writes;
	// a torn line is skipped by the reader anyway.
	f, err := os.OpenFile(l.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	fmt.Fprintf(f, "%s %d\n", hash, now.UnixNano())
	f.Close()
}

// keyHash is the cache's filename hash of a key (path() uses the same).
func keyHash(key string) string {
	return hashHex(key)
}

// readIndex parses the access index into hash -> latest touch time.
// Unparseable lines (torn concurrent appends) are skipped.
func readIndex(path string) map[string]time.Time {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	idx := map[string]time.Time{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		hash, nanos, ok := strings.Cut(sc.Text(), " ")
		if !ok || len(hash) != 64 {
			continue
		}
		n, err := strconv.ParseInt(nanos, 10, 64)
		if err != nil {
			continue
		}
		t := time.Unix(0, n)
		if prev, ok := idx[hash]; !ok || t.After(prev) {
			idx[hash] = t
		}
	}
	return idx
}

// GCStats reports one eviction pass.
type GCStats struct {
	Dir      string `json:"dir"`
	MaxBytes int64  `json:"maxBytes"`

	Entries    int   `json:"entries"`    // entries before the pass
	TotalBytes int64 `json:"totalBytes"` // bytes before the pass

	Evicted      int   `json:"evicted"`
	EvictedBytes int64 `json:"evictedBytes"`
}

// Remaining returns the post-pass footprint.
func (st GCStats) Remaining() (entries int, bytes int64) {
	return st.Entries - st.Evicted, st.TotalBytes - st.EvictedBytes
}

// Summary renders the stats as the -cache-gc report.
func (st GCStats) Summary() string {
	entries, bytes := st.Remaining()
	return fmt.Sprintf("cache %s: evicted %d of %d entries (%d of %d bytes), %d entries (%d bytes) remain under the %d-byte budget",
		st.Dir, st.Evicted, st.Entries, st.EvictedBytes, st.TotalBytes, entries, bytes, st.MaxBytes)
}

// GC evicts least-recently-used entries until the cache's entry bytes
// fit maxBytes (0 evicts everything). Recency is the entry's last
// access-index touch, falling back to file mtime for entries the index
// has never seen. The index is compacted to the survivors. Concurrent
// Gets racing an eviction degrade to a miss — never a wrong value —
// and concurrent Puts may push the directory back over budget, which
// the next pass reclaims.
func (c *Cache) GC(maxBytes int64) (GCStats, error) {
	if maxBytes < 0 {
		return GCStats{}, fmt.Errorf("sweep: negative cache budget %d", maxBytes)
	}
	st := GCStats{Dir: c.dir, MaxBytes: maxBytes}
	idx := readIndex(filepath.Join(c.dir, indexFile))
	type ent struct {
		path string
		hash string
		size int64
		last time.Time
	}
	var ents []ent
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		hash := strings.TrimSuffix(d.Name(), ".json")
		last := info.ModTime()
		if t, ok := idx[hash]; ok && t.After(last) {
			last = t
		}
		ents = append(ents, ent{path: path, hash: hash, size: info.Size(), last: last})
		st.Entries++
		st.TotalBytes += info.Size()
		return nil
	})
	if err != nil {
		return GCStats{}, fmt.Errorf("sweep: scan cache: %w", err)
	}
	// Oldest first; ties broken by hash so the pass is deterministic.
	sort.Slice(ents, func(i, j int) bool {
		if !ents[i].last.Equal(ents[j].last) {
			return ents[i].last.Before(ents[j].last)
		}
		return ents[i].hash < ents[j].hash
	})
	remaining := st.TotalBytes
	survivors := map[string]bool{}
	for _, e := range ents {
		survivors[e.hash] = true
	}
	for _, e := range ents {
		if remaining <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			// Already gone (concurrent GC) counts as evicted space;
			// anything else is reported after finishing the pass.
			if !os.IsNotExist(err) {
				return st, fmt.Errorf("sweep: evict %s: %w", e.path, err)
			}
		}
		delete(survivors, e.hash)
		remaining -= e.size
		st.Evicted++
		st.EvictedBytes += e.size
	}
	c.compactIndex(idx, survivors)
	reg := c.obs()
	reg.Counter("sweep.cache.evictions").Add(uint64(st.Evicted))
	reg.Counter("sweep.cache.evicted_bytes").Add(uint64(st.EvictedBytes))
	return st, nil
}

// compactIndex rewrites the access index with one line per surviving
// indexed entry (atomic rename; best-effort — a failed compaction just
// leaves the longer index for the next pass).
func (c *Cache) compactIndex(idx map[string]time.Time, survivors map[string]bool) {
	path := filepath.Join(c.dir, indexFile)
	hashes := make([]string, 0, len(idx))
	for hash := range idx {
		if survivors[hash] {
			hashes = append(hashes, hash)
		}
	}
	if len(hashes) == 0 {
		os.Remove(path)
		return
	}
	sort.Strings(hashes)
	var sb strings.Builder
	for _, hash := range hashes {
		fmt.Fprintf(&sb, "%s %d\n", hash, idx[hash].UnixNano())
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-idx-*")
	if err != nil {
		return
	}
	if _, err := tmp.WriteString(sb.String()); err != nil || tmp.Close() != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
	}
}
