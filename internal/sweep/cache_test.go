package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestCachePutRenameFailureCleansTemp pins the temp-file leak fix: when
// the final rename fails (here: the destination path is occupied by a
// directory), Put must report the error AND remove its temp file instead
// of leaving .tmp-* garbage in the shard directory.
func TestCachePutRenameFailureCleansTemp(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "rename-failure-key"
	dest := c.path(key)
	if err := os.MkdirAll(dest, 0o755); err != nil { // squat the destination
		t.Fatal(err)
	}
	if err := c.Put(key, Point{X: 1}); err == nil {
		t.Fatal("Put over a directory-squatted destination should fail")
	}
	tmps, err := filepath.Glob(filepath.Join(filepath.Dir(dest), ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("failed Put leaked temp files: %v", tmps)
	}
}

// TestCacheStatsTempFiles checks the orphan accounting: Stats counts
// .tmp-* residue, reaps only stale files (older than tempMaxAge), and
// reports both without disturbing real entries.
func TestCacheStatsTempFiles(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("some-key", Point{X: 7}); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(c.path("some-key"))
	stale := filepath.Join(shard, ".tmp-stale")
	fresh := filepath.Join(shard, ".tmp-fresh")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tempMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d, want 1", st.Entries)
	}
	if st.TempFiles != 2 || st.TempReaped != 1 {
		t.Fatalf("TempFiles=%d TempReaped=%d, want 2 and 1", st.TempFiles, st.TempReaped)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file should have been reaped")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp file (in-flight write) must survive the scan")
	}
	if !strings.Contains(st.Summary(), "orphaned temp files: 2") {
		t.Fatalf("Summary missing temp-file line:\n%s", st.Summary())
	}
	// A clean cache keeps the two-line summary of before.
	st2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.TempFiles != 1 { // the fresh one is still there
		t.Fatalf("second scan TempFiles = %d, want 1", st2.TempFiles)
	}
}

// TestInspectCacheReadOnly pins the -cache-stats side-effect fix:
// inspecting a cache that does not exist must report it — not create the
// directory the way OpenCache does.
func TestInspectCacheReadOnly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never-created")
	if _, err := InspectCache(dir); err == nil || !strings.Contains(err.Error(), "no cache at") {
		t.Fatalf("InspectCache(missing) err = %v, want 'no cache at'", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("InspectCache created the cache directory as a side effect")
	}

	// An existing cache inspects fine and Stats sees its entries.
	real, err := OpenCache(filepath.Join(t.TempDir(), "real"))
	if err != nil {
		t.Fatal(err)
	}
	if err := real.Put("k", Point{X: 3}); err != nil {
		t.Fatal(err)
	}
	ins, err := InspectCache(real.Dir())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ins.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 {
		t.Fatalf("inspected Entries = %d, want 1", st.Entries)
	}

	if c, err := InspectCacheFlag("off"); c != nil || err != nil {
		t.Fatalf("InspectCacheFlag(off) = %v, %v; want nil, nil", c, err)
	}
}

// TestConcurrentRunnersIsolatedRegistries is the regression test for
// cross-contaminated run metrics: two RunAll calls executing
// concurrently, each scoped to its own registry via Runner.Obs, must
// account their points and cache traffic entirely in their own registry
// — exactly as many points as each run had, no bleed-through.
func TestConcurrentRunnersIsolatedRegistries(t *testing.T) {
	type run struct {
		reg   *obs.Registry
		cache *Cache
		st    RunStats
		err   error
	}
	runs := [2]*run{}
	for i := range runs {
		cache, err := OpenCache(filepath.Join(t.TempDir(), "c"))
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = &run{reg: obs.NewRegistry(), cache: cache}
	}
	var wg sync.WaitGroup
	for i, r := range runs {
		wg.Add(1)
		go func(i int, r *run) {
			defer wg.Done()
			runner := Runner{Workers: 1, Cache: r.cache, Obs: r.reg}
			_, r.st, r.err = runner.RunAll([]Job{testJob(Fig6)})
		}(i, r)
	}
	wg.Wait()
	for i, r := range runs {
		if r.err != nil {
			t.Fatalf("run %d: %v", i, r.err)
		}
		snap := r.reg.Snapshot()
		if got := snap.Counter("sweep.points.total"); got != uint64(r.st.Units) {
			t.Fatalf("run %d: sweep.points.total = %d, want its own %d units", i, got, r.st.Units)
		}
		// Cold cache: every simulated unit stored, none served.
		if got := snap.Counter("sweep.cache.stores"); got != uint64(r.st.Executed) {
			t.Fatalf("run %d: sweep.cache.stores = %d, want %d", i, got, r.st.Executed)
		}
		if got := snap.Counter("sweep.cache.hits"); got != 0 {
			t.Fatalf("run %d: sweep.cache.hits = %d on a cold cache", i, got)
		}
		// RunStats.Metrics is the scoped diff — same isolation.
		if got := r.st.Metrics.Counter("sweep.points.total"); got != uint64(r.st.Units) {
			t.Fatalf("run %d: Metrics sweep.points.total = %d, want %d", i, got, r.st.Units)
		}
	}
}
