package sweep

// Distribution support: the fabric's serve/worker protocol needs to see
// a job's independent points as an explicit, deterministically ordered
// work list — point keys a coordinator can hand to worker machines, and
// a placement map that reassembles their results into the exact Series
// the in-process pool would have produced. ExpandJob exposes the
// engine's internal expansion for that purpose without giving up any
// invariant: items are ordered (series, point) exactly as the runner
// lays out its units, and Assemble places by index, so a distributed run
// is byte-identical to a local one.

import "fmt"

// WorkItem is one independent point of an expanded job: its placement
// (series and point index), its content-hash cache key (empty =
// uncacheable, e.g. when the binary has no fingerprint or the curve
// declares no key — such items cannot travel through a shared backend
// and must be computed by whoever assembles the result), and whether
// computing it runs a simulation.
type WorkItem struct {
	Series int    `json:"series"`
	Point  int    `json:"point"`
	Key    string `json:"key,omitempty"`
	Sim    bool   `json:"sim"`

	run func() Point
}

// Compute runs the item's measurement. Safe for concurrent use across
// distinct items; deterministic, so any machine expanding the same
// normalized job computes the same value.
func (w WorkItem) Compute() Point { return w.run() }

// ExpandedJob is a normalized job resolved into its series skeleton and
// flat work-item list — the unit of the fabric's coordinator/worker
// protocol. Two processes built from the same binary expanding the same
// normalized job get identical item lists (same order, same keys).
type ExpandedJob struct {
	Job    Job
	Cores  int
	Items  []WorkItem
	series []Series
}

// ExpandJob normalizes j and expands it into its work items.
func ExpandJob(j Job) (*ExpandedJob, error) {
	norm, err := j.Normalize()
	if err != nil {
		return nil, err
	}
	topo, series, units, err := expand(norm)
	if err != nil {
		return nil, err
	}
	e := &ExpandedJob{Job: norm, Cores: topo.NumCores(), series: series}
	for _, u := range units {
		u := u
		e.Items = append(e.Items, WorkItem{
			Series: u.si, Point: u.pi, Key: u.key, Sim: u.sim,
			run: func() Point { return u.run() },
		})
	}
	return e, nil
}

// Assemble builds the job's Result from one computed point per item
// (points[i] belongs to Items[i]) and applies the scenario's Finalizer —
// the same placement-then-finalize sequence the in-process runner
// performs, so a result assembled from distributed points is
// byte-identical to a local run's.
func (e *ExpandedJob) Assemble(points []Point) (*Result, error) {
	if len(points) != len(e.Items) {
		return nil, fmt.Errorf("sweep: assemble: %d points for %d items", len(points), len(e.Items))
	}
	r := &Result{Job: e.Job, Cores: e.Cores, Series: make([]Series, len(e.series))}
	for si, s := range e.series {
		r.Series[si] = Series{Name: s.Name, Grid: s.Grid, Points: make([]Point, len(s.Points))}
	}
	for i, it := range e.Items {
		r.Series[it.Series].Points[it.Point] = points[i]
	}
	finalize(r)
	return r, nil
}
