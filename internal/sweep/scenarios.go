package sweep

import (
	"fmt"
	"strconv"

	"repro/internal/area"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/platform"
	"repro/internal/stats"
)

// The paper's seven experiments, re-implemented as registered scenarios.
// The engine (sweep.go, runner.go, result.go) never mentions them: they
// flow through the same Scenario interface as a custom out-of-tree
// workload, so they double as the reference implementations for the open
// API.

// Per-kind default simulation parameters, shared by the scenarios'
// Normalize and the legacy cmd tools' flag defaults so the two paths
// cannot drift.
const (
	DefaultHistWarmup, DefaultHistMeasure       = 3000, 10000 // fig3, fig4
	DefaultFig5Warmup, DefaultFig5Measure       = 4000, 20000
	DefaultFig6Warmup, DefaultFig6Measure       = 3000, 12000
	DefaultTableIIWarmup, DefaultTableIIMeasure = 4000, 20000
	DefaultMatN                                 = 128
)

func init() {
	MustRegister(histScenario{kind: Fig3, specs: func(topo noc.Topology) []experiments.HistSpec {
		return experiments.Fig3Specs(topo.NumCores())
	}, title: "Fig. 3 — histogram updates/cycle vs #bins"})
	MustRegister(histScenario{kind: Fig4, specs: func(noc.Topology) []experiments.HistSpec {
		return experiments.Fig4Specs()
	}, title: "Fig. 4 — lock implementations, histogram updates/cycle vs #bins"})
	MustRegister(interferenceScenario{})
	MustRegister(queueScenario{kind: Fig6, specs: experiments.Fig6Specs,
		title: "Fig. 6 — queue accesses/cycle vs #cores (fetch-and-add ring)"})
	MustRegister(queueScenario{kind: Fig6MS, specs: experiments.Fig6MSSpecs,
		title: "Fig. 6 — queue accesses/cycle vs #cores (Michael-Scott queue)"})
	MustRegister(areaScenario{})
	MustRegister(energyScenario{})
}

// Merge overlays the coordinate's set axes on a policy baseline. A
// policy axis replaces the baseline's hardware policy by registered
// name; grid backoffs are literal cycles, so they are re-encoded in the
// Policy convention (0 cycles -> the negative no-backoff sentinel).
// Scenario implementations use it to derive the effective per-point
// policy from their spec's baked-in baseline.
func (g GridCoord) Merge(base experiments.Policy) experiments.Policy {
	if g.Policy != nil {
		base.Kind = platform.PolicyKind(*g.Policy)
	}
	if g.QueueCap != nil {
		base.QueueCap = *g.QueueCap
	}
	if g.ColibriQueues != nil {
		base.ColibriQueues = *g.ColibriQueues
	}
	if g.Backoff != nil {
		base.Backoff = experiments.LiteralBackoff(*g.Backoff)
	}
	return base
}

// histSpecKey canonicalizes a histogram curve spec together with the
// effective policy it runs under. The policy owns its key fragment
// (Policy.KeyFragment): the registered kind name plus every parameter
// fully resolved, so a grid value that merely restates a default (e.g.
// backoff=128, colibriq=4, or the spec's own policy name) hits the same
// cache entry as the grid-free run: it is the same simulation. Jobs
// differing in any effective axis get distinct keys.
func histSpecKey(s experiments.HistSpec, pol experiments.Policy) string {
	return fmt.Sprintf("%s|v%d|%s", s.Name, s.Variant, pol.KeyFragment())
}

// queueSpecKey canonicalizes a queue curve spec and its effective,
// fully-resolved policy (see histSpecKey).
func queueSpecKey(s experiments.QueueSpec, pol experiments.Policy) string {
	return fmt.Sprintf("%s|v%d|ms%t|%s", s.Name, s.Variant, s.MS, pol.KeyFragment())
}

// histScenario is fig3/fig4: histogram throughput vs contention, one
// curve per (software variant × hardware policy) spec.
type histScenario struct {
	kind  Kind
	title string
	specs func(topo noc.Topology) []experiments.HistSpec
}

func (s histScenario) Name() string        { return string(s.kind) }
func (s histScenario) GridAxes() bool      { return true }
func (s histScenario) Description() string { return s.title }

func (s histScenario) Normalize(j Job, topo noc.Topology) (Job, error) {
	j.defaultWindows(DefaultHistWarmup, DefaultHistMeasure)
	if len(j.Bins) == 0 {
		j.Bins = experiments.StandardBins(topo)
	}
	return j, nil
}

func (s histScenario) Curves(topo noc.Topology, j Job) ([]Curve, error) {
	warmup, measure := window(j.Warmup), window(j.Measure)
	var curves []Curve
	for _, spec := range s.specs(topo) {
		curves = append(curves, Curve{
			Name: spec.Name, NumPoints: len(j.Bins), Sim: true,
			Key: func(g GridCoord, pt int) string {
				return fmt.Sprintf("%s|bins%d",
					histSpecKey(spec, g.Merge(spec.PolicyConfig())), j.Bins[pt])
			},
			Run: func(g GridCoord, pt int) Point {
				p := experiments.RunHistogramPointPolicy(spec, g.Merge(spec.PolicyConfig()),
					topo, j.Bins[pt], warmup, measure)
				return Point{X: j.Bins[pt], Throughput: p.Throughput}
			},
		})
	}
	return curves, nil
}

func (s histScenario) Table(r *Result) *stats.Table {
	header := []string{"#bins"}
	for _, sr := range r.Series {
		header = append(header, sr.Name)
	}
	t := stats.NewTable(fmt.Sprintf("%s (%d cores, warmup %d, measure %d)",
		s.title, r.Cores, window(r.Job.Warmup), window(r.Job.Measure)), header...)
	for i, bins := range r.Job.Bins {
		row := []string{strconv.Itoa(bins)}
		for _, sr := range r.Series {
			row = append(row, stats.F(sr.Points[i].Throughput, 4))
		}
		t.Add(row...)
	}
	return t
}

// interferenceScenario is fig5: relative matmul worker throughput while
// poller cores hammer histogram bins, one curve per (spec, ratio) pair.
type interferenceScenario struct{}

func (interferenceScenario) Name() string   { return string(Fig5) }
func (interferenceScenario) GridAxes() bool { return true }
func (interferenceScenario) Description() string {
	return "Fig. 5 — relative matmul throughput under atomics interference"
}

func (interferenceScenario) Normalize(j Job, topo noc.Topology) (Job, error) {
	j.defaultWindows(DefaultFig5Warmup, DefaultFig5Measure)
	if len(j.Bins) == 0 {
		j.Bins = []int{1, 4, 8, 12, 16}
	}
	if j.MatN == 0 {
		j.MatN = DefaultMatN
	}
	return j, nil
}

func (interferenceScenario) Curves(topo noc.Topology, j Job) ([]Curve, error) {
	warmup, measure := window(j.Warmup), window(j.Measure)
	var curves []Curve
	for _, c := range experiments.Fig5Curves(topo.NumCores()) {
		curves = append(curves, Curve{
			Name: c.Name, NumPoints: len(j.Bins), Sim: true,
			Key: func(g GridCoord, pt int) string {
				return fmt.Sprintf("%s|r%d:%d|n%d|bins%d",
					histSpecKey(c.Spec, g.Merge(c.Spec.PolicyConfig())),
					c.Ratio.Pollers, c.Ratio.Workers, j.MatN, j.Bins[pt])
			},
			Run: func(g GridCoord, pt int) Point {
				p := experiments.RunInterferencePointPolicy(c.Spec, g.Merge(c.Spec.PolicyConfig()),
					topo, c.Ratio, j.Bins[pt], j.MatN, warmup, measure)
				return Point{X: j.Bins[pt], Rel: p.Rel,
					BaselineOps: p.BaselineOps, LoadedOps: p.LoadedOps}
			},
		})
	}
	return curves, nil
}

func (interferenceScenario) Table(r *Result) *stats.Table {
	header := []string{"#bins"}
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	t := stats.NewTable(fmt.Sprintf(
		"Fig. 5 — relative matmul throughput under atomics interference (%d cores)",
		r.Cores), header...)
	for i, bins := range r.Job.Bins {
		row := []string{strconv.Itoa(bins)}
		for _, s := range r.Series {
			row = append(row, stats.F(s.Points[i].Rel, 3))
		}
		t.Add(row...)
	}
	return t
}

// queueScenario is fig6/fig6ms: concurrent-queue throughput and fairness
// as the number of participating cores grows.
type queueScenario struct {
	kind  Kind
	title string
	specs func() []experiments.QueueSpec
}

func (s queueScenario) Name() string        { return string(s.kind) }
func (s queueScenario) GridAxes() bool      { return true }
func (s queueScenario) Description() string { return s.title }

func (s queueScenario) Normalize(j Job, topo noc.Topology) (Job, error) {
	j.defaultWindows(DefaultFig6Warmup, DefaultFig6Measure)
	return j, nil
}

func (s queueScenario) Curves(topo noc.Topology, j Job) ([]Curve, error) {
	warmup, measure := window(j.Warmup), window(j.Measure)
	counts := experiments.Fig6Counts(topo)
	var curves []Curve
	for _, spec := range s.specs() {
		curves = append(curves, Curve{
			Name: spec.Name, NumPoints: len(counts), Sim: true,
			Key: func(g GridCoord, pt int) string {
				return fmt.Sprintf("%s|active%d",
					queueSpecKey(spec, g.Merge(spec.PolicyConfig())), counts[pt])
			},
			Run: func(g GridCoord, pt int) Point {
				p := experiments.RunQueuePointPolicy(spec, g.Merge(spec.PolicyConfig()),
					topo, counts[pt], warmup, measure)
				return Point{X: counts[pt], Throughput: p.Throughput,
					MinPerCore: p.MinPerCore, MaxPerCore: p.MaxPerCore}
			},
		})
	}
	return curves, nil
}

func (s queueScenario) Table(r *Result) *stats.Table {
	header := []string{"#cores"}
	for _, sr := range r.Series {
		header = append(header, sr.Name, sr.Name+"-min", sr.Name+"-max")
	}
	t := stats.NewTable(fmt.Sprintf(
		"Fig. 6 — queue accesses/cycle vs #cores (%d-core system; min/max = per-core band)",
		r.Cores), header...)
	if len(r.Series) == 0 {
		return t
	}
	for i := range r.Series[0].Points {
		row := []string{strconv.Itoa(r.Series[0].Points[i].X)}
		for _, sr := range r.Series {
			p := sr.Points[i]
			row = append(row, stats.F(p.Throughput, 4),
				stats.F(p.MinPerCore, 5), stats.F(p.MaxPerCore, 5))
		}
		t.Add(row...)
	}
	return t
}

// areaScenario is table1: the tile area model. Pure arithmetic — its
// points are uncacheable (cheaper to recompute than to hash) and don't
// count as simulations.
type areaScenario struct{}

func (areaScenario) Name() string   { return string(TableI) }
func (areaScenario) GridAxes() bool { return false }
func (areaScenario) Description() string {
	return "Table I — mempool_tile area with different LRSCwait designs"
}

func (areaScenario) Normalize(j Job, topo noc.Topology) (Job, error) {
	if j.Cores == 0 {
		j.Cores = topo.NumCores()
	}
	return j, nil
}

func (areaScenario) Curves(topo noc.Topology, j Job) ([]Curve, error) {
	m := area.Default()
	rows := area.TableI(m, j.Cores)
	// Registered policies implementing the area.PolicyRows hook
	// contribute their own designs after the published configurations
	// (registry order is sorted, so the layout is deterministic). The
	// built-ins are already covered by TableI and add nothing.
	for _, name := range platform.PolicyNames() {
		pol, ok := platform.LookupPolicy(name)
		if !ok {
			continue
		}
		if pr, ok := pol.(area.PolicyRows); ok {
			extra := pr.AreaRows(m, j.Cores)
			for i := range extra {
				extra[i].OverheadP = m.Overhead(extra[i].AreaKGE)
			}
			rows = append(rows, extra...)
		}
	}
	return []Curve{{
		Name: string(TableI), NumPoints: len(rows),
		Run: func(g GridCoord, pt int) Point {
			r := rows[pt]
			return Point{X: pt, Label: r.Design, Params: r.Params,
				AreaKGE: r.AreaKGE, OverheadPct: r.OverheadP, PaperKGE: r.PaperKGE}
		},
	}}, nil
}

func (areaScenario) Table(r *Result) *stats.Table {
	t := stats.NewTable("Table I — area of a mempool_tile with different LRSCwait designs",
		"architecture", "parameters", "model kGE", "model %", "paper kGE")
	for _, p := range r.points() {
		paper := "-"
		if p.PaperKGE > 0 {
			paper = stats.F(p.PaperKGE, 0)
		}
		t.Add(p.Label, p.Params, stats.F(p.AreaKGE, 1),
			stats.F(100+p.OverheadPct, 1), paper)
	}
	return t
}

// energyScenario is table2: energy per atomic access at the highest
// contention level, from activity counters and the calibrated energy
// model, with the published reference values alongside.
type energyScenario struct{}

func (energyScenario) Name() string   { return string(TableII) }
func (energyScenario) GridAxes() bool { return false }
func (energyScenario) Description() string {
	return "Table II — energy per atomic access at highest contention"
}

func (energyScenario) Normalize(j Job, topo noc.Topology) (Job, error) {
	j.defaultWindows(DefaultTableIIWarmup, DefaultTableIIMeasure)
	return j, nil
}

func (energyScenario) Curves(topo noc.Topology, j Job) ([]Curve, error) {
	warmup, measure := window(j.Warmup), window(j.Measure)
	specs := experiments.TableIISpecs()
	// The rows are the paper's fixed built-in policies, which share the
	// one calibrated model; the energy.PolicyWeights hook applies where
	// a custom policy is actually configured (cmd/lrscwait-sim).
	params := energy.Default()
	return []Curve{{
		Name: string(TableII), NumPoints: len(specs), Sim: true,
		Key: func(g GridCoord, pt int) string {
			spec := specs[pt]
			return fmt.Sprintf("%s|energy", histSpecKey(spec, spec.PolicyConfig()))
		},
		Run: func(g GridCoord, pt int) Point {
			spec := specs[pt]
			p := experiments.RunHistogramPoint(spec, topo, 1, warmup, measure)
			ref := experiments.TableIIPaperRef(spec.Name)
			return Point{X: pt, Label: spec.Name, Backoff: ref.Backoff,
				PowerMW: params.PowerMW(p.Activity, experiments.TableIIFreqMHz),
				PJPerOp: params.PerOpPJ(p.Activity), PaperPJ: ref.PJ}
		},
	}}, nil
}

// Finalize fills each row's DeltaPct relative to the colibri row, as the
// paper reports. It is a cross-point derivation, deliberately never
// cached, so cold and warm runs finalize identically.
func (energyScenario) Finalize(r *Result) {
	if len(r.Series) == 0 {
		return
	}
	points := r.Series[0].Points
	var colibriPJ float64
	for _, p := range points {
		if p.Label == "colibri" {
			colibriPJ = p.PJPerOp
		}
	}
	for i := range points {
		if colibriPJ > 0 {
			points[i].DeltaPct = (points[i].PJPerOp/colibriPJ - 1) * 100
		}
	}
}

func (energyScenario) Table(r *Result) *stats.Table {
	t := stats.NewTable(fmt.Sprintf(
		"Table II — energy per atomic access at highest contention (%d cores, %d MHz)",
		r.Cores, experiments.TableIIFreqMHz),
		"atomic access", "backoff", "power (mW)", "energy (pJ/op)", "delta", "paper pJ/op")
	for _, p := range r.points() {
		delta := "±0%"
		if p.DeltaPct != 0 {
			delta = fmt.Sprintf("%+.0f%%", p.DeltaPct)
		}
		t.Add(p.Label, strconv.Itoa(p.Backoff), stats.F(p.PowerMW, 1),
			stats.F(p.PJPerOp, 0), delta, stats.F(p.PaperPJ, 0))
	}
	return t
}
