package sweep

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Shared plumbing for the cmd/ front ends, so the six tools parse flags
// and report progress identically.

// ParseBins parses a comma-separated list of positive bin counts.
func ParseBins(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var bins []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad bin count %q", tok)
		}
		bins = append(bins, v)
	}
	return bins, nil
}

// Grid is a parsed -grid flag: the policy axes a sweep can
// cross-product over. Zero-valued axes are not swept.
type Grid struct {
	Policies                           []string
	QueueCaps, ColibriQueues, Backoffs []int
}

// ParseGrid parses the -grid flag syntax: whitespace-separated
// axis=v1,v2,... clauses, e.g.
//
//	policy=lrsc,colibri queuecap=0,1,2,4 colibriq=2,4,8 backoff=0,64
//
// Axes are policy (registered platform policy names — existence checks
// are Normalize's job), queuecap (WaitQueue slots, 0 = ideal), colibriq
// (head/tail pairs) and backoff (cycles, 0 = none). Numeric values are
// non-negative integers; range checks beyond that are Normalize's job.
// A repeated axis accumulates. The empty string parses to the zero
// Grid.
func ParseGrid(s string) (Grid, error) {
	var g Grid
	for _, clause := range strings.Fields(s) {
		axis, list, ok := strings.Cut(clause, "=")
		if !ok || list == "" {
			return Grid{}, fmt.Errorf("bad grid clause %q (want axis=v1,v2,...)", clause)
		}
		if axis == "policy" {
			for _, tok := range strings.Split(list, ",") {
				name := strings.TrimSpace(tok)
				if name == "" {
					return Grid{}, fmt.Errorf("bad policy grid value %q", tok)
				}
				g.Policies = append(g.Policies, name)
			}
			continue
		}
		var vals []int
		for _, tok := range strings.Split(list, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 0 {
				return Grid{}, fmt.Errorf("bad %s grid value %q", axis, tok)
			}
			vals = append(vals, v)
		}
		switch axis {
		case "queuecap":
			g.QueueCaps = append(g.QueueCaps, vals...)
		case "colibriq":
			g.ColibriQueues = append(g.ColibriQueues, vals...)
		case "backoff":
			g.Backoffs = append(g.Backoffs, vals...)
		default:
			return Grid{}, fmt.Errorf("unknown grid axis %q (have policy, queuecap, colibriq, backoff)", axis)
		}
	}
	return g, nil
}

// IsZero reports whether no axis is set.
func (g Grid) IsZero() bool {
	return len(g.Policies) == 0 && len(g.QueueCaps) == 0 &&
		len(g.ColibriQueues) == 0 && len(g.Backoffs) == 0
}

// Apply sets the grid axes on a job.
func (g Grid) Apply(j *Job) {
	j.Policies = g.Policies
	j.QueueCaps = g.QueueCaps
	j.ColibriQueues = g.ColibriQueues
	j.Backoffs = g.Backoffs
}

// ParseParams parses the -params flag syntax: whitespace-separated
// key=value clauses, e.g. "kernel=amoadd iters=500". Keys and values are
// opaque to the engine — scenarios interpret them in Normalize/Curves —
// but every entry is part of the cache identity. The empty string parses
// to nil. A repeated key is an error: silently keeping one of two values
// would sweep something other than what was asked.
func ParseParams(s string) (map[string]string, error) {
	var params map[string]string
	for _, clause := range strings.Fields(s) {
		k, v, ok := strings.Cut(clause, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad params clause %q (want key=value)", clause)
		}
		if _, dup := params[k]; dup {
			return nil, fmt.Errorf("duplicate params key %q", k)
		}
		if params == nil {
			params = map[string]string{}
		}
		params[k] = v
	}
	return params, nil
}

// OpenCacheFlag resolves a -cache flag value: "off"/"none" disables
// caching, "on"/"default" selects the user cache dir, "" follows the
// tool's default (defaultOn), and anything else is a directory path.
func OpenCacheFlag(v string, defaultOn bool) (*Cache, error) {
	switch v {
	case "off", "none":
		return nil, nil
	case "":
		if !defaultOn {
			return nil, nil
		}
		return OpenCache("")
	case "on", "default":
		return OpenCache("")
	default:
		return OpenCache(v)
	}
}

// InspectCacheFlag resolves a -cache flag value for read-only
// inspection: same spelling as OpenCacheFlag, but the cache directory is
// never created — asking for stats on a cache that does not exist
// reports "no cache at <dir>" instead of conjuring an empty one.
func InspectCacheFlag(v string) (*Cache, error) {
	switch v {
	case "off", "none":
		return nil, nil
	case "", "on", "default":
		return InspectCache("")
	default:
		return InspectCache(v)
	}
}

// Fatal prints a tool-prefixed error to stderr and exits 2. Engine
// errors already carry the "sweep: " package prefix; it is stripped so
// every front end reports "tool: message" uniformly.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, strings.TrimPrefix(err.Error(), "sweep: "))
	os.Exit(2)
}

// RunTool is the shared tail of the legacy per-figure front ends: open
// the cache per flag (default off), run the single job, and print the
// result as an aligned table or CSV.
func RunTool(tool string, job Job, workers int, cacheFlag string, csv bool) {
	cache, err := OpenCacheFlag(cacheFlag, false)
	if err != nil {
		Fatal(tool, err)
	}
	r := Runner{Workers: workers, Cache: cache}
	res, _, err := r.Run(job)
	if err != nil {
		Fatal(tool, err)
	}
	if csv {
		fmt.Print(res.CSV())
		return
	}
	fmt.Print(res.Table().String())
}

// ExplicitWindow maps a legacy tool's -warmup/-measure flag value to the
// Job convention. Those flags always carry explicit values (their flag
// defaults are the per-kind defaults), so 0 means a literal zero-cycle
// window, which Job encodes as negative.
func ExplicitWindow(v int) int {
	if v == 0 {
		return -1
	}
	return v
}

// ProgressPrinter returns a Progress callback that live-updates a status
// line on w (intended for a terminal's stderr). The callback is safe for
// concurrent use; call the returned flush once the run is done to
// terminate the line.
func ProgressPrinter(w io.Writer) (progress func(Event), flush func()) {
	var mu sync.Mutex
	maxDone, total, cached := 0, 0, 0
	return func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			if ev.Cached {
				cached++
			}
			if ev.Done > maxDone {
				maxDone = ev.Done
			}
			total = ev.Total
			fmt.Fprintf(w, "\rsweep: %d/%d points (%d cached)", maxDone, ev.Total, cached)
		}, func() {
			mu.Lock()
			defer mu.Unlock()
			// Terminate the status line unconditionally: a zero-point run
			// (everything deduplicated or an empty selection) must still
			// leave the terminal on a fresh line, not mid-overwrite.
			fmt.Fprintf(w, "\rsweep: %d/%d points (%d cached)\n", maxDone, total, cached)
		}
}

// Summary formats the run statistics for the tools' stderr reporting,
// including the cache-hit rate over the run's units.
func (st RunStats) Summary() string {
	rate := 0.0
	if st.Units > 0 {
		rate = 100 * float64(st.CacheHits) / float64(st.Units)
	}
	return fmt.Sprintf("%d points: %d simulated, %d cached (%.0f%% hit rate) in %v",
		st.Units, st.Executed, st.CacheHits, rate,
		st.Elapsed.Round(time.Millisecond))
}
