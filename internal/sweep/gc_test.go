package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// bigPoint builds a point whose marshalled entry exceeds gzipThreshold.
func bigPoint() Point {
	p := Point{X: 1, Throughput: 3.14}
	p.Extra = map[string]float64{}
	for i := 0; i < 400; i++ {
		p.Extra[fmt.Sprintf("metric_with_a_long_descriptive_name_%03d", i)] = float64(i) * 0.125
	}
	return p
}

// TestCacheGzipRoundTrip pins the transparent-compression contract:
// large entries are stored gzipped (sniffable by magic bytes on disk)
// and read back identically; small entries stay plain JSON.
func TestCacheGzipRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := bigPoint()
	if err := c.Put("big-key", want); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(c.path("big-key"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, gzipMagic) {
		t.Fatalf("large entry not gzipped on disk (starts %q)", raw[:2])
	}
	got, ok := c.Get("big-key")
	if !ok {
		t.Fatal("gzipped entry missed on read-back")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("gzipped entry round-tripped to a different point")
	}

	// Small entries stay readable plain JSON.
	if err := c.Put("small-key", Point{X: 2, Throughput: 7}); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(c.path("small-key"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(raw, gzipMagic) {
		t.Fatal("small entry was gzipped; should stay plain JSON")
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("small entry is not plain JSON: %v", err)
	}
}

// TestCacheGzipBackwardCompat pins the migration guarantee: a plain-JSON
// entry written by a pre-compression cache (simulated by a direct file
// write) reads back through the sniffing Get unchanged.
func TestCacheGzipBackwardCompat(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := bigPoint() // large enough that a new Put WOULD compress it
	b, err := json.Marshal(entry{Key: "old-key", Point: want})
	if err != nil {
		t.Fatal(err)
	}
	path := c.path("old-key")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("old-key")
	if !ok {
		t.Fatal("pre-compression plain-JSON entry missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("plain-JSON entry read back differently")
	}
}

// writeIndex replaces the cache's access index with controlled times.
func writeIndex(t *testing.T, c *Cache, touches map[string]time.Time) {
	t.Helper()
	var sb strings.Builder
	for key, at := range touches {
		fmt.Fprintf(&sb, "%s %d\n", keyHash(key), at.UnixNano())
	}
	if err := os.WriteFile(filepath.Join(c.Dir(), indexFile), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCacheGCLRUOrder pins the eviction policy: with a budget that fits
// only one entry, the two least-recently-used entries go (per the access
// index) and the most recent survives; the index compacts to the
// survivor.
func TestCacheGCLRUOrder(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"k-old", "k-mid", "k-new"}
	for i, k := range keys {
		if err := c.Put(k, Point{X: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Rewrite the index with controlled recency, oldest to newest. Put
	// just touched all three "now", and GC takes max(index, mtime), so
	// mtimes must also be pushed back.
	now := time.Now()
	writeIndex(t, c, map[string]time.Time{
		"k-old": now.Add(-3 * time.Hour),
		"k-mid": now.Add(-2 * time.Hour),
		"k-new": now.Add(-1 * time.Hour),
	})
	old := now.Add(-4 * time.Hour)
	var entrySize int64
	for _, k := range keys {
		if err := os.Chtimes(c.path(k), old, old); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(c.path(k))
		if err != nil {
			t.Fatal(err)
		}
		entrySize = info.Size()
	}

	st, err := c.GC(entrySize) // budget: exactly one entry
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3 || st.Evicted != 2 {
		t.Fatalf("GC evicted %d of %d, want 2 of 3\n%s", st.Evicted, st.Entries, st.Summary())
	}
	if entries, bytes := st.Remaining(); entries != 1 || bytes != entrySize {
		t.Fatalf("Remaining() = %d entries, %d bytes; want 1, %d", entries, bytes, entrySize)
	}
	if _, ok := c.Get("k-old"); ok {
		t.Fatal("least-recently-used entry survived")
	}
	if _, ok := c.Get("k-mid"); ok {
		t.Fatal("second-least-recently-used entry survived")
	}
	if p, ok := c.Get("k-new"); !ok || p.X != 3 {
		t.Fatalf("most-recent entry evicted (got %+v, %v)", p, ok)
	}
	// Index compacted to the survivor.
	idx := readIndex(filepath.Join(c.Dir(), indexFile))
	if len(idx) != 1 {
		t.Fatalf("compacted index has %d entries, want 1", len(idx))
	}
	if _, ok := idx[keyHash("k-new")]; !ok {
		t.Fatal("compacted index lost the survivor")
	}
}

// TestCacheGCMtimeFallback pins the pre-index migration path: entries
// the index has never seen evict by file mtime, oldest first.
func TestCacheGCMtimeFallback(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", Point{X: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", Point{X: 2}); err != nil {
		t.Fatal(err)
	}
	// No index at all (pre-index cache): recency is mtime alone.
	os.Remove(filepath.Join(c.Dir(), indexFile))
	now := time.Now()
	if err := os.Chtimes(c.path("a"), now.Add(-2*time.Hour), now.Add(-2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(c.path("b"), now.Add(-1*time.Hour), now.Add(-1*time.Hour)); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(c.path("b"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.GC(info.Size())
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 1 {
		t.Fatalf("evicted %d, want 1", st.Evicted)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("older entry survived mtime-ordered GC")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("newer entry evicted")
	}
}

// TestCacheGCBudgets pins the edge budgets: negative is an error, zero
// evicts everything, and a generous budget evicts nothing.
func TestCacheGCBudgets(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GC(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := c.Put("k", Point{X: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := c.GC(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 0 {
		t.Fatalf("generous budget evicted %d entries", st.Evicted)
	}
	st, err = c.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 1 {
		t.Fatalf("zero budget evicted %d, want 1", st.Evicted)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived zero-budget GC")
	}
}
