package sweep

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/noc"
)

// Reduced windows keep every engine test on the 16-core topology fast
// while still exercising real simulations.
const (
	testWarmup  = 300
	testMeasure = 1500
)

func testJob(kind Kind) Job {
	j := Job{Kind: kind, Topo: "small", Warmup: testWarmup, Measure: testMeasure}
	switch kind {
	case Fig3, Fig4:
		j.Bins = []int{1, 4}
	case Fig5:
		j.Bins = []int{1}
		j.MatN = 16
	}
	return j
}

func TestNormalizeDefaults(t *testing.T) {
	j, err := Job{Kind: Fig3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if j.Topo != "mempool" || j.Warmup != 3000 || j.Measure != 10000 {
		t.Errorf("defaults = %+v", j)
	}
	if len(j.Bins) != 11 || j.Bins[10] != 1024 {
		t.Errorf("default bins = %v", j.Bins)
	}
}

// TestLiteralZeroWindow checks the negative sentinel: a negative
// Warmup/Measure survives Normalize (idempotent) and runs as a literal
// zero-cycle window rather than being replaced by the default.
func TestLiteralZeroWindow(t *testing.T) {
	j, err := Job{Kind: Fig3, Topo: "small", Bins: []int{1}, Warmup: -1, Measure: 2000}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if j.Warmup != -1 {
		t.Fatalf("negative warmup rewritten to %d", j.Warmup)
	}
	res, _, err := (&Runner{Workers: 1}).Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Series[0].Points[0].Throughput; got <= 0 {
		t.Errorf("zero-warmup run made no progress: %v", got)
	}
	ref := experiments.RunHistogramPoint(experiments.Fig3Specs(16)[0], noc.Small(), 1, 0, 2000)
	if res.Series[0].Points[0].Throughput != ref.Throughput {
		t.Errorf("literal-zero warmup %v != direct warmup-0 run %v",
			res.Series[0].Points[0].Throughput, ref.Throughput)
	}
	if !strings.Contains(res.Table().String(), "warmup 0,") {
		t.Errorf("table title does not resolve sentinel:\n%s", res.Table().Title)
	}
}

func TestExplicitWindow(t *testing.T) {
	if ExplicitWindow(0) != -1 || ExplicitWindow(3000) != 3000 || ExplicitWindow(-2) != -2 {
		t.Error("ExplicitWindow mapping wrong")
	}
}

func TestNormalizeErrors(t *testing.T) {
	if _, err := (Job{Kind: "nope"}).Normalize(); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := (Job{Kind: Fig3, Topo: "galaxy"}).Normalize(); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := (Job{Kind: Fig3, Topo: "small", Bins: []int{0}}).Normalize(); err == nil {
		t.Error("zero bin count accepted")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := Point{X: 7, Label: "row", Throughput: 0.125, PJPerOp: 42.5,
		Extra: map[string]float64{"custom_metric": 3.5}}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("Get = %+v, %v; want %+v", got, ok, want)
	}
	if _, ok := c.Get("k2"); ok {
		t.Error("hit for a different key")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", Point{X: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path("k"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("corrupt entry served as hit")
	}
}

func TestCacheKeyMismatchIsMiss(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("real-key", Point{X: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate a hash collision: alias the entry file under another key.
	alias := c.path("other-key")
	if err := os.MkdirAll(filepath.Dir(alias), 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(c.path("real-key"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(alias, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("other-key"); ok {
		t.Error("entry with mismatched key served as hit")
	}
}

// TestCacheStats checks the on-disk side of the -cache-stats report
// (entry and byte counts from a directory walk; the traffic counters
// are process-cumulative and owned by the obs tests) and that the
// process counters move across a Put/Get pair.
func TestCacheStats(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	empty, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if empty.Entries != 0 || empty.TotalBytes != 0 {
		t.Errorf("fresh cache stats = %d entries/%d bytes, want 0/0", empty.Entries, empty.TotalBytes)
	}
	for i, key := range []string{"a", "b", "c"} {
		if err := c.Put(key, Point{X: i}); err != nil {
			t.Fatal(err)
		}
	}
	c.Get("a")       // hit
	c.Get("missing") // miss
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3 || st.TotalBytes == 0 {
		t.Errorf("stats = %d entries/%d bytes, want 3 entries, non-zero bytes", st.Entries, st.TotalBytes)
	}
	if st.Hits-empty.Hits != 1 || st.Misses-empty.Misses != 1 || st.Stores-empty.Stores != 3 {
		t.Errorf("traffic deltas hits/misses/stores = %d/%d/%d, want 1/1/3",
			st.Hits-empty.Hits, st.Misses-empty.Misses, st.Stores-empty.Stores)
	}
	if st.ReadBytes <= empty.ReadBytes || st.StoreBytes <= empty.StoreBytes {
		t.Error("byte counters did not move")
	}
	if s := st.Summary(); !strings.Contains(s, "3 entries") {
		t.Errorf("summary missing entry count: %q", s)
	}
}

// resultJSON runs one job and returns its JSON bytes.
func resultJSON(t *testing.T, r Runner, job Job) []byte {
	t.Helper()
	res, _, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterministicAcrossWorkers is the engine's core guarantee: a sweep
// on one worker is byte-identical (as JSON) to the same sweep on many.
func TestDeterministicAcrossWorkers(t *testing.T) {
	for _, kind := range []Kind{Fig3, Fig6, TableII} {
		job := testJob(kind)
		serial := resultJSON(t, Runner{Workers: 1}, job)
		parallel := resultJSON(t, Runner{Workers: 8}, job)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("%s: 1-worker and 8-worker JSON differ:\n%s\n---\n%s",
				kind, serial, parallel)
		}
	}
}

// TestWarmCacheExecutesNothing checks the second half of the engine
// contract: a re-run of an unchanged job is served entirely from the
// cache, with zero simulations executed and identical output.
func TestWarmCacheExecutesNothing(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := testJob(Fig3)
	r := Runner{Workers: 4, Cache: cache}

	cold, st, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != st.Units || st.CacheHits != 0 {
		t.Fatalf("cold run stats = %+v", st)
	}
	warm, st, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != 0 {
		t.Errorf("warm run executed %d simulations", st.Executed)
	}
	if st.CacheHits != st.Units {
		t.Errorf("warm run hits = %d, want %d", st.CacheHits, st.Units)
	}
	cb, _ := cold.JSON()
	wb, _ := warm.JSON()
	if !bytes.Equal(cb, wb) {
		t.Error("warm-cache result differs from cold run")
	}
}

// TestFig3Parity pins the engine to the reference implementation: the
// sweep result must match direct serial experiments.RunHistogramPoint
// calls over the same spec × bins grid exactly.
func TestFig3Parity(t *testing.T) {
	topo := noc.Small()
	bins := []int{1, 4, 16}
	job := Job{Kind: Fig3, Topo: "small", Bins: bins, Warmup: testWarmup, Measure: testMeasure}
	res, _, err := (&Runner{Workers: 4}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	specs := experiments.Fig3Specs(topo.NumCores())
	if len(res.Series) != len(specs) {
		t.Fatalf("series count %d, want %d", len(res.Series), len(specs))
	}
	for si, spec := range specs {
		if res.Series[si].Name != spec.Name {
			t.Errorf("series %d name %q, want %q", si, res.Series[si].Name, spec.Name)
		}
		for pi, b := range bins {
			ref := experiments.RunHistogramPoint(spec, topo, b, testWarmup, testMeasure)
			got := res.Series[si].Points[pi]
			if got.X != b || got.Throughput != ref.Throughput {
				t.Errorf("%s bins=%d: engine (%d, %v) != direct %v",
					spec.Name, b, got.X, got.Throughput, ref.Throughput)
			}
		}
	}
}

// TestTableIIDeltaSurvivesCache checks that the cross-row DeltaPct (a
// finalize-time derivation, deliberately never cached) is identical on
// cold and warm runs.
func TestTableIIDeltaSurvivesCache(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := testJob(TableII)
	r := Runner{Workers: 2, Cache: cache}
	cold, _, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	warm, st, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != 0 {
		t.Fatalf("warm table2 run executed %d simulations", st.Executed)
	}
	sawDelta := false
	for i, p := range cold.Series[0].Points {
		w := warm.Series[0].Points[i]
		if math.Abs(p.DeltaPct-w.DeltaPct) > 1e-12 {
			t.Errorf("%s: cold delta %v != warm delta %v", p.Label, p.DeltaPct, w.DeltaPct)
		}
		if p.DeltaPct != 0 {
			sawDelta = true
		}
	}
	if !sawDelta {
		t.Error("no row carries a nonzero delta vs colibri")
	}
}

// TestRunAllSharesOnePool runs several jobs in one shot and checks each
// result matches its individually-run counterpart.
func TestRunAllSharesOnePool(t *testing.T) {
	jobs := []Job{testJob(Fig3), testJob(TableI), testJob(TableII)}
	r := Runner{Workers: 8}
	all, st, err := r.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(all), len(jobs))
	}
	if st.Units == 0 || st.Executed == 0 {
		t.Fatalf("stats = %+v", st)
	}
	for i, job := range jobs {
		single := resultJSON(t, Runner{Workers: 2}, job)
		combined, err := all[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single, combined) {
			t.Errorf("job %s: combined run differs from single run", job.Kind)
		}
	}
}

// TestDuplicateJobsCollapse checks that selecting the same experiment
// twice costs one simulation per distinct point, with both results
// filled identically.
func TestDuplicateJobsCollapse(t *testing.T) {
	job := testJob(Fig3)
	all, st, err := (&Runner{Workers: 4}).RunAll([]Job{job, job})
	if err != nil {
		t.Fatal(err)
	}
	single, sst, err := (&Runner{Workers: 4}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Units != sst.Units || st.Executed != sst.Executed {
		t.Errorf("duplicate jobs stats %+v, single job %+v", st, sst)
	}
	want, _ := single.JSON()
	for i, res := range all {
		got, _ := res.JSON()
		if !bytes.Equal(got, want) {
			t.Errorf("duplicate result %d differs from single run", i)
		}
	}
}

// TestProgressEvents checks every point reports exactly once and the
// final event carries the full total.
func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	r := Runner{Workers: 4, Progress: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}}
	_, st, err := r.Run(testJob(Fig3))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != st.Units {
		t.Fatalf("%d events for %d units", len(events), st.Units)
	}
	maxDone := 0
	for _, ev := range events {
		if ev.Total != st.Units || ev.Kind != Fig3 {
			t.Fatalf("bad event %+v", ev)
		}
		if ev.Done > maxDone {
			maxDone = ev.Done
		}
	}
	if maxDone != st.Units {
		t.Errorf("max Done = %d, want %d", maxDone, st.Units)
	}
}

func TestTableRenderingMatchesKinds(t *testing.T) {
	for _, kind := range []Kind{TableI} {
		res, _, err := (&Runner{}).Run(testJob(kind))
		if err != nil {
			t.Fatal(err)
		}
		if tbl := res.Table().String(); tbl == "" {
			t.Errorf("%s: empty table", kind)
		}
		if csv := res.CSV(); csv == "" {
			t.Errorf("%s: empty CSV", kind)
		}
	}
}

func TestParseBins(t *testing.T) {
	bins, err := ParseBins(" 1, 2,8 ")
	if err != nil || len(bins) != 3 || bins[2] != 8 {
		t.Errorf("ParseBins = %v, %v", bins, err)
	}
	if b, err := ParseBins(""); err != nil || b != nil {
		t.Errorf("empty ParseBins = %v, %v", b, err)
	}
	if _, err := ParseBins("1,x"); err == nil {
		t.Error("bad token accepted")
	}
	if _, err := ParseBins("-4"); err == nil {
		t.Error("negative bin accepted")
	}
}

func TestOpenCacheFlag(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCacheFlag(dir, false)
	if err != nil || c == nil || c.Dir() != dir {
		t.Errorf("explicit dir: %v, %v", c, err)
	}
	if c, err := OpenCacheFlag("off", true); err != nil || c != nil {
		t.Errorf("off: %v, %v", c, err)
	}
	if c, err := OpenCacheFlag("", false); err != nil || c != nil {
		t.Errorf("default-off: %v, %v", c, err)
	}
}
