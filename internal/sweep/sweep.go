// Package sweep is the parallel sweep orchestration engine: it turns a
// declarative Job (scenario kind × topology × parameters) into the set
// of independent simulation points behind an experiment's figures and
// tables, fans those points out across a worker pool (every point is its
// own deterministic platform.System), memoizes finished points in a
// content-hash disk cache, and assembles structured Results with JSON,
// CSV and aligned-table emitters.
//
// Workloads are open: an experiment is a Scenario registered by name
// (see Register), and the engine is written once against that interface
// — worker pool, policy-grid cross-products, caching and emitters apply
// to custom scenarios exactly as to the built-in paper kinds, which are
// themselves registered scenarios (scenarios.go).
//
// The engine guarantees deterministic output: results are placed by
// index, never by completion order, so a sweep run on one worker is
// byte-identical (as JSON) to the same sweep on many workers, and a
// warm-cache re-run executes zero simulations.
package sweep

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/platform"
)

// Kind names one registered scenario (see Register / Names).
type Kind string

// The built-in scenario kinds: the experiments of the paper's evaluation.
const (
	Fig3    Kind = "fig3"   // histogram throughput vs contention
	Fig4    Kind = "fig4"   // lock implementations vs contention
	Fig5    Kind = "fig5"   // matmul interference under atomics load
	Fig6    Kind = "fig6"   // queue scaling on the FAA ring
	Fig6MS  Kind = "fig6ms" // queue scaling on the Michael-Scott queue
	TableI  Kind = "table1" // tile area model
	TableII Kind = "table2" // energy per atomic access
)

// Kinds lists the built-in kinds in presentation order. Names lists
// every registered scenario, including custom ones.
func Kinds() []Kind {
	return []Kind{Fig3, Fig4, Fig5, Fig6, Fig6MS, TableI, TableII}
}

// cacheVersion invalidates every cached point when the simulator or the
// calibrated models change incompatibly. v4: the registry-based Policy
// API — hardware policies are keyed by registered name through
// experiments.Policy.KeyFragment (policy-owned key fragments) instead of
// enum ordinals, so every pre-registry entry is stale.
const cacheVersion = "v4"

// Job is a declarative sweep specification. Zero-valued fields select
// the scenario's defaults (see Normalize and Scenario.Normalize).
type Job struct {
	Kind Kind   `json:"kind"`
	Topo string `json:"topo"` // experiments.TopoByName key; default "mempool"

	// Bins overrides the swept coordinate values of scenarios with a
	// bins-like axis (fig3, fig4, fig5; custom scenarios may reuse it as
	// their generic sweep coordinate).
	Bins []int `json:"bins,omitempty"`
	// Warmup and Measure are the simulation windows in cycles. Zero
	// selects the scenario default; a negative value requests a literal
	// zero-cycle window (the same convention as HistSpec.Backoff).
	Warmup  int `json:"warmup"`
	Measure int `json:"measure"`
	// MatN is the fig5 matrix dimension (>= worker count).
	MatN int `json:"matn,omitempty"`
	// Cores is the table1 ideal-queue extrapolation core count.
	Cores int `json:"cores,omitempty"`

	// Policy-grid axes (scenarios with GridAxes only). Each non-empty
	// axis overrides the corresponding policy dimension on every curve
	// of the scenario, and the cross-product of all set axes multiplies
	// the series set: one labelled series per (curve, grid coordinate),
	// whose points cross-product with the curve's own coordinate into
	// independent units. Policies names registered platform policies
	// (see platform.PolicyNames), replacing each curve's baked-in
	// hardware policy outright; the remaining axes are literal parameter
	// values: QueueCaps in WaitQueue slots (0 = ideal, one per core),
	// ColibriQueues in head/tail pairs (>= 1), Backoffs in cycles (0 =
	// literally no backoff). Empty axes leave the curves' baked-in
	// policy untouched; all-empty reproduces the grid-free sweep
	// exactly.
	Policies      []string `json:"policies,omitempty"`
	QueueCaps     []int    `json:"queueCaps,omitempty"`
	ColibriQueues []int    `json:"colibriQueues,omitempty"`
	Backoffs      []int    `json:"backoffs,omitempty"`

	// Params carries free-form scenario-defined parameters (custom
	// scenarios read them in Normalize/Curves; the built-in kinds take
	// none). Every entry is part of the cache identity.
	Params map[string]string `json:"params,omitempty"`
}

// defaultWindows fills zero simulation windows with scenario defaults;
// the negative literal-zero sentinel survives. Scenario Normalize
// implementations call it.
func (j *Job) defaultWindows(warmup, measure int) {
	if j.Warmup == 0 {
		j.Warmup = warmup
	}
	if j.Measure == 0 {
		j.Measure = measure
	}
}

// HasGrid reports whether any policy-grid axis is set.
func (j Job) HasGrid() bool {
	return len(j.Policies) > 0 || len(j.QueueCaps) > 0 ||
		len(j.ColibriQueues) > 0 || len(j.Backoffs) > 0
}

// gridPoints expands the job's set axes into the cross-product of grid
// coordinates, Policies-major then QueueCaps, in normalized (ascending)
// order. A job with no grid yields the single zero coordinate: no
// overrides.
func (j Job) gridPoints() []GridCoord {
	coords := []GridCoord{{}}
	cross := func(n int, set func(*GridCoord, int)) {
		if n == 0 {
			return
		}
		out := make([]GridCoord, 0, len(coords)*n)
		for _, c := range coords {
			for i := 0; i < n; i++ {
				next := c
				set(&next, i)
				out = append(out, next)
			}
		}
		coords = out
	}
	cross(len(j.Policies), func(c *GridCoord, i int) { c.Policy = &j.Policies[i] })
	cross(len(j.QueueCaps), func(c *GridCoord, i int) { c.QueueCap = &j.QueueCaps[i] })
	cross(len(j.ColibriQueues), func(c *GridCoord, i int) { c.ColibriQueues = &j.ColibriQueues[i] })
	cross(len(j.Backoffs), func(c *GridCoord, i int) { c.Backoff = &j.Backoffs[i] })
	return coords
}

// gridName suffixes a series name with its grid coordinate.
func gridName(name string, g GridCoord) string {
	if g.IsZero() {
		return name
	}
	return name + " [" + g.Label() + "]"
}

// Normalize resolves the job's scenario from the registry, fills the
// scenario's defaults, and applies the shared validation. Grid axes are
// canonicalized — sorted ascending with duplicates removed — so value
// order can never fork cache identities. The returned job is what keys
// the cache and is recorded in the Result, so two specs that normalize
// identically share cached points.
func (j Job) Normalize() (Job, error) {
	sc, ok := Lookup(string(j.Kind))
	if !ok {
		return j, fmt.Errorf("sweep: unknown kind %q (registered: %s)", j.Kind, namesList())
	}
	if j.Topo == "" {
		j.Topo = "mempool"
	}
	topo, ok := experiments.TopoByName(j.Topo)
	if !ok {
		return j, fmt.Errorf("sweep: unknown topology %q", j.Topo)
	}
	if len(j.Params) == 0 {
		j.Params = nil
	}
	j, err := sc.Normalize(j, topo)
	if err != nil {
		return j, err
	}
	for _, b := range j.Bins {
		if b <= 0 {
			return j, fmt.Errorf("sweep: bad bin count %d", b)
		}
	}
	if j.HasGrid() {
		if !sc.GridAxes() {
			return j, fmt.Errorf("sweep: policy-grid axes do not apply to %s", j.Kind)
		}
		j.Policies = canonAxis(j.Policies)
		j.QueueCaps = canonAxis(j.QueueCaps)
		j.ColibriQueues = canonAxis(j.ColibriQueues)
		j.Backoffs = canonAxis(j.Backoffs)
		for _, name := range j.Policies {
			if _, ok := platform.LookupPolicy(name); !ok {
				return j, fmt.Errorf("sweep: unknown policy %q (registered: %s)",
					name, strings.Join(platform.PolicyNames(), ", "))
			}
		}
		for _, v := range j.QueueCaps {
			if v < 0 {
				return j, fmt.Errorf("sweep: bad grid queuecap %d (0 = ideal, else slots)", v)
			}
		}
		for _, v := range j.ColibriQueues {
			if v < 1 {
				return j, fmt.Errorf("sweep: bad grid colibriq %d (need >= 1 head/tail pair)", v)
			}
		}
		for _, v := range j.Backoffs {
			if v < 0 {
				return j, fmt.Errorf("sweep: bad grid backoff %d (cycles, 0 = none)", v)
			}
		}
	}
	return j, nil
}

// canonAxis sorts a grid axis ascending and removes duplicates (it
// serves the int parameter axes and the string policy axis alike). Nil
// in, nil out, so grid-free jobs stay byte-identical through Normalize.
func canonAxis[T cmp.Ordered](vals []T) []T {
	if len(vals) == 0 {
		return nil
	}
	out := make([]T, len(vals))
	copy(out, vals)
	slices.Sort(out)
	n := 1
	for _, v := range out[1:] {
		if v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// unit is one independent point of a sweep: where its result goes
// (series/point index), its cache identity, whether computing it runs a
// simulation (pure model arithmetic doesn't), and how to compute it.
// Units with an empty key are never cached.
type unit struct {
	si, pi int
	key    string
	sim    bool
	run    func() Point
}

// keyPrefix canonicalizes everything every unit of the job shares. The
// topology is keyed by its full shape (per-tile and per-group structure,
// not just totals — grouping changes NoC distances), so a renamed alias
// of the same machine still hits while a restructured one misses; the
// scenario-defined Params enter sorted so map order cannot fork
// identities. The binary fingerprint invalidates the cache whenever the
// simulator itself is rebuilt with different code; when the binary
// cannot be fingerprinted the prefix is empty, which disables caching
// entirely — running fresh is always safe, serving stale never is.
func (j Job) keyPrefix(topo noc.Topology) string {
	fp := binaryFingerprint()
	if fp == "" {
		return ""
	}
	prefix := fmt.Sprintf("%s|%s|%s|ct%d|bt%d|tg%d|g%d|w%d|m%d",
		cacheVersion, fp, j.Kind,
		topo.CoresPerTile, topo.BanksPerTile, topo.TilesPerGroup, topo.NumGroups,
		window(j.Warmup), window(j.Measure))
	if len(j.Params) > 0 {
		keys := make([]string, 0, len(j.Params))
		for k := range j.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteString(prefix)
		for _, k := range keys {
			// Quoted, not raw: a value containing the key separators
			// ("a" = "1|b=2") must never collapse onto a different map
			// ({"a":"1","b":"2"}) — strconv.Quote escapes embedded
			// quotes, so the encoding is injective.
			fmt.Fprintf(&sb, "|%s=%s", strconv.Quote(k), strconv.Quote(j.Params[k]))
		}
		prefix = sb.String()
	}
	return prefix
}

// window resolves the negative literal-zero sentinel to cycles.
func window(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// expand resolves a normalized job into its series skeleton and the flat
// unit list, entirely through the job's Scenario: the scenario's curves
// cross-product with the job's grid coordinates — one series per (curve,
// coordinate), curve-major so a curve's grid variants stay adjacent —
// and every (series, point) slot becomes one unit. Series names and
// point slots are fully determined here, so assembly is pure placement.
func expand(j Job) (noc.Topology, []Series, []unit, error) {
	sc, ok := Lookup(string(j.Kind))
	if !ok {
		return noc.Topology{}, nil, nil, fmt.Errorf("sweep: unknown kind %q (registered: %s)",
			j.Kind, namesList())
	}
	topo, ok := experiments.TopoByName(j.Topo)
	if !ok {
		return noc.Topology{}, nil, nil, fmt.Errorf("sweep: unknown topology %q", j.Topo)
	}
	curves, err := sc.Curves(topo, j)
	if err != nil {
		return noc.Topology{}, nil, nil, err
	}
	prefix := j.keyPrefix(topo)
	grid := j.gridPoints()
	var series []Series
	var units []unit
	for _, c := range curves {
		if c.Run == nil {
			return noc.Topology{}, nil, nil, fmt.Errorf("sweep: scenario %q curve %q has no Run",
				j.Kind, c.Name)
		}
		if c.NumPoints < 0 {
			return noc.Topology{}, nil, nil, fmt.Errorf("sweep: scenario %q curve %q has %d points",
				j.Kind, c.Name, c.NumPoints)
		}
		for _, g := range grid {
			si := len(series)
			series = append(series, Series{Name: gridName(c.Name, g),
				Grid: g.ref(), Points: make([]Point, c.NumPoints)})
			for pi := 0; pi < c.NumPoints; pi++ {
				key := ""
				if prefix != "" && c.Key != nil {
					if frag := c.Key(g, pi); frag != "" {
						key = prefix + "|" + frag
					}
				}
				c, g, pi := c, g, pi
				units = append(units, unit{
					si: si, pi: pi, sim: c.Sim, key: key,
					run: func() Point { return c.Run(g, pi) },
				})
			}
		}
	}
	return topo, series, units, nil
}

// finalize applies the scenario's cross-point derivations (Finalizer)
// after all units of a job have landed, cached or executed.
func finalize(r *Result) {
	sc, ok := Lookup(string(r.Job.Kind))
	if !ok {
		return
	}
	if f, ok := sc.(Finalizer); ok {
		f.Finalize(r)
	}
}
