// Package sweep is the parallel sweep orchestration engine: it turns a
// declarative Job (experiment kind × topology × parameters) into the set
// of independent simulation points behind the paper's figures and tables,
// fans those points out across a worker pool (every point is its own
// deterministic platform.System), memoizes finished points in a
// content-hash disk cache, and assembles structured Results with JSON,
// CSV and aligned-table emitters.
//
// The engine guarantees deterministic output: results are placed by
// index, never by completion order, so a sweep run on one worker is
// byte-identical (as JSON) to the same sweep on many workers, and a
// warm-cache re-run executes zero simulations.
package sweep

import (
	"fmt"
	"sort"

	"repro/internal/area"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/noc"
)

// Kind names one experiment of the paper's evaluation.
type Kind string

// The experiment kinds the engine can sweep.
const (
	Fig3    Kind = "fig3"   // histogram throughput vs contention
	Fig4    Kind = "fig4"   // lock implementations vs contention
	Fig5    Kind = "fig5"   // matmul interference under atomics load
	Fig6    Kind = "fig6"   // queue scaling on the FAA ring
	Fig6MS  Kind = "fig6ms" // queue scaling on the Michael-Scott queue
	TableI  Kind = "table1" // tile area model
	TableII Kind = "table2" // energy per atomic access
)

// Kinds lists every experiment kind in presentation order.
func Kinds() []Kind {
	return []Kind{Fig3, Fig4, Fig5, Fig6, Fig6MS, TableI, TableII}
}

// cacheVersion invalidates every cached point when the simulator or the
// calibrated models change incompatibly. v2: policy-grid axes — unit
// keys now carry the effective (possibly grid-overridden) policy, so
// every pre-grid entry is stale.
const cacheVersion = "v2"

// Per-kind default simulation parameters, shared by Job.Normalize and
// the legacy cmd tools' flag defaults so the two paths cannot drift.
const (
	DefaultHistWarmup, DefaultHistMeasure       = 3000, 10000 // fig3, fig4
	DefaultFig5Warmup, DefaultFig5Measure       = 4000, 20000
	DefaultFig6Warmup, DefaultFig6Measure       = 3000, 12000
	DefaultTableIIWarmup, DefaultTableIIMeasure = 4000, 20000
	DefaultMatN                                 = 128
)

// Job is a declarative sweep specification. Zero-valued fields select the
// per-kind defaults of the original cmd tools (see Normalize).
type Job struct {
	Kind Kind   `json:"kind"`
	Topo string `json:"topo"` // experiments.TopoByName key; default "mempool"

	// Bins overrides the swept histogram bin counts (fig3, fig4, fig5).
	Bins []int `json:"bins,omitempty"`
	// Warmup and Measure are the simulation windows in cycles. Zero
	// selects the per-kind default; a negative value requests a literal
	// zero-cycle window (the same convention as HistSpec.Backoff).
	Warmup  int `json:"warmup"`
	Measure int `json:"measure"`
	// MatN is the fig5 matrix dimension (>= worker count).
	MatN int `json:"matn,omitempty"`
	// Cores is the table1 ideal-queue extrapolation core count.
	Cores int `json:"cores,omitempty"`

	// Policy-grid axes (figure kinds only). Each non-empty axis overrides
	// the corresponding policy parameter on every curve spec of the kind,
	// and the cross-product of all set axes multiplies the series set:
	// one labelled series per (spec, grid coordinate), whose points
	// cross-product with Bins (or the fig6 core counts) into independent
	// units. Values are literal: QueueCaps in WaitQueue slots (0 = ideal,
	// one per core), ColibriQueues in head/tail pairs (>= 1), Backoffs in
	// cycles (0 = literally no backoff). Empty axes leave the spec's
	// baked-in parameters untouched; all-empty reproduces the grid-free
	// sweep exactly.
	QueueCaps     []int `json:"queueCaps,omitempty"`
	ColibriQueues []int `json:"colibriQueues,omitempty"`
	Backoffs      []int `json:"backoffs,omitempty"`
}

// HasGrid reports whether any policy-grid axis is set.
func (j Job) HasGrid() bool {
	return len(j.QueueCaps) > 0 || len(j.ColibriQueues) > 0 || len(j.Backoffs) > 0
}

// gridPoints expands the job's set axes into the cross-product of grid
// coordinates, QueueCaps-major, in normalized (ascending) order. A job
// with no grid yields the single zero coordinate: no overrides.
func (j Job) gridPoints() []GridCoord {
	coords := []GridCoord{{}}
	cross := func(vals []int, set func(*GridCoord, *int)) {
		if len(vals) == 0 {
			return
		}
		out := make([]GridCoord, 0, len(coords)*len(vals))
		for _, c := range coords {
			for i := range vals {
				next := c
				set(&next, &vals[i])
				out = append(out, next)
			}
		}
		coords = out
	}
	cross(j.QueueCaps, func(c *GridCoord, v *int) { c.QueueCap = v })
	cross(j.ColibriQueues, func(c *GridCoord, v *int) { c.ColibriQueues = v })
	cross(j.Backoffs, func(c *GridCoord, v *int) { c.Backoff = v })
	return coords
}

// gridPolicy merges a grid coordinate over a spec's baked-in policy.
// Grid backoffs are literal cycles, so they are re-encoded in the
// Policy convention (0 cycles -> the negative no-backoff sentinel).
func gridPolicy(base experiments.Policy, g GridCoord) experiments.Policy {
	if g.QueueCap != nil {
		base.QueueCap = *g.QueueCap
	}
	if g.ColibriQueues != nil {
		base.ColibriQueues = *g.ColibriQueues
	}
	if g.Backoff != nil {
		base.Backoff = experiments.LiteralBackoff(*g.Backoff)
	}
	return base
}

// gridName suffixes a series name with its grid coordinate.
func gridName(name string, g GridCoord) string {
	if g.IsZero() {
		return name
	}
	return name + " [" + g.Label() + "]"
}

// Normalize fills per-kind defaults (matching the historical cmd tools)
// and validates the job. Grid axes are canonicalized — sorted ascending
// with duplicates removed — so value order can never fork cache
// identities. The returned job is what keys the cache and is recorded in
// the Result, so two specs that normalize identically share cached
// points.
func (j Job) Normalize() (Job, error) {
	if j.Topo == "" {
		j.Topo = "mempool"
	}
	topo, ok := experiments.TopoByName(j.Topo)
	if !ok {
		return j, fmt.Errorf("sweep: unknown topology %q", j.Topo)
	}
	windows := func(warmup, measure int) {
		if j.Warmup == 0 {
			j.Warmup = warmup
		}
		if j.Measure == 0 {
			j.Measure = measure
		}
	}
	switch j.Kind {
	case Fig3, Fig4:
		windows(DefaultHistWarmup, DefaultHistMeasure)
		if len(j.Bins) == 0 {
			j.Bins = experiments.StandardBins(topo)
		}
	case Fig5:
		windows(DefaultFig5Warmup, DefaultFig5Measure)
		if len(j.Bins) == 0 {
			j.Bins = []int{1, 4, 8, 12, 16}
		}
		if j.MatN == 0 {
			j.MatN = DefaultMatN
		}
	case Fig6, Fig6MS:
		windows(DefaultFig6Warmup, DefaultFig6Measure)
	case TableI:
		if j.Cores == 0 {
			j.Cores = topo.NumCores()
		}
	case TableII:
		windows(DefaultTableIIWarmup, DefaultTableIIMeasure)
	default:
		return j, fmt.Errorf("sweep: unknown kind %q", j.Kind)
	}
	for _, b := range j.Bins {
		if b <= 0 {
			return j, fmt.Errorf("sweep: bad bin count %d", b)
		}
	}
	if j.HasGrid() {
		switch j.Kind {
		case TableI, TableII:
			return j, fmt.Errorf("sweep: policy-grid axes do not apply to %s", j.Kind)
		}
		j.QueueCaps = canonAxis(j.QueueCaps)
		j.ColibriQueues = canonAxis(j.ColibriQueues)
		j.Backoffs = canonAxis(j.Backoffs)
		for _, v := range j.QueueCaps {
			if v < 0 {
				return j, fmt.Errorf("sweep: bad grid queuecap %d (0 = ideal, else slots)", v)
			}
		}
		for _, v := range j.ColibriQueues {
			if v < 1 {
				return j, fmt.Errorf("sweep: bad grid colibriq %d (need >= 1 head/tail pair)", v)
			}
		}
		for _, v := range j.Backoffs {
			if v < 0 {
				return j, fmt.Errorf("sweep: bad grid backoff %d (cycles, 0 = none)", v)
			}
		}
	}
	return j, nil
}

// canonAxis sorts a grid axis ascending and removes duplicates. Nil in,
// nil out, so grid-free jobs stay byte-identical through Normalize.
func canonAxis(vals []int) []int {
	if len(vals) == 0 {
		return nil
	}
	out := make([]int, len(vals))
	copy(out, vals)
	sort.Ints(out)
	n := 1
	for _, v := range out[1:] {
		if v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// unit is one independent point of a sweep: where its result goes
// (series/point index), its cache identity, whether computing it runs a
// simulation (tables of pure model arithmetic don't), and how to compute
// it. Units with an empty key are never cached.
type unit struct {
	si, pi int
	key    string
	sim    bool
	run    func() Point
}

// keyPrefix canonicalizes everything every unit of the job shares. The
// topology is keyed by its full shape (per-tile and per-group structure,
// not just totals — grouping changes NoC distances), so a renamed alias
// of the same machine still hits while a restructured one misses. The
// binary fingerprint invalidates the cache whenever the simulator itself
// is rebuilt with different code; when the binary cannot be
// fingerprinted the prefix is empty, which disables caching entirely —
// running fresh is always safe, serving stale never is.
func (j Job) keyPrefix(topo noc.Topology) string {
	fp := binaryFingerprint()
	if fp == "" {
		return ""
	}
	return fmt.Sprintf("%s|%s|%s|ct%d|bt%d|tg%d|g%d|w%d|m%d",
		cacheVersion, fp, j.Kind,
		topo.CoresPerTile, topo.BanksPerTile, topo.TilesPerGroup, topo.NumGroups,
		window(j.Warmup), window(j.Measure))
}

// keyf builds a unit cache key, or "" (uncacheable) when the job prefix
// is empty.
func keyf(prefix, format string, args ...any) string {
	if prefix == "" {
		return ""
	}
	return prefix + "|" + fmt.Sprintf(format, args...)
}

// histSpecKey canonicalizes a histogram curve spec together with the
// effective policy it runs under. The policy is keyed fully resolved —
// backoff in literal cycles, Colibri queues as the count the platform
// instantiates — so a grid value that merely restates a default (e.g.
// backoff=128 or colibriq=4) hits the same cache entry as the grid-free
// run: it is the same simulation. Jobs differing in any effective axis
// get distinct keys. QueueCap stays literal: 0 (ideal, one slot per
// core) is resolved by the platform against the topology, which is
// already part of the key prefix.
func histSpecKey(s experiments.HistSpec, pol experiments.Policy) string {
	return fmt.Sprintf("%s|v%d|p%d|q%d|cq%d|bo%d",
		s.Name, s.Variant, s.Policy, pol.QueueCap,
		pol.ResolveColibriQueues(), pol.ResolveBackoff())
}

// queueSpecKey canonicalizes a queue curve spec and its effective,
// fully-resolved policy (see histSpecKey).
func queueSpecKey(s experiments.QueueSpec, pol experiments.Policy) string {
	return fmt.Sprintf("%s|v%d|p%d|ms%t|q%d|cq%d|bo%d",
		s.Name, s.Variant, s.Policy, s.MS, pol.QueueCap,
		pol.ResolveColibriQueues(), pol.ResolveBackoff())
}

// window resolves the negative literal-zero sentinel to cycles.
func window(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// expand resolves a normalized job into its series skeleton and the flat
// unit list. Series names and point slots are fully determined here —
// for grid jobs one series per (spec, grid coordinate), spec-major so a
// curve's grid variants stay adjacent — so assembly is pure placement.
func expand(j Job) (noc.Topology, []Series, []unit, error) {
	topo, ok := experiments.TopoByName(j.Topo)
	if !ok {
		return noc.Topology{}, nil, nil, fmt.Errorf("sweep: unknown topology %q", j.Topo)
	}
	prefix := j.keyPrefix(topo)
	warmup, measure := window(j.Warmup), window(j.Measure)
	grid := j.gridPoints()
	var series []Series
	var units []unit

	histUnits := func(specs []experiments.HistSpec) {
		for _, spec := range specs {
			for _, g := range grid {
				pol := gridPolicy(spec.PolicyConfig(), g)
				si := len(series)
				series = append(series, Series{Name: gridName(spec.Name, g),
					Grid: g.ref(), Points: make([]Point, len(j.Bins))})
				for pi, bins := range j.Bins {
					units = append(units, unit{
						si: si, pi: pi, sim: true,
						key: keyf(prefix, "%s|bins%d", histSpecKey(spec, pol), bins),
						run: func() Point {
							p := experiments.RunHistogramPointPolicy(spec, pol, topo,
								bins, warmup, measure)
							return Point{X: bins, Throughput: p.Throughput}
						},
					})
				}
			}
		}
	}

	switch j.Kind {
	case Fig3:
		histUnits(experiments.Fig3Specs(topo.NumCores()))
	case Fig4:
		histUnits(experiments.Fig4Specs())
	case Fig5:
		for _, c := range experiments.Fig5Curves(topo.NumCores()) {
			for _, g := range grid {
				pol := gridPolicy(c.Spec.PolicyConfig(), g)
				si := len(series)
				series = append(series, Series{Name: gridName(c.Name, g),
					Grid: g.ref(), Points: make([]Point, len(j.Bins))})
				for pi, bins := range j.Bins {
					units = append(units, unit{
						si: si, pi: pi, sim: true,
						key: keyf(prefix, "%s|r%d:%d|n%d|bins%d",
							histSpecKey(c.Spec, pol), c.Ratio.Pollers, c.Ratio.Workers, j.MatN, bins),
						run: func() Point {
							p := experiments.RunInterferencePointPolicy(c.Spec, pol, topo,
								c.Ratio, bins, j.MatN, warmup, measure)
							return Point{X: bins, Rel: p.Rel,
								BaselineOps: p.BaselineOps, LoadedOps: p.LoadedOps}
						},
					})
				}
			}
		}
	case Fig6, Fig6MS:
		specs := experiments.Fig6Specs()
		if j.Kind == Fig6MS {
			specs = experiments.Fig6MSSpecs()
		}
		counts := experiments.Fig6Counts(topo)
		for _, spec := range specs {
			for _, g := range grid {
				pol := gridPolicy(spec.PolicyConfig(), g)
				si := len(series)
				series = append(series, Series{Name: gridName(spec.Name, g),
					Grid: g.ref(), Points: make([]Point, len(counts))})
				for pi, n := range counts {
					units = append(units, unit{
						si: si, pi: pi, sim: true,
						key: keyf(prefix, "%s|active%d", queueSpecKey(spec, pol), n),
						run: func() Point {
							p := experiments.RunQueuePointPolicy(spec, pol, topo,
								n, warmup, measure)
							return Point{X: n, Throughput: p.Throughput,
								MinPerCore: p.MinPerCore, MaxPerCore: p.MaxPerCore}
						},
					})
				}
			}
		}
	case TableI:
		rows := area.TableI(area.Default(), j.Cores)
		series = append(series, Series{Name: "table1", Points: make([]Point, len(rows))})
		for pi, r := range rows {
			units = append(units, unit{
				si: 0, pi: pi,
				// key empty, sim false: pure arithmetic, cheaper to
				// recompute than to hash.
				run: func() Point {
					return Point{X: pi, Label: r.Design, Params: r.Params,
						AreaKGE: r.AreaKGE, OverheadPct: r.OverheadP, PaperKGE: r.PaperKGE}
				},
			})
		}
	case TableII:
		specs := experiments.TableIISpecs()
		series = append(series, Series{Name: "table2", Points: make([]Point, len(specs))})
		for pi, spec := range specs {
			units = append(units, unit{
				si: 0, pi: pi, sim: true,
				key: keyf(prefix, "%s|energy", histSpecKey(spec, spec.PolicyConfig())),
				run: func() Point {
					row := experiments.TableIIRow(spec, topo, energy.Default(), warmup, measure)
					return Point{X: pi, Label: row.Name, Backoff: row.Backoff,
						PowerMW: row.PowerMW, PJPerOp: row.PJPerOp, PaperPJ: row.PaperPJ}
				},
			})
		}
	default:
		return noc.Topology{}, nil, nil, fmt.Errorf("sweep: unknown kind %q", j.Kind)
	}
	return topo, series, units, nil
}

// finalize computes cross-point derived values after all units of a job
// have landed (cached or executed). It never feeds the cache, so cached
// and freshly-run results finalize identically.
func finalize(r *Result) {
	if r.Job.Kind != TableII || len(r.Series) == 0 {
		return
	}
	points := r.Series[0].Points
	rows := make([]experiments.EnergyRow, len(points))
	for i, p := range points {
		rows[i] = experiments.EnergyRow{Name: p.Label, PJPerOp: p.PJPerOp}
	}
	experiments.TableIIDelta(rows)
	for i := range points {
		points[i].DeltaPct = rows[i].DeltaPct
	}
}
