// Package sweep is the parallel sweep orchestration engine: it turns a
// declarative Job (experiment kind × topology × parameters) into the set
// of independent simulation points behind the paper's figures and tables,
// fans those points out across a worker pool (every point is its own
// deterministic platform.System), memoizes finished points in a
// content-hash disk cache, and assembles structured Results with JSON,
// CSV and aligned-table emitters.
//
// The engine guarantees deterministic output: results are placed by
// index, never by completion order, so a sweep run on one worker is
// byte-identical (as JSON) to the same sweep on many workers, and a
// warm-cache re-run executes zero simulations.
package sweep

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/noc"
)

// Kind names one experiment of the paper's evaluation.
type Kind string

// The experiment kinds the engine can sweep.
const (
	Fig3    Kind = "fig3"   // histogram throughput vs contention
	Fig4    Kind = "fig4"   // lock implementations vs contention
	Fig5    Kind = "fig5"   // matmul interference under atomics load
	Fig6    Kind = "fig6"   // queue scaling on the FAA ring
	Fig6MS  Kind = "fig6ms" // queue scaling on the Michael-Scott queue
	TableI  Kind = "table1" // tile area model
	TableII Kind = "table2" // energy per atomic access
)

// Kinds lists every experiment kind in presentation order.
func Kinds() []Kind {
	return []Kind{Fig3, Fig4, Fig5, Fig6, Fig6MS, TableI, TableII}
}

// cacheVersion invalidates every cached point when the simulator or the
// calibrated models change incompatibly.
const cacheVersion = "v1"

// Per-kind default simulation parameters, shared by Job.Normalize and
// the legacy cmd tools' flag defaults so the two paths cannot drift.
const (
	DefaultHistWarmup, DefaultHistMeasure       = 3000, 10000 // fig3, fig4
	DefaultFig5Warmup, DefaultFig5Measure       = 4000, 20000
	DefaultFig6Warmup, DefaultFig6Measure       = 3000, 12000
	DefaultTableIIWarmup, DefaultTableIIMeasure = 4000, 20000
	DefaultMatN                                 = 128
)

// Job is a declarative sweep specification. Zero-valued fields select the
// per-kind defaults of the original cmd tools (see Normalize).
type Job struct {
	Kind Kind   `json:"kind"`
	Topo string `json:"topo"` // experiments.TopoByName key; default "mempool"

	// Bins overrides the swept histogram bin counts (fig3, fig4, fig5).
	Bins []int `json:"bins,omitempty"`
	// Warmup and Measure are the simulation windows in cycles. Zero
	// selects the per-kind default; a negative value requests a literal
	// zero-cycle window (the same convention as HistSpec.Backoff).
	Warmup  int `json:"warmup"`
	Measure int `json:"measure"`
	// MatN is the fig5 matrix dimension (>= worker count).
	MatN int `json:"matn,omitempty"`
	// Cores is the table1 ideal-queue extrapolation core count.
	Cores int `json:"cores,omitempty"`
}

// Normalize fills per-kind defaults (matching the historical cmd tools)
// and validates the job. The returned job is what keys the cache and is
// recorded in the Result, so two specs that normalize identically share
// cached points.
func (j Job) Normalize() (Job, error) {
	if j.Topo == "" {
		j.Topo = "mempool"
	}
	topo, ok := experiments.TopoByName(j.Topo)
	if !ok {
		return j, fmt.Errorf("sweep: unknown topology %q", j.Topo)
	}
	windows := func(warmup, measure int) {
		if j.Warmup == 0 {
			j.Warmup = warmup
		}
		if j.Measure == 0 {
			j.Measure = measure
		}
	}
	switch j.Kind {
	case Fig3, Fig4:
		windows(DefaultHistWarmup, DefaultHistMeasure)
		if len(j.Bins) == 0 {
			j.Bins = experiments.StandardBins(topo)
		}
	case Fig5:
		windows(DefaultFig5Warmup, DefaultFig5Measure)
		if len(j.Bins) == 0 {
			j.Bins = []int{1, 4, 8, 12, 16}
		}
		if j.MatN == 0 {
			j.MatN = DefaultMatN
		}
	case Fig6, Fig6MS:
		windows(DefaultFig6Warmup, DefaultFig6Measure)
	case TableI:
		if j.Cores == 0 {
			j.Cores = topo.NumCores()
		}
	case TableII:
		windows(DefaultTableIIWarmup, DefaultTableIIMeasure)
	default:
		return j, fmt.Errorf("sweep: unknown kind %q", j.Kind)
	}
	for _, b := range j.Bins {
		if b <= 0 {
			return j, fmt.Errorf("sweep: bad bin count %d", b)
		}
	}
	return j, nil
}

// unit is one independent point of a sweep: where its result goes
// (series/point index), its cache identity, whether computing it runs a
// simulation (tables of pure model arithmetic don't), and how to compute
// it. Units with an empty key are never cached.
type unit struct {
	si, pi int
	key    string
	sim    bool
	run    func() Point
}

// keyPrefix canonicalizes everything every unit of the job shares. The
// topology is keyed by its full shape (per-tile and per-group structure,
// not just totals — grouping changes NoC distances), so a renamed alias
// of the same machine still hits while a restructured one misses. The
// binary fingerprint invalidates the cache whenever the simulator itself
// is rebuilt with different code; when the binary cannot be
// fingerprinted the prefix is empty, which disables caching entirely —
// running fresh is always safe, serving stale never is.
func (j Job) keyPrefix(topo noc.Topology) string {
	fp := binaryFingerprint()
	if fp == "" {
		return ""
	}
	return fmt.Sprintf("%s|%s|%s|ct%d|bt%d|tg%d|g%d|w%d|m%d",
		cacheVersion, fp, j.Kind,
		topo.CoresPerTile, topo.BanksPerTile, topo.TilesPerGroup, topo.NumGroups,
		window(j.Warmup), window(j.Measure))
}

// keyf builds a unit cache key, or "" (uncacheable) when the job prefix
// is empty.
func keyf(prefix, format string, args ...any) string {
	if prefix == "" {
		return ""
	}
	return prefix + "|" + fmt.Sprintf(format, args...)
}

// histSpecKey canonicalizes a histogram curve spec.
func histSpecKey(s experiments.HistSpec) string {
	return fmt.Sprintf("%s|v%d|p%d|q%d|cq%d|bo%d",
		s.Name, s.Variant, s.Policy, s.QueueCap, s.ColibriQueues, s.Backoff)
}

// queueSpecKey canonicalizes a queue curve spec.
func queueSpecKey(s experiments.QueueSpec) string {
	return fmt.Sprintf("%s|v%d|p%d|ms%t", s.Name, s.Variant, s.Policy, s.MS)
}

// window resolves the negative literal-zero sentinel to cycles.
func window(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// expand resolves a normalized job into its series skeleton and the flat
// unit list. Series names and point slots are fully determined here, so
// assembly is pure placement.
func expand(j Job) (noc.Topology, []Series, []unit, error) {
	topo, ok := experiments.TopoByName(j.Topo)
	if !ok {
		return noc.Topology{}, nil, nil, fmt.Errorf("sweep: unknown topology %q", j.Topo)
	}
	prefix := j.keyPrefix(topo)
	warmup, measure := window(j.Warmup), window(j.Measure)
	var series []Series
	var units []unit

	histUnits := func(specs []experiments.HistSpec) {
		for si, spec := range specs {
			series = append(series, Series{Name: spec.Name, Points: make([]Point, len(j.Bins))})
			for pi, bins := range j.Bins {
				units = append(units, unit{
					si: si, pi: pi, sim: true,
					key: keyf(prefix, "%s|bins%d", histSpecKey(spec), bins),
					run: func() Point {
						p := experiments.RunHistogramPoint(spec, topo, bins, warmup, measure)
						return Point{X: bins, Throughput: p.Throughput}
					},
				})
			}
		}
	}

	switch j.Kind {
	case Fig3:
		histUnits(experiments.Fig3Specs(topo.NumCores()))
	case Fig4:
		histUnits(experiments.Fig4Specs())
	case Fig5:
		for si, c := range experiments.Fig5Curves(topo.NumCores()) {
			series = append(series, Series{Name: c.Name, Points: make([]Point, len(j.Bins))})
			for pi, bins := range j.Bins {
				units = append(units, unit{
					si: si, pi: pi, sim: true,
					key: keyf(prefix, "%s|r%d:%d|n%d|bins%d",
						histSpecKey(c.Spec), c.Ratio.Pollers, c.Ratio.Workers, j.MatN, bins),
					run: func() Point {
						p := experiments.RunInterferencePoint(c.Spec, topo, c.Ratio,
							bins, j.MatN, warmup, measure)
						return Point{X: bins, Rel: p.Rel,
							BaselineOps: p.BaselineOps, LoadedOps: p.LoadedOps}
					},
				})
			}
		}
	case Fig6, Fig6MS:
		specs := experiments.Fig6Specs()
		if j.Kind == Fig6MS {
			specs = experiments.Fig6MSSpecs()
		}
		counts := experiments.Fig6Counts(topo)
		for si, spec := range specs {
			series = append(series, Series{Name: spec.Name, Points: make([]Point, len(counts))})
			for pi, n := range counts {
				units = append(units, unit{
					si: si, pi: pi, sim: true,
					key: keyf(prefix, "%s|active%d", queueSpecKey(spec), n),
					run: func() Point {
						p := experiments.RunQueuePoint(spec, topo, n, warmup, measure)
						return Point{X: n, Throughput: p.Throughput,
							MinPerCore: p.MinPerCore, MaxPerCore: p.MaxPerCore}
					},
				})
			}
		}
	case TableI:
		rows := area.TableI(area.Default(), j.Cores)
		series = append(series, Series{Name: "table1", Points: make([]Point, len(rows))})
		for pi, r := range rows {
			units = append(units, unit{
				si: 0, pi: pi,
				// key empty, sim false: pure arithmetic, cheaper to
				// recompute than to hash.
				run: func() Point {
					return Point{X: pi, Label: r.Design, Params: r.Params,
						AreaKGE: r.AreaKGE, OverheadPct: r.OverheadP, PaperKGE: r.PaperKGE}
				},
			})
		}
	case TableII:
		specs := experiments.TableIISpecs()
		series = append(series, Series{Name: "table2", Points: make([]Point, len(specs))})
		for pi, spec := range specs {
			units = append(units, unit{
				si: 0, pi: pi, sim: true,
				key: keyf(prefix, "%s|energy", histSpecKey(spec)),
				run: func() Point {
					row := experiments.TableIIRow(spec, topo, energy.Default(), warmup, measure)
					return Point{X: pi, Label: row.Name, Backoff: row.Backoff,
						PowerMW: row.PowerMW, PJPerOp: row.PJPerOp, PaperPJ: row.PaperPJ}
				},
			})
		}
	default:
		return noc.Topology{}, nil, nil, fmt.Errorf("sweep: unknown kind %q", j.Kind)
	}
	return topo, series, units, nil
}

// finalize computes cross-point derived values after all units of a job
// have landed (cached or executed). It never feeds the cache, so cached
// and freshly-run results finalize identically.
func finalize(r *Result) {
	if r.Job.Kind != TableII || len(r.Series) == 0 {
		return
	}
	points := r.Series[0].Points
	rows := make([]experiments.EnergyRow, len(points))
	for i, p := range points {
		rows[i] = experiments.EnergyRow{Name: p.Label, PJPerOp: p.PJPerOp}
	}
	experiments.TableIIDelta(rows)
	for i := range points {
		points[i].DeltaPct = rows[i].DeltaPct
	}
}
