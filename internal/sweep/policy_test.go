package sweep

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/area"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/platform"
)

// areaHookPolicy is a minimal custom policy carrying the area.PolicyRows
// hook, registered only in this test binary.
type areaHookPolicy struct{}

func (areaHookPolicy) Name() string { return "hook-test" }
func (p areaHookPolicy) Normalize(params platform.PolicyParams, _ noc.Topology) (platform.Policy, error) {
	if err := params.Check(); err != nil {
		return nil, err
	}
	return p, nil
}
func (areaHookPolicy) NewAdapter(platform.BankContext) mem.Adapter { return mem.PlainAdapter{} }
func (areaHookPolicy) AreaRows(m area.Model, nCores int) []area.Row {
	return []area.Row{{Design: "with hook-test", Params: "test", AreaKGE: 700}}
}

// registerAreaHookPolicy tolerates repeated in-process runs
// (go test -count=2); the registry has deliberately no unregister.
var registerAreaHookPolicy = sync.OnceFunc(func() {
	platform.MustRegisterPolicy(areaHookPolicy{})
})

// The policy grid axis: sweeping the hardware policy itself, by
// registered name, next to the parameter axes.

func TestNormalizePolicyAxisCanonicalized(t *testing.T) {
	j := Job{Kind: Fig3, Topo: "small", Bins: []int{1},
		Policies: []string{"lrsc", "colibri", "lrsc"}}
	n, err := j.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n.Policies, []string{"colibri", "lrsc"}) {
		t.Errorf("policy axis not canonicalized: %v", n.Policies)
	}
	if !n.HasGrid() {
		t.Error("HasGrid false with only the policy axis set")
	}
}

// TestUnknownPolicyErrorListsRegistered pins the error a mistyped
// -policy produces: it must name the registered policies so the user
// can correct the selector without reading source (mirroring the
// unknown-kind error).
func TestUnknownPolicyErrorListsRegistered(t *testing.T) {
	_, err := Job{Kind: Fig3, Topo: "small", Policies: []string{"nonesuch"}}.Normalize()
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"nonesuch"`) || !strings.Contains(msg, "registered:") {
		t.Errorf("error does not explain itself: %v", err)
	}
	for _, name := range []string{"plain", "lrsc", "lrsc-table", "lrscwait", "colibri"} {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list registered policy %s: %v", name, err)
		}
	}
}

// TestPolicyAxisSeriesLabels checks the expansion shape with a policy
// axis: one series per (spec, policy), the coordinate in both the name
// suffix and the structured Grid field.
func TestPolicyAxisSeriesLabels(t *testing.T) {
	job := Job{Kind: Fig3, Topo: "small", Bins: []int{1},
		Warmup: testWarmup, Measure: testMeasure,
		Policies: []string{"lrsc", "lrsc-table"}}
	norm, err := job.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	_, series, _, err := expand(norm)
	if err != nil {
		t.Fatal(err)
	}
	nSpecs := len(experiments.Fig3Specs(noc.Small().NumCores()))
	if want := nSpecs * 2; len(series) != want {
		t.Fatalf("series = %d, want %d (specs × policies)", len(series), want)
	}
	for i, s := range series {
		wantName := "lrsc"
		if i%2 == 1 {
			wantName = "lrsc-table"
		}
		if !strings.HasSuffix(s.Name, "[policy="+wantName+"]") {
			t.Errorf("series %d name %q missing policy suffix %q", i, s.Name, wantName)
		}
		if s.Grid == nil || s.Grid.Policy == nil || *s.Grid.Policy != wantName {
			t.Errorf("series %d carries no policy coordinate: %+v", i, s.Grid)
		}
	}
}

// TestPolicyAxisForksCacheKeys pins the policy axis into the cache
// identity: jobs differing only in the swept policy share no unit keys.
func TestPolicyAxisForksCacheKeys(t *testing.T) {
	base := Job{Kind: Fig3, Topo: "small", Bins: []int{1},
		Warmup: testWarmup, Measure: testMeasure}
	a, b := base, base
	a.Policies = []string{"lrsc"}
	b.Policies = []string{"lrsc-table"}
	ka, kb := unitKeys(t, a), unitKeys(t, b)
	if len(ka) == 0 || len(kb) == 0 {
		t.Fatal("empty key set")
	}
	for k := range ka {
		if kb[k] {
			t.Errorf("jobs differing only in the policy axis share key %q", k)
		}
	}
}

// TestPolicyAxisRestatedSpecSharesKeys: a policy axis that merely
// restates a curve's baked-in policy is the same simulation and must hit
// the same cache entries — exactly the parameter-axis contract, extended
// to the policy itself. Of fig3's curves only amoadd runs on plain, so a
// policy=plain sweep shares exactly that curve's units with the
// grid-free job.
func TestPolicyAxisRestatedSpecSharesKeys(t *testing.T) {
	base := Job{Kind: Fig3, Topo: "small", Bins: []int{1, 4},
		Warmup: testWarmup, Measure: testMeasure}
	restated := base
	restated.Policies = []string{string(platform.PolicyPlain)}
	plain, got := unitKeys(t, base), unitKeys(t, restated)
	shared := 0
	for k := range got {
		if plain[k] {
			shared++
		}
	}
	if shared != len(base.Bins) {
		t.Errorf("restated-policy sweep shares %d keys with the grid-free job, want %d (the amoadd curve)",
			shared, len(base.Bins))
	}
}

// TestPolicyAxisPointParity pins a policy-axis unit to the reference
// runner: the engine's point under policy=lrsc-table must exactly match
// a direct RunHistogramPointPolicy call with the overridden kind.
func TestPolicyAxisPointParity(t *testing.T) {
	topo := noc.Small()
	job := Job{Kind: Fig3, Topo: "small", Bins: []int{1},
		Warmup: testWarmup, Measure: testMeasure,
		Policies: []string{string(platform.PolicyLRSCTable)}}
	res, _, err := (&Runner{Workers: 4}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	specs := experiments.Fig3Specs(topo.NumCores())
	if len(res.Series) != len(specs) {
		t.Fatalf("series = %d, want %d", len(res.Series), len(specs))
	}
	for si, spec := range specs {
		pol := spec.PolicyConfig()
		pol.Kind = platform.PolicyLRSCTable
		ref := experiments.RunHistogramPointPolicy(spec, pol, topo, 1, testWarmup, testMeasure)
		if got := res.Series[si].Points[0].Throughput; got != ref.Throughput {
			t.Errorf("%s: engine %v != direct %v", res.Series[si].Name, got, ref.Throughput)
		}
	}
}

func TestParseGridPolicyAxis(t *testing.T) {
	g, err := ParseGrid("policy=lrsc,colibri backoff=0,64")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Policies, []string{"lrsc", "colibri"}) ||
		!reflect.DeepEqual(g.Backoffs, []int{0, 64}) {
		t.Errorf("ParseGrid = %+v", g)
	}
	if g.IsZero() {
		t.Error("parsed grid reports zero")
	}
	if g, err := ParseGrid("policy=nbfeb"); err != nil || g.IsZero() {
		// Existence checks are Normalize's job: the flag must accept any
		// name so a front end can parse before custom registrations.
		t.Errorf("policy-only grid: %+v, %v", g, err)
	}
	if _, err := ParseGrid("policy="); err == nil {
		t.Error("empty policy list accepted")
	}
	var j Job
	g, _ = ParseGrid("policy=lrsc")
	g.Apply(&j)
	if !reflect.DeepEqual(j.Policies, []string{"lrsc"}) {
		t.Errorf("Apply = %+v", j)
	}
}

// TestAreaPolicyRowsHook: a registered policy implementing the
// area.PolicyRows hook contributes a Table I row; the built-ins add
// nothing, keeping the default table byte-identical.
func TestAreaPolicyRowsHook(t *testing.T) {
	registerAreaHookPolicy()
	res, _, err := (&Runner{Workers: 1}).Run(Job{Kind: TableI, Topo: "small"})
	if err != nil {
		t.Fatal(err)
	}
	points := res.Series[0].Points
	found := false
	for _, p := range points {
		if p.Label == "with hook-test" {
			found = true
			if p.AreaKGE != 700 {
				t.Errorf("hook row area = %v, want 700", p.AreaKGE)
			}
			if p.OverheadPct == 0 {
				t.Error("hook row overhead not derived")
			}
		}
	}
	if !found {
		t.Fatalf("hook policy row missing from table1: %+v", points)
	}
}
