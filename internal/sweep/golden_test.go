package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the emitter golden files from current output")

// TestGoldenEmitters is the emitter regression suite: each case runs a
// reduced deterministic sweep and compares the JSON, CSV and aligned-
// table renderings byte-for-byte against internal/sweep/testdata/.
// After an intentional simulator or emitter change, regenerate with
//
//	go test ./internal/sweep -run TestGoldenEmitters -update
//
// and review the diff like any other code change.
func TestGoldenEmitters(t *testing.T) {
	cases := []struct {
		name string
		job  Job
	}{
		// The default job pins the grid-free output format (and with it
		// the "no -grid flag means byte-identical output" guarantee).
		{"fig3-default", testJob(Fig3)},
		// The grid job pins series labelling and ordering across a
		// queuecap × backoff cross-product.
		{"fig3-grid", gridTestJob()},
		// A fig6 colibriq grid covers the queue-kind key/label path.
		{"fig6-grid", Job{Kind: Fig6, Topo: "small",
			Warmup: testWarmup, Measure: testMeasure, ColibriQueues: []int{1, 8}}},
		// A table kind covers the finalize-time delta emitters.
		{"table2-default", testJob(TableII)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, _, err := (&Runner{Workers: 1}).Run(c.job)
			if err != nil {
				t.Fatal(err)
			}
			jsonB, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			outputs := []struct {
				ext string
				got []byte
			}{
				{"json", jsonB},
				{"csv", []byte(res.CSV())},
				{"txt", []byte(res.Table().String())},
			}
			for _, o := range outputs {
				path := filepath.Join("testdata", c.name+"."+o.ext)
				if *update {
					if err := os.WriteFile(path, o.got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
				}
				if !bytes.Equal(o.got, want) {
					t.Errorf("%s: output drifted from golden file\n--- got ---\n%s--- want ---\n%s",
						path, o.got, want)
				}
			}
		})
	}
}
