package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/noc"
	"repro/internal/stats"
)

// Scenario is one registrable experiment: a named workload that expands
// a Job into measurable curves. The engine owns everything generic —
// topology resolution, policy-grid cross-products, the worker pool, the
// disk cache, and the JSON/CSV/table emitters — so a scenario only
// describes what to measure. Implementations registered with Register
// (or the lrscwait.RegisterScenario facade) are addressable by name from
// Job.Kind and the cmd/sweep -kind flag exactly like the built-in
// figure/table kinds.
//
// A scenario may additionally implement Finalizer (cross-point derived
// values) and TableRenderer (a custom aligned-table layout); without the
// latter, results render through a generic metric table.
type Scenario interface {
	// Name is the registry key: the Job.Kind value, the -kind selector,
	// and the default output file stem.
	Name() string

	// Normalize fills the scenario's parameter defaults into the job
	// (simulation windows, swept coordinates, Params entries) and
	// validates scenario-specific fields. The engine has already
	// resolved the topology and applies the shared validation — positive
	// bins, canonical grid axes — after this returns. The returned job
	// is what keys the cache and is recorded in the Result, so two specs
	// that normalize identically share cached points.
	Normalize(job Job, topo noc.Topology) (Job, error)

	// GridAxes reports whether the policy-grid axes (QueueCaps ×
	// ColibriQueues × Backoffs) apply to this scenario. Normalize
	// rejects grid jobs for scenarios without them.
	GridAxes() bool

	// Curves expands the normalized job into its logical series. The
	// engine cross-products every curve with the job's grid coordinates:
	// one result series per (curve, coordinate), curve-major, each
	// holding NumPoints independently scheduled points.
	Curves(topo noc.Topology, job Job) ([]Curve, error)
}

// Describer is an optional Scenario extension: Description returns a
// one-line summary of what the scenario measures, shown by cmd/sweep
// -list-kinds next to the kind name. All built-ins implement it; custom
// scenarios are encouraged to, so a grown registry stays navigable.
type Describer interface {
	Description() string
}

// Describe returns the one-line description of the scenario registered
// under name, or "" when the scenario is unregistered or has none.
func Describe(name string) string {
	s, ok := Lookup(name)
	if !ok {
		return ""
	}
	if d, ok := s.(Describer); ok {
		return d.Description()
	}
	return ""
}

// Finalizer is an optional Scenario extension: Finalize computes
// cross-point derived values after all units of a job have landed
// (cached or executed). It must never feed the cache, so cached and
// freshly-run results finalize identically.
type Finalizer interface {
	Finalize(r *Result)
}

// TableRenderer is an optional Scenario extension: Table renders a
// finished result in a scenario-specific aligned-table layout (which
// also defines the CSV column set). Scenarios without it render through
// the generic metric table.
type TableRenderer interface {
	Table(r *Result) *stats.Table
}

// Curve is one logical series of a scenario before policy-grid
// expansion: a name and the per-point measurement hooks. The engine
// calls Key and Run once per (grid coordinate, point index) pair; both
// must be safe for concurrent use and deterministic, because Key is the
// cache identity of the value Run produces.
type Curve struct {
	// Name labels the series; grid coordinates are suffixed by the
	// engine.
	Name string
	// NumPoints is the curve's point count.
	NumPoints int
	// Sim reports whether computing a point runs a simulation (pure
	// model arithmetic doesn't; it only affects RunStats accounting).
	Sim bool
	// Key returns the cache-key fragment of point pt under grid
	// coordinate g: everything that determines the point's value beyond
	// the engine's own prefix (scenario name, topology shape, windows,
	// Params). Return "" — or leave Key nil — for uncacheable points.
	// Grid coordinates must be keyed by their effective, fully-resolved
	// policy (see GridCoord.Merge) so a coordinate that merely restates
	// a default hits the same entry as the grid-free run.
	Key func(g GridCoord, pt int) string
	// Run measures point pt under grid coordinate g.
	Run func(g GridCoord, pt int) Point
}

// The package scenario registry. Built-in kinds register at init; custom
// scenarios register through Register / lrscwait.RegisterScenario.
var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the package registry, making it
// addressable from Job.Kind, cmd/sweep -kind, and -list-kinds. A
// duplicate or empty name is rejected so two packages cannot silently
// shadow each other's workloads.
func Register(s Scenario) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("sweep: cannot register a scenario with an empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("sweep: scenario %q already registered", name)
	}
	registry[name] = s
	return nil
}

// MustRegister is Register, panicking on error. Intended for package
// init of scenario libraries.
func MustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the scenario registered under name.
func Lookup(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// namesList renders the registry for error messages.
func namesList() string {
	names := Names()
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ", ")
}

// genericTable renders a result for scenarios without a TableRenderer:
// one row per point index, coordinate columns (x, and label when any
// point carries one), and one column per (series, metric) pair. When all
// series share one coordinate sequence the x/label columns are shared;
// otherwise each series gets its own, so measurements are never paired
// with another curve's coordinates. The layout is a readable default,
// not a stable format — scenarios that need a fixed layout implement
// TableRenderer.
func genericTable(r *Result) *stats.Table {
	if len(r.Series) == 0 {
		// A scenario may legitimately expand to no curves (its job
		// selected no work); render an empty table rather than panic.
		return stats.NewTable(fmt.Sprintf("%s (%d cores)", r.Job.Kind, r.Cores))
	}
	// The column set is the union of metric names across all points of a
	// series, so sparsely-set metrics still appear.
	metricsOf := func(s Series) []string {
		set := map[string]bool{}
		for _, p := range s.Points {
			for _, m := range p.Metrics() {
				set[m] = true
			}
		}
		names := make([]string, 0, len(set))
		for m := range set {
			names = append(names, m)
		}
		sort.Strings(names)
		return names
	}
	hasLabel := false
	rows := 0
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Label != "" {
				hasLabel = true
			}
		}
		if len(s.Points) > rows {
			rows = len(s.Points)
		}
	}
	// Series share the x/label columns only when every curve sweeps the
	// same coordinate sequence.
	uniform := true
	for _, s := range r.Series[1:] {
		if len(s.Points) != len(r.Series[0].Points) {
			uniform = false
			break
		}
		for i, p := range s.Points {
			if p.X != r.Series[0].Points[i].X || p.Label != r.Series[0].Points[i].Label {
				uniform = false
				break
			}
		}
	}
	prefix := func(si int, name string) string {
		if len(r.Series) > 1 {
			return r.Series[si].Name + "/" + name
		}
		return name
	}
	// A column is either a coordinate ("x", "label") or a metric of one
	// series; every cell reads from its own series' points.
	type col struct {
		si   int
		name string // "x", "label", or a metric name
	}
	var header []string
	var cols []col
	addCoords := func(si int, shared bool) {
		xName, labelName := prefix(si, "x"), prefix(si, "label")
		if shared {
			xName, labelName = "x", "label"
		}
		header = append(header, xName)
		cols = append(cols, col{si, "x"})
		if hasLabel {
			header = append(header, labelName)
			cols = append(cols, col{si, "label"})
		}
	}
	if uniform {
		addCoords(0, true)
	}
	for si, s := range r.Series {
		if !uniform {
			addCoords(si, false)
		}
		for _, m := range metricsOf(s) {
			header = append(header, prefix(si, m))
			cols = append(cols, col{si, m})
		}
	}
	t := stats.NewTable(fmt.Sprintf("%s (%d cores)", r.Job.Kind, r.Cores), header...)
	for i := 0; i < rows; i++ {
		var row []string
		for _, c := range cols {
			pts := r.Series[c.si].Points
			cell := ""
			if i < len(pts) {
				switch c.name {
				case "x":
					cell = strconv.Itoa(pts[i].X)
				case "label":
					cell = pts[i].Label
				default:
					if v, ok := pts[i].Metric(c.name); ok {
						cell = strconv.FormatFloat(v, 'g', -1, 64)
					}
				}
			}
			row = append(row, cell)
		}
		t.Add(row...)
	}
	return t
}
