package sweep

import "repro/internal/obs"

// Backend is the pluggable point-store behind the sweep engine: anything
// that can memoize finished Points under their content-hash keys. The
// local disk Cache is the canonical implementation ("disk"); the fabric
// package adds an HTTP remote backend and a tiered (disk-in-front-of-
// remote) composition, and out-of-tree stores implement it the same way.
//
// Contract: Get returns (zero, false) on miss or any internal failure —
// a backend degrades to "compute locally", it never fails a sweep. Put
// is best-effort for the same reason (the engine ignores its error on
// the hot path; a failed store only costs a future re-run). Both must be
// safe for concurrent use. Keys are opaque content hashes: identical key
// implies identical value, so racing writers are benign.
type Backend interface {
	// Name identifies the backend kind ("disk", "http", "tiered") in
	// logs and stats.
	Name() string
	// Get loads the point stored under key; ok is false on miss or
	// failure.
	Get(key string) (Point, bool)
	// Put stores a point under key.
	Put(key string, p Point) error
}

// RegistryScoped is an optional Backend extension: the sweep runner uses
// it to scope a backend's traffic counters to the run's obs registry
// (Runner.Obs) so concurrent runs don't cross-contaminate each other's
// accounting. ScopedBackend returns a view of the backend reporting into
// reg — or the receiver itself when its registry was already set
// explicitly.
type RegistryScoped interface {
	ScopedBackend(reg *obs.Registry) Backend
}

// StatsReporter is an optional Backend extension for backends that can
// describe their stored state (the disk Cache; tiered delegates to its
// local layer). Remote backends typically cannot enumerate the far side
// and simply don't implement it.
type StatsReporter interface {
	Stats() (CacheStats, error)
}

// Fingerprint returns the running binary's content hash — the fragment
// every cache key is prefixed with, so a rebuilt simulator starts cold
// automatically. Empty when the binary cannot be read, in which case
// point caching is disabled for the process (and the fabric serves
// without ETags: identity cannot be guaranteed across rebuilds).
func Fingerprint() string { return binaryFingerprint() }

// nilBackend reports whether b is nil or a typed-nil *Cache wrapped in
// the interface — the classic trap at call sites that build a *Cache
// (possibly nil, e.g. cmd/sweep with -cache off) and assign it to the
// Runner's Backend-typed field.
func nilBackend(b Backend) bool {
	if b == nil {
		return true
	}
	c, ok := b.(*Cache)
	return ok && c == nil
}
