package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// binaryFingerprint hashes the running executable, once per process.
// Folding it into every cache key means a rebuilt simulator (any code
// change) starts from a cold cache automatically — correctness never
// depends on remembering to bump cacheVersion, which remains for
// invalidating the on-disk format itself. The tradeoff: differently
// built binaries (e.g. cmd/histogram vs cmd/sweep) keep separate cache
// namespaces, and superseded entries linger until the directory is
// deleted. When the binary cannot be read the fingerprint is empty and
// the engine disables caching for the process (see Job.keyPrefix) —
// running fresh is always safe, serving stale never is.
var binaryFingerprint = sync.OnceValue(func() string {
	exe, err := os.Executable()
	if err != nil {
		return ""
	}
	f, err := os.Open(exe)
	if err != nil {
		return ""
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return ""
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
})

// Cache memoizes finished sweep points on disk, keyed by the
// content hash of everything that determines a point's value (simulator
// version, experiment kind, topology shape, spec, coordinate, windows).
// Entries are immutable JSON files; concurrent writers of the same key
// race benignly to an identical value via atomic rename.
type Cache struct {
	dir string
}

// DefaultDir returns the user-level cache root (~/.cache/lrscwait on
// Linux, the platform cache dir elsewhere).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("sweep: no user cache dir: %w", err)
	}
	return filepath.Join(base, "lrscwait"), nil
}

// OpenCache opens (creating if needed) a cache rooted at dir. An empty
// dir selects DefaultDir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		var err error
		if dir, err = DefaultDir(); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// entry is the on-disk format. The full key is stored alongside the
// point so hash collisions degrade to a miss, never a wrong value.
type entry struct {
	Key   string `json:"key"`
	Point Point  `json:"point"`
}

// path maps a key to its file: <dir>/<hh>/<hash>.json, sharded by the
// first hash byte to keep directories small.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, h[:2], h+".json")
}

// Get loads the point cached under key; ok is false on miss, corruption,
// or key mismatch.
func (c *Cache) Get(key string) (Point, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return Point{}, false
	}
	var e entry
	if json.Unmarshal(b, &e) != nil || e.Key != key {
		return Point{}, false
	}
	return e.Point, true
}

// Put stores a point under key. Writes go through a same-directory temp
// file and rename, so readers never observe a torn entry.
func (c *Cache) Put(key string, p Point) error {
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(entry{Key: key, Point: p})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
