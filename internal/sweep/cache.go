package sweep

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// binaryFingerprint hashes the running executable, once per process.
// Folding it into every cache key means a rebuilt simulator (any code
// change) starts from a cold cache automatically — correctness never
// depends on remembering to bump cacheVersion, which remains for
// invalidating the on-disk format itself. The tradeoff: differently
// built binaries (e.g. cmd/histogram vs cmd/sweep) keep separate cache
// namespaces, and superseded entries linger until the directory is
// deleted. When the binary cannot be read the fingerprint is empty and
// the engine disables caching for the process (see Job.keyPrefix) —
// running fresh is always safe, serving stale never is.
var binaryFingerprint = sync.OnceValue(func() string {
	exe, err := os.Executable()
	if err != nil {
		return ""
	}
	f, err := os.Open(exe)
	if err != nil {
		return ""
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return ""
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
})

// Cache memoizes finished sweep points on disk, keyed by the
// content hash of everything that determines a point's value (simulator
// version, experiment kind, topology shape, spec, coordinate, windows).
// Entries are immutable JSON files; concurrent writers of the same key
// race benignly to an identical value via atomic rename.
//
// Cache traffic counters go to the cache's registry — obs.Default()
// unless WithRegistry scoped it — so concurrent runs with their own
// registries don't cross-contaminate each other's hit/miss accounting.
type Cache struct {
	dir string
	reg *obs.Registry // nil = obs.Default()

	// touches is the shared (across WithRegistry views) access recorder
	// feeding the GC's LRU index. Best-effort: a lost touch only skews
	// eviction order, never correctness.
	touches *touchLog
}

// Name identifies the disk backend (sweep.Backend).
func (c *Cache) Name() string { return "disk" }

// WithRegistry returns a view of the cache whose traffic counters go to
// reg instead of the process-wide default registry. The underlying
// directory (and so the entries) is shared with the receiver.
func (c *Cache) WithRegistry(reg *obs.Registry) *Cache {
	cc := *c
	cc.reg = reg
	return &cc
}

// ScopedBackend implements RegistryScoped for the runner: a view
// reporting into reg, unless the cache's registry was already set
// explicitly (an explicit scope wins over the run's).
func (c *Cache) ScopedBackend(reg *obs.Registry) Backend {
	if c.reg != nil {
		return c
	}
	return c.WithRegistry(reg)
}

// obs returns the registry this cache's counters belong to.
func (c *Cache) obs() *obs.Registry {
	if c.reg != nil {
		return c.reg
	}
	return obs.Default()
}

// DefaultDir returns the user-level cache root (~/.cache/lrscwait on
// Linux, the platform cache dir elsewhere).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("sweep: no user cache dir: %w", err)
	}
	return filepath.Join(base, "lrscwait"), nil
}

// OpenCache opens (creating if needed) a cache rooted at dir. An empty
// dir selects DefaultDir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		var err error
		if dir, err = DefaultDir(); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create cache dir: %w", err)
	}
	return newCache(dir), nil
}

// newCache wires the shared access recorder for a cache rooted at dir.
func newCache(dir string) *Cache {
	return &Cache{dir: dir, touches: &touchLog{path: filepath.Join(dir, indexFile)}}
}

// InspectCache opens an existing cache rooted at dir (empty selects
// DefaultDir) without creating anything on disk — the read-only
// counterpart of OpenCache for inspection paths like -cache-stats, which
// must not conjure an empty cache directory as a side effect of asking
// about one. Returns a "no cache at <dir>" error when the directory does
// not exist.
func InspectCache(dir string) (*Cache, error) {
	if dir == "" {
		var err error
		if dir, err = DefaultDir(); err != nil {
			return nil, err
		}
	}
	info, err := os.Stat(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("sweep: no cache at %s", dir)
		}
		return nil, fmt.Errorf("sweep: stat cache dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("sweep: no cache at %s (not a directory)", dir)
	}
	return newCache(dir), nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// entry is the on-disk format. The full key is stored alongside the
// point so hash collisions degrade to a miss, never a wrong value.
type entry struct {
	Key   string `json:"key"`
	Point Point  `json:"point"`
}

// hashHex is the cache's filename hash of a key.
func hashHex(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// path maps a key to its file: <dir>/<hh>/<hash>.json, sharded by the
// first hash byte to keep directories small.
func (c *Cache) path(key string) string {
	h := hashHex(key)
	return filepath.Join(c.dir, h[:2], h+".json")
}

// gzipThreshold is the marshalled-entry size at which Put compresses.
// Small entries (the common single-point case, a few hundred bytes)
// stay plain JSON: readable with cat/jq, and gzip would barely pay for
// its header. Large sweep payloads shrink several-fold.
const gzipThreshold = 4 << 10

// gzipMagic is the first two bytes of every gzip stream; Get sniffs it
// so compressed and pre-compression plain-JSON entries coexist in one
// cache directory (old caches keep working unchanged).
var gzipMagic = []byte{0x1f, 0x8b}

// Get loads the point cached under key; ok is false on miss, corruption,
// or key mismatch. Entries are transparently decompressed when a
// previous Put wrote them gzipped.
func (c *Cache) Get(key string) (Point, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		c.obs().Counter("sweep.cache.misses").Inc()
		return Point{}, false
	}
	disk := len(b)
	if bytes.HasPrefix(b, gzipMagic) {
		zr, err := gzip.NewReader(bytes.NewReader(b))
		if err == nil {
			b, err = io.ReadAll(zr)
		}
		if err != nil || zr.Close() != nil {
			c.obs().Counter("sweep.cache.misses").Inc()
			return Point{}, false
		}
	}
	var e entry
	if json.Unmarshal(b, &e) != nil || e.Key != key {
		c.obs().Counter("sweep.cache.misses").Inc()
		return Point{}, false
	}
	reg := c.obs()
	reg.Counter("sweep.cache.hits").Inc()
	reg.Counter("sweep.cache.read_bytes").Add(uint64(disk))
	c.touch(key)
	return e.Point, true
}

// Put stores a point under key. Writes go through a same-directory temp
// file and rename, so readers never observe a torn entry.
func (c *Cache) Put(key string, p Point) error {
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(entry{Key: key, Point: p})
	if err != nil {
		return err
	}
	if len(b) >= gzipThreshold {
		var zb bytes.Buffer
		zw := gzip.NewWriter(&zb)
		if _, err := zw.Write(b); err == nil && zw.Close() == nil && zb.Len() < len(b) {
			b = zb.Bytes()
			c.obs().Counter("sweep.cache.gzip_stores").Inc()
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		// Without this the temp file outlives the failed store and
		// accumulates in the shard directory (Stats reaps stale ones as
		// a backstop, but don't create the garbage in the first place).
		os.Remove(tmp.Name())
		return err
	}
	reg := c.obs()
	reg.Counter("sweep.cache.stores").Inc()
	reg.Counter("sweep.cache.store_bytes").Add(uint64(len(b)))
	c.touch(key)
	return nil
}

// CacheStats describes the on-disk state of a cache directory plus the
// process's hit/miss traffic against it (from the obs registry — zero
// when no run consulted the cache in this process).
type CacheStats struct {
	Dir        string `json:"dir"`
	Entries    int    `json:"entries"`
	TotalBytes int64  `json:"totalBytes"`

	// Orphaned write-temp files (.tmp-*) found in the cache tree: the
	// residue of interrupted or failed stores. Stale ones (older than
	// tempMaxAge — a live write holds its temp file for milliseconds)
	// are removed during the scan and counted in TempReaped.
	TempFiles  int   `json:"tempFiles,omitempty"`
	TempBytes  int64 `json:"tempBytes,omitempty"`
	TempReaped int   `json:"tempReaped,omitempty"`

	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Stores     uint64 `json:"stores"`
	ReadBytes  uint64 `json:"readBytes"`
	StoreBytes uint64 `json:"storeBytes"`
}

// tempMaxAge is how old a .tmp-* file must be before Stats treats it as
// orphaned rather than an in-flight write and reaps it.
const tempMaxAge = time.Hour

// Stats walks the cache directory counting entries and bytes, and folds
// in this cache's registry counters. Orphaned write-temp files are
// counted, and stale ones reaped.
func (c *Cache) Stats() (CacheStats, error) {
	st := CacheStats{Dir: c.dir}
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			info, err := d.Info()
			if err != nil {
				return err
			}
			st.TempFiles++
			st.TempBytes += info.Size()
			if time.Since(info.ModTime()) > tempMaxAge && os.Remove(path) == nil {
				st.TempReaped++
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		st.Entries++
		st.TotalBytes += info.Size()
		return nil
	})
	if err != nil {
		return CacheStats{}, fmt.Errorf("sweep: scan cache: %w", err)
	}
	snap := c.obs().Snapshot()
	st.Hits = snap.Counter("sweep.cache.hits")
	st.Misses = snap.Counter("sweep.cache.misses")
	st.Stores = snap.Counter("sweep.cache.stores")
	st.ReadBytes = snap.Counter("sweep.cache.read_bytes")
	st.StoreBytes = snap.Counter("sweep.cache.store_bytes")
	return st, nil
}

// Summary renders the stats as the -cache-stats report. The temp-file
// line appears only when there was something to report, so the common
// clean-cache output is unchanged.
func (st CacheStats) Summary() string {
	s := fmt.Sprintf("cache %s: %d entries, %d bytes on disk\n"+
		"this process: %d hits, %d misses, %d stores (%d bytes read, %d bytes written)",
		st.Dir, st.Entries, st.TotalBytes,
		st.Hits, st.Misses, st.Stores, st.ReadBytes, st.StoreBytes)
	if st.TempFiles > 0 {
		s += fmt.Sprintf("\norphaned temp files: %d (%d bytes), %d stale reaped",
			st.TempFiles, st.TempBytes, st.TempReaped)
	}
	return s
}
