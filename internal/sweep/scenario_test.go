package sweep

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/noc"
)

// fakeScenario is a registrable workload of pure arithmetic: fast enough
// to run in every registry test, yet shaped like a real scenario (cache
// keys, grid-aware policy resolution, a custom Extra metric, Params).
type fakeScenario struct {
	name string
	grid bool
}

func (s fakeScenario) Name() string   { return s.name }
func (s fakeScenario) GridAxes() bool { return s.grid }

func (s fakeScenario) Normalize(j Job, topo noc.Topology) (Job, error) {
	j.defaultWindows(100, 200)
	if len(j.Bins) == 0 {
		j.Bins = []int{1, 2, 4}
	}
	if _, err := s.scale(j); err != nil {
		return j, err
	}
	return j, nil
}

func (fakeScenario) scale(j Job) (float64, error) {
	v, ok := j.Params["scale"]
	if !ok {
		return 1, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("fake: bad scale %q", v)
	}
	return f, nil
}

func (s fakeScenario) Curves(topo noc.Topology, j Job) ([]Curve, error) {
	scale, err := s.scale(j)
	if err != nil {
		return nil, err
	}
	return []Curve{{
		Name: s.name, NumPoints: len(j.Bins), Sim: true,
		Key: func(g GridCoord, pt int) string {
			pol := g.Merge(experiments.Policy{})
			return fmt.Sprintf("x%d|bo%d", j.Bins[pt], pol.ResolveBackoff())
		},
		Run: func(g GridCoord, pt int) Point {
			pol := g.Merge(experiments.Policy{})
			p := Point{X: j.Bins[pt],
				Throughput: scale * float64(j.Bins[pt]*topo.NumCores())}
			p.SetMetric("wait_cycles", float64(pol.ResolveBackoff()))
			return p
		},
	}}, nil
}

// registerOnce registers a test scenario, tolerating the duplicate error
// a repeated in-process run (go test -count=2) produces: the registry is
// process-global and has deliberately no unregister.
func registerOnce(t *testing.T, s Scenario) {
	t.Helper()
	if err := Register(s); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
}

func TestRegisterDuplicateRejected(t *testing.T) {
	registerOnce(t, fakeScenario{name: "dup-test"})
	if err := Register(fakeScenario{name: "dup-test"}); err == nil {
		t.Error("duplicate registration accepted")
	} else if !strings.Contains(err.Error(), "dup-test") {
		t.Errorf("duplicate error does not name the scenario: %v", err)
	}
	// The built-in kinds are already registered at init; re-registering
	// one must be rejected too, so a custom scenario cannot shadow them.
	if err := Register(fakeScenario{name: string(Fig3)}); err == nil {
		t.Error("shadowing a built-in kind accepted")
	}
}

func TestRegisterEmptyNameRejected(t *testing.T) {
	if err := Register(fakeScenario{name: ""}); err == nil {
		t.Error("empty-name registration accepted")
	}
}

func TestNamesContainsBuiltins(t *testing.T) {
	names := map[string]bool{}
	for _, n := range Names() {
		names[n] = true
	}
	for _, k := range Kinds() {
		if !names[string(k)] {
			t.Errorf("built-in kind %s missing from Names()", k)
		}
	}
	all := Names()
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("Names() not sorted: %v", all)
		}
	}
}

// TestUnknownKindErrorListsRegistered pins the error a mistyped -kind
// produces: it must name the registered scenarios so the user can
// correct the selector without reading source.
func TestUnknownKindErrorListsRegistered(t *testing.T) {
	_, err := Job{Kind: "nonesuch"}.Normalize()
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"nonesuch"`) || !strings.Contains(msg, "registered:") {
		t.Errorf("error does not explain itself: %v", err)
	}
	for _, k := range []string{"fig3", "fig6ms", "table2"} {
		if !strings.Contains(msg, k) {
			t.Errorf("error does not list registered kind %s: %v", k, err)
		}
	}
}

// TestCustomScenarioRoundTrip is the open-API contract end to end: a
// scenario known only to the registry runs through the engine with
// caching (warm re-run executes zero simulations) and all three emitters.
func TestCustomScenarioRoundTrip(t *testing.T) {
	registerOnce(t, fakeScenario{name: "roundtrip-test", grid: true})
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Kind: "roundtrip-test", Topo: "small",
		Params: map[string]string{"scale": "2.5"}}
	r := Runner{Workers: 4, Cache: cache}

	cold, st, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Units != 3 || st.Executed != 3 || st.CacheHits != 0 {
		t.Fatalf("cold run stats = %+v", st)
	}
	if got := cold.Series[0].Points[2].Throughput; got != 2.5*4*16 {
		t.Errorf("scaled point = %v, want %v (Params not threaded)", got, 2.5*4*16)
	}
	if v, ok := cold.Series[0].Points[0].Metric("wait_cycles"); !ok || v != experiments.DefaultBackoff {
		t.Errorf("custom metric = %v, %v", v, ok)
	}

	warm, st, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != 0 || st.CacheHits != st.Units {
		t.Fatalf("warm run stats = %+v (custom scenario not cached)", st)
	}

	// All three emitters, byte-identical across cold and warm runs.
	coldJSON, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := warm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Error("warm-cache JSON differs from cold run")
	}
	if !strings.Contains(string(coldJSON), `"wait_cycles"`) {
		t.Errorf("custom metric missing from JSON:\n%s", coldJSON)
	}
	tbl := cold.Table().String()
	if tbl != warm.Table().String() {
		t.Error("warm-cache table differs from cold run")
	}
	// No TableRenderer: the generic metric table must carry the custom
	// metric as a column.
	if !strings.Contains(tbl, "wait_cycles") || !strings.Contains(tbl, "throughput") {
		t.Errorf("generic table missing metric columns:\n%s", tbl)
	}
	if cold.CSV() == "" || cold.CSV() != warm.CSV() {
		t.Error("CSV emitter broken for custom scenario")
	}

	// The policy grid applies to a grid-capable custom scenario: per-
	// coordinate series whose resolved backoff lands in the metric.
	gridJob := job
	gridJob.Backoffs = []int{0, 64}
	res, _, err := r.Run(gridJob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("grid series = %d, want 2", len(res.Series))
	}
	for i, wantBO := range []float64{0, 64} {
		s := res.Series[i]
		if s.Grid == nil || s.Grid.Backoff == nil {
			t.Fatalf("grid series %d carries no coordinate", i)
		}
		if v, _ := s.Points[0].Metric("wait_cycles"); v != wantBO {
			t.Errorf("series %d wait_cycles = %v, want %v", i, v, wantBO)
		}
	}
}

// TestCustomScenarioParamsForkCacheKeys pins Params into the cache
// identity: two jobs differing only in a scenario parameter share no
// unit keys.
func TestCustomScenarioParamsForkCacheKeys(t *testing.T) {
	registerOnce(t, fakeScenario{name: "params-key-test"})
	base := Job{Kind: "params-key-test", Topo: "small"}
	withScale := base
	withScale.Params = map[string]string{"scale": "3"}
	a, b := unitKeys(t, base), unitKeys(t, withScale)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty key set")
	}
	for k := range a {
		if b[k] {
			t.Errorf("jobs differing only in Params share key %q", k)
		}
	}
}

// emptyScenario expands to no curves: legal (a job may select no work)
// and must flow through run + emitters without panicking.
type emptyScenario struct{}

func (emptyScenario) Name() string   { return "empty-test" }
func (emptyScenario) GridAxes() bool { return false }
func (emptyScenario) Normalize(j Job, topo noc.Topology) (Job, error) {
	return j, nil
}
func (emptyScenario) Curves(topo noc.Topology, j Job) ([]Curve, error) {
	return nil, nil
}

func TestEmptyScenarioEmitters(t *testing.T) {
	registerOnce(t, emptyScenario{})
	res, st, err := (&Runner{Workers: 1}).Run(Job{Kind: "empty-test", Topo: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Units != 0 || len(res.Series) != 0 {
		t.Fatalf("empty scenario produced work: %+v, %d series", st, len(res.Series))
	}
	if tbl := res.Table().String(); !strings.Contains(tbl, "empty-test") {
		t.Errorf("empty-series table missing title:\n%q", tbl)
	}
	if _, err := res.JSON(); err != nil {
		t.Error(err)
	}
	if csv := res.CSV(); csv != "" {
		t.Errorf("empty-series CSV = %q, want empty (no stray newline)", csv)
	}
}

// negScenario returns a malformed curve (negative point count); the
// engine must reject it with an error, not panic in make().
type negScenario struct{}

func (negScenario) Name() string   { return "neg-test" }
func (negScenario) GridAxes() bool { return false }
func (negScenario) Normalize(j Job, topo noc.Topology) (Job, error) {
	return j, nil
}
func (negScenario) Curves(topo noc.Topology, j Job) ([]Curve, error) {
	return []Curve{{Name: "neg", NumPoints: -1,
		Run: func(g GridCoord, pt int) Point { return Point{} }}}, nil
}

func TestNegativePointCountRejected(t *testing.T) {
	registerOnce(t, negScenario{})
	_, _, err := (&Runner{Workers: 1}).Run(Job{Kind: "neg-test", Topo: "small"})
	if err == nil || !strings.Contains(err.Error(), "-1 points") {
		t.Errorf("negative NumPoints not rejected: %v", err)
	}
}

// TestParamsKeyEscaping pins the injective Params encoding: maps whose
// raw "k=v" joins would coincide (a value containing the separators vs
// two entries) must not share cache identities.
func TestParamsKeyEscaping(t *testing.T) {
	registerOnce(t, fakeScenario{name: "params-escape-test"})
	base := Job{Kind: "params-escape-test", Topo: "small"}
	one := base
	one.Params = map[string]string{"a": `1"|b"="2`}
	two := base
	two.Params = map[string]string{"a": `1`, "b": `2`}
	a, b := unitKeys(t, one), unitKeys(t, two)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty key set")
	}
	for k := range a {
		if b[k] {
			t.Errorf("distinct Params maps share key %q", k)
		}
	}
}

// TestGridRejectedWithoutGridAxes: a scenario that opts out of the
// policy grid (like the table kinds) rejects grid jobs.
func TestGridRejectedWithoutGridAxes(t *testing.T) {
	registerOnce(t, fakeScenario{name: "nogrid-test"})
	_, err := Job{Kind: "nogrid-test", Topo: "small", Backoffs: []int{64}}.Normalize()
	if err == nil || !strings.Contains(err.Error(), "policy-grid") {
		t.Errorf("grid job accepted by grid-less scenario: %v", err)
	}
}

// TestTableIIScenarioOrdering is the Table II physics check at the
// scenario level: the paper's energy ordering (AmoAdd < Colibri < LRSC
// <= AmoAdd lock) and the delta-vs-colibri finalization.
func TestTableIIScenarioOrdering(t *testing.T) {
	res, _, err := (&Runner{Workers: 4}).Run(Job{Kind: TableII, Topo: "small",
		Warmup: 1000, Measure: 4000})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Point{}
	for _, p := range res.Series[0].Points {
		byName[p.Label] = p
		if p.PJPerOp <= 0 {
			t.Fatalf("%s: no energy measured", p.Label)
		}
	}
	if !(byName["amoadd"].PJPerOp < byName["colibri"].PJPerOp) {
		t.Errorf("amoadd (%.1f pJ) not below colibri (%.1f pJ)",
			byName["amoadd"].PJPerOp, byName["colibri"].PJPerOp)
	}
	if !(byName["colibri"].PJPerOp < byName["lrsc"].PJPerOp) {
		t.Errorf("colibri (%.1f pJ) not below lrsc (%.1f pJ)",
			byName["colibri"].PJPerOp, byName["lrsc"].PJPerOp)
	}
	if byName["colibri"].DeltaPct != 0 {
		t.Errorf("colibri delta vs itself = %v, want 0", byName["colibri"].DeltaPct)
	}
	if byName["lrsc"].DeltaPct <= 0 {
		t.Errorf("lrsc delta = %v, want positive", byName["lrsc"].DeltaPct)
	}
}

func TestPointMetricAccess(t *testing.T) {
	var p Point
	if _, ok := p.Metric(MetricThroughput); ok {
		t.Error("zero point reports a throughput metric")
	}
	p.SetMetric(MetricThroughput, 0.25)
	p.SetMetric(MetricBackoff, 128)
	p.SetMetric("custom", 7)
	if p.Throughput != 0.25 || p.Backoff != 128 || p.Extra["custom"] != 7 {
		t.Fatalf("SetMetric did not land in fields: %+v", p)
	}
	for name, want := range map[string]float64{
		MetricThroughput: 0.25, MetricBackoff: 128, "custom": 7,
	} {
		if v, ok := p.Metric(name); !ok || v != want {
			t.Errorf("Metric(%s) = %v, %v; want %v", name, v, ok, want)
		}
	}
	got := p.Metrics()
	want := []string{MetricBackoff, "custom", MetricThroughput}
	if len(got) != len(want) {
		t.Fatalf("Metrics() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Metrics() = %v, want %v", got, want)
		}
	}
	// Extra entries are present even at zero value (unlike well-known
	// fields, which follow the JSON omitempty convention).
	p.SetMetric("zero_extra", 0)
	if _, ok := p.Metric("zero_extra"); !ok {
		t.Error("zero-valued Extra metric reads as absent")
	}
}

func TestParseParams(t *testing.T) {
	p, err := ParseParams(" kernel=amoadd  iters=500 ")
	if err != nil || p["kernel"] != "amoadd" || p["iters"] != "500" || len(p) != 2 {
		t.Errorf("ParseParams = %v, %v", p, err)
	}
	if p, err := ParseParams(""); err != nil || p != nil {
		t.Errorf("empty ParseParams = %v, %v", p, err)
	}
	for _, bad := range []string{"kernel", "=x", "a=1 a=2"} {
		if _, err := ParseParams(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	// key=value with an empty value is legal (flag-like parameters).
	if p, err := ParseParams("flag="); err != nil || len(p) != 1 {
		t.Errorf("empty value: %v, %v", p, err)
	}
}

// TestBuiltinsDescribed pins that every built-in kind carries the
// optional one-line description (-list-kinds navigability) and that
// Describe degrades quietly for unknown names.
func TestBuiltinsDescribed(t *testing.T) {
	for _, kind := range Kinds() {
		if Describe(string(kind)) == "" {
			t.Errorf("built-in kind %q has no description", kind)
		}
	}
	if d := Describe("no-such-kind"); d != "" {
		t.Errorf("Describe of unregistered kind = %q, want empty", d)
	}
}
