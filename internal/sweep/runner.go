package sweep

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep/work"
)

// Event reports one finished sweep point to the Progress callback.
type Event struct {
	Done, Total int
	Kind        Kind
	Cached      bool // served from the cache, no simulation ran
}

// PointTiming records how one work unit of a run was executed: which
// worker ran it, when (offsets from the run start), and whether the
// cache served it. It is observation-only data for manifests and the
// timeline exporter; results never depend on it. FFCyclesSaved samples
// the cumulative kernel.ff.cycles_saved counter at unit completion —
// with concurrent workers sharing the process-wide registry the exact
// per-unit attribution is unknowable, but the sample sequence still
// shows where a sweep's fast-forwarding concentrated.
type PointTiming struct {
	Job    int    `json:"job"`    // index into the run's job list
	Kind   string `json:"kind"`   // experiment kind
	Series string `json:"series"` // series name within the job
	Index  int    `json:"index"`  // point index within the series
	X      int    `json:"x"`      // swept coordinate of the point

	Worker  int           `json:"worker"`
	Start   time.Duration `json:"startNs"` // offset from run start
	Dur     time.Duration `json:"durNs"`
	Cached  bool          `json:"cached"`
	Sim     bool          `json:"sim"`               // unit runs a simulation (vs. static table row)
	Deduped int           `json:"deduped,omitempty"` // extra placements served by this unit

	FFCyclesSaved uint64 `json:"ffCyclesSaved,omitempty"`
}

// RunStats summarizes a Run/RunAll invocation. It is reported out of
// band (never part of a Result) so result JSON stays run-independent;
// the run manifest serializes it wholesale.
type RunStats struct {
	Units     int           `json:"units"`     // distinct work units (identical points across jobs collapse)
	Executed  int           `json:"executed"`  // simulations executed this run
	CacheHits int           `json:"cacheHits"` // units served from the cache
	Elapsed   time.Duration `json:"elapsedNs"`

	// Workers is the effective pool width of the run.
	Workers int `json:"workers"`
	// WorkerBusy is each worker's cumulative in-unit time; against
	// Elapsed it gives per-lane utilization.
	WorkerBusy []time.Duration `json:"workerBusyNs,omitempty"`
	// Timings has one entry per unit, in deterministic unit order (job,
	// series, point — never scheduling order).
	Timings []PointTiming `json:"timings,omitempty"`
	// Metrics is the activity this run added to the process-wide obs
	// registry: the kernel counters published by the points it executed
	// plus the sweep engine's own (cache traffic, per-point timers).
	Metrics obs.Snapshot `json:"metrics"`
}

// Runner fans sweep jobs out across a worker pool with optional point
// caching and live progress reporting.
type Runner struct {
	// Workers is the concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// Cache memoizes points when non-nil: the local disk *Cache, a
	// fabric remote or tiered backend, or any other Backend
	// implementation. (A typed-nil *Cache is treated as nil, so call
	// sites that conditionally open a disk cache need no interface
	// gymnastics.)
	Cache Backend
	// Progress, when non-nil, is invoked once per finished point. It may
	// be called concurrently from worker goroutines.
	Progress func(Event)
	// Obs, when non-nil, scopes the run's sweep counters, timers and
	// RunStats.Metrics to this registry instead of the process-wide
	// obs.Default() — required when several RunAll calls run concurrently
	// in one process, whose metrics would otherwise cross-contaminate. A
	// Cache without its own registry inherits this one for the run.
	// (Kernel counters published by the experiments themselves still go
	// to the default registry; only the sweep engine's own accounting —
	// points, cache traffic, timers — is scoped here.)
	Obs *obs.Registry
}

// Run executes one job. See RunAll.
func (r *Runner) Run(job Job) (*Result, RunStats, error) {
	results, st, err := r.RunAll([]Job{job})
	if err != nil {
		return nil, st, err
	}
	return results[0], st, nil
}

// RunAll executes any number of jobs in one shot: every independent
// point of every job enters a single worker pool, so a multi-figure
// sweep keeps all cores busy even while individual figures drain.
// Results are assembled in job order with engine-defined series/point
// order — output never depends on scheduling.
func (r *Runner) RunAll(jobs []Job) ([]*Result, RunStats, error) {
	reg := r.Obs
	if reg == nil {
		reg = obs.Default()
	}
	cache := r.Cache
	if nilBackend(cache) {
		cache = nil
	}
	if rs, ok := cache.(RegistryScoped); ok {
		cache = rs.ScopedBackend(reg)
	}
	before := reg.Snapshot()
	start := time.Now()
	results := make([]*Result, len(jobs))
	// Identical points across jobs (same non-empty cache key) collapse
	// into one unit with several placements, so duplicated selections
	// never simulate the same point twice.
	type placement struct {
		job, si, pi int
	}
	type flatUnit struct {
		key    string
		sim    bool
		run    func() Point
		places []placement
	}
	var units []*flatUnit
	byKey := map[string]*flatUnit{}
	for ji, job := range jobs {
		norm, err := job.Normalize()
		if err != nil {
			return nil, RunStats{}, err
		}
		topo, series, jobUnits, err := expand(norm)
		if err != nil {
			return nil, RunStats{}, err
		}
		results[ji] = &Result{Job: norm, Cores: topo.NumCores(), Series: series}
		for _, u := range jobUnits {
			at := placement{job: ji, si: u.si, pi: u.pi}
			if u.key != "" {
				if fu, ok := byKey[u.key]; ok {
					fu.places = append(fu.places, at)
					continue
				}
			}
			fu := &flatUnit{key: u.key, sim: u.sim, run: u.run, places: []placement{at}}
			units = append(units, fu)
			if u.key != "" {
				byKey[u.key] = fu
			}
		}
	}

	pool := work.Pool{Workers: r.Workers}
	nWorkers := pool.Size(len(units))
	busy := make([]time.Duration, nWorkers)
	var busyMu sync.Mutex
	timings := make([]PointTiming, len(units))
	// Kernel counters are published to the default registry by the
	// experiments themselves, so the fast-forward sample reads from
	// there even when the run's own accounting is scoped via Obs.
	ffSaved := obs.Default().Counter("kernel.ff.cycles_saved")
	pointWall := reg.Timer("sweep.point.wall")
	queueWait := reg.Timer("sweep.queue.wait")

	var done, executed, hits atomic.Int64
	pool.MapWorkers(len(units), func(worker, i int) {
		u := units[i]
		unitStart := time.Since(start)
		queueWait.Observe(unitStart)
		var p Point
		cached := false
		if cache != nil && u.key != "" {
			p, cached = cache.Get(u.key)
		}
		if !cached {
			p = u.run()
			if u.sim {
				executed.Add(1)
			}
			if cache != nil && u.key != "" {
				// Best-effort: a failed write only costs a future re-run.
				_ = cache.Put(u.key, p)
			}
		} else {
			hits.Add(1)
		}
		for _, at := range u.places {
			results[at.job].Series[at.si].Points[at.pi] = p
		}
		dur := time.Since(start) - unitStart
		pointWall.Observe(dur)
		busyMu.Lock()
		busy[worker] += dur
		busyMu.Unlock()
		at := u.places[0]
		res := results[at.job]
		timings[i] = PointTiming{
			Job:           at.job,
			Kind:          string(res.Job.Kind),
			Series:        res.Series[at.si].Name,
			Index:         at.pi,
			X:             p.X,
			Worker:        worker,
			Start:         unitStart,
			Dur:           dur,
			Cached:        cached,
			Sim:           u.sim,
			Deduped:       len(u.places) - 1,
			FFCyclesSaved: ffSaved.Value(),
		}
		if r.Progress != nil {
			r.Progress(Event{
				Done:   int(done.Add(1)),
				Total:  len(units),
				Kind:   res.Job.Kind,
				Cached: cached,
			})
		}
	})

	for _, res := range results {
		finalize(res)
	}
	// Timings are indexed by unit, and units were laid out in (job,
	// series, point) order — deterministic placement order regardless of
	// scheduling, no sort needed.
	reg.Counter("sweep.points.total").Add(uint64(len(units)))
	reg.Counter("sweep.points.executed").Add(uint64(executed.Load()))
	reg.Counter("sweep.points.cached").Add(uint64(hits.Load()))
	reg.Gauge("sweep.workers").Set(int64(nWorkers))
	st := RunStats{
		Units:      len(units),
		Executed:   int(executed.Load()),
		CacheHits:  int(hits.Load()),
		Elapsed:    time.Since(start),
		Workers:    nWorkers,
		WorkerBusy: busy,
		Timings:    timings,
		Metrics:    obs.Diff(before, reg.Snapshot()),
	}
	return results, st, nil
}
