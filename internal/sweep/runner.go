package sweep

import (
	"sync/atomic"
	"time"

	"repro/internal/sweep/work"
)

// Event reports one finished sweep point to the Progress callback.
type Event struct {
	Done, Total int
	Kind        Kind
	Cached      bool // served from the cache, no simulation ran
}

// RunStats summarizes a Run/RunAll invocation. It is reported out of
// band (never part of a Result) so result JSON stays run-independent.
type RunStats struct {
	Units     int // distinct work units (identical points across jobs collapse)
	Executed  int // simulations executed this run
	CacheHits int // units served from the cache
	Elapsed   time.Duration
}

// Runner fans sweep jobs out across a worker pool with optional point
// caching and live progress reporting.
type Runner struct {
	// Workers is the concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// Cache memoizes points when non-nil.
	Cache *Cache
	// Progress, when non-nil, is invoked once per finished point. It may
	// be called concurrently from worker goroutines.
	Progress func(Event)
}

// Run executes one job. See RunAll.
func (r *Runner) Run(job Job) (*Result, RunStats, error) {
	results, st, err := r.RunAll([]Job{job})
	if err != nil {
		return nil, st, err
	}
	return results[0], st, nil
}

// RunAll executes any number of jobs in one shot: every independent
// point of every job enters a single worker pool, so a multi-figure
// sweep keeps all cores busy even while individual figures drain.
// Results are assembled in job order with engine-defined series/point
// order — output never depends on scheduling.
func (r *Runner) RunAll(jobs []Job) ([]*Result, RunStats, error) {
	start := time.Now()
	results := make([]*Result, len(jobs))
	// Identical points across jobs (same non-empty cache key) collapse
	// into one unit with several placements, so duplicated selections
	// never simulate the same point twice.
	type placement struct {
		job, si, pi int
	}
	type flatUnit struct {
		key    string
		sim    bool
		run    func() Point
		places []placement
	}
	var units []*flatUnit
	byKey := map[string]*flatUnit{}
	for ji, job := range jobs {
		norm, err := job.Normalize()
		if err != nil {
			return nil, RunStats{}, err
		}
		topo, series, jobUnits, err := expand(norm)
		if err != nil {
			return nil, RunStats{}, err
		}
		results[ji] = &Result{Job: norm, Cores: topo.NumCores(), Series: series}
		for _, u := range jobUnits {
			at := placement{job: ji, si: u.si, pi: u.pi}
			if u.key != "" {
				if fu, ok := byKey[u.key]; ok {
					fu.places = append(fu.places, at)
					continue
				}
			}
			fu := &flatUnit{key: u.key, sim: u.sim, run: u.run, places: []placement{at}}
			units = append(units, fu)
			if u.key != "" {
				byKey[u.key] = fu
			}
		}
	}

	var done, executed, hits atomic.Int64
	work.Pool{Workers: r.Workers}.Map(len(units), func(i int) {
		u := units[i]
		var p Point
		cached := false
		if r.Cache != nil && u.key != "" {
			p, cached = r.Cache.Get(u.key)
		}
		if !cached {
			p = u.run()
			if u.sim {
				executed.Add(1)
			}
			if r.Cache != nil && u.key != "" {
				// Best-effort: a failed write only costs a future re-run.
				_ = r.Cache.Put(u.key, p)
			}
		} else {
			hits.Add(1)
		}
		for _, at := range u.places {
			results[at.job].Series[at.si].Points[at.pi] = p
		}
		if r.Progress != nil {
			r.Progress(Event{
				Done:   int(done.Add(1)),
				Total:  len(units),
				Kind:   results[u.places[0].job].Job.Kind,
				Cached: cached,
			})
		}
	})

	for _, res := range results {
		finalize(res)
	}
	st := RunStats{
		Units:     len(units),
		Executed:  int(executed.Load()),
		CacheHits: int(hits.Load()),
		Elapsed:   time.Since(start),
	}
	return results, st, nil
}
