package sweep

import (
	"encoding/json"
	"fmt"
	"os"
)

// Chrome trace-event exporter: renders a run's PointTimings as a
// timeline loadable in chrome://tracing (or https://ui.perfetto.dev).
// One lane (thread) per sweep worker carries that worker's point spans;
// a counter track plots the cumulative fast-forwarded cycles sampled at
// each point's completion, so the parallelism of a sweep and where its
// fast-forwarding concentrated are visually inspectable.

// TraceEvent is one entry of the Trace Event Format's JSON array form.
// Timestamps and durations are in microseconds per the format.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object form of the format ({"traceEvents": [...]}),
// which tolerates trailing metadata better than the bare array form.
type traceFile struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// TraceEvents converts a run's stats into trace events: per-worker
// thread-name metadata, one complete ("X") span per unit, and a counter
// ("C") sample of cumulative kernel.ff.cycles_saved at each completion.
func TraceEvents(st RunStats) []TraceEvent {
	events := make([]TraceEvent, 0, 2*len(st.Timings)+st.Workers+1)
	events = append(events, TraceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "sweep"},
	})
	for w := 0; w < st.Workers; w++ {
		events = append(events, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: w + 1,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", w)},
		})
	}
	for _, t := range st.Timings {
		cat := "sim"
		if t.Cached {
			cat = "cached"
		} else if !t.Sim {
			cat = "static"
		}
		events = append(events, TraceEvent{
			Name: fmt.Sprintf("%s/%s[%d]", t.Kind, t.Series, t.Index),
			Cat:  cat,
			Ph:   "X",
			Ts:   float64(t.Start.Microseconds()),
			Dur:  durUS(t),
			Pid:  1,
			Tid:  t.Worker + 1,
			Args: map[string]any{
				"x": t.X, "cached": t.Cached, "sim": t.Sim, "job": t.Job,
			},
		})
		events = append(events, TraceEvent{
			Name: "ff_cycles_saved", Ph: "C", Pid: 1,
			Ts:   float64((t.Start + t.Dur).Microseconds()),
			Args: map[string]any{"cycles": t.FFCyclesSaved},
		})
	}
	return events
}

// durUS clamps a span to a visible minimum: chrome://tracing drops
// zero-width complete events, and cached points routinely finish in
// under a microsecond.
func durUS(t PointTiming) float64 {
	us := float64(t.Dur.Microseconds())
	if us < 1 {
		us = 1
	}
	return us
}

// WriteTrace writes the run's timeline to path in Chrome trace-event
// JSON.
func WriteTrace(path string, st RunStats) error {
	b, err := json.MarshalIndent(traceFile{TraceEvents: TraceEvents(st)}, "", " ")
	if err != nil {
		return fmt.Errorf("sweep: encode trace: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("sweep: write trace: %w", err)
	}
	return nil
}
