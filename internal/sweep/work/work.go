// Package work is the scheduling core of the sweep engine: a bounded
// worker pool that maps an index space onto GOMAXPROCS goroutines with
// deterministic result placement. Callers write result i from fn(i), so
// the output order never depends on goroutine interleaving — the property
// the sweep engine's byte-identical-JSON guarantee rests on.
//
// Both internal/sweep (parallel figure regeneration with caching) and
// internal/experiments (the per-figure entry points) fan their
// independent simulation points out through this pool.
package work

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs index-space maps on a fixed number of workers.
type Pool struct {
	// Workers is the goroutine count; <= 0 selects GOMAXPROCS.
	Workers int
}

// Serial returns a single-worker pool (deterministic reference order).
func Serial() Pool { return Pool{Workers: 1} }

// Parallel returns a GOMAXPROCS-wide pool.
func Parallel() Pool { return Pool{} }

// size resolves the effective worker count for n items.
func (p Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Map2D calls fn(i, j) exactly once for every (i, j) in
// [0, nOuter) × [0, nInner), distributing the flattened index space
// across the pool's workers. The experiment sweeps use it to fan a
// (series × point) grid out without hand-rolled index arithmetic.
func (p Pool) Map2D(nOuter, nInner int, fn func(i, j int)) {
	if nInner <= 0 {
		return
	}
	p.Map(nOuter*nInner, func(k int) {
		fn(k/nInner, k%nInner)
	})
}

// Map calls fn(i) exactly once for every i in [0, n), distributing calls
// across the pool's workers and returning when all calls are done. fn
// must be safe for concurrent invocation when the pool has more than one
// worker; each index is claimed by exactly one worker.
func (p Pool) Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.size(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
