// Package work is the scheduling core of the sweep engine: a bounded
// worker pool that maps an index space onto GOMAXPROCS goroutines with
// deterministic result placement. Callers write result i from fn(i), so
// the output order never depends on goroutine interleaving — the property
// the sweep engine's byte-identical-JSON guarantee rests on.
//
// Both internal/sweep (parallel figure regeneration with caching) and
// internal/experiments (the per-figure entry points) fan their
// independent simulation points out through this pool.
package work

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs index-space maps on a fixed number of workers.
type Pool struct {
	// Workers is the goroutine count; <= 0 selects GOMAXPROCS.
	Workers int
}

// Serial returns a single-worker pool (deterministic reference order).
func Serial() Pool { return Pool{Workers: 1} }

// Parallel returns a GOMAXPROCS-wide pool.
func Parallel() Pool { return Pool{} }

// size resolves the effective worker count for n items.
func (p Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Map2D calls fn(i, j) exactly once for every (i, j) in
// [0, nOuter) × [0, nInner), distributing the flattened index space
// across the pool's workers. The experiment sweeps use it to fan a
// (series × point) grid out without hand-rolled index arithmetic.
func (p Pool) Map2D(nOuter, nInner int, fn func(i, j int)) {
	if nInner <= 0 {
		return
	}
	p.Map(nOuter*nInner, func(k int) {
		fn(k/nInner, k%nInner)
	})
}

// Map calls fn(i) exactly once for every i in [0, n), distributing calls
// across the pool's workers and returning when all calls are done. fn
// must be safe for concurrent invocation when the pool has more than one
// worker; each index is claimed by exactly one worker.
func (p Pool) Map(n int, fn func(i int)) {
	p.MapWorkers(n, func(_, i int) { fn(i) })
}

// MapWorkers is Map with worker identity: fn(worker, i) where worker is
// the stable goroutine index in [0, Size(n)). The sweep runner uses it
// to attribute point timings to timeline lanes (one per worker) and to
// account per-worker utilization; fn's result placement must still
// depend only on i, never on worker.
func (p Pool) MapWorkers(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := p.size(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(k)
	}
	wg.Wait()
}

// Size returns the effective worker count the pool would use for n
// items (what MapWorkers' worker indices range over).
func (p Pool) Size(n int) int { return p.size(n) }
