package work

import (
	"sync/atomic"
	"testing"
)

func TestMapCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		Pool{Workers: workers}.Map(n, func(i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestMapSerialPreservesOrder(t *testing.T) {
	var order []int
	Serial().Map(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("serial ran %d of 5", len(order))
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	called := false
	Parallel().Map(0, func(int) { called = true })
	Parallel().Map(-3, func(int) { called = true })
	if called {
		t.Error("fn called for empty index space")
	}
}

func TestMap2DCoversGrid(t *testing.T) {
	const nOuter, nInner = 5, 7
	var hits [nOuter][nInner]atomic.Int32
	Pool{Workers: 4}.Map2D(nOuter, nInner, func(i, j int) {
		hits[i][j].Add(1)
	})
	for i := range hits {
		for j := range hits[i] {
			if got := hits[i][j].Load(); got != 1 {
				t.Fatalf("(%d,%d) ran %d times", i, j, got)
			}
		}
	}
	called := false
	Parallel().Map2D(3, 0, func(int, int) { called = true })
	if called {
		t.Error("fn called for empty inner dimension")
	}
}

func TestMapMoreWorkersThanItems(t *testing.T) {
	var count atomic.Int32
	Pool{Workers: 16}.Map(3, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("ran %d of 3", count.Load())
	}
}
