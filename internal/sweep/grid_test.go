package sweep

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/noc"
)

// gridTestJob is the reduced policy-grid sweep the grid tests share:
// one bin level, a 2×2 queuecap × backoff grid on the 16-core topology.
func gridTestJob() Job {
	return Job{Kind: Fig3, Topo: "small", Bins: []int{1},
		Warmup: testWarmup, Measure: testMeasure,
		QueueCaps: []int{0, 1}, Backoffs: []int{0, 64}}
}

func TestNormalizeGridCanonicalizes(t *testing.T) {
	j := Job{Kind: Fig3, Topo: "small", Bins: []int{1},
		QueueCaps:     []int{4, 0, 1, 4},
		ColibriQueues: []int{8, 2, 2},
		Backoffs:      []int{64, 0, 64}}
	n, err := j.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n.QueueCaps, []int{0, 1, 4}) ||
		!reflect.DeepEqual(n.ColibriQueues, []int{2, 8}) ||
		!reflect.DeepEqual(n.Backoffs, []int{0, 64}) {
		t.Errorf("grid axes not canonicalized: %+v", n)
	}
	if !n.HasGrid() {
		t.Error("HasGrid false after normalize")
	}
	if (Job{Kind: Fig3}).HasGrid() {
		t.Error("HasGrid true for grid-free job")
	}
}

func TestNormalizeGridErrors(t *testing.T) {
	base := Job{Kind: Fig3, Topo: "small", Bins: []int{1}}
	bad := []Job{
		func(j Job) Job { j.QueueCaps = []int{-1}; return j }(base),
		func(j Job) Job { j.ColibriQueues = []int{0}; return j }(base),
		func(j Job) Job { j.Backoffs = []int{-5}; return j }(base),
		{Kind: TableI, Topo: "small", QueueCaps: []int{1}},
		{Kind: TableII, Topo: "small", Backoffs: []int{64}},
	}
	for i, j := range bad {
		if _, err := j.Normalize(); err == nil {
			t.Errorf("job %d (%+v) accepted", i, j)
		}
	}
}

// TestGridSeriesLabels checks the expansion shape: one series per
// (spec, grid coordinate), spec-major, each carrying its coordinate in
// both the name suffix and the structured Grid field; grid-free series
// stay unlabelled.
func TestGridSeriesLabels(t *testing.T) {
	norm, err := gridTestJob().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	_, series, units, err := expand(norm)
	if err != nil {
		t.Fatal(err)
	}
	nSpecs := len(experiments.Fig3Specs(noc.Small().NumCores()))
	if want := nSpecs * 4; len(series) != want {
		t.Fatalf("series = %d, want %d (specs × grid points)", len(series), want)
	}
	if len(units) != len(series)*len(norm.Bins) {
		t.Fatalf("units = %d, want %d", len(units), len(series)*len(norm.Bins))
	}
	// Spec-major, grid ascending: first four series are the first spec at
	// (q=0,bo=0), (q=0,bo=64), (q=1,bo=0), (q=1,bo=64).
	wantSuffix := []string{
		"[queuecap=0 backoff=0]", "[queuecap=0 backoff=64]",
		"[queuecap=1 backoff=0]", "[queuecap=1 backoff=64]",
	}
	for i, suffix := range wantSuffix {
		s := series[i]
		if !strings.HasSuffix(s.Name, suffix) {
			t.Errorf("series %d name %q missing %q", i, s.Name, suffix)
		}
		if s.Grid == nil || s.Grid.QueueCap == nil || s.Grid.Backoff == nil {
			t.Fatalf("series %d has no grid coordinate: %+v", i, s.Grid)
		}
		if s.Grid.ColibriQueues != nil {
			t.Errorf("series %d carries an unswept axis", i)
		}
		if got := "[" + s.Grid.Label() + "]"; got != suffix {
			t.Errorf("series %d label %q != suffix %q", i, got, suffix)
		}
	}

	plain, err := testJob(Fig3).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	_, series, _, err = expand(plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.Grid != nil || strings.Contains(s.Name, "[") {
			t.Errorf("grid-free series labelled: %+v", s)
		}
	}
}

// TestGridDeterministicAcrossWorkers extends the engine's core guarantee
// to grid sweeps: 1 worker and GOMAXPROCS workers emit byte-identical
// JSON.
func TestGridDeterministicAcrossWorkers(t *testing.T) {
	job := gridTestJob()
	serial := resultJSON(t, Runner{Workers: 1}, job)
	parallel := resultJSON(t, Runner{Workers: 0}, job) // GOMAXPROCS
	if !bytes.Equal(serial, parallel) {
		t.Errorf("1-worker and GOMAXPROCS-worker grid JSON differ:\n%s\n---\n%s",
			serial, parallel)
	}
}

// TestGridWarmCacheExecutesNothing checks a warm-cache grid re-run is
// served entirely from the cache with identical output.
func TestGridWarmCacheExecutesNothing(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := gridTestJob()
	r := Runner{Workers: 4, Cache: cache}
	cold, st, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != st.Units || st.CacheHits != 0 {
		t.Fatalf("cold grid run stats = %+v", st)
	}
	warm, st, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != 0 {
		t.Errorf("warm grid run executed %d simulations", st.Executed)
	}
	if st.CacheHits != st.Units {
		t.Errorf("warm grid run hits = %d, want %d", st.CacheHits, st.Units)
	}
	cb, _ := cold.JSON()
	wb, _ := warm.JSON()
	if !bytes.Equal(cb, wb) {
		t.Error("warm-cache grid result differs from cold run")
	}
}

// unitKeys expands a job and returns the cache keys of its simulation
// units as a set.
func unitKeys(t *testing.T, j Job) map[string]bool {
	t.Helper()
	norm, err := j.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	_, _, units, err := expand(norm)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, u := range units {
		if u.key == "" {
			t.Fatal("uncacheable unit in test binary (fingerprint failed?)")
		}
		keys[u.key] = true
	}
	return keys
}

// TestGridAxisForksCacheKeys pins the grid axes into the cache identity:
// two jobs differing only in one grid axis share no unit keys.
func TestGridAxisForksCacheKeys(t *testing.T) {
	base := Job{Kind: Fig3, Topo: "small", Bins: []int{1},
		Warmup: testWarmup, Measure: testMeasure}
	vary := []struct {
		name string
		a, b func(Job) Job
	}{
		{"queuecap", func(j Job) Job { j.QueueCaps = []int{1}; return j },
			func(j Job) Job { j.QueueCaps = []int{2}; return j }},
		{"colibriq", func(j Job) Job { j.ColibriQueues = []int{2}; return j },
			func(j Job) Job { j.ColibriQueues = []int{8}; return j }},
		{"backoff", func(j Job) Job { j.Backoffs = []int{32}; return j },
			func(j Job) Job { j.Backoffs = []int{64}; return j }},
	}
	for _, v := range vary {
		a, b := unitKeys(t, v.a(base)), unitKeys(t, v.b(base))
		if len(a) == 0 || len(b) == 0 {
			t.Fatalf("%s: empty key set", v.name)
		}
		for k := range a {
			if b[k] {
				t.Errorf("%s: jobs differing only in the %s axis share key %q", v.name, v.name, k)
			}
		}
	}
}

// TestGridRestatedDefaultSharesKeys pins the effective-policy keying:
// a grid that merely restates a default (backoff=128, colibriq=4) is
// the same simulation as the grid-free sweep and must hit the same
// cache entries.
func TestGridRestatedDefaultSharesKeys(t *testing.T) {
	for _, kind := range []Kind{Fig3, Fig6} {
		base := Job{Kind: kind, Topo: "small", Bins: []int{1},
			Warmup: testWarmup, Measure: testMeasure}
		plain := unitKeys(t, base)
		restated := base
		restated.Backoffs = []int{experiments.DefaultBackoff}
		restated.ColibriQueues = []int{4}
		got := unitKeys(t, restated)
		if len(got) != len(plain) {
			t.Fatalf("%s: restated-default grid has %d keys, grid-free %d",
				kind, len(got), len(plain))
		}
		for k := range got {
			if !plain[k] {
				t.Errorf("%s: restated-default key %q not shared with grid-free sweep", kind, k)
			}
		}
	}
}

// TestCacheVersionBumpInvalidatesOldEntries pins the v3 bump: every
// unit key now carries the v3 prefix, and entries stored under the
// corresponding earlier-era keys (v1 pre-grid, v2 pre-registry) are
// never served for it.
func TestCacheVersionBumpInvalidatesOldEntries(t *testing.T) {
	if cacheVersion == "v1" || cacheVersion == "v2" {
		t.Fatal("cacheVersion not bumped for the scenario-owned keys")
	}
	keys := unitKeys(t, testJob(Fig3))
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for k := range keys {
		if !strings.HasPrefix(k, cacheVersion+"|") {
			t.Fatalf("key %q does not start with %q", k, cacheVersion+"|")
		}
		for _, oldVersion := range []string{"v1", "v2"} {
			old := oldVersion + "|" + strings.TrimPrefix(k, cacheVersion+"|")
			if err := cache.Put(old, Point{X: -1, Throughput: 99}); err != nil {
				t.Fatal(err)
			}
		}
		if _, ok := cache.Get(k); ok {
			t.Fatalf("old-era entry served for %s key %q", cacheVersion, k)
		}
	}
}

// TestGridPointParity pins a grid unit to the reference runner: the
// engine's (spec, coordinate, bins) point must exactly match a direct
// RunHistogramPointPolicy call with the merged policy.
func TestGridPointParity(t *testing.T) {
	topo := noc.Small()
	job := Job{Kind: Fig3, Topo: "small", Bins: []int{1},
		Warmup: testWarmup, Measure: testMeasure, QueueCaps: []int{2}, Backoffs: []int{16}}
	res, _, err := (&Runner{Workers: 4}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	specs := experiments.Fig3Specs(topo.NumCores())
	if len(res.Series) != len(specs) {
		t.Fatalf("series = %d, want %d", len(res.Series), len(specs))
	}
	for si, spec := range specs {
		pol := spec.PolicyConfig()
		pol.QueueCap = 2
		pol.Backoff = 16
		ref := experiments.RunHistogramPointPolicy(spec, pol, topo, 1, testWarmup, testMeasure)
		got := res.Series[si].Points[0]
		if got.Throughput != ref.Throughput {
			t.Errorf("%s: engine %v != direct %v", res.Series[si].Name,
				got.Throughput, ref.Throughput)
		}
	}
}

// TestGridZeroBackoffIsLiteral checks a backoff=0 grid value means no
// backoff (the sentinel re-encoding), not the 128-cycle default.
func TestGridZeroBackoffIsLiteral(t *testing.T) {
	topo := noc.Small()
	spec := experiments.Fig3Specs(topo.NumCores())[0]
	job := Job{Kind: Fig3, Topo: "small", Bins: []int{1},
		Warmup: testWarmup, Measure: testMeasure, Backoffs: []int{0}}
	res, _, err := (&Runner{Workers: 2}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	pol := spec.PolicyConfig()
	pol.Backoff = -1 // literal zero cycles
	ref := experiments.RunHistogramPointPolicy(spec, pol, topo, 1, testWarmup, testMeasure)
	if got := res.Series[0].Points[0].Throughput; got != ref.Throughput {
		t.Errorf("backoff=0 grid point %v != no-backoff reference %v", got, ref.Throughput)
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("queuecap=0,1,2,4 colibriq=2,4,8 backoff=0,64")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.QueueCaps, []int{0, 1, 2, 4}) ||
		!reflect.DeepEqual(g.ColibriQueues, []int{2, 4, 8}) ||
		!reflect.DeepEqual(g.Backoffs, []int{0, 64}) {
		t.Errorf("ParseGrid = %+v", g)
	}
	if g.IsZero() {
		t.Error("parsed grid reports zero")
	}
	if g, err := ParseGrid(""); err != nil || !g.IsZero() {
		t.Errorf("empty flag: %+v, %v", g, err)
	}
	if g, err := ParseGrid("backoff=1 backoff=2"); err != nil ||
		!reflect.DeepEqual(g.Backoffs, []int{1, 2}) {
		t.Errorf("repeated axis: %+v, %v", g, err)
	}
	for _, bad := range []string{"queuecap", "queuecap=", "queuecap=x", "queuecap=-1", "spins=4"} {
		if _, err := ParseGrid(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}

	var j Job
	g, _ = ParseGrid("queuecap=1 backoff=64")
	g.Apply(&j)
	if !reflect.DeepEqual(j.QueueCaps, []int{1}) || j.ColibriQueues != nil ||
		!reflect.DeepEqual(j.Backoffs, []int{64}) {
		t.Errorf("Apply = %+v", j)
	}
}

// randomJob builds a Normalize-valid job with randomized fields,
// including grid axes for the figure kinds.
func randomJob(rng *rand.Rand) Job {
	figKinds := []Kind{Fig3, Fig4, Fig5, Fig6, Fig6MS}
	topos := []string{"small", "medium", "mempool"}
	j := Job{Topo: topos[rng.Intn(len(topos))]}
	vals := func(n, lo, span int) []int {
		var out []int
		for i := 0; i < n; i++ {
			out = append(out, lo+rng.Intn(span))
		}
		return out
	}
	switch rng.Intn(7) {
	case 0:
		j.Kind = TableI
		j.Cores = 1 + rng.Intn(512)
	case 1:
		j.Kind = TableII
	default:
		j.Kind = figKinds[rng.Intn(len(figKinds))]
		registered := []string{"plain", "lrsc", "lrsc-table", "lrscwait", "colibri"}
		for i := rng.Intn(3); i > 0; i-- {
			j.Policies = append(j.Policies, registered[rng.Intn(len(registered))])
		}
		j.QueueCaps = vals(rng.Intn(4), 0, 8)
		j.ColibriQueues = vals(rng.Intn(4), 1, 8)
		j.Backoffs = vals(rng.Intn(4), 0, 256)
	}
	switch j.Kind {
	case Fig3, Fig4, Fig5:
		j.Bins = vals(rng.Intn(4), 1, 16)
		if j.Kind == Fig5 && rng.Intn(2) == 0 {
			j.MatN = 64 + rng.Intn(64)
		}
	}
	if rng.Intn(2) == 0 {
		j.Warmup = rng.Intn(100) - 1
		j.Measure = rng.Intn(100) - 1
	}
	return j
}

// shuffleGrid returns the job with its grid axes permuted and one
// duplicate value appended per non-empty axis — the reorderings
// Normalize must erase.
func shuffleGrid(j Job, rng *rand.Rand) Job {
	mix := func(vals []int) []int {
		if len(vals) == 0 {
			return vals
		}
		out := append([]int(nil), vals...)
		out = append(out, out[rng.Intn(len(out))])
		rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
		return out
	}
	j.QueueCaps = mix(j.QueueCaps)
	j.ColibriQueues = mix(j.ColibriQueues)
	j.Backoffs = mix(j.Backoffs)
	if len(j.Policies) > 0 {
		out := append([]string(nil), j.Policies...)
		out = append(out, out[rng.Intn(len(out))])
		rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
		j.Policies = out
	}
	return j
}

// TestNormalizeProperty is the normalization contract as a property
// test: over randomized jobs, Normalize is idempotent, insensitive to
// grid-axis order and duplication, and therefore cannot fork the cache
// identity (the expanded unit-key sequence) of equivalent specs.
func TestNormalizeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for i := 0; i < 300; i++ {
		j := randomJob(rng)
		n1, err := j.Normalize()
		if err != nil {
			t.Fatalf("job %d (%+v): %v", i, j, err)
		}
		n2, err := n1.Normalize()
		if err != nil {
			t.Fatalf("job %d: re-normalize: %v", i, err)
		}
		if !reflect.DeepEqual(n1, n2) {
			t.Fatalf("job %d: Normalize not idempotent:\n%+v\n%+v", i, n1, n2)
		}
		n3, err := shuffleGrid(j, rng).Normalize()
		if err != nil {
			t.Fatalf("job %d: shuffled normalize: %v", i, err)
		}
		if !reflect.DeepEqual(n1, n3) {
			t.Fatalf("job %d: Normalize order-sensitive:\n%+v\n%+v", i, n1, n3)
		}
		_, _, u1, err := expand(n1)
		if err != nil {
			t.Fatalf("job %d: expand: %v", i, err)
		}
		_, _, u3, err := expand(n3)
		if err != nil {
			t.Fatalf("job %d: expand shuffled: %v", i, err)
		}
		if len(u1) != len(u3) {
			t.Fatalf("job %d: unit counts differ: %d vs %d", i, len(u1), len(u3))
		}
		for k := range u1 {
			if u1[k].key != u3[k].key {
				t.Fatalf("job %d: cache identity forked at unit %d:\n%q\n%q",
					i, k, u1[k].key, u3[k].key)
			}
		}
	}
}
