package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// normalizeManifest zeroes the run-dependent fields of a manifest so the
// rest can be pinned as a golden file: the environment, wall-clock
// timings (per-point and per-worker), the sampled fast-forward counter
// (cumulative across the process-wide registry, so it depends on what
// ran before this test), and timer totals. Counters survive: with a
// deterministic job the kernel metric deltas are exact.
func normalizeManifest(m Manifest) Manifest {
	m.Env = Environment{}
	m.Stats.Elapsed = 0
	m.Stats.WorkerBusy = nil
	for i := range m.Stats.Timings {
		m.Stats.Timings[i].Start = 0
		m.Stats.Timings[i].Dur = 0
		m.Stats.Timings[i].FFCyclesSaved = 0
	}
	for name, tv := range m.Stats.Metrics.Timers {
		tv.TotalNs = 0
		m.Stats.Metrics.Timers[name] = tv
	}
	return m
}

// TestManifestGolden pins the manifest shape: a single-worker uncached
// fig3 run, volatile fields zeroed, compared byte-for-byte against
// testdata. Because the kernel is deterministic, this also pins the
// exact published metric deltas of the reduced fig3 sweep — an
// accounting regression (lost tick, double-published counter) shows up
// as a golden diff. Regenerate with -update after intentional changes.
func TestManifestGolden(t *testing.T) {
	job := testJob(Fig3)
	results, st, err := (&Runner{Workers: 1}).RunAll([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	m := normalizeManifest(NewManifest(results, st, ""))
	got, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "manifest-fig3.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("manifest drifted from golden %s\n--- got ---\n%s", path, got)
	}
}

// TestManifestShape checks the non-golden invariants on a two-job run:
// schema tag, per-job spec hashes, series/point counts, and that the
// stats block carries one timing per executed unit.
func TestManifestShape(t *testing.T) {
	jobs := []Job{testJob(Fig3), testJob(TableI)}
	results, st, err := (&Runner{Workers: 2}).RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManifest(results, st, "/tmp/cachedir")
	if m.Schema != ManifestSchema {
		t.Errorf("schema = %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Cache != "/tmp/cachedir" {
		t.Errorf("cache = %q", m.Cache)
	}
	if len(m.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(m.Jobs))
	}
	for i, mj := range m.Jobs {
		if len(mj.SpecHash) != 16 {
			t.Errorf("job %d: specHash %q, want 16 hex chars", i, mj.SpecHash)
		}
		if mj.Kind != string(results[i].Job.Kind) {
			t.Errorf("job %d: kind %q != result kind %q", i, mj.Kind, results[i].Job.Kind)
		}
		points := 0
		for _, s := range results[i].Series {
			points += len(s.Points)
		}
		if mj.Points != points || len(mj.Series) != len(results[i].Series) {
			t.Errorf("job %d: %d series/%d points, want %d/%d",
				i, len(mj.Series), mj.Points, len(results[i].Series), points)
		}
	}
	// Same normalized spec must hash identically; different specs must not.
	if h1, h2 := specHash(results[0].Job), specHash(results[0].Job); h1 != h2 {
		t.Errorf("specHash not stable: %q vs %q", h1, h2)
	}
	if specHash(results[0].Job) == specHash(results[1].Job) {
		t.Error("distinct jobs hash identically")
	}
	if len(st.Timings) != st.Units {
		t.Errorf("timings = %d, want one per unit (%d)", len(st.Timings), st.Units)
	}
	if st.Workers != 2 || len(st.WorkerBusy) != 2 {
		t.Errorf("workers = %d, busy lanes = %d, want 2/2", st.Workers, len(st.WorkerBusy))
	}
	if m.Stats.Metrics.Counter("sweep.points.total") != uint64(st.Units) {
		t.Errorf("sweep.points.total = %d, want %d",
			m.Stats.Metrics.Counter("sweep.points.total"), st.Units)
	}
}

// TestTraceEventsValid renders a run's timeline and checks the Chrome
// trace-event contract: the file is a JSON object with a traceEvents
// array; one process-name and per-worker thread-name metadata event; one
// complete ("X") span per unit on a worker lane with a visible duration;
// and one counter ("C") sample per unit.
func TestTraceEventsValid(t *testing.T) {
	jobs := []Job{testJob(Fig3), testJob(TableII)}
	_, st, err := (&Runner{Workers: 2}).RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTrace(path, st); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	var meta, spans, counters int
	threadNames := map[int]bool{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threadNames[ev.Tid] = true
			}
		case "X":
			spans++
			if ev.Ts < 0 || ev.Dur < 1 {
				t.Errorf("span %q: ts=%v dur=%v, want ts>=0 dur>=1us", ev.Name, ev.Ts, ev.Dur)
			}
			if ev.Tid < 1 || ev.Tid > st.Workers {
				t.Errorf("span %q on tid %d, want a worker lane 1..%d", ev.Name, ev.Tid, st.Workers)
			}
			switch ev.Cat {
			case "sim", "cached", "static":
			default:
				t.Errorf("span %q: unknown category %q", ev.Name, ev.Cat)
			}
		case "C":
			counters++
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if spans != st.Units {
		t.Errorf("spans = %d, want one per unit (%d)", spans, st.Units)
	}
	if counters != st.Units {
		t.Errorf("counter samples = %d, want one per unit (%d)", counters, st.Units)
	}
	if meta != st.Workers+1 {
		t.Errorf("metadata events = %d, want process + %d workers", meta, st.Workers)
	}
	for w := 1; w <= st.Workers; w++ {
		if !threadNames[w] {
			t.Errorf("missing thread_name for worker lane %d", w)
		}
	}
}
