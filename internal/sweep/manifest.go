package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/obs"
)

// ManifestSchema identifies the run-manifest JSON format. Bump on any
// incompatible change to Manifest's shape.
const ManifestSchema = "lrscwait/run-manifest/v1"

// Environment captures where a run executed — everything about the host
// that could explain a timing difference between two manifests of the
// same job.
type Environment struct {
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numCPU"`
}

// CaptureEnv snapshots the current process environment.
func CaptureEnv() Environment {
	return Environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// ManifestJob describes one job of the run: the normalized spec, its
// content hash (what the cache keys derive from, minus the binary
// fingerprint — two binaries hashing the spec identically ran the same
// experiment), and the result's shape.
type ManifestJob struct {
	Kind     string   `json:"kind"`
	SpecHash string   `json:"specHash"`
	Job      Job      `json:"job"`
	Cores    int      `json:"cores"`
	Series   []string `json:"series"`
	Points   int      `json:"points"`
}

// Manifest is the run record emitted next to sweep results: what was
// run (normalized job specs with content hashes), where (environment),
// how (workers, cache), and what it cost (RunStats with per-point
// timings and the full run-scoped metric snapshot). Results stay
// byte-identical across runs; the manifest is where all run-dependent
// observability data lives.
type Manifest struct {
	Schema  string        `json:"schema"`
	Env     Environment   `json:"env"`
	Workers int           `json:"workers"`
	Cache   string        `json:"cache,omitempty"` // cache dir, empty when caching was off
	Jobs    []ManifestJob `json:"jobs"`
	Stats   RunStats      `json:"stats"`
}

// specHash content-hashes a normalized job spec via its canonical JSON.
func specHash(job Job) string {
	b, err := json.Marshal(job)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:16]
}

// NewManifest assembles the manifest for a finished RunAll invocation.
// results must be the slice RunAll returned (normalized jobs); st its
// stats. cacheDir is empty when the run had no cache.
func NewManifest(results []*Result, st RunStats, cacheDir string) Manifest {
	m := Manifest{
		Schema:  ManifestSchema,
		Env:     CaptureEnv(),
		Workers: st.Workers,
		Cache:   cacheDir,
		Stats:   st,
	}
	for _, res := range results {
		mj := ManifestJob{
			Kind:     string(res.Job.Kind),
			SpecHash: specHash(res.Job),
			Job:      res.Job,
			Cores:    res.Cores,
		}
		for _, s := range res.Series {
			mj.Series = append(mj.Series, s.Name)
			mj.Points += len(s.Points)
		}
		m.Jobs = append(m.Jobs, mj)
	}
	return m
}

// JSON renders the manifest as indented JSON. Deterministic except for
// the timing fields and the environment — which is the point: a diff of
// two manifests of the same job shows exactly the run-dependent parts.
func (m Manifest) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest to path.
func (m Manifest) WriteFile(path string) error {
	b, err := m.JSON()
	if err != nil {
		return fmt.Errorf("sweep: encode manifest: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("sweep: write manifest: %w", err)
	}
	return nil
}

// SimManifest is the single-simulation analogue (cmd/lrscwait-sim):
// environment plus the run's metric snapshot, no sweep machinery.
type SimManifest struct {
	Schema  string       `json:"schema"`
	Env     Environment  `json:"env"`
	Metrics obs.Snapshot `json:"metrics"`
}

// SimManifestSchema identifies the single-run manifest format.
const SimManifestSchema = "lrscwait/sim-manifest/v1"

// NewSimManifest assembles a single-simulation manifest from the run's
// metric diff.
func NewSimManifest(metrics obs.Snapshot) SimManifest {
	return SimManifest{Schema: SimManifestSchema, Env: CaptureEnv(), Metrics: metrics}
}

// WriteFile writes the manifest to path.
func (m SimManifest) WriteFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode manifest: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
