// Package locks is the assembly macro library for the software
// synchronization primitives the paper benchmarks against:
//
//   - test-and-set spin locks with bounded backoff, built on AMOSWAP, on
//     LR/SC, or on LRwait/SCwait ("Colibri lock");
//   - a ticket lock built on AMOADD ("Atomic Add lock");
//   - an MCS queue lock whose waiters sleep with Mwait instead of
//     spinning ("Mwait lock").
//
// Each Emit* function appends the instruction sequence to a Builder. The
// caller supplies the registers; macros document what they clobber. Label
// names are prefixed to keep multiple expansions distinct.
//
// Backoff convention: spins and retry loops use truncated exponential
// backoff. `cap` holds the maximum backoff in cycles (the paper's
// "backoff of 128 cycles"); `cur` holds the current value, doubled up to
// the cap on every failure and reseeded to cap/4+1 on success. A fixed
// backoff synchronizes the retry bursts of hundreds of cores and
// collapses throughput far below what the paper's RTL measures.
package locks

import (
	"fmt"

	"repro/internal/isa"
)

// EmitExpBackoff emits: pause(cur); cur = min(2*cur, cap).
func EmitExpBackoff(b *isa.Builder, prefix string, cur, cap isa.Reg) {
	skip := prefix + "_bo_skip"
	b.Pause(cur)
	b.Slli(cur, cur, 1)
	b.Bge(cap, cur, skip)
	b.Mv(cur, cap)
	b.Label(skip)
}

// EmitBackoffReset emits cur = cap/4 + 1 (the backoff seed).
func EmitBackoffReset(b *isa.Builder, cur, cap isa.Reg) {
	b.Srli(cur, cap, 2)
	b.Addi(cur, cur, 1)
}

// EmitTASAcquireAmo emits a test-and-set acquire using AMOSWAP:
// spin { old = amoswap(lock, 1); if old == 0 break; backoff }.
// lockAddr holds the lock's byte address; cur/cap drive the backoff;
// tmp0/tmp1 are clobbered.
func EmitTASAcquireAmo(b *isa.Builder, prefix string, lockAddr, cur, cap, tmp0, tmp1 isa.Reg) {
	retry := prefix + "_tas_retry"
	done := prefix + "_tas_done"
	b.Label(retry)
	b.Li(tmp0, 1)
	b.AmoSwap(tmp1, tmp0, lockAddr)
	b.Beqz(tmp1, done)
	EmitExpBackoff(b, prefix+"_tas", cur, cap)
	b.J(retry)
	b.Label(done)
	EmitBackoffReset(b, cur, cap)
}

// EmitRelease emits a lock release (store zero).
func EmitRelease(b *isa.Builder, lockAddr isa.Reg) {
	b.Sw(isa.Zero, lockAddr, 0)
}

// EmitTASAcquireLRSC emits a test-and-set acquire using an LR/SC pair:
// spin { v = lr(lock); if v != 0 { backoff; retry }; if sc(lock, 1)
// fails { backoff; retry } }.
func EmitTASAcquireLRSC(b *isa.Builder, prefix string, lockAddr, cur, cap, tmp0, tmp1 isa.Reg) {
	retry := prefix + "_lrsc_retry"
	busy := prefix + "_lrsc_busy"
	done := prefix + "_lrsc_done"
	b.Label(retry)
	b.Lr(tmp0, lockAddr)
	b.Bnez(tmp0, busy)
	b.Li(tmp0, 1)
	b.Sc(tmp1, tmp0, lockAddr)
	b.Beqz(tmp1, done)
	EmitExpBackoff(b, prefix+"_lrsc_f", cur, cap)
	b.J(retry)
	b.Label(busy)
	EmitExpBackoff(b, prefix+"_lrsc_b", cur, cap)
	b.J(retry)
	b.Label(done)
	EmitBackoffReset(b, cur, cap)
}

// EmitTASAcquireLRSCWait emits a test-and-set acquire using the
// LRwait/SCwait pair ("Colibri lock"). The wait pair requires every LRwait
// to be closed by an SCwait, so when the lock is observed busy the macro
// writes the unchanged value back (yielding the queue) before backing off.
func EmitTASAcquireLRSCWait(b *isa.Builder, prefix string, lockAddr, cur, cap, tmp0, tmp1 isa.Reg) {
	retry := prefix + "_lrw_retry"
	busy := prefix + "_lrw_busy"
	done := prefix + "_lrw_done"
	b.Label(retry)
	b.LrWait(tmp0, lockAddr)
	b.Bnez(tmp0, busy)
	b.Li(tmp0, 1)
	b.ScWait(tmp1, tmp0, lockAddr)
	b.Beqz(tmp1, done)
	EmitExpBackoff(b, prefix+"_lrw_f", cur, cap)
	b.J(retry)
	b.Label(busy)
	// Yield the reservation queue: write back the observed value.
	b.ScWait(tmp1, tmp0, lockAddr)
	EmitExpBackoff(b, prefix+"_lrw_b", cur, cap)
	b.J(retry)
	b.Label(done)
	EmitBackoffReset(b, cur, cap)
}

// EmitTicketAcquire emits a ticket-lock acquire built purely on AMOADD
// ("Atomic Add lock"): my = amoadd(next, 1); spin { cur = lw(serving);
// if cur == my break; backoff }. The lock occupies two words: lockAddr ->
// next-ticket, lockAddr+4 -> now-serving. ticket receives the acquired
// ticket; tmp is scratch.
func EmitTicketAcquire(b *isa.Builder, prefix string, lockAddr, cur, cap, ticket, tmp isa.Reg) {
	spin := prefix + "_ticket_spin"
	done := prefix + "_ticket_done"
	b.Li(tmp, 1)
	b.AmoAdd(ticket, tmp, lockAddr)
	b.Label(spin)
	b.Lw(tmp, lockAddr, 4)
	b.Beq(tmp, ticket, done)
	EmitExpBackoff(b, prefix+"_ticket", cur, cap)
	b.J(spin)
	b.Label(done)
	EmitBackoffReset(b, cur, cap)
}

// EmitTicketRelease advances now-serving (lockAddr+4) with an AMOADD.
// tmp0 and tmp1 are clobbered.
func EmitTicketRelease(b *isa.Builder, lockAddr, tmp0, tmp1 isa.Reg) {
	b.Addi(tmp0, lockAddr, 4)
	b.Li(tmp1, 1)
	b.AmoAdd(isa.Zero, tmp1, tmp0)
}

// TicketWords is the number of words a ticket lock occupies.
const TicketWords = 2

// MCS lock memory layout:
//
//	lock word:      tail pointer (0 = free, else byte address of a node)
//	per-core node:  2 words — [0] locked flag (1 = waiting), [1] next ptr
//
// Acquire: swap self into the tail; if there was a predecessor, link self
// into its next pointer and sleep with Mwait on the own locked flag.
// Release: if no successor is linked, clear the tail with an
// LRwait/SCwait CAS; if a successor appears (or was there), hand over by
// clearing its locked flag.
//
// This is the paper's "Mwait lock": an MCS lock where the spin on the
// local flag is replaced by the polling-free Mwait, and the release-time
// compare-and-swap runs on the generic LRSCwait RMW pair.

// MCSNodeWords is the per-core node footprint in words.
const MCSNodeWords = 2

// EmitMCSAcquire emits the MCS acquire. lockAddr holds the lock (tail)
// address, nodeAddr the caller's node address. tmp0..tmp2 are clobbered.
func EmitMCSAcquire(b *isa.Builder, prefix string, lockAddr, nodeAddr, tmp0, tmp1, tmp2 isa.Reg) {
	wait := prefix + "_mcs_wait"
	done := prefix + "_mcs_done"
	// node.locked = 1; node.next = 0.
	b.Li(tmp0, 1)
	b.Sw(tmp0, nodeAddr, 0)
	b.Sw(isa.Zero, nodeAddr, 4)
	// pred = amoswap(tail, node).
	b.AmoSwap(tmp1, nodeAddr, lockAddr)
	b.Beqz(tmp1, done) // lock was free
	// pred.next = node.
	b.Sw(nodeAddr, tmp1, 4)
	// Sleep until our locked flag leaves 1. A refused Mwait returns the
	// still-unchanged value, so looping on "== 1" covers both refusal
	// and spurious wake.
	b.Li(tmp2, 1)
	b.Label(wait)
	b.MWait(tmp0, tmp2, nodeAddr)
	b.Beq(tmp0, tmp2, wait)
	b.Label(done)
}

// WaitKind selects how a waiter watches a shared word for change: busy
// polling, polling with truncated exponential backoff, or the
// polling-free Mwait sleep. It is the software knob the pattern
// scenarios sweep — the same axis the paper sweeps in hardware.
type WaitKind int

const (
	// WaitSpin polls the word with plain loads every cycle.
	WaitSpin WaitKind = iota
	// WaitBackoffSpin polls with truncated exponential backoff between
	// loads (the package backoff convention).
	WaitBackoffSpin
	// WaitMwait sleeps with Mwait until the word changes. Policies that
	// refuse Mwait respond with the unchanged value, so the enclosing
	// retry loop degrades to polling — the contract the paper's software
	// fallback relies on.
	WaitMwait
)

// String returns the canonical parameter spelling of the wait kind.
func (w WaitKind) String() string {
	switch w {
	case WaitSpin:
		return "spin"
	case WaitBackoffSpin:
		return "backoff"
	case WaitMwait:
		return "mwait"
	}
	return fmt.Sprintf("WaitKind(%d)", int(w))
}

// ParseWaitKind parses the canonical spelling back into a WaitKind.
func ParseWaitKind(s string) (WaitKind, error) {
	switch s {
	case "spin":
		return WaitSpin, nil
	case "backoff":
		return WaitBackoffSpin, nil
	case "mwait":
		return WaitMwait, nil
	}
	return 0, fmt.Errorf("locks: unknown wait kind %q (want spin, backoff or mwait)", s)
}

// WaitKinds lists every wait kind in canonical sweep order.
func WaitKinds() []WaitKind { return []WaitKind{WaitSpin, WaitBackoffSpin, WaitMwait} }

// EmitWaitChange emits: wait until the word at [addr] differs from cmp,
// leaving the observed value in rd. The three variants share one exit
// contract (rd != cmp) so callers are wait-kind agnostic. boCur/boCap
// drive the backoff for WaitBackoffSpin (clobbered; unused otherwise).
// rd must differ from cmp and addr; cmp and addr are preserved.
func EmitWaitChange(b *isa.Builder, prefix string, w WaitKind, rd, cmp, addr, boCur, boCap isa.Reg) {
	loop := prefix + "_wc_loop"
	done := prefix + "_wc_done"
	switch w {
	case WaitSpin:
		b.Label(loop)
		b.Lw(rd, addr, 0)
		b.Beq(rd, cmp, loop)
	case WaitBackoffSpin:
		b.Label(loop)
		b.Lw(rd, addr, 0)
		b.Bne(rd, cmp, done)
		EmitExpBackoff(b, prefix+"_wc", boCur, boCap)
		b.J(loop)
		b.Label(done)
		EmitBackoffReset(b, boCur, boCap)
	case WaitMwait:
		// A refused Mwait returns the still-unchanged value, so the loop
		// covers both refusal (degrade to polling) and spurious wake.
		b.Label(loop)
		b.MWait(rd, cmp, addr)
		b.Beq(rd, cmp, loop)
	default:
		panic(fmt.Sprintf("locks: EmitWaitChange(%v)", w))
	}
}

// EmitMCSRelease emits the MCS release with an LRwait/SCwait CAS on the
// tail. tmp0..tmp2 are clobbered.
func EmitMCSRelease(b *isa.Builder, prefix string, lockAddr, nodeAddr, tmp0, tmp1, tmp2 isa.Reg) {
	waitSucc := prefix + "_mcsr_waitsucc"
	waitLoop := prefix + "_mcsr_waitloop"
	yield := prefix + "_mcsr_yield"
	handover := prefix + "_mcsr_handover"
	done := prefix + "_mcsr_done"

	// Fast path: do we have a successor already?
	b.Lw(tmp0, nodeAddr, 4)
	b.Bnez(tmp0, handover)

	// No successor visible: try CAS(tail, node, 0) with LRwait/SCwait.
	b.LrWait(tmp0, lockAddr)
	b.Bne(tmp0, nodeAddr, yield)
	b.ScWait(tmp1, isa.Zero, lockAddr)
	b.Beqz(tmp1, done) // tail cleared: lock free
	// SCwait failed (an acquirer swapped the tail between our LRwait and
	// SCwait): a successor is about to link itself.
	b.J(waitSucc)

	// We are not the tail: yield the reservation queue (write back the
	// observed value) and wait for the successor.
	b.Label(yield)
	b.ScWait(tmp1, tmp0, lockAddr)
	b.Label(waitSucc)
	// Wait for node.next (nodeAddr+4) to become non-zero.
	b.Addi(tmp2, nodeAddr, 4)
	b.Label(waitLoop)
	b.MWait(tmp0, isa.Zero, tmp2)
	b.Beqz(tmp0, waitLoop)
	b.Label(handover)
	// Successor's locked flag = 0.
	b.Lw(tmp0, nodeAddr, 4)
	b.Sw(isa.Zero, tmp0, 0)
	b.Label(done)
}
