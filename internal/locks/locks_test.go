package locks

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/platform"
)

// The macro library is tested by running small lock-stress kernels on a
// real system: n cores each enter the critical section `iters` times and
// increment an unprotected shared counter inside it. Mutual exclusion
// holds iff the final counter equals n*iters.

const (
	lockAddr    = 0 // lock word(s) at 0 (and 4 for ticket's now-serving)
	counterAddr = 12
	mcsNodeBase = 64
)

// stressProgram wraps an acquire/release emitter pair into a test kernel.
func stressProgram(iters int, emitAcquire, emitRelease func(b *isa.Builder)) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.A0, lockAddr)
	b.Li(isa.A1, counterAddr)
	b.Li(isa.S4, 64) // backoff cap
	EmitBackoffReset(b, isa.S9, isa.S4)
	b.Li(isa.S5, int32(iters))
	// MCS node address (unused by the other locks).
	b.CoreID(isa.T0)
	b.Slli(isa.T0, isa.T0, 3)
	b.Li(isa.S6, mcsNodeBase)
	b.Add(isa.S6, isa.S6, isa.T0)

	b.Label("outer")
	emitAcquire(b)
	// Critical section: unprotected read-modify-write.
	b.Lw(isa.T0, isa.A1, 0)
	b.Addi(isa.T0, isa.T0, 1)
	b.Sw(isa.T0, isa.A1, 0)
	emitRelease(b)
	b.Mark()
	b.Addi(isa.S5, isa.S5, -1)
	b.Bnez(isa.S5, "outer")
	b.Halt()
	return b.MustBuild()
}

func runLockStress(t *testing.T, policy platform.PolicyKind, iters int,
	emitAcquire, emitRelease func(b *isa.Builder)) *platform.System {
	t.Helper()
	cfg := platform.SmallConfig(policy)
	sys := platform.New(cfg, platform.SameProgram(stressProgram(iters, emitAcquire, emitRelease)))
	if !sys.RunUntilHalted(20_000_000) {
		for i, c := range sys.Cores {
			if !c.Halted() {
				t.Logf("core %d at pc %d", i, c.PC())
			}
		}
		t.Fatal("lock stress did not finish (deadlock or livelock)")
	}
	n := cfg.Topo.NumCores()
	if got := sys.ReadWord(counterAddr); got != uint32(n*iters) {
		t.Errorf("counter = %d, want %d (mutual exclusion violated)", got, n*iters)
	}
	return sys
}

func TestTASAmoLock(t *testing.T) {
	runLockStress(t, platform.PolicyPlain, 10,
		func(b *isa.Builder) {
			EmitTASAcquireAmo(b, "x", isa.A0, isa.S9, isa.S4, isa.T1, isa.T2)
		},
		func(b *isa.Builder) { EmitRelease(b, isa.A0) })
}

func TestTASLRSCLock(t *testing.T) {
	runLockStress(t, platform.PolicyLRSCSingle, 10,
		func(b *isa.Builder) {
			EmitTASAcquireLRSC(b, "x", isa.A0, isa.S9, isa.S4, isa.T1, isa.T2)
		},
		func(b *isa.Builder) { EmitRelease(b, isa.A0) })
}

func TestTASLRSCWaitLock(t *testing.T) {
	runLockStress(t, platform.PolicyColibri, 10,
		func(b *isa.Builder) {
			EmitTASAcquireLRSCWait(b, "x", isa.A0, isa.S9, isa.S4, isa.T1, isa.T2)
		},
		func(b *isa.Builder) { EmitRelease(b, isa.A0) })
}

func TestTASLRSCWaitLockOnWaitQueue(t *testing.T) {
	runLockStress(t, platform.PolicyWaitQueue, 10,
		func(b *isa.Builder) {
			EmitTASAcquireLRSCWait(b, "x", isa.A0, isa.S9, isa.S4, isa.T1, isa.T2)
		},
		func(b *isa.Builder) { EmitRelease(b, isa.A0) })
}

func TestTicketLock(t *testing.T) {
	sys := runLockStress(t, platform.PolicyPlain, 10,
		func(b *isa.Builder) {
			EmitTicketAcquire(b, "x", isa.A0, isa.S9, isa.S4, isa.T1, isa.T2)
		},
		func(b *isa.Builder) { EmitTicketRelease(b, isa.A0, isa.T1, isa.T2) })
	// Ticket state is consistent: next == serving == total acquisitions.
	n := uint32(sys.Cfg.Topo.NumCores() * 10)
	if next := sys.ReadWord(lockAddr); next != n {
		t.Errorf("next-ticket = %d, want %d", next, n)
	}
	if serving := sys.ReadWord(lockAddr + 4); serving != n {
		t.Errorf("now-serving = %d, want %d", serving, n)
	}
}

func TestMCSMwaitLock(t *testing.T) {
	sys := runLockStress(t, platform.PolicyColibri, 10,
		func(b *isa.Builder) {
			EmitMCSAcquire(b, "x", isa.A0, isa.S6, isa.T1, isa.T2, isa.T4)
		},
		func(b *isa.Builder) {
			EmitMCSRelease(b, "xr", isa.A0, isa.S6, isa.T1, isa.T2, isa.T4)
		})
	// The MCS tail must be free at the end.
	if tail := sys.ReadWord(lockAddr); tail != 0 {
		t.Errorf("MCS tail = %#x after all releases, want 0", tail)
	}
	// Waiters must have slept (Mwait), not spun.
	if sys.Snapshot().SleepCycles == 0 {
		t.Error("MCS+Mwait lock recorded no sleep cycles")
	}
}

// TestTicketLockFairness: ticket locks grant strictly in ticket order, so
// per-core acquisition counts are exactly equal in a full run.
func TestTicketLockFairness(t *testing.T) {
	sys := runLockStress(t, platform.PolicyPlain, 8,
		func(b *isa.Builder) {
			EmitTicketAcquire(b, "x", isa.A0, isa.S9, isa.S4, isa.T1, isa.T2)
		},
		func(b *isa.Builder) { EmitTicketRelease(b, isa.A0, isa.T1, isa.T2) })
	act := sys.Snapshot()
	min, max := act.MinMaxOps()
	if min != 8 || max != 8 {
		t.Errorf("per-core acquisitions [%d,%d], want exactly 8", min, max)
	}
}

func TestBackoffMacros(t *testing.T) {
	// A standalone kernel exercising the backoff helpers: pause cycles
	// must follow the doubling-then-clamp sequence 9,18,36,64,64.
	b := isa.NewBuilder()
	b.Li(isa.S4, 64)
	EmitBackoffReset(b, isa.S9, isa.S4) // 64/4+1 = 17... see below
	for i := 0; i < 5; i++ {
		EmitExpBackoff(b, label("bo", i), isa.S9, isa.S4)
	}
	b.Halt()
	cfg := platform.SmallConfig(platform.PolicyPlain)
	prog := b.MustBuild()
	sys := platform.New(cfg, func(core int) *isa.Program {
		if core == 0 {
			return prog
		}
		h := isa.NewBuilder()
		h.Halt()
		return h.MustBuild()
	})
	if !sys.RunUntilHalted(10000) {
		t.Fatal("backoff kernel did not halt")
	}
	// Sequence: 17, 34, 64 (clamped from 68), 64, 64 = 243 pause cycles.
	if got := sys.Cores[0].Stats.PauseCycles; got != 243 {
		t.Errorf("pause cycles = %d, want 243", got)
	}
}

func label(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}
