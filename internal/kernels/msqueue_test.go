package kernels

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/platform"
)

func runMSQueue(t *testing.T, wait bool, policy platform.PolicyKind, iters int) *platform.System {
	t.Helper()
	cfg := platform.SmallConfig(policy)
	n := cfg.Topo.NumCores()
	l := platform.NewLayout(0)
	lay := NewMSLayout(l, n, 4)
	sys := platform.New(cfg, MSQueueProgram(wait, lay, 64, iters))
	InitMSQueue(sys, lay)
	if !sys.RunUntilHalted(20000000) {
		for i, c := range sys.Cores {
			if !c.Halted() {
				t.Logf("core %d at pc %d, qnode %s", i, c.PC(), sys.Qnodes[i].State())
			}
		}
		t.Fatalf("MS queue (wait=%v, %v) did not finish", wait, policy)
	}
	if err := CheckMSQueue(sys, lay, iters); err != nil {
		t.Errorf("MS queue (wait=%v, %v): %v", wait, policy, err)
	}
	a := sys.Snapshot()
	if a.TotalOps != uint64(2*n*iters) {
		t.Errorf("ops = %d, want %d", a.TotalOps, 2*n*iters)
	}
	return sys
}

func TestMSQueueLRSC(t *testing.T) {
	runMSQueue(t, false, platform.PolicyLRSCSingle, 10)
}

func TestMSQueueLRSCWaitColibri(t *testing.T) {
	runMSQueue(t, true, platform.PolicyColibri, 10)
}

func TestMSQueueLRSCWaitIdeal(t *testing.T) {
	runMSQueue(t, true, platform.PolicyWaitQueue, 10)
}

func TestMSQueueSingleCore(t *testing.T) {
	// One active core exercises the sequential paths (including helping
	// its own lagging tail).
	cfg := platform.SmallConfig(platform.PolicyColibri)
	l := platform.NewLayout(0)
	lay := NewMSLayout(l, cfg.Topo.NumCores(), 4)
	active := MSQueueProgram(true, lay, 64, 20)
	idle := haltProgram()
	sys := platform.New(cfg, func(core int) *isa.Program {
		if core == 0 {
			return active(0)
		}
		return idle
	})
	InitMSQueue(sys, lay)
	if !sys.RunUntilHalted(2000000) {
		t.Fatal("single-core MS queue did not finish")
	}
	if got := sys.ReadWord(lay.Results + 4); got != 20 {
		t.Errorf("dequeue count = %d, want 20", got)
	}
	// All dequeued values are the core's own tag.
	if got := sys.ReadWord(lay.Results); got != 20*enqValue(0) {
		t.Errorf("dequeue sum = %d, want %d", got, 20*enqValue(0))
	}
}

func TestMSLayoutDisjoint(t *testing.T) {
	l := platform.NewLayout(0)
	lay := NewMSLayout(l, 4, 3)
	// Node addresses are nonzero and distinct.
	seen := map[uint32]bool{}
	for i := 0; i < 1+4*3; i++ {
		a := lay.nodeAddr(i)
		if a == 0 && i > 0 {
			t.Fatal("node at address 0 (conflicts with null)")
		}
		if seen[a] {
			t.Fatalf("node %d address collision", i)
		}
		seen[a] = true
	}
}
