package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/locks"
	"repro/internal/platform"
)

// The concurrent-queue benchmark (Fig. 6). The queue is a fetch-and-add
// ring: enqueue claims a slot by atomically incrementing the tail index,
// dequeue by incrementing the head index; slots hand over values with a
// non-zero-means-full convention. The contended operation — the atomic
// increment of a shared index — runs on the generic RMW primitive under
// test (LR/SC vs LRwait/SCwait), or under a ticket lock built on AMOADD
// for the paper's "lock-based queue using atomic adds".
//
// Compared with the paper's linked Michael-Scott-style queue this keeps
// the same serialization structure (every operation is one contended RMW
// on head or tail plus a slot access) while being robust against ABA
// without node recycling; DESIGN.md documents the substitution.

// QueueVariant selects the index-update primitive.
type QueueVariant int

const (
	// QueueLRSC: fetch-and-add via LR/SC retry loops.
	QueueLRSC QueueVariant = iota
	// QueueLRSCWait: fetch-and-add via LRwait/SCwait.
	QueueLRSCWait
	// QueueLockTicket: a single AMOADD ticket lock protects the queue.
	QueueLockTicket
)

func (v QueueVariant) String() string {
	switch v {
	case QueueLRSC:
		return "lrsc"
	case QueueLRSCWait:
		return "lrscwait"
	case QueueLockTicket:
		return "amoadd-lock"
	}
	return fmt.Sprintf("queue(%d)", int(v))
}

// QueueLayout places the queue state.
type QueueLayout struct {
	Head, Tail uint32 // index words (adjacent words → different banks)
	Buf        uint32
	RingSize   int    // power of two
	Lock       uint32 // ticket lock (2 words)
	Results    uint32 // per-core [deqSum, deqCount]
	Prefill    int
	NCores     int
}

// NewQueueLayout allocates queue state for nCores cores with prefill
// elements; the ring is sized to make index collisions impossible
// (capacity >= 2*(prefill+nCores), rounded up to a power of two).
func NewQueueLayout(l *platform.Layout, nCores, prefill int) QueueLayout {
	ring := 1
	for ring < 2*(prefill+nCores) {
		ring <<= 1
	}
	lay := QueueLayout{RingSize: ring, Prefill: prefill, NCores: nCores}
	lay.Head = l.Words(1)
	lay.Tail = l.Words(1)
	lay.Lock = l.Words(locks.TicketWords)
	lay.Buf = l.Words(ring)
	lay.Results = l.Words(2 * nCores)
	return lay
}

// InitQueue prefills the ring and sets the indices.
func InitQueue(sys *platform.System, lay QueueLayout) {
	for i := 0; i < lay.RingSize; i++ {
		sys.WriteWord(lay.Buf+uint32(4*i), 0)
	}
	for i := 0; i < lay.Prefill; i++ {
		sys.WriteWord(lay.Buf+uint32(4*i), prefillValue(i))
	}
	sys.WriteWord(lay.Head, 0)
	sys.WriteWord(lay.Tail, uint32(lay.Prefill))
	sys.WriteWord(lay.Lock, 0)
	sys.WriteWord(lay.Lock+4, 0)
}

func prefillValue(i int) uint32 { return 0xA000_0000 | uint32(i+1) }

// enqValue is the tag core id enqueues (nonzero).
func enqValue(core int) uint32 { return uint32(core + 1) }

// QueueProgram builds the benchmark kernel: each core alternates
// enqueue(tag) and dequeue(), marking one benchmark op per queue access.
// iters <= 0 loops forever; otherwise the core performs iters
// enqueue+dequeue pairs, stores [deqSum, deqCount] into its result slot,
// and halts.
//
// Register plan:
//
//	s0 head addr  s1 tail addr  s2 buf base  s3 ring mask  s4 backoff cap
//	s5 iteration counter  s6 my tag  s7 deq checksum  s8 deq count
//	s9 backoff cur  t0..t4 scratch
func QueueProgram(v QueueVariant, lay QueueLayout, backoff int32, iters int) platform.ProgramFor {
	return func(core int) *isa.Program {
		b := isa.NewBuilder()
		b.Li(isa.S0, int32(lay.Head))
		b.Li(isa.S1, int32(lay.Tail))
		b.Li(isa.S2, int32(lay.Buf))
		b.Li(isa.S3, int32(lay.RingSize-1))
		b.Li(isa.S4, backoff)
		locks.EmitBackoffReset(b, isa.S9, isa.S4)
		b.Li(isa.S6, int32(enqValue(core)))
		b.Li(isa.S7, 0)
		b.Li(isa.S8, 0)
		if iters > 0 {
			b.Li(isa.S5, int32(iters))
		}

		b.Label("q_loop")
		switch v {
		case QueueLRSC, QueueLRSCWait:
			emitFAA(b, v, "q_enq", isa.S1) // t0 = old tail
			emitSlotAddr(b)
			// Wait until the slot is free (==0), then publish.
			b.Label("q_enq_wait")
			b.Lw(isa.T2, isa.T1, 0)
			b.Beqz(isa.T2, "q_enq_store")
			locks.EmitExpBackoff(b, "q_enq_w", isa.S9, isa.S4)
			b.J("q_enq_wait")
			b.Label("q_enq_store")
			b.Sw(isa.S6, isa.T1, 0)
			b.Mark()

			emitFAA(b, v, "q_deq", isa.S0) // t0 = old head
			emitSlotAddr(b)
			// Wait until the slot is full (!=0), then take.
			b.Label("q_deq_wait")
			b.Lw(isa.T2, isa.T1, 0)
			b.Bnez(isa.T2, "q_deq_take")
			locks.EmitExpBackoff(b, "q_deq_w", isa.S9, isa.S4)
			b.J("q_deq_wait")
			b.Label("q_deq_take")
			b.Sw(isa.Zero, isa.T1, 0)
			b.Add(isa.S7, isa.S7, isa.T2)
			b.Addi(isa.S8, isa.S8, 1)
			b.Mark()

		case QueueLockTicket:
			b.Li(isa.T4, int32(lay.Lock))
			locks.EmitTicketAcquire(b, "q_enq", isa.T4, isa.S9, isa.S4, isa.T1, isa.T2)
			b.Lw(isa.T0, isa.S1, 0) // tail index
			emitSlotAddr(b)
			b.Sw(isa.S6, isa.T1, 0)
			b.Addi(isa.T0, isa.T0, 1)
			b.Sw(isa.T0, isa.S1, 0)
			locks.EmitTicketRelease(b, isa.T4, isa.T1, isa.T2)
			b.Mark()

			b.Li(isa.T4, int32(lay.Lock))
			locks.EmitTicketAcquire(b, "q_deq", isa.T4, isa.S9, isa.S4, isa.T1, isa.T2)
			b.Lw(isa.T0, isa.S0, 0) // head index
			emitSlotAddr(b)
			b.Lw(isa.T2, isa.T1, 0)
			b.Sw(isa.Zero, isa.T1, 0)
			b.Addi(isa.T0, isa.T0, 1)
			b.Sw(isa.T0, isa.S0, 0)
			locks.EmitTicketRelease(b, isa.T4, isa.T1, isa.T3)
			b.Add(isa.S7, isa.S7, isa.T2)
			b.Addi(isa.S8, isa.S8, 1)
			b.Mark()

		default:
			panic(fmt.Sprintf("kernels: unknown queue variant %d", v))
		}

		if iters > 0 {
			b.Addi(isa.S5, isa.S5, -1)
			b.Bnez(isa.S5, "q_loop")
			// Store [deqSum, deqCount] to the result slot.
			b.Li(isa.T0, int32(lay.Results+uint32(8*core)))
			b.Sw(isa.S7, isa.T0, 0)
			b.Sw(isa.S8, isa.T0, 4)
			b.Halt()
		} else {
			b.J("q_loop")
		}
		return b.MustBuild()
	}
}

// emitFAA emits t0 = fetch-and-add(mem[idxAddr], 1) with the selected
// primitive and exponential backoff on failure (cur in s9, cap in s4).
func emitFAA(b *isa.Builder, v QueueVariant, prefix string, idxAddr isa.Reg) {
	retry := prefix + "_faa_retry"
	done := prefix + "_faa_done"
	b.Label(retry)
	if v == QueueLRSCWait {
		b.LrWait(isa.T0, idxAddr)
	} else {
		b.Lr(isa.T0, idxAddr)
	}
	b.Addi(isa.T1, isa.T0, 1)
	if v == QueueLRSCWait {
		b.ScWait(isa.T2, isa.T1, idxAddr)
	} else {
		b.Sc(isa.T2, isa.T1, idxAddr)
	}
	b.Beqz(isa.T2, done)
	locks.EmitExpBackoff(b, prefix+"_faa", isa.S9, isa.S4)
	b.J(retry)
	b.Label(done)
	locks.EmitBackoffReset(b, isa.S9, isa.S4)
}

// emitSlotAddr computes t1 = buf + (t0 & mask)*4.
func emitSlotAddr(b *isa.Builder) {
	b.And(isa.T1, isa.T0, isa.S3)
	b.Slli(isa.T1, isa.T1, 2)
	b.Add(isa.T1, isa.T1, isa.S2)
}

// CheckQueue verifies element conservation after a finite run: the values
// dequeued by the cores plus the values still in the ring must equal the
// prefill values plus everything enqueued; the final indices must differ
// by exactly the prefill count.
func CheckQueue(sys *platform.System, lay QueueLayout, iters int) error {
	head := sys.ReadWord(lay.Head)
	tail := sys.ReadWord(lay.Tail)
	if tail-head != uint32(lay.Prefill) {
		return fmt.Errorf("tail-head = %d, want %d", tail-head, lay.Prefill)
	}
	// The per-core checksum registers are 32 bits wide, so conservation
	// holds modulo 2^32.
	var wantSum uint32
	for i := 0; i < lay.Prefill; i++ {
		wantSum += prefillValue(i)
	}
	for c := 0; c < lay.NCores; c++ {
		wantSum += uint32(iters) * enqValue(c)
	}
	var gotSum uint32
	for c := 0; c < lay.NCores; c++ {
		gotSum += sys.ReadWord(lay.Results + uint32(8*c))
		if n := sys.ReadWord(lay.Results + uint32(8*c) + 4); n != uint32(iters) {
			return fmt.Errorf("core %d dequeued %d values, want %d", c, n, iters)
		}
	}
	for i := head; i != tail; i++ {
		v := sys.ReadWord(lay.Buf + 4*(i&uint32(lay.RingSize-1)))
		if v == 0 {
			return fmt.Errorf("ring slot %d empty inside live window", i)
		}
		gotSum += v
	}
	if gotSum != wantSum {
		return fmt.Errorf("value conservation broken: got %d, want %d", gotSum, wantSum)
	}
	return nil
}
