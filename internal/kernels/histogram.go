// Package kernels contains the assembly benchmark workloads of the
// paper's evaluation: the concurrent histogram (Figs. 3 and 4, Table II),
// the matrix-multiplication interference victim (Fig. 5), and the
// concurrent queue (Fig. 6).
//
// Each kernel is a program builder plus a memory layout; experiments pair
// them with a hardware policy (platform.Config) and measure throughput
// with platform.Measure.
package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/locks"
	"repro/internal/platform"
)

// HistVariant selects how the histogram updates its bins.
type HistVariant int

const (
	// HistAmoAdd: single AMOADD per update — the paper's roofline.
	HistAmoAdd HistVariant = iota
	// HistLRSC: LR/SC read-modify-write with retry + backoff.
	HistLRSC
	// HistLRSCWait: LRwait/SCwait read-modify-write (run on a WaitQueue
	// or Colibri policy).
	HistLRSCWait
	// HistLockLRSC: per-bin test-and-set spin lock built on LR/SC.
	HistLockLRSC
	// HistLockLRSCWait: per-bin test-and-set spin lock built on
	// LRwait/SCwait (the paper's "Colibri lock").
	HistLockLRSCWait
	// HistLockTicket: per-bin ticket lock built on AMOADD (the paper's
	// "Atomic Add lock").
	HistLockTicket
	// HistLockMCSMwait: per-bin MCS lock whose waiters sleep on Mwait
	// (the paper's "Mwait lock"; requires a Colibri/WaitQueue policy).
	HistLockMCSMwait
)

var histNames = map[HistVariant]string{
	HistAmoAdd:       "amoadd",
	HistLRSC:         "lrsc",
	HistLRSCWait:     "lrscwait",
	HistLockLRSC:     "lrsc-lock",
	HistLockLRSCWait: "lrscwait-lock",
	HistLockTicket:   "amoadd-lock",
	HistLockMCSMwait: "mwait-mcs-lock",
}

func (v HistVariant) String() string {
	if s, ok := histNames[v]; ok {
		return s
	}
	return fmt.Sprintf("hist(%d)", int(v))
}

// HistLayout places the histogram's data sections.
type HistLayout struct {
	NumBins int
	// Bins is the base of NumBins consecutive words. With word
	// interleaving, bins land in consecutive banks (so few bins
	// concentrate in one tile — the hot-spot the paper studies).
	Bins uint32
	// TASLocks: one word per bin (TAS variants).
	TASLocks uint32
	// TicketLocks: two words per bin (next / now-serving).
	TicketLocks uint32
	// MCSLocks: one tail word per bin.
	MCSLocks uint32
	// MCSNodes: two words per core.
	MCSNodes uint32
}

// NewHistLayout allocates the histogram sections from l.
func NewHistLayout(l *platform.Layout, numBins, nCores int) HistLayout {
	if numBins <= 0 {
		panic(fmt.Sprintf("kernels: numBins %d must be positive", numBins))
	}
	lay := HistLayout{NumBins: numBins}
	lay.Bins = l.Words(numBins)
	lay.TASLocks = l.Words(numBins)
	lay.TicketLocks = l.Words(2 * numBins)
	lay.MCSLocks = l.Words(numBins)
	lay.MCSNodes = l.Words(locks.MCSNodeWords * nCores)
	return lay
}

// Histogram register plan (callee-owned, no calls):
//
//	s0 bins base     s1 bin mask       s2 PRNG state   s3 loop counter
//	s4 backoff cap   s5 aux lock base  s6 MCS node     s7 backoff cur
//	t0..t4 scratch
const (
	rBins  = isa.S0
	rMask  = isa.S1
	rSeed  = isa.S2
	rCount = isa.S3
	rBoCap = isa.S4
	rLockB = isa.S5
	rNode  = isa.S6
	rBoCur = isa.S7
)

// HistogramProgram builds the histogram kernel. iters <= 0 builds an
// endless loop (for throughput windows); otherwise the core halts after
// iters updates. backoff is the maximum retry/spin backoff in cycles (the
// paper uses 128); failures back off exponentially up to it.
func HistogramProgram(v HistVariant, lay HistLayout, backoff int32, iters int) *isa.Program {
	b := isa.NewBuilder()
	b.Li(rBins, int32(lay.Bins))
	b.Li(rMask, int32(lay.NumBins-1))
	b.Li(rBoCap, backoff)
	locks.EmitBackoffReset(b, rBoCur, rBoCap)
	// Seed the per-core xorshift with a core-unique odd constant.
	b.CoreID(rSeed)
	b.Addi(rSeed, rSeed, 1)
	b.Li(isa.T0, 0x27d4eb2d) // odd multiplier
	b.Mul(rSeed, rSeed, isa.T0)
	if iters > 0 {
		b.Li(rCount, int32(iters))
	}
	switch v {
	case HistLockLRSC, HistLockLRSCWait:
		b.Li(rLockB, int32(lay.TASLocks))
	case HistLockTicket:
		b.Li(rLockB, int32(lay.TicketLocks))
	case HistLockMCSMwait:
		b.Li(rLockB, int32(lay.MCSLocks))
		b.CoreID(isa.T0)
		b.Slli(isa.T0, isa.T0, 3) // 2 words per node
		b.Li(rNode, int32(lay.MCSNodes))
		b.Add(rNode, rNode, isa.T0)
	}

	pow2 := lay.NumBins&(lay.NumBins-1) == 0
	b.Label("hist_loop")
	// xorshift32 PRNG.
	b.Slli(isa.T0, rSeed, 13)
	b.Xor(rSeed, rSeed, isa.T0)
	b.Srli(isa.T0, rSeed, 17)
	b.Xor(rSeed, rSeed, isa.T0)
	b.Slli(isa.T0, rSeed, 5)
	b.Xor(rSeed, rSeed, isa.T0)
	// Bin index in t0: and-mask for power-of-two bin counts, otherwise
	// multiply-shift ((seed>>16) * numBins) >> 16, which is uniform over
	// [0, numBins) without a divider.
	if pow2 {
		b.And(isa.T0, rSeed, rMask)
	} else {
		b.Srli(isa.T0, rSeed, 16)
		b.Li(isa.T1, int32(lay.NumBins))
		b.Mul(isa.T0, isa.T0, isa.T1)
		b.Srli(isa.T0, isa.T0, 16)
	}
	b.Slli(isa.T0, isa.T0, 2)
	b.Add(isa.T0, isa.T0, rBins)

	switch v {
	case HistAmoAdd:
		b.Li(isa.T1, 1)
		b.AmoAdd(isa.Zero, isa.T1, isa.T0)

	case HistLRSC:
		b.Label("upd_retry")
		b.Lr(isa.T1, isa.T0)
		b.Addi(isa.T1, isa.T1, 1)
		b.Sc(isa.T2, isa.T1, isa.T0)
		b.Beqz(isa.T2, "upd_done")
		locks.EmitExpBackoff(b, "upd", rBoCur, rBoCap)
		b.J("upd_retry")
		b.Label("upd_done")
		locks.EmitBackoffReset(b, rBoCur, rBoCap)

	case HistLRSCWait:
		b.Label("upd_retry")
		b.LrWait(isa.T1, isa.T0)
		b.Addi(isa.T1, isa.T1, 1)
		b.ScWait(isa.T2, isa.T1, isa.T0)
		b.Beqz(isa.T2, "upd_done")
		locks.EmitExpBackoff(b, "upd", rBoCur, rBoCap)
		b.J("upd_retry")
		b.Label("upd_done")
		locks.EmitBackoffReset(b, rBoCur, rBoCap)

	case HistLockLRSC, HistLockLRSCWait:
		// lock address in t3 (stride 1 word): same bin offset as t0.
		b.Sub(isa.T3, isa.T0, rBins)
		b.Add(isa.T3, isa.T3, rLockB)
		if v == HistLockLRSC {
			locks.EmitTASAcquireLRSC(b, "upd", isa.T3, rBoCur, rBoCap, isa.T1, isa.T2)
		} else {
			locks.EmitTASAcquireLRSCWait(b, "upd", isa.T3, rBoCur, rBoCap, isa.T1, isa.T2)
		}
		b.Lw(isa.T1, isa.T0, 0)
		b.Addi(isa.T1, isa.T1, 1)
		b.Sw(isa.T1, isa.T0, 0)
		locks.EmitRelease(b, isa.T3)

	case HistLockTicket:
		// lock address in t3 (stride 2 words): bin offset doubled.
		b.Sub(isa.T3, isa.T0, rBins)
		b.Slli(isa.T3, isa.T3, 1)
		b.Add(isa.T3, isa.T3, rLockB)
		locks.EmitTicketAcquire(b, "upd", isa.T3, rBoCur, rBoCap, isa.T1, isa.T2)
		b.Lw(isa.T1, isa.T0, 0)
		b.Addi(isa.T1, isa.T1, 1)
		b.Sw(isa.T1, isa.T0, 0)
		locks.EmitTicketRelease(b, isa.T3, isa.T1, isa.T2)

	case HistLockMCSMwait:
		b.Sub(isa.T3, isa.T0, rBins)
		b.Add(isa.T3, isa.T3, rLockB)
		locks.EmitMCSAcquire(b, "upd", isa.T3, rNode, isa.T1, isa.T2, isa.T4)
		b.Lw(isa.T1, isa.T0, 0)
		b.Addi(isa.T1, isa.T1, 1)
		b.Sw(isa.T1, isa.T0, 0)
		locks.EmitMCSRelease(b, "updr", isa.T3, rNode, isa.T1, isa.T2, isa.T4)

	default:
		panic(fmt.Sprintf("kernels: unknown histogram variant %d", v))
	}

	b.Mark()
	if iters > 0 {
		b.Addi(rCount, rCount, -1)
		b.Bnez(rCount, "hist_loop")
		b.Halt()
	} else {
		b.J("hist_loop")
	}
	return b.MustBuild()
}

// HistogramSum reads the bins and returns their total.
func HistogramSum(sys *platform.System, lay HistLayout) uint64 {
	var total uint64
	for i := 0; i < lay.NumBins; i++ {
		total += uint64(sys.ReadWord(lay.Bins + uint32(4*i)))
	}
	return total
}
