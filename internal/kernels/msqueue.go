package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/locks"
	"repro/internal/platform"
)

// Michael–Scott linked queue — the concurrent queue the paper benchmarks
// ("we implement an MCS [Michael–Scott] queue with LRSC and LRSCwait").
// Nodes live in shared memory; every core owns a small node pool kept as
// an in-memory stack (dequeuing frees the retired dummy into the
// dequeuer's pool, so pools stay balanced under the alternating
// enqueue/dequeue workload). The compare-and-swap at the heart of the
// algorithm is synthesized from LR/SC or from LRwait/SCwait; with LR/SC
// the reservation also gives ABA safety for the recycled nodes.

// haltProgram returns a program that halts immediately (idle cores).
func haltProgram() *isa.Program {
	b := isa.NewBuilder()
	b.Halt()
	return b.MustBuild()
}

// MSLayout places the Michael–Scott queue state.
type MSLayout struct {
	Head, Tail uint32 // pointers to nodes (byte addresses, never 0)
	Nodes      uint32 // node array: 2 words each [value, next]
	NodesPer   int    // pool size per core
	Pools      uint32 // per-core stack of free node addresses
	Results    uint32 // per-core [deqSum, deqCount]
	NCores     int
}

// msNodeWords is the node footprint (value, next).
const msNodeWords = 2

// NewMSLayout allocates queue state; each core owns nodesPer nodes, plus
// one shared dummy node.
func NewMSLayout(l *platform.Layout, nCores, nodesPer int) MSLayout {
	if nodesPer < 2 {
		nodesPer = 2
	}
	lay := MSLayout{NodesPer: nodesPer, NCores: nCores}
	lay.Head = l.Words(1)
	lay.Tail = l.Words(1)
	// Node 0 is the initial dummy; cores' nodes follow.
	lay.Nodes = l.Words(msNodeWords * (1 + nCores*nodesPer))
	lay.Pools = l.Words(nCores * nodesPer)
	lay.Results = l.Words(2 * nCores)
	return lay
}

func (lay MSLayout) nodeAddr(i int) uint32 {
	return lay.Nodes + uint32(4*msNodeWords*i)
}

// InitMSQueue builds the empty queue (head = tail = dummy) and fills the
// per-core pools.
func InitMSQueue(sys *platform.System, lay MSLayout) {
	dummy := lay.nodeAddr(0)
	sys.WriteWord(dummy, 0)   // value
	sys.WriteWord(dummy+4, 0) // next
	sys.WriteWord(lay.Head, dummy)
	sys.WriteWord(lay.Tail, dummy)
	for c := 0; c < lay.NCores; c++ {
		for s := 0; s < lay.NodesPer; s++ {
			n := lay.nodeAddr(1 + c*lay.NodesPer + s)
			sys.WriteWord(n, 0)
			sys.WriteWord(n+4, 0)
			sys.WriteWord(lay.Pools+uint32(4*(c*lay.NodesPer+s)), n)
		}
	}
}

// emitCAS emits a single compare-and-swap attempt on mem[addrReg]:
// expects oldReg, stores newReg; t6 = 0 on success, 1 on failure (the
// observed value may have changed, or the SC failed spuriously).
//
// Both flavours close the reservation on the comparison-miss path by
// writing the observed value back. For LRwait/SCwait this is the pairing
// constraint of Section III (the SCwait yields the distributed queue);
// for LR/SC it honours the "every LR is eventually followed by an SC"
// software contract that a blocking single-slot reservation unit needs —
// an abandoned LR would park the slot until the next write to the
// reserved address. The write-back is ABA-safe: if anyone modified the
// word in between, the reservation is gone and the SC fails without
// writing. Clobbers t5, t6.
func emitCAS(b *isa.Builder, wait bool, prefix string, addrReg, oldReg, newReg isa.Reg) {
	miss := prefix + "_cas_miss"
	done := prefix + "_cas_done"
	if wait {
		b.LrWait(isa.T5, addrReg)
	} else {
		b.Lr(isa.T5, addrReg)
	}
	b.Bne(isa.T5, oldReg, miss)
	if wait {
		b.ScWait(isa.T6, newReg, addrReg)
	} else {
		b.Sc(isa.T6, newReg, addrReg)
	}
	b.J(done)
	b.Label(miss)
	// Yield/close the reservation: write the value back unchanged.
	if wait {
		b.ScWait(isa.T6, isa.T5, addrReg)
	} else {
		b.Sc(isa.T6, isa.T5, addrReg)
	}
	b.Li(isa.T6, 1)
	b.Label(done)
}

// MSQueueProgram builds the Michael–Scott benchmark kernel: each core
// alternates enqueue(tag) and dequeue(), one MARK per queue access.
// iters <= 0 loops forever; otherwise the core stores [deqSum, deqCount]
// into its result slot and halts.
//
// The two flavours differ structurally, and the difference matters:
//
//   - wait=false uses the classic CAS-style algorithm on LR/SC (the
//     comparison value is read before the LR).
//   - wait=true uses LL/SC-style: the comparison uses the fresh value
//     returned by LRwait itself. Emulating CAS on top of LRwait/SCwait
//     would make every waiter sleep through the whole grant queue only to
//     fail a stale comparison and re-queue — measured to collapse at high
//     core counts. The polling-free primitives want LL/SC-shaped
//     algorithms; EXPERIMENTS.md quantifies this.
//
// Register plan:
//
//	s0 &Head  s1 &Tail  s2 pool base  s3 pool count  s4 backoff cap
//	s5 iteration counter  s6 my tag  s7 deq checksum  s8 deq count
//	s9 backoff cur  s10 node in hand  t0..t6 scratch
func MSQueueProgram(wait bool, lay MSLayout, backoff int32, iters int) platform.ProgramFor {
	return func(core int) *isa.Program {
		b := isa.NewBuilder()
		b.Li(isa.S0, int32(lay.Head))
		b.Li(isa.S1, int32(lay.Tail))
		b.Li(isa.S2, int32(lay.Pools+uint32(4*core*lay.NodesPer)))
		b.Li(isa.S3, int32(lay.NodesPer))
		b.Li(isa.S4, backoff)
		locks.EmitBackoffReset(b, isa.S9, isa.S4)
		b.Li(isa.S6, int32(enqValue(core)))
		b.Li(isa.S7, 0)
		b.Li(isa.S8, 0)
		if iters > 0 {
			b.Li(isa.S5, int32(iters))
		}

		b.Label("ms_loop")
		// Pop a node from the pool into s10; node = {tag, 0}.
		b.Addi(isa.S3, isa.S3, -1)
		b.Slli(isa.T0, isa.S3, 2)
		b.Add(isa.T0, isa.T0, isa.S2)
		b.Lw(isa.S10, isa.T0, 0)
		b.Sw(isa.S6, isa.S10, 0)
		b.Sw(isa.Zero, isa.S10, 4)
		if wait {
			emitMSEnqueueWait(b)
			b.Mark()
			emitMSDequeueWait(b)
		} else {
			emitMSEnqueueLRSC(b)
			b.Mark()
			emitMSDequeueLRSC(b)
		}
		// Retired head node (in t0) goes back to our pool; checksum in t3.
		b.Slli(isa.T4, isa.S3, 2)
		b.Add(isa.T4, isa.T4, isa.S2)
		b.Sw(isa.T0, isa.T4, 0)
		b.Addi(isa.S3, isa.S3, 1)
		b.Add(isa.S7, isa.S7, isa.T3)
		b.Addi(isa.S8, isa.S8, 1)
		b.Mark()

		if iters > 0 {
			b.Addi(isa.S5, isa.S5, -1)
			b.Bnez(isa.S5, "ms_loop")
			b.Li(isa.T0, int32(lay.Results+uint32(8*core)))
			b.Sw(isa.S7, isa.T0, 0)
			b.Sw(isa.S8, isa.T0, 4)
			b.Halt()
		} else {
			b.J("ms_loop")
		}
		return b.MustBuild()
	}
}

// emitMSEnqueueLRSC: CAS-style enqueue of node s10. The tail hint is
// revalidated while the LR reservation on tail.next is held: if the hint
// node was dequeued and recycled in between, QTail no longer points at it
// (a node is only freed after leaving both Head and Tail), and should it
// recycle after the check, the pool owner's write to its next field kills
// the reservation, so the SC cannot link into a dead node.
func emitMSEnqueueLRSC(b *isa.Builder) {
	b.Label("enq_retry")
	b.Lw(isa.T0, isa.S1, 0)   // t0 = tail hint
	b.Addi(isa.T2, isa.T0, 4) // &tail.next
	b.Lr(isa.T1, isa.T2)      // t1 = tail.next under reservation
	b.Lw(isa.T5, isa.S1, 0)   // revalidate the hint
	b.Bne(isa.T5, isa.T0, "enq_moved")
	b.Bnez(isa.T1, "enq_help")
	b.Sc(isa.T6, isa.S10, isa.T2) // link our node
	b.Bnez(isa.T6, "enq_fail")
	// Swing the tail (best effort; helpers fix it if this fails).
	emitCAS(b, false, "enq_swing", isa.S1, isa.T0, isa.S10)
	b.J("enq_done")
	b.Label("enq_moved")
	b.Sc(isa.T6, isa.T1, isa.T2) // close the reservation unchanged
	b.J("enq_retry")
	b.Label("enq_help")
	b.Sc(isa.T6, isa.T1, isa.T2) // close the reservation unchanged
	emitCAS(b, false, "enq_helpcas", isa.S1, isa.T0, isa.T1)
	b.J("enq_retry")
	b.Label("enq_fail")
	locks.EmitExpBackoff(b, "enq", isa.S9, isa.S4)
	b.J("enq_retry")
	b.Label("enq_done")
	locks.EmitBackoffReset(b, isa.S9, isa.S4)
}

// emitMSDequeueLRSC: classic CAS-style dequeue. On return, t0 holds the
// retired node and t3 the dequeued value.
func emitMSDequeueLRSC(b *isa.Builder) {
	b.Label("deq_retry")
	b.Lw(isa.T0, isa.S0, 0) // t0 = head
	b.Lw(isa.T1, isa.S1, 0) // t1 = tail
	b.Lw(isa.T2, isa.T0, 4) // t2 = head.next
	b.Bne(isa.T0, isa.T1, "deq_nonempty")
	b.Beqz(isa.T2, "deq_empty")
	emitCAS(b, false, "deq_help", isa.S1, isa.T1, isa.T2)
	b.J("deq_retry")
	b.Label("deq_empty")
	locks.EmitExpBackoff(b, "deq_e", isa.S9, isa.S4)
	b.J("deq_retry")
	b.Label("deq_nonempty")
	b.Lw(isa.T3, isa.T2, 0) // value = next.value
	emitCAS(b, false, "deq_cas", isa.S0, isa.T0, isa.T2)
	b.Bnez(isa.T6, "deq_fail")
	locks.EmitBackoffReset(b, isa.S9, isa.S4)
	b.J("deq_done")
	b.Label("deq_fail")
	locks.EmitExpBackoff(b, "deq_f", isa.S9, isa.S4)
	b.J("deq_retry")
	b.Label("deq_done")
}

// emitMSEnqueueWait: LL/SC-style enqueue of node s10 with LRwait/SCwait.
// The linearizing reservation is taken on tail.next and the comparison
// uses the value the LRwait returns; the tail hint is revalidated while
// the reservation is held (see emitMSEnqueueLRSC for why that closes the
// recycled-node race).
func emitMSEnqueueWait(b *isa.Builder) {
	b.Label("enq_retry")
	b.Lw(isa.T0, isa.S1, 0)   // t0 = tail hint
	b.Addi(isa.T2, isa.T0, 4) // &tail.next
	b.LrWait(isa.T1, isa.T2)  // fresh tail.next, serialized
	b.Lw(isa.T5, isa.S1, 0)   // revalidate the hint
	b.Bne(isa.T5, isa.T0, "enq_moved")
	b.Bnez(isa.T1, "enq_stale")
	b.ScWait(isa.T6, isa.S10, isa.T2) // link our node
	b.Bnez(isa.T6, "enq_retry")
	// Swing the tail, LL/SC-style (best effort).
	b.LrWait(isa.T5, isa.S1)
	b.Bne(isa.T5, isa.T0, "enq_swing_stale")
	b.ScWait(isa.T6, isa.S10, isa.S1)
	b.J("enq_done")
	b.Label("enq_swing_stale")
	b.ScWait(isa.T6, isa.T5, isa.S1) // yield unchanged
	b.J("enq_done")
	b.Label("enq_moved")
	b.ScWait(isa.T6, isa.T1, isa.T2) // yield unchanged
	b.J("enq_retry")
	b.Label("enq_stale")
	// Genuine tail lag: yield the next-pointer queue, help swing the
	// tail to the observed successor, retry.
	b.ScWait(isa.T6, isa.T1, isa.T2)
	b.LrWait(isa.T5, isa.S1)
	b.Bne(isa.T5, isa.T0, "enq_help_stale")
	b.ScWait(isa.T6, isa.T1, isa.S1)
	b.J("enq_retry")
	b.Label("enq_help_stale")
	b.ScWait(isa.T6, isa.T5, isa.S1)
	b.J("enq_retry")
	b.Label("enq_done")
}

// emitMSDequeueWait: LL/SC-style dequeue. The linearizing reservation is
// taken on Head itself; while holding the grant the core reads the fresh
// successor, so the SCwait only fails on a truly concurrent plain write
// (which this algorithm never issues). The classic head==tail check is
// kept: advancing head past a lagging tail would let an enqueuer chase a
// recycled node. Helping the tail happens after yielding the head grant —
// a core may hold only one outstanding LRwait. On return, t0 holds the
// retired node and t3 the value.
func emitMSDequeueWait(b *isa.Builder) {
	b.Label("deq_retry")
	b.LrWait(isa.T0, isa.S0) // t0 = fresh head, we are serialized now
	b.Lw(isa.T1, isa.S1, 0)  // t1 = tail (plain load while holding grant)
	b.Lw(isa.T2, isa.T0, 4)  // t2 = head.next
	b.Beq(isa.T0, isa.T1, "deq_lagged")
	// head != tail: next is non-null, dequeue is safe.
	b.Lw(isa.T3, isa.T2, 0) // value = next.value
	b.ScWait(isa.T6, isa.T2, isa.S0)
	b.Bnez(isa.T6, "deq_retry")
	b.J("deq_done")
	b.Label("deq_lagged")
	// Empty queue or lagging tail: yield the head grant unchanged first.
	b.ScWait(isa.T6, isa.T0, isa.S0)
	b.Beqz(isa.T2, "deq_empty")
	// Help swing the tail to the observed successor, then retry. Check
	// cheaply first: usually another core has already done it.
	b.Lw(isa.T5, isa.S1, 0)
	b.Bne(isa.T5, isa.T1, "deq_retry")
	b.LrWait(isa.T5, isa.S1)
	b.Bne(isa.T5, isa.T1, "deq_help_stale")
	b.ScWait(isa.T6, isa.T2, isa.S1)
	b.J("deq_retry")
	b.Label("deq_help_stale")
	b.ScWait(isa.T6, isa.T5, isa.S1)
	b.J("deq_retry")
	b.Label("deq_empty")
	locks.EmitExpBackoff(b, "deq_e", isa.S9, isa.S4)
	b.J("deq_retry")
	b.Label("deq_done")
	locks.EmitBackoffReset(b, isa.S9, isa.S4)
}

// CheckMSQueue verifies the queue after a finite run: the list must be
// intact (terminated, tail reachable, length == 1), values must be
// conserved modulo 2^32, and every node must be accounted for exactly
// once across the pools and the list.
func CheckMSQueue(sys *platform.System, lay MSLayout, iters int) error {
	// Walk the list from Head.
	head := sys.ReadWord(lay.Head)
	tail := sys.ReadWord(lay.Tail)
	if head == 0 || tail == 0 {
		return fmt.Errorf("null head/tail: %#x/%#x", head, tail)
	}
	seen := map[uint32]bool{}
	var inList []uint32
	var listSum uint32
	node := head
	for node != 0 {
		if seen[node] {
			return fmt.Errorf("cycle in queue at node %#x", node)
		}
		seen[node] = true
		inList = append(inList, node)
		if node != head {
			listSum += sys.ReadWord(node) // dummy's value is stale
		}
		node = sys.ReadWord(node + 4)
	}
	if !seen[tail] {
		return fmt.Errorf("tail %#x not reachable from head", tail)
	}
	// The workload enqueues and dequeues in pairs, so the final queue is
	// the lone dummy node.
	if len(inList) != 1 {
		return fmt.Errorf("final queue length = %d nodes, want 1 (dummy only)", len(inList)-0)
	}
	// Value conservation (mod 2^32): everything enqueued was dequeued.
	var wantSum, gotSum uint32
	for c := 0; c < lay.NCores; c++ {
		wantSum += uint32(iters) * enqValue(c)
		gotSum += sys.ReadWord(lay.Results + uint32(8*c))
		if n := sys.ReadWord(lay.Results + uint32(8*c) + 4); n != uint32(iters) {
			return fmt.Errorf("core %d dequeued %d, want %d", c, n, iters)
		}
	}
	gotSum += listSum
	if gotSum != wantSum {
		return fmt.Errorf("value conservation broken: got %d, want %d", gotSum, wantSum)
	}
	// Node conservation: pools + list cover all nodes exactly once.
	total := 1 + lay.NCores*lay.NodesPer
	counted := len(inList)
	pooled := map[uint32]bool{}
	// Pool counts live in core registers at halt; recover them by
	// scanning pool slots for valid node addresses is ambiguous, so use
	// the invariant total = list + pools and check address validity of
	// the list instead.
	for _, n := range inList {
		if (n-lay.Nodes)%uint32(4*msNodeWords) != 0 ||
			int(n-lay.Nodes)/(4*msNodeWords) >= total {
			return fmt.Errorf("list node %#x outside the node array", n)
		}
	}
	_ = pooled
	_ = counted
	return nil
}
