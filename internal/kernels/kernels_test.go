package kernels

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/platform"
)

// runHistogram executes a finite histogram workload and checks the
// atomicity invariant: sum of bins == cores × iterations.
func runHistogram(t *testing.T, v HistVariant, policy platform.PolicyKind, numBins, iters int, maxCycles int) *platform.System {
	t.Helper()
	cfg := platform.SmallConfig(policy)
	l := platform.NewLayout(0)
	lay := NewHistLayout(l, numBins, cfg.Topo.NumCores())
	prog := HistogramProgram(v, lay, 16, iters)
	sys := platform.New(cfg, platform.SameProgram(prog))
	if !sys.RunUntilHalted(maxCycles) {
		for i, c := range sys.Cores {
			if !c.Halted() {
				t.Logf("core %d at pc %d, qnode %s", i, c.PC(), sys.Qnodes[i].State())
			}
		}
		t.Fatalf("%v/%v: cores did not halt", v, policy)
	}
	n := cfg.Topo.NumCores()
	want := uint64(n * iters)
	if got := HistogramSum(sys, lay); got != want {
		t.Errorf("%v/%v: bins sum = %d, want %d (lost or duplicated updates)",
			v, policy, got, want)
	}
	a := sys.Snapshot()
	if a.TotalOps != want {
		t.Errorf("%v/%v: marked ops = %d, want %d", v, policy, a.TotalOps, want)
	}
	return sys
}

func TestHistogramAmoAdd(t *testing.T) {
	runHistogram(t, HistAmoAdd, platform.PolicyPlain, 4, 25, 300000)
}

func TestHistogramLRSCHighContention(t *testing.T) {
	sys := runHistogram(t, HistLRSC, platform.PolicyLRSCSingle, 1, 15, 3000000)
	a := sys.Snapshot()
	if a.SCFail == 0 {
		t.Error("single-bin LRSC histogram saw no SC failures")
	}
}

func TestHistogramLRSCLowContention(t *testing.T) {
	runHistogram(t, HistLRSC, platform.PolicyLRSCSingle, 64, 20, 3000000)
}

func TestHistogramLRSCWaitIdeal(t *testing.T) {
	sys := runHistogram(t, HistLRSCWait, platform.PolicyWaitQueue, 1, 15, 3000000)
	a := sys.Snapshot()
	if a.SCFail != 0 || a.WaitRefusals != 0 {
		t.Errorf("ideal queue: scFail=%d refusals=%d, want 0/0", a.SCFail, a.WaitRefusals)
	}
}

func TestHistogramLRSCWaitTinyQueue(t *testing.T) {
	// One reservation slot per bank: contention beyond it must degrade to
	// refusals + retries but never lose updates.
	cfg := platform.SmallConfig(platform.PolicyWaitQueue)
	cfg.PolicyParams = platform.PolicyParams{platform.ParamQueueCap: "1"}
	l := platform.NewLayout(0)
	lay := NewHistLayout(l, 1, cfg.Topo.NumCores())
	sys := platform.New(cfg, platform.SameProgram(HistogramProgram(HistLRSCWait, lay, 16, 10)))
	if !sys.RunUntilHalted(5000000) {
		t.Fatal("cores did not halt")
	}
	n := cfg.Topo.NumCores()
	if got := HistogramSum(sys, lay); got != uint64(n*10) {
		t.Errorf("bins sum = %d, want %d", got, n*10)
	}
	if sys.Snapshot().WaitRefusals == 0 {
		t.Error("q=1 under contention produced no refusals")
	}
}

func TestHistogramColibri(t *testing.T) {
	sys := runHistogram(t, HistLRSCWait, platform.PolicyColibri, 1, 15, 3000000)
	a := sys.Snapshot()
	if a.SCFail != 0 {
		t.Errorf("colibri histogram: %d SC failures without interference", a.SCFail)
	}
	if a.SleepCycles == 0 {
		t.Error("colibri waiters never slept")
	}
}

func TestHistogramColibriManyBins(t *testing.T) {
	runHistogram(t, HistLRSCWait, platform.PolicyColibri, 64, 20, 3000000)
}

func TestHistogramLockLRSC(t *testing.T) {
	runHistogram(t, HistLockLRSC, platform.PolicyLRSCSingle, 2, 10, 5000000)
}

func TestHistogramLockLRSCWait(t *testing.T) {
	runHistogram(t, HistLockLRSCWait, platform.PolicyColibri, 2, 10, 5000000)
}

func TestHistogramLockTicket(t *testing.T) {
	runHistogram(t, HistLockTicket, platform.PolicyLRSCSingle, 2, 10, 5000000)
}

func TestHistogramLockMCSMwait(t *testing.T) {
	sys := runHistogram(t, HistLockMCSMwait, platform.PolicyColibri, 2, 10, 5000000)
	if sys.Snapshot().SleepCycles == 0 {
		t.Error("MCS+Mwait waiters never slept")
	}
}

func TestHistogramEndlessMeasure(t *testing.T) {
	cfg := platform.SmallConfig(platform.PolicyColibri)
	l := platform.NewLayout(0)
	lay := NewHistLayout(l, 4, cfg.Topo.NumCores())
	sys := platform.New(cfg, platform.SameProgram(HistogramProgram(HistLRSCWait, lay, 128, 0)))
	act := sys.Measure(2000, 5000)
	if act.Throughput() <= 0 {
		t.Fatal("no throughput in endless mode")
	}
	// Memory total matches all marks ever made (warmup included).
	if HistogramSum(sys, lay) < act.TotalOps {
		t.Error("bins sum below measured ops")
	}
}

func TestMatmulCorrectness(t *testing.T) {
	cfg := platform.SmallConfig(platform.PolicyPlain)
	l := platform.NewLayout(0)
	lay := NewMatmulLayout(l, 12)
	workers := 4
	idle := func() *isa.Program {
		b := isa.NewBuilder()
		b.Halt()
		return b.MustBuild()
	}()
	sys := platform.New(cfg, func(core int) *isa.Program {
		if core < workers {
			return MatmulProgram(lay, core, workers, false)
		}
		return idle
	})
	InitMatmul(sys, lay)
	if !sys.RunUntilHalted(3000000) {
		t.Fatal("matmul did not finish")
	}
	if err := CheckMatmul(sys, lay); err != nil {
		t.Fatal(err)
	}
	a := sys.Snapshot()
	if a.TotalOps != uint64(lay.N*lay.N) {
		t.Errorf("marked elements = %d, want %d", a.TotalOps, lay.N*lay.N)
	}
}

func TestMatmulUnevenRows(t *testing.T) {
	// 5 rows across 3 workers: distribution must still cover everything.
	cfg := platform.SmallConfig(platform.PolicyPlain)
	l := platform.NewLayout(0)
	lay := NewMatmulLayout(l, 5)
	idle := func() *isa.Program { b := isa.NewBuilder(); b.Halt(); return b.MustBuild() }()
	sys := platform.New(cfg, func(core int) *isa.Program {
		if core < 3 {
			return MatmulProgram(lay, core, 3, false)
		}
		return idle
	})
	InitMatmul(sys, lay)
	if !sys.RunUntilHalted(2000000) {
		t.Fatal("matmul did not finish")
	}
	if err := CheckMatmul(sys, lay); err != nil {
		t.Fatal(err)
	}
}

func runQueue(t *testing.T, v QueueVariant, policy platform.PolicyKind, iters int) *platform.System {
	t.Helper()
	cfg := platform.SmallConfig(policy)
	n := cfg.Topo.NumCores()
	l := platform.NewLayout(0)
	lay := NewQueueLayout(l, n, 2*n)
	sys := platform.New(cfg, QueueProgram(v, lay, 16, iters))
	InitQueue(sys, lay)
	if !sys.RunUntilHalted(8000000) {
		for i, c := range sys.Cores {
			if !c.Halted() {
				t.Logf("core %d at pc %d", i, c.PC())
			}
		}
		t.Fatalf("%v: queue workers did not halt", v)
	}
	if err := CheckQueue(sys, lay, iters); err != nil {
		t.Errorf("%v: %v", v, err)
	}
	a := sys.Snapshot()
	if a.TotalOps != uint64(2*n*iters) {
		t.Errorf("%v: ops = %d, want %d", v, a.TotalOps, 2*n*iters)
	}
	return sys
}

func TestQueueLRSC(t *testing.T)     { runQueue(t, QueueLRSC, platform.PolicyLRSCSingle, 12) }
func TestQueueLRSCWait(t *testing.T) { runQueue(t, QueueLRSCWait, platform.PolicyColibri, 12) }
func TestQueueLockTicket(t *testing.T) {
	runQueue(t, QueueLockTicket, platform.PolicyLRSCSingle, 12)
}

func TestQueueLRSCWaitIdealPolicy(t *testing.T) {
	runQueue(t, QueueLRSCWait, platform.PolicyWaitQueue, 12)
}
