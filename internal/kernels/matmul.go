package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/platform"
)

// MatmulLayout places the three N×N int32 matrices. With word
// interleaving, any region of at least numBanks words touches every bank,
// so the workers' traffic exercises the whole fabric — which is what makes
// them sensitive to hot-spot tree saturation in the interference
// experiment (Fig. 5).
type MatmulLayout struct {
	N       int
	A, B, C uint32
}

// NewMatmulLayout allocates the matrices from l.
func NewMatmulLayout(l *platform.Layout, n int) MatmulLayout {
	if n <= 0 {
		panic(fmt.Sprintf("kernels: matmul size %d", n))
	}
	return MatmulLayout{
		N: n,
		A: l.Words(n * n),
		B: l.Words(n * n),
		C: l.Words(n * n),
	}
}

// InitMatmul fills A and B with small deterministic values and zeroes C.
func InitMatmul(sys *platform.System, lay MatmulLayout) {
	n := lay.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			off := uint32(4 * (i*n + j))
			sys.WriteWord(lay.A+off, uint32((i+2*j)%7))
			sys.WriteWord(lay.B+off, uint32((3*i+j)%5))
			sys.WriteWord(lay.C+off, 0)
		}
	}
}

// MatmulRef computes the reference product on the host.
func MatmulRef(lay MatmulLayout) [][]uint32 {
	n := lay.N
	a := func(i, j int) uint32 { return uint32((i + 2*j) % 7) }
	bv := func(i, j int) uint32 { return uint32((3*i + j) % 5) }
	c := make([][]uint32, n)
	for i := range c {
		c[i] = make([]uint32, n)
		for j := 0; j < n; j++ {
			var acc uint32
			for k := 0; k < n; k++ {
				acc += a(i, k) * bv(k, j)
			}
			c[i][j] = acc
		}
	}
	return c
}

// MatmulProgram builds the worker kernel. The worker computes rows
// rowOffset, rowOffset+rowStride, ... of C (a cyclic distribution across
// workers). One MARK per element. endless repeats the whole assignment
// forever; otherwise the core halts after one pass.
//
// Register plan:
//
//	a0 A  a1 B  a2 C  a3 N(bytes per row)  s0 i  s1 j  s2 k-counter
//	s3 acc  s4 ptrA  s5 ptrB  s6 rowStride(bytes)  s7 N(elems)
func MatmulProgram(lay MatmulLayout, rowOffset, rowStride int, endless bool) *isa.Program {
	if rowOffset < 0 || rowStride <= 0 {
		panic(fmt.Sprintf("kernels: matmul rows offset=%d stride=%d", rowOffset, rowStride))
	}
	n := lay.N
	b := isa.NewBuilder()
	b.Li(isa.A0, int32(lay.A))
	b.Li(isa.A1, int32(lay.B))
	b.Li(isa.A2, int32(lay.C))
	b.Li(isa.A3, int32(4*n)) // row size in bytes
	b.Li(isa.S6, int32(4*n*rowStride))
	b.Li(isa.S7, int32(n))

	b.Label("mm_restart")
	// i-loop over assigned rows: s0 = byte offset of row i in A/C.
	b.Li(isa.S0, int32(4*n*rowOffset))
	b.Label("mm_row")
	// j-loop: s1 = column index.
	b.Li(isa.S1, 0)
	b.Label("mm_col")
	// acc = 0; ptrA = A + rowOff; ptrB = B + j*4; k counts down from N.
	b.Li(isa.S3, 0)
	b.Add(isa.S4, isa.A0, isa.S0)
	b.Slli(isa.T0, isa.S1, 2)
	b.Add(isa.S5, isa.A1, isa.T0)
	b.Mv(isa.S2, isa.S7)
	b.Label("mm_k")
	b.Lw(isa.T1, isa.S4, 0)
	b.Lw(isa.T2, isa.S5, 0)
	b.Mul(isa.T1, isa.T1, isa.T2)
	b.Add(isa.S3, isa.S3, isa.T1)
	b.Addi(isa.S4, isa.S4, 4)
	b.Add(isa.S5, isa.S5, isa.A3)
	b.Addi(isa.S2, isa.S2, -1)
	b.Bnez(isa.S2, "mm_k")
	// C[i][j] = acc.
	b.Add(isa.T0, isa.A2, isa.S0)
	b.Slli(isa.T1, isa.S1, 2)
	b.Add(isa.T0, isa.T0, isa.T1)
	b.Sw(isa.S3, isa.T0, 0)
	b.Mark()
	// next column.
	b.Addi(isa.S1, isa.S1, 1)
	b.Blt(isa.S1, isa.S7, "mm_col")
	// next row: s0 += rowStride bytes; done when past N rows.
	b.Add(isa.S0, isa.S0, isa.S6)
	// bound: 4*n*n bytes.
	b.Li(isa.T0, int32(4*n*n))
	b.Blt(isa.S0, isa.T0, "mm_row")
	if endless {
		b.J("mm_restart")
	} else {
		b.Halt()
	}
	return b.MustBuild()
}

// CheckMatmul compares the simulated C against the host reference,
// returning the first mismatch.
func CheckMatmul(sys *platform.System, lay MatmulLayout) error {
	ref := MatmulRef(lay)
	n := lay.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := sys.ReadWord(lay.C + uint32(4*(i*n+j)))
			if got != ref[i][j] {
				return fmt.Errorf("C[%d][%d] = %d, want %d", i, j, got, ref[i][j])
			}
		}
	}
	return nil
}
