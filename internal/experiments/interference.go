package experiments

import (
	"strconv"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/platform"
)

// Fig. 5: matrix-multiplication workers sharing the machine with cores
// hammering histogram bins. The histogram bins occupy the first words of
// memory — consecutive banks of tile 0 — so retry/polling traffic funnels
// into one tile and, through head-of-line blocking in the bounded-FIFO
// fabric, saturates paths that the workers' matrix traffic also needs.
// Colibri's sleeping waiters inject (almost) nothing, leaving workers
// unaffected.

// InterferenceRatio is a poller:worker core split.
type InterferenceRatio struct {
	Pollers, Workers int
}

// PaperRatios returns the splits annotated in Fig. 5, scaled to nCores
// (for 256 cores: 128:128, 192:64, 248:8, 252:4).
func PaperRatios(nCores int) []InterferenceRatio {
	return []InterferenceRatio{
		{nCores / 2, nCores / 2},
		{nCores * 3 / 4, nCores / 4},
		{nCores - nCores/32, nCores / 32},
		{nCores - nCores/64, nCores / 64},
	}
}

// InterferencePoint is one Fig. 5 measurement.
type InterferencePoint struct {
	Bins int
	// Rel is worker throughput relative to an interference-free run.
	Rel float64
	// BaselineOps and LoadedOps are worker marks/cycle without and with
	// pollers.
	BaselineOps, LoadedOps float64
}

func haltedProgram() *isa.Program {
	b := isa.NewBuilder()
	b.Halt()
	return b.MustBuild()
}

// interferenceSystem builds a system where the first ratio.Pollers cores
// run the histogram spec (or halt, when loaded is false) and the last
// ratio.Workers cores run the endless matmul, under an explicit policy
// configuration.
func interferenceSystem(spec HistSpec, pol Policy, topo noc.Topology, ratio InterferenceRatio,
	bins, matN int, loaded bool) (*platform.System, []int) {
	nCores := topo.NumCores()
	if ratio.Pollers+ratio.Workers > nCores {
		panic("experiments: ratio exceeds core count")
	}
	cfg := pol.withKind(spec.Policy).Config(topo)
	backoff := pol.ResolveBackoff()
	l := platform.NewLayout(0)
	histLay := kernels.NewHistLayout(l, bins, nCores)
	matLay := kernels.NewMatmulLayout(l, matN)

	pollerProg := kernels.HistogramProgram(spec.Variant, histLay, backoff, 0)
	idle := haltedProgram()
	workerStart := nCores - ratio.Workers
	var workers []int
	progFor := func(core int) *isa.Program {
		if core >= workerStart {
			return kernels.MatmulProgram(matLay, core-workerStart, ratio.Workers, true)
		}
		if loaded && core < ratio.Pollers {
			return pollerProg
		}
		return idle
	}
	for c := workerStart; c < nCores; c++ {
		workers = append(workers, c)
	}
	sys := platform.New(cfg, progFor)
	kernels.InitMatmul(sys, matLay)
	return sys, workers
}

func workerThroughput(act platform.Activity, workers []int) float64 {
	var ops uint64
	for _, w := range workers {
		ops += act.OpsPerCore[w]
	}
	if act.Cycle == 0 {
		return 0
	}
	return float64(ops) / float64(act.Cycle)
}

// RunInterferencePoint measures worker slowdown for one (spec, ratio,
// bins) combination with the spec's baked-in policy parameters. matN is
// the matrix dimension (must be >= the worker count so every worker owns
// at least one row).
func RunInterferencePoint(spec HistSpec, topo noc.Topology, ratio InterferenceRatio,
	bins, matN, warmup, measure int) InterferencePoint {
	return RunInterferencePointPolicy(spec, spec.PolicyConfig(), topo, ratio,
		bins, matN, warmup, measure)
}

// RunInterferencePointPolicy measures one interference point under an
// explicit policy configuration, ignoring the spec's own policy fields.
func RunInterferencePointPolicy(spec HistSpec, pol Policy, topo noc.Topology,
	ratio InterferenceRatio, bins, matN, warmup, measure int) InterferencePoint {
	if matN < ratio.Workers {
		matN = ratio.Workers
	}
	base, workers := interferenceSystem(spec, pol, topo, ratio, bins, matN, false)
	baseline := workerThroughput(base.Measure(warmup, measure), workers)
	base.PublishObs(obs.Default())

	loadedSys, workers := interferenceSystem(spec, pol, topo, ratio, bins, matN, true)
	loadedTP := workerThroughput(loadedSys.Measure(warmup, measure), workers)
	loadedSys.PublishObs(obs.Default())

	rel := 0.0
	if baseline > 0 {
		rel = loadedTP / baseline
	}
	return InterferencePoint{Bins: bins, Rel: rel, BaselineOps: baseline, LoadedOps: loadedTP}
}

// Fig5Curve names one curve of Fig. 5: a histogram spec pinned to a
// poller:worker split.
type Fig5Curve struct {
	Name  string
	Spec  HistSpec
	Ratio InterferenceRatio
}

// Fig5Curves returns the figure's curve set for an nCores machine: the
// Colibri curve at the most extreme ratio plus LRSC at every ratio.
func Fig5Curves(nCores int) []Fig5Curve {
	ratios := PaperRatios(nCores)
	colibri := HistSpec{Name: "colibri", Variant: kernels.HistLRSCWait, Policy: platform.PolicyColibri}
	lrsc := HistSpec{Name: "lrsc", Variant: kernels.HistLRSC, Policy: platform.PolicyLRSCSingle}

	curves := []Fig5Curve{{ // Colibri at the harshest split
		Name: ratioName(colibri.Name, ratios[len(ratios)-1]),
		Spec: colibri, Ratio: ratios[len(ratios)-1],
	}}
	for _, r := range ratios {
		curves = append(curves, Fig5Curve{Name: ratioName(lrsc.Name, r), Spec: lrsc, Ratio: r})
	}
	return curves
}

func ratioName(base string, r InterferenceRatio) string {
	return base + " " + strconv.Itoa(r.Pollers) + ":" + strconv.Itoa(r.Workers)
}
