package experiments

import (
	"math"
	"testing"

	"repro/internal/area"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/platform"
)

// The experiment tests run reduced topologies and check the qualitative
// shape the paper reports; the paper-scale numbers come from the cmd
// tools and are recorded in EXPERIMENTS.md.

func TestFig3ShapeSmall(t *testing.T) {
	topo := noc.Small()
	specs := Fig3Specs(topo.NumCores())
	byName := map[string]HistPoint{}
	for _, spec := range specs {
		byName[spec.Name] = RunHistogramPoint(spec, topo, 1, 1000, 4000)
	}
	amo := byName["amoadd"]
	colibri := byName["colibri"]
	ideal := byName["lrscwait-ideal"]
	one := byName["lrscwait-1"]
	lrsc := byName["lrsc"]

	if amo.Throughput <= 0 || colibri.Throughput <= 0 || lrsc.Throughput <= 0 {
		t.Fatalf("zero throughput: amo=%v colibri=%v lrsc=%v",
			amo.Throughput, colibri.Throughput, lrsc.Throughput)
	}
	// AMO add is the roofline at full contention.
	if amo.Throughput < colibri.Throughput {
		t.Errorf("roofline violated: amoadd %.4f < colibri %.4f",
			amo.Throughput, colibri.Throughput)
	}
	// Colibri tracks the ideal queue closely (paper: near-ideal).
	if colibri.Throughput < 0.5*ideal.Throughput {
		t.Errorf("colibri %.4f far below ideal %.4f", colibri.Throughput, ideal.Throughput)
	}
	// A single-slot queue degenerates to polling under full contention:
	// it must refuse reservations and lose to the ideal queue.
	if one.Activity.WaitRefusals == 0 {
		t.Error("lrscwait-1 saw no refusals at full contention")
	}
	if one.Throughput > ideal.Throughput {
		t.Errorf("lrscwait-1 %.4f beats ideal %.4f", one.Throughput, ideal.Throughput)
	}
	// LRSC retries: SC failures must appear at full contention; the wait
	// queue has none.
	if lrsc.Activity.SCFail == 0 {
		t.Error("LRSC at bins=1 saw no SC failures")
	}
	if ideal.Activity.SCFail != 0 {
		t.Errorf("ideal queue saw %d SC failures", ideal.Activity.SCFail)
	}
	// Colibri outperforms LRSC under full contention.
	if colibri.Throughput <= lrsc.Throughput {
		t.Errorf("colibri %.4f not above lrsc %.4f at bins=1",
			colibri.Throughput, lrsc.Throughput)
	}
	// Colibri waiters sleep; LRSC pollers burn active/backoff cycles.
	if colibri.Activity.SleepCycles == 0 {
		t.Error("colibri recorded no sleep cycles")
	}
	if lrsc.Activity.PauseCycles == 0 {
		t.Error("lrsc recorded no backoff cycles")
	}
}

func TestFig3LowContentionConvergence(t *testing.T) {
	topo := noc.Small()
	bins := topo.NumBanks() // one bin per bank: minimal contention
	colibri := RunHistogramPoint(HistSpec{Name: "colibri", Variant: kernels.HistLRSCWait,
		Policy: platform.PolicyColibri}, topo, bins, 1000, 4000)
	lrsc := RunHistogramPoint(HistSpec{Name: "lrsc", Variant: kernels.HistLRSC,
		Policy: platform.PolicyLRSCSingle}, topo, bins, 1000, 4000)
	// At low contention the two converge (paper: Colibri +13%); allow a
	// generous band but require the same order of magnitude.
	if colibri.Throughput < 0.6*lrsc.Throughput {
		t.Errorf("low contention: colibri %.4f << lrsc %.4f",
			colibri.Throughput, lrsc.Throughput)
	}
}

func TestFig4LockShape(t *testing.T) {
	topo := noc.Small()
	byName := map[string]HistPoint{}
	for _, spec := range Fig4Specs() {
		byName[spec.Name] = RunHistogramPoint(spec, topo, 1, 1000, 4000)
	}
	colibri := byName["colibri"]
	for name, p := range byName {
		if p.Throughput <= 0 {
			t.Fatalf("%s made no progress", name)
		}
		// Paper: raw Colibri beats every lock at any contention.
		if name != "colibri" && p.Throughput > 1.3*colibri.Throughput {
			t.Errorf("%s (%.4f) clearly beats colibri (%.4f) at bins=1",
				name, p.Throughput, colibri.Throughput)
		}
	}
	// The Mwait MCS lock must actually sleep.
	if byName["mwait-lock"].Activity.SleepCycles == 0 {
		t.Error("mwait-lock recorded no sleep cycles")
	}
}

func TestFig5InterferenceShape(t *testing.T) {
	// Interference needs oversubscription of the hot tile, so this test
	// runs the quarter-scale MemPool (62 pollers : 2 workers).
	topo := noc.Medium()
	n := topo.NumCores()
	ratio := InterferenceRatio{Pollers: n - 2, Workers: 2}
	// Backoff < 0 disables the retry backoff: at 1/4 scale the poller
	// population is too small to saturate the hot tile through a
	// 128-cycle backoff (the full-scale run in cmd/interference keeps
	// the paper's 128).
	colibri := RunInterferencePoint(HistSpec{Name: "colibri", Backoff: -1,
		Variant: kernels.HistLRSCWait, Policy: platform.PolicyColibri},
		topo, ratio, 1, 16, 2000, 10000)
	lrsc := RunInterferencePoint(HistSpec{Name: "lrsc", Backoff: -1,
		Variant: kernels.HistLRSC, Policy: platform.PolicyLRSCSingle},
		topo, ratio, 1, 16, 2000, 10000)

	if colibri.BaselineOps <= 0 || lrsc.BaselineOps <= 0 {
		t.Fatalf("workers idle in baseline: colibri=%+v lrsc=%+v", colibri, lrsc)
	}
	// Colibri pollers sleep: negligible worker impact.
	if colibri.Rel < 0.85 {
		t.Errorf("colibri interference too strong: rel=%.3f", colibri.Rel)
	}
	// LRSC pollers retry: workers must be hurt, and hurt more than under
	// Colibri (the paper's central interference claim).
	if lrsc.Rel >= 0.95 {
		t.Errorf("lrsc pollers caused no measurable interference: rel=%.3f", lrsc.Rel)
	}
	if lrsc.Rel >= colibri.Rel {
		t.Errorf("lrsc rel %.3f not below colibri rel %.3f", lrsc.Rel, colibri.Rel)
	}
}

func TestFig6QueueShape(t *testing.T) {
	topo := noc.Small()
	n := topo.NumCores()
	var colibriTP, lrscTP float64
	for _, spec := range Fig6Specs() {
		p := RunQueuePoint(spec, topo, n, 2000, 6000)
		if p.Throughput <= 0 {
			t.Fatalf("%s: no queue throughput", spec.Name)
		}
		if p.MinPerCore > p.MaxPerCore {
			t.Fatalf("%s: fairness band inverted", spec.Name)
		}
		switch spec.Name {
		case "colibri":
			colibriTP = p.Throughput
		case "lrsc":
			lrscTP = p.Throughput
		}
	}
	if colibriTP <= lrscTP {
		t.Errorf("colibri queue %.4f not above lrsc %.4f at full contention",
			colibriTP, lrscTP)
	}
}

func TestFig6SingleCore(t *testing.T) {
	topo := noc.Small()
	for _, spec := range Fig6Specs() {
		p := RunQueuePoint(spec, topo, 1, 500, 3000)
		if p.Throughput <= 0 {
			t.Errorf("%s: single core made no progress", spec.Name)
		}
		if math.Abs(p.MinPerCore-p.MaxPerCore) > 1e-9 {
			t.Errorf("%s: single-core fairness band should be empty", spec.Name)
		}
	}
}

func TestTableIIOrdering(t *testing.T) {
	// The paper's ordering: AmoAdd < Colibri < LRSC <= AmoAdd lock,
	// measured per row from the bins=1 histogram activity counters (the
	// same formula the table2 sweep scenario assembles; the full-table
	// ordering incl. deltas is pinned in internal/sweep).
	params := energy.Default()
	byName := map[string]float64{}
	for _, spec := range TableIISpecs() {
		p := RunHistogramPoint(spec, noc.Small(), 1, 1000, 4000)
		pj := params.PerOpPJ(p.Activity)
		if pj <= 0 {
			t.Fatalf("%s: no energy measured", spec.Name)
		}
		byName[spec.Name] = pj
	}
	if !(byName["amoadd"] < byName["colibri"]) {
		t.Errorf("amoadd (%.1f pJ) not below colibri (%.1f pJ)",
			byName["amoadd"], byName["colibri"])
	}
	if !(byName["colibri"] < byName["lrsc"]) {
		t.Errorf("colibri (%.1f pJ) not below lrsc (%.1f pJ)",
			byName["colibri"], byName["lrsc"])
	}
	if !(byName["colibri"] < byName["amoadd-lock"]) {
		t.Errorf("colibri (%.1f pJ) not below amoadd-lock (%.1f pJ)",
			byName["colibri"], byName["amoadd-lock"])
	}
}

func TestTableIIPaperRef(t *testing.T) {
	if ref := TableIIPaperRef("lrsc"); ref.Backoff != 128 || ref.PJ != 884 {
		t.Errorf("lrsc ref = %+v", ref)
	}
	if ref := TableIIPaperRef("nonesuch"); ref != (TableIIRef{}) {
		t.Errorf("unknown name ref = %+v", ref)
	}
}

func TestTableIModelFit(t *testing.T) {
	rows := area.TableI(area.Default(), 256)
	for _, r := range rows {
		if r.PaperKGE == 0 {
			continue // extrapolation rows have no reference
		}
		err := math.Abs(r.AreaKGE-r.PaperKGE) / r.PaperKGE
		if err > 0.02 {
			t.Errorf("%s %s: model %.1f kGE vs paper %.1f kGE (%.1f%% off)",
				r.Design, r.Params, r.AreaKGE, r.PaperKGE, err*100)
		}
	}
	// The ideal queue extrapolation must show the infeasibility the paper
	// argues: several times the tile area.
	m := area.Default()
	if m.TileWithWaitQueue(256) < 2*m.Tile() {
		t.Error("ideal-queue area does not show quadratic blowup")
	}
}

func TestPolicyBackoffResolution(t *testing.T) {
	if got := (Policy{}).ResolveBackoff(); got != DefaultBackoff {
		t.Errorf("zero backoff resolved to %d, want default %d", got, DefaultBackoff)
	}
	if got := (Policy{Backoff: -1}).ResolveBackoff(); got != 0 {
		t.Errorf("negative backoff resolved to %d, want 0", got)
	}
	if got := (Policy{Backoff: 64}).ResolveBackoff(); got != 64 {
		t.Errorf("explicit backoff resolved to %d, want 64", got)
	}
	if LiteralBackoff(0) >= 0 {
		t.Error("literal 0 cycles not encoded as the no-backoff sentinel")
	}
	if LiteralBackoff(64) != 64 {
		t.Errorf("LiteralBackoff(64) = %d", LiteralBackoff(64))
	}
}

func TestPolicyConfigAssembly(t *testing.T) {
	topo := noc.Small()
	cfg := Policy{Kind: platform.PolicyWaitQueue, QueueCap: 3, ColibriQueues: 2}.Config(topo)
	if cfg.Policy != platform.PolicyWaitQueue ||
		cfg.PolicyParams[platform.ParamQueueCap] != "3" ||
		cfg.PolicyParams[platform.ParamColibriQ] != "2" ||
		cfg.Topo.NumCores() != topo.NumCores() {
		t.Errorf("assembled config = %+v", cfg)
	}
	// Defaulted parameter axes stay absent, so the platform resolves its
	// own defaults (and a defaulted Policy maps to nil parameters).
	if got := (Policy{Kind: platform.PolicyColibri}).Config(topo); got.PolicyParams != nil {
		t.Errorf("defaulted policy params = %+v, want nil", got.PolicyParams)
	}
	spec := HistSpec{Policy: platform.PolicyWaitQueue, QueueCap: 5, ColibriQueues: 6, Backoff: -1}
	want := Policy{Kind: platform.PolicyWaitQueue, QueueCap: 5, ColibriQueues: 6, Backoff: -1}
	if got := spec.PolicyConfig(); got != want {
		t.Errorf("HistSpec.PolicyConfig = %+v", got)
	}
	if got := (QueueSpec{Policy: platform.PolicyPlain}).PolicyConfig(); got != (Policy{Kind: platform.PolicyPlain}) {
		t.Errorf("QueueSpec.PolicyConfig = %+v (want all-defaults)", got)
	}
	// A queue spec's baked-in policy fields must thread through, exactly
	// like HistSpec's (they used to be silently dropped).
	qspec := QueueSpec{Policy: platform.PolicyColibri, QueueCap: 3, ColibriQueues: 2, Backoff: -1}
	qwant := Policy{Kind: platform.PolicyColibri, QueueCap: 3, ColibriQueues: 2, Backoff: -1}
	if got := qspec.PolicyConfig(); got != qwant {
		t.Errorf("QueueSpec.PolicyConfig = %+v (spec fields dropped)", got)
	}
}

// TestPolicyOverrideMatchesBakedSpec pins the override path to the
// baked-spec path: running the ideal-queue spec with an explicit
// QueueCap=1 policy must reproduce the lrscwait-1 spec exactly (the
// simulator sees the same platform.Config either way).
func TestPolicyOverrideMatchesBakedSpec(t *testing.T) {
	topo := noc.Small()
	specs := map[string]HistSpec{}
	for _, s := range Fig3Specs(topo.NumCores()) {
		specs[s.Name] = s
	}
	ideal, one := specs["lrscwait-ideal"], specs["lrscwait-1"]
	pol := ideal.PolicyConfig()
	pol.QueueCap = 1
	got := RunHistogramPointPolicy(ideal, pol, topo, 1, 500, 2000)
	want := RunHistogramPoint(one, topo, 1, 500, 2000)
	if got.Throughput != want.Throughput {
		t.Errorf("override run %v != baked-spec run %v", got.Throughput, want.Throughput)
	}
}

// TestRunnerPolicyParity checks the Policy-threaded runners degrade to
// the historical entry points when handed the spec's own baseline.
func TestRunnerPolicyParity(t *testing.T) {
	topo := noc.Small()
	hist := Fig3Specs(topo.NumCores())[0]
	hp := RunHistogramPoint(hist, topo, 2, 500, 2000)
	hpp := RunHistogramPointPolicy(hist, hist.PolicyConfig(), topo, 2, 500, 2000)
	if hp.Throughput != hpp.Throughput {
		t.Errorf("histogram: %v != %v", hp.Throughput, hpp.Throughput)
	}

	q := Fig6Specs()[0]
	qp := RunQueuePoint(q, topo, 4, 500, 2000)
	qpp := RunQueuePointPolicy(q, q.PolicyConfig(), topo, 4, 500, 2000)
	if qp != qpp {
		t.Errorf("queue: %+v != %+v", qp, qpp)
	}

	ratio := InterferenceRatio{Pollers: 14, Workers: 2}
	spec := HistSpec{Name: "lrsc", Variant: kernels.HistLRSC, Policy: platform.PolicyLRSCSingle}
	ip := RunInterferencePoint(spec, topo, ratio, 1, 16, 500, 2000)
	ipp := RunInterferencePointPolicy(spec, spec.PolicyConfig(), topo, ratio, 1, 16, 500, 2000)
	if ip != ipp {
		t.Errorf("interference: %+v != %+v", ip, ipp)
	}
}

func TestStandardBins(t *testing.T) {
	bins := StandardBins(noc.MemPool256())
	if len(bins) != 11 || bins[0] != 1 || bins[len(bins)-1] != 1024 {
		t.Errorf("MemPool bins = %v", bins)
	}
	small := StandardBins(noc.Small())
	if small[len(small)-1] > noc.Small().NumBanks() {
		t.Errorf("bins exceed bank count: %v", small)
	}
}
