package experiments

import (
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/platform"
)

// Fig. 6: concurrent-queue throughput and fairness as the number of
// participating cores grows.

// QueueSpec pairs a queue software variant with a hardware policy. MS
// selects the linked Michael–Scott queue (the paper's data structure)
// instead of the fetch-and-add ring; the Variant then only distinguishes
// the LRSC and LRSCwait CAS flavours.
type QueueSpec struct {
	Name    string
	Variant kernels.QueueVariant
	Policy  platform.PolicyKind
	MS      bool

	QueueCap      int // WaitQueue slots (0 = ideal)
	ColibriQueues int // head/tail pairs (0 = default 4)
	// Backoff in cycles: 0 selects the paper's default of 128; a
	// negative value selects no backoff.
	Backoff int32
}

// PolicyConfig returns the spec's baked-in policy configuration. The
// paper's Fig. 6 specs leave the parameters zero (all defaults:
// 128-cycle backoff, default Colibri queue count); the policy-grid
// sweeps override them per point.
func (s QueueSpec) PolicyConfig() Policy {
	return Policy{Kind: s.Policy, QueueCap: s.QueueCap,
		ColibriQueues: s.ColibriQueues, Backoff: s.Backoff}
}

// Fig6Specs returns the three curves of Fig. 6 on the fetch-and-add ring.
func Fig6Specs() []QueueSpec {
	return []QueueSpec{
		{Name: "colibri", Variant: kernels.QueueLRSCWait, Policy: platform.PolicyColibri},
		{Name: "amoadd-lock", Variant: kernels.QueueLockTicket, Policy: platform.PolicyLRSCSingle},
		{Name: "lrsc", Variant: kernels.QueueLRSC, Policy: platform.PolicyLRSCSingle},
	}
}

// Fig6MSSpecs returns the Fig. 6 curves on the linked Michael–Scott
// queue (no lock-based variant: the paper's lock queue uses atomic adds,
// which the ring version covers).
func Fig6MSSpecs() []QueueSpec {
	return []QueueSpec{
		{Name: "colibri-ms", Variant: kernels.QueueLRSCWait, Policy: platform.PolicyColibri, MS: true},
		{Name: "amoadd-lock", Variant: kernels.QueueLockTicket, Policy: platform.PolicyLRSCSingle},
		{Name: "lrsc-ms", Variant: kernels.QueueLRSC, Policy: platform.PolicyLRSCSingle, MS: true},
	}
}

// QueuePoint is one Fig. 6 measurement, with the fairness band (slowest /
// fastest active core, in ops per cycle) that the paper shades.
type QueuePoint struct {
	Cores      int
	Throughput float64
	MinPerCore float64
	MaxPerCore float64
}

// RunQueuePoint measures queue accesses/cycle with nActive cores
// working, under the spec's policy baseline.
func RunQueuePoint(spec QueueSpec, topo noc.Topology, nActive, warmup, measure int) QueuePoint {
	return RunQueuePointPolicy(spec, spec.PolicyConfig(), topo, nActive, warmup, measure)
}

// RunQueuePointPolicy measures one queue point under an explicit policy
// configuration (queue capacity, Colibri queue count, backoff cycles).
func RunQueuePointPolicy(spec QueueSpec, pol Policy, topo noc.Topology, nActive, warmup, measure int) QueuePoint {
	nCores := topo.NumCores()
	if nActive > nCores {
		nActive = nCores
	}
	cfg := pol.withKind(spec.Policy).Config(topo)
	backoff := pol.ResolveBackoff()
	l := platform.NewLayout(0)
	idle := func() *isa.Program {
		b := isa.NewBuilder()
		b.Halt()
		return b.MustBuild()
	}()
	var queueProg platform.ProgramFor
	var initQueue func(*platform.System)
	if spec.MS {
		lay := kernels.NewMSLayout(l, nCores, 4)
		queueProg = kernels.MSQueueProgram(spec.Variant == kernels.QueueLRSCWait,
			lay, backoff, 0)
		initQueue = func(sys *platform.System) { kernels.InitMSQueue(sys, lay) }
	} else {
		lay := kernels.NewQueueLayout(l, nCores, 2*nActive)
		queueProg = kernels.QueueProgram(spec.Variant, lay, backoff, 0)
		initQueue = func(sys *platform.System) { kernels.InitQueue(sys, lay) }
	}
	sys := platform.New(cfg, func(core int) *isa.Program {
		if core < nActive {
			return queueProg(core)
		}
		return idle
	})
	initQueue(sys)
	act := sys.Measure(warmup, measure)
	sys.PublishObs(obs.Default())

	p := QueuePoint{Cores: nActive, Throughput: act.Throughput()}
	min, max := act.OpsPerCore[0], act.OpsPerCore[0]
	for _, v := range act.OpsPerCore[:nActive] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if act.Cycle > 0 {
		p.MinPerCore = float64(min) / float64(act.Cycle)
		p.MaxPerCore = float64(max) / float64(act.Cycle)
	}
	return p
}

// Fig6Counts returns the swept active-core counts: powers of two up to
// the topology's core count.
func Fig6Counts(topo noc.Topology) []int {
	var counts []int
	for n := 1; n <= topo.NumCores(); n *= 2 {
		counts = append(counts, n)
	}
	return counts
}
