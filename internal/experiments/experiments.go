// Package experiments holds the measurement primitives behind the
// paper's evaluation (Section V): the per-figure curve specs (which
// software variant under which hardware policy), the explicit Policy
// configuration threaded down to the platform, and the single-point
// runners every curve is built from. Each runner is parameterized by
// topology so the same code runs the paper-scale 256-core sweeps and
// reduced configurations (unit tests, testing.B benchmarks).
//
// Orchestration — fanning points across a worker pool, policy grids,
// caching, emitters — lives in the internal/sweep engine, where each
// figure/table is a registered sweep.Scenario assembling these runners
// into curves; all results share the unified sweep.Series/sweep.Point
// measurement model.
package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/platform"
)

// DefaultBackoff is the paper's retry/spin backoff of 128 cycles.
const DefaultBackoff = 128

// Policy is the explicit hardware/software policy configuration of one
// simulation point: which registered platform policy runs, with which
// parameters, under which software backoff. Every runner threads a
// Policy down to platform.Config, so sweeps can override any of these
// per point instead of relying on the defaults baked into a spec.
type Policy struct {
	// Kind names the registered platform policy (see
	// platform.PolicyNames). Empty means "the spec's own policy": the
	// runners fill it from the spec before resolving.
	Kind          platform.PolicyKind
	QueueCap      int // WaitQueue slots (0 = ideal, one per core)
	ColibriQueues int // head/tail pairs per bank controller (0 = default 4)
	// Backoff in cycles: 0 selects the paper's default of 128; a
	// negative value selects no backoff (used to provoke saturation at
	// reduced scale).
	Backoff int32
}

// ResolveColibriQueues maps the policy's ColibriQueues field to the
// head/tail pair count the platform will actually instantiate.
func (p Policy) ResolveColibriQueues() int {
	if p.ColibriQueues <= 0 {
		return platform.DefaultColibriQueues
	}
	return p.ColibriQueues
}

// ResolveBackoff maps the policy's Backoff field to cycles.
func (p Policy) ResolveBackoff() int32 {
	switch {
	case p.Backoff < 0:
		return 0
	case p.Backoff == 0:
		return DefaultBackoff
	default:
		return p.Backoff
	}
}

// withKind fills an empty Kind from a spec's baked-in policy, so a
// caller-supplied Policy that only overrides parameters still runs the
// spec's hardware.
func (p Policy) withKind(kind platform.PolicyKind) Policy {
	if p.Kind == "" {
		p.Kind = kind
	}
	return p
}

// PolicyParams renders the parameter axes in the platform's key=value
// convention (only the non-default ones, so a defaulted Policy maps to
// nil parameters).
func (p Policy) PolicyParams() platform.PolicyParams {
	var params platform.PolicyParams
	set := func(key string, v int) {
		if params == nil {
			params = platform.PolicyParams{}
		}
		params[key] = strconv.Itoa(v)
	}
	if p.QueueCap != 0 {
		set(platform.ParamQueueCap, p.QueueCap)
	}
	if p.ColibriQueues != 0 {
		set(platform.ParamColibriQ, p.ColibriQueues)
	}
	return params
}

// Config assembles the platform configuration for this policy on topo.
func (p Policy) Config(topo noc.Topology) platform.Config {
	return platform.Config{
		Topo:         topo,
		Policy:       p.Kind,
		PolicyParams: p.PolicyParams(),
	}
}

// KeyFragment canonicalizes the effective policy for cache keys: the
// kind name plus every parameter axis fully resolved — backoff in
// literal cycles, Colibri queues as the count the platform instantiates
// — so an override that merely restates a default keys identically to
// the baked-in configuration (it is the same simulation), while
// distinct effective policies can never collapse onto one entry.
// QueueCap stays literal: 0 (ideal, one slot per core) is resolved by
// the platform against the topology, which cache-key prefixes already
// carry.
func (p Policy) KeyFragment() string {
	return fmt.Sprintf("p=%s|q%d|cq%d|bo%d",
		p.Kind, p.QueueCap, p.ResolveColibriQueues(), p.ResolveBackoff())
}

// LiteralBackoff encodes literal backoff cycles in the Policy
// convention, where zero means "default": 0 cycles becomes the negative
// no-backoff sentinel.
func LiteralBackoff(cycles int) int32 {
	if cycles <= 0 {
		return -1
	}
	return int32(cycles)
}

// HistSpec pairs a histogram software variant with a hardware policy —
// one curve of Fig. 3 or Fig. 4.
type HistSpec struct {
	Name          string
	Variant       kernels.HistVariant
	Policy        platform.PolicyKind
	QueueCap      int // WaitQueue slots (0 = ideal)
	ColibriQueues int // head/tail pairs (0 = default 4)
	// Backoff in cycles: 0 selects the paper's default of 128; a
	// negative value selects no backoff (used to provoke saturation at
	// reduced scale).
	Backoff int32
}

// PolicyConfig returns the spec's baked-in policy configuration.
// Runners that accept an explicit Policy use this as the no-override
// baseline.
func (s HistSpec) PolicyConfig() Policy {
	return Policy{Kind: s.Policy, QueueCap: s.QueueCap,
		ColibriQueues: s.ColibriQueues, Backoff: s.Backoff}
}

// Fig3Specs returns the curves of Fig. 3 for a system with nCores cores:
// the AMO roofline, LRSCwait ideal / half-capacity / single-slot, Colibri,
// and the LRSC baseline. The paper's "LRSCwait128" on 256 cores is the
// half-capacity point, so the spec scales as nCores/2.
func Fig3Specs(nCores int) []HistSpec {
	return []HistSpec{
		{Name: "amoadd", Variant: kernels.HistAmoAdd, Policy: platform.PolicyPlain},
		{Name: "lrscwait-ideal", Variant: kernels.HistLRSCWait, Policy: platform.PolicyWaitQueue},
		{Name: fmt.Sprintf("lrscwait-%d", nCores/2), Variant: kernels.HistLRSCWait,
			Policy: platform.PolicyWaitQueue, QueueCap: nCores / 2},
		{Name: "lrscwait-1", Variant: kernels.HistLRSCWait,
			Policy: platform.PolicyWaitQueue, QueueCap: 1},
		{Name: "colibri", Variant: kernels.HistLRSCWait, Policy: platform.PolicyColibri},
		{Name: "lrsc", Variant: kernels.HistLRSC, Policy: platform.PolicyLRSCSingle},
	}
}

// Fig4Specs returns the curves of Fig. 4: raw Colibri against the lock
// implementations (spin locks with 128-cycle backoff, plus the Mwait MCS
// lock) and raw LRSC.
func Fig4Specs() []HistSpec {
	return []HistSpec{
		{Name: "colibri", Variant: kernels.HistLRSCWait, Policy: platform.PolicyColibri},
		{Name: "colibri-lock", Variant: kernels.HistLockLRSCWait, Policy: platform.PolicyColibri},
		{Name: "mwait-lock", Variant: kernels.HistLockMCSMwait, Policy: platform.PolicyColibri},
		{Name: "lrsc", Variant: kernels.HistLRSC, Policy: platform.PolicyLRSCSingle},
		{Name: "lrsc-lock", Variant: kernels.HistLockLRSC, Policy: platform.PolicyLRSCSingle},
		{Name: "amoadd-lock", Variant: kernels.HistLockTicket, Policy: platform.PolicyLRSCSingle},
	}
}

// HistPoint is one measurement: updates/cycle at a contention level.
type HistPoint struct {
	Bins       int
	Throughput float64
	Activity   platform.Activity
}

// buildHistogram constructs a system running the endless histogram
// under an explicit policy configuration.
func buildHistogram(spec HistSpec, pol Policy, topo noc.Topology, bins int, iters int) (*platform.System, kernels.HistLayout) {
	cfg := pol.withKind(spec.Policy).Config(topo)
	l := platform.NewLayout(0)
	lay := kernels.NewHistLayout(l, bins, topo.NumCores())
	prog := kernels.HistogramProgram(spec.Variant, lay, pol.ResolveBackoff(), iters)
	sys := platform.New(cfg, platform.SameProgram(prog))
	return sys, lay
}

// RunHistogramPoint measures one (spec, bins) point with the spec's
// baked-in policy parameters.
func RunHistogramPoint(spec HistSpec, topo noc.Topology, bins, warmup, measure int) HistPoint {
	return RunHistogramPointPolicy(spec, spec.PolicyConfig(), topo, bins, warmup, measure)
}

// RunHistogramPointPolicy measures one (spec, bins) point under an
// explicit policy configuration, ignoring the spec's own policy fields
// (an empty pol.Kind falls back to the spec's hardware policy). The
// policy-grid sweeps use it to vary the policy and its
// QueueCap/ColibriQueues/backoff parameters per point.
func RunHistogramPointPolicy(spec HistSpec, pol Policy, topo noc.Topology, bins, warmup, measure int) HistPoint {
	sys, _ := buildHistogram(spec, pol, topo, bins, 0)
	act := sys.Measure(warmup, measure)
	sys.PublishObs(obs.Default())
	return HistPoint{Bins: bins, Throughput: act.Throughput(), Activity: act}
}

// TopoByName maps a scale name to a topology: "terapool" (1024 cores,
// the Bertuletti et al. scale-up), "mempool" (256 cores, the paper's
// platform), "medium" (64) or "small" (16). Unknown names return
// ok=false.
func TopoByName(name string) (noc.Topology, bool) {
	switch name {
	case "terapool", "1024":
		return noc.TeraPool1024(), true
	case "mempool", "256":
		return noc.MemPool256(), true
	case "medium", "64":
		return noc.Medium(), true
	case "small", "16":
		return noc.Small(), true
	}
	return noc.Topology{}, false
}

// StandardBins returns the paper's bin sweep 1..1024 clipped to the
// number of banks of the topology (bins live in distinct words).
func StandardBins(topo noc.Topology) []int {
	var bins []int
	for b := 1; b <= 1024 && b <= topo.NumBanks(); b *= 2 {
		bins = append(bins, b)
	}
	return bins
}
