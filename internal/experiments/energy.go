package experiments

import (
	"repro/internal/kernels"
	"repro/internal/platform"
)

// Table II: energy per atomic operation at the highest contention level
// (histogram with a single bin), plus average power at 600 MHz. The
// measurement itself is assembled by the table2 sweep scenario from
// RunHistogramPoint activity counters and the energy model; this file
// holds the row specs and the published reference values.

// TableIISpecs returns the four rows of Table II.
func TableIISpecs() []HistSpec {
	return []HistSpec{
		{Name: "amoadd", Variant: kernels.HistAmoAdd, Policy: platform.PolicyPlain},
		{Name: "colibri", Variant: kernels.HistLRSCWait, Policy: platform.PolicyColibri},
		{Name: "lrsc", Variant: kernels.HistLRSC, Policy: platform.PolicyLRSCSingle},
		{Name: "amoadd-lock", Variant: kernels.HistLockTicket, Policy: platform.PolicyLRSCSingle},
	}
}

// TableIIFreqMHz is the clock the paper reports average power at.
const TableIIFreqMHz = 600

// TableIIRef is one row's published reference values: the backoff the
// paper annotates and the reported energy per operation.
type TableIIRef struct {
	Backoff int
	PJ      float64
}

var tableIIPaper = map[string]TableIIRef{
	"amoadd":      {0, 29},
	"colibri":     {0, 124},
	"lrsc":        {128, 884},
	"amoadd-lock": {128, 1092},
}

// TableIIPaperRef returns the published Table II reference values for a
// spec name (the zero TableIIRef for rows the paper does not report).
func TableIIPaperRef(name string) TableIIRef {
	return tableIIPaper[name]
}
