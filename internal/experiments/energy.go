package experiments

import (
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/platform"
	"repro/internal/sweep/work"
)

// Table II: energy per atomic operation at the highest contention level
// (histogram with a single bin), plus average power at 600 MHz.

// EnergyRow is one Table II line.
type EnergyRow struct {
	Name     string
	Backoff  int
	PowerMW  float64
	PJPerOp  float64
	DeltaPct float64 // vs the Colibri row, as the paper reports
	PaperPJ  float64 // published value for EXPERIMENTS.md comparison
}

// TableIISpecs returns the four rows of Table II.
func TableIISpecs() []HistSpec {
	return []HistSpec{
		{Name: "amoadd", Variant: kernels.HistAmoAdd, Policy: platform.PolicyPlain},
		{Name: "colibri", Variant: kernels.HistLRSCWait, Policy: platform.PolicyColibri},
		{Name: "lrsc", Variant: kernels.HistLRSC, Policy: platform.PolicyLRSCSingle},
		{Name: "amoadd-lock", Variant: kernels.HistLockTicket, Policy: platform.PolicyLRSCSingle},
	}
}

// TableIIFreqMHz is the clock the paper reports average power at.
const TableIIFreqMHz = 600

var tableIIPaper = map[string]struct {
	backoff int
	pj      float64
}{
	"amoadd":      {0, 29},
	"colibri":     {0, 124},
	"lrsc":        {128, 884},
	"amoadd-lock": {128, 1092},
}

// TableIIRow measures one Table II line: the spec's histogram at bins=1
// plus the published reference values. DeltaPct is left zero — it is
// relative to the colibri row, so it can only be filled once all rows
// exist (TableIIDelta). Both the serial TableII and the sweep engine
// build their rows through here, so the formula lives in one place.
func TableIIRow(spec HistSpec, topo noc.Topology, params energy.Params, warmup, measure int) EnergyRow {
	p := RunHistogramPoint(spec, topo, 1, warmup, measure)
	ref := tableIIPaper[spec.Name]
	return EnergyRow{
		Name:    spec.Name,
		Backoff: ref.backoff,
		PowerMW: params.PowerMW(p.Activity, TableIIFreqMHz),
		PJPerOp: params.PerOpPJ(p.Activity),
		PaperPJ: ref.pj,
	}
}

// TableIIDelta fills each row's DeltaPct relative to the colibri row, as
// the paper reports.
func TableIIDelta(rows []EnergyRow) {
	var colibriPJ float64
	for _, r := range rows {
		if r.Name == "colibri" {
			colibriPJ = r.PJPerOp
		}
	}
	for i := range rows {
		if colibriPJ > 0 {
			rows[i].DeltaPct = (rows[i].PJPerOp/colibriPJ - 1) * 100
		}
	}
}

// TableII measures energy per operation for the four designs at bins=1,
// fanning the rows out across the sweep engine's worker pool.
func TableII(topo noc.Topology, params energy.Params, warmup, measure int) []EnergyRow {
	specs := TableIISpecs()
	rows := make([]EnergyRow, len(specs))
	work.Parallel().Map(len(specs), func(i int) {
		rows[i] = TableIIRow(specs[i], topo, params, warmup, measure)
	})
	TableIIDelta(rows)
	return rows
}
