package experiments

import (
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/platform"
)

// Table II: energy per atomic operation at the highest contention level
// (histogram with a single bin), plus average power at 600 MHz.

// EnergyRow is one Table II line.
type EnergyRow struct {
	Name     string
	Backoff  int
	PowerMW  float64
	PJPerOp  float64
	DeltaPct float64 // vs the Colibri row, as the paper reports
	PaperPJ  float64 // published value for EXPERIMENTS.md comparison
}

// TableIISpecs returns the four rows of Table II.
func TableIISpecs() []HistSpec {
	return []HistSpec{
		{Name: "amoadd", Variant: kernels.HistAmoAdd, Policy: platform.PolicyPlain},
		{Name: "colibri", Variant: kernels.HistLRSCWait, Policy: platform.PolicyColibri},
		{Name: "lrsc", Variant: kernels.HistLRSC, Policy: platform.PolicyLRSCSingle},
		{Name: "amoadd-lock", Variant: kernels.HistLockTicket, Policy: platform.PolicyLRSCSingle},
	}
}

var tableIIPaper = map[string]struct {
	backoff int
	pj      float64
}{
	"amoadd":      {0, 29},
	"colibri":     {0, 124},
	"lrsc":        {128, 884},
	"amoadd-lock": {128, 1092},
}

// TableII measures energy per operation for the four designs at bins=1.
func TableII(topo noc.Topology, params energy.Params, warmup, measure int) []EnergyRow {
	const freqMHz = 600
	rows := make([]EnergyRow, 0, 4)
	var colibriPJ float64
	for _, spec := range TableIISpecs() {
		p := RunHistogramPoint(spec, topo, 1, warmup, measure)
		ref := tableIIPaper[spec.Name]
		row := EnergyRow{
			Name:    spec.Name,
			Backoff: ref.backoff,
			PowerMW: params.PowerMW(p.Activity, freqMHz),
			PJPerOp: params.PerOpPJ(p.Activity),
			PaperPJ: ref.pj,
		}
		if spec.Name == "colibri" {
			colibriPJ = row.PJPerOp
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if colibriPJ > 0 {
			rows[i].DeltaPct = (rows[i].PJPerOp/colibriPJ - 1) * 100
		}
	}
	return rows
}
