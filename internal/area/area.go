// Package area models the silicon area of a MemPool tile with the
// different LRSCwait designs, reproducing the paper's Table I.
//
// The model is a component-count fit: a tile is 4 cores + 16 banks; each
// LRSCwait_q adapter costs a monitor plus q reservation slots per bank;
// Colibri costs a controller plus per-address head/tail register pairs per
// bank, plus one Qnode per core. The per-component constants are
// calibrated by least squares against the published kGE numbers (the fit
// is documented in DESIGN.md/EXPERIMENTS.md); the model then extrapolates,
// e.g. to the physically infeasible LRSCwait_ideal.
package area

// Model holds the calibrated per-component areas in kGE.
type Model struct {
	// TileBase is the unmodified mempool_tile area (paper: 691 kGE).
	TileBase float64
	// BanksPerTile and CoresPerTile describe the tile composition.
	BanksPerTile, CoresPerTile int

	// WaitQueue adapter: per-bank monitor logic plus per-slot storage.
	// One slot holds an address, a core ID (log2(n) bits) and state.
	QueueMonitor float64 // per bank
	QueueSlot    float64 // per bank per slot

	// Colibri: per-bank controller, per-bank-per-address head/tail
	// register pair, per-core queue node.
	ColibriController float64 // per bank
	ColibriHeadTail   float64 // per bank per tracked address
	Qnode             float64 // per core
}

// Default returns the model calibrated against Table I.
//
// Calibration: LRSCwait_1 adds 99 kGE per tile and LRSCwait_8 adds
// 174 kGE, giving slot = (174-99)/(16*7) ≈ 0.670 and monitor =
// 99/16 - slot ≈ 5.518. The four Colibri rows (+41, +59, +70, +111 kGE
// for 1/2/4/8 addresses) fit headTail ≈ 0.594 per bank per address with
// a fixed part of ≈ 34.6 kGE per tile, split between the controllers
// (16 banks) and the Qnodes (4 cores).
func Default() Model {
	return Model{
		TileBase:          691.0,
		BanksPerTile:      16,
		CoresPerTile:      4,
		QueueMonitor:      5.518,
		QueueSlot:         0.670,
		ColibriController: 1.50,
		ColibriHeadTail:   0.594,
		Qnode:             2.65,
	}
}

// Tile returns the baseline tile area in kGE.
func (m Model) Tile() float64 { return m.TileBase }

// TileWithWaitQueue returns the tile area with an LRSCwait_q adapter (q
// reservation slots) on every bank.
func (m Model) TileWithWaitQueue(q int) float64 {
	perBank := m.QueueMonitor + float64(q)*m.QueueSlot
	return m.TileBase + float64(m.BanksPerTile)*perBank
}

// TileWithColibri returns the tile area with a Colibri controller
// tracking the given number of addresses on every bank, plus the per-core
// Qnodes.
func (m Model) TileWithColibri(addresses int) float64 {
	perBank := m.ColibriController + float64(addresses)*m.ColibriHeadTail
	return m.TileBase + float64(m.BanksPerTile)*perBank +
		float64(m.CoresPerTile)*m.Qnode
}

// Overhead returns the percentage area increase of a over the base tile.
func (m Model) Overhead(a float64) float64 {
	return (a/m.TileBase - 1) * 100
}

// PolicyRows is an optional extension of platform policies
// (platform.Policy): a policy implementing it contributes its own rows
// to Table I, rendered by the table1 sweep scenario after the published
// configurations. m is the calibrated tile model (for the base area and
// Overhead) and nCores the evaluated core count. The built-in policies
// are already covered by TableI and do not implement it.
type PolicyRows interface {
	AreaRows(m Model, nCores int) []Row
}

// Row is one Table I line: the design, its parameters, the modelled area
// and the paper's published value (0 when the paper has no number —
// extrapolations).
type Row struct {
	Design    string
	Params    string
	AreaKGE   float64
	PaperKGE  float64
	OverheadP float64 // modelled overhead %
}

// TableI evaluates the model on every published configuration plus the
// ideal-queue extrapolation for nCores cores.
func TableI(m Model, nCores int) []Row {
	rows := []Row{
		{Design: "MemPool tile", Params: "none", AreaKGE: m.Tile(), PaperKGE: 691},
		{Design: "with LRSCwait1", Params: "1 queue slot", AreaKGE: m.TileWithWaitQueue(1), PaperKGE: 790},
		{Design: "with LRSCwait8", Params: "8 queue slots", AreaKGE: m.TileWithWaitQueue(8), PaperKGE: 865},
		{Design: "with LRSCwait_ideal", Params: "256 queue slots", AreaKGE: m.TileWithWaitQueue(nCores)},
		{Design: "with Colibri+Mwait", Params: "1 address", AreaKGE: m.TileWithColibri(1), PaperKGE: 732},
		{Design: "with Colibri+Mwait", Params: "2 addresses", AreaKGE: m.TileWithColibri(2), PaperKGE: 750},
		{Design: "with Colibri+Mwait", Params: "4 addresses", AreaKGE: m.TileWithColibri(4), PaperKGE: 761},
		{Design: "with Colibri+Mwait", Params: "8 addresses", AreaKGE: m.TileWithColibri(8), PaperKGE: 802},
	}
	for i := range rows {
		rows[i].OverheadP = m.Overhead(rows[i].AreaKGE)
	}
	return rows
}
