package area

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesTableI(t *testing.T) {
	cases := []struct {
		got, want float64
		name      string
	}{
		{Default().Tile(), 691, "tile"},
		{Default().TileWithWaitQueue(1), 790, "lrscwait1"},
		{Default().TileWithWaitQueue(8), 865, "lrscwait8"},
		{Default().TileWithColibri(1), 732, "colibri-1"},
		{Default().TileWithColibri(2), 750, "colibri-2"},
		{Default().TileWithColibri(4), 761, "colibri-4"},
		{Default().TileWithColibri(8), 802, "colibri-8"},
	}
	for _, c := range cases {
		if err := math.Abs(c.got-c.want) / c.want; err > 0.02 {
			t.Errorf("%s: %.1f kGE vs paper %.1f (%.1f%% off)", c.name, c.got, c.want, err*100)
		}
	}
}

func TestWaitQueueAreaScalesLinearlyInSlots(t *testing.T) {
	m := Default()
	d1 := m.TileWithWaitQueue(2) - m.TileWithWaitQueue(1)
	d2 := m.TileWithWaitQueue(9) - m.TileWithWaitQueue(8)
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("per-slot increments differ: %f vs %f", d1, d2)
	}
	if d1 <= 0 {
		t.Error("adding a slot does not add area")
	}
}

func TestIdealQueueQuadraticBlowup(t *testing.T) {
	// The ideal queue's slot count scales with cores, and banks scale with
	// cores too: total system overhead grows quadratically. At tile level
	// this shows as area ~ cores.
	m := Default()
	a64 := m.TileWithWaitQueue(64) - m.Tile()
	a256 := m.TileWithWaitQueue(256) - m.Tile()
	ratio := a256 / a64
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("overhead ratio 256/64 slots = %.2f, want ~4", ratio)
	}
}

func TestColibriBeatsIdealQueueEverywhere(t *testing.T) {
	prop := func(addr8 uint8) bool {
		addrs := int(addr8%8) + 1
		m := Default()
		// Colibri with any published address count stays under the
		// equivalent-guarantee ideal queue.
		return m.TileWithColibri(addrs) < m.TileWithWaitQueue(256)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadPercent(t *testing.T) {
	m := Default()
	if got := m.Overhead(m.Tile()); got != 0 {
		t.Errorf("overhead of the base tile = %f, want 0", got)
	}
	if got := m.Overhead(2 * m.Tile()); math.Abs(got-100) > 1e-9 {
		t.Errorf("overhead of 2x tile = %f, want 100", got)
	}
}

func TestTableIRows(t *testing.T) {
	rows := TableI(Default(), 256)
	if len(rows) != 8 {
		t.Fatalf("TableI rows = %d, want 8", len(rows))
	}
	withPaper := 0
	for _, r := range rows {
		if r.AreaKGE <= 0 {
			t.Errorf("%s %s: non-positive area", r.Design, r.Params)
		}
		if r.PaperKGE > 0 {
			withPaper++
		}
	}
	if withPaper != 7 {
		t.Errorf("rows with paper reference = %d, want 7", withPaper)
	}
}
