package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from many goroutines that
// race get-or-create with updates and snapshots. Run under -race it
// checks the lock discipline; the final totals check that no increment
// was lost and that pointers returned for one name were stable.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Shared name: all goroutines contend on creation and update.
				r.Counter("shared.hits").Inc()
				// Per-goroutine name: exercises the create path repeatedly.
				r.Counter(fmt.Sprintf("worker.%d.ops", g)).Add(2)
				r.Gauge("level").Set(int64(i))
				r.Timer("span").Observe(time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot() // snapshots race benignly with updates
				}
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("shared.hits").Value(); got != goroutines*perG {
		t.Errorf("shared.hits = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		name := fmt.Sprintf("worker.%d.ops", g)
		if got := r.Counter(name).Value(); got != 2*perG {
			t.Errorf("%s = %d, want %d", name, got, 2*perG)
		}
	}
	if got := r.Timer("span").Count(); got != goroutines*perG {
		t.Errorf("span count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Timer("span").Total(); got != goroutines*perG*time.Microsecond {
		t.Errorf("span total = %v, want %v", got, goroutines*perG*time.Microsecond)
	}
}

func TestCounterPointerStable(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c2 := r.Counter("a.b")
	if c1 != c2 {
		t.Fatal("Counter returned distinct pointers for one name")
	}
	if r.Gauge("a.b") != r.Gauge("a.b") {
		t.Fatal("Gauge returned distinct pointers for one name")
	}
	if r.Timer("a.b") != r.Timer("a.b") {
		t.Fatal("Timer returned distinct pointers for one name")
	}
}

func TestBadNamePanics(t *testing.T) {
	for _, name := range []string{"", "has space", "has\ttab", "has\nnewline"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Counter(%q) did not panic", name)
				}
			}()
			NewRegistry().Counter(name)
		}()
	}
}

// TestSnapshotDeterministic checks the core snapshot guarantees: zero
// values are elided (an untouched registry snapshots empty), and the
// JSON and String renderings of equal state are byte-identical across
// repeated snapshots and across separately-built registries.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Add(uint64(len(name)))
		}
		r.Gauge("g.level").Set(-3)
		r.Timer("t.span").Observe(5 * time.Millisecond)
		r.Counter("zero.counter") // created but never incremented: elided
		r.Gauge("zero.gauge")
		r.Timer("zero.timer")
		return r
	}
	names := []string{"b.two", "a.one", "c.three"}
	rev := []string{"c.three", "a.one", "b.two"}

	r1, r2 := build(names), build(rev)
	j1, err := r1.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("JSON differs across creation orders:\n%s\nvs\n%s", j1, j2)
	}
	if s1, s2 := r1.Snapshot().String(), r2.Snapshot().String(); s1 != s2 {
		t.Errorf("String differs across creation orders:\n%s\nvs\n%s", s1, s2)
	}
	if !bytes.Equal(j1, mustJSON(t, r1.Snapshot())) {
		t.Error("repeated snapshots of unchanged registry differ")
	}

	for _, zero := range []string{"zero.counter", "zero.gauge", "zero.timer"} {
		if strings.Contains(string(j1), zero) {
			t.Errorf("zero-valued metric %s not elided from snapshot", zero)
		}
	}
	if s := NewRegistry().Snapshot(); s.Counters != nil || s.Gauges != nil || s.Timers != nil {
		t.Errorf("empty registry snapshot not empty: %+v", s)
	}

	// The JSON round-trips.
	var back Snapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counter("a.one") != uint64(len("a.one")) {
		t.Errorf("round-tripped counter a.one = %d", back.Counter("a.one"))
	}
}

func mustJSON(t *testing.T, s Snapshot) []byte {
	t.Helper()
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDiff pins the diff semantics: counters and timers subtract with
// zero deltas elided; gauges (levels, not rates) carry the b-side value.
func TestDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.moves").Add(10)
	r.Counter("c.stays").Add(7)
	r.Gauge("g.level").Set(1)
	r.Timer("t.span").Observe(time.Millisecond)
	before := r.Snapshot()

	r.Counter("c.moves").Add(5)
	r.Counter("c.new").Add(3)
	r.Gauge("g.level").Set(42)
	r.Timer("t.span").Observe(2 * time.Millisecond)
	after := r.Snapshot()

	d := Diff(before, after)
	if got := d.Counter("c.moves"); got != 5 {
		t.Errorf("c.moves delta = %d, want 5", got)
	}
	if got := d.Counter("c.new"); got != 3 {
		t.Errorf("c.new delta = %d, want 3", got)
	}
	if _, ok := d.Counters["c.stays"]; ok {
		t.Error("unchanged counter c.stays not elided from diff")
	}
	if got := d.Gauges["g.level"]; got != 42 {
		t.Errorf("g.level = %d, want b-side 42", got)
	}
	tv, ok := d.Timers["t.span"]
	if !ok || tv.Count != 1 || tv.TotalNs != int64(2*time.Millisecond) {
		t.Errorf("t.span delta = %+v, want count=1 totalNs=%d", tv, int64(2*time.Millisecond))
	}

	// Identical snapshots diff to empty (gauges excepted by design —
	// an unchanged non-zero gauge still reports its level).
	d2 := Diff(after, after)
	if len(d2.Counters) != 0 || len(d2.Timers) != 0 {
		t.Errorf("self-diff has counter/timer residue: %+v", d2)
	}
}

func TestDefaultIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() returned distinct registries")
	}
	c := Default().Counter("obs.test.selfcheck")
	c.Inc()
	if Default().Counter("obs.test.selfcheck").Value() == 0 {
		t.Fatal("default registry did not retain counter")
	}
}
