// Package obs is the dependency-free observability core of the
// simulator and the sweep engine: a process-wide registry of named
// counters, gauges and timers with atomic hot-path updates, plus a
// deterministic snapshot/diff API that run manifests, the -obs flags
// and the trace exporter report through.
//
// Design rules:
//
//   - Updates are lock-free atomics. Hot paths hold a *Counter (one
//     registry lookup at construction, or none at all: the simulation
//     kernel batches its per-cycle counts in plain per-System fields
//     and publishes totals here on the cold path, see
//     platform.System.PublishObs), so instrumentation never contends
//     on the registry map.
//   - Metrics are cumulative. Per-run values are taken as
//     Diff(before, after) of two snapshots, which is what the sweep
//     runner records in RunStats.Metrics.
//   - Snapshots are deterministic: map-keyed, zero values elided, and
//     the JSON/String renderings sort names, so two identical runs
//     serialize byte-identically (timers carry wall time and are the
//     only inherently run-dependent values).
//
// Naming convention: dotted lowercase paths, subsystem-first —
// "kernel.ff.cycles_saved", "sweep.cache.hits",
// "kernel.policy.<name>.grants". Custom scenarios and policies are
// first-class: register metrics under your own prefix via
// Default().Counter("mypkg.thing") and they flow through every
// manifest and -obs dump like the built-ins (see the lrscwait facade's
// Obs* surface).
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a level that moves both ways (queue depths, utilization
// percentages, worker counts).
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates duration observations: a count and a running
// total, enough for rates and means without histogram buckets.
type Timer struct {
	count atomic.Uint64
	total atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.total.Add(int64(d))
}

// Count returns the number of observations.
func (t *Timer) Count() uint64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.total.Load()) }

// TimerValue is a Timer's state in a Snapshot.
type TimerValue struct {
	Count   uint64 `json:"count"`
	TotalNs int64  `json:"totalNs"`
}

// Snapshot is a point-in-time copy of a registry's metrics. Zero
// values are elided, so a snapshot taken before any activity is empty
// and diffs stay compact. Maps JSON-encode with sorted keys, making
// the encoding deterministic.
type Snapshot struct {
	Counters map[string]uint64     `json:"counters,omitempty"`
	Gauges   map[string]int64      `json:"gauges,omitempty"`
	Timers   map[string]TimerValue `json:"timers,omitempty"`
}

// Counter returns the snapshotted value of a counter (zero when
// absent, matching the elision of zero values).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// JSON renders the snapshot as indented, deterministic JSON.
func (s Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// String renders the snapshot as sorted "name value" lines (the -obs
// dump format): counters and gauges one per line, timers as
// "name count=N total=D".
func (s Snapshot) String() string {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Timers {
		lines = append(lines, fmt.Sprintf("%s count=%d total=%s",
			name, v.Count, time.Duration(v.TotalNs)))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// Diff returns the activity between two snapshots of the same
// registry: counters and timers subtract (entries whose delta is zero
// are elided), while gauges — levels, not rates — carry b's values.
// It is how a run-scoped metric set is cut out of the process-wide
// cumulative registry.
func Diff(a, b Snapshot) Snapshot {
	var d Snapshot
	for name, vb := range b.Counters {
		if delta := vb - a.Counters[name]; delta != 0 {
			if d.Counters == nil {
				d.Counters = map[string]uint64{}
			}
			d.Counters[name] = delta
		}
	}
	for name, vb := range b.Gauges {
		if d.Gauges == nil {
			d.Gauges = map[string]int64{}
		}
		d.Gauges[name] = vb
	}
	for name, vb := range b.Timers {
		va := a.Timers[name]
		if vb.Count == va.Count && vb.TotalNs == va.TotalNs {
			continue
		}
		if d.Timers == nil {
			d.Timers = map[string]TimerValue{}
		}
		d.Timers[name] = TimerValue{Count: vb.Count - va.Count, TotalNs: vb.TotalNs - va.TotalNs}
	}
	return d
}

// Registry holds named metrics. The zero value is not usable; create
// with NewRegistry or use the process-wide Default.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry (tests and embedded uses;
// the tools all report through Default).
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
	}
}

// def is the process-wide registry every layer reports into.
var def = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return def }

// Counter returns the named counter, creating it on first use. The
// returned pointer is stable for the registry's lifetime — hot paths
// look it up once and hold it.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[name]; ok {
		return t
	}
	t = &Timer{}
	r.timers[name] = t
	return t
}

// checkName rejects names that would corrupt the dump formats. A panic
// (not an error) because a bad metric name is a programming mistake at
// a registration site, never input-dependent.
func checkName(name string) {
	if name == "" || strings.ContainsAny(name, " \t\n") {
		panic(fmt.Sprintf("obs: bad metric name %q (want non-empty, no whitespace)", name))
	}
}

// Snapshot copies the registry's current values. Concurrent updates
// race benignly: each metric is read atomically, and a snapshot is a
// consistent lower bound for monotonic counters.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			if s.Counters == nil {
				s.Counters = map[string]uint64{}
			}
			s.Counters[name] = v
		}
	}
	for name, g := range r.gauges {
		if v := g.Value(); v != 0 {
			if s.Gauges == nil {
				s.Gauges = map[string]int64{}
			}
			s.Gauges[name] = v
		}
	}
	for name, t := range r.timers {
		if c, tot := t.Count(), t.Total(); c != 0 || tot != 0 {
			if s.Timers == nil {
				s.Timers = map[string]TimerValue{}
			}
			s.Timers[name] = TimerValue{Count: c, TotalNs: int64(tot)}
		}
	}
	return s
}
