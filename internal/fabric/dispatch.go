package fabric

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// Dispatcher defaults. Lease TTL is generous because a single TeraPool
// point can simulate for minutes; a lost worker costs one TTL before its
// points requeue (results are content-addressed, so the duplicate
// compute a requeue can cause is benign — identical value, same key).
const (
	defaultLeaseTTL  = 5 * time.Minute
	defaultLeaseMax  = 8
	maxLeasePoints   = 64
	defaultLeaseWait = 30 * time.Second
	maxLeaseWait     = 120 * time.Second
	// workerTTL is how long after its last contact a worker still
	// counts as present for the should-we-dispatch decision.
	workerTTL = 15 * time.Second
)

// task is one dispatchable point: an index into its job's deterministic
// expansion plus the coordinator's cache key for the result.
type task struct {
	job *dispJob
	idx int
	key string
}

// dispJob tracks one job's outstanding distributed points.
type dispJob struct {
	id      string
	job     sweep.Job
	pending int           // tasks not yet done
	doneIdx map[int]bool  // indices workers reported done
	done    chan struct{} // closed when pending hits zero
}

// dispatcher is the coordinator's work queue: the serve path submits a
// cold job's cacheable points, workers lease batches over HTTP (long
// poll — they park, they don't spin), compute, Put the points into the
// shared backend under the coordinator's keys, and complete. The
// coordinator waits on the job's done channel and assembles the Series
// in deterministic item order, exactly as the in-process pool would.
type dispatcher struct {
	reg *obs.Registry

	mu       sync.Mutex
	queue    []*task // pending, FIFO
	leases   map[string]*leaseState
	waiting  int       // currently parked lease polls
	lastSeen time.Time // last worker contact of any kind
	wake     chan struct{}
	ttl      time.Duration
}

type leaseState struct {
	job     *dispJob
	tasks   []*task
	expires time.Time
}

func newDispatcher(reg *obs.Registry, ttl time.Duration) *dispatcher {
	if ttl <= 0 {
		ttl = defaultLeaseTTL
	}
	return &dispatcher{
		reg:    reg,
		leases: map[string]*leaseState{},
		wake:   make(chan struct{}, 1),
		ttl:    ttl,
	}
}

// signal wakes one parked lease poll (non-blocking; takers re-signal
// while work remains, so one channel slot serves any waiter count).
func (d *dispatcher) signal() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// workersPresent reports whether dispatching is worth it right now:
// a lease poll is parked, or a worker was heard from recently.
func (d *dispatcher) workersPresent() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.waiting > 0 || time.Since(d.lastSeen) < workerTTL
}

// submit registers a job's distributable items (parallel arrays of item
// index and cache key) and returns the tracking handle.
func (d *dispatcher) submit(id string, job sweep.Job, indices []int, keys []string) *dispJob {
	dj := &dispJob{
		id: id, job: job,
		pending: len(indices),
		doneIdx: make(map[int]bool, len(indices)),
		done:    make(chan struct{}),
	}
	if dj.pending == 0 {
		close(dj.done)
		return dj
	}
	d.mu.Lock()
	for i, idx := range indices {
		d.queue = append(d.queue, &task{job: dj, idx: idx, key: keys[i]})
	}
	d.mu.Unlock()
	d.reg.Counter("fabric.dispatch.jobs").Inc()
	d.reg.Counter("fabric.dispatch.points").Add(uint64(len(indices)))
	d.signal()
	return dj
}

// abandon withdraws a job's undispatched tasks (coordinator gave up
// waiting and will compute the remainder locally). Leased tasks finish
// or expire harmlessly — their Puts are content-addressed.
func (d *dispatcher) abandon(dj *dispJob) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kept := d.queue[:0]
	for _, t := range d.queue {
		if t.job != dj {
			kept = append(kept, t)
		}
	}
	d.queue = kept
}

// doneIndices returns the item indices workers completed for the job.
func (d *dispatcher) doneIndices(dj *dispJob) map[int]bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]bool, len(dj.doneIdx))
	for idx := range dj.doneIdx {
		out[idx] = true
	}
	return out
}

// requeueExpired returns expired leases' unfinished tasks to the queue.
// Called by the coordinator's wait tick and by lease polls, so expiry
// needs no dedicated timer goroutine.
func (d *dispatcher) requeueExpired(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	requeued := false
	for id, ls := range d.leases {
		if now.Before(ls.expires) {
			continue
		}
		delete(d.leases, id)
		for _, t := range ls.tasks {
			if !ls.job.doneIdx[t.idx] {
				d.queue = append(d.queue, t)
				requeued = true
			}
		}
	}
	if requeued {
		d.reg.Counter("fabric.dispatch.requeues").Inc()
		d.mu.Unlock()
		d.signal()
		d.mu.Lock()
	}
}

// lease blocks up to wait for work and returns one batch from a single
// job (nil when the wait expires empty). The park/wake pair is the
// worker-side polling-free idle path.
func (d *dispatcher) lease(ctx context.Context, max int, wait time.Duration) *Lease {
	if max <= 0 {
		max = defaultLeaseMax
	}
	if max > maxLeasePoints {
		max = maxLeasePoints
	}
	if wait <= 0 {
		wait = defaultLeaseWait
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	deadline := time.Now().Add(wait)
	d.mu.Lock()
	d.lastSeen = time.Now()
	d.waiting++
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.waiting--
		d.lastSeen = time.Now()
		d.mu.Unlock()
	}()
	for {
		d.requeueExpired(time.Now())
		if l := d.take(max); l != nil {
			return l
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		// Cap the park at the lease TTL so expiry requeues are noticed
		// even when the coordinator's wait tick isn't running.
		if remain > d.ttl {
			remain = d.ttl
		}
		select {
		case <-d.wake:
		case <-time.After(remain):
		case <-ctx.Done():
			return nil
		}
	}
}

// take pops up to max queued tasks of one job into a new lease.
func (d *dispatcher) take(max int) *Lease {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.queue) == 0 {
		return nil
	}
	dj := d.queue[0].job
	var tasks []*task
	kept := d.queue[:0]
	for _, t := range d.queue {
		if t.job == dj && len(tasks) < max {
			tasks = append(tasks, t)
		} else {
			kept = append(kept, t)
		}
	}
	d.queue = kept
	if len(d.queue) > 0 {
		// More work remains for other pollers.
		defer d.signal()
	}
	id := randomID()
	ls := &leaseState{job: dj, tasks: tasks, expires: time.Now().Add(d.ttl)}
	d.leases[id] = ls
	l := &Lease{ID: id, Job: dj.job, Fingerprint: sweep.Fingerprint()}
	for _, t := range tasks {
		l.Indices = append(l.Indices, t.idx)
		l.Keys = append(l.Keys, t.key)
	}
	d.reg.Counter("fabric.dispatch.leases").Inc()
	return l
}

// complete finishes a lease: indices in done are marked finished,
// anything else the lease held requeues immediately. Unknown lease IDs
// (expired and requeued) are ignored — the tasks are already back in
// the queue or done under another lease.
func (d *dispatcher) complete(id string, done []int) {
	d.mu.Lock()
	ls, ok := d.leases[id]
	if !ok {
		d.lastSeen = time.Now()
		d.mu.Unlock()
		return
	}
	delete(d.leases, id)
	d.lastSeen = time.Now()
	doneSet := make(map[int]bool, len(done))
	for _, idx := range done {
		doneSet[idx] = true
	}
	var finished []*dispJob
	for _, t := range ls.tasks {
		if !doneSet[t.idx] {
			d.queue = append(d.queue, t)
			continue
		}
		if ls.job.doneIdx[t.idx] {
			continue // duplicate completion (requeued twice)
		}
		ls.job.doneIdx[t.idx] = true
		ls.job.pending--
		if ls.job.pending == 0 {
			finished = append(finished, ls.job)
		}
	}
	d.mu.Unlock()
	for _, dj := range finished {
		close(dj.done)
	}
	d.signal()
}

// randomID mints a lease ID.
func randomID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}
