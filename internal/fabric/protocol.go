// Package fabric is the sweep service layer: it turns the engine's
// content-addressed point identities into a wire protocol, so figure and
// table requests can be served over HTTP from a warm cache (computing on
// miss exactly once, however many clients ask concurrently) and a job's
// grid points can be sharded across worker machines.
//
// The package follows the source paper's thesis at system scale:
// polling and retrying are the enemies of scale. Concurrent identical
// requests collapse into one computation with wake-on-ready followers
// (singleflight, no retry loop); warm traffic is answered from the
// backend without ever touching the simulator; conditional requests
// (If-None-Match against cache-key-derived ETags) don't even transfer
// the body; and workers park in long-poll leases instead of busy-polling
// a queue.
//
// Pieces:
//
//   - Server: the HTTP surface (`sweep serve`). GET /v1/kind/{name}
//     answers any registered scenario in json/csv/table form;
//     GET|PUT /v1/cache expose the node's backend to remote clients;
//     POST /v1/work/lease|complete is the worker protocol; /healthz and
//     /metricz report liveness and the obs registry.
//   - Remote: a sweep.Backend client for another node's /v1/cache —
//     capped-exponential-backoff retries, per-request timeouts, and
//     graceful degradation to compute-locally when the far side is down.
//   - Tiered: local disk in front of a Remote, write-through.
//   - Worker: the `sweep worker -join` loop — lease, compute, Put
//     results into the shared backend, complete.
package fabric

import "repro/internal/sweep"

// ProtocolVersion prefixes every fabric route ("/v1/..."). Bump on any
// incompatible change to the wire types below.
const ProtocolVersion = "v1"

// CacheEntry is the wire form of one cached point: the full key rides
// along so hash collisions and misdirected writes degrade to a miss,
// never a wrong value (same contract as the disk cache's on-disk form).
type CacheEntry struct {
	Key   string      `json:"key"`
	Point sweep.Point `json:"point"`
}

// LeaseRequest asks the coordinator for work. Wait is how long the
// coordinator may park the request waiting for work to arrive (long
// poll — the polling-free idle path); Max caps the number of points per
// lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
	WaitMs int    `json:"waitMs,omitempty"`
}

// Lease is one batch of work: item indices into the deterministic
// expansion of Job (sweep.ExpandJob on any machine running the same
// binary yields the same item list), plus the coordinator's cache key
// for each index — workers Put computed points under these keys, so key
// derivation stays entirely on the coordinator. Fingerprint is the
// coordinator's binary hash; a worker built from different code must
// refuse the lease rather than risk publishing divergent values under
// the coordinator's keys.
type Lease struct {
	ID          string    `json:"id"`
	Job         sweep.Job `json:"job"`
	Indices     []int     `json:"indices"`
	Keys        []string  `json:"keys"`
	Fingerprint string    `json:"fingerprint,omitempty"`
}

// CompleteRequest reports a finished lease: Done lists the indices whose
// points the worker stored in the shared backend. Indices leased but not
// listed are requeued immediately.
type CompleteRequest struct {
	LeaseID string `json:"leaseId"`
	Done    []int  `json:"done"`
}
