package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/sweep/work"
)

// Worker is the `sweep worker -join` loop: long-poll the coordinator
// for a lease, expand the leased job locally (deterministic — same
// binary, same items), compute the leased indices across the local
// pool, Put each point into the shared backend under the coordinator's
// keys, and report completion. Idle workers park in the coordinator's
// long poll; they never spin.
type Worker struct {
	// Coordinator is the serve node's base URL, e.g. "http://host:8080".
	Coordinator string
	// Name identifies the worker in coordinator logs (default: host:pid).
	Name string
	// Client overrides the HTTP client. The default has no global
	// timeout: lease calls long-poll and Put sizes vary; per-call
	// bounds come from the protocol's wait parameter.
	Client *http.Client
	// Workers is the local compute pool width; <= 0 selects GOMAXPROCS.
	Workers int
	// MaxPoints caps the points per lease (default defaultLeaseMax).
	MaxPoints int
	// Wait is the long-poll duration per lease request (default
	// defaultLeaseWait, capped server-side at maxLeaseWait).
	Wait time.Duration
	// IdleExit, when positive, makes Run return nil after that much
	// continuous time without work — the CI-smoke and batch-queue mode.
	// Zero means serve forever (until ctx cancels).
	IdleExit time.Duration
	// Log receives progress lines (Printf-shaped); nil is silent.
	Log func(format string, args ...any)
	// Obs scopes the worker's fabric.* counters; nil uses obs.Default.
	Obs *obs.Registry
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

func (w *Worker) obs() *obs.Registry {
	if w.Obs != nil {
		return w.Obs
	}
	return obs.Default()
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) base() string { return strings.TrimSuffix(w.Coordinator, "/") }

func (w *Worker) name() string {
	if w.Name != "" {
		return w.Name
	}
	host, _ := os.Hostname()
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

// Run joins the coordinator and processes leases until ctx cancels, the
// idle-exit window elapses, or the coordinator stays unreachable past
// the retry budget. A fingerprint mismatch is a hard error: a worker
// built from different code must not publish points under the
// coordinator's keys.
func (w *Worker) Run(ctx context.Context) error {
	// Results travel through the coordinator's cache surface: the worker
	// is just a Remote-backend writer plus a compute pool.
	backend := NewRemote(w.Coordinator, RemoteClient(w.client()))
	if w.Obs != nil {
		backend = backend.ScopedBackend(w.Obs).(*Remote)
	}
	reg := w.obs()
	idleSince := time.Now()
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lease, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if w.IdleExit > 0 && time.Since(idleSince) >= w.IdleExit {
				return fmt.Errorf("fabric: coordinator unreachable: %w", err)
			}
			w.logf("worker: lease: %v (retrying)", err)
			select {
			case <-time.After(2 * time.Second):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if lease == nil {
			// Empty long poll: the idle path. No sleep — the wait
			// happened server-side.
			if w.IdleExit > 0 && time.Since(idleSince) >= w.IdleExit {
				w.logf("worker: idle %v, exiting", w.IdleExit)
				return nil
			}
			continue
		}
		idleSince = time.Now()
		if fp := sweep.Fingerprint(); lease.Fingerprint != "" && lease.Fingerprint != fp {
			return fmt.Errorf("fabric: binary fingerprint mismatch (coordinator %.12s, worker %.12s) — rebuild from the coordinator's code",
				lease.Fingerprint, fp)
		}
		done, err := w.process(lease, backend)
		if err != nil {
			// A broken lease (bad job, short keys) is a protocol error
			// worth surfacing; the coordinator requeues via TTL.
			return err
		}
		reg.Counter("fabric.worker.leases").Inc()
		reg.Counter("fabric.worker.points").Add(uint64(len(done)))
		w.logf("worker: computed %d/%d points of %s", len(done), len(lease.Indices), lease.Job.Kind)
		if err := w.complete(ctx, lease.ID, done); err != nil {
			w.logf("worker: complete: %v (lease %s will expire and requeue)", err, lease.ID)
		}
	}
}

// lease asks the coordinator for work, parking up to Wait server-side.
// Returns (nil, nil) on an empty poll.
func (w *Worker) lease(ctx context.Context) (*Lease, error) {
	wait := w.Wait
	if wait <= 0 {
		wait = defaultLeaseWait
	}
	body, err := json.Marshal(LeaseRequest{Worker: w.name(), Max: w.MaxPoints, WaitMs: int(wait / time.Millisecond)})
	if err != nil {
		return nil, err
	}
	// The request's own deadline leaves headroom over the server-side
	// park so a full wait is a 204, not a client timeout.
	rctx, cancel := context.WithTimeout(ctx, wait+15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.base()+"/v1/work/lease", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		var l Lease
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxEntryBytes)).Decode(&l); err != nil {
			return nil, fmt.Errorf("fabric: decode lease: %w", err)
		}
		return &l, nil
	default:
		return nil, fmt.Errorf("fabric: lease: %s", resp.Status)
	}
}

// process computes a lease's points and publishes them through the
// backend; it returns the indices whose Puts succeeded.
func (w *Worker) process(l *Lease, backend sweep.Backend) ([]int, error) {
	if len(l.Indices) != len(l.Keys) {
		return nil, fmt.Errorf("fabric: lease %s has %d indices but %d keys", l.ID, len(l.Indices), len(l.Keys))
	}
	e, err := sweep.ExpandJob(l.Job)
	if err != nil {
		return nil, fmt.Errorf("fabric: expand leased job: %w", err)
	}
	for _, idx := range l.Indices {
		if idx < 0 || idx >= len(e.Items) {
			return nil, fmt.Errorf("fabric: lease %s index %d out of range (%d items)", l.ID, idx, len(e.Items))
		}
	}
	ok := make([]bool, len(l.Indices))
	pool := work.Pool{Workers: w.Workers}
	pool.MapWorkers(len(l.Indices), func(_, i int) {
		p := e.Items[l.Indices[i]].Compute()
		if err := backend.Put(l.Keys[i], p); err == nil {
			ok[i] = true
		}
	})
	var done []int
	for i, idx := range l.Indices {
		if ok[i] {
			done = append(done, idx)
		}
	}
	return done, nil
}

// complete reports a finished lease.
func (w *Worker) complete(ctx context.Context, leaseID string, done []int) error {
	body, err := json.Marshal(CompleteRequest{LeaseID: leaseID, Done: done})
	if err != nil {
		return err
	}
	rctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.base()+"/v1/work/complete", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fabric: complete: %s", resp.Status)
	}
	return nil
}
