package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/sweep/work"
)

// Server is the sweep service node: it answers figure/table requests
// over HTTP from its backend (computing on miss, once per distinct job
// however many clients ask concurrently), exposes the backend to remote
// peers, and coordinates worker machines.
type Server struct {
	backend sweep.Backend
	workers int // local compute pool width; <= 0 selects GOMAXPROCS
	reg     *obs.Registry
	logf    func(format string, args ...any)

	// dispatchTimeout bounds how long a request waits on worker
	// machines before computing the remainder itself.
	dispatchTimeout time.Duration

	flights flightGroup
	disp    *dispatcher
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithWorkers sets the local compute pool width.
func WithWorkers(n int) ServerOption { return func(s *Server) { s.workers = n } }

// WithRegistry scopes the server's fabric.* and sweep.* counters.
func WithRegistry(reg *obs.Registry) ServerOption { return func(s *Server) { s.reg = reg } }

// WithLog sets the server's logger (Printf-shaped). Default: silent.
func WithLog(f func(format string, args ...any)) ServerOption { return func(s *Server) { s.logf = f } }

// WithLeaseTTL overrides the worker lease TTL (tests shrink it).
func WithLeaseTTL(ttl time.Duration) ServerOption {
	return func(s *Server) { s.disp = newDispatcher(nil, ttl) }
}

// NewServer builds a service node over backend (nil serves compute-only,
// with no cross-request memoization beyond singleflight).
func NewServer(backend sweep.Backend, opts ...ServerOption) *Server {
	s := &Server{backend: backend, dispatchTimeout: 30 * time.Minute}
	for _, o := range opts {
		o(s)
	}
	if s.disp == nil {
		s.disp = newDispatcher(nil, 0)
	}
	s.disp.reg = s.obs()
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	return s
}

func (s *Server) obs() *obs.Registry {
	if s.reg != nil {
		return s.reg
	}
	return obs.Default()
}

// Handler returns the node's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	mux.HandleFunc("GET /v1/kinds", s.handleKinds)
	mux.HandleFunc("GET /v1/kind/{name}", s.handleKind)
	mux.HandleFunc("GET /v1/cache", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache", s.handleCachePut)
	mux.HandleFunc("POST /v1/work/lease", s.handleLease)
	mux.HandleFunc("POST /v1/work/complete", s.handleComplete)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.obs().Snapshot())
}

func (s *Server) handleKinds(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sweep.Names())
}

// jobFromQuery maps GET /v1/kind/{name} query parameters onto a Job:
// topo, bins, warmup, measure, matn, cores, grid (the -grid flag
// syntax), params (the -params flag syntax) and format (json|csv|table,
// default json). Validation beyond syntax is Normalize's job.
func jobFromQuery(r *http.Request) (sweep.Job, string, error) {
	q := r.URL.Query()
	j := sweep.Job{Kind: sweep.Kind(r.PathValue("name")), Topo: q.Get("topo")}
	var err error
	if j.Bins, err = sweep.ParseBins(q.Get("bins")); err != nil {
		return j, "", err
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{{"warmup", &j.Warmup}, {"measure", &j.Measure}, {"matn", &j.MatN}, {"cores", &j.Cores}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return j, "", fmt.Errorf("bad %s %q", p.name, v)
			}
			*p.dst = n
		}
	}
	grid, err := sweep.ParseGrid(q.Get("grid"))
	if err != nil {
		return j, "", err
	}
	if !grid.IsZero() {
		grid.Apply(&j)
	}
	if j.Params, err = sweep.ParseParams(q.Get("params")); err != nil {
		return j, "", err
	}
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "csv", "table":
	default:
		return j, "", fmt.Errorf("bad format %q (want json, csv or table)", format)
	}
	return j, format, nil
}

// jobIdentity hashes a normalized job together with the binary
// fingerprint — the same inputs the point cache keys on, lifted to whole
// jobs. Empty when the binary has no fingerprint (identity across
// processes is then unknowable, so no ETag is issued).
func jobIdentity(norm sweep.Job) string {
	fp := sweep.Fingerprint()
	if fp == "" {
		return ""
	}
	spec, err := json.Marshal(norm)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256([]byte(fp + "|" + string(spec)))
	return hex.EncodeToString(sum[:])
}

// etagMatches implements If-None-Match: a comma-separated list of
// entity tags, or "*". Weak-validator prefixes are accepted — byte
// identity is exactly what the job-identity ETag asserts.
func etagMatches(header, etag string) bool {
	for _, tok := range strings.Split(header, ",") {
		tok = strings.TrimSpace(tok)
		tok = strings.TrimPrefix(tok, "W/")
		if tok == "*" || tok == etag {
			return true
		}
	}
	return false
}

// flightOutcome is what one singleflight execution hands every caller.
type flightOutcome struct {
	res      *sweep.Result
	executed int // points not served by the backend
}

func (s *Server) handleKind(w http.ResponseWriter, r *http.Request) {
	reg := s.obs()
	reg.Counter("fabric.requests").Inc()
	job, format, err := jobFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	norm, err := job.Normalize()
	if err != nil {
		http.Error(w, strings.TrimPrefix(err.Error(), "sweep: "), http.StatusBadRequest)
		return
	}
	id := jobIdentity(norm)
	if id != "" {
		// The ETag derives from the same identity the cache keys on:
		// binary fingerprint + normalized job, suffixed per format since
		// each format serves different bytes.
		etag := `"` + id[:32] + "-" + format + `"`
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
			reg.Counter("fabric.not_modified").Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}

	// Coalesce identical concurrent jobs regardless of requested format
	// — compute once, render per caller. The flight key falls back to
	// the normalized spec when no fingerprint-based identity exists
	// (coalescing is in-process, it needs no cross-binary identity).
	flightKey := id
	if flightKey == "" {
		spec, _ := json.Marshal(norm)
		flightKey = string(spec)
	}
	v, err, shared := s.flights.do(flightKey, func() (any, error) {
		return s.compute(norm, flightKey)
	})
	if shared {
		reg.Counter("fabric.coalesced").Inc()
	}
	if err != nil {
		reg.Counter("fabric.errors").Inc()
		s.logf("fabric: %s: %v", norm.Kind, err)
		http.Error(w, strings.TrimPrefix(err.Error(), "sweep: "), http.StatusInternalServerError)
		return
	}
	out := v.(*flightOutcome)
	if !shared {
		if out.executed == 0 {
			reg.Counter("fabric.hits").Inc()
		} else {
			reg.Counter("fabric.misses").Inc()
		}
	}
	if err := writeResult(w, out.res, format); err != nil {
		reg.Counter("fabric.errors").Inc()
		s.logf("fabric: render %s: %v", norm.Kind, err)
	}
}

// writeResult renders a result in the requested format, byte-identical
// to the CLI emitters (same JSON/CSV/Table methods).
func writeResult(w http.ResponseWriter, res *sweep.Result, format string) error {
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		_, err := io.WriteString(w, res.CSV())
		return err
	case "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, err := io.WriteString(w, res.Table().String())
		return err
	default:
		b, err := res.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return err
		}
		w.Header().Set("Content-Type", "application/json")
		_, err = w.Write(b)
		return err
	}
}

// compute produces a job's result, preferring worker machines when any
// are attached and falling back to the in-process pool.
func (s *Server) compute(norm sweep.Job, id string) (*flightOutcome, error) {
	if s.backend != nil && s.disp.workersPresent() {
		return s.dispatchCompute(norm, id)
	}
	runner := sweep.Runner{Workers: s.workers, Cache: s.backend, Obs: s.reg}
	res, st, err := runner.Run(norm)
	if err != nil {
		return nil, err
	}
	return &flightOutcome{res: res, executed: st.Executed}, nil
}

// dispatchCompute shards a job across attached workers: expand, serve
// what the backend already has, lease the remainder out, and compute
// locally whatever comes back unfinished (worker loss, uncacheable
// items). Assembly is by item index, so the distributed result is
// byte-identical to a local run.
func (s *Server) dispatchCompute(norm sweep.Job, id string) (*flightOutcome, error) {
	reg := s.obs()
	e, err := sweep.ExpandJob(norm)
	if err != nil {
		return nil, err
	}
	points := make([]sweep.Point, len(e.Items))
	have := make([]bool, len(e.Items))
	var indices []int
	var keys []string
	for i, it := range e.Items {
		if it.Key == "" {
			continue // uncacheable: cannot travel through the backend
		}
		if p, ok := s.backend.Get(it.Key); ok {
			points[i], have[i] = p, true
			continue
		}
		indices = append(indices, i)
		keys = append(keys, it.Key)
	}
	executed := 0 // points the initial backend pass could not serve
	for i := range e.Items {
		if !have[i] {
			executed++
		}
	}

	dj := s.disp.submit(id, e.Job, indices, keys)
	if len(indices) > 0 {
		deadline := time.Now().Add(s.dispatchTimeout)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
	wait:
		for {
			select {
			case <-dj.done:
				break wait
			case now := <-tick.C:
				s.disp.requeueExpired(now)
				if !s.disp.workersPresent() || now.After(deadline) {
					// Workers left (or the job stalled): withdraw what
					// nobody leased and finish it ourselves.
					s.disp.abandon(dj)
					break wait
				}
			}
		}
		// Harvest worker results from the shared backend.
		for _, i := range indices {
			if p, ok := s.backend.Get(e.Items[i].Key); ok {
				points[i], have[i] = p, true
			}
		}
	}

	// Whatever remains — uncacheable items, lost leases, backend
	// hiccups — computes in the local pool.
	var local []int
	for i := range e.Items {
		if !have[i] {
			local = append(local, i)
		}
	}
	if len(local) > 0 {
		reg.Counter("fabric.dispatch.local").Add(uint64(len(local)))
		sims := 0
		pool := work.Pool{Workers: s.workers}
		pool.MapWorkers(len(local), func(_, li int) {
			i := local[li]
			p := e.Items[i].Compute()
			points[i] = p
			if key := e.Items[i].Key; key != "" && s.backend != nil {
				_ = s.backend.Put(key, p)
			}
		})
		for _, i := range local {
			if e.Items[i].Sim {
				sims++
			}
		}
		reg.Counter("sweep.points.executed").Add(uint64(sims))
	}
	res, err := e.Assemble(points)
	if err != nil {
		return nil, err
	}
	return &flightOutcome{res: res, executed: executed}, nil
}

func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if s.backend == nil {
		http.Error(w, "no backend", http.StatusServiceUnavailable)
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	p, ok := s.backend.Get(key)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(CacheEntry{Key: key, Point: p})
}

func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	if s.backend == nil {
		http.Error(w, "no backend", http.StatusServiceUnavailable)
		return
	}
	var e CacheEntry
	if err := json.NewDecoder(io.LimitReader(r.Body, maxEntryBytes)).Decode(&e); err != nil {
		http.Error(w, "bad cache entry: "+err.Error(), http.StatusBadRequest)
		return
	}
	if e.Key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	if err := s.backend.Put(e.Key, e.Point); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	l := s.disp.lease(r.Context(), req.Max, time.Duration(req.WaitMs)*time.Millisecond)
	if l == nil {
		w.WriteHeader(http.StatusNoContent) // no work inside the wait
		return
	}
	s.logf("fabric: leased %d points of %s to %s", len(l.Indices), l.Job.Kind, req.Worker)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(l)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad complete request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.LeaseID == "" {
		http.Error(w, "missing leaseId", http.StatusBadRequest)
		return
	}
	s.disp.complete(req.LeaseID, req.Done)
	w.WriteHeader(http.StatusNoContent)
}
