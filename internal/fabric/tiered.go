package fabric

import (
	"errors"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// Tiered layers a local backend in front of a remote one: reads hit the
// local layer first and fall back to the remote (populating the local
// layer on the way back, so the second read is a disk hit); writes go
// through to both. The common deployment is a disk cache in front of a
// Remote — every node keeps its own warm working set while the fleet
// shares one logical store.
type Tiered struct {
	local, remote sweep.Backend
	reg           *obs.Registry
}

// NewTiered composes local-in-front-of-remote.
func NewTiered(local, remote sweep.Backend) *Tiered {
	return &Tiered{local: local, remote: remote}
}

// Name identifies the backend kind.
func (t *Tiered) Name() string { return "tiered" }

// Local returns the front layer.
func (t *Tiered) Local() sweep.Backend { return t.local }

// Remote returns the back layer.
func (t *Tiered) Remote() sweep.Backend { return t.remote }

// ScopedBackend implements sweep.RegistryScoped, scoping both layers
// (when they support it) so a run's tiered traffic lands in one
// registry.
func (t *Tiered) ScopedBackend(reg *obs.Registry) sweep.Backend {
	if t.reg != nil {
		return t
	}
	tt := *t
	tt.reg = reg
	if rs, ok := tt.local.(sweep.RegistryScoped); ok {
		tt.local = rs.ScopedBackend(reg)
	}
	if rs, ok := tt.remote.(sweep.RegistryScoped); ok {
		tt.remote = rs.ScopedBackend(reg)
	}
	return &tt
}

func (t *Tiered) obs() *obs.Registry {
	if t.reg != nil {
		return t.reg
	}
	return obs.Default()
}

// Get reads local first, then remote; a remote hit back-fills the local
// layer so the point is a disk read next time.
func (t *Tiered) Get(key string) (sweep.Point, bool) {
	if p, ok := t.local.Get(key); ok {
		t.obs().Counter("fabric.tiered.local_hits").Inc()
		return p, true
	}
	p, ok := t.remote.Get(key)
	if !ok {
		return sweep.Point{}, false
	}
	t.obs().Counter("fabric.tiered.remote_hits").Inc()
	_ = t.local.Put(key, p) // best-effort back-fill
	return p, true
}

// Put writes through to both layers. The local write happens first so a
// crash mid-Put leaves at worst a locally-cached point the fleet hasn't
// seen — never a shared entry the writer itself cannot read back.
func (t *Tiered) Put(key string, p sweep.Point) error {
	return errors.Join(t.local.Put(key, p), t.remote.Put(key, p))
}

// Stats reports the local layer's state when it can describe itself
// (sweep.StatsReporter) — the remote side cannot be enumerated from
// here.
func (t *Tiered) Stats() (sweep.CacheStats, error) {
	if sr, ok := t.local.(sweep.StatsReporter); ok {
		return sr.Stats()
	}
	return sweep.CacheStats{}, errors.New("fabric: tiered local layer has no stats")
}
