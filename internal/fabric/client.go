package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// Remote is a sweep.Backend talking to another node's /v1/cache surface
// (a `sweep serve` instance, or anything speaking the same protocol).
//
// Failure posture: the remote is an accelerator, never a dependency.
// Transient failures retry with capped exponential backoff inside a
// per-request budget; a request that exhausts its retries reports a
// miss (Get) or an error the engine ignores (Put), so the caller
// degrades to computing locally — counted under fabric.degraded — and
// the sweep always completes. A definitive miss (404) never retries:
// absence is an answer, not a fault.
type Remote struct {
	base string
	c    *http.Client
	reg  *obs.Registry // nil = obs.Default()

	// Attempts is the total tries per request (default 3).
	Attempts int
	// Backoff is the wait after the first failed attempt, doubling up
	// to MaxBackoff (defaults 100ms / 2s).
	Backoff, MaxBackoff time.Duration
}

// NewRemote returns a backend for the node at base (e.g.
// "http://host:8080"). The default client applies a 15s per-request
// timeout; pass a custom one with RemoteClient.
func NewRemote(base string, opts ...RemoteOption) *Remote {
	r := &Remote{
		base:       strings.TrimSuffix(base, "/"),
		c:          &http.Client{Timeout: 15 * time.Second},
		Attempts:   3,
		Backoff:    100 * time.Millisecond,
		MaxBackoff: 2 * time.Second,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// RemoteOption configures NewRemote.
type RemoteOption func(*Remote)

// RemoteClient substitutes the HTTP client (timeout policy, transport).
func RemoteClient(c *http.Client) RemoteOption { return func(r *Remote) { r.c = c } }

// RemoteRetries sets the attempt count and initial backoff.
func RemoteRetries(attempts int, backoff time.Duration) RemoteOption {
	return func(r *Remote) { r.Attempts, r.Backoff = attempts, backoff }
}

// Name identifies the backend kind.
func (r *Remote) Name() string { return "http" }

// Base returns the coordinator base URL.
func (r *Remote) Base() string { return r.base }

// ScopedBackend implements sweep.RegistryScoped.
func (r *Remote) ScopedBackend(reg *obs.Registry) sweep.Backend {
	if r.reg != nil {
		return r
	}
	rr := *r
	rr.reg = reg
	return &rr
}

func (r *Remote) obs() *obs.Registry {
	if r.reg != nil {
		return r.reg
	}
	return obs.Default()
}

// retry runs op up to Attempts times with capped exponential backoff.
// op returns done=true to stop (success or definitive answer).
func (r *Remote) retry(op func() (done bool, err error)) error {
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 1
	}
	wait := r.Backoff
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(wait)
			wait *= 2
			if r.MaxBackoff > 0 && wait > r.MaxBackoff {
				wait = r.MaxBackoff
			}
		}
		done, err := op()
		if done {
			return err
		}
		last = err
	}
	r.obs().Counter("fabric.remote.errors").Inc()
	return last
}

// Get fetches the point stored under key on the remote node. Any
// failure after retries degrades to a miss (the caller computes
// locally), counted under fabric.degraded.
func (r *Remote) Get(key string) (sweep.Point, bool) {
	reg := r.obs()
	reg.Counter("fabric.remote.gets").Inc()
	var p sweep.Point
	found := false
	err := r.retry(func() (bool, error) {
		resp, err := r.c.Get(r.base + "/v1/cache?key=" + url.QueryEscape(key))
		if err != nil {
			return false, err
		}
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		switch resp.StatusCode {
		case http.StatusOK:
			var e CacheEntry
			if err := json.NewDecoder(io.LimitReader(resp.Body, maxEntryBytes)).Decode(&e); err != nil {
				return false, fmt.Errorf("fabric: decode cache entry: %w", err)
			}
			if e.Key != key {
				// A confused or malicious far side must degrade to a
				// miss, never corrupt a result.
				return true, fmt.Errorf("fabric: remote returned key %q for %q", e.Key, key)
			}
			p, found = e.Point, true
			return true, nil
		case http.StatusNotFound:
			return true, nil // definitive miss, no retry
		default:
			return false, fmt.Errorf("fabric: remote get: %s", resp.Status)
		}
	})
	if err != nil {
		reg.Counter("fabric.degraded").Inc()
	}
	if found {
		reg.Counter("fabric.remote.hits").Inc()
	} else {
		reg.Counter("fabric.remote.misses").Inc()
	}
	return p, found
}

// Put stores a point under key on the remote node (write-through from
// workers and tiered backends). The returned error is informational —
// the sweep engine treats Put as best-effort.
func (r *Remote) Put(key string, p sweep.Point) error {
	r.obs().Counter("fabric.remote.puts").Inc()
	body, err := json.Marshal(CacheEntry{Key: key, Point: p})
	if err != nil {
		return err
	}
	return r.retry(func() (bool, error) {
		req, err := http.NewRequest(http.MethodPut, r.base+"/v1/cache", bytes.NewReader(body))
		if err != nil {
			return true, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.c.Do(req)
		if err != nil {
			return false, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK {
			return true, nil
		}
		// 4xx is definitive (the far side rejected the entry); 5xx and
		// transport errors retry.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return true, fmt.Errorf("fabric: remote put: %s", resp.Status)
		}
		return false, fmt.Errorf("fabric: remote put: %s", resp.Status)
	})
}

// maxEntryBytes bounds a single cache entry on the wire (a full sweep
// point is a few KB; 64 MB leaves room for absurdly wide Extra maps
// while still refusing to buffer unbounded garbage).
const maxEntryBytes = 64 << 20
