package fabric

import "sync"

// flight is one in-progress computation of a job's result. Followers
// block on done and read the leader's outcome — the retry-free analog of
// the paper's wake-on-ready queues: nobody re-runs the computation,
// nobody polls for it, everyone sleeps until the one execution finishes.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// flightGroup deduplicates concurrent identical computations (classic
// singleflight, dependency-free). Completed flights are forgotten
// immediately: result freshness is the backend cache's job, the group
// only collapses concurrency.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do runs fn once per key among concurrent callers. shared reports
// whether this caller joined another caller's execution instead of
// running fn itself.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flight{}
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, f.err, true
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err, false
}
