package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Reduced windows keep every test on the 16-core topology fast while
// still running real simulations (mirrors the sweep package's own
// suite).
const (
	testWarmup  = 300
	testMeasure = 1500
)

// testQuery builds the /v1/kind query for a kind at test scale.
func testQuery(kind sweep.Kind) url.Values {
	q := url.Values{}
	q.Set("topo", "small")
	q.Set("warmup", "300")
	q.Set("measure", "1500")
	switch kind {
	case sweep.Fig3, sweep.Fig4:
		q.Set("bins", "1,4")
	case sweep.Fig5:
		q.Set("bins", "1")
		q.Set("matn", "16")
	}
	return q
}

// testJob is the local-runner equivalent of testQuery.
func testJob(kind sweep.Kind) sweep.Job {
	j := sweep.Job{Kind: kind, Topo: "small", Warmup: testWarmup, Measure: testMeasure}
	switch kind {
	case sweep.Fig3, sweep.Fig4:
		j.Bins = []int{1, 4}
	case sweep.Fig5:
		j.Bins = []int{1}
		j.MatN = 16
	}
	return j
}

func newDiskCache(t *testing.T) *sweep.Cache {
	t.Helper()
	c, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func get(t *testing.T, rawURL string, hdr http.Header) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestServeColdWarmConditional is the service's core contract: a cold
// GET computes (miss), an identical warm GET serves byte-identical
// output with zero simulations executed (hit), and a conditional
// re-fetch against the returned ETag costs a 304 with no body.
func TestServeColdWarmConditional(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(newDiskCache(t), WithRegistry(reg), WithWorkers(4))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	u := ts.URL + "/v1/kind/fig6?" + testQuery(sweep.Fig6).Encode()

	resp, cold := get(t, u, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold GET: %s\n%s", resp.Status, cold)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("cold GET returned no ETag")
	}
	snap := reg.Snapshot()
	if snap.Counter("fabric.misses") != 1 || snap.Counter("fabric.hits") != 0 {
		t.Fatalf("after cold GET: misses=%d hits=%d, want 1/0",
			snap.Counter("fabric.misses"), snap.Counter("fabric.hits"))
	}
	executedCold := snap.Counter("sweep.points.executed")
	if executedCold == 0 {
		t.Fatal("cold GET executed no simulations")
	}

	resp, warm := get(t, u, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm GET: %s", resp.Status)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm GET bytes differ from cold GET")
	}
	snap = reg.Snapshot()
	if got := snap.Counter("sweep.points.executed"); got != executedCold {
		t.Fatalf("warm GET executed %d simulations, want 0", got-executedCold)
	}
	if snap.Counter("fabric.hits") != 1 {
		t.Fatalf("after warm GET: hits=%d, want 1", snap.Counter("fabric.hits"))
	}

	resp, body := get(t, u, http.Header{"If-None-Match": {etag}})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: %s, want 304", resp.Status)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	if reg.Snapshot().Counter("fabric.not_modified") != 1 {
		t.Fatal("fabric.not_modified not counted")
	}

	// A different format is a different entity: same identity prefix,
	// different ETag, so the json ETag must not 304 a csv request.
	resp, _ = get(t, u+"&format=csv", http.Header{"If-None-Match": {etag}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv GET with json ETag: %s, want 200", resp.Status)
	}
}

// TestServeAllKindsByteIdentity pins the acceptance bar: every built-in
// kind served over HTTP in every format is byte-identical to the CLI
// path (the Result emitters on a local Runner).
func TestServeAllKindsByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("seven full kinds")
	}
	cache := newDiskCache(t)
	srv := NewServer(cache, WithRegistry(obs.NewRegistry()), WithWorkers(4))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, kind := range sweep.Kinds() {
		runner := sweep.Runner{Workers: 4, Cache: cache, Obs: obs.NewRegistry()}
		res, _, err := runner.Run(testJob(kind))
		if err != nil {
			t.Fatalf("%s: local run: %v", kind, err)
		}
		wantJSON, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		want := map[string][]byte{
			"json":  wantJSON,
			"csv":   []byte(res.CSV()),
			"table": []byte(res.Table().String()),
		}
		for format, wantBytes := range want {
			u := fmt.Sprintf("%s/v1/kind/%s?%s&format=%s", ts.URL, kind, testQuery(kind).Encode(), format)
			resp, got := get(t, u, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %s: %s\n%s", kind, format, resp.Status, got)
			}
			if !bytes.Equal(got, wantBytes) {
				t.Errorf("%s %s: HTTP bytes differ from CLI emitter\nhttp:\n%s\ncli:\n%s",
					kind, format, got, wantBytes)
			}
		}
	}
}

// slowScenario is an uncacheable single-point scenario whose Run sleeps,
// widening the coalescing window and counting executions.
type slowScenario struct {
	runs atomic.Int64
}

func (s *slowScenario) Name() string { return "fabrictest-slow" }
func (s *slowScenario) Normalize(job sweep.Job, topo noc.Topology) (sweep.Job, error) {
	return job, nil
}
func (s *slowScenario) GridAxes() bool { return false }
func (s *slowScenario) Curves(topo noc.Topology, job sweep.Job) ([]sweep.Curve, error) {
	return []sweep.Curve{{
		Name:      "slow",
		NumPoints: 1,
		Run: func(g sweep.GridCoord, pt int) sweep.Point {
			s.runs.Add(1)
			time.Sleep(500 * time.Millisecond)
			return sweep.Point{X: 1, Throughput: 42}
		},
	}}, nil
}

var slowSc = func() *slowScenario {
	s := &slowScenario{}
	sweep.MustRegister(s)
	return s
}()

// TestServeCoalescing is the singleflight contract: N concurrent
// identical cold requests perform exactly one computation; the joiners
// count under fabric.coalesced and return the same bytes.
func TestServeCoalescing(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(newDiskCache(t), WithRegistry(reg), WithWorkers(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	slowSc.runs.Store(0)

	const n = 4
	u := ts.URL + "/v1/kind/" + slowSc.Name() + "?topo=small"
	start := make(chan struct{})
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, body := get(t, u, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %s", i, resp.Status)
			}
			bodies[i] = body
		}(i)
	}
	close(start)
	wg.Wait()
	if got := slowSc.runs.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran the scenario %d times, want exactly 1", n, got)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("coalesced response %d differs from leader's", i)
		}
	}
	if got := reg.Snapshot().Counter("fabric.coalesced"); got != n-1 {
		t.Fatalf("fabric.coalesced = %d, want %d", got, n-1)
	}
}

// TestServeDegradedRemoteDown is the graceful-degradation contract: a
// server whose backend is an unreachable remote still answers correctly
// by computing locally, and counts the degradation.
func TestServeDegradedRemoteDown(t *testing.T) {
	reg := obs.NewRegistry()
	// 127.0.0.1:1 refuses connections immediately; one attempt keeps
	// the retry budget cheap.
	dead := NewRemote("http://127.0.0.1:1", RemoteRetries(1, time.Millisecond))
	srv := NewServer(dead, WithRegistry(reg), WithWorkers(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// table2's rows are cacheable simulated points, so the dead remote
	// is actually consulted (table1's rows carry no cache key at all).
	kind := sweep.TableII
	resp, got := get(t, ts.URL+"/v1/kind/"+string(kind)+"?"+testQuery(kind).Encode(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET with dead remote: %s\n%s", resp.Status, got)
	}
	runner := sweep.Runner{Workers: 2, Obs: obs.NewRegistry()}
	res, _, err := runner.Run(testJob(kind))
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded response differs from local compute")
	}
	if reg.Snapshot().Counter("fabric.degraded") == 0 {
		t.Fatal("fabric.degraded not counted")
	}
}

// TestWorkerEndToEnd drives the full worker protocol: a worker joins
// over HTTP, the serve node dispatches a cold job's points to it, the
// worker computes and publishes them through the shared backend, and
// the assembled response is byte-identical to a local run.
func TestWorkerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full distributed run")
	}
	sreg := obs.NewRegistry()
	cache := newDiskCache(t)
	srv := NewServer(cache, WithRegistry(sreg), WithWorkers(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wreg := obs.NewRegistry()
	w := &Worker{
		Coordinator: ts.URL,
		Name:        "test-worker",
		Workers:     2,
		Wait:        200 * time.Millisecond,
		Obs:         wreg,
	}
	wctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(wctx) }()
	defer func() {
		cancel()
		select {
		case <-workerDone:
		case <-time.After(5 * time.Second):
			t.Error("worker did not exit after cancel")
		}
	}()

	// Wait until the worker is parked in a lease poll, so the GET takes
	// the dispatch path rather than computing in-process.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.disp.workersPresent() {
		if time.Now().After(deadline) {
			t.Fatal("worker never joined")
		}
		time.Sleep(10 * time.Millisecond)
	}

	kind := sweep.Fig6
	resp, got := get(t, ts.URL+"/v1/kind/"+string(kind)+"?"+testQuery(kind).Encode(), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dispatched GET: %s\n%s", resp.Status, got)
	}

	other := obs.NewRegistry()
	runner := sweep.Runner{Workers: 2, Obs: other}
	res, _, err := runner.Run(testJob(kind))
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("distributed response differs from local run")
	}
	if sreg.Snapshot().Counter("fabric.dispatch.jobs") == 0 {
		t.Fatal("job was not dispatched")
	}
	if wreg.Snapshot().Counter("fabric.worker.points") == 0 {
		t.Fatal("worker computed no points")
	}
}

// TestTieredBackend exercises the layering logic with two disk caches:
// local miss falls through to remote and back-fills, writes go through
// to both layers.
func TestTieredBackend(t *testing.T) {
	local, remote := newDiskCache(t), newDiskCache(t)
	reg := obs.NewRegistry()
	tb := NewTiered(local, remote).ScopedBackend(reg).(*Tiered)

	// Remote-only entry: Get falls through and back-fills local.
	if err := remote.Put("k1", sweep.Point{X: 7}); err != nil {
		t.Fatal(err)
	}
	p, ok := tb.Get("k1")
	if !ok || p.X != 7 {
		t.Fatalf("tiered Get(k1) = %+v, %v", p, ok)
	}
	if reg.Snapshot().Counter("fabric.tiered.remote_hits") != 1 {
		t.Fatal("remote hit not counted")
	}
	if p, ok := local.Get("k1"); !ok || p.X != 7 {
		t.Fatal("remote hit did not back-fill the local layer")
	}

	// Write-through: both layers see the Put.
	if err := tb.Put("k2", sweep.Point{X: 9}); err != nil {
		t.Fatal(err)
	}
	if _, ok := local.Get("k2"); !ok {
		t.Fatal("Put missed the local layer")
	}
	if _, ok := remote.Get("k2"); !ok {
		t.Fatal("Put missed the remote layer")
	}

	// Local hit never consults the remote counterfeit.
	if err := local.Put("k3", sweep.Point{X: 1}); err != nil {
		t.Fatal(err)
	}
	if err := remote.Put("k3", sweep.Point{X: 2}); err != nil {
		t.Fatal(err)
	}
	if p, _ := tb.Get("k3"); p.X != 1 {
		t.Fatalf("tiered Get(k3).X = %d, want the local layer's 1", p.X)
	}
}

// TestRemoteRetryAndDefinitiveMiss pins the client's failure posture:
// 5xx retries with backoff until success, 404 is a definitive miss with
// no retry, and Put round-trips.
func TestRemoteRetryAndDefinitiveMiss(t *testing.T) {
	var gets atomic.Int64
	fail := atomic.Bool{}
	fail.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		key := r.URL.Query().Get("key")
		if key == "missing" {
			http.NotFound(w, r)
			return
		}
		if fail.CompareAndSwap(true, false) {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(CacheEntry{Key: key, Point: sweep.Point{X: 5}})
	})
	var put CacheEntry
	mux.HandleFunc("PUT /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		json.NewDecoder(r.Body).Decode(&put)
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	reg := obs.NewRegistry()
	rem := NewRemote(ts.URL, RemoteRetries(3, time.Millisecond)).ScopedBackend(reg).(*Remote)
	p, ok := rem.Get("k")
	if !ok || p.X != 5 {
		t.Fatalf("Get after transient failure = %+v, %v", p, ok)
	}
	if got := gets.Load(); got != 2 {
		t.Fatalf("transient 500 took %d attempts, want 2", got)
	}

	gets.Store(0)
	if _, ok := rem.Get("missing"); ok {
		t.Fatal("404 reported as a hit")
	}
	if got := gets.Load(); got != 1 {
		t.Fatalf("definitive 404 took %d attempts, want 1 (no retry)", got)
	}
	if reg.Snapshot().Counter("fabric.degraded") != 0 {
		t.Fatal("definitive miss counted as degradation")
	}

	if err := rem.Put("pk", sweep.Point{X: 3}); err != nil {
		t.Fatal(err)
	}
	if put.Key != "pk" || put.Point.X != 3 {
		t.Fatalf("Put sent %+v", put)
	}
}

// TestDispatcherLeaseExpiry pins the lost-worker path: an unfinished
// lease expires after its TTL, its tasks requeue, and a second lease
// (a healthy worker) completes the job. Completing the expired lease
// afterwards is a harmless no-op.
func TestDispatcherLeaseExpiry(t *testing.T) {
	d := newDispatcher(obs.NewRegistry(), 30*time.Millisecond)
	dj := d.submit("job", sweep.Job{Kind: sweep.Fig6}, []int{0, 1}, []string{"a", "b"})

	lost := d.take(8)
	if lost == nil || len(lost.Indices) != 2 {
		t.Fatalf("first lease = %+v", lost)
	}
	if l := d.take(8); l != nil {
		t.Fatalf("queue should be empty while leased, got %+v", l)
	}
	time.Sleep(40 * time.Millisecond)
	d.requeueExpired(time.Now())

	healthy := d.take(8)
	if healthy == nil || len(healthy.Indices) != 2 {
		t.Fatalf("post-expiry lease = %+v", healthy)
	}
	d.complete(healthy.ID, []int{0, 1})
	select {
	case <-dj.done:
	default:
		t.Fatal("job not done after healthy completion")
	}
	d.complete(lost.ID, []int{0, 1}) // expired ID: ignored
	if got := len(d.doneIndices(dj)); got != 2 {
		t.Fatalf("doneIndices = %d, want 2", got)
	}
}

// TestSingleflight pins the flight group's basics: concurrent callers
// of one key share a single execution, and completed flights are
// forgotten (a later call runs again).
func TestSingleflight(t *testing.T) {
	var g flightGroup
	var runs, entered, sharedCount atomic.Int64
	release := make(chan struct{})
	const n = 5
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Add(1)
			v, err, shared := g.do("k", func() (any, error) {
				runs.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("do = %v, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Hold the leader until every caller is at (or in) do, so all five
	// overlap one execution.
	for entered.Load() < n {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	if sharedCount.Load() != n-1 {
		t.Fatalf("shared callers = %d, want %d", sharedCount.Load(), n-1)
	}

	// Forgotten after completion: a fresh call runs fn again.
	g.do("k", func() (any, error) { runs.Add(1); return nil, nil })
	if runs.Load() != 2 {
		t.Fatal("completed flight was not forgotten")
	}
}

// TestJobFromQueryValidation pins the HTTP surface's 400 paths.
func TestJobFromQueryValidation(t *testing.T) {
	srv := NewServer(nil, WithRegistry(obs.NewRegistry()))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, tc := range []struct {
		url  string
		want string
	}{
		{"/v1/kind/nosuchkind", "unknown kind"},
		{"/v1/kind/fig6?warmup=abc", "bad warmup"},
		{"/v1/kind/fig6?format=xml", "bad format"},
		{"/v1/kind/fig6?grid=bogus", "bad grid clause"},
		{"/v1/kind/fig3?bins=0", "bad bin count"},
	} {
		resp, body := get(t, ts.URL+tc.url, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %s, want 400", tc.url, resp.Status)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %q missing %q", tc.url, body, tc.want)
		}
	}
}
