// Package isa defines the mini RISC-V-like instruction set executed by the
// simulated cores, including the paper's custom extension (LRwait, SCwait,
// Mwait), an assembler with labels, and a binary encoder/decoder.
//
// The ISA is a behavioural model, not a bit-exact RV32IA implementation:
// instructions are stored decoded, immediates are full 32-bit values, and
// branches use absolute instruction indices resolved by the assembler. The
// subset is exactly what the paper's benchmark kernels need, executed at
// one instruction per cycle by internal/cpu.
package isa

import "fmt"

// Reg is a register index x0..x31. x0 is hardwired to zero.
type Reg uint8

// ABI register aliases (RISC-V standard calling convention names).
const (
	Zero Reg = 0
	RA   Reg = 1
	SP   Reg = 2
	GP   Reg = 3
	TP   Reg = 4
	T0   Reg = 5
	T1   Reg = 6
	T2   Reg = 7
	S0   Reg = 8
	S1   Reg = 9
	A0   Reg = 10
	A1   Reg = 11
	A2   Reg = 12
	A3   Reg = 13
	A4   Reg = 14
	A5   Reg = 15
	A6   Reg = 16
	A7   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	S8   Reg = 24
	S9   Reg = 25
	S10  Reg = 26
	S11  Reg = 27
	T3   Reg = 28
	T4   Reg = 29
	T5   Reg = 30
	T6   Reg = 31
)

var regNames = [...]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// Opcode enumerates the executable operations.
type Opcode uint8

const (
	// NOP does nothing for one cycle.
	NOP Opcode = iota
	// HALT stops the core permanently.
	HALT

	// Register-register ALU operations: rd = rs1 op rs2.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MUL

	// Register-immediate ALU operations: rd = rs1 op imm.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI

	// LI loads a full 32-bit immediate: rd = imm.
	LI

	// Branches compare rs1 and rs2 and jump to the absolute instruction
	// index in Imm when the condition holds.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	// JAL stores the return index in rd and jumps to Imm.
	JAL
	// JALR stores the return index in rd and jumps to rs1+Imm.
	JALR

	// LW loads the word at rs1+imm into rd. SW stores rs2 to rs1+imm.
	LW
	SW

	// LR/SC: standard load-reserved / store-conditional.
	// LR rd, (rs1); SC rd, rs2, (rs1) with rd=0 on success, 1 on failure.
	LRI
	SCI
	// LRWAIT/SCWAIT: the paper's polling-free pair, same register
	// conventions as LR/SC. SCWAIT's rd also reports queue-refused
	// LRWAITs (see cpu documentation).
	LRWAIT
	SCWAIT
	// MWAIT rd, rs2, (rs1): sleeps until mem[rs1] differs from rs2, then
	// loads the (new) value into rd.
	MWAIT

	// AMOs: rd = old mem[rs1]; mem[rs1] = old op rs2. One round trip.
	AMOADD
	AMOSWAP
	AMOAND
	AMOOR
	AMOXOR
	AMOMIN
	AMOMAX
	AMOMINU
	AMOMAXU

	// CSRID reads the core's hart ID into rd.
	CSRID
	// CSRCYCLE reads the current cycle count (low 32 bits) into rd.
	CSRCYCLE
	// CSRNCORES reads the total number of cores into rd.
	CSRNCORES
	// MARK increments the core's benchmark operation counter. It models
	// a performance-counter CSR write and costs one cycle.
	MARK
	// PAUSE stalls the core for rs1 cycles without issuing any memory
	// traffic. It models a timer-assisted backoff (cycle-cost-equivalent
	// to a calibrated spin loop, but without the loop's I-fetch energy).
	PAUSE

	numOpcodes // sentinel; keep last
)

var opcodeNames = [...]string{
	NOP: "nop", HALT: "halt",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu", MUL: "mul",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti", LI: "li",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	JAL: "jal", JALR: "jalr",
	LW: "lw", SW: "sw",
	LRI: "lr.w", SCI: "sc.w", LRWAIT: "lr.wait", SCWAIT: "sc.wait", MWAIT: "mwait",
	AMOADD: "amoadd.w", AMOSWAP: "amoswap.w", AMOAND: "amoand.w",
	AMOOR: "amoor.w", AMOXOR: "amoxor.w", AMOMIN: "amomin.w",
	AMOMAX: "amomax.w", AMOMINU: "amominu.w", AMOMAXU: "amomaxu.w",
	CSRID: "csrr.id", CSRCYCLE: "csrr.cycle", CSRNCORES: "csrr.ncores",
	MARK: "mark", PAUSE: "pause",
}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("opcode(%d)", uint8(o))
}

// IsMem reports whether the opcode issues a memory transaction.
func (o Opcode) IsMem() bool {
	return o == LW || o == SW || o == LRI || o == SCI ||
		o == LRWAIT || o == SCWAIT || o == MWAIT ||
		(o >= AMOADD && o <= AMOMAXU)
}

// IsBranch reports whether the opcode can redirect control flow.
func (o Opcode) IsBranch() bool {
	return (o >= BEQ && o <= BGEU) || o == JAL || o == JALR
}

// Instr is one decoded instruction.
type Instr struct {
	Op  Opcode
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

func (i Instr) String() string {
	switch i.Op {
	case NOP, HALT, MARK:
		return i.Op.String()
	case LI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU, MUL:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return fmt.Sprintf("%s %s, %s, @%d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case JAL:
		return fmt.Sprintf("%s %s, @%d", i.Op, i.Rd, i.Imm)
	case JALR:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case LW:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case SW:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case LRI, LRWAIT:
		return fmt.Sprintf("%s %s, (%s)", i.Op, i.Rd, i.Rs1)
	case SCI, SCWAIT, MWAIT, AMOADD, AMOSWAP, AMOAND, AMOOR, AMOXOR,
		AMOMIN, AMOMAX, AMOMINU, AMOMAXU:
		return fmt.Sprintf("%s %s, %s, (%s)", i.Op, i.Rd, i.Rs2, i.Rs1)
	case CSRID, CSRCYCLE, CSRNCORES:
		return fmt.Sprintf("%s %s", i.Op, i.Rd)
	case PAUSE:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	default:
		return fmt.Sprintf("%s rd=%s rs1=%s rs2=%s imm=%d", i.Op, i.Rd, i.Rs1, i.Rs2, i.Imm)
	}
}

// Program is a fully assembled instruction sequence.
type Program struct {
	Instrs []Instr
	// Symbols maps label names to instruction indices (for debugging
	// and the disassembler).
	Symbols map[string]int
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }
