package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding. The model ISA uses a wide fixed 64-bit instruction word
// so that full 32-bit immediates are lossless:
//
//	word0[7:0]   opcode
//	word0[12:8]  rd
//	word0[17:13] rs1
//	word0[22:18] rs2
//	word0[31:24] magic (0x5A) for stream validation
//	word1[31:0]  imm
//
// This is deliberately not the RV32 bit layout — the repository models
// behaviour, not binary compatibility — but it gives the toolchain a real
// serialize/deserialize path (used by cmd tools to dump kernels and by the
// round-trip property tests).

const encMagic = 0x5A

// InstrBytes is the size of one encoded instruction in bytes.
const InstrBytes = 8

// EncodeInstr serializes one instruction into an 8-byte little-endian word
// pair.
func EncodeInstr(i Instr) [InstrBytes]byte {
	var out [InstrBytes]byte
	w0 := uint32(i.Op) | uint32(i.Rd)<<8 | uint32(i.Rs1)<<13 |
		uint32(i.Rs2)<<18 | uint32(encMagic)<<24
	binary.LittleEndian.PutUint32(out[0:4], w0)
	binary.LittleEndian.PutUint32(out[4:8], uint32(i.Imm))
	return out
}

// DecodeInstr deserializes one instruction.
func DecodeInstr(b [InstrBytes]byte) (Instr, error) {
	w0 := binary.LittleEndian.Uint32(b[0:4])
	if w0>>24 != encMagic {
		return Instr{}, fmt.Errorf("isa: bad instruction magic %#x", w0>>24)
	}
	op := Opcode(w0 & 0xff)
	if op >= numOpcodes {
		return Instr{}, fmt.Errorf("isa: unknown opcode %d", op)
	}
	return Instr{
		Op:  op,
		Rd:  Reg(w0 >> 8 & 0x1f),
		Rs1: Reg(w0 >> 13 & 0x1f),
		Rs2: Reg(w0 >> 18 & 0x1f),
		Imm: int32(binary.LittleEndian.Uint32(b[4:8])),
	}, nil
}

// Encode serializes a whole program (without its symbol table).
func Encode(p *Program) []byte {
	out := make([]byte, 0, len(p.Instrs)*InstrBytes)
	for _, ins := range p.Instrs {
		b := EncodeInstr(ins)
		out = append(out, b[:]...)
	}
	return out
}

// Decode deserializes a program produced by Encode.
func Decode(data []byte) (*Program, error) {
	if len(data)%InstrBytes != 0 {
		return nil, fmt.Errorf("isa: truncated program: %d bytes", len(data))
	}
	p := &Program{Symbols: map[string]int{}}
	var word [InstrBytes]byte
	for off := 0; off < len(data); off += InstrBytes {
		copy(word[:], data[off:off+InstrBytes])
		ins, err := DecodeInstr(word)
		if err != nil {
			return nil, fmt.Errorf("at offset %d: %w", off, err)
		}
		p.Instrs = append(p.Instrs, ins)
	}
	return p, nil
}
