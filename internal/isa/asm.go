package isa

import (
	"fmt"
	"sort"
)

// Builder assembles a Program. Emit instructions with the mnemonic
// methods, place labels with Label, and call Build to resolve branch
// targets. Builder methods panic on malformed input (duplicate or
// unresolved labels) because programs are constructed by test and
// benchmark code, not end users; Build returns the error form.
type Builder struct {
	instrs []Instr
	labels map[string]int
	// fixups records instruction indices whose Imm must be patched with
	// the address of the named label.
	fixups []fixup
}

type fixup struct {
	instr int
	label string
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Here returns the index of the next instruction to be emitted.
func (b *Builder) Here() int { return len(b.instrs) }

// Label binds name to the next emitted instruction. It panics on
// duplicates.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q", name))
	}
	b.labels[name] = len(b.instrs)
	return b
}

func (b *Builder) emit(i Instr) *Builder {
	b.instrs = append(b.instrs, i)
	return b
}

func (b *Builder) emitBranch(op Opcode, rd, rs1, rs2 Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{instr: len(b.instrs), label: label})
	return b.emit(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Build resolves all label references and returns the program.
func (b *Builder) Build() (*Program, error) {
	instrs := make([]Instr, len(b.instrs))
	copy(instrs, b.instrs)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", f.label)
		}
		instrs[f.instr].Imm = int32(target)
	}
	syms := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		syms[k] = v
	}
	return &Program{Instrs: instrs, Symbols: syms}, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// --- ALU ---

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: ADD, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SUB, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: AND, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OR, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: XOR, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sll emits rd = rs1 << (rs2 & 31).
func (b *Builder) Sll(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SLL, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Srl emits rd = rs1 >> (rs2 & 31), logical.
func (b *Builder) Srl(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SRL, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sra emits rd = rs1 >> (rs2 & 31), arithmetic.
func (b *Builder) Sra(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SRA, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Slt emits rd = (rs1 < rs2) signed.
func (b *Builder) Slt(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SLT, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sltu emits rd = (rs1 < rs2) unsigned.
func (b *Builder) Sltu(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: SLTU, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Mul emits rd = rs1 * rs2 (low 32 bits).
func (b *Builder) Mul(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: MUL, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: ADDI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: ANDI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: ORI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: XORI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slli emits rd = rs1 << imm.
func (b *Builder) Slli(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: SLLI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Srli emits rd = rs1 >> imm, logical.
func (b *Builder) Srli(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: SRLI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Srai emits rd = rs1 >> imm, arithmetic.
func (b *Builder) Srai(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: SRAI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slti emits rd = (rs1 < imm) signed.
func (b *Builder) Slti(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: SLTI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li emits rd = imm (full 32-bit immediate).
func (b *Builder) Li(rd Reg, imm int32) *Builder {
	return b.emit(Instr{Op: LI, Rd: rd, Imm: imm})
}

// Mv emits rd = rs (pseudo-instruction for addi rd, rs, 0).
func (b *Builder) Mv(rd, rs Reg) *Builder { return b.Addi(rd, rs, 0) }

// Nop emits a one-cycle no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: NOP}) }

// Halt stops the core.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: HALT}) }

// --- Control flow ---

// Beq branches to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(BEQ, 0, rs1, rs2, label)
}

// Bne branches to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(BNE, 0, rs1, rs2, label)
}

// Blt branches to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(BLT, 0, rs1, rs2, label)
}

// Bge branches to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(BGE, 0, rs1, rs2, label)
}

// Bltu branches to label when rs1 < rs2 (unsigned).
func (b *Builder) Bltu(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(BLTU, 0, rs1, rs2, label)
}

// Bgeu branches to label when rs1 >= rs2 (unsigned).
func (b *Builder) Bgeu(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(BGEU, 0, rs1, rs2, label)
}

// Beqz branches to label when rs1 == 0.
func (b *Builder) Beqz(rs1 Reg, label string) *Builder {
	return b.Beq(rs1, Zero, label)
}

// Bnez branches to label when rs1 != 0.
func (b *Builder) Bnez(rs1 Reg, label string) *Builder {
	return b.Bne(rs1, Zero, label)
}

// J jumps unconditionally to label.
func (b *Builder) J(label string) *Builder {
	return b.emitBranch(JAL, Zero, 0, 0, label)
}

// Jal jumps to label storing the return index in rd.
func (b *Builder) Jal(rd Reg, label string) *Builder {
	return b.emitBranch(JAL, rd, 0, 0, label)
}

// Jalr jumps to rs1+imm storing the return index in rd.
func (b *Builder) Jalr(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: JALR, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ret returns through ra (jalr zero, ra, 0).
func (b *Builder) Ret() *Builder { return b.Jalr(Zero, RA, 0) }

// --- Memory ---

// Lw emits rd = mem[rs1+imm].
func (b *Builder) Lw(rd, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: LW, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sw emits mem[rs1+imm] = rs2.
func (b *Builder) Sw(rs2, rs1 Reg, imm int32) *Builder {
	return b.emit(Instr{Op: SW, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Lr emits a load-reserved: rd = mem[rs1], placing a reservation.
func (b *Builder) Lr(rd, rs1 Reg) *Builder {
	return b.emit(Instr{Op: LRI, Rd: rd, Rs1: rs1})
}

// Sc emits a store-conditional: mem[rs1] = rs2 if the reservation holds;
// rd = 0 on success, 1 on failure.
func (b *Builder) Sc(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: SCI, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// LrWait emits the paper's LRwait: like Lr, but the response is withheld
// until this core is at the head of the address's reservation queue. rd
// receives the memory value, or all-ones if the controller refused the
// reservation (no free queue slot); see cpu docs.
func (b *Builder) LrWait(rd, rs1 Reg) *Builder {
	return b.emit(Instr{Op: LRWAIT, Rd: rd, Rs1: rs1})
}

// ScWait emits the paper's SCwait: mem[rs1] = rs2 if the reservation
// holds; rd = 0 on success, 1 on failure.
func (b *Builder) ScWait(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: SCWAIT, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// MWait emits the paper's Mwait: sleep until mem[rs1] != rs2 (the expected
// value), then rd = mem[rs1]. If the value already differs when the monitor
// is served, the core is notified immediately.
func (b *Builder) MWait(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: MWAIT, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AmoAdd emits rd = mem[rs1]; mem[rs1] += rs2.
func (b *Builder) AmoAdd(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: AMOADD, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AmoSwap emits rd = mem[rs1]; mem[rs1] = rs2.
func (b *Builder) AmoSwap(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: AMOSWAP, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AmoAnd emits rd = mem[rs1]; mem[rs1] &= rs2.
func (b *Builder) AmoAnd(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: AMOAND, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AmoOr emits rd = mem[rs1]; mem[rs1] |= rs2.
func (b *Builder) AmoOr(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: AMOOR, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AmoXor emits rd = mem[rs1]; mem[rs1] ^= rs2.
func (b *Builder) AmoXor(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: AMOXOR, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AmoMin emits rd = mem[rs1]; mem[rs1] = min(old, rs2) signed.
func (b *Builder) AmoMin(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: AMOMIN, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AmoMax emits rd = mem[rs1]; mem[rs1] = max(old, rs2) signed.
func (b *Builder) AmoMax(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: AMOMAX, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AmoMinU emits rd = mem[rs1]; mem[rs1] = min(old, rs2) unsigned.
func (b *Builder) AmoMinU(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: AMOMINU, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AmoMaxU emits rd = mem[rs1]; mem[rs1] = max(old, rs2) unsigned.
func (b *Builder) AmoMaxU(rd, rs2, rs1 Reg) *Builder {
	return b.emit(Instr{Op: AMOMAXU, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// --- CSRs and miscellaneous ---

// CoreID reads the hart ID into rd.
func (b *Builder) CoreID(rd Reg) *Builder {
	return b.emit(Instr{Op: CSRID, Rd: rd})
}

// Cycle reads the low 32 bits of the cycle counter into rd.
func (b *Builder) Cycle(rd Reg) *Builder {
	return b.emit(Instr{Op: CSRCYCLE, Rd: rd})
}

// NCores reads the total core count into rd.
func (b *Builder) NCores(rd Reg) *Builder {
	return b.emit(Instr{Op: CSRNCORES, Rd: rd})
}

// Mark increments the core's benchmark operation counter.
func (b *Builder) Mark() *Builder { return b.emit(Instr{Op: MARK}) }

// Pause stalls the core for rs1 cycles without memory traffic.
func (b *Builder) Pause(rs1 Reg) *Builder {
	return b.emit(Instr{Op: PAUSE, Rs1: rs1})
}

// Disassemble renders p as text, one instruction per line, with label
// annotations.
func Disassemble(p *Program) string {
	byIdx := make(map[int][]string)
	for name, idx := range p.Symbols {
		byIdx[idx] = append(byIdx[idx], name)
	}
	out := ""
	for idx, ins := range p.Instrs {
		names := byIdx[idx]
		sort.Strings(names)
		for _, n := range names {
			out += n + ":\n"
		}
		out += fmt.Sprintf("%4d\t%s\n", idx, ins)
	}
	return out
}
