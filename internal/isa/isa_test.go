package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder()
	b.Li(T0, 0)
	b.Label("loop")
	b.Addi(T0, T0, 1)
	b.Bne(T0, T1, "loop")
	b.J("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Instrs[2].Imm; got != 1 {
		t.Errorf("bne target = %d, want 1", got)
	}
	if got := p.Instrs[3].Imm; got != 5 {
		t.Errorf("j target = %d, want 5", got)
	}
	if p.Symbols["loop"] != 1 || p.Symbols["end"] != 5 {
		t.Errorf("symbols = %v", p.Symbols)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.J("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with undefined label succeeded")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label did not panic")
		}
	}()
	b := NewBuilder()
	b.Label("x")
	b.Label("x")
}

func TestBuilderForwardAndBackwardRefs(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.Beq(A0, A1, "bottom") // forward
	b.J("top")              // backward
	b.Label("bottom")
	b.Halt()
	p := b.MustBuild()
	if p.Instrs[0].Imm != 2 || p.Instrs[1].Imm != 0 {
		t.Fatalf("targets = %d, %d; want 2, 0", p.Instrs[0].Imm, p.Instrs[1].Imm)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.Li(A0, -12345)
	b.Add(T0, A0, A1)
	b.Lw(T1, A0, 16)
	b.Sw(T1, A0, -4)
	b.LrWait(T2, A0)
	b.ScWait(T3, T2, A0)
	b.MWait(T4, Zero, A0)
	b.AmoAdd(T5, T1, A0)
	b.Mark()
	b.Halt()
	p := b.MustBuild()
	got, err := Decode(Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Instrs) != len(p.Instrs) {
		t.Fatalf("decoded %d instrs, want %d", len(got.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if got.Instrs[i] != p.Instrs[i] {
			t.Errorf("instr %d: got %v want %v", i, got.Instrs[i], p.Instrs[i])
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	prop := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Instr{
			Op:  Opcode(op % uint8(numOpcodes)),
			Rd:  Reg(rd % 32),
			Rs1: Reg(rs1 % 32),
			Rs2: Reg(rs2 % 32),
			Imm: imm,
		}
		out, err := DecodeInstr(EncodeInstr(in))
		return err == nil && out == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("Decode accepted truncated input")
	}
	var bad [InstrBytes]byte // magic byte is zero
	if _, err := DecodeInstr(bad); err == nil {
		t.Error("DecodeInstr accepted bad magic")
	}
	var badOp [InstrBytes]byte
	badOp[0] = byte(numOpcodes) // invalid opcode
	badOp[3] = encMagic
	if _, err := DecodeInstr(badOp); err == nil {
		t.Error("DecodeInstr accepted invalid opcode")
	}
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Li(A0, 7)
	b.Label("loop")
	b.Addi(A0, A0, -1)
	b.Bnez(A0, "loop")
	b.Halt()
	text := Disassemble(b.MustBuild())
	for _, want := range []string{"start:", "loop:", "li a0, 7", "addi a0, a0, -1", "bne a0, zero, @1", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: NOP}, "nop"},
		{Instr{Op: LI, Rd: T0, Imm: 5}, "li t0, 5"},
		{Instr{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2}, "add a0, a1, a2"},
		{Instr{Op: LW, Rd: T1, Rs1: SP, Imm: 8}, "lw t1, 8(sp)"},
		{Instr{Op: SW, Rs2: T1, Rs1: SP, Imm: 8}, "sw t1, 8(sp)"},
		{Instr{Op: LRWAIT, Rd: T2, Rs1: A0}, "lr.wait t2, (a0)"},
		{Instr{Op: SCWAIT, Rd: T3, Rs2: T2, Rs1: A0}, "sc.wait t3, t2, (a0)"},
		{Instr{Op: MWAIT, Rd: T4, Rs2: Zero, Rs1: A0}, "mwait t4, zero, (a0)"},
		{Instr{Op: AMOADD, Rd: T5, Rs2: T0, Rs1: A0}, "amoadd.w t5, t0, (a0)"},
		{Instr{Op: PAUSE, Rs1: T0}, "pause t0"},
		{Instr{Op: CSRID, Rd: A0}, "csrr.id a0"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	memOps := []Opcode{LW, SW, LRI, SCI, LRWAIT, SCWAIT, MWAIT, AMOADD, AMOMAXU}
	for _, op := range memOps {
		if !op.IsMem() {
			t.Errorf("%v.IsMem() = false", op)
		}
	}
	nonMem := []Opcode{NOP, ADD, LI, BEQ, JAL, MARK, PAUSE, CSRID}
	for _, op := range nonMem {
		if op.IsMem() {
			t.Errorf("%v.IsMem() = true", op)
		}
	}
	for _, op := range []Opcode{BEQ, BGEU, JAL, JALR} {
		if !op.IsBranch() {
			t.Errorf("%v.IsBranch() = false", op)
		}
	}
	if ADD.IsBranch() || LW.IsBranch() {
		t.Error("non-branch opcodes report IsBranch")
	}
}

func TestRegString(t *testing.T) {
	if Zero.String() != "zero" || RA.String() != "ra" || T6.String() != "t6" {
		t.Error("ABI register names wrong")
	}
	if Reg(40).String() != "x40" {
		t.Error("out-of-range register name wrong")
	}
}
