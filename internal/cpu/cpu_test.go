package cpu

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
)

// loopMem is a Port wired straight to a single bank adapter, returning
// responses with a one-cycle delay. It lets core semantics be tested
// without the fabric.
type stamped struct {
	resp bus.Response
	at   engine.Cycle
}

type loopMem struct {
	store   map[uint32]uint32
	adapter mem.Adapter
	queue   []stamped
	clk     *engine.Clock
}

func newLoopMem(clk *engine.Clock) *loopMem {
	return &loopMem{store: map[uint32]uint32{}, adapter: mem.PlainAdapter{}, clk: clk}
}

func (m *loopMem) Read(a uint32) uint32 { return m.store[a] }
func (m *loopMem) Write(a, v uint32)    { m.store[a] = v }
func (m *loopMem) BankID() int          { return 0 }

func (m *loopMem) TryIssue(r bus.Request) bool {
	for _, resp := range m.adapter.Handle(r, m) {
		m.queue = append(m.queue, stamped{resp: resp, at: m.clk.Now()})
	}
	return true
}

// deliver passes at most one queued response to the core, two cycles after
// it was produced (models the round trip).
func (m *loopMem) deliver(c *Core) {
	if len(m.queue) == 0 || m.queue[0].at+1 >= m.clk.Now() {
		return
	}
	resp := m.queue[0].resp
	m.queue = m.queue[1:]
	c.Deliver(resp)
}

// run executes prog on a fresh core until HALT or maxCycles.
func run(t *testing.T, b *isa.Builder, maxCycles int, setup func(*Core, *loopMem)) (*Core, *loopMem) {
	t.Helper()
	prog := b.MustBuild()
	var clk engine.Clock
	m := newLoopMem(&clk)
	c := New(0, 1, &clk, m, prog)
	if setup != nil {
		setup(c, m)
	}
	for i := 0; i < maxCycles && !c.Halted(); i++ {
		c.Tick()
		clk.Advance()
		m.deliver(c)
	}
	if !c.Halted() {
		t.Fatalf("program did not halt in %d cycles (pc=%d)", maxCycles, c.PC())
	}
	return c, m
}

func TestALUAndBranches(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.T0, 10)
	b.Li(isa.T1, 3)
	b.Add(isa.T2, isa.T0, isa.T1)  // 13
	b.Sub(isa.T3, isa.T0, isa.T1)  // 7
	b.Mul(isa.T4, isa.T0, isa.T1)  // 30
	b.Slli(isa.T5, isa.T1, 4)      // 48
	b.Srai(isa.T6, isa.T0, 1)      // 5
	b.Slt(isa.S0, isa.T1, isa.T0)  // 1
	b.Sltu(isa.S1, isa.T0, isa.T1) // 0
	b.Halt()
	c, _ := run(t, b, 100, nil)
	want := map[isa.Reg]uint32{
		isa.T2: 13, isa.T3: 7, isa.T4: 30, isa.T5: 48, isa.T6: 5,
		isa.S0: 1, isa.S1: 0,
	}
	for r, v := range want {
		if got := c.Reg(r); got != v {
			t.Errorf("%v = %d, want %d", r, got, v)
		}
	}
}

func TestSignedUnsignedComparisons(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.T0, -1)
	b.Li(isa.T1, 1)
	b.Slt(isa.T2, isa.T0, isa.T1)  // -1 < 1 signed: 1
	b.Sltu(isa.T3, isa.T0, isa.T1) // 0xffffffff < 1 unsigned: 0
	b.Srai(isa.T4, isa.T0, 4)      // still -1
	b.Srli(isa.T5, isa.T0, 28)     // 0xf
	b.Halt()
	c, _ := run(t, b, 100, nil)
	if c.Reg(isa.T2) != 1 || c.Reg(isa.T3) != 0 {
		t.Errorf("slt/sltu = %d/%d", c.Reg(isa.T2), c.Reg(isa.T3))
	}
	if c.Reg(isa.T4) != 0xffffffff || c.Reg(isa.T5) != 0xf {
		t.Errorf("srai/srli = %#x/%#x", c.Reg(isa.T4), c.Reg(isa.T5))
	}
}

func TestLoopExecution(t *testing.T) {
	// Sum 1..10 with a countdown loop.
	b := isa.NewBuilder()
	b.Li(isa.T0, 10)
	b.Li(isa.T1, 0)
	b.Label("loop")
	b.Add(isa.T1, isa.T1, isa.T0)
	b.Addi(isa.T0, isa.T0, -1)
	b.Bnez(isa.T0, "loop")
	b.Halt()
	c, _ := run(t, b, 200, nil)
	if got := c.Reg(isa.T1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestJalJalrSubroutine(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.A0, 5)
	b.Jal(isa.RA, "double")
	b.Jal(isa.RA, "double")
	b.Halt()
	b.Label("double")
	b.Add(isa.A0, isa.A0, isa.A0)
	b.Ret()
	c, _ := run(t, b, 100, nil)
	if got := c.Reg(isa.A0); got != 20 {
		t.Errorf("a0 = %d, want 20", got)
	}
}

func TestX0Hardwired(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.Zero, 99) // must be ignored
	b.Add(isa.T0, isa.Zero, isa.Zero)
	b.Halt()
	c, _ := run(t, b, 10, nil)
	if c.Reg(isa.Zero) != 0 || c.Reg(isa.T0) != 0 {
		t.Error("x0 is writable")
	}
}

func TestLoadStore(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.A0, 0x100)
	b.Li(isa.T0, 1234)
	b.Sw(isa.T0, isa.A0, 0)
	b.Lw(isa.T1, isa.A0, 0)
	b.Addi(isa.T1, isa.T1, 1)
	b.Sw(isa.T1, isa.A0, 4)
	b.Lw(isa.T2, isa.A0, 4)
	b.Halt()
	c, m := run(t, b, 100, nil)
	if c.Reg(isa.T2) != 1235 {
		t.Errorf("t2 = %d, want 1235", c.Reg(isa.T2))
	}
	if m.store[0x100] != 1234 || m.store[0x104] != 1235 {
		t.Errorf("memory = %v", m.store)
	}
}

func TestAMOs(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.A0, 0x40)
	b.Li(isa.T0, 5)
	b.AmoAdd(isa.T1, isa.T0, isa.A0)  // old 100 -> 105
	b.AmoSwap(isa.T2, isa.T0, isa.A0) // old 105 -> 5
	b.AmoMax(isa.T3, isa.T1, isa.A0)  // old 5, max(5,100)=100
	b.Halt()
	c, m := run(t, b, 100, func(_ *Core, m *loopMem) { m.store[0x40] = 100 })
	if c.Reg(isa.T1) != 100 || c.Reg(isa.T2) != 105 || c.Reg(isa.T3) != 5 {
		t.Errorf("amo results = %d,%d,%d", c.Reg(isa.T1), c.Reg(isa.T2), c.Reg(isa.T3))
	}
	if m.store[0x40] != 100 {
		t.Errorf("final memory = %d, want 100", m.store[0x40])
	}
}

func TestMarkAndCSRs(t *testing.T) {
	b := isa.NewBuilder()
	b.Mark()
	b.Mark()
	b.CoreID(isa.T0)
	b.NCores(isa.T1)
	b.Cycle(isa.T2)
	b.Halt()
	c, _ := run(t, b, 100, nil)
	if c.Stats.Ops != 2 {
		t.Errorf("ops = %d, want 2", c.Stats.Ops)
	}
	if c.Reg(isa.T0) != 0 || c.Reg(isa.T1) != 1 {
		t.Errorf("id/ncores = %d/%d", c.Reg(isa.T0), c.Reg(isa.T1))
	}
	if c.Reg(isa.T2) == 0 {
		t.Error("cycle CSR never advanced")
	}
}

func TestPauseStallsExactly(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.T0, 7)
	b.Pause(isa.T0)
	b.Halt()
	c, _ := run(t, b, 100, nil)
	if c.Stats.PauseCycles != 7 {
		t.Errorf("pause cycles = %d, want 7", c.Stats.PauseCycles)
	}
	// li + pause + halt-entry: busy cycles.
	if c.Stats.BusyCycles != 3 {
		t.Errorf("busy cycles = %d, want 3", c.Stats.BusyCycles)
	}
}

func TestPauseZeroIsNop(t *testing.T) {
	b := isa.NewBuilder()
	b.Pause(isa.Zero)
	b.Halt()
	c, _ := run(t, b, 10, nil)
	if c.Stats.PauseCycles != 0 {
		t.Errorf("pause cycles = %d, want 0", c.Stats.PauseCycles)
	}
}

func TestSCResultConvention(t *testing.T) {
	// Plain adapter: LR grants no reservation, so SC returns 1 (failure).
	b := isa.NewBuilder()
	b.Li(isa.A0, 0x10)
	b.Lr(isa.T0, isa.A0)
	b.Sc(isa.T1, isa.T0, isa.A0)
	b.Halt()
	c, _ := run(t, b, 100, nil)
	if c.Reg(isa.T1) != 1 {
		t.Errorf("failed SC rd = %d, want 1", c.Reg(isa.T1))
	}
	if c.Stats.SCFail != 1 {
		t.Errorf("SCFail = %d, want 1", c.Stats.SCFail)
	}
}

func TestStatsCycleClassification(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.A0, 0x10)
	b.Lw(isa.T0, isa.A0, 0)
	b.Halt()
	c, _ := run(t, b, 100, nil)
	if c.Stats.MemWaitCycles == 0 {
		t.Error("load never counted as memory wait")
	}
	if c.Stats.SleepCycles != 0 {
		t.Error("plain load counted as sleep")
	}
}

func TestPCOutOfRangePanics(t *testing.T) {
	b := isa.NewBuilder()
	b.Nop() // falls off the end
	prog := b.MustBuild()
	var clk engine.Clock
	c := New(0, 1, &clk, newLoopMem(&clk), prog)
	defer func() {
		if recover() == nil {
			t.Fatal("running past program end did not panic")
		}
	}()
	for i := 0; i < 5; i++ {
		c.Tick()
		clk.Advance()
	}
}
