// Package cpu models the in-order, single-issue cores of a MemPool-class
// system (Snitch-like): one instruction per cycle, blocking memory
// operations, and no polling traffic while waiting for a memory response —
// a core blocked on LRwait or Mwait is asleep, which is precisely the
// property the paper's primitives exploit.
package cpu

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/engine"
	"repro/internal/isa"
)

// Port is where the core injects memory requests (its Qnode). TryIssue
// reports false on backpressure; the core retries next cycle.
type Port interface {
	TryIssue(r bus.Request) bool
}

// State is the core's execution state.
type State uint8

const (
	// Ready: the core executes one instruction this cycle.
	Ready State = iota
	// WaitIssue: a memory request is waiting for egress-port space.
	WaitIssue
	// WaitResp: a memory request is outstanding.
	WaitResp
	// Stalled: a PAUSE (timer backoff) is counting down.
	Stalled
	// Halted: the core executed HALT.
	Halted
)

// Stats aggregates a core's activity; the energy model charges each class
// of cycle differently (busy/backoff at active power, response waits at
// stall power, LRwait/Mwait waits at sleep power).
type Stats struct {
	Instrs uint64
	// Ops counts MARK instructions — completed benchmark operations.
	Ops uint64
	// BusyCycles: executing instructions.
	BusyCycles uint64
	// MemWaitCycles: waiting for a Load/Store/AMO/LR/SC response.
	MemWaitCycles uint64
	// SleepCycles: waiting for an LRwait/Mwait grant (clock-gated).
	SleepCycles uint64
	// PauseCycles: timer-assisted backoff (models a spin-loop backoff's
	// cycle cost).
	PauseCycles uint64
	// IssueStallCycles: request-port backpressure.
	IssueStallCycles uint64
	// HaltedCycles: cycles after HALT.
	HaltedCycles uint64
	// SCSuccess/SCFail count store-conditional outcomes seen by this
	// core (plain and wait variants combined).
	SCSuccess uint64
	SCFail    uint64
	// WaitRefusals counts LRwait/Mwait responses with OK=false (no free
	// reservation slot at the controller).
	WaitRefusals uint64
	// Deliveries counts memory responses delivered to this core. Both
	// cycle loops call Deliver identically, so the counter is safe to
	// expose through Activity without perturbing kernel parity.
	Deliveries uint64
}

// Core is one hart.
type Core struct {
	id     int
	nCores int
	clock  *engine.Clock
	port   Port

	prog *isa.Program
	regs [32]uint32
	pc   int

	state      State
	stallLeft  int64
	pendingReq bus.Request
	waitOp     isa.Opcode
	waitRd     isa.Reg

	// Parking (activity-driven scheduling). A parked core receives no
	// Ticks; parkedAt is the cycle of its last action, and catchUp
	// reconciles the per-cycle wait counters a dense loop would have
	// bumped in the skipped span, so Stats stay cycle-exact.
	parked   bool
	parkedAt engine.Cycle

	Stats Stats
}

// New creates core id of nCores executing prog through port.
func New(id, nCores int, clock *engine.Clock, port Port, prog *isa.Program) *Core {
	if prog == nil || prog.Len() == 0 {
		panic(fmt.Sprintf("cpu: core %d has no program", id))
	}
	return &Core{id: id, nCores: nCores, clock: clock, port: port, prog: prog}
}

// ID returns the hart ID.
func (c *Core) ID() int { return c.id }

// State returns the current execution state.
func (c *Core) State() State { return c.state }

// Halted reports whether the core has executed HALT.
func (c *Core) Halted() bool { return c.state == Halted }

// Sleeping reports whether the core is parked waiting for an LRwait or
// Mwait grant (clock-gated, no polling traffic).
func (c *Core) Sleeping() bool {
	return c.state == WaitResp && (c.waitOp == isa.LRWAIT || c.waitOp == isa.MWAIT)
}

// Quiescent reports whether a Tick would only bump a wait counter: the
// core is waiting for a memory response, counting down a PAUSE, or
// halted. A quiescent core generates no traffic until an external event
// (response delivery, timer expiry) and may be parked — the simulator
// mirror of the paper's clock-gated LRwait/Mwait sleep.
func (c *Core) Quiescent() bool {
	return c.state == WaitResp || c.state == Stalled || c.state == Halted
}

// Park takes the core off the tick schedule as of the current cycle
// (which must be the cycle of its last Tick, and the core must be
// Quiescent). It returns the cycle at which a timer must wake the core —
// the first cycle it would execute again after a PAUSE countdown — or -1
// when the core wakes only on response delivery (WaitResp) or never
// (Halted).
func (c *Core) Park() engine.Cycle {
	if !c.Quiescent() {
		panic(fmt.Sprintf("cpu: core %d parked while runnable (state %d)", c.id, c.state))
	}
	c.parked = true
	c.parkedAt = c.clock.Now()
	if c.state == Stalled {
		return c.parkedAt + engine.Cycle(c.stallLeft) + 1
	}
	return -1
}

// Parked reports whether the core is off the tick schedule.
func (c *Core) Parked() bool { return c.parked }

// Unpark reconciles the skipped wait counters and resumes ticking; the
// scheduler calls it when the core's wake timer fires.
func (c *Core) Unpark() {
	c.catchUp(c.clock.Now() - 1)
	c.parked = false
}

// SyncStats reconciles the per-cycle wait counters of a parked core up
// to the last completed cycle, leaving it parked. Snapshot paths call it
// so cumulative statistics are exact at any observation point; it is a
// no-op on a core that is being ticked normally.
func (c *Core) SyncStats() { c.catchUp(c.clock.Now() - 1) }

// catchUp applies the counter increments a dense loop would have made by
// ticking the parked core at cycles parkedAt+1..through. It is
// idempotent in the sense that successive calls with increasing bounds
// account each skipped cycle exactly once. A PAUSE countdown completes
// here exactly as it would have under dense ticking.
func (c *Core) catchUp(through engine.Cycle) {
	if !c.parked || through <= c.parkedAt {
		return
	}
	delta := uint64(through - c.parkedAt)
	switch c.state {
	case Halted:
		c.Stats.HaltedCycles += delta
	case Stalled:
		c.Stats.PauseCycles += delta
		c.stallLeft -= int64(delta)
		if c.stallLeft <= 0 {
			c.state = Ready
		}
	case WaitResp:
		if c.waitOp == isa.LRWAIT || c.waitOp == isa.MWAIT {
			c.Stats.SleepCycles += delta
		} else {
			c.Stats.MemWaitCycles += delta
		}
	}
	c.parkedAt = through
}

// Reg returns register r (x0 reads as zero).
func (c *Core) Reg(r isa.Reg) uint32 {
	if r == 0 {
		return 0
	}
	return c.regs[r]
}

// SetReg writes register r (writes to x0 are ignored). Used to pass kernel
// arguments before a run.
func (c *Core) SetReg(r isa.Reg, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}

// PC returns the current program counter (instruction index).
func (c *Core) PC() int { return c.pc }

// Tick advances the core by one cycle.
func (c *Core) Tick() {
	switch c.state {
	case Halted:
		c.Stats.HaltedCycles++
	case Stalled:
		c.Stats.PauseCycles++
		c.stallLeft--
		if c.stallLeft <= 0 {
			c.state = Ready
		}
	case WaitIssue:
		if c.port.TryIssue(c.pendingReq) {
			c.state = WaitResp
		} else {
			c.Stats.IssueStallCycles++
		}
	case WaitResp:
		if c.waitOp == isa.LRWAIT || c.waitOp == isa.MWAIT {
			c.Stats.SleepCycles++
		} else {
			c.Stats.MemWaitCycles++
		}
	case Ready:
		c.execute()
	}
}

// amoOp maps AMO opcodes to bus operations.
func amoOp(op isa.Opcode) bus.Op {
	switch op {
	case isa.AMOADD:
		return bus.AmoAdd
	case isa.AMOSWAP:
		return bus.AmoSwap
	case isa.AMOAND:
		return bus.AmoAnd
	case isa.AMOOR:
		return bus.AmoOr
	case isa.AMOXOR:
		return bus.AmoXor
	case isa.AMOMIN:
		return bus.AmoMin
	case isa.AMOMAX:
		return bus.AmoMax
	case isa.AMOMINU:
		return bus.AmoMinU
	case isa.AMOMAXU:
		return bus.AmoMaxU
	}
	panic(fmt.Sprintf("cpu: not an AMO: %v", op))
}

func (c *Core) execute() {
	if c.pc < 0 || c.pc >= c.prog.Len() {
		panic(fmt.Sprintf("cpu: core %d pc %d out of range (program length %d)",
			c.id, c.pc, c.prog.Len()))
	}
	ins := c.prog.Instrs[c.pc]
	c.Stats.Instrs++
	c.Stats.BusyCycles++
	rs1, rs2 := c.Reg(ins.Rs1), c.Reg(ins.Rs2)
	imm := uint32(ins.Imm)

	setRd := func(v uint32) { c.SetReg(ins.Rd, v) }
	next := c.pc + 1

	switch ins.Op {
	case isa.NOP:
	case isa.HALT:
		c.state = Halted
		return
	case isa.ADD:
		setRd(rs1 + rs2)
	case isa.SUB:
		setRd(rs1 - rs2)
	case isa.AND:
		setRd(rs1 & rs2)
	case isa.OR:
		setRd(rs1 | rs2)
	case isa.XOR:
		setRd(rs1 ^ rs2)
	case isa.SLL:
		setRd(rs1 << (rs2 & 31))
	case isa.SRL:
		setRd(rs1 >> (rs2 & 31))
	case isa.SRA:
		setRd(uint32(int32(rs1) >> (rs2 & 31)))
	case isa.SLT:
		setRd(b2u(int32(rs1) < int32(rs2)))
	case isa.SLTU:
		setRd(b2u(rs1 < rs2))
	case isa.MUL:
		setRd(rs1 * rs2)
	case isa.ADDI:
		setRd(rs1 + imm)
	case isa.ANDI:
		setRd(rs1 & imm)
	case isa.ORI:
		setRd(rs1 | imm)
	case isa.XORI:
		setRd(rs1 ^ imm)
	case isa.SLLI:
		setRd(rs1 << (imm & 31))
	case isa.SRLI:
		setRd(rs1 >> (imm & 31))
	case isa.SRAI:
		setRd(uint32(int32(rs1) >> (imm & 31)))
	case isa.SLTI:
		setRd(b2u(int32(rs1) < ins.Imm))
	case isa.LI:
		setRd(imm)
	case isa.BEQ:
		if rs1 == rs2 {
			next = int(ins.Imm)
		}
	case isa.BNE:
		if rs1 != rs2 {
			next = int(ins.Imm)
		}
	case isa.BLT:
		if int32(rs1) < int32(rs2) {
			next = int(ins.Imm)
		}
	case isa.BGE:
		if int32(rs1) >= int32(rs2) {
			next = int(ins.Imm)
		}
	case isa.BLTU:
		if rs1 < rs2 {
			next = int(ins.Imm)
		}
	case isa.BGEU:
		if rs1 >= rs2 {
			next = int(ins.Imm)
		}
	case isa.JAL:
		setRd(uint32(c.pc + 1))
		next = int(ins.Imm)
	case isa.JALR:
		setRd(uint32(c.pc + 1))
		next = int(rs1 + imm)
	case isa.CSRID:
		setRd(uint32(c.id))
	case isa.CSRCYCLE:
		setRd(uint32(c.clock.Now()))
	case isa.CSRNCORES:
		setRd(uint32(c.nCores))
	case isa.MARK:
		c.Stats.Ops++
	case isa.PAUSE:
		if rs1 > 0 {
			c.state = Stalled
			c.stallLeft = int64(rs1)
		}
	case isa.LW:
		c.issue(bus.Request{Op: bus.Load, Addr: rs1 + imm, Src: c.id}, ins)
		return
	case isa.SW:
		c.issue(bus.Request{Op: bus.Store, Addr: rs1 + imm, Data: rs2, Src: c.id}, ins)
		return
	case isa.LRI:
		c.issue(bus.Request{Op: bus.LR, Addr: rs1, Src: c.id}, ins)
		return
	case isa.SCI:
		c.issue(bus.Request{Op: bus.SC, Addr: rs1, Data: rs2, Src: c.id}, ins)
		return
	case isa.LRWAIT:
		c.issue(bus.Request{Op: bus.LRWait, Addr: rs1, Src: c.id}, ins)
		return
	case isa.SCWAIT:
		c.issue(bus.Request{Op: bus.SCWait, Addr: rs1, Data: rs2, Src: c.id}, ins)
		return
	case isa.MWAIT:
		c.issue(bus.Request{Op: bus.MWait, Addr: rs1, Data: rs2, Src: c.id}, ins)
		return
	case isa.AMOADD, isa.AMOSWAP, isa.AMOAND, isa.AMOOR, isa.AMOXOR,
		isa.AMOMIN, isa.AMOMAX, isa.AMOMINU, isa.AMOMAXU:
		c.issue(bus.Request{Op: amoOp(ins.Op), Addr: rs1, Data: rs2, Src: c.id}, ins)
		return
	default:
		panic(fmt.Sprintf("cpu: core %d: unimplemented opcode %v", c.id, ins.Op))
	}
	c.pc = next
}

// issue starts a memory transaction: the PC advances past the instruction
// and the core blocks until the response arrives.
func (c *Core) issue(req bus.Request, ins isa.Instr) {
	c.pc++
	c.waitOp = ins.Op
	c.waitRd = ins.Rd
	if c.port.TryIssue(req) {
		c.state = WaitResp
		return
	}
	c.pendingReq = req
	c.state = WaitIssue
	c.Stats.IssueStallCycles++
}

// Deliver completes the outstanding memory transaction. A parked core is
// unparked: the delivery cycle itself still counts as a wait cycle (the
// dense loop ticks the waiting core before responses are delivered), and
// the core executes again next cycle.
func (c *Core) Deliver(resp bus.Response) {
	if c.parked {
		c.catchUp(c.clock.Now())
		c.parked = false
	}
	if c.state != WaitResp && c.state != WaitIssue {
		panic(fmt.Sprintf("cpu: core %d: response in state %d", c.id, c.state))
	}
	c.Stats.Deliveries++
	switch c.waitOp {
	case isa.SW:
		// Store ack carries no data.
	case isa.SCI, isa.SCWAIT:
		if resp.OK {
			c.SetReg(c.waitRd, 0)
			c.Stats.SCSuccess++
		} else {
			c.SetReg(c.waitRd, 1)
			c.Stats.SCFail++
		}
	case isa.LRWAIT, isa.MWAIT:
		if !resp.OK {
			c.Stats.WaitRefusals++
		}
		c.SetReg(c.waitRd, resp.Data)
	default:
		c.SetReg(c.waitRd, resp.Data)
	}
	c.state = Ready
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
