package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/isa"
)

// Property tests comparing the interpreter's ALU against Go-computed
// oracles over random operands.

// evalALU runs a single reg-reg ALU instruction with the given operands
// and returns rd.
func evalALU(t *testing.T, op isa.Opcode, a, b uint32) uint32 {
	t.Helper()
	bld2 := isa.NewBuilder()
	bld2.Li(isa.A0, int32(a))
	bld2.Li(isa.A1, int32(b))
	switch op {
	case isa.ADD:
		bld2.Add(isa.A2, isa.A0, isa.A1)
	case isa.SUB:
		bld2.Sub(isa.A2, isa.A0, isa.A1)
	case isa.AND:
		bld2.And(isa.A2, isa.A0, isa.A1)
	case isa.OR:
		bld2.Or(isa.A2, isa.A0, isa.A1)
	case isa.XOR:
		bld2.Xor(isa.A2, isa.A0, isa.A1)
	case isa.SLL:
		bld2.Sll(isa.A2, isa.A0, isa.A1)
	case isa.SRL:
		bld2.Srl(isa.A2, isa.A0, isa.A1)
	case isa.SRA:
		bld2.Sra(isa.A2, isa.A0, isa.A1)
	case isa.SLT:
		bld2.Slt(isa.A2, isa.A0, isa.A1)
	case isa.SLTU:
		bld2.Sltu(isa.A2, isa.A0, isa.A1)
	case isa.MUL:
		bld2.Mul(isa.A2, isa.A0, isa.A1)
	default:
		t.Fatalf("unsupported op %v", op)
	}
	bld2.Halt()
	var clk engine.Clock
	c := New(0, 1, &clk, newLoopMem(&clk), bld2.MustBuild())
	for i := 0; i < 10 && !c.Halted(); i++ {
		c.Tick()
		clk.Advance()
	}
	if !c.Halted() {
		t.Fatal("ALU program did not halt")
	}
	return c.Reg(isa.A2)
}

func TestALUOracle(t *testing.T) {
	oracles := map[isa.Opcode]func(a, b uint32) uint32{
		isa.ADD: func(a, b uint32) uint32 { return a + b },
		isa.SUB: func(a, b uint32) uint32 { return a - b },
		isa.AND: func(a, b uint32) uint32 { return a & b },
		isa.OR:  func(a, b uint32) uint32 { return a | b },
		isa.XOR: func(a, b uint32) uint32 { return a ^ b },
		isa.SLL: func(a, b uint32) uint32 { return a << (b & 31) },
		isa.SRL: func(a, b uint32) uint32 { return a >> (b & 31) },
		isa.SRA: func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) },
		isa.SLT: func(a, b uint32) uint32 {
			if int32(a) < int32(b) {
				return 1
			}
			return 0
		},
		isa.SLTU: func(a, b uint32) uint32 {
			if a < b {
				return 1
			}
			return 0
		},
		isa.MUL: func(a, b uint32) uint32 { return a * b },
	}
	for op, oracle := range oracles {
		op, oracle := op, oracle
		prop := func(a, b uint32) bool {
			return evalALU(t, op, a, b) == oracle(a, b)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
}

func TestImmediateOracle(t *testing.T) {
	prop := func(a uint32, imm int16, sh uint8) bool {
		b := isa.NewBuilder()
		b.Li(isa.A0, int32(a))
		b.Addi(isa.T0, isa.A0, int32(imm))
		b.Andi(isa.T1, isa.A0, int32(imm))
		b.Xori(isa.T2, isa.A0, int32(imm))
		b.Slli(isa.T3, isa.A0, int32(sh%32))
		b.Srai(isa.T4, isa.A0, int32(sh%32))
		b.Halt()
		var clk engine.Clock
		c := New(0, 1, &clk, newLoopMem(&clk), b.MustBuild())
		for i := 0; i < 10 && !c.Halted(); i++ {
			c.Tick()
			clk.Advance()
		}
		return c.Reg(isa.T0) == a+uint32(int32(imm)) &&
			c.Reg(isa.T1) == a&uint32(int32(imm)) &&
			c.Reg(isa.T2) == a^uint32(int32(imm)) &&
			c.Reg(isa.T3) == a<<(sh%32) &&
			c.Reg(isa.T4) == uint32(int32(a)>>(sh%32))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchOracle(t *testing.T) {
	// For random operand pairs, each branch must agree with its Go
	// predicate: the program stores 1 if it branched, 0 otherwise.
	type branch struct {
		emit func(b *isa.Builder)
		pred func(a, c uint32) bool
	}
	branches := []branch{
		{func(b *isa.Builder) { b.Beq(isa.A0, isa.A1, "taken") },
			func(a, c uint32) bool { return a == c }},
		{func(b *isa.Builder) { b.Bne(isa.A0, isa.A1, "taken") },
			func(a, c uint32) bool { return a != c }},
		{func(b *isa.Builder) { b.Blt(isa.A0, isa.A1, "taken") },
			func(a, c uint32) bool { return int32(a) < int32(c) }},
		{func(b *isa.Builder) { b.Bge(isa.A0, isa.A1, "taken") },
			func(a, c uint32) bool { return int32(a) >= int32(c) }},
		{func(b *isa.Builder) { b.Bltu(isa.A0, isa.A1, "taken") },
			func(a, c uint32) bool { return a < c }},
		{func(b *isa.Builder) { b.Bgeu(isa.A0, isa.A1, "taken") },
			func(a, c uint32) bool { return a >= c }},
	}
	for i, br := range branches {
		br := br
		prop := func(a, c uint32) bool {
			b := isa.NewBuilder()
			b.Li(isa.A0, int32(a))
			b.Li(isa.A1, int32(c))
			br.emit(b)
			b.Li(isa.A2, 0)
			b.Halt()
			b.Label("taken")
			b.Li(isa.A2, 1)
			b.Halt()
			var clk engine.Clock
			core := New(0, 1, &clk, newLoopMem(&clk), b.MustBuild())
			for j := 0; j < 10 && !core.Halted(); j++ {
				core.Tick()
				clk.Advance()
			}
			want := uint32(0)
			if br.pred(a, c) {
				want = 1
			}
			return core.Reg(isa.A2) == want
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("branch %d: %v", i, err)
		}
	}
}
