// Package lrscwait is a library-level reproduction of "LRSCwait: Enabling
// Scalable and Efficient Synchronization in Manycore Systems through
// Polling-Free and Retry-Free Operation" (Riedel et al., DATE 2024).
//
// It bundles a deterministic cycle-accurate simulator of a MemPool-class
// manycore (cores, hierarchical NoC, SPM banks), the paper's LRwait /
// SCwait / Mwait primitives with four hardware reservation policies
// (single-slot LRSC, reservation table, LRSCwait queues, and the Colibri
// distributed queue), an assembler for benchmark kernels, and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	cfg := lrscwait.MemPoolConfig(lrscwait.PolicyColibri)
//	prog := ...                                 // build with NewProgram
//	sys := lrscwait.NewSystem(cfg, lrscwait.SameProgram(prog))
//	sys.RunUntilHalted(1_000_000)
//
// See examples/ for runnable programs and cmd/ for the evaluation tools.
package lrscwait

import (
	"repro/internal/area"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/platform"
	"repro/internal/sweep"
)

// Re-exported core types. The facade keeps downstream users off the
// internal packages while exposing the full simulator API.
type (
	// Topology describes cores/banks/tiles/groups.
	Topology = noc.Topology
	// Config selects topology and reservation policy for a System.
	Config = platform.Config
	// System is a fully wired simulation instance.
	System = platform.System
	// Activity is a snapshot of system activity counters.
	Activity = platform.Activity
	// PolicyKind selects the per-bank atomics adapter.
	PolicyKind = platform.PolicyKind
	// Program is an assembled kernel.
	Program = isa.Program
	// Builder assembles Programs.
	Builder = isa.Builder
	// Reg is an ISA register.
	Reg = isa.Reg
	// Layout allocates kernel data sections.
	Layout = platform.Layout
	// EnergyParams holds the per-event energy model constants.
	EnergyParams = energy.Params
	// AreaModel holds the Table I area model constants.
	AreaModel = area.Model
)

// ABI register aliases for kernel construction.
const (
	Zero = isa.Zero
	RA   = isa.RA
	T0   = isa.T0
	T1   = isa.T1
	T2   = isa.T2
	T3   = isa.T3
	T4   = isa.T4
	A0   = isa.A0
	A1   = isa.A1
	A2   = isa.A2
	A3   = isa.A3
	S0   = isa.S0
	S1   = isa.S1
	S2   = isa.S2
	S3   = isa.S3
	S4   = isa.S4
)

// Reservation policies.
const (
	// PolicyPlain has no reservation support (AMO-only baselines).
	PolicyPlain = platform.PolicyPlain
	// PolicyLRSCSingle is MemPool's single reservation slot per bank.
	PolicyLRSCSingle = platform.PolicyLRSCSingle
	// PolicyLRSCTable is an ATUN-style per-core reservation table.
	PolicyLRSCTable = platform.PolicyLRSCTable
	// PolicyWaitQueue is the LRSCwait_q hardware queue (ideal when
	// Config.QueueCap is zero).
	PolicyWaitQueue = platform.PolicyWaitQueue
	// PolicyColibri is the paper's distributed reservation queue.
	PolicyColibri = platform.PolicyColibri
)

// MemPool256 returns the paper's 256-core, 1024-bank topology.
func MemPool256() Topology { return noc.MemPool256() }

// MediumTopology returns a quarter-scale MemPool (64 cores).
func MediumTopology() Topology { return noc.Medium() }

// SmallTopology returns a 16-core test topology.
func SmallTopology() Topology { return noc.Small() }

// MemPoolConfig returns the paper's evaluation configuration with the
// given policy.
func MemPoolConfig(policy PolicyKind) Config { return platform.MemPoolConfig(policy) }

// NewSystem builds a system running progFor(core) on each core.
func NewSystem(cfg Config, progFor func(core int) *Program) *System {
	return platform.New(cfg, progFor)
}

// SameProgram runs one program on every core.
func SameProgram(p *Program) func(int) *Program { return platform.SameProgram(p) }

// NewProgram returns an empty program builder.
func NewProgram() *Builder { return isa.NewBuilder() }

// NewLayout returns a bump allocator for kernel data starting at startWord.
func NewLayout(startWord uint32) *Layout { return platform.NewLayout(startWord) }

// Disassemble renders a program as text.
func Disassemble(p *Program) string { return isa.Disassemble(p) }

// DefaultEnergy returns the calibrated energy model.
func DefaultEnergy() EnergyParams { return energy.Default() }

// DefaultArea returns the calibrated Table I area model.
func DefaultArea() AreaModel { return area.Default() }

// Experiment re-exports: the harness that regenerates the paper's tables
// and figures (see cmd/ for the command-line front ends).
type (
	// HistSpec is one histogram curve (variant × policy).
	HistSpec = experiments.HistSpec
	// PolicyConfig is the explicit per-point policy configuration
	// (QueueCap, ColibriQueues, backoff) the runners thread down to the
	// platform; the sweep engine's policy grids override it per point.
	PolicyConfig = experiments.Policy
	// HistSeries is a measured throughput-vs-bins curve.
	HistSeries = experiments.HistSeries
	// QueueSeries is a measured Fig. 6 curve.
	QueueSeries = experiments.QueueSeries
	// InterferenceSeries is a measured Fig. 5 curve.
	InterferenceSeries = experiments.InterferenceSeries
	// EnergyRow is one Table II line.
	EnergyRow = experiments.EnergyRow
)

// Fig3 measures histogram throughput for all Fig. 3 curves.
func Fig3(topo Topology, bins []int, warmup, measure int) []HistSeries {
	return experiments.Fig3(topo, bins, warmup, measure)
}

// Fig4 measures the Fig. 4 lock comparison.
func Fig4(topo Topology, bins []int, warmup, measure int) []HistSeries {
	return experiments.Fig4(topo, bins, warmup, measure)
}

// Fig5 measures the Fig. 5 interference experiment.
func Fig5(topo Topology, bins []int, matN, warmup, measure int) []InterferenceSeries {
	return experiments.Fig5(topo, bins, matN, warmup, measure)
}

// Fig6 measures the Fig. 6 queue scaling experiment.
func Fig6(topo Topology, warmup, measure int) []QueueSeries {
	return experiments.Fig6(topo, warmup, measure)
}

// TableI evaluates the area model on the published configurations.
func TableI(nCores int) []area.Row { return area.TableI(area.Default(), nCores) }

// TableII measures energy per operation at the highest contention.
func TableII(topo Topology, warmup, measure int) []EnergyRow {
	return experiments.TableII(topo, energy.Default(), warmup, measure)
}

// StandardBins returns the paper's bin sweep clipped to the topology.
func StandardBins(topo Topology) []int { return experiments.StandardBins(topo) }

// Sweep engine re-exports: the parallel orchestration layer that fans
// independent simulation points across a worker pool with disk caching
// (see cmd/sweep for the unified CLI front end).
type (
	// SweepJob declares one experiment sweep (kind × topology × params).
	SweepJob = sweep.Job
	// SweepKind names an experiment of the evaluation.
	SweepKind = sweep.Kind
	// SweepRunner executes jobs on a worker pool with optional caching.
	SweepRunner = sweep.Runner
	// SweepResult is the assembled, deterministic output of one job.
	SweepResult = sweep.Result
	// SweepSeries is one labelled curve of a result.
	SweepSeries = sweep.Series
	// SweepPoint is one measurement of a series.
	SweepPoint = sweep.Point
	// SweepGridCoord labels a series with its policy-grid coordinate.
	SweepGridCoord = sweep.GridCoord
	// SweepGrid bundles the policy-grid axes (QueueCaps × ColibriQueues
	// × Backoffs) as parsed from the cmd/sweep -grid flag.
	SweepGrid = sweep.Grid
	// SweepCache memoizes finished points on disk.
	SweepCache = sweep.Cache
	// SweepStats summarizes executed vs cached points of a run.
	SweepStats = sweep.RunStats
)

// ParseSweepGrid parses the -grid flag syntax, e.g.
// "queuecap=0,1,2,4 colibriq=2,4,8 backoff=0,64".
func ParseSweepGrid(s string) (SweepGrid, error) { return sweep.ParseGrid(s) }

// Sweepable experiment kinds.
const (
	KindFig3    = sweep.Fig3
	KindFig4    = sweep.Fig4
	KindFig5    = sweep.Fig5
	KindFig6    = sweep.Fig6
	KindFig6MS  = sweep.Fig6MS
	KindTableI  = sweep.TableI
	KindTableII = sweep.TableII
)

// OpenSweepCache opens the point cache rooted at dir ("" selects
// ~/.cache/lrscwait or the platform equivalent).
func OpenSweepCache(dir string) (*SweepCache, error) { return sweep.OpenCache(dir) }

// RunSweeps executes jobs through one shared worker pool, GOMAXPROCS
// wide, without caching. Use a SweepRunner directly for cache and
// progress control.
func RunSweeps(jobs ...SweepJob) ([]*SweepResult, SweepStats, error) {
	var r SweepRunner
	return r.RunAll(jobs)
}

// Histogram kernel construction for library users (see internal/kernels
// for the full set of variants).
type (
	// HistVariant selects the histogram update primitive.
	HistVariant = kernels.HistVariant
	// HistLayout places the histogram data sections.
	HistLayout = kernels.HistLayout
)

// Histogram variants.
const (
	HistAmoAdd       = kernels.HistAmoAdd
	HistLRSC         = kernels.HistLRSC
	HistLRSCWait     = kernels.HistLRSCWait
	HistLockLRSC     = kernels.HistLockLRSC
	HistLockLRSCWait = kernels.HistLockLRSCWait
	HistLockTicket   = kernels.HistLockTicket
	HistLockMCSMwait = kernels.HistLockMCSMwait
)

// NewHistLayout allocates histogram sections from l.
func NewHistLayout(l *Layout, numBins, nCores int) HistLayout {
	return kernels.NewHistLayout(l, numBins, nCores)
}

// HistogramProgram builds the histogram kernel.
func HistogramProgram(v HistVariant, lay HistLayout, backoff int32, iters int) *Program {
	return kernels.HistogramProgram(v, lay, backoff, iters)
}

// HistogramSum totals the bins after a run.
func HistogramSum(sys *System, lay HistLayout) uint64 {
	return kernels.HistogramSum(sys, lay)
}
