// Package lrscwait is a library-level reproduction of "LRSCwait: Enabling
// Scalable and Efficient Synchronization in Manycore Systems through
// Polling-Free and Retry-Free Operation" (Riedel et al., DATE 2024).
//
// It bundles a deterministic cycle-accurate simulator of a MemPool-class
// manycore (cores, hierarchical NoC, SPM banks), the paper's LRwait /
// SCwait / Mwait primitives with a registry of hardware reservation
// policies (single-slot LRSC, reservation table, LRSCwait queues, and
// the Colibri distributed queue built in — custom primitives register
// through RegisterPolicy), an assembler for benchmark kernels, and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	cfg := lrscwait.MemPoolConfig(lrscwait.PolicyColibri)
//	prog := ...                                 // build with NewProgram
//	sys := lrscwait.NewSystem(cfg, lrscwait.SameProgram(prog))
//	sys.RunUntilHalted(1_000_000)
//
// See examples/ for runnable programs (examples/custompolicy defines a
// new synchronization primitive end to end) and cmd/ for the evaluation
// tools.
//
// # Observability
//
// Every layer reports into one process-wide metrics registry
// (ObsDefault): the kernel publishes per-phase ticked/skipped counts,
// fast-forward savings and per-policy bank traffic through
// System.PublishObs; the sweep engine adds cache traffic and per-point
// timers. Instrumentation is observation-only — results are
// byte-identical with or without it. Run-scoped views come from
// ObsDiff of two snapshots (SweepStats.Metrics is exactly that);
// NewRunManifest records a sweep's full run context as JSON and
// WriteSweepTrace renders its timeline for chrome://tracing. Custom
// scenarios and policies mint their own metrics under their own prefix
// via ObsDefault().Counter("mypkg.thing").
//
// # Sweep service
//
// The sweep engine also runs as a network service. Its point store is
// a pluggable SweepBackend — the disk SweepCache, a SweepRemote
// speaking another node's HTTP cache API (with retries and graceful
// degradation to local compute), or a SweepTiered combining both. A
// SweepServer (CLI: `sweep serve`) answers GET /v1/kind/{name}
// requests byte-identically to the CLI emitters, deduplicates
// concurrent identical requests through singleflight, serves
// conditional requests via cache-key ETags, and coordinates
// SweepWorkers (CLI: `sweep worker -join`) that lease grid points and
// publish results through the shared backend. Distribution never
// changes results — the same deterministic assembly runs everywhere.
package lrscwait

import (
	"net/http"
	"time"

	"repro/internal/area"
	"repro/internal/bus"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/locks"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/patterns"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// Re-exported core types. The facade keeps downstream users off the
// internal packages while exposing the full simulator API.
type (
	// Topology describes cores/banks/tiles/groups.
	Topology = noc.Topology
	// Config selects topology and reservation policy for a System.
	Config = platform.Config
	// System is a fully wired simulation instance.
	System = platform.System
	// Activity is a snapshot of system activity counters.
	Activity = platform.Activity
	// PolicyKind selects the per-bank atomics adapter.
	PolicyKind = platform.PolicyKind
	// Program is an assembled kernel.
	Program = isa.Program
	// Builder assembles Programs.
	Builder = isa.Builder
	// Reg is an ISA register.
	Reg = isa.Reg
	// Layout allocates kernel data sections.
	Layout = platform.Layout
	// EnergyParams holds the per-event energy model constants.
	EnergyParams = energy.Params
	// AreaModel holds the Table I area model constants.
	AreaModel = area.Model
)

// PartitionsAuto, as Config.Partitions or SetDefaultPartitions value,
// shards each system adaptively: it starts on the sequential kernel,
// measures the average per-cycle component activity, and migrates
// mid-run to as many partitions (capped at min(GOMAXPROCS, tiles)) as
// the measured work can amortize — cold or small systems stay
// sequential. Any partition count produces bit-identical results; it
// is purely a wall-clock knob.
const PartitionsAuto = platform.PartitionsAuto

// SetDefaultPartitions sets the process-wide default kernel partition
// count used when Config.Partitions is zero (0 restores the sequential
// default).
func SetDefaultPartitions(p int) { platform.SetDefaultPartitions(p) }

// ABI register aliases for kernel construction.
const (
	Zero = isa.Zero
	RA   = isa.RA
	T0   = isa.T0
	T1   = isa.T1
	T2   = isa.T2
	T3   = isa.T3
	T4   = isa.T4
	A0   = isa.A0
	A1   = isa.A1
	A2   = isa.A2
	A3   = isa.A3
	S0   = isa.S0
	S1   = isa.S1
	S2   = isa.S2
	S3   = isa.S3
	S4   = isa.S4
)

// The built-in reservation policy names. Any registered name — these or
// a custom policy's — is a valid Config.Policy value; PolicyNames lists
// them all.
const (
	// PolicyPlain has no reservation support (AMO-only baselines).
	PolicyPlain = platform.PolicyPlain
	// PolicyLRSCSingle is MemPool's single reservation slot per bank.
	PolicyLRSCSingle = platform.PolicyLRSCSingle
	// PolicyLRSCTable is an ATUN-style per-core reservation table.
	PolicyLRSCTable = platform.PolicyLRSCTable
	// PolicyWaitQueue is the LRSCwait_q hardware queue (ideal unless the
	// ParamQueueCap policy parameter caps it).
	PolicyWaitQueue = platform.PolicyWaitQueue
	// PolicyColibri is the paper's distributed reservation queue.
	PolicyColibri = platform.PolicyColibri
)

// The shared policy parameter keys: the policy-grid axes every policy
// accepts (and ignores when inapplicable) in Config.PolicyParams.
const (
	// ParamQueueCap is the WaitQueue slot count (0 = ideal).
	ParamQueueCap = platform.ParamQueueCap
	// ParamColibriQ is the Colibri head/tail pair count (0 = default 4).
	ParamColibriQ = platform.ParamColibriQ
)

// Open Policy API: the synchronization-primitive space is a registry,
// exactly like the scenario space. A custom primitive implements Policy
// (name, parameter normalization, per-bank adapter construction) with an
// Adapter holding the memory-side semantics, registers through
// RegisterPolicy, and is from then on addressable from Config.Policy,
// the cmd -policy flags and the sweep engine's policy grid axis — with
// litmus-grade sequential consistency, activity accounting and energy
// attribution inherited from the platform. See examples/custompolicy for
// an end-to-end walkthrough (the NB-FEB primitive of Ha, Tsigas &
// Anshus).
type (
	// Policy is one registrable synchronization-primitive family.
	Policy = platform.Policy
	// PolicyParams is the free-form parameter set a policy instance is
	// configured from (Config.PolicyParams; it offers Int and Check
	// helpers for Normalize implementations).
	PolicyParams = platform.PolicyParams
	// BankContext is what a Policy sees of the machine when
	// instantiating one bank's adapter.
	BankContext = platform.BankContext
	// Adapter implements the memory-side semantics of every operation
	// at one bank (the object a Policy's NewAdapter returns).
	Adapter = mem.Adapter
	// Storage is the adapter's view of its bank's word array.
	Storage = mem.Storage
	// AdapterStats is the shared policy-event counter set an Adapter
	// may expose through the mem.StatsReporter AdapterStats() method to
	// feed System.PolicyStats.
	AdapterStats = mem.AdapterStats
	// Request is a core-to-memory message handled by an Adapter.
	Request = bus.Request
	// Response is a memory-to-core message emitted by an Adapter.
	Response = bus.Response
	// Op enumerates the memory operations a Request can carry.
	Op = bus.Op
	// PolicyEnergyWeights is the optional Policy hook supplying
	// policy-specific energy model constants (EnergyWeights() method).
	PolicyEnergyWeights = energy.PolicyWeights
	// PolicyAreaRows is the optional Policy hook contributing Table I
	// area rows (AreaRows(model, nCores) method).
	PolicyAreaRows = area.PolicyRows
	// AreaRow is one Table I line (for PolicyAreaRows implementations).
	AreaRow = area.Row
)

// The memory operations an Adapter must handle beyond OpLoad/OpStore and
// the AMOs (which HandleBasic covers).
const (
	OpLoad      = bus.Load
	OpStore     = bus.Store
	OpAmoAdd    = bus.AmoAdd
	OpAmoSwap   = bus.AmoSwap
	OpAmoAnd    = bus.AmoAnd
	OpAmoOr     = bus.AmoOr
	OpAmoXor    = bus.AmoXor
	OpAmoMin    = bus.AmoMin
	OpAmoMax    = bus.AmoMax
	OpAmoMinU   = bus.AmoMinU
	OpAmoMaxU   = bus.AmoMaxU
	OpLR        = bus.LR
	OpSC        = bus.SC
	OpLRWait    = bus.LRWait
	OpSCWait    = bus.SCWait
	OpMWait     = bus.MWait
	OpWakeUpReq = bus.WakeUpReq
)

// RegisterPolicy adds a custom policy to the platform registry, making
// it addressable from Config.Policy, the cmd -policy flags and the
// sweep policy grid exactly like the built-ins. A duplicate, empty or
// cache-key-unsafe name is rejected.
func RegisterPolicy(p Policy) error { return platform.RegisterPolicy(p) }

// PolicyNames returns every registered policy name, sorted.
func PolicyNames() []string { return platform.PolicyNames() }

// LookupPolicy returns the policy prototype registered under name.
func LookupPolicy(name string) (Policy, bool) { return platform.LookupPolicy(name) }

// ResolvePolicy resolves a policy name and parameter set into a fully
// configured instance on topo (what NewSystem does internally).
func ResolvePolicy(name PolicyKind, params PolicyParams, topo Topology) (Policy, error) {
	return platform.ResolvePolicy(name, params, topo)
}

// HandleBasic implements the Load/Store/AMO semantics shared by every
// adapter. It reports whether it handled the request and whether memory
// was written, so custom adapters run their invalidation hooks and
// delegate everything non-reservation to it.
func HandleBasic(req Request, s Storage) (resp Response, wrote, handled bool) {
	return mem.HandleBasic(req, s)
}

// AmoALU applies an atomic read-modify-write operation and returns the
// new value to store.
func AmoALU(op Op, old, operand uint32) uint32 { return mem.AmoALU(op, old, operand) }

// MemPool256 returns the paper's 256-core, 1024-bank topology.
func MemPool256() Topology { return noc.MemPool256() }

// TeraPoolTopology returns the 1024-core, 4096-bank TeraPool scale-up
// (Bertuletti et al.).
func TeraPoolTopology() Topology { return noc.TeraPool1024() }

// MediumTopology returns a quarter-scale MemPool (64 cores).
func MediumTopology() Topology { return noc.Medium() }

// SmallTopology returns a 16-core test topology.
func SmallTopology() Topology { return noc.Small() }

// MemPoolConfig returns the paper's evaluation configuration with the
// given policy.
func MemPoolConfig(policy PolicyKind) Config { return platform.MemPoolConfig(policy) }

// NewSystem builds a system running progFor(core) on each core.
func NewSystem(cfg Config, progFor func(core int) *Program) *System {
	return platform.New(cfg, progFor)
}

// SameProgram runs one program on every core.
func SameProgram(p *Program) func(int) *Program { return platform.SameProgram(p) }

// NewProgram returns an empty program builder.
func NewProgram() *Builder { return isa.NewBuilder() }

// NewLayout returns a bump allocator for kernel data starting at startWord.
func NewLayout(startWord uint32) *Layout { return platform.NewLayout(startWord) }

// Disassemble renders a program as text.
func Disassemble(p *Program) string { return isa.Disassemble(p) }

// DefaultEnergy returns the calibrated energy model.
func DefaultEnergy() EnergyParams { return energy.Default() }

// DefaultArea returns the calibrated Table I area model.
func DefaultArea() AreaModel { return area.Default() }

// Experiment re-exports: the curve specs and single-point runners behind
// the paper's tables and figures. Whole figures/tables are regenerated
// through the sweep engine — RunSweeps(SweepJob{Kind: KindFig3, ...}) —
// which returns every experiment in the unified SweepSeries/SweepPoint
// measurement model (see cmd/sweep for the command-line front end).
type (
	// HistSpec is one histogram curve spec (variant × policy).
	HistSpec = experiments.HistSpec
	// QueueSpec is one Fig. 6 queue curve spec.
	QueueSpec = experiments.QueueSpec
	// PolicyConfig is the explicit per-point policy configuration (the
	// registered policy Kind plus QueueCap, ColibriQueues and backoff)
	// the runners thread down to the platform; the sweep engine's
	// policy grids override it per point.
	PolicyConfig = experiments.Policy
)

// TableI evaluates the area model on the published configurations.
func TableI(nCores int) []area.Row { return area.TableI(area.Default(), nCores) }

// StandardBins returns the paper's bin sweep clipped to the topology.
func StandardBins(topo Topology) []int { return experiments.StandardBins(topo) }

// Sweep engine re-exports: the parallel orchestration layer that fans
// independent simulation points across a worker pool with disk caching
// (see cmd/sweep for the unified CLI front end). Experiments are open:
// any Scenario registered with RegisterScenario — built-in or defined by
// a library user — is addressable by SweepJob.Kind and gets the worker
// pool, policy grids, caching and every emitter for free (see
// examples/customscenario for an end-to-end walkthrough).
type (
	// SweepJob declares one scenario sweep (kind × topology × params).
	SweepJob = sweep.Job
	// SweepKind names a registered scenario.
	SweepKind = sweep.Kind
	// SweepRunner executes jobs on a worker pool with optional caching.
	SweepRunner = sweep.Runner
	// SweepResult is the assembled, deterministic output of one job.
	SweepResult = sweep.Result
	// SweepSeries is one labelled curve of a result.
	SweepSeries = sweep.Series
	// SweepPoint is one measurement of a series: a coordinate plus named
	// metrics (well-known fields or free-form Extra entries), accessed
	// uniformly through Metric/SetMetric/Metrics.
	SweepPoint = sweep.Point
	// SweepGridCoord labels a series with its policy-grid coordinate;
	// its Merge method overlays the coordinate on a PolicyConfig.
	SweepGridCoord = sweep.GridCoord
	// SweepGrid bundles the policy-grid axes (Policies × QueueCaps ×
	// ColibriQueues × Backoffs) as parsed from the cmd/sweep -grid and
	// -policy flags.
	SweepGrid = sweep.Grid
	// SweepBackend is the pluggable point-store seam: anything with
	// content-keyed Get/Put (SweepCache, SweepRemote, SweepTiered or a
	// custom store) plugs into SweepRunner.Cache and the service fabric.
	SweepBackend = sweep.Backend
	// SweepCache memoizes finished points on disk (the "disk" backend).
	SweepCache = sweep.Cache
	// SweepCacheStats is a cache directory's disk footprint plus this
	// process's hit/miss traffic (SweepCache.Stats).
	SweepCacheStats = sweep.CacheStats
	// SweepCacheGCStats reports one SweepCache.GC pass: entries and
	// bytes scanned, evicted and remaining under the byte budget.
	SweepCacheGCStats = sweep.GCStats
	// SweepStats summarizes executed vs cached points of a run,
	// including per-point timings (Timings), worker utilization and the
	// run-scoped obs metric snapshot (Metrics).
	SweepStats = sweep.RunStats
	// SweepPointTiming records how one work unit of a run executed
	// (worker, start/duration, cache state) — observation-only data for
	// manifests and timelines.
	SweepPointTiming = sweep.PointTiming
	// RunManifest is the JSON run record emitted next to sweep results:
	// job spec hashes, environment, RunStats, metrics.
	RunManifest = sweep.Manifest
	// RunEnvironment captures the host a run executed on.
	RunEnvironment = sweep.Environment
	// TraceEvent is one Chrome trace-event timeline entry.
	TraceEvent = sweep.TraceEvent

	// Scenario is one registrable experiment: a named workload the
	// engine expands into curves of independently scheduled points. The
	// built-in kinds implement it; custom workloads implement it and
	// call RegisterScenario.
	Scenario = sweep.Scenario
	// ScenarioCurve is one logical series of a scenario: a name plus the
	// per-point cache-key and measurement hooks.
	ScenarioCurve = sweep.Curve
	// ScenarioDescriber is an optional Scenario extension supplying a
	// one-line summary shown by cmd/sweep -list-kinds; all built-ins
	// implement it.
	ScenarioDescriber = sweep.Describer
	// ScenarioFinalizer is an optional Scenario extension for
	// cross-point derived values (computed after caching, never fed back
	// into it).
	ScenarioFinalizer = sweep.Finalizer
	// ScenarioTableRenderer is an optional Scenario extension supplying
	// a custom aligned-table layout (which also defines the CSV
	// columns); scenarios without it use the generic metric table.
	ScenarioTableRenderer = sweep.TableRenderer
	// StatsTable is the aligned text table the emitters render through.
	StatsTable = stats.Table
)

// Well-known sweep metric names (SweepPoint.Metric / SetMetric): the
// full reserved set, mapped onto SweepPoint struct fields; any other
// name is a scenario-defined Extra metric.
const (
	MetricThroughput  = sweep.MetricThroughput
	MetricMinPerCore  = sweep.MetricMinPerCore
	MetricMaxPerCore  = sweep.MetricMaxPerCore
	MetricRel         = sweep.MetricRel
	MetricBaselineOps = sweep.MetricBaselineOps
	MetricLoadedOps   = sweep.MetricLoadedOps
	MetricBackoff     = sweep.MetricBackoff
	MetricPowerMW     = sweep.MetricPowerMW
	MetricEnergyPJ    = sweep.MetricEnergyPJ
	MetricDeltaPct    = sweep.MetricDeltaPct
	MetricPaperPJ     = sweep.MetricPaperPJ
	MetricAreaKGE     = sweep.MetricAreaKGE
	MetricOverheadPct = sweep.MetricOverheadPct
	MetricPaperKGE    = sweep.MetricPaperKGE
)

// ParseSweepGrid parses the -grid flag syntax, e.g.
// "policy=lrsc,colibri queuecap=0,1,2,4 colibriq=2,4,8 backoff=0,64".
func ParseSweepGrid(s string) (SweepGrid, error) { return sweep.ParseGrid(s) }

// Built-in scenario kinds (the paper's evaluation). Scenarios lists
// every registered kind, including custom ones.
const (
	KindFig3    = sweep.Fig3
	KindFig4    = sweep.Fig4
	KindFig5    = sweep.Fig5
	KindFig6    = sweep.Fig6
	KindFig6MS  = sweep.Fig6MS
	KindTableI  = sweep.TableI
	KindTableII = sweep.TableII
)

// RegisterScenario adds a custom scenario to the sweep registry, making
// it addressable from SweepJob.Kind exactly like the built-in kinds —
// with the worker pool, policy grids, disk cache and all emitters. A
// duplicate or empty name is rejected.
func RegisterScenario(s Scenario) error { return sweep.Register(s) }

// Scenarios returns every registered scenario name, sorted.
func Scenarios() []string { return sweep.Names() }

// LookupScenario returns the scenario registered under name.
func LookupScenario(name string) (Scenario, bool) { return sweep.Lookup(name) }

// DescribeScenario returns the one-line description of the scenario
// registered under name, or "" when it is unregistered or has none.
func DescribeScenario(name string) string { return sweep.Describe(name) }

// NewStatsTable creates an aligned text table (for custom
// ScenarioTableRenderer implementations).
func NewStatsTable(title string, header ...string) *StatsTable {
	return stats.NewTable(title, header...)
}

// OpenSweepCache opens the point cache rooted at dir ("" selects
// ~/.cache/lrscwait or the platform equivalent).
func OpenSweepCache(dir string) (*SweepCache, error) { return sweep.OpenCache(dir) }

// RunSweeps executes jobs through one shared worker pool, GOMAXPROCS
// wide, without caching. Use a SweepRunner directly for cache and
// progress control.
func RunSweeps(jobs ...SweepJob) ([]*SweepResult, SweepStats, error) {
	var r SweepRunner
	return r.RunAll(jobs)
}

// Service fabric re-exports: the layer that turns the sweep engine into
// a network service (`sweep serve` / `sweep worker` are the CLI front
// ends). A SweepServer answers figure/table requests over HTTP from a
// warm SweepBackend, computes misses through the engine exactly once
// regardless of concurrent identical requests (singleflight), and
// coordinates remote SweepWorkers that lease grid points and publish
// results through the shared backend. SweepRemote speaks the server's
// cache API as a Backend (capped-backoff retries; an unreachable peer
// degrades to computing locally, never an error), and SweepTiered
// layers a local disk cache in front of it with write-through and
// read-back-fill. Everything stays deterministic: HTTP responses are
// byte-identical to the CLI emitters, and work distribution never
// changes results — only where points are computed.
type (
	// SweepServer is the HTTP service node: results API, shared cache
	// surface, worker coordinator.
	SweepServer = fabric.Server
	// SweepServerOption configures NewSweepServer.
	SweepServerOption = fabric.ServerOption
	// SweepRemote is the client-side Backend speaking a SweepServer's
	// cache API.
	SweepRemote = fabric.Remote
	// SweepRemoteOption configures NewSweepRemote.
	SweepRemoteOption = fabric.RemoteOption
	// SweepTiered is disk-in-front-of-remote: local hits are free,
	// remote hits back-fill the local layer, Puts write through both.
	SweepTiered = fabric.Tiered
	// SweepWorker is the `sweep worker -join` loop: lease points from a
	// coordinator, compute them locally, publish through the shared
	// backend.
	SweepWorker = fabric.Worker
	// SweepCacheEntry is the wire form of one cached point (the
	// server's /v1/cache GET/PUT payload).
	SweepCacheEntry = fabric.CacheEntry
)

// NewSweepServer builds a service node over backend (nil serves
// uncached, computing every request). Serve its Handler with
// net/http.
func NewSweepServer(backend SweepBackend, opts ...SweepServerOption) *SweepServer {
	return fabric.NewServer(backend, opts...)
}

// SweepServerWorkers sets the server's local compute pool width
// (default GOMAXPROCS).
func SweepServerWorkers(n int) SweepServerOption { return fabric.WithWorkers(n) }

// SweepServerRegistry scopes the server's fabric.* metrics to reg
// instead of ObsDefault.
func SweepServerRegistry(reg *ObsRegistry) SweepServerOption { return fabric.WithRegistry(reg) }

// SweepServerLog routes request/dispatch log lines to f (Printf-shaped).
func SweepServerLog(f func(format string, args ...any)) SweepServerOption { return fabric.WithLog(f) }

// SweepServerLeaseTTL overrides the worker-lease expiry (default 5m):
// a leased point not completed within the TTL is re-queued.
func SweepServerLeaseTTL(ttl time.Duration) SweepServerOption { return fabric.WithLeaseTTL(ttl) }

// NewSweepRemote returns the Backend speaking the cache API of the
// SweepServer at base ("http://host:8080").
func NewSweepRemote(base string, opts ...SweepRemoteOption) *SweepRemote {
	return fabric.NewRemote(base, opts...)
}

// SweepRemoteHTTPClient overrides the remote backend's HTTP client.
func SweepRemoteHTTPClient(c *http.Client) SweepRemoteOption { return fabric.RemoteClient(c) }

// SweepRemoteRetries sets the per-request retry budget: attempts total
// tries with capped exponential backoff starting at backoff.
func SweepRemoteRetries(attempts int, backoff time.Duration) SweepRemoteOption {
	return fabric.RemoteRetries(attempts, backoff)
}

// NewSweepTiered layers local (usually a *SweepCache) in front of
// remote (usually a *SweepRemote).
func NewSweepTiered(local, remote SweepBackend) *SweepTiered { return fabric.NewTiered(local, remote) }

// Observability re-exports: the process-wide metrics registry every
// layer reports into. Kernel counters ("kernel.*") are published by
// System.PublishObs (the experiment runners call it after every
// measured point); the sweep engine publishes its own ("sweep.*") and
// records each run's delta in SweepStats.Metrics. Custom scenarios and
// policies register metrics under their own prefix via
// ObsDefault().Counter("mypkg.thing") and they flow through manifests
// and the -obs flags exactly like the built-ins.
type (
	// ObsRegistry holds named counters, gauges and timers.
	ObsRegistry = obs.Registry
	// ObsCounter is a monotonically increasing metric (atomic).
	ObsCounter = obs.Counter
	// ObsGauge is a level that moves both ways (atomic).
	ObsGauge = obs.Gauge
	// ObsTimer accumulates duration observations (count + total).
	ObsTimer = obs.Timer
	// ObsSnapshot is a deterministic point-in-time copy of a registry.
	ObsSnapshot = obs.Snapshot
)

// ObsDefault returns the process-wide metrics registry.
func ObsDefault() *ObsRegistry { return obs.Default() }

// NewObsRegistry returns an empty, private metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// ObsDiff returns the activity between two snapshots of the same
// registry (counters and timers subtract; gauges carry b's values).
func ObsDiff(a, b ObsSnapshot) ObsSnapshot { return obs.Diff(a, b) }

// NewRunManifest assembles the run manifest for a finished sweep
// (results and stats as returned by RunSweeps or a SweepRunner;
// cacheDir empty when caching was off).
func NewRunManifest(results []*SweepResult, st SweepStats, cacheDir string) RunManifest {
	return sweep.NewManifest(results, st, cacheDir)
}

// WriteSweepTrace writes a run's timeline as Chrome trace-event JSON
// (loadable in chrome://tracing).
func WriteSweepTrace(path string, st SweepStats) error {
	return sweep.WriteTrace(path, st)
}

// Histogram kernel construction for library users (see internal/kernels
// for the full set of variants).
type (
	// HistVariant selects the histogram update primitive.
	HistVariant = kernels.HistVariant
	// HistLayout places the histogram data sections.
	HistLayout = kernels.HistLayout
)

// Histogram variants.
const (
	HistAmoAdd       = kernels.HistAmoAdd
	HistLRSC         = kernels.HistLRSC
	HistLRSCWait     = kernels.HistLRSCWait
	HistLockLRSC     = kernels.HistLockLRSC
	HistLockLRSCWait = kernels.HistLockLRSCWait
	HistLockTicket   = kernels.HistLockTicket
	HistLockMCSMwait = kernels.HistLockMCSMwait
)

// NewHistLayout allocates histogram sections from l.
func NewHistLayout(l *Layout, numBins, nCores int) HistLayout {
	return kernels.NewHistLayout(l, numBins, nCores)
}

// HistogramProgram builds the histogram kernel.
func HistogramProgram(v HistVariant, lay HistLayout, backoff int32, iters int) *Program {
	return kernels.HistogramProgram(v, lay, backoff, iters)
}

// HistogramSum totals the bins after a run.
func HistogramSum(sys *System, lay HistLayout) uint64 {
	return kernels.HistogramSum(sys, lay)
}

// Synchronization-pattern re-exports: the internal/patterns workload
// suite. Each pattern is an assembly kernel builder plus a registered
// sweep scenario — KindBarrier (central / tree / butterfly barriers),
// KindRCU (epoch flip-and-wait writer against concurrent readers) and
// KindCombLock (CC-Synch-style combining lock) — so the kinds run
// through RunSweeps, cmd/sweep and the policy grid exactly like the
// paper figures. The kernel builders are exported for direct System
// runs (see examples/barrier for the scenario route).
type (
	// WaitKind selects how a pattern kernel waits for a memory word to
	// change: spin, bounded-exponential-backoff spin, or Mwait sleep.
	WaitKind = locks.WaitKind
	// BarrierVariant selects the barrier algorithm.
	BarrierVariant = patterns.BarrierVariant
	// BarrierLayout places the barrier kernel's data sections.
	BarrierLayout = patterns.BarrierLayout
	// RCULayout places the RCU kernel's data sections.
	RCULayout = patterns.RCULayout
	// CombLayout places the combining-lock kernel's data sections.
	CombLayout = patterns.CombLayout
)

// Waiter strategies (the pattern scenarios' "wait" param).
const (
	// WaitSpin polls the word in a tight load loop.
	WaitSpin = locks.WaitSpin
	// WaitBackoffSpin polls with bounded exponential backoff.
	WaitBackoffSpin = locks.WaitBackoffSpin
	// WaitMwait sleeps on the word via the paper's Mwait primitive.
	WaitMwait = locks.WaitMwait
)

// Barrier algorithm variants (the barrier scenario's "variant" param).
const (
	// BarrierCentral is a central sense-reversing barrier.
	BarrierCentral = patterns.BarrierCentral
	// BarrierTree is a binary combining-tree barrier (power-of-two cores).
	BarrierTree = patterns.BarrierTree
	// BarrierButterfly is a dissemination-style butterfly barrier
	// (power-of-two cores).
	BarrierButterfly = patterns.BarrierButterfly
)

// The pattern scenario kinds, registered alongside the paper figures.
const (
	KindBarrier  = patterns.KindBarrier
	KindRCU      = patterns.KindRCU
	KindCombLock = patterns.KindCombLock
)

// The pattern scenarios' Job.Params keys.
const (
	// PatternParamWait selects waiter strategies, e.g. "spin,mwait"
	// (default: all three).
	PatternParamWait = patterns.ParamWait
	// PatternParamVariant selects barrier variants, e.g. "tree"
	// (default: all three; barrier kind only).
	PatternParamVariant = patterns.ParamVariant
	// PatternParamMaxCombine caps ops combined per lock hold
	// (comblock kind only; default 16).
	PatternParamMaxCombine = patterns.ParamMaxCombine
)

// ParseWaitKind parses "spin", "backoff" or "mwait".
func ParseWaitKind(s string) (WaitKind, error) { return locks.ParseWaitKind(s) }

// WaitKinds returns every waiter strategy in canonical order.
func WaitKinds() []WaitKind { return locks.WaitKinds() }

// ParseBarrierVariant parses "central", "tree" or "butterfly".
func ParseBarrierVariant(s string) (BarrierVariant, error) { return patterns.ParseBarrierVariant(s) }

// BarrierVariants returns every barrier variant in canonical order.
func BarrierVariants() []BarrierVariant { return patterns.BarrierVariants() }

// NewBarrierLayout allocates the barrier data sections from l for
// nActive participating cores.
func NewBarrierLayout(l *Layout, nActive int) BarrierLayout {
	return patterns.NewBarrierLayout(l, nActive)
}

// BarrierProgram builds the barrier kernel: each round publishes an
// episode number, crosses the barrier, and (with verify) checks no
// participant is still in an earlier episode. rounds <= 0 runs
// endlessly for windowed measurement; positive rounds halt after that
// many episodes.
func BarrierProgram(v BarrierVariant, w WaitKind, lay BarrierLayout, backoff int32, rounds int, verify bool) *Program {
	return patterns.BarrierProgram(v, w, lay, backoff, rounds, verify)
}

// NewRCULayout allocates the RCU data sections from l.
func NewRCULayout(l *Layout) RCULayout { return patterns.NewRCULayout(l) }

// InitRCU points the RCU published pointer at the first buffer; call
// once before running the programs.
func InitRCU(sys *System, lay RCULayout) { patterns.InitRCU(sys, lay) }

// RCUWriterProgram builds the RCU writer (core 0): publish a new
// version, then flip-and-wait twice to drain readers of the retired
// epoch before poisoning its buffer. syncs <= 0 runs endlessly.
func RCUWriterProgram(w WaitKind, lay RCULayout, backoff int32, syncs int) *Program {
	return patterns.RCUWriterProgram(w, lay, backoff, syncs)
}

// RCUReaderProgram builds an RCU reader: register on the current
// epoch's counter, dereference the published pointer, verify the
// version is untorn, deregister.
func RCUReaderProgram(lay RCULayout, bounded bool) *Program {
	return patterns.RCUReaderProgram(lay, bounded)
}

// NewCombLayout allocates the combining-lock data sections from l for
// nActive participating cores.
func NewCombLayout(l *Layout, nActive int) CombLayout {
	return patterns.NewCombLayout(l, nActive)
}

// InitCombLock seats the combining lock's tail sentinel; call once
// before running the program.
func InitCombLock(sys *System, lay CombLayout) { patterns.InitCombLock(sys, lay) }

// CombLockProgram builds the CC-Synch-style combining-lock kernel:
// each core enqueues a request node, and the lock holder combines up
// to maxCombine queued requests per hold. iters <= 0 runs endlessly.
func CombLockProgram(w WaitKind, lay CombLayout, maxCombine int, backoff int32, iters int) *Program {
	return patterns.CombLockProgram(w, lay, maxCombine, backoff, iters)
}
