// Custompolicy: a new synchronization primitive on the open Policy API.
//
// The platform doesn't know this hardware: the policy is defined here,
// registered through lrscwait.RegisterPolicy, and from that moment is
// addressable from Config.Policy, the cmd -policy flags and the sweep
// engine's policy grid axis exactly like the built-in reservation
// policies — with the litmus-grade memory model, activity accounting,
// caching and emitters all inherited. This file imports only the facade;
// no internal package is touched.
//
// The primitive is NB-FEB (Ha, Tsigas & Anshus: "NB-FEB: A Simple and
// Efficient Synchronization Primitive"), modelled at word granularity:
// every word carries a full/empty bit. A load-reserved (LR or LRwait)
// from a full word takes the word empty and returns its value — an
// acquiring read. While a word is empty, other cores' loads-reserved
// return the value without acquiring (OK=false, the refusal contract:
// software discovers it through the failing store-conditional and
// retries with backoff). The holder's SC/SCwait stores and sets the word
// full again. Unlike MemPool's single-slot LRSC there is no displacement
// — a holder cannot lose its acquisition to a competing LR — and unlike
// the LRSCwait queues nobody sleeps: NB-FEB is retry-based but
// per-address, a different point in the paper's design space.
//
// Run with: go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"
	"os"

	lrscwait "repro"
)

// nbfebPolicy is the registrable policy: name, parameter validation and
// per-bank adapter construction. It also implements the two optional
// hooks — EnergyWeights (NB-FEB pays a full/empty tag read-modify-write
// on every bank access) and AreaRows (one tag bit per word plus tag
// logic per bank), so Table II-style reports and the table1 sweep
// account for the custom hardware without editing either.
type nbfebPolicy struct{}

var (
	_ lrscwait.Policy              = nbfebPolicy{}
	_ lrscwait.PolicyEnergyWeights = nbfebPolicy{}
	_ lrscwait.PolicyAreaRows      = nbfebPolicy{}
)

func (nbfebPolicy) Name() string { return "nbfeb" }

func (p nbfebPolicy) Normalize(params lrscwait.PolicyParams, _ lrscwait.Topology) (lrscwait.Policy, error) {
	// No parameters of its own: reject unknown keys, tolerate the shared
	// policy-grid axes (queuecap/colibriq), which don't apply here.
	if err := params.Check(); err != nil {
		return nil, err
	}
	return p, nil
}

func (nbfebPolicy) NewAdapter(lrscwait.BankContext) lrscwait.Adapter {
	return &nbfebAdapter{empty: map[uint32]int{}}
}

// EnergyWeights charges every bank activation the extra full/empty tag
// read-modify-write on top of the calibrated model.
func (nbfebPolicy) EnergyWeights() lrscwait.EnergyParams {
	p := lrscwait.DefaultEnergy()
	p.PJPerBank += 0.04
	return p
}

// AreaRows contributes the NB-FEB tile to Table I: one tag bit per SPM
// word plus the tag-update logic, per bank.
func (nbfebPolicy) AreaRows(m lrscwait.AreaModel, nCores int) []lrscwait.AreaRow {
	const perBankKGE = 1.4 // 1024 tag bits + F/E update logic
	return []lrscwait.AreaRow{{
		Design:  "with NB-FEB",
		Params:  "1 F/E bit per word",
		AreaKGE: m.TileBase + float64(m.BanksPerTile)*perBankKGE,
	}}
}

// nbfebAdapter is the memory-side half: per-bank full/empty state.
// Words absent from the map are full; an entry records the core that
// took the word empty. Plain stores and AMOs force a word full (an
// intervening write invalidates the acquisition, like a reservation).
type nbfebAdapter struct {
	empty map[uint32]int // word address -> acquiring core
	stats lrscwait.AdapterStats
}

func (a *nbfebAdapter) Name() string { return "nbfeb" }

// AdapterStats feeds System.PolicyStats like any built-in adapter.
func (a *nbfebAdapter) AdapterStats() lrscwait.AdapterStats { return a.stats }

func (a *nbfebAdapter) Handle(req lrscwait.Request, s lrscwait.Storage) []lrscwait.Response {
	if resp, wrote, ok := lrscwait.HandleBasic(req, s); ok {
		if wrote {
			if _, held := a.empty[req.Addr]; held {
				delete(a.empty, req.Addr)
				a.stats.Invalidations++
			}
		}
		return []lrscwait.Response{resp}
	}
	switch req.Op {
	case lrscwait.OpLR, lrscwait.OpLRWait:
		holder, held := a.empty[req.Addr]
		if !held || holder == req.Src {
			a.empty[req.Addr] = req.Src
			a.stats.Grants++
			return []lrscwait.Response{{Dst: req.Src, Op: req.Op, Addr: req.Addr,
				Data: s.Read(req.Addr), OK: true}}
		}
		// Word empty (another core holds it): non-acquiring read. The
		// requester's SC will fail and software retries.
		a.stats.Refused++
		return []lrscwait.Response{{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: false}}
	case lrscwait.OpSC, lrscwait.OpSCWait:
		if holder, held := a.empty[req.Addr]; held && holder == req.Src {
			s.Write(req.Addr, req.Data)
			delete(a.empty, req.Addr) // store-and-set-full
			a.stats.SCSuccess++
			return []lrscwait.Response{{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: true}}
		}
		a.stats.SCFail++
		return []lrscwait.Response{{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false}}
	case lrscwait.OpMWait:
		// No monitor hardware: refuse, software falls back to polling.
		a.stats.Refused++
		return []lrscwait.Response{{Dst: req.Src, Op: req.Op, Addr: req.Addr,
			Data: s.Read(req.Addr), OK: false}}
	case lrscwait.OpWakeUpReq:
		return nil // no queues to wake
	}
	return []lrscwait.Response{{Dst: req.Src, Op: req.Op, Addr: req.Addr, OK: false}}
}

// incrementLoop builds an LR/SC increment kernel: add 1 to mem[addr]
// iters times, backing off on SC failure.
func incrementLoop(addr uint32, iters int, backoff int32) *lrscwait.Program {
	b := lrscwait.NewProgram()
	b.Li(lrscwait.A0, int32(addr))
	b.Li(lrscwait.T0, int32(iters))
	b.Li(lrscwait.T4, backoff)
	b.Label("retry")
	b.Lr(lrscwait.T2, lrscwait.A0)
	b.Addi(lrscwait.T2, lrscwait.T2, 1)
	b.Sc(lrscwait.T3, lrscwait.T2, lrscwait.A0)
	b.Beqz(lrscwait.T3, "ok")
	b.Pause(lrscwait.T4)
	b.J("retry")
	b.Label("ok")
	b.Mark()
	b.Addi(lrscwait.T0, lrscwait.T0, -1)
	b.Bnez(lrscwait.T0, "retry")
	b.Halt()
	return b.MustBuild()
}

// litmus checks NB-FEB's atomicity end to end: every core increments one
// fully contended counter through the new hardware; no update may be
// lost and the adapter must report a consistent SC ledger.
func litmus() {
	const iters = 20
	cfg := lrscwait.Config{Topo: lrscwait.SmallTopology(), Policy: "nbfeb"}
	sys := lrscwait.NewSystem(cfg, lrscwait.SameProgram(incrementLoop(0, iters, 16)))
	if !sys.RunUntilHalted(3_000_000) {
		log.Fatal("custompolicy: litmus did not halt (livelock?)")
	}
	n := cfg.Topo.NumCores()
	want := uint32(n * iters)
	if got := sys.ReadWord(0); got != want {
		log.Fatalf("custompolicy: counter = %d, want %d (lost updates!)", got, want)
	}
	grants, refused, scOK, scFail, _ := sys.PolicyStats()
	if scOK != uint64(n*iters) {
		log.Fatalf("custompolicy: SC successes = %d, want %d", scOK, n*iters)
	}
	if refused == 0 || scFail == 0 {
		log.Fatalf("custompolicy: full contention produced no refusals/failures (%d/%d)",
			refused, scFail)
	}
	fmt.Printf("litmus: %d cores × %d increments exact; %d grants, %d refusals, %d/%d SC ok/fail\n\n",
		n, iters, grants, refused, scOK, scFail)
}

func main() {
	if err := lrscwait.RegisterPolicy(nbfebPolicy{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered policies: %v\n\n", lrscwait.PolicyNames())

	litmus()

	cacheDir, err := os.MkdirTemp("", "custompolicy-cache-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	cache, err := lrscwait.OpenSweepCache(cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	runner := lrscwait.SweepRunner{Cache: cache}

	// The paper's Fig. 3 histogram study, re-run under the new hardware:
	// the policy grid axis replaces every curve's baked-in policy with
	// NB-FEB, plus the single-slot LRSC baseline for comparison — one
	// labelled series per (curve, policy). Nothing here implements
	// sweeping, caching or emitting.
	jobs := []lrscwait.SweepJob{{
		Kind: lrscwait.KindFig3, Topo: "small", Bins: []int{1, 4, 16},
		Warmup: 500, Measure: 2000,
		Policies: []string{"nbfeb", string(lrscwait.PolicyLRSCSingle)},
	}}
	results, stats, err := runner.RunAll(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run:  %s\n", stats.Summary())

	// A warm re-run is served entirely from the disk cache.
	if _, stats, err = runner.RunAll(jobs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm run:  %s\n\n", stats.Summary())

	fmt.Println(results[0].Table().String())
	j, err := results[0].JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JSON: %d bytes, deterministic — diff-able across runs\n\n", len(j))

	// The table1 scenario picks up the AreaRows hook: the NB-FEB tile
	// appears below the published configurations, no sweep code edited.
	area, _, err := runner.Run(lrscwait.SweepJob{Kind: lrscwait.KindTableI, Topo: "small"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(area.Table().String())
}
