// Histogram: the paper's motivating workload. Builds a shared histogram
// updated concurrently by all cores and compares the generic-RMW
// implementations — LR/SC with retries against the polling-free
// LRwait/SCwait on Colibri hardware — at high and low contention.
//
// Run with: go run ./examples/histogram
package main

import (
	"fmt"

	lrscwait "repro"
)

func measure(policy lrscwait.PolicyKind, variant lrscwait.HistVariant, bins int) (float64, lrscwait.Activity) {
	topo := lrscwait.MediumTopology()
	cfg := lrscwait.Config{Topo: topo, Policy: policy}
	l := lrscwait.NewLayout(0)
	lay := lrscwait.NewHistLayout(l, bins, topo.NumCores())
	prog := lrscwait.HistogramProgram(variant, lay, 128, 0)
	sys := lrscwait.NewSystem(cfg, lrscwait.SameProgram(prog))
	act := sys.Measure(2000, 8000)
	return act.Throughput(), act
}

func main() {
	fmt.Println("Concurrent histogram on a 64-core system (updates/cycle):")
	fmt.Println()
	fmt.Printf("%-10s %-28s %-28s\n", "", "high contention (1 bin)", "low contention (256 bins)")
	for _, row := range []struct {
		name    string
		policy  lrscwait.PolicyKind
		variant lrscwait.HistVariant
	}{
		{"lrsc", lrscwait.PolicyLRSCSingle, lrscwait.HistLRSC},
		{"colibri", lrscwait.PolicyColibri, lrscwait.HistLRSCWait},
	} {
		hi, hiAct := measure(row.policy, row.variant, 1)
		lo, _ := measure(row.policy, row.variant, 256)
		extra := ""
		if row.name == "colibri" {
			extra = fmt.Sprintf("   (waiters slept %d cycles)", hiAct.SleepCycles)
		} else {
			extra = fmt.Sprintf("   (retries burned %d backoff cycles)", hiAct.PauseCycles)
		}
		fmt.Printf("%-10s %-28.4f %-28.4f%s\n", row.name, hi, lo, extra)
	}
	fmt.Println()
	fmt.Println("Colibri serves contended reservations in order while waiting cores")
	fmt.Println("sleep; LR/SC burns cycles and bandwidth retrying failed SCs.")
}
