// Quickstart: build a small Colibri system, have every core perform 500
// atomic increments of one shared counter with the LRwait/SCwait pair, and
// show that the result is exact while the waiting cores slept instead of
// polling.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lrscwait "repro"
)

func main() {
	const iters = 500

	cfg := lrscwait.Config{
		Topo:   lrscwait.SmallTopology(),
		Policy: lrscwait.PolicyColibri,
	}
	nCores := cfg.Topo.NumCores()

	// The shared counter lives at word 0 (bank 0). Each core runs the
	// same kernel: LRwait -> add 1 -> SCwait, retrying on the (here
	// impossible) failure path, then halts.
	const counterAddr = 0
	b := lrscwait.NewProgram()
	b.Li(lrscwait.A0, counterAddr)
	b.Li(lrscwait.S0, iters)
	b.Label("loop")
	b.LrWait(lrscwait.T0, lrscwait.A0)              // t0 = lrwait(counter)
	b.Addi(lrscwait.T0, lrscwait.T0, 1)             // t0++
	b.ScWait(lrscwait.T1, lrscwait.T0, lrscwait.A0) // t1 = scwait
	b.Bnez(lrscwait.T1, "loop")                     // retry on failure
	b.Mark()
	b.Addi(lrscwait.S0, lrscwait.S0, -1)
	b.Bnez(lrscwait.S0, "loop")
	b.Halt()
	prog := b.MustBuild()

	sys := lrscwait.NewSystem(cfg, lrscwait.SameProgram(prog))
	if !sys.RunUntilHalted(20_000_000) {
		log.Fatal("quickstart: cores did not halt")
	}

	got := sys.ReadWord(counterAddr)
	want := uint32(nCores * iters)
	act := sys.Snapshot()
	fmt.Printf("cores: %d, increments per core: %d\n", nCores, iters)
	fmt.Printf("final counter: %d (want %d)\n", got, want)
	fmt.Printf("cycles: %d, throughput: %.3f updates/cycle\n",
		act.Cycle, act.Throughput())
	totalWait := act.SleepCycles + act.MemWaitCycles + act.PauseCycles
	fmt.Printf("waiting cores slept %.1f%% of their wait cycles (no polling traffic)\n",
		100*float64(act.SleepCycles)/float64(totalWait))
	if got != want {
		log.Fatal("quickstart: atomicity violated")
	}
}
