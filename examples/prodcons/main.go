// Producer/consumer with Mwait: core 0 publishes a stream of items through
// a shared mailbox; every other core monitors the mailbox with Mwait and
// accumulates what it sees — without a single polling load.
//
// This is the paper's Section III-C scenario: "a core may monitor a queue
// and be woken up when an element is pushed onto the queue."
//
// Run with: go run ./examples/prodcons
package main

import (
	"fmt"
	"log"

	lrscwait "repro"
)

const (
	items = 32
	// mailbox holds the current item (0 = empty); ack counts consumers
	// that have seen it.
	mailboxAddr = 0
	ackAddr     = 4
	resultBase  = 64
)

func producerProgram(nConsumers int) *lrscwait.Program {
	b := lrscwait.NewProgram()
	b.Li(lrscwait.A0, mailboxAddr)
	b.Li(lrscwait.A1, ackAddr)
	b.Li(lrscwait.S0, 1) // next item value
	b.Li(lrscwait.S1, items)
	b.Label("publish")
	// Publish the item.
	b.Sw(lrscwait.S0, lrscwait.A0, 0)
	// Wait (politely, with Mwait) until all consumers acknowledged.
	b.Label("acks")
	b.Lw(lrscwait.T0, lrscwait.A1, 0)
	b.Li(lrscwait.T1, int32(nConsumers))
	b.Beq(lrscwait.T0, lrscwait.T1, "next")
	b.MWait(lrscwait.T2, lrscwait.T0, lrscwait.A1) // sleep until ack changes
	b.J("acks")
	b.Label("next")
	b.Sw(lrscwait.Zero, lrscwait.A1, 0) // reset acks
	b.Addi(lrscwait.S0, lrscwait.S0, 1)
	b.Addi(lrscwait.S1, lrscwait.S1, -1)
	b.Bnez(lrscwait.S1, "publish")
	b.Halt()
	return b.MustBuild()
}

func consumerProgram() *lrscwait.Program {
	b := lrscwait.NewProgram()
	b.Li(lrscwait.A0, mailboxAddr)
	b.Li(lrscwait.A1, ackAddr)
	b.Li(lrscwait.S0, 0) // last item seen
	b.Li(lrscwait.S1, 0) // checksum
	b.Li(lrscwait.S2, items)
	b.Label("wait")
	// Sleep until the mailbox differs from the last item we saw.
	b.MWait(lrscwait.T0, lrscwait.S0, lrscwait.A0)
	b.Beq(lrscwait.T0, lrscwait.S0, "wait") // refused: retry
	b.Mv(lrscwait.S0, lrscwait.T0)
	b.Add(lrscwait.S1, lrscwait.S1, lrscwait.T0)
	b.Mark()
	// Acknowledge.
	b.Li(lrscwait.T1, 1)
	b.AmoAdd(lrscwait.Zero, lrscwait.T1, lrscwait.A1)
	b.Addi(lrscwait.S2, lrscwait.S2, -1)
	b.Bnez(lrscwait.S2, "wait")
	// Store the checksum.
	b.CoreID(lrscwait.T2)
	b.Slli(lrscwait.T2, lrscwait.T2, 2)
	b.Li(lrscwait.T3, resultBase)
	b.Add(lrscwait.T2, lrscwait.T2, lrscwait.T3)
	b.Sw(lrscwait.S1, lrscwait.T2, 0)
	b.Halt()
	return b.MustBuild()
}

func main() {
	cfg := lrscwait.Config{
		Topo:   lrscwait.SmallTopology(),
		Policy: lrscwait.PolicyColibri,
	}
	nCores := cfg.Topo.NumCores()
	nConsumers := nCores - 1

	producer := producerProgram(nConsumers)
	consumer := consumerProgram()
	sys := lrscwait.NewSystem(cfg, func(core int) *lrscwait.Program {
		if core == 0 {
			return producer
		}
		return consumer
	})
	if !sys.RunUntilHalted(10_000_000) {
		log.Fatal("prodcons: system did not finish")
	}

	// Every consumer must have seen every item exactly once:
	// checksum = 1+2+...+items.
	want := uint32(items * (items + 1) / 2)
	for c := 1; c < nCores; c++ {
		got := sys.ReadWord(resultBase + uint32(4*c))
		if got != want {
			log.Fatalf("consumer %d checksum = %d, want %d", c, got, want)
		}
	}
	act := sys.Snapshot()
	fmt.Printf("%d consumers received %d items each, checksums all correct\n",
		nConsumers, items)
	fmt.Printf("cycles: %d; consumer sleep cycles: %d (polling-free waiting)\n",
		act.Cycle, act.SleepCycles)
}
