// Customscenario: an out-of-tree workload on the open Scenario API.
//
// The sweep engine doesn't know this experiment: it is defined here,
// registered through lrscwait.RegisterScenario, and from that moment is
// addressable by SweepJob.Kind exactly like the built-in paper kinds —
// with the worker pool, the policy grid, the content-hash disk cache and
// the JSON/CSV/table emitters, none of which this file implements.
//
// The workload itself is a core-scaling study the paper doesn't plot:
// how single-counter atomic-increment throughput grows (and saturates)
// as more cores participate, for either the retry-based LR/SC kernel or
// the polling-free LRwait/SCwait kernel on Colibri hardware. The kernel
// is selected with a free-form scenario parameter, and a custom
// "sleep_cycles" metric is reported next to the throughput.
//
// Run with: go run ./examples/customscenario
package main

import (
	"fmt"
	"log"
	"os"

	lrscwait "repro"
)

// coreScaling sweeps active-core counts against one contended counter.
// SweepJob.Bins doubles as the generic coordinate axis (active cores);
// Params["kernel"] selects "lrscwait" (default) or "lrsc".
type coreScaling struct{}

func (coreScaling) Name() string { return "core-scaling" }

// GridAxes opts into the policy grid: `Backoffs`/`QueueCaps`/... cross-
// product this scenario's curves like any built-in figure.
func (coreScaling) GridAxes() bool { return true }

func (s coreScaling) Normalize(j lrscwait.SweepJob, topo lrscwait.Topology) (lrscwait.SweepJob, error) {
	if j.Warmup == 0 {
		j.Warmup = 1000
	}
	if j.Measure == 0 {
		j.Measure = 4000
	}
	if len(j.Bins) == 0 {
		// Default coordinate sweep: powers of two up to the core count.
		for n := 1; n <= topo.NumCores(); n *= 2 {
			j.Bins = append(j.Bins, n)
		}
	}
	for _, n := range j.Bins {
		if n > topo.NumCores() {
			return j, fmt.Errorf("core-scaling: %d active cores exceed the %d-core topology",
				n, topo.NumCores())
		}
	}
	if _, _, err := s.kernel(j); err != nil {
		return j, err
	}
	return j, nil
}

// kernel resolves the Params["kernel"] selection.
func (coreScaling) kernel(j lrscwait.SweepJob) (lrscwait.HistVariant, lrscwait.PolicyKind, error) {
	switch j.Params["kernel"] {
	case "", "lrscwait":
		return lrscwait.HistLRSCWait, lrscwait.PolicyColibri, nil
	case "lrsc":
		return lrscwait.HistLRSC, lrscwait.PolicyLRSCSingle, nil
	default:
		return 0, "", fmt.Errorf("core-scaling: unknown kernel %q (have lrscwait, lrsc)",
			j.Params["kernel"])
	}
}

func (s coreScaling) Curves(topo lrscwait.Topology, j lrscwait.SweepJob) ([]lrscwait.ScenarioCurve, error) {
	variant, policy, err := s.kernel(j)
	if err != nil {
		return nil, err
	}
	name := j.Params["kernel"]
	if name == "" {
		name = "lrscwait"
	}
	return []lrscwait.ScenarioCurve{{
		Name: name, NumPoints: len(j.Bins), Sim: true,
		// The cache-key fragment carries everything beyond the engine's
		// prefix (scenario name, topology, windows, Params): the
		// active-core coordinate plus the FULL effective policy — every
		// axis Run threads into the platform, fully resolved, so a grid
		// value that restates a default hits the grid-free entry while
		// distinct coordinates can never collapse onto one unit.
		Key: func(g lrscwait.SweepGridCoord, pt int) string {
			pol := g.Merge(lrscwait.PolicyConfig{Kind: policy})
			return fmt.Sprintf("active%d|%s", j.Bins[pt], pol.KeyFragment())
		},
		Run: func(g lrscwait.SweepGridCoord, pt int) lrscwait.SweepPoint {
			pol := g.Merge(lrscwait.PolicyConfig{Kind: policy})
			nActive := j.Bins[pt]
			l := lrscwait.NewLayout(0)
			lay := lrscwait.NewHistLayout(l, 1, topo.NumCores()) // 1 bin = one counter
			prog := lrscwait.HistogramProgram(variant, lay, pol.ResolveBackoff(), 0)
			idle := lrscwait.NewProgram()
			idle.Halt()
			idleProg := idle.MustBuild()
			sys := lrscwait.NewSystem(pol.Config(topo), func(core int) *lrscwait.Program {
				if core < nActive {
					return prog
				}
				return idleProg
			})
			act := sys.Measure(j.Warmup, j.Measure)
			p := lrscwait.SweepPoint{X: nActive}
			p.SetMetric(lrscwait.MetricThroughput, act.Throughput())
			p.SetMetric("sleep_cycles", float64(act.SleepCycles))
			return p
		},
	}}, nil
}

func main() {
	if err := lrscwait.RegisterScenario(coreScaling{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered scenarios: %v\n\n", lrscwait.Scenarios())

	cacheDir, err := os.MkdirTemp("", "customscenario-cache-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	cache, err := lrscwait.OpenSweepCache(cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	runner := lrscwait.SweepRunner{Cache: cache}

	// Two jobs, one shared worker pool: both kernels on the 16-core
	// machine, the LR/SC one additionally swept across a backoff grid.
	jobs := []lrscwait.SweepJob{
		{Kind: "core-scaling", Topo: "small"},
		{Kind: "core-scaling", Topo: "small",
			Params:   map[string]string{"kernel": "lrsc"},
			Backoffs: []int{0, 128}},
	}
	results, stats, err := runner.RunAll(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run:  %s\n", stats.Summary())

	// A warm re-run is served entirely from the disk cache.
	if _, stats, err = runner.RunAll(jobs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm run:  %s\n\n", stats.Summary())

	// Every emitter works without this file defining any of them: the
	// generic metric table (a ScenarioTableRenderer would customize it),
	// CSV, and deterministic JSON.
	for _, res := range results {
		fmt.Println(res.Table().String())
	}
	j, err := results[0].JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JSON for the first job: %d bytes, deterministic — diff-able across runs\n", len(j))
}
