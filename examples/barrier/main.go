// Barrier: the registered "barrier" sweep scenario through the public
// facade. The scenario (internal/patterns, re-exported as
// lrscwait.KindBarrier) sweeps central / tree / butterfly barriers
// with spinning, backoff-spinning and Mwait-sleeping waiters across
// core counts — the "polling even for non-atomic variables" problem
// the paper's Mwait instruction solves shows up directly as the gap
// between the spin and mwait curves.
//
// This demo is intentionally thin: it declares a SweepJob and lets the
// engine expand, schedule and render it, exactly like
// `sweep -kind barrier`. Build barrier kernels directly with
// lrscwait.BarrierProgram when you need a System of your own.
//
// Run with: go run ./examples/barrier
package main

import (
	"fmt"
	"log"

	lrscwait "repro"
)

func main() {
	job := lrscwait.SweepJob{
		Kind: lrscwait.KindBarrier,
		Topo: "small",
		// Defaults otherwise: all three variants, core counts swept in
		// powers of two up to the topology. Restricting the waiters keeps
		// the demo quick while preserving the spin-vs-sleep contrast.
		Params: map[string]string{lrscwait.PatternParamWait: "spin,mwait"},
	}
	results, st, err := lrscwait.RunSweeps(job)
	if err != nil {
		log.Fatalf("barrier sweep: %v", err)
	}
	fmt.Print(results[0].Table().String())
	fmt.Printf("\n%d points simulated in %s (%d workers)\n",
		st.Executed, st.Elapsed.Round(1_000_000), st.Workers)
	fmt.Println("lower is better: cycles per barrier crossing, averaged over all participating cores")
}
