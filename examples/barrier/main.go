// Barrier: a sense-reversing centralized barrier where the waiters sleep
// on the sense word with Mwait instead of spinning — the "polling even for
// non-atomic variables" problem the paper's Mwait instruction solves.
//
// All cores synchronize through R barrier rounds; between rounds each core
// bumps a private slot so the run can verify that no core ever raced ahead.
//
// Run with: go run ./examples/barrier
package main

import (
	"fmt"
	"log"

	lrscwait "repro"
)

const (
	rounds     = 16
	countAddr  = 0 // arrivals in the current round
	senseAddr  = 4 // round parity
	resultBase = 64
)

func barrierProgram(nCores int) *lrscwait.Program {
	b := lrscwait.NewProgram()
	b.Li(lrscwait.A0, countAddr)
	b.Li(lrscwait.A1, senseAddr)
	b.Li(lrscwait.S0, 0) // local sense
	b.Li(lrscwait.S1, rounds)
	// My progress slot: resultBase + 4*coreID.
	b.CoreID(lrscwait.T0)
	b.Slli(lrscwait.T0, lrscwait.T0, 2)
	b.Li(lrscwait.T1, resultBase)
	b.Add(lrscwait.S2, lrscwait.T0, lrscwait.T1)
	b.Li(lrscwait.S3, 0) // rounds completed

	b.Label("round")
	// Record progress before arriving.
	b.Sw(lrscwait.S3, lrscwait.S2, 0)
	// arrive = amoadd(count, 1) + 1.
	b.Li(lrscwait.T0, 1)
	b.AmoAdd(lrscwait.T1, lrscwait.T0, lrscwait.A0)
	b.Addi(lrscwait.T1, lrscwait.T1, 1)
	b.Li(lrscwait.T2, int32(nCores))
	b.Bne(lrscwait.T1, lrscwait.T2, "wait")
	// Last arrival: reset the counter, flip the sense (releases everyone).
	b.Sw(lrscwait.Zero, lrscwait.A0, 0)
	b.Xori(lrscwait.T3, lrscwait.S0, 1)
	b.Sw(lrscwait.T3, lrscwait.A1, 0)
	b.J("passed")
	b.Label("wait")
	// Sleep until the sense leaves my current value.
	b.MWait(lrscwait.T3, lrscwait.S0, lrscwait.A1)
	b.Beq(lrscwait.T3, lrscwait.S0, "wait") // refused: retry
	b.Label("passed")
	b.Xori(lrscwait.S0, lrscwait.S0, 1)
	b.Mark()
	b.Addi(lrscwait.S3, lrscwait.S3, 1)
	b.Bne(lrscwait.S3, lrscwait.S1, "round")
	b.Halt()
	return b.MustBuild()
}

func main() {
	cfg := lrscwait.Config{
		Topo:   lrscwait.SmallTopology(),
		Policy: lrscwait.PolicyColibri,
		// All 15 waiters sleep on one sense word: give the bank
		// controller enough head/tail pairs for the sense plus
		// bystander traffic.
		PolicyParams: lrscwait.PolicyParams{lrscwait.ParamColibriQ: "4"},
	}
	nCores := cfg.Topo.NumCores()
	sys := lrscwait.NewSystem(cfg, lrscwait.SameProgram(barrierProgram(nCores)))
	if !sys.RunUntilHalted(10_000_000) {
		log.Fatal("barrier: cores did not halt")
	}
	// Every core completed every round.
	for c := 0; c < nCores; c++ {
		if got := sys.ReadWord(resultBase + uint32(4*c)); got != rounds-1 {
			log.Fatalf("core %d last recorded round = %d, want %d", c, got, rounds-1)
		}
	}
	act := sys.Snapshot()
	fmt.Printf("%d cores crossed %d barriers in %d cycles (%.0f cycles/barrier)\n",
		nCores, rounds, act.Cycle, float64(act.Cycle)/rounds)
	fmt.Printf("waiters slept %d cycles in total — zero polling traffic on the sense word\n",
		act.SleepCycles)
}
