// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section V), plus ablations of the design choices called out
// in DESIGN.md. Each benchmark runs the corresponding experiment on the
// quarter-scale Medium topology (64 cores) so the full suite completes in
// minutes; the cmd/ tools run the same code at the paper's 256-core scale.
//
// The interesting output is the reported custom metric (simulated
// operations per simulated cycle, worker-relative throughput, pJ/op, or
// kGE) — wall-clock ns/op measures only host simulation speed.
package lrscwait_test

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/area"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/platform"
	"repro/internal/sweep"
)

const (
	benchWarmup  = 1500
	benchMeasure = 5000
)

func benchTopo() noc.Topology { return noc.Medium() }

// BenchmarkFig3 regenerates Fig. 3: histogram throughput of the LRSCwait
// implementations and standard atomics at varying contention.
func BenchmarkFig3(b *testing.B) {
	topo := benchTopo()
	for _, spec := range experiments.Fig3Specs(topo.NumCores()) {
		for _, bins := range []int{1, 16, 256} {
			name := fmt.Sprintf("%s/bins=%d", spec.Name, bins)
			b.Run(name, func(b *testing.B) {
				var tp float64
				for i := 0; i < b.N; i++ {
					p := experiments.RunHistogramPoint(spec, topo, bins, benchWarmup, benchMeasure)
					tp = p.Throughput
				}
				b.ReportMetric(tp, "simops/cycle")
			})
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4: the lock implementations against raw
// Colibri and LRSC.
func BenchmarkFig4(b *testing.B) {
	topo := benchTopo()
	for _, spec := range experiments.Fig4Specs() {
		for _, bins := range []int{1, 16, 256} {
			name := fmt.Sprintf("%s/bins=%d", spec.Name, bins)
			b.Run(name, func(b *testing.B) {
				var tp float64
				for i := 0; i < b.N; i++ {
					p := experiments.RunHistogramPoint(spec, topo, bins, benchWarmup, benchMeasure)
					tp = p.Throughput
				}
				b.ReportMetric(tp, "simops/cycle")
			})
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5: relative matmul throughput under
// atomics interference (the reported metric is worker throughput relative
// to an interference-free run; 1.0 = unaffected).
func BenchmarkFig5(b *testing.B) {
	topo := benchTopo()
	n := topo.NumCores()
	ratios := experiments.PaperRatios(n)
	// Backoff < 0 disables the retry backoff: at this reduced scale the
	// poller population cannot saturate the hot tile through a 128-cycle
	// backoff (cmd/interference at 256 cores keeps the paper's 128).
	specs := []experiments.HistSpec{
		{Name: "colibri", Variant: kernels.HistLRSCWait, Policy: platform.PolicyColibri, Backoff: -1},
		{Name: "lrsc", Variant: kernels.HistLRSC, Policy: platform.PolicyLRSCSingle, Backoff: -1},
	}
	for _, spec := range specs {
		for _, ratio := range []experiments.InterferenceRatio{ratios[0], ratios[len(ratios)-1]} {
			name := fmt.Sprintf("%s/%d:%d", spec.Name, ratio.Pollers, ratio.Workers)
			b.Run(name, func(b *testing.B) {
				var rel float64
				for i := 0; i < b.N; i++ {
					p := experiments.RunInterferencePoint(spec, topo, ratio, 1, 64,
						2*benchWarmup, 3*benchMeasure)
					rel = p.Rel
				}
				b.ReportMetric(rel, "rel-throughput")
			})
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6: queue accesses/cycle vs core count.
func BenchmarkFig6(b *testing.B) {
	topo := benchTopo()
	for _, spec := range experiments.Fig6Specs() {
		for _, cores := range []int{1, 8, topo.NumCores()} {
			name := fmt.Sprintf("%s/cores=%d", spec.Name, cores)
			b.Run(name, func(b *testing.B) {
				var tp float64
				for i := 0; i < b.N; i++ {
					p := experiments.RunQueuePoint(spec, topo, cores, benchWarmup, 2*benchMeasure)
					tp = p.Throughput
				}
				b.ReportMetric(tp, "simops/cycle")
			})
		}
	}
}

// BenchmarkTableI regenerates Table I (the area model; the metric is the
// modelled tile area in kGE).
func BenchmarkTableI(b *testing.B) {
	m := area.Default()
	for _, row := range []struct {
		name string
		eval func() float64
	}{
		{"tile", m.Tile},
		{"lrscwait1", func() float64 { return m.TileWithWaitQueue(1) }},
		{"lrscwait8", func() float64 { return m.TileWithWaitQueue(8) }},
		{"lrscwait-ideal", func() float64 { return m.TileWithWaitQueue(256) }},
		{"colibri-4addr", func() float64 { return m.TileWithColibri(4) }},
	} {
		b.Run(row.name, func(b *testing.B) {
			var kge float64
			for i := 0; i < b.N; i++ {
				kge = row.eval()
			}
			b.ReportMetric(kge, "kGE")
		})
	}
}

// BenchmarkTableII regenerates Table II (energy per atomic access at the
// highest contention; the metric is pJ/op).
func BenchmarkTableII(b *testing.B) {
	topo := benchTopo()
	params := energy.Default()
	for _, spec := range experiments.TableIISpecs() {
		b.Run(spec.Name, func(b *testing.B) {
			var pj float64
			for i := 0; i < b.N; i++ {
				p := experiments.RunHistogramPoint(spec, topo, 1, benchWarmup, 2*benchMeasure)
				pj = params.PerOpPJ(p.Activity)
			}
			b.ReportMetric(pj, "pJ/op")
		})
	}
}

// BenchmarkSweepEngine regenerates the Fig. 3 sweep through the
// internal/sweep orchestration engine at one worker versus GOMAXPROCS
// workers — the wall-clock ns/op ratio is the engine's parallel speedup
// (simulation points are independent Systems, so it should approach the
// host core count for large sweeps).
func BenchmarkSweepEngine(b *testing.B) {
	job := sweep.Job{Kind: sweep.Fig3, Topo: "medium",
		Bins: []int{1, 16, 256}, Warmup: benchWarmup, Measure: benchMeasure}
	for _, w := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=max", 0}} {
		b.Run(w.name, func(b *testing.B) {
			r := sweep.Runner{Workers: w.workers}
			var st sweep.RunStats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = r.Run(job)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Units), "points")
		})
	}
}

// BenchmarkAblationBackoff sweeps the maximum retry backoff of the LRSC
// histogram at full contention — the knob DESIGN.md calls out as shaping
// the LRSC collapse.
func BenchmarkAblationBackoff(b *testing.B) {
	topo := benchTopo()
	for _, cap := range []int32{-1, 32, 128, 512} {
		name := fmt.Sprintf("cap=%d", cap)
		if cap < 0 {
			name = "cap=0"
		}
		spec := experiments.HistSpec{Name: "lrsc", Variant: kernels.HistLRSC,
			Policy: platform.PolicyLRSCSingle, Backoff: cap}
		b.Run(name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				p := experiments.RunHistogramPoint(spec, topo, 1, benchWarmup, benchMeasure)
				tp = p.Throughput
			}
			b.ReportMetric(tp, "simops/cycle")
		})
	}
}

// BenchmarkAblationFIFODepth varies the fabric FIFO depth: shallow FIFOs
// with backpressure are what turn a hot bank into tree saturation (the
// Fig. 5 mechanism); deep FIFOs soak up the interference.
func BenchmarkAblationFIFODepth(b *testing.B) {
	topo := benchTopo()
	n := topo.NumCores()
	ratio := experiments.InterferenceRatio{Pollers: n - 2, Workers: 2}
	for _, depth := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				rel = interferenceRelWithDepth(topo, ratio, depth)
			}
			b.ReportMetric(rel, "rel-throughput")
		})
	}
}

// interferenceRelWithDepth builds the Fig. 5 single point with a custom
// fabric depth (no-backoff LRSC pollers, 1 bin).
func interferenceRelWithDepth(topo noc.Topology, ratio experiments.InterferenceRatio, depth int) float64 {
	build := func(loaded bool) (*platform.System, []int) {
		cfg := platform.Config{Topo: topo, Policy: platform.PolicyLRSCSingle, FIFODepth: depth}
		l := platform.NewLayout(0)
		histLay := kernels.NewHistLayout(l, 1, topo.NumCores())
		matLay := kernels.NewMatmulLayout(l, 16)
		poller := kernels.HistogramProgram(kernels.HistLRSC, histLay, 0, 0)
		idle := func() *isa.Program { bb := isa.NewBuilder(); bb.Halt(); return bb.MustBuild() }()
		workerStart := topo.NumCores() - ratio.Workers
		sys := platform.New(cfg, func(core int) *isa.Program {
			if core >= workerStart {
				return kernels.MatmulProgram(matLay, core-workerStart, ratio.Workers, true)
			}
			if loaded && core < ratio.Pollers {
				return poller
			}
			return idle
		})
		kernels.InitMatmul(sys, matLay)
		var workers []int
		for c := workerStart; c < topo.NumCores(); c++ {
			workers = append(workers, c)
		}
		return sys, workers
	}
	tp := func(loaded bool) float64 {
		sys, workers := build(loaded)
		act := sys.Measure(2*benchWarmup, 6*benchMeasure)
		var ops uint64
		for _, w := range workers {
			ops += act.OpsPerCore[w]
		}
		return float64(ops) / float64(act.Cycle)
	}
	base := tp(false)
	if base == 0 {
		return 0
	}
	return tp(true) / base
}

// BenchmarkAblationColibriQueues varies the number of head/tail register
// pairs per bank controller with two contended addresses living in the
// same bank: one pair forces the second address into the refusal/retry
// fallback, two or more pairs let both queues sleep.
func BenchmarkAblationColibriQueues(b *testing.B) {
	topo := benchTopo()
	for _, q := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("queues=%d", q), func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				tp = twoAddressThroughput(topo, q)
			}
			b.ReportMetric(tp, "simops/cycle")
		})
	}
}

// twoAddressThroughput runs half the cores against word 0 and half
// against word numBanks (same bank, different address) with LRwait/SCwait.
func twoAddressThroughput(topo noc.Topology, queues int) float64 {
	cfg := platform.Config{Topo: topo, Policy: platform.PolicyColibri,
		PolicyParams: platform.PolicyParams{platform.ParamColibriQ: strconv.Itoa(queues)}}
	nBanks := topo.NumBanks()
	prog := func(addr uint32) *isa.Program {
		bb := isa.NewBuilder()
		bb.Li(isa.A0, int32(addr))
		bb.Li(isa.S4, 128)
		bb.Li(isa.S7, 33)
		bb.Label("loop")
		bb.LrWait(isa.T1, isa.A0)
		bb.Addi(isa.T1, isa.T1, 1)
		bb.ScWait(isa.T2, isa.T1, isa.A0)
		bb.Beqz(isa.T2, "ok")
		bb.Pause(isa.S7)
		bb.J("loop")
		bb.Label("ok")
		bb.Mark()
		bb.J("loop")
		return bb.MustBuild()
	}
	progA, progB := prog(0), prog(uint32(4*nBanks)) // both map to bank 0
	sys := platform.New(cfg, func(core int) *isa.Program {
		if core%2 == 0 {
			return progA
		}
		return progB
	})
	act := sys.Measure(benchWarmup, benchMeasure)
	return act.Throughput()
}
