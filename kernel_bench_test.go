// Benchmarks of the activity-driven simulation kernel against the dense
// reference loop, plus the TeraPool-scale smoke test. The interesting
// metric is simulated cycles per wall-clock second: on sleep-heavy
// workloads the scheduled kernel's per-cycle cost is proportional to
// live traffic, so its advantage over dense ticking grows with core
// count — the simulator-side analogue of the paper's claim that sleeping
// cores must cost nothing. Results are recorded in BENCH_kernel.json.
package lrscwait_test

import (
	"fmt"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/platform"
)

// kernelTopos are the scaling points of the Tick benchmarks.
func kernelTopos() []struct {
	name string
	topo noc.Topology
} {
	return []struct {
		name string
		topo noc.Topology
	}{
		{"cores=16", noc.Small()},
		{"cores=256", noc.MemPool256()},
		{"cores=1024", noc.TeraPool1024()},
	}
}

// sleeperSystem builds the sleep-heavy workload: every core issues one
// LRwait on word 0; exactly one is granted the reservation and spins on
// arithmetic forever (never releasing), while every other core sleeps in
// the bank's wait queue — the paper's polling-free wait, with N-1 of N
// cores contributing zero traffic.
func sleeperSystem(topo noc.Topology, parts int) *platform.System {
	prog := func() *isa.Program {
		b := isa.NewBuilder()
		b.Li(isa.A0, 0)
		b.LrWait(isa.T0, isa.A0)
		b.Label("spin")
		b.Addi(isa.T1, isa.T1, 1)
		b.J("spin")
		return b.MustBuild()
	}()
	cfg := platform.Config{Topo: topo, Policy: platform.PolicyWaitQueue, Partitions: parts}
	return platform.New(cfg, platform.SameProgram(prog))
}

// hotSystem builds the traffic-heavy counterpart: every core hammers the
// AMO histogram continuously, so nothing ever sleeps and the scheduler
// can skip no one — its bookkeeping overhead against the dense loop.
func hotSystem(topo noc.Topology, parts int) *platform.System {
	lay := platform.NewLayout(0)
	hist := kernels.NewHistLayout(lay, 256, topo.NumCores())
	prog := kernels.HistogramProgram(kernels.HistAmoAdd, hist, 0, 0)
	cfg := platform.Config{Topo: topo, Policy: platform.PolicyPlain, Partitions: parts}
	return platform.New(cfg, platform.SameProgram(prog))
}

// benchTickKernels measures simulated cycles/second of the scheduled,
// dense and partitioned loops on the same prebuilt workload. The par
// variants shard the system across OS threads (auto = adaptive: measure
// per-cycle work over a calibration window, then shard only if it pays;
// par8 pins eight partitions for cross-host comparability) —
// bit-identical results, so the only interesting number is the rate.
func benchTickKernels(b *testing.B, build func(noc.Topology, int) *platform.System, cyclesPerIter int) {
	for _, tc := range kernelTopos() {
		for _, k := range []struct {
			name  string
			parts int
			run   func(sys *platform.System, n int)
		}{
			{"kernel=sched", 0, func(sys *platform.System, n int) { sys.Run(n) }},
			{"kernel=dense", 0, func(sys *platform.System, n int) { sys.RunDense(n) }},
			{"kernel=par", platform.PartitionsAuto, func(sys *platform.System, n int) { sys.RunParallel(n) }},
			{"kernel=par8", 8, func(sys *platform.System, n int) { sys.RunParallel(n) }},
		} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, k.name), func(b *testing.B) {
				if testing.Short() && k.name == "kernel=dense" && tc.topo.NumCores() >= 1024 {
					// Dense ticking walks all ~5k components of the
					// 1024-core machine every cycle (~300ms per 2k-cycle
					// iteration); -short keeps the smoke run snappy and
					// the 16/256-core variants retain the comparison.
					b.Skip("skipping dense 1024-core variant in -short mode")
				}
				sys := build(tc.topo, k.parts)
				// Settle the workload (grants delivered, sleepers
				// parked) on the loop under test before timing.
				k.run(sys, 500)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.run(sys, cyclesPerIter)
				}
				b.StopTimer()
				cycles := float64(cyclesPerIter) * float64(b.N)
				b.ReportMetric(cycles/b.Elapsed().Seconds(), "cycles/sec")
			})
		}
	}
}

// quietSystem builds a traffic-heavy but tile-local workload: every core
// hammers an AMO counter in its own tile's banks forever. The link and
// group router classes never carry a flit, so the partitioned kernel's
// quiet-cross-tile predicate holds every cycle and epoch batching fuses
// the four phase barriers into one — the regime the batching optimisation
// targets. Compare kernel=par8 fused=on vs fused=off.
func quietSystem(topo noc.Topology, parts int) *platform.System {
	prog := func() *isa.Program {
		b := isa.NewBuilder()
		b.CoreID(isa.T0)
		b.Srli(isa.T1, isa.T0, 2) // tile = core / CoresPerTile
		b.Slli(isa.T1, isa.T1, 4) // first bank word of the tile
		b.Andi(isa.T2, isa.T0, 3)
		b.Add(isa.T1, isa.T1, isa.T2)
		b.Slli(isa.T1, isa.T1, 2) // byte address of a same-tile bank word
		b.Li(isa.T2, 1)
		b.Label("loop")
		b.AmoAdd(isa.Zero, isa.T2, isa.T1)
		b.J("loop")
		return b.MustBuild()
	}()
	cfg := platform.Config{Topo: topo, Policy: platform.PolicyPlain, Partitions: parts}
	return platform.New(cfg, platform.SameProgram(prog))
}

// BenchmarkTickQuietSpan isolates the epoch-batching win: a fully busy
// machine whose traffic never crosses a tile boundary. With fusing on,
// the partitioned kernel issues one barrier per cycle instead of four;
// the delta between fused=on and fused=off is pure synchronisation
// overhead (on a 1-CPU host it shows up as reduced par8 overhead rather
// than speedup over sched).
func BenchmarkTickQuietSpan(b *testing.B) {
	const cyclesPerIter = 2000
	defer func(prev bool) { platform.FusedCyclesEnabled = prev }(platform.FusedCyclesEnabled)
	for _, tc := range kernelTopos() {
		for _, k := range []struct {
			name  string
			parts int
			fused bool
		}{
			{"kernel=sched", 0, true},
			{"kernel=par8/fused=on", 8, true},
			{"kernel=par8/fused=off", 8, false},
		} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, k.name), func(b *testing.B) {
				platform.FusedCyclesEnabled = k.fused
				sys := quietSystem(tc.topo, k.parts)
				sys.Run(500)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys.Run(cyclesPerIter)
				}
				b.StopTimer()
				cycles := float64(cyclesPerIter) * float64(b.N)
				b.ReportMetric(cycles/b.Elapsed().Seconds(), "cycles/sec")
			})
		}
	}
}

// TestTickSteadyStateZeroAlloc pins the hot path's allocation-free
// invariant: once a busy workload has settled (scratch buffers grown,
// wake heap at capacity), a System.Tick must not touch the heap at all —
// for the scheduled kernel and for the partitioned kernel's inline Tick
// alike. CI fails on any regression here, because a single alloc per
// component tick is what the zero-alloc refactor removed.
func TestTickSteadyStateZeroAlloc(t *testing.T) {
	for _, k := range []struct {
		name  string
		parts int
	}{
		{"kernel=sched", 0},
		{"kernel=par2", 2},
	} {
		t.Run(k.name, func(t *testing.T) {
			sys := hotSystem(noc.Small(), k.parts)
			sys.Run(500) // settle: grants delivered, scratch buffers warm
			if avg := testing.AllocsPerRun(100, func() { sys.Tick() }); avg != 0 {
				t.Errorf("steady-state Tick allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}

// BenchmarkTickIdleSleepers: N-1 of N cores asleep in an LRwait queue.
// The scheduled kernel ticks one core slot, one or two routers and a
// bank per cycle regardless of machine size; the dense loop walks every
// component. This is the workload behind the issue's >=5x target at 256+
// cores.
func BenchmarkTickIdleSleepers(b *testing.B) {
	benchTickKernels(b, sleeperSystem, 5000)
}

// BenchmarkTickHot: every core continuously busy — the scheduler's
// worst case, bounding its bookkeeping overhead over dense ticking.
func BenchmarkTickHot(b *testing.B) {
	benchTickKernels(b, hotSystem, 2000)
}

// BenchmarkTickInstrumented gates the cost of the observability layer:
// the scheduled kernel with its always-on KernelStats counting plus a
// full PublishObs into the process registry per iteration (the cold-path
// publish a sweep point pays once). Compare its cycles/sec against
// BenchmarkTickIdleSleepers/kernel=sched of the pre-instrumentation
// baseline (BENCH_kernel.json; deltas recorded in BENCH_obs.json) —
// the budget is <3% on the sleeper hot path.
func BenchmarkTickInstrumented(b *testing.B) {
	const cyclesPerIter = 5000
	for _, tc := range kernelTopos() {
		for _, w := range []struct {
			name  string
			build func(noc.Topology, int) *platform.System
		}{
			{"load=sleepers", sleeperSystem},
			{"load=hot", hotSystem},
		} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, w.name), func(b *testing.B) {
				sys := w.build(tc.topo, 0)
				reg := obs.NewRegistry()
				sys.Run(500)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys.Run(cyclesPerIter)
					sys.PublishObs(reg)
				}
				b.StopTimer()
				cycles := float64(cyclesPerIter) * float64(b.N)
				b.ReportMetric(cycles/b.Elapsed().Seconds(), "cycles/sec")
			})
		}
	}
}

// TestTeraPoolRunUntilHaltedSmoke drives the full 1024-core TeraPool
// topology end to end through the scheduled kernel: every core
// atomically increments its own word (1024 distinct banks), halts, and
// the machine must reach the all-halted, quiescent state. Fast enough
// for -short: after the short burst of traffic the kernel only ever
// touches live components.
func TestTeraPoolRunUntilHaltedSmoke(t *testing.T) {
	topo := noc.TeraPool1024()
	prog := func() *isa.Program {
		b := isa.NewBuilder()
		b.CoreID(isa.T0)
		b.Slli(isa.T0, isa.T0, 2) // word index = core ID
		b.Li(isa.T1, 1)
		b.AmoAdd(isa.Zero, isa.T1, isa.T0)
		b.Halt()
		return b.MustBuild()
	}()
	sys := platform.New(platform.Config{Topo: topo, Policy: platform.PolicyLRSCSingle},
		platform.SameProgram(prog))
	if !sys.RunUntilHalted(100000) {
		t.Fatal("TeraPool system did not halt")
	}
	if !sys.Quiescent() {
		t.Fatal("halted TeraPool system not quiescent")
	}
	for c := 0; c < topo.NumCores(); c++ {
		if got := sys.ReadWord(uint32(4 * c)); got != 1 {
			t.Fatalf("core %d counter = %d, want 1", c, got)
		}
	}
	act := sys.Snapshot()
	if act.TotalOps != 0 || act.Instrs == 0 {
		t.Fatalf("unexpected activity: %d ops, %d instrs", act.TotalOps, act.Instrs)
	}
	if act.BankAccesses < uint64(topo.NumCores()) {
		t.Fatalf("bank accesses = %d, want >= %d", act.BankAccesses, topo.NumCores())
	}
}
