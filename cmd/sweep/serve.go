package main

// The service subcommands: `sweep serve` turns this binary into a
// long-lived sweep node (HTTP results API + shared cache + worker
// coordinator), `sweep worker` joins such a node and computes leased
// grid points. Both are dispatched from main before ordinary flag
// parsing, so the classic one-shot CLI is untouched.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/sweep"
)

// openBackend resolves the -backend/-cache flag pair into a point
// store: the disk cache alone ("disk", the default), a remote node
// ("http=URL"), or disk-in-front-of-remote ("tiered=URL"). The second
// return is the disk layer when one exists (for Dir/Stats/GC surfaces
// the Backend interface doesn't carry).
func openBackend(spec, cacheFlag string) (sweep.Backend, *sweep.Cache, error) {
	kind, arg, _ := strings.Cut(spec, "=")
	switch kind {
	case "", "disk":
		c, err := sweep.OpenCacheFlag(cacheFlag, true)
		if err != nil || c == nil {
			return nil, nil, err
		}
		return c, c, nil
	case "http":
		if arg == "" {
			return nil, nil, fmt.Errorf("-backend http needs a URL (http=http://host:8080)")
		}
		return fabric.NewRemote(arg), nil, nil
	case "tiered":
		if arg == "" {
			return nil, nil, fmt.Errorf("-backend tiered needs a URL (tiered=http://host:8080)")
		}
		c, err := sweep.OpenCacheFlag(cacheFlag, true)
		if err != nil {
			return nil, nil, err
		}
		if c == nil {
			return nil, nil, fmt.Errorf("-backend tiered needs the disk layer (-cache off conflicts)")
		}
		return fabric.NewTiered(c, fabric.NewRemote(arg)), c, nil
	default:
		return nil, nil, fmt.Errorf("unknown backend %q (have disk, http=URL, tiered=URL)", spec)
	}
}

// backendName labels a possibly-nil backend for log lines.
func backendName(b sweep.Backend) string {
	if b == nil {
		return "none"
	}
	return b.Name()
}

// parseSize parses a byte budget with an optional K/M/G/T suffix
// (binary multiples): "512M", "2G", "1048576".
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult = 1 << 10
	case 'M', 'm':
		mult = 1 << 20
	case 'G', 'g':
		mult = 1 << 30
	case 'T', 't':
		mult = 1 << 40
	}
	if mult > 1 {
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q (want bytes, optionally suffixed K/M/G/T)", s)
	}
	return n * mult, nil
}

// runServe is the `sweep serve` subcommand.
func runServe(args []string) {
	fs := flag.NewFlagSet("sweep serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	backendFlag := fs.String("backend", "", "point store: \"disk\" (default), \"http=URL\" or \"tiered=URL\"")
	cacheFlag := fs.String("cache", "", "disk cache: directory, \"on\" (default, ~/.cache/lrscwait) or \"off\"")
	workers := fs.Int("workers", 0, "local compute pool width (0 = GOMAXPROCS)")
	partitions := fs.Int("partitions", 0, "kernel partitions per simulated system (see `sweep -help`)")
	quiet := fs.Bool("quiet", false, "suppress request logging on stderr")
	fs.Parse(args)
	platform.SetDefaultPartitions(*partitions)

	backend, _, err := openBackend(*backendFlag, *cacheFlag)
	if err != nil {
		sweep.Fatal("sweep serve", err)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	opts := []fabric.ServerOption{fabric.WithWorkers(*workers)}
	if !*quiet {
		opts = append(opts, fabric.WithLog(logf))
	}
	srv := fabric.NewServer(backend, opts...)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		sweep.Fatal("sweep serve", err)
	}
	fmt.Fprintf(os.Stderr, "sweep serve: listening on %s (backend %s)\n", ln.Addr(), backendName(backend))

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		// In-flight computations get a grace window; idle keep-alives
		// drop immediately.
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		sweep.Fatal("sweep serve", err)
	}
	<-done
	fmt.Fprintln(os.Stderr, "sweep serve: shutdown complete")
}

// runWorker is the `sweep worker` subcommand.
func runWorker(args []string) {
	fs := flag.NewFlagSet("sweep worker", flag.ExitOnError)
	join := fs.String("join", "", "coordinator base URL (required), e.g. http://host:8080")
	name := fs.String("name", "", "worker name in coordinator logs (default host:pid)")
	workers := fs.Int("workers", 0, "local compute pool width (0 = GOMAXPROCS)")
	maxPoints := fs.Int("max-points", 0, "points per lease (0 = coordinator default)")
	wait := fs.Duration("wait", 0, "long-poll duration per lease request (0 = coordinator default)")
	idleExit := fs.Duration("idle-exit", 0, "exit after this much continuous idle time (0 = serve forever)")
	partitions := fs.Int("partitions", 0, "kernel partitions per simulated system (see `sweep -help`)")
	quiet := fs.Bool("quiet", false, "suppress progress on stderr")
	fs.Parse(args)
	platform.SetDefaultPartitions(*partitions)
	if *join == "" {
		sweep.Fatal("sweep worker", fmt.Errorf("-join URL is required"))
	}

	w := &fabric.Worker{
		Coordinator: *join,
		Name:        *name,
		Workers:     *workers,
		MaxPoints:   *maxPoints,
		Wait:        *wait,
		IdleExit:    *idleExit,
	}
	if !*quiet {
		w.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sweep "+format+"\n", args...)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		sweep.Fatal("sweep worker", err)
	}
}
