// Command sweep regenerates any subset of the paper's figures and tables
// in one parallel shot through the internal/sweep engine: every
// independent simulation point of every selected experiment enters one
// worker pool, finished points are memoized in a content-hash disk cache
// (~/.cache/lrscwait by default), and results print as aligned tables,
// RFC 4180 CSV, or deterministic JSON.
//
// Beyond the paper's fixed spec sets, the -grid flag turns the policy
// parameters themselves into sweep axes: the cross-product of
// queuecap × colibriq × backoff values runs every curve of the selected
// figures at every grid coordinate, one labelled series each.
//
// Usage:
//
//	sweep [-fig 3,4,5,6] [-table 1,2] [-kind fig3,...,table2] [-all]
//	      [-topo mempool|medium|small] [-bins 1,2,4,...]
//	      [-grid 'queuecap=0,1,2 colibriq=2,4,8 backoff=0,64']
//	      [-warmup N] [-measure N] [-matn N] [-ms]
//	      [-workers N] [-cache DIR|on|off] [-json DIR] [-csvdir DIR]
//	      [-csv] [-quiet]
//
// Examples:
//
//	sweep -all                       # full evaluation, paper scale
//	sweep -fig 3 -topo small         # one figure, 16-core machine
//	sweep -fig 3,4,5,6 -table 1,2 -topo medium -json out/
//	sweep -kind fig3 -grid 'queuecap=0,1,2,4'   # wait-queue sizing study
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/sweep"
)

func fail(format string, args ...any) {
	sweep.Fatal("sweep", fmt.Errorf(format, args...))
}

var figKinds = map[string]sweep.Kind{
	"3": sweep.Fig3, "4": sweep.Fig4, "5": sweep.Fig5, "6": sweep.Fig6,
}

var tableKinds = map[string]sweep.Kind{
	"1": sweep.TableI, "2": sweep.TableII,
}

// validKinds accepts the -kind selector values (the engine's kind names).
var validKinds = func() map[sweep.Kind]bool {
	m := map[sweep.Kind]bool{}
	for _, k := range sweep.Kinds() {
		m[k] = true
	}
	return m
}()

// splitList parses a comma-separated selector like "3,4,6".
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(tok))
	}
	return out
}

func main() {
	figs := flag.String("fig", "", "figures to regenerate (comma-separated subset of 3,4,5,6)")
	tables := flag.String("table", "", "tables to regenerate (comma-separated subset of 1,2)")
	kinds := flag.String("kind", "", "experiments by kind name (comma-separated subset of fig3,fig4,fig5,fig6,fig6ms,table1,table2)")
	gridFlag := flag.String("grid", "", "policy grid for figure sweeps, e.g. 'queuecap=0,1,2,4 colibriq=2,4,8 backoff=0,64'")
	all := flag.Bool("all", false, "regenerate every figure and table")
	topo := flag.String("topo", "mempool", "topology: mempool (paper, 256 cores), medium (64), small (16)")
	binsFlag := flag.String("bins", "", "bin counts for figs 3/4/5 (default: per-figure paper sweep)")
	warmup := flag.Int("warmup", 0, "warm-up cycles (0 = per-experiment default, negative = literally zero)")
	measure := flag.Int("measure", 0, "measured cycles (0 = per-experiment default, negative = literally zero)")
	matN := flag.Int("matn", 0, "fig 5 matrix dimension (0 = default 128)")
	ms := flag.Bool("ms", false, "fig 6 on the Michael-Scott queue instead of the FAA ring")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	cacheFlag := flag.String("cache", "", "point cache: directory, \"on\" (default, ~/.cache/lrscwait) or \"off\"")
	jsonDir := flag.String("json", "", "also write one deterministic <kind>.json per result into this directory")
	csv := flag.Bool("csv", false, "emit CSV to stdout instead of an aligned table (single selection only)")
	csvDir := flag.String("csvdir", "", "also write one <kind>.csv per result into this directory")
	quiet := flag.Bool("quiet", false, "suppress progress and run statistics on stderr")
	flag.Parse()

	bins, err := sweep.ParseBins(*binsFlag)
	if err != nil {
		fail("%v", err)
	}
	grid, err := sweep.ParseGrid(*gridFlag)
	if err != nil {
		fail("%v", err)
	}

	figSel, tableSel, kindSel := splitList(*figs), splitList(*tables), splitList(*kinds)
	if *all {
		figSel, tableSel = []string{"3", "4", "5", "6"}, []string{"1", "2"}
	}
	if len(figSel) == 0 && len(tableSel) == 0 && len(kindSel) == 0 {
		fail("nothing selected; use -fig, -table, -kind or -all (see -help)")
	}

	var jobs []sweep.Job
	gridApplied := false
	selected := map[sweep.Kind]bool{}
	addJob := func(kind sweep.Kind) {
		// Overlapping selectors (-all -kind fig3, -fig 3 -kind fig3) would
		// print the figure twice and double-write its -json/-csvdir file.
		if selected[kind] {
			return
		}
		selected[kind] = true
		job := sweep.Job{Kind: kind, Topo: *topo, Warmup: *warmup, Measure: *measure}
		switch kind {
		case sweep.Fig3, sweep.Fig4:
			job.Bins = bins
		case sweep.Fig5:
			job.Bins = bins
			job.MatN = *matN
		}
		switch kind {
		case sweep.TableI, sweep.TableII:
			// Grid axes don't apply to the tables; leaving them unset keeps
			// `-all -grid ...` usable (tables run once, figures per point).
		default:
			grid.Apply(&job)
			gridApplied = true
		}
		jobs = append(jobs, job)
	}
	for _, f := range figSel {
		kind, ok := figKinds[f]
		if !ok {
			fail("unknown figure %q (have 3,4,5,6)", f)
		}
		if kind == sweep.Fig6 && *ms {
			kind = sweep.Fig6MS
		}
		addJob(kind)
	}
	for _, tb := range tableSel {
		kind, ok := tableKinds[tb]
		if !ok {
			fail("unknown table %q (have 1,2)", tb)
		}
		addJob(kind)
	}
	for _, k := range kindSel {
		kind := sweep.Kind(k)
		if !validKinds[kind] {
			fail("unknown kind %q (have fig3,fig4,fig5,fig6,fig6ms,table1,table2)", k)
		}
		addJob(kind)
	}

	if !grid.IsZero() && !gridApplied {
		// Only tables selected: silently dropping the grid would look like
		// a successful policy sweep that never happened.
		fail("-grid applies only to figure kinds (fig3,fig4,fig5,fig6,fig6ms)")
	}
	if *csv && len(jobs) > 1 {
		// Concatenated CSV tables with different headers don't parse;
		// write one file per result instead.
		fail("-csv emits a single table; use -csvdir DIR with multiple selections")
	}
	// Validate output locations before burning potentially hours of
	// simulation whose results they are meant to receive.
	for _, dir := range []string{*jsonDir, *csvDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail("%v", err)
			}
		}
	}

	cache, err := sweep.OpenCacheFlag(*cacheFlag, true)
	if err != nil {
		if *cacheFlag != "" {
			// The user asked for this cache location; failing it is an error.
			fail("%v", err)
		}
		// The default cache is a convenience: degrade to an uncached run
		// (e.g. no writable home directory) rather than refusing to sweep.
		fmt.Fprintf(os.Stderr, "sweep: cache disabled: %v\n", err)
		cache = nil
	}
	runner := sweep.Runner{Workers: *workers, Cache: cache}
	var flush func()
	if !*quiet {
		runner.Progress, flush = sweep.ProgressPrinter(os.Stderr)
	}
	results, st, err := runner.RunAll(jobs)
	if flush != nil {
		flush()
	}
	if err != nil {
		fail("%v", err)
	}

	for i, res := range results {
		if *csv {
			fmt.Print(res.CSV())
		} else {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(res.Table().String())
		}
		if *jsonDir != "" {
			b, err := res.JSON()
			if err != nil {
				fail("%v", err)
			}
			path := filepath.Join(*jsonDir, string(res.Job.Kind)+".json")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				fail("%v", err)
			}
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, string(res.Job.Kind)+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fail("%v", err)
			}
		}
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, "sweep: "+st.Summary())
	}
}
