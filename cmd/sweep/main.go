// Command sweep regenerates any subset of the registered experiment
// scenarios in one parallel shot through the internal/sweep engine:
// every independent simulation point of every selected scenario enters
// one worker pool, finished points are memoized in a content-hash disk
// cache (~/.cache/lrscwait by default), and results print as aligned
// tables, RFC 4180 CSV, or deterministic JSON.
//
// Selection is registry-driven (-kind, -list-kinds). This stock binary
// registers the seven paper kinds plus the synchronization-pattern
// suite (barrier, rcu, comblock — internal/patterns); a main that
// additionally calls lrscwait.RegisterScenario before reusing this
// front end's engine plumbing gets its custom scenarios on the same
// flags (see examples/customscenario for the library-side walkthrough).
//
// Beyond a scenario's fixed spec sets, the -grid flag turns the policy
// itself and its parameters into sweep axes: the cross-product of
// policy × queuecap × colibriq × backoff values runs every curve of the
// selected scenarios at every grid coordinate, one labelled series
// each. -policy is shorthand for the policy axis and accepts any
// registered platform policy name (-list-policies prints them; a main
// that calls lrscwait.RegisterPolicy before this front end's plumbing
// sweeps its custom hardware on the same flag). -params passes
// free-form key=value parameters to scenarios that define them — the
// pattern kinds ('wait=mwait variant=tree', 'maxcombine=8') and custom
// scenarios; the figure/table kinds take none.
//
// Usage:
//
//	sweep [-fig 3,4,5,6] [-table 1,2] [-kind fig3,...,table2] [-all]
//	      [-list-kinds] [-list-policies]
//	      [-topo terapool|mempool|medium|small] [-bins 1,2,4,...]
//	      [-policy lrsc,colibri,...]
//	      [-grid 'policy=lrsc,colibri queuecap=0,1,2 colibriq=2,4,8 backoff=0,64']
//	      [-params 'key=value ...']
//	      [-warmup N] [-measure N] [-matn N] [-ms]
//	      [-workers N] [-partitions N|-1] [-cache DIR|on|off] [-json DIR] [-csvdir DIR]
//	      [-backend disk|http=URL|tiered=URL]
//	      [-csv] [-quiet]
//	      [-manifest FILE] [-trace FILE] [-obs] [-cache-stats]
//	      [-cache-gc -cache-max-bytes SIZE]
//	      [-cpuprofile FILE] [-memprofile FILE]
//	sweep serve  [-addr :8080] [-backend ...] [-cache ...] [-workers N] [-quiet]
//	sweep worker -join URL [-workers N] [-max-points N] [-wait DUR]
//	             [-idle-exit DUR] [-name NAME] [-quiet]
//
// Service mode (package internal/fabric): `sweep serve` runs a
// long-lived node answering GET /v1/kind/{name}?format=json|csv|table
// from the warm cache — computing on miss exactly once however many
// clients ask concurrently, with cache-key-derived ETags so conditional
// re-fetches cost a 304 — and coordinating `sweep worker` machines that
// lease grid points over HTTP. The -backend flag points any mode at a
// remote node's cache ("http=URL") or layers the local disk cache in
// front of one ("tiered=URL"). -cache-gc bounds the disk cache by
// evicting least-recently-used points down to -cache-max-bytes.
//
// Observability: -manifest writes a JSON run manifest (job spec hashes,
// environment, per-point timings, full metric snapshot) next to the
// results; -trace writes a Chrome trace-event timeline (open in
// chrome://tracing) with one lane per worker; -obs dumps the run's
// metric deltas to stderr; -cache-stats reports the point cache's disk
// footprint and this process's hit/miss traffic (standalone — with no
// selection — or after a run); -cpuprofile/-memprofile write pprof
// profiles of the sweep.
//
// Examples:
//
//	sweep -all                       # full evaluation, paper scale
//	sweep -list-kinds                # print the scenario registry
//	sweep -list-policies             # print the policy registry
//	sweep -fig 3 -topo small         # one figure, 16-core machine
//	sweep -fig 3,4,5,6 -table 1,2 -topo medium -json out/
//	sweep -kind fig3 -grid 'queuecap=0,1,2,4'   # wait-queue sizing study
//	sweep -kind fig6 -policy lrsc,lrsc-table    # queue scaling per policy
//	sweep -cache-stats               # inspect the default point cache
//	sweep -fig 3 -topo small -manifest run.json -trace trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	_ "repro/internal/patterns" // register barrier / rcu / comblock
	"repro/internal/platform"
	"repro/internal/sweep"
)

func fail(format string, args ...any) {
	sweep.Fatal("sweep", fmt.Errorf(format, args...))
}

var figKinds = map[string]sweep.Kind{
	"3": sweep.Fig3, "4": sweep.Fig4, "5": sweep.Fig5, "6": sweep.Fig6,
}

var tableKinds = map[string]sweep.Kind{
	"1": sweep.TableI, "2": sweep.TableII,
}

// splitList parses a comma-separated selector like "3,4,6".
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(tok))
	}
	return out
}

func main() {
	// Service subcommands dispatch before ordinary flag parsing; the
	// classic one-shot CLI keeps its exact flag surface.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServe(os.Args[2:])
			return
		case "worker":
			runWorker(os.Args[2:])
			return
		}
	}
	figs := flag.String("fig", "", "figures to regenerate (comma-separated subset of 3,4,5,6)")
	tables := flag.String("table", "", "tables to regenerate (comma-separated subset of 1,2)")
	kinds := flag.String("kind", "", "scenarios by registered name (comma-separated; see -list-kinds)")
	listKinds := flag.Bool("list-kinds", false, "print the registered scenario names and exit")
	listPolicies := flag.Bool("list-policies", false, "print the registered policy names and exit")
	policyFlag := flag.String("policy", "", "policy axis for figure-style sweeps: registered policy names, comma-separated (see -list-policies); shorthand for -grid 'policy=...'")
	gridFlag := flag.String("grid", "", "policy grid for figure-style sweeps, e.g. 'policy=lrsc,colibri queuecap=0,1,2,4 colibriq=2,4,8 backoff=0,64'")
	paramsFlag := flag.String("params", "", "scenario parameters, e.g. 'wait=mwait variant=tree' for the pattern kinds or 'kernel=amoadd iters=500' for a custom scenario (the figure/table kinds take none)")
	all := flag.Bool("all", false, "regenerate every figure and table")
	topo := flag.String("topo", "mempool", "topology: terapool (1024 cores), mempool (paper, 256), medium (64), small (16)")
	binsFlag := flag.String("bins", "", "bin counts for figs 3/4/5 (default: per-figure paper sweep)")
	warmup := flag.Int("warmup", 0, "warm-up cycles (0 = per-experiment default, negative = literally zero)")
	measure := flag.Int("measure", 0, "measured cycles (0 = per-experiment default, negative = literally zero)")
	matN := flag.Int("matn", 0, "fig 5 matrix dimension (0 = default 128)")
	ms := flag.Bool("ms", false, "fig 6 on the Michael-Scott queue instead of the FAA ring")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	partitions := flag.Int("partitions", 0, "kernel partitions per simulated system: 0 = sequential kernel, -1 = adaptive (measure per-cycle work, then shard if it pays), N = N OS threads per point (results are bit-identical for any value)")
	cacheFlag := flag.String("cache", "", "point cache: directory, \"on\" (default, ~/.cache/lrscwait) or \"off\"")
	backendFlag := flag.String("backend", "", "point store: \"disk\" (default, the -cache directory), \"http=URL\" (a `sweep serve` node) or \"tiered=URL\" (disk in front of remote)")
	cacheGC := flag.Bool("cache-gc", false, "evict least-recently-used point-cache entries down to -cache-max-bytes (standalone with no selection, or after the run)")
	cacheMaxBytes := flag.String("cache-max-bytes", "", "cache size budget for -cache-gc: bytes, optionally suffixed K/M/G/T (e.g. 512M)")
	jsonDir := flag.String("json", "", "also write one deterministic <kind>.json per result into this directory")
	csv := flag.Bool("csv", false, "emit CSV to stdout instead of an aligned table (single selection only)")
	csvDir := flag.String("csvdir", "", "also write one <kind>.csv per result into this directory")
	quiet := flag.Bool("quiet", false, "suppress progress and run statistics on stderr")
	manifestPath := flag.String("manifest", "", "write a JSON run manifest (jobs, environment, timings, metrics) to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace-event timeline of the run to this file (open in chrome://tracing)")
	obsDump := flag.Bool("obs", false, "dump the run's metric deltas to stderr")
	cacheStats := flag.Bool("cache-stats", false, "report point-cache statistics (standalone with no selection, or after the run)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	flag.Parse()

	// The scenario registry builds its systems internally, so the
	// partition count travels as the process default.
	platform.SetDefaultPartitions(*partitions)

	if *listKinds {
		names := sweep.Names()
		width := 0
		for _, name := range names {
			if len(name) > width {
				width = len(name)
			}
		}
		for _, name := range names {
			if desc := sweep.Describe(name); desc != "" {
				fmt.Printf("%-*s  %s\n", width, name, desc)
			} else {
				fmt.Println(name)
			}
		}
		return
	}
	if *listPolicies {
		for _, name := range platform.PolicyNames() {
			fmt.Println(name)
		}
		return
	}

	bins, err := sweep.ParseBins(*binsFlag)
	if err != nil {
		fail("%v", err)
	}
	grid, err := sweep.ParseGrid(*gridFlag)
	if err != nil {
		fail("%v", err)
	}
	for _, name := range splitList(*policyFlag) {
		if name == "" {
			fail("empty policy name in -policy")
		}
		grid.Policies = append(grid.Policies, name)
	}
	params, err := sweep.ParseParams(*paramsFlag)
	if err != nil {
		fail("%v", err)
	}

	figSel, tableSel, kindSel := splitList(*figs), splitList(*tables), splitList(*kinds)
	if *all {
		figSel, tableSel = []string{"3", "4", "5", "6"}, []string{"1", "2"}
	}
	gcBudget := int64(-1)
	if *cacheGC {
		if *cacheMaxBytes == "" {
			fail("-cache-gc needs -cache-max-bytes (0 evicts everything)")
		}
		var err error
		if gcBudget, err = parseSize(*cacheMaxBytes); err != nil {
			fail("%v", err)
		}
	}

	if len(figSel) == 0 && len(tableSel) == 0 && len(kindSel) == 0 {
		if *cacheStats || *cacheGC {
			// Standalone cache maintenance: no sweep, just the report —
			// a missing cache is reported, not created.
			cache, err := sweep.InspectCacheFlag(*cacheFlag)
			if err != nil {
				fail("%v", err)
			}
			if cache == nil {
				fail("cache maintenance with caching disabled (-cache off)")
			}
			if *cacheGC {
				gst, err := cache.GC(gcBudget)
				if err != nil {
					fail("%v", err)
				}
				fmt.Println(gst.Summary())
			}
			if *cacheStats {
				st, err := cache.Stats()
				if err != nil {
					fail("%v", err)
				}
				fmt.Println(st.Summary())
			}
			return
		}
		fail("nothing selected; use -fig, -table, -kind or -all (see -help)")
	}

	var jobs []sweep.Job
	gridApplied, paramsApplied := false, false
	selected := map[sweep.Kind]bool{}
	addJob := func(kind sweep.Kind, sc sweep.Scenario) {
		// Overlapping selectors (-all -kind fig3, -fig 3 -kind fig3) would
		// print the figure twice and double-write its -json/-csvdir file.
		if selected[kind] {
			return
		}
		selected[kind] = true
		job := sweep.Job{Kind: kind, Topo: *topo, Warmup: *warmup, Measure: *measure}
		switch kind {
		case sweep.Fig3, sweep.Fig4:
			job.Bins = bins
		case sweep.Fig5:
			job.Bins = bins
			job.MatN = *matN
		case sweep.Fig6, sweep.Fig6MS, sweep.TableI, sweep.TableII:
			// The remaining built-ins sweep fixed coordinates.
		default:
			// Pattern kinds and custom scenarios get the generic axes and
			// the free-form parameters; their Normalize decides what they
			// mean. The figure/table kinds take no parameters, so attaching
			// -params to them would only fork their cache identity while
			// being silently ignored.
			job.Bins = bins
			job.MatN = *matN
			job.Params = params
			if params != nil {
				paramsApplied = true
			}
		}
		if sc.GridAxes() {
			// Scenarios without grid axes (the tables) skip the grid;
			// leaving it unset keeps `-all -grid ...` usable (tables run
			// once, figure-style scenarios per grid point).
			grid.Apply(&job)
			gridApplied = true
		}
		jobs = append(jobs, job)
	}
	mustLookup := func(kind sweep.Kind) sweep.Scenario {
		sc, ok := sweep.Lookup(string(kind))
		if !ok {
			fail("unknown kind %q (registered: %s)", kind, strings.Join(sweep.Names(), ", "))
		}
		return sc
	}
	for _, f := range figSel {
		kind, ok := figKinds[f]
		if !ok {
			fail("unknown figure %q (have 3,4,5,6)", f)
		}
		if kind == sweep.Fig6 && *ms {
			kind = sweep.Fig6MS
		}
		addJob(kind, mustLookup(kind))
	}
	for _, tb := range tableSel {
		kind, ok := tableKinds[tb]
		if !ok {
			fail("unknown table %q (have 1,2)", tb)
		}
		addJob(kind, mustLookup(kind))
	}
	for _, k := range kindSel {
		addJob(sweep.Kind(k), mustLookup(sweep.Kind(k)))
	}

	if !grid.IsZero() && !gridApplied {
		// Only grid-less scenarios selected: silently dropping the grid
		// would look like a successful policy sweep that never happened.
		fail("-grid/-policy applies to none of the selected kinds")
	}
	if params != nil && !paramsApplied {
		// Same reasoning as the grid guard: the figure/table kinds define
		// no parameters, so a -params run over them alone would look like
		// a successful parameterized sweep that never happened.
		fail("-params applies to none of the selected kinds (the figure/table kinds take no parameters)")
	}
	if *csv && len(jobs) > 1 {
		// Concatenated CSV tables with different headers don't parse;
		// write one file per result instead.
		fail("-csv emits a single table; use -csvdir DIR with multiple selections")
	}
	// Validate output locations before burning potentially hours of
	// simulation whose results they are meant to receive.
	for _, dir := range []string{*jsonDir, *csvDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail("%v", err)
			}
		}
	}

	backend, cache, err := openBackend(*backendFlag, *cacheFlag)
	if err != nil {
		if *backendFlag != "" || *cacheFlag != "" {
			// The user asked for this store; failing it is an error.
			fail("%v", err)
		}
		// The default cache is a convenience: degrade to an uncached run
		// (e.g. no writable home directory) rather than refusing to sweep.
		fmt.Fprintf(os.Stderr, "sweep: cache disabled: %v\n", err)
		backend, cache = nil, nil
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("%v", err)
		}
	}
	runner := sweep.Runner{Workers: *workers, Cache: backend}
	var flush func()
	if !*quiet {
		runner.Progress, flush = sweep.ProgressPrinter(os.Stderr)
	}
	results, st, err := runner.RunAll(jobs)
	if flush != nil && err == nil {
		// RunAll fails only during job normalization/expansion, before
		// any progress event fires — no partial status line to
		// terminate, and a "0/0 points" line would just precede the
		// error confusingly.
		flush()
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fail("%v", err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail("%v", err)
		}
		runtime.GC() // settle allocations so the heap profile reflects retention
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail("%v", err)
		}
		f.Close()
	}

	for i, res := range results {
		if *csv {
			fmt.Print(res.CSV())
		} else {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(res.Table().String())
		}
		if *jsonDir != "" {
			b, err := res.JSON()
			if err != nil {
				fail("%v", err)
			}
			path := filepath.Join(*jsonDir, string(res.Job.Kind)+".json")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				fail("%v", err)
			}
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, string(res.Job.Kind)+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fail("%v", err)
			}
		}
	}
	if *manifestPath != "" {
		cacheDir := ""
		if cache != nil {
			cacheDir = cache.Dir()
		}
		if err := sweep.NewManifest(results, st, cacheDir).WriteFile(*manifestPath); err != nil {
			fail("%v", err)
		}
	}
	if *tracePath != "" {
		if err := sweep.WriteTrace(*tracePath, st); err != nil {
			fail("%v", err)
		}
	}
	if *obsDump {
		fmt.Fprint(os.Stderr, st.Metrics.String())
	}
	if *cacheGC {
		if cache == nil {
			fmt.Fprintln(os.Stderr, "sweep: no disk cache in use, nothing to gc")
		} else {
			gst, err := cache.GC(gcBudget)
			if err != nil {
				fail("%v", err)
			}
			fmt.Fprintln(os.Stderr, "sweep: "+gst.Summary())
		}
	}
	if *cacheStats {
		if cache == nil {
			fmt.Fprintln(os.Stderr, "sweep: no disk cache in use, no cache statistics")
		} else {
			cs, err := cache.Stats()
			if err != nil {
				fail("%v", err)
			}
			fmt.Fprintln(os.Stderr, cs.Summary())
		}
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, "sweep: "+st.Summary())
	}
}
