// Command histogram reproduces the paper's concurrent-histogram
// experiments: Fig. 3 (throughput of the LRSCwait implementations and
// standard atomics at varying contention) and, with -locks, Fig. 4
// (throughput of the lock implementations). The sweep runs through the
// internal/sweep engine, so points fan out across -workers goroutines
// and can be memoized with -cache.
//
// Usage:
//
//	histogram [-scale mempool|medium|small] [-locks] [-csv]
//	          [-warmup N] [-measure N] [-bins 1,2,4,...]
//	          [-workers N] [-cache DIR|on|off]
package main

import (
	"flag"

	"repro/internal/sweep"
)

func main() {
	scale := flag.String("scale", "mempool", "topology: mempool (paper, 256 cores), medium (64), small (16)")
	locksFlag := flag.Bool("locks", false, "run the Fig. 4 lock comparison instead of Fig. 3")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	warmup := flag.Int("warmup", sweep.DefaultHistWarmup, "warm-up cycles before measurement")
	measure := flag.Int("measure", sweep.DefaultHistMeasure, "measured cycles")
	binsFlag := flag.String("bins", "", "comma-separated bin counts (default: paper sweep)")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	cacheFlag := flag.String("cache", "", "point cache: directory, \"on\" (~/.cache/lrscwait) or \"off\" (default)")
	flag.Parse()

	bins, err := sweep.ParseBins(*binsFlag)
	if err != nil {
		sweep.Fatal("histogram", err)
	}
	kind := sweep.Fig3
	if *locksFlag {
		kind = sweep.Fig4
	}
	sweep.RunTool("histogram", sweep.Job{
		Kind: kind, Topo: *scale, Bins: bins,
		Warmup: sweep.ExplicitWindow(*warmup), Measure: sweep.ExplicitWindow(*measure),
	}, *workers, *cacheFlag, *csv)
}
