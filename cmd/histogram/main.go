// Command histogram reproduces the paper's concurrent-histogram
// experiments: Fig. 3 (throughput of the LRSCwait implementations and
// standard atomics at varying contention) and, with -locks, Fig. 4
// (throughput of the lock implementations).
//
// Usage:
//
//	histogram [-scale mempool|medium|small] [-locks] [-csv]
//	          [-warmup N] [-measure N] [-bins 1,2,4,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	scale := flag.String("scale", "mempool", "topology: mempool (paper, 256 cores), medium (64), small (16)")
	locksFlag := flag.Bool("locks", false, "run the Fig. 4 lock comparison instead of Fig. 3")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	warmup := flag.Int("warmup", 3000, "warm-up cycles before measurement")
	measure := flag.Int("measure", 10000, "measured cycles")
	binsFlag := flag.String("bins", "", "comma-separated bin counts (default: paper sweep)")
	flag.Parse()

	topo, ok := experiments.TopoByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "histogram: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	bins := experiments.StandardBins(topo)
	if *binsFlag != "" {
		bins = bins[:0]
		for _, tok := range strings.Split(*binsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "histogram: bad bin count %q\n", tok)
				os.Exit(2)
			}
			bins = append(bins, v)
		}
	}

	var series []experiments.HistSeries
	title := "Fig. 3 — histogram updates/cycle vs #bins"
	if *locksFlag {
		series = experiments.Fig4(topo, bins, *warmup, *measure)
		title = "Fig. 4 — lock implementations, histogram updates/cycle vs #bins"
	} else {
		series = experiments.Fig3(topo, bins, *warmup, *measure)
	}

	header := []string{"#bins"}
	for _, s := range series {
		header = append(header, s.Spec.Name)
	}
	t := stats.NewTable(fmt.Sprintf("%s (%d cores, warmup %d, measure %d)",
		title, topo.NumCores(), *warmup, *measure), header...)
	for i, nb := range bins {
		row := []string{strconv.Itoa(nb)}
		for _, s := range series {
			row = append(row, stats.F(s.Points[i].Throughput, 4))
		}
		t.Add(row...)
	}
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}
