// Command queuebench reproduces the paper's Fig. 6: concurrent-queue
// accesses per cycle for a growing number of cores, with the per-core
// fairness band (slowest/fastest core) that shows Colibri's balanced
// service order against LRSC's retry lottery.
//
// Usage:
//
//	queuebench [-scale mempool|medium|small] [-csv] [-warmup N] [-measure N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	scale := flag.String("scale", "mempool", "topology: mempool (paper, 256 cores), medium (64), small (16)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	warmup := flag.Int("warmup", 3000, "warm-up cycles before measurement")
	measure := flag.Int("measure", 12000, "measured cycles")
	ms := flag.Bool("ms", false, "use the linked Michael-Scott queue instead of the FAA ring")
	flag.Parse()

	topo, ok := experiments.TopoByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "queuebench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	series := experiments.Fig6(topo, *warmup, *measure)
	if *ms {
		series = experiments.Fig6MS(topo, *warmup, *measure)
	}

	header := []string{"#cores"}
	for _, s := range series {
		header = append(header,
			s.Spec.Name, s.Spec.Name+"-min", s.Spec.Name+"-max")
	}
	t := stats.NewTable(fmt.Sprintf(
		"Fig. 6 — queue accesses/cycle vs #cores (%d-core system; min/max = per-core band)",
		topo.NumCores()), header...)
	for i := range series[0].Points {
		row := []string{strconv.Itoa(series[0].Points[i].Cores)}
		for _, s := range series {
			p := s.Points[i]
			row = append(row, stats.F(p.Throughput, 4),
				stats.F(p.MinPerCore, 5), stats.F(p.MaxPerCore, 5))
		}
		t.Add(row...)
	}
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}
