// Command queuebench reproduces the paper's Fig. 6: concurrent-queue
// accesses per cycle for a growing number of cores, with the per-core
// fairness band (slowest/fastest core) that shows Colibri's balanced
// service order against LRSC's retry lottery. The sweep runs through the
// internal/sweep engine (see -workers, -cache).
//
// Usage:
//
//	queuebench [-scale mempool|medium|small] [-csv] [-warmup N] [-measure N]
//	           [-ms] [-workers N] [-cache DIR|on|off]
package main

import (
	"flag"

	"repro/internal/sweep"
)

func main() {
	scale := flag.String("scale", "mempool", "topology: mempool (paper, 256 cores), medium (64), small (16)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	warmup := flag.Int("warmup", sweep.DefaultFig6Warmup, "warm-up cycles before measurement")
	measure := flag.Int("measure", sweep.DefaultFig6Measure, "measured cycles")
	ms := flag.Bool("ms", false, "use the linked Michael-Scott queue instead of the FAA ring")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	cacheFlag := flag.String("cache", "", "point cache: directory, \"on\" (~/.cache/lrscwait) or \"off\" (default)")
	flag.Parse()

	kind := sweep.Fig6
	if *ms {
		kind = sweep.Fig6MS
	}
	sweep.RunTool("queuebench", sweep.Job{
		Kind: kind, Topo: *scale,
		Warmup: sweep.ExplicitWindow(*warmup), Measure: sweep.ExplicitWindow(*measure),
	}, *workers, *cacheFlag, *csv)
}
