// Command lrscwait-sim is the generic simulation driver: pick a topology,
// a reservation policy and a kernel, run for a fixed window, and inspect
// throughput, activity and (optionally) the kernel's disassembly.
//
// Policy selection is registry-driven: -policy accepts any name returned
// by -list-policies — the five built-ins plus whatever a linked library
// registered through platform.RegisterPolicy — and -pparam passes
// additional policy-specific parameters. Policies supplying their own
// energy constants (the energy.PolicyWeights hook) are reported with
// those instead of the shared calibrated model.
//
// Usage:
//
//	lrscwait-sim [-scale terapool|mempool|medium|small]
//	             [-policy NAME] [-list-policies]
//	             [-kernel histogram|queue|msqueue|matmul]
//	             [-variant amoadd|lrsc|lrscwait|lrsc-lock|lrscwait-lock|amoadd-lock|mwait-mcs-lock]
//	             [-bins N] [-queues N] [-qcap N] [-pparam 'k=v ...'] [-backoff N]
//	             [-warmup N] [-measure N] [-disasm]
//	             [-obs] [-manifest FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// Observability: -obs dumps the run's kernel metrics (scheduler
// ticked/skipped counts, fast-forward savings, per-policy adapter
// counters) to stderr; -manifest writes them with the host environment
// as JSON; -cpuprofile/-memprofile write pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

var histVariants = map[string]kernels.HistVariant{
	"amoadd":         kernels.HistAmoAdd,
	"lrsc":           kernels.HistLRSC,
	"lrscwait":       kernels.HistLRSCWait,
	"lrsc-lock":      kernels.HistLockLRSC,
	"lrscwait-lock":  kernels.HistLockLRSCWait,
	"amoadd-lock":    kernels.HistLockTicket,
	"mwait-mcs-lock": kernels.HistLockMCSMwait,
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lrscwait-sim: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	scale := flag.String("scale", "medium", "topology: terapool (1024 cores), mempool (256), medium (64), small (16)")
	policyName := flag.String("policy", "colibri", "reservation policy by registered name (see -list-policies)")
	listPolicies := flag.Bool("list-policies", false, "print the registered policy names and exit")
	kernel := flag.String("kernel", "histogram", "workload: histogram, queue, msqueue, matmul")
	variant := flag.String("variant", "lrscwait", "histogram variant (see -help)")
	bins := flag.Int("bins", 16, "histogram bins")
	queues := flag.Int("queues", 4, "Colibri head/tail pairs per bank controller")
	qcap := flag.Int("qcap", 0, "WaitQueue capacity (0 = ideal)")
	pparam := flag.String("pparam", "", "extra policy parameters, e.g. 'key=value ...' (policy-defined keys)")
	backoff := flag.Int("backoff", 128, "max retry/spin backoff in cycles")
	warmup := flag.Int("warmup", 2000, "warm-up cycles")
	measure := flag.Int("measure", 10000, "measured cycles")
	partitions := flag.Int("partitions", 0, "kernel partitions: 0 = sequential kernel, -1 = adaptive (measure per-cycle work, then shard if it pays), N = shard the system across N OS threads (results are bit-identical for any value)")
	disasm := flag.Bool("disasm", false, "print the kernel disassembly of core 0 and exit")
	showTrace := flag.Bool("trace", false, "render activity sparklines over the measured window")
	obsDump := flag.Bool("obs", false, "dump the run's kernel metrics to stderr")
	manifestPath := flag.String("manifest", "", "write a JSON run manifest (environment + kernel metrics) to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	flag.Parse()

	if *listPolicies {
		for _, name := range platform.PolicyNames() {
			fmt.Println(name)
		}
		return
	}

	topo, ok := experiments.TopoByName(*scale)
	if !ok {
		fail("unknown scale %q", *scale)
	}
	policy := platform.PolicyKind(*policyName)
	if _, ok := platform.LookupPolicy(*policyName); !ok {
		fail("unknown policy %q (registered: %s)", *policyName,
			strings.Join(platform.PolicyNames(), ", "))
	}
	params := platform.PolicyParams{
		platform.ParamColibriQ: strconv.Itoa(*queues),
		platform.ParamQueueCap: strconv.Itoa(*qcap),
	}
	extra, err := sweep.ParseParams(*pparam)
	if err != nil {
		fail("%v", err)
	}
	for k, v := range extra {
		params[k] = v
	}
	resolved, err := platform.ResolvePolicy(policy, params, topo)
	if err != nil {
		fail("%v", err)
	}
	cfg := platform.Config{Topo: topo, Policy: policy, PolicyParams: params, Partitions: *partitions}
	nCores := topo.NumCores()
	l := platform.NewLayout(0)

	var progFor platform.ProgramFor
	var initFn func(*platform.System)
	switch *kernel {
	case "histogram":
		v, ok := histVariants[*variant]
		if !ok {
			fail("unknown histogram variant %q", *variant)
		}
		lay := kernels.NewHistLayout(l, *bins, nCores)
		prog := kernels.HistogramProgram(v, lay, int32(*backoff), 0)
		progFor = platform.SameProgram(prog)
	case "queue":
		lay := kernels.NewQueueLayout(l, nCores, 2*nCores)
		qv := kernels.QueueLRSCWait
		if policy == platform.PolicyLRSCSingle || policy == platform.PolicyLRSCTable {
			qv = kernels.QueueLRSC
		}
		progFor = kernels.QueueProgram(qv, lay, int32(*backoff), 0)
		initFn = func(sys *platform.System) { kernels.InitQueue(sys, lay) }
	case "msqueue":
		lay := kernels.NewMSLayout(l, nCores, 4)
		wait := policy == platform.PolicyColibri || policy == platform.PolicyWaitQueue
		progFor = kernels.MSQueueProgram(wait, lay, int32(*backoff), 0)
		initFn = func(sys *platform.System) { kernels.InitMSQueue(sys, lay) }
	case "matmul":
		lay := kernels.NewMatmulLayout(l, max(16, nCores/2))
		progFor = func(core int) *isa.Program {
			return kernels.MatmulProgram(lay, core, nCores, true)
		}
		initFn = func(sys *platform.System) { kernels.InitMatmul(sys, lay) }
	default:
		fail("unknown kernel %q", *kernel)
	}

	if *disasm {
		fmt.Print(isa.Disassemble(progFor(0)))
		return
	}

	sys := platform.New(cfg, progFor)
	if initFn != nil {
		initFn(sys)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("%v", err)
		}
	}
	obsBefore := obs.Default().Snapshot()
	var tr *trace.Series
	var act platform.Activity
	if *showTrace {
		sys.Run(*warmup)
		before := sys.Snapshot()
		tr = trace.Run(sys, *measure, maxi(*measure/72, 1))
		act = platform.Delta(before, sys.Snapshot())
	} else {
		act = sys.Measure(*warmup, *measure)
	}
	sys.PublishObs(obs.Default())
	metrics := obs.Diff(obsBefore, obs.Default().Snapshot())
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail("%v", err)
		}
		runtime.GC() // settle allocations so the heap profile reflects retention
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail("%v", err)
		}
		f.Close()
	}
	if *obsDump {
		fmt.Fprint(os.Stderr, metrics.String())
	}
	if *manifestPath != "" {
		if err := sweep.NewSimManifest(metrics).WriteFile(*manifestPath); err != nil {
			fail("%v", err)
		}
	}
	// Policies carrying their own calibrated constants (the
	// energy.PolicyWeights hook) are reported with those.
	eparams := energy.Default()
	if pw, ok := resolved.(energy.PolicyWeights); ok {
		eparams = pw.EnergyWeights()
	}

	t := stats.NewTable(fmt.Sprintf("%s/%s on %s (%d cores, policy %s)",
		*kernel, *variant, *scale, nCores, policy),
		"metric", "value")
	t.Add("throughput (ops/cycle)", stats.F(act.Throughput(), 4))
	min, max := act.MinMaxOps()
	t.Add("per-core ops min/max", fmt.Sprintf("%d / %d", min, max))
	t.Add("instructions", fmt.Sprint(act.Instrs))
	t.Add("busy cycles", fmt.Sprint(act.BusyCycles))
	t.Add("mem-wait cycles", fmt.Sprint(act.MemWaitCycles))
	t.Add("sleep cycles (LRwait/Mwait)", fmt.Sprint(act.SleepCycles))
	t.Add("backoff cycles", fmt.Sprint(act.PauseCycles))
	t.Add("fabric flit-hops", fmt.Sprint(act.Flits))
	t.Add("bank accesses", fmt.Sprint(act.BankAccesses))
	t.Add("SC success / fail", fmt.Sprintf("%d / %d", act.SCSuccess, act.SCFail))
	t.Add("wait refusals", fmt.Sprint(act.WaitRefusals))
	t.Add("SuccessorUpdates / WakeUps", fmt.Sprintf("%d / %d", act.SuccUpdates, act.WakeUps))
	t.Add("energy (pJ/op)", stats.F(eparams.PerOpPJ(act), 1))
	t.Add("power (mW @600MHz)", stats.F(eparams.PowerMW(act, 600), 1))
	fmt.Print(t.String())
	if tr != nil {
		fmt.Println()
		fmt.Print(tr.Sparklines(nCores))
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
