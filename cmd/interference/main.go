// Command interference reproduces the paper's Fig. 5: the relative
// throughput of matrix-multiplication workers while the remaining cores
// execute atomics on a small number of histogram bins. Colibri's sleeping
// waiters leave the workers essentially untouched; LRSC's retry traffic
// saturates the hot tile's paths and drags unrelated workers down.
//
// Usage:
//
//	interference [-scale mempool|medium|small] [-csv]
//	             [-warmup N] [-measure N] [-matn N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	scale := flag.String("scale", "mempool", "topology: mempool (paper, 256 cores), medium (64), small (16)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	warmup := flag.Int("warmup", 4000, "warm-up cycles before measurement")
	measure := flag.Int("measure", 20000, "measured cycles")
	matN := flag.Int("matn", 128, "matrix dimension (>= worker count)")
	flag.Parse()

	topo, ok := experiments.TopoByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "interference: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	// The paper sweeps 1..16 bins for this figure.
	bins := []int{1, 4, 8, 12, 16}
	series := experiments.Fig5(topo, bins, *matN, *warmup, *measure)

	header := []string{"#bins"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	t := stats.NewTable(fmt.Sprintf(
		"Fig. 5 — relative matmul throughput under atomics interference (%d cores)",
		topo.NumCores()), header...)
	for i, nb := range bins {
		row := []string{strconv.Itoa(nb)}
		for _, s := range series {
			row = append(row, stats.F(s.Points[i].Rel, 3))
		}
		t.Add(row...)
	}
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}
