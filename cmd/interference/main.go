// Command interference reproduces the paper's Fig. 5: the relative
// throughput of matrix-multiplication workers while the remaining cores
// execute atomics on a small number of histogram bins. Colibri's sleeping
// waiters leave the workers essentially untouched; LRSC's retry traffic
// saturates the hot tile's paths and drags unrelated workers down. The
// sweep runs through the internal/sweep engine (see -workers, -cache).
//
// Usage:
//
//	interference [-scale mempool|medium|small] [-csv]
//	             [-warmup N] [-measure N] [-matn N]
//	             [-workers N] [-cache DIR|on|off]
package main

import (
	"flag"

	"repro/internal/sweep"
)

func main() {
	scale := flag.String("scale", "mempool", "topology: mempool (paper, 256 cores), medium (64), small (16)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	warmup := flag.Int("warmup", sweep.DefaultFig5Warmup, "warm-up cycles before measurement")
	measure := flag.Int("measure", sweep.DefaultFig5Measure, "measured cycles")
	matN := flag.Int("matn", sweep.DefaultMatN, "matrix dimension (>= worker count)")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	cacheFlag := flag.String("cache", "", "point cache: directory, \"on\" (~/.cache/lrscwait) or \"off\" (default)")
	flag.Parse()

	sweep.RunTool("interference", sweep.Job{
		Kind: sweep.Fig5, Topo: *scale, MatN: *matN,
		Warmup: sweep.ExplicitWindow(*warmup), Measure: sweep.ExplicitWindow(*measure),
	}, *workers, *cacheFlag, *csv)
}
