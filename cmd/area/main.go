// Command area reproduces the paper's Table I: the silicon area of a
// MemPool tile with the different LRSCwait designs, from the calibrated
// component-count model, including the LRSCwait_ideal extrapolation that
// shows why a full per-core queue per bank is physically infeasible. The
// rows are evaluated through the internal/sweep engine so the table is
// available to cmd/sweep's unified output as well.
//
// Usage:
//
//	area [-cores N] [-csv]
package main

import (
	"flag"

	"repro/internal/sweep"
)

func main() {
	cores := flag.Int("cores", 256, "system core count for the ideal-queue extrapolation")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	sweep.RunTool("area", sweep.Job{Kind: sweep.TableI, Cores: *cores}, 0, "off", *csv)
}
