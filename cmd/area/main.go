// Command area reproduces the paper's Table I: the silicon area of a
// MemPool tile with the different LRSCwait designs, from the calibrated
// component-count model, including the LRSCwait_ideal extrapolation that
// shows why a full per-core queue per bank is physically infeasible.
//
// Usage:
//
//	area [-cores N] [-csv]
package main

import (
	"flag"
	"fmt"

	"repro/internal/area"
	"repro/internal/stats"
)

func main() {
	cores := flag.Int("cores", 256, "system core count for the ideal-queue extrapolation")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	rows := area.TableI(area.Default(), *cores)
	t := stats.NewTable("Table I — area of a mempool_tile with different LRSCwait designs",
		"architecture", "parameters", "model kGE", "model %", "paper kGE")
	for _, r := range rows {
		paper := "-"
		if r.PaperKGE > 0 {
			paper = stats.F(r.PaperKGE, 0)
		}
		t.Add(r.Design, r.Params, stats.F(r.AreaKGE, 1),
			stats.F(100+r.OverheadP, 1), paper)
	}
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}
