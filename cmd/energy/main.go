// Command energy reproduces the paper's Table II: average power and
// energy per atomic operation at the highest contention level (histogram
// with a single bin), from simulator activity counters and the calibrated
// per-event energy model. The four rows run through the internal/sweep
// engine (see -workers, -cache).
//
// Usage:
//
//	energy [-scale mempool|medium|small] [-csv] [-warmup N] [-measure N]
//	       [-workers N] [-cache DIR|on|off]
package main

import (
	"flag"

	"repro/internal/sweep"
)

func main() {
	scale := flag.String("scale", "mempool", "topology: mempool (paper, 256 cores), medium (64), small (16)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	warmup := flag.Int("warmup", sweep.DefaultTableIIWarmup, "warm-up cycles before measurement")
	measure := flag.Int("measure", sweep.DefaultTableIIMeasure, "measured cycles")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	cacheFlag := flag.String("cache", "", "point cache: directory, \"on\" (~/.cache/lrscwait) or \"off\" (default)")
	flag.Parse()

	sweep.RunTool("energy", sweep.Job{
		Kind: sweep.TableII, Topo: *scale,
		Warmup: sweep.ExplicitWindow(*warmup), Measure: sweep.ExplicitWindow(*measure),
	}, *workers, *cacheFlag, *csv)
}
