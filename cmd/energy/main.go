// Command energy reproduces the paper's Table II: average power and
// energy per atomic operation at the highest contention level (histogram
// with a single bin), from simulator activity counters and the calibrated
// per-event energy model.
//
// Usage:
//
//	energy [-scale mempool|medium|small] [-csv] [-warmup N] [-measure N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	scale := flag.String("scale", "mempool", "topology: mempool (paper, 256 cores), medium (64), small (16)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	warmup := flag.Int("warmup", 4000, "warm-up cycles before measurement")
	measure := flag.Int("measure", 20000, "measured cycles")
	flag.Parse()

	topo, ok := experiments.TopoByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "energy: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	rows := experiments.TableII(topo, energy.Default(), *warmup, *measure)
	t := stats.NewTable(fmt.Sprintf(
		"Table II — energy per atomic access at highest contention (%d cores, 600 MHz)",
		topo.NumCores()),
		"atomic access", "backoff", "power (mW)", "energy (pJ/op)", "delta", "paper pJ/op")
	for _, r := range rows {
		delta := "±0%"
		if r.DeltaPct != 0 {
			delta = fmt.Sprintf("%+.0f%%", r.DeltaPct)
		}
		t.Add(r.Name, fmt.Sprint(r.Backoff), stats.F(r.PowerMW, 1),
			stats.F(r.PJPerOp, 0), delta, stats.F(r.PaperPJ, 0))
	}
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}
